package sre

import (
	"math"
	"testing"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxWindows = 12
	return cfg
}

func TestNetworksList(t *testing.T) {
	names := Networks()
	if len(names) != 6 {
		t.Fatalf("networks: %v", names)
	}
	if names[0] != "MNIST" || names[3] != "VGG-16" {
		t.Fatalf("Table 2 order broken: %v", names)
	}
}

func TestLoadUnknownNetwork(t *testing.T) {
	if _, err := Load("nope", WithConfig(testConfig())); err == nil {
		t.Fatal("accepted unknown network")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := testConfig()
	bad.OUHeight = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero OU height")
	}
	bad = testConfig()
	bad.CellBits = 3
	if bad.Validate() == nil {
		t.Fatal("accepted non-dividing cell bits")
	}
	if _, err := Load("MNIST", WithConfig(bad)); err == nil {
		t.Fatal("Load accepted invalid config")
	}
}

func TestModesRoundTrip(t *testing.T) {
	if len(Modes()) != 8 {
		t.Fatal("mode list")
	}
	seen := map[string]bool{}
	for _, m := range Modes() {
		s := m.String()
		if seen[s] {
			t.Fatalf("duplicate mode name %q", s)
		}
		seen[s] = true
	}
}

// TestModesRegistryPinned pins the wire contract of the mode registry:
// the spellings and their order are API. The first six entries predate
// the registry and must never move or change spelling — /v1/simulate
// requests, snapshot benchmark JSON, and sresim -mode flags all carry
// these strings. New modes may only be appended.
func TestModesRegistryPinned(t *testing.T) {
	want := []string{
		"baseline", "naive", "recom", "orc", "dof", "orc+dof",
		"wss", "orc+dof+wss",
	}
	modes := Modes()
	if len(modes) != len(want) {
		t.Fatalf("Modes() has %d entries, want %d", len(modes), len(want))
	}
	for i, m := range modes {
		if m.String() != want[i] {
			t.Fatalf("Modes()[%d] = %q, want %q", i, m.String(), want[i])
		}
		back, err := ParseMode(want[i])
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", want[i], err)
		}
		if back != m {
			t.Fatalf("ParseMode(%q) = %v, want %v", want[i], back, m)
		}
	}
	if _, err := ParseMode("occ+dof"); err == nil {
		t.Fatal("ParseMode accepted an unregistered spelling")
	}
}

func TestRunMNISTShape(t *testing.T) {
	net, err := Load("MNIST", WithConfig(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if net.LayerCount() != 4 {
		t.Fatalf("layer count %d", net.LayerCount())
	}
	res, err := net.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	base := res[Baseline]
	if base.Cycles <= 0 || base.Seconds <= 0 || base.Energy.Total() <= 0 {
		t.Fatal("degenerate baseline result")
	}
	if len(base.Layers) != 4 {
		t.Fatal("per-layer results missing")
	}
	// The paper's headline ordering.
	if !(res[ORCDOF].Cycles <= res[DOF].Cycles && res[DOF].Cycles < base.Cycles) {
		t.Fatal("cycle ordering violated")
	}
	if !(res[ORCDOF].Energy.Total() < base.Energy.Total()) {
		t.Fatal("SRE must save energy")
	}
	if res[ORC].CompressionRatio <= 1 {
		t.Fatalf("ORC compression ratio %v", res[ORC].CompressionRatio)
	}
	if res[ORC].IndexStorageBits <= 0 {
		t.Fatal("ORC must report index storage")
	}
	if res[Baseline].IndexStorageBits != 0 {
		t.Fatal("baseline needs no index storage")
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := testConfig()
	a, err := Load("CIFAR-10", WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load("CIFAR-10", WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := a.Run(ORCDOF)
	rb, _ := b.Run(ORCDOF)
	if ra.Cycles != rb.Cycles || ra.Energy != rb.Energy {
		t.Fatal("same seed produced different results")
	}
}

func TestSeedChangesResults(t *testing.T) {
	cfg := testConfig()
	cfg2 := cfg
	cfg2.Seed = 99
	a, _ := Load("CIFAR-10", WithConfig(cfg))
	b, _ := Load("CIFAR-10", WithConfig(cfg2))
	ra, _ := a.Run(ORCDOF)
	rb, _ := b.Run(ORCDOF)
	if ra.Cycles == rb.Cycles {
		t.Fatal("different seeds should perturb the synthetic workload")
	}
}

func TestGSLWeakensORC(t *testing.T) {
	cfg := testConfig()
	ssl, err := Load("CIFAR-10", WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	gsl, err := Load("CIFAR-10", WithConfig(cfg), WithPrune(GSL))
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := ssl.CompressionRatio(ORC)
	rg, _ := gsl.CompressionRatio(ORC)
	if rs <= rg {
		t.Fatalf("SSL ORC ratio %v must beat GSL %v", rs, rg)
	}
}

func TestIdealBoundsORC(t *testing.T) {
	net, err := Load("MNIST", WithConfig(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	orc, _ := net.CompressionRatio(ORC)
	if ideal := net.IdealCompressionRatio(); ideal < orc {
		t.Fatalf("ideal %v below ORC %v", ideal, orc)
	}
}

func TestRunISAAC(t *testing.T) {
	net, err := Load("MNIST", WithConfig(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	with := net.RunISAAC(true)
	without := net.RunISAAC(false)
	if with.Cycles != without.Cycles {
		t.Fatal("ReCom must not change ISAAC latency")
	}
	if with.Energy.Total() > without.Energy.Total() {
		t.Fatal("ReCom must not increase ISAAC energy")
	}
}

func TestOUBaselineCostsMoreThanISAAC(t *testing.T) {
	// The un-sparse OU baseline must cost more energy than ISAAC (paper
	// §7.5: roughly 2.5x). This holds for layers that fill their
	// crossbars; MNIST's 25-row first conv does not, so use a network
	// whose tiles are mostly full.
	net, err := Build("full-tiles", "conv3x32p1-conv3x32p1-pool-10", []int{32, 16, 16},
		WithConfig(testConfig()), WithPrune(Dense), WithSparsity(0.0, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	base, _ := net.Run(Baseline)
	isaac := net.RunISAAC(false)
	ratio := base.Energy.Total() / isaac.Energy.Total()
	if ratio < 1 {
		t.Fatalf("OU baseline / ISAAC energy = %v, want > 1", ratio)
	}
	if ratio > 5 {
		t.Fatalf("OU baseline / ISAAC energy = %v, implausibly high", ratio)
	}
}

func TestBuildCustomNetwork(t *testing.T) {
	cfg := testConfig()
	net, err := Build("custom", "conv3x8p1-pool-conv3x8p1-pool-32-5", []int{1, 16, 16},
		WithConfig(cfg), WithSparsity(0.6, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Run(ORCDOF)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := net.Run(Baseline)
	if res.Cycles >= base.Cycles {
		t.Fatal("custom sparse network saw no speedup")
	}
}

func TestBuildCustomNetworkErrors(t *testing.T) {
	cfg := testConfig()
	if _, err := Build("bad", "bogus", []int{1, 8, 8}, WithConfig(cfg)); err == nil {
		t.Fatal("accepted bogus topology")
	}
	if _, err := Build("bad", "4", []int{1, 8}, WithConfig(cfg)); err == nil {
		t.Fatal("accepted rank-2 input shape")
	}
}

func TestCellAccuracyAPI(t *testing.T) {
	c := BaselineCell()
	if c.Bits != 2 || c.RRatio <= 1 {
		t.Fatalf("baseline cell %+v", c)
	}
	p8 := c.ReadErrorProbability(8, 1.5)
	p128 := c.ReadErrorProbability(128, 1.5)
	if !(p8 < p128) {
		t.Fatal("error probability must grow with wordlines")
	}
	i3 := c.Improved(3)
	if i3.ReadErrorProbability(128, 1.5) >= p128 {
		t.Fatal("improved cell must err less")
	}
	if math.Abs(i3.RRatio-3*c.RRatio) > 1e-12 {
		t.Fatal("Improved scaling wrong")
	}
}

func TestOUSweepViaConfig(t *testing.T) {
	// Larger OUs need fewer cycles for the dense baseline.
	var prev int64 = -1
	for _, ou := range []int{8, 16, 32} {
		net, err := Load("MNIST", WithConfig(testConfig()), WithOU(ou))
		if err != nil {
			t.Fatal(err)
		}
		res, _ := net.Run(Baseline)
		if prev > 0 && res.Cycles > prev {
			t.Fatalf("baseline cycles rose with a larger OU at %d", ou)
		}
		prev = res.Cycles
	}
}

func TestRunOCC(t *testing.T) {
	net, err := Load("CIFAR-10", WithConfig(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	occ, err := net.RunOCC()
	if err != nil {
		t.Fatal(err)
	}
	base, _ := net.Run(Baseline)
	if occ.Cycles <= 0 || occ.Cycles > base.Cycles {
		t.Fatalf("OCC cycles %d vs baseline %d", occ.Cycles, base.Cycles)
	}
	if occ.CompressionRatio < 1 {
		t.Fatalf("OCC ratio %v", occ.CompressionRatio)
	}
	if occ.IndexStorageBits <= 0 {
		t.Fatal("OCC must report output-index storage")
	}
	// Lazy structures are cached: second run must agree.
	again, err := net.RunOCC()
	if err != nil {
		t.Fatal(err)
	}
	if again.Cycles != occ.Cycles {
		t.Fatal("RunOCC not deterministic")
	}
}
