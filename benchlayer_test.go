// Per-mode benchmarks of the core simulator's hot path, plus the
// retained scalar-reference variants. `make bench` runs these and
// records the numbers in BENCH_PR2.json; comparing
// BenchmarkSimulateLayer/<mode> against
// BenchmarkSimulateLayerScalar/<mode> shows the word-plane kernel and
// plan-cache speedup (and the allocs/op drop) within a single run.
package sre_test

import (
	"testing"

	"sre/internal/compress"
	"sre/internal/core"
	"sre/internal/mapping"
	"sre/internal/quant"
	"sre/internal/tensor"
	"sre/internal/xrand"
)

// benchActs is a read-only window source; sharing it across phase-1
// workers is safe, so no SourceCloner is needed.
type benchActs struct{ rows [][]uint32 }

func (s *benchActs) Windows() int { return len(s.rows) }

func (s *benchActs) WindowCodes(w int, dst []uint32) { copy(dst, s.rows[w]) }

// benchLayer builds the same shape as the core package's hot-path
// micro-benchmark: 512 rows, 64 logical columns, 70% weight sparsity,
// 16 windows of 60%-sparse activations.
func benchLayer(b *testing.B) core.Layer {
	b.Helper()
	p := quant.Default()
	g := mapping.Default()
	r := xrand.New(99)
	w := tensor.New(512, 64)
	for row := 0; row < 512; row++ {
		for c := 0; c < 64; c++ {
			if !r.Bernoulli(0.7) {
				w.Set(float32(r.Float64()*2-1), row, c)
			}
		}
	}
	st := compress.Build(compress.NewFloatSource(w, p), p, g)
	ra := xrand.New(7)
	src := &benchActs{}
	for wi := 0; wi < 16; wi++ {
		v := make([]uint32, 512)
		for i := range v {
			if !ra.Bernoulli(0.6) {
				v[i] = uint32(ra.Intn(1 << 16))
			}
		}
		src.rows = append(src.rows, v)
	}
	return core.Layer{Name: "bench", Struct: st, Acts: src}
}

func benchSimulateLayer(b *testing.B, scalar bool) {
	layer := benchLayer(b)
	for _, mode := range []core.Mode{core.ModeBaseline, core.ModeORC, core.ModeDOF, core.ModeORCDOF} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Mode = mode
			cfg.MaxWindows = 0
			cfg.Workers = 1
			cfg.ScalarReference = scalar
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.SimulateLayer(layer, cfg)
			}
		})
	}
}

// BenchmarkSimulateLayer is the kernel path (word-plane phase 1 over
// the memoized plan cache).
func BenchmarkSimulateLayer(b *testing.B) { benchSimulateLayer(b, false) }

// BenchmarkSimulateLayerScalar is the pre-kernel scalar reference, kept
// for golden-equality testing; its ratio to BenchmarkSimulateLayer is
// the PR's headline speedup.
func BenchmarkSimulateLayerScalar(b *testing.B) { benchSimulateLayer(b, true) }
