// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON record, teeing the raw text through to stdout
// so it still reads like a normal bench run. `make bench` uses it to
// emit the per-PR BENCH_*.json files — the repo's benchmark trajectory
// record (see the Makefile's BENCH_OUT variable).
//
// Usage:
//
//	go test -bench . -benchmem -run=NONE . | benchjson -out BENCH_PR3.json
//	go test -bench . -count 5 -run=NONE . | benchjson -count 5 -out BENCH_PR7.json
//	benchjson -compare BENCH_PR3.json BENCH_PR4.json
//
// With `go test -count N`, every benchmark prints N result lines.
// benchjson folds the repeats of each name into one entry: Metrics
// holds the per-unit median (robust against a noisy repeat on a
// shared box) and Min holds the per-unit minimum (the best the code
// did with the least interference). `-count N` declares the expected
// repeat count so a benchmark that silently ran fewer times is warned
// about rather than recorded as clean data.
//
// The -compare form reads two previously-recorded files and prints a
// per-benchmark delta table (ns/op, B/op, allocs/op) instead of parsing
// stdin; when both records carry multi-sample minima, a min-ns/op row
// is added per benchmark. `make bench-compare` wraps it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one recorded benchmark. Metrics holds every value/unit
// pair go test printed: "ns/op", "B/op", "allocs/op", plus any
// b.ReportMetric custom units. When the run repeated the benchmark
// (go test -count N), Metrics is the per-unit median across repeats,
// Min the per-unit minimum, and Samples the repeat count; a
// single-shot run leaves Min/Samples unset so old records stay
// byte-compatible.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	Min        map[string]float64 `json:"min,omitempty"`
	Samples    int                `json:"samples,omitempty"`
}

// Record is the file-level JSON shape.
type Record struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write parsed benchmarks to this JSON file")
	count := flag.Int("count", 1, "expected repeats per benchmark (go test -count N); repeats fold into min/median")
	compare := flag.String("compare", "", "compare OLD.json (this flag) against NEW.json (positional arg) and print deltas")
	flag.Parse()

	if *compare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare OLD.json needs exactly one NEW.json argument")
			os.Exit(2)
		}
		if err := compareRecords(*compare, flag.Arg(0)); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	var rec Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			rec.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rec.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rec.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				rec.Benchmarks = append(rec.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rec.Benchmarks = aggregate(rec.Benchmarks, *count)
	if *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err == nil {
		err = f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rec.Benchmarks), *out)
}

// parseBenchLine parses "BenchmarkName-8  100  123 ns/op  45 B/op ..."
// — a name, an iteration count, then value/unit pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}

// aggregate folds repeated benchmark lines (go test -count N) into
// one Benchmark per name, in first-seen order: Metrics becomes the
// per-unit median, Min the per-unit minimum. Names that appeared once
// pass through untouched. count is the expected repeat count; any
// name with a different sample count gets a stderr warning (a crashed
// or skipped repeat shouldn't masquerade as clean data).
func aggregate(benches []Benchmark, count int) []Benchmark {
	groups := map[string][]Benchmark{}
	var order []string
	for _, b := range benches {
		if _, seen := groups[b.Name]; !seen {
			order = append(order, b.Name)
		}
		groups[b.Name] = append(groups[b.Name], b)
	}
	out := make([]Benchmark, 0, len(order))
	for _, name := range order {
		g := groups[name]
		if count > 1 && len(g) != count {
			fmt.Fprintf(os.Stderr, "benchjson: warning: %s has %d samples, expected %d\n",
				name, len(g), count)
		}
		if len(g) == 1 {
			out = append(out, g[0])
			continue
		}
		agg := Benchmark{
			Name:    name,
			Metrics: map[string]float64{},
			Min:     map[string]float64{},
			Samples: len(g),
		}
		units := map[string][]float64{}
		var iters []float64
		for _, b := range g {
			iters = append(iters, float64(b.Iterations))
			for unit, v := range b.Metrics {
				units[unit] = append(units[unit], v)
			}
		}
		agg.Iterations = int64(median(iters))
		for unit, vs := range units {
			agg.Metrics[unit] = median(vs)
			min := vs[0]
			for _, v := range vs[1:] {
				if v < min {
					min = v
				}
			}
			agg.Min[unit] = min
		}
		out = append(out, agg)
	}
	return out
}

// median returns the middle value of vs (mean of the two middles for
// even lengths). vs must be non-empty; it is sorted in place.
func median(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// compareUnits are the metrics the delta table reports, in column order.
var compareUnits = []string{"ns/op", "B/op", "allocs/op"}

// compareRecords prints a per-benchmark delta table of the standard
// -benchmem metrics between two recorded files. A negative delta is an
// improvement; benchmarks present in only one file are listed so a
// renamed benchmark can't silently drop out of the trajectory record.
func compareRecords(oldPath, newPath string) error {
	oldRec, err := readRecord(oldPath)
	if err != nil {
		return err
	}
	newRec, err := readRecord(newPath)
	if err != nil {
		return err
	}
	oldBy := benchByName(oldRec)
	newBy := benchByName(newRec)
	names := make([]string, 0, len(oldBy))
	for name := range oldBy {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-40s %10s %14s %14s %8s\n", "benchmark", "metric", oldPath, newPath, "delta")
	for _, name := range names {
		nb, ok := newBy[name]
		if !ok {
			fmt.Printf("%-40s only in %s\n", name, oldPath)
			continue
		}
		ob := oldBy[name]
		for _, unit := range compareUnits {
			ov, hasOld := ob.Metrics[unit]
			nv, hasNew := nb.Metrics[unit]
			if !hasOld || !hasNew {
				continue
			}
			delta := "n/a"
			if ov != 0 {
				delta = fmt.Sprintf("%+.1f%%", (nv-ov)/ov*100)
			}
			fmt.Printf("%-40s %10s %14.0f %14.0f %8s\n", name, unit, ov, nv, delta)
		}
		// Multi-sample records also carry per-unit minima; the min
		// ns/op row shows the least-interfered repeat on noisy boxes.
		if ov, hasOld := ob.Min["ns/op"]; hasOld {
			if nv, hasNew := nb.Min["ns/op"]; hasNew {
				delta := "n/a"
				if ov != 0 {
					delta = fmt.Sprintf("%+.1f%%", (nv-ov)/ov*100)
				}
				fmt.Printf("%-40s %10s %14.0f %14.0f %8s\n", name, "min-ns/op", ov, nv, delta)
			}
		}
	}
	for name := range newBy {
		if _, ok := oldBy[name]; !ok {
			fmt.Printf("%-40s only in %s\n", name, newPath)
		}
	}
	return nil
}

func readRecord(path string) (Record, error) {
	var rec Record
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

func benchByName(rec Record) map[string]Benchmark {
	out := make(map[string]Benchmark, len(rec.Benchmarks))
	for _, b := range rec.Benchmarks {
		out[b.Name] = b
	}
	return out
}
