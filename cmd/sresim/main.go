// Command sresim simulates one network under one configuration and
// prints per-layer and total cycles, time, and energy.
//
// Usage:
//
//	sresim -network VGG-16 -mode orc+dof
//	sresim -network MNIST -mode dof -ou 32 -cellbits 4 -layers
//	sresim -network CaffeNet -prune gsl -mode orc
//	sresim -network CIFAR-10 -mode orc+dof+wss -slicecap 2
//	sresim -modes
//	sresim -network VGG-16 -mode orc+dof -workers 8 -progress
//	sresim -network VGG-16 -mode orc+dof -metrics run.json
//	sresim -network MNIST -mode dof -metrics run.prom -metrics-format prom
//	sresim -network MNIST -isaac
//
// Ctrl-C cancels a long simulation promptly (the worker pool checks the
// context between shards).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"sre"
	"sre/internal/cli"
	"sre/internal/profiling"
)

func main() {
	var (
		network   = flag.String("network", "MNIST", "network name (see -networks)")
		networks  = flag.Bool("networks", false, "list available networks")
		modeName  = flag.String("mode", "orc+dof", modeHelp())
		modes     = flag.Bool("modes", false, "list available modes")
		pruneStr  = flag.String("prune", "ssl", "ssl|gsl|dense")
		ou        = flag.Int("ou", 16, "square OU size")
		xbar      = flag.Int("crossbar", 128, "crossbar dimension")
		cellBits  = flag.Int("cellbits", 2, "bits per ReRAM cell")
		dacBits   = flag.Int("dacbits", 1, "DAC resolution bits")
		windows   = flag.Int("windows", 48, "per-layer window sampling cap (0 = all)")
		sliceCap  = flag.Int("slicecap", 0, "cap weights to n bit slices at build time (0 = off; see wss mode)")
		seed      = flag.Uint64("seed", 1, "workload seed")
		workers   = cli.AddWorkers(flag.CommandLine)
		snapDir   = cli.AddSnapshotDir(flag.CommandLine)
		progress  = flag.Bool("progress", false, "report per-layer progress to stderr")
		codeCache = cli.AddCodeCache(flag.CommandLine)
		layers    = flag.Bool("layers", false, "print per-layer results")
		runISAAC  = flag.Bool("isaac", false, "also run the over-idealized ISAAC model")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		metricsFl = cli.AddMetrics(flag.CommandLine)
	)
	flag.Parse()

	stopCPU, err := profiling.StartCPU(*cpuProf)
	fatal(err)
	defer stopCPU()
	defer func() {
		if err := profiling.WriteHeap(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, "sresim:", err)
		}
	}()

	if *networks {
		for _, n := range sre.Networks() {
			fmt.Println(n)
		}
		return
	}
	if *modes {
		for _, m := range sre.Modes() {
			fmt.Println(m)
		}
		fmt.Println("occ")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	style, err := sre.ParsePruneStyle(*pruneStr)
	fatal(err)

	loadOpts := []sre.Option{
		sre.WithPrune(style),
		sre.WithOU(*ou),
		sre.WithCrossbar(*xbar),
		sre.WithCellBits(*cellBits),
		sre.WithDACBits(*dacBits),
		sre.WithMaxWindows(*windows),
		sre.WithSliceCap(*sliceCap),
		sre.WithSeed(*seed),
		sre.WithWorkers(*workers),
	}
	if *snapDir != "" {
		loadOpts = append(loadOpts, sre.WithSnapshotDir(*snapDir))
	}
	net, err := sre.Load(*network, loadOpts...)
	fatal(err)

	runOpts := []sre.Option{sre.WithCodeCache(*codeCache)}
	if *progress {
		runOpts = append(runOpts, sre.WithProgress(func(p sre.Progress) {
			fmt.Fprintf(os.Stderr, "  [%s] layer %d/%d done (%s, %d OU events, %d/%d windows)\n",
				p.Mode, p.LayersDone, p.LayerCount, p.Layer.Name, p.OUEvents, p.Sampled, p.Windows)
		}))
	}
	reg := metricsFl.Registry()
	if reg != nil {
		runOpts = append(runOpts, sre.WithMetrics(reg))
	}

	base, err := net.RunContext(ctx, sre.Baseline, runOpts...)
	fatal(err)
	var res sre.Result
	if strings.ToLower(*modeName) == "occ" {
		res, err = net.RunOCC(runOpts...)
	} else {
		var mode sre.Mode
		mode, err = sre.ParseMode(*modeName)
		fatal(err)
		res, err = net.RunContext(ctx, mode, runOpts...)
	}
	fatal(err)

	if reg != nil {
		fatal(metricsFl.Write(reg.Snapshot()))
	}

	fmt.Printf("network   %s (%d matrix layers, prune %s)\n", net.Name(), net.LayerCount(), *pruneStr)
	fmt.Printf("mode      %s\n", strings.ToLower(*modeName))
	fmt.Printf("cycles    %d (baseline %d, speedup %.2fx)\n",
		res.Cycles, base.Cycles, float64(base.Cycles)/float64(res.Cycles))
	fmt.Printf("time      %.4g s\n", res.Seconds)
	fmt.Printf("energy    %.4g J (%.1f%% of baseline; eDRAM %.1f%%, compute %.1f%%)\n",
		res.Energy.Total(), 100*res.Energy.Total()/base.Energy.Total(),
		100*res.Energy.EDRAM/res.Energy.Total(), 100*res.Energy.Compute/res.Energy.Total())
	fmt.Printf("compress  %.2fx weight compression, %.1f KB index storage\n",
		res.CompressionRatio, float64(res.IndexStorageBits)/8/1024)

	if *layers {
		fmt.Println("\nper-layer:")
		for _, l := range res.Layers {
			fmt.Printf("  %-40s %12d cycles  %10.3g J\n", l.Name, l.Cycles, l.Energy.Total())
		}
	}
	if *runISAAC {
		ires := net.RunISAAC(true)
		fmt.Printf("\nISAAC(+ReCom): time %.4g s, energy %.4g J — SRE/ISAAC time %.2f, energy %.2f\n",
			ires.Seconds, ires.Energy.Total(),
			res.Seconds/ires.Seconds, res.Energy.Total()/ires.Energy.Total())
	}
}

// modeHelp derives the -mode usage string from the registry, so a
// newly registered mode shows up in -help without touching this file;
// occ rides along because it runs through RunOCC, not RunContext.
func modeHelp() string {
	names := make([]string, 0, len(sre.Modes())+1)
	for _, m := range sre.Modes() {
		names = append(names, m.String())
	}
	return strings.Join(append(names, "occ"), "|")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sresim:", err)
		os.Exit(1)
	}
}
