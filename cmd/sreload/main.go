// Command sreload is the SLO load harness for sreserved: N concurrent
// clients replay a skewed design-point workload against a running
// server and report the latency distribution (p50/p90/p99/max),
// throughput, error count, and result-cache hit rate — the numbers the
// serving SLO is written in. It is how the result cache's claim
// ("repeated design-point queries are answered without sweeping") is
// proven as an end-to-end latency improvement rather than a counter.
//
// The workload is parameterized the way serve traffic actually skews:
//
//   - -keys N spreads requests over N design points that share one
//     resident network (they differ in the run-scoped max_windows
//     knob), so the registry builds once and the load isolates the
//     serve path rather than the builder;
//   - -hot F sends fraction F of requests to the first key (the rest
//     spread uniformly), modelling the hot-design-point skew that
//     makes a result cache pay;
//   - -seeds N draws each request's act_seed from [0, N), so the cache
//     key space is keys x seeds x mode-set;
//   - -modes lists the mode set every request asks for.
//
// Every response is checked for bit-identity: the first result body
// seen for a (key, act_seed) cell is the reference, and any later
// response for that cell that differs is a mismatch (the run fails) —
// cached and swept responses must be indistinguishable.
//
// A warmup pass (one request per cell, unmeasured, on by default)
// separates build/first-sweep cost from steady-state latency, so the
// measured phase compares "sweep every time" against "hit the cache"
// rather than "build the network".
//
// Results print as a go-test-style benchmark line and can be appended
// to a benchjson-shaped JSON record (-out, -append), which is how
// `make bench-load` accumulates the cache-off and cache-on runs into
// one BENCH file:
//
//	sreload -addr 127.0.0.1:8344 -clients 8 -requests 400 \
//	  -keys 4 -hot 0.8 -seeds 2 -modes baseline,orc+dof \
//	  -label cache=on -out BENCH_PR8.json -append
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type simRequest struct {
	Network string         `json:"network"`
	Prune   string         `json:"prune,omitempty"`
	Modes   []string       `json:"modes"`
	Config  map[string]int `json:"config"`
	ActSeed uint64         `json:"act_seed,omitempty"`
	Timeout int64          `json:"timeout_ms,omitempty"`
}

type simResponse struct {
	BatchSize int             `json:"batch_size"`
	Cached    bool            `json:"cached"`
	Results   json.RawMessage `json:"results"`
}

// cell is one point of the cached-result key space the load walks.
type cell struct {
	maxWindows int
	actSeed    uint64
}

// sample is one measured request.
type sample struct {
	latency time.Duration
	cached  bool
	batch   int
	err     bool
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8344", "sreserved address (host:port)")
		network  = flag.String("network", "MNIST", "network every request targets")
		prune    = flag.String("prune", "ssl", "prune style")
		modesFl  = flag.String("modes", "baseline,orc+dof", "comma-separated mode set every request asks for")
		clients  = flag.Int("clients", 8, "concurrent client goroutines")
		requests = flag.Int("requests", 400, "total measured requests (spread across clients)")
		keys     = flag.Int("keys", 4, "distinct design points (vary run-scoped max_windows)")
		hot      = flag.Float64("hot", 0.8, "fraction of requests aimed at the first key")
		seeds    = flag.Int("seeds", 2, "act_seed values drawn per request, uniform over [0, seeds)")
		maxWin   = flag.Int("max-windows", 48, "max_windows of the first key; key i uses max-windows - 2i")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-request timeout")
		warmup   = flag.Bool("warmup", true, "issue one unmeasured request per (key, seed) cell first")
		seed     = flag.Int64("seed", 1, "workload RNG seed (per-client streams derive from it)")
		label    = flag.String("label", "", "benchmark label suffix (e.g. cache=on)")
		out      = flag.String("out", "", "write (or with -append, extend) a benchjson-shaped record here")
		appendFl = flag.Bool("append", false, "append to -out instead of overwriting")
	)
	flag.Parse()

	modes := strings.Split(*modesFl, ",")
	if *keys < 1 || *clients < 1 || *requests < 1 || *seeds < 1 {
		fatal(fmt.Errorf("keys, clients, requests, seeds must all be >= 1"))
	}
	cells := make([]cell, 0, *keys**seeds)
	for k := 0; k < *keys; k++ {
		mw := *maxWin - 2*k
		if mw < 4 {
			mw = 4 + k // keep every key distinct and valid
		}
		for s := 0; s < *seeds; s++ {
			cells = append(cells, cell{maxWindows: mw, actSeed: uint64(s)})
		}
	}

	client := &http.Client{Timeout: *timeout + 5*time.Second}
	url := "http://" + *addr + "/v1/simulate"
	do := func(c cell) (simResponse, time.Duration, error) {
		body, _ := json.Marshal(simRequest{
			Network: *network,
			Prune:   *prune,
			Modes:   modes,
			Config:  map[string]int{"max_windows": c.maxWindows},
			ActSeed: c.actSeed,
			Timeout: timeout.Milliseconds(),
		})
		start := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return simResponse{}, time.Since(start), err
		}
		defer resp.Body.Close()
		var sr simResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			return simResponse{}, time.Since(start), err
		}
		if resp.StatusCode != http.StatusOK {
			return sr, time.Since(start), fmt.Errorf("HTTP %d", resp.StatusCode)
		}
		return sr, time.Since(start), nil
	}

	// Bit-identity ledger: first response per cell is the reference.
	var refs sync.Map // cell -> uint64 fnv hash of the results body
	var mismatches atomic.Int64
	check := func(c cell, results json.RawMessage) {
		h := fnv.New64a()
		h.Write(results)
		sum := h.Sum64()
		if prev, loaded := refs.LoadOrStore(c, sum); loaded && prev.(uint64) != sum {
			mismatches.Add(1)
		}
	}

	if *warmup {
		fmt.Fprintf(os.Stderr, "sreload: warmup: %d cells\n", len(cells))
		for _, c := range cells {
			sr, _, err := do(c)
			if err != nil {
				fatal(fmt.Errorf("warmup %+v: %w", c, err))
			}
			check(c, sr.Results)
		}
	}

	fmt.Fprintf(os.Stderr, "sreload: measuring: %d requests, %d clients, %d keys (hot %.2f), %d seeds, modes %v\n",
		*requests, *clients, *keys, *hot, *seeds, modes)
	samples := make([]sample, *requests)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			for {
				i := int(next.Add(1)) - 1
				if i >= *requests {
					return
				}
				k := 0
				if rng.Float64() >= *hot && *keys > 1 {
					k = 1 + rng.Intn(*keys-1)
				}
				c := cells[k**seeds+rng.Intn(*seeds)]
				sr, lat, err := do(c)
				samples[i] = sample{latency: lat, cached: sr.Cached, batch: sr.BatchSize, err: err != nil}
				if err == nil {
					check(c, sr.Results)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	lats := make([]time.Duration, 0, len(samples))
	var hits, errs, batchSum int64
	for _, s := range samples {
		if s.err {
			errs++
			continue
		}
		lats = append(lats, s.latency)
		if s.cached {
			hits++
		}
		batchSum += int64(s.batch)
	}
	if len(lats) == 0 {
		fatal(fmt.Errorf("every request failed (%d errors)", errs))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1)+0.5)] }
	var mean time.Duration
	for _, l := range lats {
		mean += l
	}
	mean /= time.Duration(len(lats))
	hitRate := float64(hits) / float64(len(lats))
	reqPerSec := float64(len(lats)) / elapsed.Seconds()

	name := "BenchmarkServeLoad"
	if *label != "" {
		name += "/" + *label
	}
	metrics := map[string]float64{
		"ns/op":      float64(mean.Nanoseconds()),
		"p50-ns":     float64(pct(0.50).Nanoseconds()),
		"p90-ns":     float64(pct(0.90).Nanoseconds()),
		"p99-ns":     float64(pct(0.99).Nanoseconds()),
		"max-ns":     float64(lats[len(lats)-1].Nanoseconds()),
		"req/s":      reqPerSec,
		"hit-rate":   hitRate,
		"mean-batch": float64(batchSum) / float64(len(lats)),
		"errors":     float64(errs),
		"mismatches": float64(mismatches.Load()),
	}
	fmt.Printf("%s\t%d\t%.0f ns/op\t%.0f p50-ns\t%.0f p99-ns\t%.1f req/s\t%.3f hit-rate\n",
		name, len(lats), metrics["ns/op"], metrics["p50-ns"], metrics["p99-ns"], reqPerSec, hitRate)
	if n := mismatches.Load(); n > 0 {
		fatal(fmt.Errorf("%d bit-identity mismatches: cached responses differ from swept ones", n))
	}
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "sreload: %d requests failed\n", errs)
	}

	if *out != "" {
		fatal(writeRecord(*out, *appendFl, benchmark{
			Name:       name,
			Iterations: int64(len(lats)),
			Metrics:    metrics,
		}))
	}
	if errs > 0 {
		os.Exit(1)
	}
}

// benchmark and record mirror cmd/benchjson's JSON shapes, so
// BENCH files written here compare with `benchjson -compare` and sit
// alongside the go-test-derived records.
type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type record struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

// writeRecord writes (or, when append is set and the file exists,
// extends) the benchjson-shaped record at path with b. A re-run with
// the same label replaces that benchmark instead of duplicating it.
func writeRecord(path string, appendTo bool, b benchmark) error {
	rec := record{GoOS: runtime.GOOS, GoArch: runtime.GOARCH, Pkg: "sre/cmd/sreload"}
	if appendTo {
		if data, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(data, &rec); err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
		}
	}
	replaced := false
	for i := range rec.Benchmarks {
		if rec.Benchmarks[i].Name == b.Name {
			rec.Benchmarks[i] = b
			replaced = true
			break
		}
	}
	if !replaced {
		rec.Benchmarks = append(rec.Benchmarks, b)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sreload: recorded %s in %s\n", b.Name, path)
	return nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sreload:", err)
		os.Exit(1)
	}
}
