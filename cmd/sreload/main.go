// Command sreload is the SLO load harness for sreserved: N concurrent
// clients replay a skewed design-point workload against a running
// server and report the latency distribution (p50/p90/p99/max),
// throughput, error count, and result-cache hit rate — the numbers the
// serving SLO is written in. It is how the result cache's claim
// ("repeated design-point queries are answered without sweeping") is
// proven as an end-to-end latency improvement rather than a counter.
//
// The workload is parameterized the way serve traffic actually skews:
//
//   - -keys N spreads requests over N design points that share one
//     resident network (they differ in the run-scoped max_windows
//     knob), so the registry builds once and the load isolates the
//     serve path rather than the builder;
//   - -hot F sends fraction F of requests to the first key (the rest
//     spread uniformly), modelling the hot-design-point skew that
//     makes a result cache pay;
//   - -seeds N draws each request's act_seed from [0, N), so the cache
//     key space is keys x seeds x mode-set;
//   - -modes lists the mode set every request asks for.
//
// Every response is checked for bit-identity: the first result body
// seen for a (key, act_seed) cell is the reference, and any later
// response for that cell that differs is a mismatch (the run fails) —
// cached and swept responses must be indistinguishable.
//
// A warmup pass (one request per cell, unmeasured, on by default)
// separates build/first-sweep cost from steady-state latency, so the
// measured phase compares "sweep every time" against "hit the cache"
// rather than "build the network".
//
// Results print as a go-test-style benchmark line and can be appended
// to a benchjson-shaped JSON record (-out, -append), which is how
// `make bench-load` accumulates the cache-off and cache-on runs into
// one BENCH file:
//
//	sreload -addr 127.0.0.1:8344 -clients 8 -requests 400 \
//	  -keys 4 -hot 0.8 -seeds 2 -modes baseline,orc+dof \
//	  -label cache=on -out BENCH_PR8.json -append
//
// Multi-replica load: -addr accepts a comma-separated address list and
// spreads the client goroutines across the replicas round-robin — the
// aggregate-throughput shape a sharded cluster serves. With more than
// one target, -key-dim seed makes the design points differ in the
// build-scoped config seed (distinct resident networks, so ownership
// spreads over the ring) instead of the run-scoped max_windows, the
// report adds a per-replica latency breakdown, and the replicas'
// /metrics are scraped before and after the measured phase to report
// the cluster's forward rate. The bit-identity ledger is unchanged: a
// forwarded response must be byte-identical to an owned one.
//
//	sreload -addr 127.0.0.1:8344,127.0.0.1:8345 -key-dim seed \
//	  -clients 8 -requests 400 -keys 4 -hot 0.8 -seeds 2 \
//	  -label replicas=2 -out BENCH_PR9.json -append
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sre/internal/cli"
)

type simRequest struct {
	Network string         `json:"network"`
	Prune   string         `json:"prune,omitempty"`
	Modes   []string       `json:"modes"`
	Config  map[string]int `json:"config"`
	ActSeed uint64         `json:"act_seed,omitempty"`
	Timeout int64          `json:"timeout_ms,omitempty"`
}

type simResponse struct {
	BatchSize int             `json:"batch_size"`
	Cached    bool            `json:"cached"`
	Results   json.RawMessage `json:"results"`
}

// cell is one point of the cached-result key space the load walks.
// cfgSeed != 0 varies the build-scoped config seed instead of the
// run-scoped max_windows (-key-dim seed), so each key is a distinct
// resident network.
type cell struct {
	maxWindows int
	actSeed    uint64
	cfgSeed    uint64
}

// sample is one measured request.
type sample struct {
	latency time.Duration
	cached  bool
	batch   int
	replica int
	err     bool
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8344", "sreserved address(es), comma-separated for multi-replica load")
		keyDim   = flag.String("key-dim", "window", "what distinguishes design points: window (run-scoped max_windows) or seed (build-scoped config seed; spreads ownership across a cluster)")
		network  = flag.String("network", "MNIST", "network every request targets")
		prune    = flag.String("prune", "ssl", "prune style")
		modesFl  = flag.String("modes", "baseline,orc+dof", "comma-separated mode set every request asks for")
		clients  = flag.Int("clients", 8, "concurrent client goroutines")
		requests = flag.Int("requests", 400, "total measured requests (spread across clients)")
		keys     = flag.Int("keys", 4, "distinct design points (vary run-scoped max_windows)")
		hot      = flag.Float64("hot", 0.8, "fraction of requests aimed at the first key")
		seeds    = flag.Int("seeds", 2, "act_seed values drawn per request, uniform over [0, seeds)")
		maxWin   = flag.Int("max-windows", 48, "max_windows of the first key; key i uses max-windows - 2i")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-request timeout")
		warmup   = flag.Bool("warmup", true, "issue one unmeasured request per (key, seed) cell first")
		seed     = flag.Int64("seed", 1, "workload RNG seed (per-client streams derive from it)")
		label    = flag.String("label", "", "benchmark label suffix (e.g. cache=on)")
		out      = flag.String("out", "", "write (or with -append, extend) a benchjson-shaped record here")
		appendFl = flag.Bool("append", false, "append to -out instead of overwriting")
	)
	flag.Parse()

	modes := strings.Split(*modesFl, ",")
	if *keys < 1 || *clients < 1 || *requests < 1 || *seeds < 1 {
		fatal(fmt.Errorf("keys, clients, requests, seeds must all be >= 1"))
	}
	addrs := cli.SplitAddrs(*addr)
	if len(addrs) == 0 {
		fatal(fmt.Errorf("-addr names no replica address"))
	}
	if *keyDim != "window" && *keyDim != "seed" {
		fatal(fmt.Errorf("bad -key-dim %q (want window or seed)", *keyDim))
	}
	cells := make([]cell, 0, *keys**seeds)
	for k := 0; k < *keys; k++ {
		mw := *maxWin
		var cs uint64
		if *keyDim == "seed" {
			// Build-scoped spread: key k is a distinct resident network
			// (its own registry key, hence its own ring owner).
			cs = uint64(1000 + k)
		} else {
			mw = *maxWin - 2*k
			if mw < 4 {
				mw = 4 + k // keep every key distinct and valid
			}
		}
		for s := 0; s < *seeds; s++ {
			cells = append(cells, cell{maxWindows: mw, actSeed: uint64(s), cfgSeed: cs})
		}
	}

	client := &http.Client{Timeout: *timeout + 5*time.Second}
	do := func(target int, c cell) (simResponse, time.Duration, error) {
		cfg := map[string]int{"max_windows": c.maxWindows}
		if c.cfgSeed != 0 {
			cfg["seed"] = int(c.cfgSeed)
		}
		body, _ := json.Marshal(simRequest{
			Network: *network,
			Prune:   *prune,
			Modes:   modes,
			Config:  cfg,
			ActSeed: c.actSeed,
			Timeout: timeout.Milliseconds(),
		})
		start := time.Now()
		resp, err := client.Post("http://"+addrs[target]+"/v1/simulate", "application/json", bytes.NewReader(body))
		if err != nil {
			return simResponse{}, time.Since(start), err
		}
		defer resp.Body.Close()
		var sr simResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			return simResponse{}, time.Since(start), err
		}
		if resp.StatusCode != http.StatusOK {
			return sr, time.Since(start), fmt.Errorf("HTTP %d", resp.StatusCode)
		}
		return sr, time.Since(start), nil
	}

	// Bit-identity ledger: first response per cell is the reference.
	var refs sync.Map // cell -> uint64 fnv hash of the results body
	var mismatches atomic.Int64
	check := func(c cell, results json.RawMessage) {
		h := fnv.New64a()
		h.Write(results)
		sum := h.Sum64()
		if prev, loaded := refs.LoadOrStore(c, sum); loaded && prev.(uint64) != sum {
			mismatches.Add(1)
		}
	}

	if *warmup {
		fmt.Fprintf(os.Stderr, "sreload: warmup: %d cells\n", len(cells))
		for i, c := range cells {
			sr, _, err := do(i%len(addrs), c)
			if err != nil {
				fatal(fmt.Errorf("warmup %+v: %w", c, err))
			}
			check(c, sr.Results)
		}
	}

	// Forward-rate baseline: scrape each replica's forwarded counter so
	// the measured phase's delta excludes warmup hops.
	fwdBefore := scrapeForwarded(addrs)

	fmt.Fprintf(os.Stderr, "sreload: measuring: %d requests, %d clients over %d replica(s), %d keys (hot %.2f, dim %s), %d seeds, modes %v\n",
		*requests, *clients, len(addrs), *keys, *hot, *keyDim, *seeds, modes)
	samples := make([]sample, *requests)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Clients spread across the replicas round-robin, the way a
			// load balancer (or client-side sharding) would.
			target := w % len(addrs)
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			for {
				i := int(next.Add(1)) - 1
				if i >= *requests {
					return
				}
				k := 0
				if rng.Float64() >= *hot && *keys > 1 {
					k = 1 + rng.Intn(*keys-1)
				}
				c := cells[k**seeds+rng.Intn(*seeds)]
				sr, lat, err := do(target, c)
				samples[i] = sample{latency: lat, cached: sr.Cached, batch: sr.BatchSize, replica: target, err: err != nil}
				if err == nil {
					check(c, sr.Results)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	lats := make([]time.Duration, 0, len(samples))
	var hits, errs, batchSum int64
	for _, s := range samples {
		if s.err {
			errs++
			continue
		}
		lats = append(lats, s.latency)
		if s.cached {
			hits++
		}
		batchSum += int64(s.batch)
	}
	if len(lats) == 0 {
		fatal(fmt.Errorf("every request failed (%d errors)", errs))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1)+0.5)] }
	var mean time.Duration
	for _, l := range lats {
		mean += l
	}
	mean /= time.Duration(len(lats))
	hitRate := float64(hits) / float64(len(lats))
	reqPerSec := float64(len(lats)) / elapsed.Seconds()

	name := "BenchmarkServeLoad"
	if *label != "" {
		name += "/" + *label
	}
	metrics := map[string]float64{
		"ns/op":      float64(mean.Nanoseconds()),
		"p50-ns":     float64(pct(0.50).Nanoseconds()),
		"p90-ns":     float64(pct(0.90).Nanoseconds()),
		"p99-ns":     float64(pct(0.99).Nanoseconds()),
		"max-ns":     float64(lats[len(lats)-1].Nanoseconds()),
		"req/s":      reqPerSec,
		"hit-rate":   hitRate,
		"mean-batch": float64(batchSum) / float64(len(lats)),
		"errors":     float64(errs),
		"mismatches": float64(mismatches.Load()),
	}
	if len(addrs) > 1 {
		// Cluster extras: the measured phase's forward rate (hops per
		// successful request, from the replicas' counters) and a
		// per-replica latency breakdown.
		metrics["forward-rate"] = (scrapeForwarded(addrs) - fwdBefore) / float64(len(lats))
		for ri, a := range addrs {
			rl := make([]time.Duration, 0, len(lats))
			for _, s := range samples {
				if !s.err && s.replica == ri {
					rl = append(rl, s.latency)
				}
			}
			if len(rl) == 0 {
				continue
			}
			sort.Slice(rl, func(i, j int) bool { return rl[i] < rl[j] })
			rp := func(p float64) time.Duration { return rl[int(p*float64(len(rl)-1)+0.5)] }
			fmt.Fprintf(os.Stderr, "sreload: replica %s: %d reqs, p50 %v, p99 %v\n",
				a, len(rl), rp(0.50), rp(0.99))
			prefix := fmt.Sprintf("r%d-", ri)
			metrics[prefix+"req"] = float64(len(rl))
			metrics[prefix+"p50-ns"] = float64(rp(0.50).Nanoseconds())
			metrics[prefix+"p99-ns"] = float64(rp(0.99).Nanoseconds())
		}
	}
	fmt.Printf("%s\t%d\t%.0f ns/op\t%.0f p50-ns\t%.0f p99-ns\t%.1f req/s\t%.3f hit-rate\n",
		name, len(lats), metrics["ns/op"], metrics["p50-ns"], metrics["p99-ns"], reqPerSec, hitRate)
	if fr, ok := metrics["forward-rate"]; ok {
		fmt.Fprintf(os.Stderr, "sreload: forward-rate %.3f hops/request across %d replicas\n", fr, len(addrs))
	}
	if n := mismatches.Load(); n > 0 {
		fatal(fmt.Errorf("%d bit-identity mismatches: cached responses differ from swept ones", n))
	}
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "sreload: %d requests failed\n", errs)
	}

	if *out != "" {
		fatal(writeRecord(*out, *appendFl, benchmark{
			Name:       name,
			Iterations: int64(len(lats)),
			Metrics:    metrics,
		}))
	}
	if errs > 0 {
		os.Exit(1)
	}
}

// scrapeForwarded sums sre_serve_forwarded_total across the replicas'
// /metrics endpoints (0 for replicas without the counter, e.g. a
// single-replica server, or ones that cannot be scraped).
func scrapeForwarded(addrs []string) float64 {
	var total float64
	for _, a := range addrs {
		resp, err := http.Get("http://" + a + "/metrics")
		if err != nil {
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, line := range strings.Split(string(body), "\n") {
			if rest, ok := strings.CutPrefix(line, "sre_serve_forwarded_total "); ok {
				if v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil {
					total += v
				}
			}
		}
	}
	return total
}

// benchmark and record mirror cmd/benchjson's JSON shapes, so
// BENCH files written here compare with `benchjson -compare` and sit
// alongside the go-test-derived records.
type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type record struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

// writeRecord writes (or, when append is set and the file exists,
// extends) the benchjson-shaped record at path with b. A re-run with
// the same label replaces that benchmark instead of duplicating it.
func writeRecord(path string, appendTo bool, b benchmark) error {
	rec := record{GoOS: runtime.GOOS, GoArch: runtime.GOARCH, Pkg: "sre/cmd/sreload"}
	if appendTo {
		if data, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(data, &rec); err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
		}
	}
	replaced := false
	for i := range rec.Benchmarks {
		if rec.Benchmarks[i].Name == b.Name {
			rec.Benchmarks[i] = b
			replaced = true
			break
		}
	}
	if !replaced {
		rec.Benchmarks = append(rec.Benchmarks, b)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sreload: recorded %s in %s\n", b.Name, path)
	return nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sreload:", err)
		os.Exit(1)
	}
}
