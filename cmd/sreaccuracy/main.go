// Command sreaccuracy runs the Fig. 5 accuracy-vs-wordlines study with
// adjustable device parameters: it trains a small CNN on a synthetic
// dataset, then evaluates inference accuracy while injecting the ReRAM
// read-error channel at each candidate OU height.
//
// Usage:
//
//	sreaccuracy                          # defaults: baseline WOx cell
//	sreaccuracy -sigma 0.05 -rratio 10   # a worse device
//	sreaccuracy -improve 3               # the paper's (3Rb, σb/3) variant
//	sreaccuracy -wordlines 4,16,64 -samples 300
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sre/internal/cli"
	"sre/internal/dataset"
	"sre/internal/experiments"
	"sre/internal/nn"
	"sre/internal/parallel"
	"sre/internal/quant"
	"sre/internal/reram"
	"sre/internal/train"
	"sre/internal/xrand"
)

func main() {
	var (
		sigma     = flag.Float64("sigma", reram.WOxBaseline().Sigma, "per-cell relative current deviation")
		rratio    = flag.Float64("rratio", reram.WOxBaseline().RRatio, "Ion/Ioff resistance window")
		improve   = flag.Float64("improve", 1, "scale R-ratio up and sigma down by this factor")
		wordlines = flag.String("wordlines", "4,8,16,32,64,128", "comma-separated OU heights")
		samples   = flag.Int("samples", 200, "test samples")
		epochs    = flag.Int("epochs", 8, "training epochs")
		seed      = flag.Uint64("seed", 1, "seed")
		workers   = cli.AddWorkers(flag.CommandLine)
	)
	flag.Parse()

	cell := reram.Cell{Bits: 2, RRatio: *rratio, Sigma: *sigma}.Improved(*improve)
	if err := cell.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "sreaccuracy:", err)
		os.Exit(2)
	}
	var ns []int
	for _, part := range strings.Split(*wordlines, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 || n > 128 {
			fmt.Fprintf(os.Stderr, "sreaccuracy: bad wordline count %q\n", part)
			os.Exit(2)
		}
		ns = append(ns, n)
	}

	cfg := dataset.Config{Name: "acc", Channels: 1, Size: 20, Classes: 10,
		Train: 1200, Test: *samples, Noise: 0.30, MaxShift: 2, Seed: 101}
	trainSet, testSet := dataset.Generate(cfg)
	net, err := nn.Parse("acc", nn.Shape{1, 20, 20}, "conv5x8-pool-conv3x16-pool-64-10")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sreaccuracy:", err)
		os.Exit(1)
	}
	fmt.Printf("training on %d synthetic samples...\n", trainSet.Len())
	tr := train.New(net, 0.03, *seed+7)
	for e := 0; e < *epochs; e++ {
		tr.TrainEpoch(trainSet)
		tr.LR *= 0.5
	}
	clean := tr.Accuracy(testSet)
	fmt.Printf("clean accuracy: %.1f%%\n\n", 100*clean)

	p := quant.Default()
	fmt.Printf("cell: R-ratio %.0f, sigma %.4f (%d-bit cells)\n", cell.RRatio, cell.Sigma, cell.Bits)
	fmt.Printf("%-10s %-18s %s\n", "wordlines", "read-error prob", "accuracy")
	// Each wordline count seeds its own RNG, so the sweep shards across
	// workers without changing any result.
	accs := make([]float64, len(ns))
	parallel.New(*workers).For(context.Background(), len(ns), func(start, end int) {
		for i := start; i < end; i++ {
			n := ns[i]
			accs[i] = experiments.NoisyAccuracy(net, testSet, cell, n, p, xrand.New(*seed+uint64(n)))
		}
	})
	for i, n := range ns {
		fmt.Printf("%-10d %-18.3g %.1f%%\n", n, cell.ReadErrorProb(n/2, 1.5), 100*accs[i])
	}
	fmt.Println("\nthe paper sets the OU height to 16: the largest count that keeps")
	fmt.Println("accuracy intact for realistic cells (Fig. 5, §3).")
}
