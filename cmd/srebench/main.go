// Command srebench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	srebench -experiment fig17          # one experiment
//	srebench -all                       # everything, in paper order
//	srebench -list                      # available experiment IDs
//	srebench -all -quick                # trimmed sweeps (small networks)
//	srebench -experiment fig17 -windows 96 -seed 7
//	srebench -all -workers 8            # shard simulations over 8 workers
//	srebench -experiment fig17 -metrics run.json  # run-metrics snapshot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sre/internal/cli"
	"sre/internal/experiments"
	"sre/internal/profiling"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment ID to run (see -list)")
		all        = flag.Bool("all", false, "run every experiment in paper order")
		list       = flag.Bool("list", false, "list experiment IDs")
		quick      = flag.Bool("quick", false, "trim sweeps for a fast run")
		asJSON     = flag.Bool("json", false, "emit tables as a JSON array instead of text")
		windows    = flag.Int("windows", 48, "per-layer window sampling cap (0 = all windows)")
		seed       = flag.Uint64("seed", 1, "workload seed")
		workers    = cli.AddWorkers(flag.CommandLine)
		snapDir    = cli.AddSnapshotDir(flag.CommandLine)
		codeCache  = cli.AddCodeCache(flag.CommandLine)
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
		metricsFl  = cli.AddMetrics(flag.CommandLine)
	)
	flag.Parse()

	stopCPU, err := profiling.StartCPU(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "srebench:", err)
		os.Exit(1)
	}
	defer stopCPU()
	defer func() {
		if err := profiling.WriteHeap(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, "srebench:", err)
		}
	}()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	opt := experiments.Options{Seed: *seed, MaxWindows: *windows, Quick: *quick,
		Workers: *workers, NoCodeCache: !*codeCache, SnapshotDir: *snapDir,
		Metrics: metricsFl.Registry()}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *experiment != "":
		ids = []string{*experiment}
	default:
		fmt.Fprintln(os.Stderr, "srebench: pass -experiment <id>, -all, or -list")
		os.Exit(2)
	}
	var tables []*experiments.Table
	for _, id := range ids {
		start := time.Now()
		table, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "srebench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *asJSON {
			tables = append(tables, table)
			fmt.Fprintf(os.Stderr, "(%s took %s)\n", id, time.Since(start).Round(time.Millisecond))
			continue
		}
		fmt.Print(table.Format())
		fmt.Printf("(%s took %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintln(os.Stderr, "srebench:", err)
			os.Exit(1)
		}
	}
	if opt.Metrics != nil {
		if err := metricsFl.Write(opt.Metrics.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "srebench:", err)
			os.Exit(1)
		}
	}
}
