// Command sreserved is the resident simulation service: a long-lived
// HTTP/JSON daemon that keeps built networks in memory and serves
// simulation requests against them, amortizing workload synthesis and
// the simulator's plan/window-code caches across every request that
// shares a design point.
//
// Usage:
//
//	sreserved                                  # listen on 127.0.0.1:8344
//	sreserved -addr :9000 -sweeps 4 -workers 8
//	sreserved -metrics final.prom -metrics-format prom
//
//	# sharded cluster: every replica gets the same -peers list and its
//	# own -addr/-self; keys are partitioned by consistent hashing and
//	# mis-addressed requests are forwarded one hop to their owner
//	sreserved -addr 127.0.0.1:8344 -peers 127.0.0.1:8344,127.0.0.1:8345
//	sreserved -addr 127.0.0.1:8345 -peers 127.0.0.1:8344,127.0.0.1:8345
//
//	curl localhost:8344/healthz
//	curl localhost:8344/v1/networks
//	curl localhost:8344/metrics
//	curl -X POST localhost:8344/v1/simulate -d '{
//	  "network": "MNIST", "modes": ["baseline", "orc+dof"],
//	  "config": {"max_windows": 12}, "timeout_ms": 5000}'
//
// SIGTERM/SIGINT triggers a graceful drain: new requests get 503,
// in-flight requests finish (up to -grace), and a final metrics
// snapshot is flushed before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sre/internal/cli"
	"sre/internal/metrics"
	"sre/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8344", "listen address")
		queue    = flag.Int("queue", 64, "max admitted (queued + running) requests")
		sweeps   = flag.Int("sweeps", 2, "max concurrent simulation sweeps")
		batchWin = flag.Duration("batch-window", 2*time.Millisecond, "micro-batch coalescing window (negative disables)")
		grace    = flag.Duration("grace", 30*time.Second, "drain grace period on SIGTERM/SIGINT")
		cacheCap = cli.AddByteSize(flag.CommandLine, "result-cache-bytes", 256<<20,
			"deterministic result cache capacity (e.g. 64MiB; 0 disables)")
		regCap = cli.AddByteSize(flag.CommandLine, "registry-bytes", 0,
			"resident-network registry capacity (e.g. 2GiB; 0 = unbounded)")
		workers   = cli.AddWorkers(flag.CommandLine)
		snapDir   = cli.AddSnapshotDir(flag.CommandLine)
		peersFl   = cli.AddPeers(flag.CommandLine)
		selfFl    = cli.AddSelf(flag.CommandLine)
		metricsFl = cli.AddMetrics(flag.CommandLine)
	)
	flag.Parse()

	// Cluster mode: -peers lists every replica (this one included);
	// -self defaults to the listen address. Validated here so a
	// misconfigured replica dies at startup with a usable message
	// instead of forwarding its own keys away.
	peers := cli.SplitAddrs(*peersFl)
	self := *selfFl
	if len(peers) > 0 {
		if self == "" {
			self = *addr
		}
		found := false
		for _, p := range peers {
			if p == self {
				found = true
				break
			}
		}
		if !found {
			fatal(fmt.Errorf("-self %q is not in -peers %v (pass -self with the address this replica is listed under)", self, peers))
		}
	}

	resultCache := cacheCap.Int64()
	if resultCache <= 0 {
		resultCache = -1 // Options: 0 means "default", negative disables
	}
	reg := metrics.NewRegistry()
	srv := serve.NewServer(serve.Options{
		MaxQueue:         *queue,
		MaxSweeps:        *sweeps,
		BatchWindow:      *batchWin,
		Workers:          *workers,
		Metrics:          reg,
		SnapshotDir:      *snapDir,
		ResultCacheBytes: resultCache,
		RegistryBytes:    regCap.Int64(),
		Peers:            peers,
		Self:             self,
	})
	httpSrv := &http.Server{Handler: srv}

	ln, err := net.Listen("tcp", *addr)
	fatal(err)
	if len(peers) > 0 {
		fmt.Fprintf(os.Stderr, "sreserved: serving on http://%s (queue %d, sweeps %d; shard %s of %d-replica cluster)\n",
			ln.Addr(), *queue, *sweeps, self, len(peers))
	} else {
		fmt.Fprintf(os.Stderr, "sreserved: serving on http://%s (queue %d, sweeps %d)\n",
			ln.Addr(), *queue, *sweeps)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fatal(err) // listener died before any signal
	case <-ctx.Done():
	}
	stop()

	// Graceful drain: stop admitting, finish in-flight requests,
	// close the listeners, then flush a final metrics snapshot.
	fmt.Fprintf(os.Stderr, "sreserved: draining (grace %s)...\n", *grace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "sreserved: drain incomplete:", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "sreserved: shutdown:", err)
	}

	snap := reg.Snapshot()
	if metricsFl.Enabled() {
		fatal(metricsFl.Write(snap))
	} else {
		fmt.Fprintln(os.Stderr, "sreserved: final metrics snapshot:")
		fatal(cli.WriteSnapshot(os.Stderr, "prom", snap))
	}
	fmt.Fprintln(os.Stderr, "sreserved: drained, bye")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sreserved:", err)
		os.Exit(1)
	}
}
