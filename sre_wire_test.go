package sre

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestModeTextRoundTrip pins the canonical Mode spelling shared by the
// CLIs and the sreserved wire format: String → ParseMode is the
// identity, and the encoding.Text{Marshaler,Unmarshaler} pair agrees.
func TestModeTextRoundTrip(t *testing.T) {
	for _, m := range Modes() {
		parsed, err := ParseMode(m.String())
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", m.String(), err)
		}
		if parsed != m {
			t.Fatalf("ParseMode(%q) = %v, want %v", m.String(), parsed, m)
		}
		text, err := m.MarshalText()
		if err != nil {
			t.Fatalf("%v MarshalText: %v", m, err)
		}
		var back Mode
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("%v UnmarshalText(%q): %v", m, text, err)
		}
		if back != m {
			t.Fatalf("text round trip %v -> %q -> %v", m, text, back)
		}
	}
	// Case- and space-insensitive on the way in.
	if m, err := ParseMode(" ORC+DOF "); err != nil || m != ORCDOF {
		t.Fatalf("ParseMode(\" ORC+DOF \") = %v, %v", m, err)
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode accepted an unknown mode")
	}
	if _, err := Mode(99).MarshalText(); err == nil {
		t.Fatal("MarshalText accepted an unknown mode")
	}
}

func TestPruneStyleTextRoundTrip(t *testing.T) {
	for _, s := range PruneStyles() {
		parsed, err := ParsePruneStyle(strings.ToUpper(s.String()))
		if err != nil {
			t.Fatalf("ParsePruneStyle(%q): %v", s.String(), err)
		}
		if parsed != s {
			t.Fatalf("ParsePruneStyle(%q) = %v, want %v", s.String(), parsed, s)
		}
		text, err := s.MarshalText()
		if err != nil {
			t.Fatalf("%v MarshalText: %v", s, err)
		}
		var back PruneStyle
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("%v UnmarshalText(%q): %v", s, text, err)
		}
		if back != s {
			t.Fatalf("text round trip %v -> %q -> %v", s, text, back)
		}
	}
	if _, err := ParsePruneStyle("bogus"); err == nil {
		t.Fatal("ParsePruneStyle accepted an unknown style")
	}
	if _, err := PruneStyle(99).MarshalText(); err == nil {
		t.Fatal("MarshalText accepted an unknown style")
	}
}

// TestResultJSONRoundTrip proves a served Result survives the wire:
// JSON encode → decode reproduces the struct exactly (Mode as its
// canonical string, Breakdown and LayerResult field-for-field).
func TestResultJSONRoundTrip(t *testing.T) {
	net, err := Load("MNIST", WithMaxWindows(6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Run(ORCDOF)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"Mode":"orc+dof"`) {
		t.Fatalf("Mode did not marshal as its canonical string: %s", raw)
	}
	if res.Version != ResultVersion {
		t.Fatalf("Result.Version = %d, want ResultVersion (%d)", res.Version, ResultVersion)
	}
	if !strings.Contains(string(raw), `"Version":2`) {
		t.Fatalf("served JSON is missing the wire-format version: %s", raw[:120])
	}
	var back Result
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Version != res.Version {
		t.Fatalf("Version diverged: got %d, want %d", back.Version, res.Version)
	}
	if back.Mode != res.Mode || back.Cycles != res.Cycles ||
		back.Seconds != res.Seconds || back.Energy != res.Energy ||
		back.CompressionRatio != res.CompressionRatio ||
		back.IndexStorageBits != res.IndexStorageBits {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", back, res)
	}
	if len(back.Layers) != len(res.Layers) {
		t.Fatalf("layers: got %d, want %d", len(back.Layers), len(res.Layers))
	}
	for i := range res.Layers {
		if back.Layers[i] != res.Layers[i] {
			t.Fatalf("layer %d diverged: %+v vs %+v", i, back.Layers[i], res.Layers[i])
		}
	}
}
