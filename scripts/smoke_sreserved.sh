#!/bin/sh
# End-to-end smoke test for the sreserved daemon: boot it on an
# ephemeral port, hit /healthz, run one simulation round-trip, repeat
# it to prove the result cache answers without sweeping, scrape
# /metrics, optionally drive a small sreload run, then SIGTERM it and
# require a clean graceful-drain exit.
# Usage: smoke_sreserved.sh <path-to-sreserved-binary> [path-to-sreload]
set -eu

BIN=${1:?usage: smoke_sreserved.sh <sreserved binary> [sreload binary]}
LOADBIN=${2:-}
ADDR=127.0.0.1:18344
BASE=http://$ADDR

"$BIN" -addr "$ADDR" -grace 30s &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the listener (the daemon builds nothing at startup, so this
# is quick — the loop just absorbs scheduler jitter).
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "smoke: sreserved never became healthy" >&2
		exit 1
	fi
	sleep 0.1
done
echo "smoke: /healthz ok"

curl -sf "$BASE/v1/networks" | grep -q '"MNIST"'
echo "smoke: /v1/networks lists MNIST"

REQ='{"network":"MNIST","modes":["baseline","orc+dof"],"config":{"max_windows":6},"timeout_ms":60000}'
OUT=$(curl -sf -X POST "$BASE/v1/simulate" -d "$REQ")
echo "$OUT" | grep -q '"Mode": "orc+dof"'
echo "$OUT" | grep -q '"Cycles"'
echo "$OUT" | grep -q '"cached": false'
echo "smoke: /v1/simulate round-trip ok"

# The identical request again: deterministic, so the result cache must
# answer it without another sweep, bit-identically.
OUT2=$(curl -sf -X POST "$BASE/v1/simulate" -d "$REQ")
echo "$OUT2" | grep -q '"cached": true'
if [ "$(echo "$OUT" | sed 's/"cached": false/"cached": true/')" != "$OUT2" ]; then
	echo "smoke: cached response differs from the swept one" >&2
	exit 1
fi
echo "smoke: repeated /v1/simulate served from the result cache, bit-identical"

METRICS=$(curl -sf "$BASE/metrics")
echo "$METRICS" | grep -q '^sre_serve_requests_total 2$'
echo "$METRICS" | grep -q '^sre_serve_sweeps_total 1$'
echo "$METRICS" | grep -q '^sre_serve_result_cache_hits_total 2$'
echo "smoke: /metrics scrape ok (1 sweep for 2 requests, 2 cache hits)"

# WSS round-trip: the version-2 wire surface. slice_cap selects its
# own resident design point and the composed mode must run and report
# fewer cycles than it would without elision (we only pin that the
# spellings serve and the version tag is 2 — numbers are the
# experiment harness's job).
WREQ='{"network":"MNIST","modes":["orc+dof","orc+dof+wss"],"config":{"max_windows":6,"slice_cap":2},"timeout_ms":60000}'
WOUT=$(curl -sf -X POST "$BASE/v1/simulate" -d "$WREQ")
echo "$WOUT" | grep -q '"Mode": "orc+dof+wss"'
echo "$WOUT" | grep -q '"Version": 2'
echo "smoke: /v1/simulate wss round-trip ok (slice_cap design point, Version 2)"

# An unknown mode must be a 400 whose body names the rejected mode.
BADCODE=$(curl -s -o /tmp/smoke_badmode.$$ -w '%{http_code}' -X POST "$BASE/v1/simulate" \
	-d '{"network":"MNIST","mode":"warp-drive"}')
grep -q 'warp-drive' /tmp/smoke_badmode.$$
rm -f /tmp/smoke_badmode.$$
if [ "$BADCODE" != "400" ]; then
	echo "smoke: unknown mode returned $BADCODE (want 400)" >&2
	exit 1
fi
echo "smoke: unknown mode rejected with 400 naming the mode"

if [ -n "$LOADBIN" ]; then
	"$LOADBIN" -addr "$ADDR" -clients 4 -requests 40 -keys 2 -seeds 2 \
		-max-windows 6 -modes baseline,orc+dof -timeout 60s
	echo "smoke: sreload run ok (bit-identity checked)"
fi

kill -TERM "$PID"
WAIT_STATUS=0
wait "$PID" || WAIT_STATUS=$?
trap - EXIT
if [ "$WAIT_STATUS" -ne 0 ]; then
	echo "smoke: sreserved exited $WAIT_STATUS on SIGTERM (want 0)" >&2
	exit 1
fi
echo "smoke: SIGTERM drained cleanly"
