#!/bin/sh
# End-to-end smoke test for the sreserved daemon: boot it on an
# ephemeral port, hit /healthz, run one simulation round-trip, scrape
# /metrics, then SIGTERM it and require a clean graceful-drain exit.
# Usage: smoke_sreserved.sh <path-to-sreserved-binary>
set -eu

BIN=${1:?usage: smoke_sreserved.sh <sreserved binary>}
ADDR=127.0.0.1:18344
BASE=http://$ADDR

"$BIN" -addr "$ADDR" -grace 30s &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the listener (the daemon builds nothing at startup, so this
# is quick — the loop just absorbs scheduler jitter).
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "smoke: sreserved never became healthy" >&2
		exit 1
	fi
	sleep 0.1
done
echo "smoke: /healthz ok"

curl -sf "$BASE/v1/networks" | grep -q '"MNIST"'
echo "smoke: /v1/networks lists MNIST"

OUT=$(curl -sf -X POST "$BASE/v1/simulate" -d \
	'{"network":"MNIST","modes":["baseline","orc+dof"],"config":{"max_windows":6},"timeout_ms":60000}')
echo "$OUT" | grep -q '"Mode": "orc+dof"'
echo "$OUT" | grep -q '"Cycles"'
echo "smoke: /v1/simulate round-trip ok"

curl -sf "$BASE/metrics" | grep -q '^sre_serve_requests_total 1$'
echo "smoke: /metrics scrape ok"

kill -TERM "$PID"
WAIT_STATUS=0
wait "$PID" || WAIT_STATUS=$?
trap - EXIT
if [ "$WAIT_STATUS" -ne 0 ]; then
	echo "smoke: sreserved exited $WAIT_STATUS on SIGTERM (want 0)" >&2
	exit 1
fi
echo "smoke: SIGTERM drained cleanly"
