#!/bin/sh
# SLO load benchmark for sreserved: boot the daemon with the result
# cache disabled, replay a skewed repeated-key workload with sreload,
# then repeat with the cache enabled, recording both runs into one
# benchjson-shaped file. The acceptance claim is the printed ratio:
# repeated-key p99 must improve >=10x cache-on vs cache-off, with
# sreload's built-in bit-identity check proving equal correctness.
# Usage: bench_load.sh <sreserved binary> <sreload binary> [out.json]
# Knobs (env): NETWORK REQUESTS CLIENTS KEYS SEEDS HOT MAXWIN MODES SWEEPS
set -eu

SERVED=${1:?usage: bench_load.sh <sreserved binary> <sreload binary> [out.json]}
LOAD=${2:?usage: bench_load.sh <sreserved binary> <sreload binary> [out.json]}
OUT=${3:-BENCH_PR8.json}

ADDR=127.0.0.1:18345
BASE=http://$ADDR
# VGG-16 by default: its sweeps are expensive enough (hundreds of ms)
# that the latency win of not sweeping is the dominant term, unlike
# MNIST whose sweeps take about as long as a loopback HTTP round-trip.
NETWORK=${NETWORK:-VGG-16}
REQUESTS=${REQUESTS:-400}
CLIENTS=${CLIENTS:-8}
KEYS=${KEYS:-4}
SEEDS=${SEEDS:-2}
HOT=${HOT:-0.8}
MAXWIN=${MAXWIN:-48}
MODES=${MODES:-baseline,orc+dof}
SWEEPS=${SWEEPS:-2}

run_one() { # $1 = -result-cache-bytes value, $2 = label, $3 = extra sreload flags
	"$SERVED" -addr "$ADDR" -sweeps "$SWEEPS" -result-cache-bytes "$1" 2>/dev/null &
	PID=$!
	trap 'kill "$PID" 2>/dev/null || true' EXIT
	i=0
	until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 100 ]; then
			echo "bench-load: sreserved never became healthy" >&2
			exit 1
		fi
		sleep 0.1
	done
	# shellcheck disable=SC2086
	"$LOAD" -addr "$ADDR" -network "$NETWORK" -clients "$CLIENTS" \
		-requests "$REQUESTS" -keys "$KEYS" -seeds "$SEEDS" -hot "$HOT" \
		-max-windows "$MAXWIN" -modes "$MODES" -label "$2" -out "$OUT" $3
	kill -TERM "$PID"
	wait "$PID" || true
	trap - EXIT
}

echo "bench-load: cache-off run ($REQUESTS requests, $CLIENTS clients)"
run_one 0 "cache=off" ""
echo "bench-load: cache-on run ($REQUESTS requests, $CLIENTS clients)"
run_one 256MiB "cache=on" "-append"

# Acceptance readout: p99 ratio between the two recorded runs. The
# records land cache=off first, cache=on second (run order above).
awk '/"p99-ns"/ { gsub(/,/, ""); v[n++] = $2 }
	END {
		if (n == 2 && v[1] > 0)
			printf "bench-load: repeated-key p99 cache-off/cache-on = %.1fx (want >= 10x)\n", v[0] / v[1]
	}' "$OUT"
echo "bench-load: wrote $OUT"
