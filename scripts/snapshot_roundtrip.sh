#!/bin/sh
# End-to-end check of the network-snapshot artifact format through the
# CLI: run sresim with a cold snapshot directory (builds + persists),
# run it again against the now-warm directory (loads the artifact), and
# require byte-identical simulation output — the bit-identity contract
# of DESIGN.md §6. Also proves a second design point gets its own
# artifact rather than colliding with the first.
# Usage: snapshot_roundtrip.sh <path-to-sresim-binary>
set -eu

BIN=${1:?usage: snapshot_roundtrip.sh <sresim binary>}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

run() {
	"$BIN" -network MNIST -mode orc+dof -windows 12 -snapshot-dir "$DIR/snaps" "$@"
}

run >"$DIR/cold.txt"
COUNT=$(ls "$DIR/snaps"/*.sresnap | wc -l)
if [ "$COUNT" -ne 1 ]; then
	echo "snapshot_roundtrip: expected 1 artifact after the cold run, found $COUNT" >&2
	exit 1
fi

run >"$DIR/warm.txt"
if ! diff -u "$DIR/cold.txt" "$DIR/warm.txt"; then
	echo "snapshot_roundtrip: snapshot-loaded run diverged from the fresh build" >&2
	exit 1
fi

# A different seed is a different build point: new artifact, no collision.
run -seed 7 >/dev/null
COUNT=$(ls "$DIR/snaps"/*.sresnap | wc -l)
if [ "$COUNT" -ne 2 ]; then
	echo "snapshot_roundtrip: expected 2 artifacts after a second seed, found $COUNT" >&2
	exit 1
fi

echo "snapshot_roundtrip: OK (fresh and snapshot-loaded outputs identical)"
