#!/bin/sh
# Multi-replica throughput benchmark for sharded sreserved: replay the
# same skewed design-point workload (PR 8's shape, with the keys spread
# over build-scoped seeds so the ring partitions them) first against a
# single replica, then against a REPLICAS-wide loopback cluster, and
# record both runs into one benchjson-shaped file. The readout is the
# aggregate-throughput ratio (cluster req/s over single-replica req/s)
# plus per-replica latency breakdown and forward rate; sreload's
# built-in bit-identity ledger proves forwarded results byte-equal
# owned ones.
#
# NOTE: the ratio only means something on a multi-core box — replicas
# are separate processes, so on a single hardware thread the cluster
# run measures context-switching plus a forwarding hop, not scale-out.
# Record the core count next to the number when quoting it.
# Usage: bench_cluster.sh <sreserved binary> <sreload binary> [out.json]
# Knobs (env): NETWORK REQUESTS CLIENTS KEYS SEEDS HOT MAXWIN MODES
#              SWEEPS REPLICAS
set -eu

SERVED=${1:?usage: bench_cluster.sh <sreserved binary> <sreload binary> [out.json]}
LOAD=${2:?usage: bench_cluster.sh <sreserved binary> <sreload binary> [out.json]}
OUT=${3:-BENCH_PR9.json}

NETWORK=${NETWORK:-VGG-16}
REQUESTS=${REQUESTS:-400}
CLIENTS=${CLIENTS:-8}
KEYS=${KEYS:-4}
SEEDS=${SEEDS:-2}
HOT=${HOT:-0.8}
MAXWIN=${MAXWIN:-48}
MODES=${MODES:-baseline,orc+dof}
SWEEPS=${SWEEPS:-2}
REPLICAS=${REPLICAS:-2}

BASE_PORT=18351
addr() { echo "127.0.0.1:$((BASE_PORT + $1))"; }

PEERS=""
i=0
while [ "$i" -lt "$REPLICAS" ]; do
	PEERS="$PEERS${PEERS:+,}$(addr $i)"
	i=$((i + 1))
done

PIDS=""
stop_all() {
	for p in $PIDS; do kill "$p" 2>/dev/null || true; done
	for p in $PIDS; do wait "$p" 2>/dev/null || true; done
	PIDS=""
}
trap stop_all EXIT

boot() { # $1 = addr, $2 = extra flags
	# shellcheck disable=SC2086
	"$SERVED" -addr "$1" -sweeps "$SWEEPS" $2 2>/dev/null &
	PIDS="$PIDS $!"
	# tries, not i: POSIX sh has no locals and the caller loops on i.
	tries=0
	until curl -sf "http://$1/healthz" >/dev/null 2>&1; do
		tries=$((tries + 1))
		if [ "$tries" -ge 100 ]; then
			echo "bench-cluster: replica $1 never became healthy" >&2
			exit 1
		fi
		sleep 0.1
	done
}

load() { # $1 = target addr list, $2 = label, $3 = extra sreload flags
	# shellcheck disable=SC2086
	"$LOAD" -addr "$1" -key-dim seed -network "$NETWORK" \
		-clients "$CLIENTS" -requests "$REQUESTS" -keys "$KEYS" \
		-seeds "$SEEDS" -hot "$HOT" -max-windows "$MAXWIN" \
		-modes "$MODES" -label "$2" -out "$OUT" $3
}

echo "bench-cluster: single-replica baseline ($REQUESTS requests, $CLIENTS clients)"
boot "$(addr 0)" ""
load "$(addr 0)" "replicas=1" ""
stop_all

echo "bench-cluster: $REPLICAS-replica cluster run ($REQUESTS requests, $CLIENTS clients)"
i=0
while [ "$i" -lt "$REPLICAS" ]; do
	boot "$(addr $i)" "-peers $PEERS"
	i=$((i + 1))
done
load "$PEERS" "replicas=$REPLICAS" "-append"
stop_all
trap - EXIT

# Acceptance readout: aggregate throughput ratio between the two
# recorded runs (replicas=1 lands first, replicas=N second).
awk -v n="$REPLICAS" '/"req\/s"/ { gsub(/,/, ""); v[c++] = $2 }
	END {
		if (c == 2 && v[0] > 0)
			printf "bench-cluster: aggregate throughput %d-replica/1-replica = %.2fx (want >= 1.5x on a multi-core box)\n", n, v[1] / v[0]
	}' "$OUT"
echo "bench-cluster: wrote $OUT"
