#!/bin/sh
# End-to-end smoke test for sharded sreserved: boot two replicas on
# loopback that name each other in -peers, drive design points owned by
# each replica through ONE replica (so the mis-owned ones must be
# forwarded), and assert the sharding contract from the outside:
#   - every response arrives 200 with simulation results,
#   - exactly one build per key cluster-wide (/metrics
#     sre_serve_registry_builds_total summed over the replicas),
#   - the driven replica actually forwarded (sre_serve_forwarded_total),
#   - each replica owns at least one of the keys (resident on both),
#   - a forwarded repeat is served from the owner's result cache
#     bit-identically,
#   - both replicas drain cleanly on SIGTERM.
# Usage: smoke_cluster.sh <path-to-sreserved-binary>
set -eu

BIN=${1:?usage: smoke_cluster.sh <sreserved binary>}
ADDR_A=127.0.0.1:18401
ADDR_B=127.0.0.1:18402
BASE_A=http://$ADDR_A
BASE_B=http://$ADDR_B
PEERS=$ADDR_A,$ADDR_B

# MNIST with build seeds 1000..1003: the ring at these fixed addresses
# assigns 1000/1002/1003 to A and 1001 to B (deterministic — the ring
# is a pure function of the peer list), so driving all four through A
# exercises both the local and the forwarded path.
SEEDS="1000 1001 1002 1003"
NKEYS=4

"$BIN" -addr "$ADDR_A" -peers "$PEERS" -grace 30s &
PID_A=$!
"$BIN" -addr "$ADDR_B" -peers "$PEERS" -grace 30s &
PID_B=$!
trap 'kill "$PID_A" "$PID_B" 2>/dev/null || true' EXIT

for base in "$BASE_A" "$BASE_B"; do
	i=0
	until curl -sf "$base/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 50 ]; then
			echo "smoke-cluster: replica $base never became healthy" >&2
			exit 1
		fi
		sleep 0.1
	done
done
echo "smoke-cluster: both replicas healthy"

req() { # $1 = seed
	printf '{"network":"MNIST","modes":["baseline","orc+dof"],"config":{"seed":%s,"max_windows":6},"timeout_ms":60000}' "$1"
}

# Drive every key through replica A only; mis-owned keys must forward.
for seed in $SEEDS; do
	OUT=$(curl -sf -X POST "$BASE_A/v1/simulate" -d "$(req "$seed")")
	echo "$OUT" | grep -q '"Cycles"'
	echo "$OUT" | grep -q '"cached": false'
done
echo "smoke-cluster: all $NKEYS keys served through replica A"

# Exactly one build per key cluster-wide: forwarding moved requests,
# not networks.
BUILDS_A=$(curl -sf "$BASE_A/metrics" | awk '/^sre_serve_registry_builds_total /{print $2}')
BUILDS_B=$(curl -sf "$BASE_B/metrics" | awk '/^sre_serve_registry_builds_total /{print $2}')
if [ "$((BUILDS_A + BUILDS_B))" -ne "$NKEYS" ]; then
	echo "smoke-cluster: cluster-wide builds = $BUILDS_A + $BUILDS_B, want $NKEYS (one per key)" >&2
	exit 1
fi
if [ "$BUILDS_A" -lt 1 ] || [ "$BUILDS_B" -lt 1 ]; then
	echo "smoke-cluster: ownership did not split ($BUILDS_A/$BUILDS_B builds); every replica should own >=1 key" >&2
	exit 1
fi
echo "smoke-cluster: exactly one build per key cluster-wide ($BUILDS_A on A, $BUILDS_B on B)"

FWD_A=$(curl -sf "$BASE_A/metrics" | awk '/^sre_serve_forwarded_total /{print $2}')
if [ "${FWD_A:-0}" -ne "$BUILDS_B" ]; then
	echo "smoke-cluster: replica A forwarded $FWD_A requests, want $BUILDS_B (one per B-owned key)" >&2
	exit 1
fi
echo "smoke-cluster: replica A forwarded $FWD_A request(s) to B"

# A forwarded repeat: answered from the owner's result cache, relayed
# bit-identically (only the cached flag may differ from the first run).
FWD_SEED=1001 # owned by B per the fixed ring above
FIRST=$(curl -sf -X POST "$BASE_A/v1/simulate" -d "$(req $FWD_SEED)")
SECOND=$(curl -sf -X POST "$BASE_A/v1/simulate" -d "$(req $FWD_SEED)")
echo "$SECOND" | grep -q '"cached": true'
if [ "$(echo "$FIRST" | sed 's/"cached": false/"cached": true/')" != "$SECOND" ]; then
	echo "smoke-cluster: forwarded cached repeat differs from the first forwarded response" >&2
	exit 1
fi
echo "smoke-cluster: forwarded repeat served from the owner's cache, bit-identical"

# /v1/networks observability: both replicas resident, owners reported.
curl -sf "$BASE_B/v1/networks" | grep -q '"owner"'
curl -sf "$BASE_B/v1/networks" | grep -q '"size_bytes"'
echo "smoke-cluster: /v1/networks reports resident detail with owners"

kill -TERM "$PID_A" "$PID_B"
STATUS=0
wait "$PID_A" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
	echo "smoke-cluster: replica A exited $STATUS on SIGTERM (want 0)" >&2
	exit 1
fi
wait "$PID_B" || STATUS=$?
trap - EXIT
if [ "$STATUS" -ne 0 ]; then
	echo "smoke-cluster: replica B exited $STATUS on SIGTERM (want 0)" >&2
	exit 1
fi
echo "smoke-cluster: both replicas drained cleanly"
