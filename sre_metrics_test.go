package sre

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

// TestProgressExactlyOncePerLayer pins the progress contract at several
// pool widths: every layer reports exactly once, Done values are a
// permutation-free 1..N sequence, and the observability fields carry
// real window/OU accounting.
func TestProgressExactlyOncePerLayer(t *testing.T) {
	net, err := Load("MNIST", smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		var events []Progress
		_, err := net.RunContext(context.Background(), ORCDOF,
			WithWorkers(workers),
			WithProgress(func(p Progress) { events = append(events, p) }))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(events) != net.LayerCount() {
			t.Fatalf("workers=%d: %d progress events for %d layers",
				workers, len(events), net.LayerCount())
		}
		seen := make(map[int]bool)
		for i, ev := range events {
			if seen[ev.LayerIndex] {
				t.Fatalf("workers=%d: layer %d reported twice", workers, ev.LayerIndex)
			}
			seen[ev.LayerIndex] = true
			// Calls are serialized, so Done counts up even when layer
			// indexes arrive out of order.
			if ev.LayersDone != i+1 {
				t.Fatalf("workers=%d: event %d has LayersDone %d", workers, i, ev.LayersDone)
			}
			if ev.Windows <= 0 || ev.Sampled <= 0 || ev.Sampled > ev.Windows || ev.OUEvents <= 0 {
				t.Fatalf("workers=%d: bad observability fields in %+v", workers, ev)
			}
		}
	}
}

// TestWithMetricsSnapshotReconciles attaches a registry to a single-mode
// run and checks the snapshot against the run's own results: layer
// count, per-layer progress OUEvents, and the bit-identity of the
// metered run against an unmetered one.
func TestWithMetricsSnapshotReconciles(t *testing.T) {
	net, err := Load("MNIST", smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	plain, err := net.RunContext(ctx, DOF)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetrics()
	var ouFromProgress int64
	res, err := net.RunContext(ctx, DOF, WithMetrics(reg),
		WithProgress(func(p Progress) { ouFromProgress += p.OUEvents }))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != plain.Cycles || res.Energy != plain.Energy {
		t.Fatalf("metered run diverged: %d/%v vs %d/%v",
			res.Cycles, res.Energy, plain.Cycles, plain.Energy)
	}
	if res.Metrics == nil {
		t.Fatal("Result.Metrics nil despite WithMetrics")
	}
	if plain.Metrics != nil {
		t.Fatal("unmetered run carries a metrics snapshot")
	}
	snap := res.Metrics
	if got := snap.Counters[`sre_core_layers_total{mode="dof"}`]; got != int64(net.LayerCount()) {
		t.Fatalf("layers_total = %d, want %d", got, net.LayerCount())
	}
	if got := snap.Counters[`sre_core_ou_activations_total{mode="dof"}`]; got != ouFromProgress {
		t.Fatalf("ou_activations_total = %d, progress reported %d", got, ouFromProgress)
	}
	if snap.Gauges["sre_parallel_pool_width"] <= 0 {
		t.Fatalf("pool width gauge missing: %+v", snap.Gauges)
	}
	if _, ok := snap.Histograms[`sre_core_ou_occupancy{mode="dof"}`]; !ok {
		t.Fatalf("occupancy histogram missing: %v", snap.Names())
	}
}

// TestRunAllMetricsPlanCacheReuse runs the six-mode sweep metered and
// checks the plan-cache accounting: baseline/naive/recom/orc/dof/orc+dof
// share cached plans (dof reuses baseline's entry, orc+dof reuses orc's
// per structure), so the sweep must see at least one hit per layer
// structure, and misses must equal builds exactly.
func TestRunAllMetricsPlanCacheReuse(t *testing.T) {
	net, err := Load("MNIST", smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetrics()
	results, err := net.RunAllContext(context.Background(), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	snap := results[0].Metrics
	if snap == nil {
		t.Fatal("RunAll results carry no metrics snapshot")
	}
	for i := range results {
		if results[i].Metrics != snap {
			t.Fatal("RunAll results disagree on the final snapshot")
		}
	}
	hits := snap.Counters["sre_compress_plan_cache_hits_total"]
	misses := snap.Counters["sre_compress_plan_cache_misses_total"]
	builds := snap.Counters["sre_compress_plan_cache_builds_total"]
	if hits < 1 {
		t.Fatalf("plan cache saw no reuse across the mode sweep (hits=%d misses=%d)", hits, misses)
	}
	if misses != builds || builds < 1 {
		t.Fatalf("plan cache misses (%d) must equal builds (%d), both >= 1", misses, builds)
	}
	// Eight modes over the same structures → eight lookups per layer
	// against five distinct keys (dof shares baseline's key, orc+dof
	// shares orc's, orc+dof+wss shares wss's).
	if lookups := hits + misses; lookups != int64(8*net.LayerCount()) {
		t.Fatalf("plan cache lookups = %d, want %d", lookups, 8*net.LayerCount())
	}
	for _, mode := range Modes() {
		name := fmt.Sprintf("sre_core_layers_total{mode=%q}", mode.String())
		if got := snap.Counters[name]; got != int64(net.LayerCount()) {
			t.Fatalf("%s = %d, want %d", name, got, net.LayerCount())
		}
	}
}
