package mapping

import (
	"testing"

	"sre/internal/quant"
)

func TestDefaultGeometry(t *testing.T) {
	g := Default()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.XbarRows != 128 || g.SWL != 16 {
		t.Fatalf("unexpected default %+v", g)
	}
}

func TestValidate(t *testing.T) {
	bad := []Geometry{
		{XbarRows: 0, XbarCols: 128, SWL: 16, SBL: 16},
		{XbarRows: 128, XbarCols: 128, SWL: 0, SBL: 16},
		{XbarRows: 128, XbarCols: 128, SWL: 256, SBL: 16},
		{XbarRows: 128, XbarCols: 128, SWL: 16, SBL: 256},
	}
	for _, g := range bad {
		if g.Validate() == nil {
			t.Fatalf("accepted %+v", g)
		}
	}
}

func TestLayoutVGGConvExample(t *testing.T) {
	// conv3x512 over 512 channels: R = 512·9 = 4608 rows, C = 512.
	// 16-bit weights in 2-bit cells → 8 cells/weight → 4096 phys cols.
	l := NewLayout(4608, 512, quant.Default(), Default())
	if l.PhysCols != 4096 {
		t.Fatalf("PhysCols = %d", l.PhysCols)
	}
	if l.RowBlocks != 36 || l.ColBlocks != 32 {
		t.Fatalf("blocks = %dx%d", l.RowBlocks, l.ColBlocks)
	}
	if l.TotalArrays() != 36*32 {
		t.Fatal("TotalArrays wrong")
	}
	if l.TotalCells() != int64(4608)*4096 {
		t.Fatal("TotalCells wrong")
	}
}

func TestRaggedEdges(t *testing.T) {
	// 130 rows / 20 logical cols: last row block has 2 rows; phys cols =
	// 160 → last col block has 32 cols → 2 full groups.
	l := NewLayout(130, 20, quant.Default(), Default())
	if l.RowBlocks != 2 || l.ColBlocks != 2 {
		t.Fatalf("blocks %dx%d", l.RowBlocks, l.ColBlocks)
	}
	if l.TileRows(0) != 128 || l.TileRows(1) != 2 {
		t.Fatalf("tile rows %d/%d", l.TileRows(0), l.TileRows(1))
	}
	if l.TileCols(1) != 32 {
		t.Fatalf("tile cols(1) = %d", l.TileCols(1))
	}
	if l.GroupsInTile(1) != 2 {
		t.Fatalf("groups in last tile = %d", l.GroupsInTile(1))
	}
}

func TestGroupColsRagged(t *testing.T) {
	// 10 phys cols with SBL 16: one short group.
	l := NewLayout(16, 10, quant.Params{WBits: 2, ABits: 2, CellBits: 2, DACBits: 1}, Geometry{XbarRows: 16, XbarCols: 16, SWL: 4, SBL: 16})
	if l.PhysCols != 10 || l.GroupsInTile(0) != 1 {
		t.Fatalf("layout %+v", l)
	}
	lo, hi := l.GroupCols(0, 0)
	if lo != 0 || hi != 10 {
		t.Fatalf("group cols [%d,%d)", lo, hi)
	}
}

func TestOUsPerTileBaseline(t *testing.T) {
	l := NewLayout(128, 16, quant.Default(), Default())
	// Tile 0: 128 cols (16 weights × 8 cells) → 8 groups; 128 rows → 8 OU
	// rows per group → 64 OUs, matching a full 128×128 tile of 16×16 OUs.
	if got := l.OUsPerTileBaseline(0, 0); got != 64 {
		t.Fatalf("baseline OUs = %d, want 64", got)
	}
}

func TestWithOU(t *testing.T) {
	g := Default().WithOU(32)
	if g.SWL != 32 || g.SBL != 32 {
		t.Fatal("WithOU wrong")
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLayout(10, 10, quant.Default(), Geometry{XbarRows: -1, XbarCols: 1, SWL: 1, SBL: 1})
}
