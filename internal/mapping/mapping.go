// Package mapping computes how a layer's decomposed weight matrix tiles
// onto physical crossbar arrays (paper §2.1, Fig. 2–3) and how each array
// divides into OU row/column groups (paper §3).
//
// A matrix layer with R logical rows and C logical columns occupies
// R × C·(WBits/CellBits) cells. Cells tile into XbarRows×XbarCols arrays;
// each array splits into column-wise OU groups of width S_BL, and
// computation proceeds S_WL rows per cycle within a group.
package mapping

import (
	"fmt"

	"sre/internal/quant"
	"sre/internal/xmath"
)

// Geometry is the crossbar/OU configuration of Table 1.
type Geometry struct {
	XbarRows, XbarCols int // physical array size (128×128)
	SWL, SBL           int // OU height (wordlines) and width (bitlines)
}

// Default returns the Table 1 geometry: 128×128 arrays with 16×16 OUs.
func Default() Geometry { return Geometry{XbarRows: 128, XbarCols: 128, SWL: 16, SBL: 16} }

// Validate rejects inconsistent geometry.
func (g Geometry) Validate() error {
	switch {
	case g.XbarRows <= 0 || g.XbarCols <= 0:
		return fmt.Errorf("mapping: non-positive crossbar size %dx%d", g.XbarRows, g.XbarCols)
	case g.SWL <= 0 || g.SWL > g.XbarRows:
		return fmt.Errorf("mapping: OU height %d outside [1,%d]", g.SWL, g.XbarRows)
	case g.SBL <= 0 || g.SBL > g.XbarCols:
		return fmt.Errorf("mapping: OU width %d outside [1,%d]", g.SBL, g.XbarCols)
	}
	return nil
}

// WithOU returns the geometry with a different (square) OU size.
func (g Geometry) WithOU(s int) Geometry {
	g.SWL, g.SBL = s, s
	return g
}

// Layout is the tiling of one layer onto crossbars.
type Layout struct {
	Geometry
	Rows        int // logical = cell rows
	LogicalCols int
	CPW         int // cells per weight
	PhysCols    int // LogicalCols · CPW
	RowBlocks   int // ceil(Rows / XbarRows)
	ColBlocks   int // ceil(PhysCols / XbarCols)
}

// NewLayout computes the tiling for a layer of rows×cols logical weights
// under quantization p.
func NewLayout(rows, cols int, p quant.Params, g Geometry) Layout {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	cpw := p.CellsPerWeight()
	phys := cols * cpw
	return Layout{
		Geometry:    g,
		Rows:        rows,
		LogicalCols: cols,
		CPW:         cpw,
		PhysCols:    phys,
		RowBlocks:   xmath.CeilDiv(rows, g.XbarRows),
		ColBlocks:   xmath.CeilDiv(phys, g.XbarCols),
	}
}

// TileRows returns the number of cell rows in row block rb.
func (l Layout) TileRows(rb int) int {
	return clampSpan(rb, l.XbarRows, l.Rows)
}

// TileCols returns the number of physical columns in column block cb.
func (l Layout) TileCols(cb int) int {
	return clampSpan(cb, l.XbarCols, l.PhysCols)
}

func clampSpan(block, size, total int) int {
	lo := block * size
	hi := lo + size
	if hi > total {
		hi = total
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// GroupsInTile returns the number of S_BL-wide column groups in column
// block cb (the last group of the last block may be narrower).
func (l Layout) GroupsInTile(cb int) int {
	return xmath.CeilDiv(l.TileCols(cb), l.SBL)
}

// GroupCols returns the physical-column range [lo, hi) — relative to the
// tile — of group gi in column block cb.
func (l Layout) GroupCols(cb, gi int) (lo, hi int) {
	lo = gi * l.SBL
	hi = lo + l.SBL
	if tc := l.TileCols(cb); hi > tc {
		hi = tc
	}
	return lo, hi
}

// OUsPerTileBaseline returns the OU activations one (rb, cb) tile needs
// for one input batch and one bit slice without any compression:
// groups × ceil(tileRows/S_WL).
func (l Layout) OUsPerTileBaseline(rb, cb int) int {
	return l.GroupsInTile(cb) * xmath.CeilDiv(l.TileRows(rb), l.SWL)
}

// TotalArrays returns how many crossbar arrays the layer occupies.
func (l Layout) TotalArrays() int { return l.RowBlocks * l.ColBlocks }

// TotalCells returns the layer's physical cell count (the "original size"
// of the Fig. 20 compression-ratio definition).
func (l Layout) TotalCells() int64 { return int64(l.Rows) * int64(l.PhysCols) }
