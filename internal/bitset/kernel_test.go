package bitset

import (
	"math/bits"
	"testing"

	"sre/internal/xrand"
)

// popcountRef is the golden-reference popcount: the original
// one-word-at-a-time scalar loop every kernel tier must match.
func popcountRef(words []uint64) int {
	c := 0
	for _, w := range words {
		c += bits.OnesCount64(w)
	}
	return c
}

// countAndPlanesRef is the golden-reference plane kernel: the original
// simple per-group loop.
func countAndPlanesRef(mask, plane []uint64, counts []int) {
	w := len(mask)
	for g := range counts {
		c := 0
		for i, m := range mask {
			c += bits.OnesCount64(m & plane[g*w+i])
		}
		counts[g] = c
	}
}

// raggedLengths hits every dispatch boundary: empty, single word,
// non-multiples of the 4-way unroll, and both sides of the AVX2
// popcount threshold.
var raggedLengths = []int{0, 1, 2, 3, 4, 5, 7, 8, 13, 15, 16, 17, 31, 32, 33, 64, 100, 129}

func kernelWords(r *xrand.RNG, n int, fill string) []uint64 {
	words := make([]uint64, n)
	for i := range words {
		switch fill {
		case "zero":
		case "ones":
			words[i] = ^uint64(0)
		default:
			words[i] = r.Uint64()
		}
	}
	return words
}

func TestPopcountTiersAgree(t *testing.T) {
	r := xrand.New(7)
	for _, n := range raggedLengths {
		for _, fill := range []string{"zero", "ones", "random"} {
			words := kernelWords(r, n, fill)
			want := popcountRef(words)
			if got := popcountGeneric(words); got != want {
				t.Errorf("popcountGeneric n=%d fill=%s: got %d want %d", n, fill, got, want)
			}
			if got := CountWords(words); got != want {
				t.Errorf("CountWords n=%d fill=%s: got %d want %d", n, fill, got, want)
			}
			if hasAVX2 && n > 0 {
				if got := popcntAVX2(&words[0], n); got != want {
					t.Errorf("popcntAVX2 n=%d fill=%s: got %d want %d", n, fill, got, want)
				}
			}
		}
	}
}

func TestSetCountMatchesKernel(t *testing.T) {
	r := xrand.New(8)
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 4096} {
		s := randomSet(r, n, 0.4)
		if got, want := s.Count(), popcountRef(s.Words()); got != want {
			t.Errorf("Set.Count n=%d: got %d want %d", n, got, want)
		}
	}
}

func TestCountAndPlanesTiersAgree(t *testing.T) {
	r := xrand.New(9)
	widths := []int{0, 1, 2, 3, 4, 5, 7, 8, 9}
	groupCounts := []int{0, 1, 2, 3, 4, 5, 7, 8, 17}
	for _, w := range widths {
		for _, groups := range groupCounts {
			for _, fill := range []string{"zero", "ones", "random"} {
				mask := kernelWords(r, w, fill)
				plane := kernelWords(r, w*groups, fill)
				want := make([]int, groups)
				countAndPlanesRef(mask, plane, want)

				got := make([]int, groups)
				for i := range got {
					got[i] = -1
				}
				CountAndPlanes(mask, plane, got)
				for g := range want {
					if got[g] != want[g] {
						t.Fatalf("CountAndPlanes w=%d groups=%d fill=%s g=%d: got %d want %d",
							w, groups, fill, g, got[g], want[g])
					}
				}

				if w > 0 && groups > 0 {
					gen := make([]int, groups)
					countAndPlanesGeneric(mask, plane, gen)
					for g := range want {
						if gen[g] != want[g] {
							t.Fatalf("countAndPlanesGeneric w=%d groups=%d fill=%s g=%d: got %d want %d",
								w, groups, fill, g, gen[g], want[g])
						}
					}
				}
				if hasAVX2 && groups > 0 {
					av := make([]int, groups)
					switch w {
					case 1:
						countAndPlanes1(mask[0], plane, av)
					case 2:
						countAndPlanes2(mask, plane, av)
					default:
						continue
					}
					for g := range want {
						if av[g] != want[g] {
							t.Fatalf("AVX2 w=%d groups=%d fill=%s g=%d: got %d want %d",
								w, groups, fill, g, av[g], want[g])
						}
					}
				}
			}
		}
	}
}

// FuzzPopcountTiers cross-checks every popcount tier on arbitrary
// byte-derived word slices (the fuzzer finds ragged lengths on its own
// since len(data)/8 rarely aligns with the unroll).
func FuzzPopcountTiers(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add(make([]byte, 8*17))
	f.Fuzz(func(t *testing.T, data []byte) {
		words := make([]uint64, len(data)/8+1)
		for i, b := range data {
			words[i/8] |= uint64(b) << uint(8*(i%8))
		}
		for n := 0; n <= len(words); n++ {
			sub := words[:n]
			want := popcountRef(sub)
			if got := popcountGeneric(sub); got != want {
				t.Fatalf("popcountGeneric n=%d: got %d want %d", n, got, want)
			}
			if got := CountWords(sub); got != want {
				t.Fatalf("CountWords n=%d: got %d want %d", n, got, want)
			}
			if hasAVX2 && n > 0 {
				if got := popcntAVX2(&sub[0], n); got != want {
					t.Fatalf("popcntAVX2 n=%d: got %d want %d", n, got, want)
				}
			}
		}
	})
}

// FuzzCountAndPlanesTiers cross-checks the fused plane kernel tiers,
// deriving (width, groups, words) from the fuzz input.
func FuzzCountAndPlanesTiers(f *testing.F) {
	f.Add(uint8(1), uint8(4), []byte{0xff, 0x00, 0x12})
	f.Add(uint8(2), uint8(3), []byte{})
	f.Add(uint8(5), uint8(2), make([]byte, 96))
	f.Fuzz(func(t *testing.T, w8, g8 uint8, data []byte) {
		w := int(w8%9) + 1
		groups := int(g8 % 18)
		need := w * (groups + 1)
		words := make([]uint64, need)
		for i, b := range data {
			if i/8 >= need {
				break
			}
			words[i/8] |= uint64(b) << uint(8*(i%8))
		}
		mask, plane := words[:w], words[w:w+w*groups]
		want := make([]int, groups)
		countAndPlanesRef(mask, plane, want)
		got := make([]int, groups)
		CountAndPlanes(mask, plane, got)
		for g := range want {
			if got[g] != want[g] {
				t.Fatalf("w=%d groups=%d g=%d: got %d want %d", w, groups, g, got[g], want[g])
			}
		}
		if groups > 0 {
			gen := make([]int, groups)
			countAndPlanesGeneric(mask, plane, gen)
			for g := range want {
				if gen[g] != want[g] {
					t.Fatalf("generic w=%d groups=%d g=%d: got %d want %d", w, groups, g, gen[g], want[g])
				}
			}
		}
	})
}

func BenchmarkCountWords(b *testing.B) {
	r := xrand.New(3)
	words := kernelWords(r, 512, "random")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkInt = CountWords(words)
	}
}

var sinkInt int

func benchmarkCountAndPlanes(b *testing.B, w, groups int) {
	r := xrand.New(4)
	mask := kernelWords(r, w, "random")
	plane := kernelWords(r, w*groups, "random")
	counts := make([]int, groups)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CountAndPlanes(mask, plane, counts)
	}
}

func BenchmarkCountAndPlanesW1(b *testing.B) { benchmarkCountAndPlanes(b, 1, 16) }
func BenchmarkCountAndPlanesW2(b *testing.B) { benchmarkCountAndPlanes(b, 2, 16) }
func BenchmarkCountAndPlanesW8(b *testing.B) { benchmarkCountAndPlanes(b, 8, 16) }
