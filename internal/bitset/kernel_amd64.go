//go:build amd64 && !purego

package bitset

import "math/bits"

// hasAVX2 gates the assembly tier. Detection is done once at init with
// raw CPUID/XGETBV (the module is dependency-free, so no
// golang.org/x/sys/cpu): the OS must have enabled XMM+YMM state saving
// (OSXSAVE + XCR0[2:1] == 11b) and the CPU must advertise AVX, AVX2,
// and POPCNT (the tail loop of popcntAVX2 uses scalar POPCNTQ).
var hasAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		popcntBit  = 1 << 23
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&popcntBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (XMM) and 2 (YMM): the OS saves vector state.
	if xcr0, _ := xgetbv0(); xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register XCR0.
func xgetbv0() (eax, edx uint32)

// popcntAVX2 popcounts n words starting at p using a vpshufb
// nibble-LUT + vpsadbw reduction, 4 words per vector iteration, with a
// scalar POPCNTQ tail. Caller guarantees n >= 1.
//
//go:noescape
func popcntAVX2(p *uint64, n int) int

// countAndPlanes1AVX2 computes counts[g] = popcount(mask & plane[g])
// for g in [0, groups) where each group is one word. groups must be a
// positive multiple of 4 (4 groups per vector iteration).
//
//go:noescape
func countAndPlanes1AVX2(mask uint64, plane *uint64, counts *int, groups int)

// countAndPlanes2AVX2 computes counts[g] = popcount(mask ∩ group g)
// for two-word groups (plane[2g], plane[2g+1]). groups must be a
// positive multiple of 2 (2 groups per vector iteration).
//
//go:noescape
func countAndPlanes2AVX2(mask *uint64, plane *uint64, counts *int, groups int)

// countAndPlanes1 dispatches the one-word-per-group shape: AVX2 over
// the 4-aligned prefix, portable scalar for the tail.
func countAndPlanes1(mask uint64, plane []uint64, counts []int) {
	g4 := len(counts) &^ 3
	if g4 > 0 {
		countAndPlanes1AVX2(mask, &plane[0], &counts[0], g4)
	}
	for g := g4; g < len(counts); g++ {
		counts[g] = bits.OnesCount64(mask & plane[g])
	}
}

// countAndPlanes2 dispatches the two-word-per-group shape: AVX2 over
// the even prefix, portable scalar for the odd tail group.
func countAndPlanes2(mask, plane []uint64, counts []int) {
	g2 := len(counts) &^ 1
	if g2 > 0 {
		countAndPlanes2AVX2(&mask[0], &plane[0], &counts[0], g2)
	}
	if g2 < len(counts) {
		counts[g2] = bits.OnesCount64(mask[0]&plane[2*g2]) + bits.OnesCount64(mask[1]&plane[2*g2+1])
	}
}
