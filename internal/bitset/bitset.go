// Package bitset implements a dense fixed-capacity bitset with fast
// population counts over sub-ranges.
//
// Bitsets are the simulator's hot data structure: every (window,
// bit-slice) of activations becomes a mask of non-zero wordlines, and the
// Dynamic-OU-Formation cycle count for an OU column group is
// ceil(popcount(mask ∩ group rows) / S_WL). All counting paths therefore
// work a word at a time.
package bitset

import "math/bits"

const wordBits = 64

// Set is a fixed-size bitset of n bits backed by 64-bit words.
type Set struct {
	n     int
	words []uint64
}

// New returns a Set holding n bits, all zero.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromWords returns a Set of n bits adopting words as its backing
// storage without copying — the zero-copy path snapshot decoding uses
// to carve many group masks out of one contiguous word plane. The
// caller must hand over exactly Words64(n) words, keep them alive, and
// treat the set as read-only wherever the backing slice is shared.
func FromWords(n int, words []uint64) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	if len(words) != Words64(n) {
		panic("bitset: FromWords backing length mismatch")
	}
	return &Set{n: n, words: words}
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Words exposes the backing words for read-only word-at-a-time scans.
func (s *Set) Words() []uint64 { return s.words }

// Set sets bit i to 1.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear sets bit i to 0.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is 1.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count returns the number of set bits. It shares one kernel entry
// point with CountWords (see kernel.go for the dispatch tiers).
func (s *Set) Count() int {
	return popcountWords(s.words)
}

// CountRange returns the number of set bits in [lo, hi).
func (s *Set) CountRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return 0
	}
	loW, hiW := lo/wordBits, (hi-1)/wordBits
	loOff := uint(lo % wordBits)
	hiOff := uint((hi-1)%wordBits) + 1
	if loW == hiW {
		w := s.words[loW] >> loOff
		if span := hiOff - loOff; span < wordBits {
			w &= 1<<span - 1
		}
		return bits.OnesCount64(w)
	}
	c := bits.OnesCount64(s.words[loW] >> loOff)
	for i := loW + 1; i < hiW; i++ {
		c += bits.OnesCount64(s.words[i])
	}
	last := s.words[hiW]
	if hiOff < wordBits {
		last &= (1 << hiOff) - 1
	}
	return c + bits.OnesCount64(last)
}

// CountAnd returns popcount(s ∩ other) without allocating. Both sets must
// have the same length.
func (s *Set) CountAnd(other *Set) int {
	if s.n != other.n {
		panic("bitset: CountAnd length mismatch")
	}
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & other.words[i])
	}
	return c
}

// And stores s ∩ other into dst (which must have the same length) and
// returns dst.
func (s *Set) And(other, dst *Set) *Set {
	if s.n != other.n || s.n != dst.n {
		panic("bitset: And length mismatch")
	}
	for i, w := range s.words {
		dst.words[i] = w & other.words[i]
	}
	return dst
}

// Or stores s ∪ other into dst and returns dst.
func (s *Set) Or(other, dst *Set) *Set {
	if s.n != other.n || s.n != dst.n {
		panic("bitset: Or length mismatch")
	}
	for i, w := range s.words {
		dst.words[i] = w | other.words[i]
	}
	return dst
}

// Copy returns an independent copy of s.
func (s *Set) Copy() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// SetAll sets every bit in [0, Len).
func (s *Set) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim clears any bits beyond n in the last word.
func (s *Set) trim() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(s.n%wordBits)) - 1
	}
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	w := i / wordBits
	word := s.words[w] >> uint(i%wordBits)
	if word != 0 {
		return i + bits.TrailingZeros64(word)
	}
	for w++; w < len(s.words); w++ {
		if s.words[w] != 0 {
			return w*wordBits + bits.TrailingZeros64(s.words[w])
		}
	}
	return -1
}

// Indices appends the indices of all set bits to dst and returns it.
func (s *Set) Indices(dst []int) []int {
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		dst = append(dst, i)
	}
	return dst
}
