//go:build !amd64 || purego

package bitset

// hasAVX2 is constant false on non-amd64 or `purego` builds, so the
// compiler eliminates every assembly-tier branch and the stubs below
// are never reached (they exist only to satisfy the references in the
// shared dispatch code).
const hasAVX2 = false

func popcntAVX2(p *uint64, n int) int { panic("bitset: no AVX2 tier in this build") }

func countAndPlanes1(mask uint64, plane []uint64, counts []int) {
	panic("bitset: no AVX2 tier in this build")
}

func countAndPlanes2(mask, plane []uint64, counts []int) {
	panic("bitset: no AVX2 tier in this build")
}
