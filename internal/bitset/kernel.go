// Tiered popcount kernels.
//
// Every counting path in the package funnels into one of two entry
// points — popcountWords (linear popcount) and CountAndPlanes (fused
// mask ∩ plane popcount) — each with up to three tiers:
//
//  1. a portable 4-way unrolled math/bits.OnesCount64 kernel (always
//     compiled, the only tier on non-amd64 or `purego` builds),
//  2. an AVX2 assembly path (//go:build amd64 && !purego) selected at
//     runtime by CPUID feature detection, and
//  3. the original one-word-at-a-time scalar loops, kept in the test
//     files as the golden reference every tier is checked against.
//
// Dispatch is shape-aware: AVX2 only pays off past a minimum word
// count (popcount) or for the plane widths the simulator actually hits
// in its hot loop (W == 1 and W == 2 words per group, i.e. crossbar
// tiles of up to 128 rows). Everything else takes the unrolled
// portable tier. All tiers are bit-identical by construction (they
// compute exact population counts), and kernel_test.go + fuzz targets
// enforce agreement on ragged lengths and degenerate planes.
package bitset

import "math/bits"

// avx2PopcountMin is the word count below which the unrolled portable
// kernel beats the AVX2 path (loop setup + VZEROUPPER dominate short
// inputs; scalar POPCNTQ already retires one word per cycle).
const avx2PopcountMin = 16

// Kernel names the counting tier runtime dispatch has selected, for
// diagnostics and benchmark logs ("avx2" or "generic").
func Kernel() string {
	if hasAVX2 {
		return "avx2"
	}
	return "generic"
}

// popcountWords is the single popcount entry point behind CountWords
// and Set.Count.
func popcountWords(words []uint64) int {
	if hasAVX2 && len(words) >= avx2PopcountMin {
		return popcntAVX2(&words[0], len(words))
	}
	return popcountGeneric(words)
}

// popcountGeneric is the portable tier: 4-way unrolled OnesCount64
// with independent accumulators so the adds don't serialize.
func popcountGeneric(words []uint64) int {
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(words); i += 4 {
		c0 += bits.OnesCount64(words[i])
		c1 += bits.OnesCount64(words[i+1])
		c2 += bits.OnesCount64(words[i+2])
		c3 += bits.OnesCount64(words[i+3])
	}
	for ; i < len(words); i++ {
		c0 += bits.OnesCount64(words[i])
	}
	return c0 + c1 + c2 + c3
}

// countAndPlanesGeneric is the portable CountAndPlanes tier. The
// simulator's planes are overwhelmingly 1 or 2 words per group
// (crossbar tiles ≤ 128 rows), so those widths get branch-free
// specializations; wider planes take a 4-way unrolled inner loop.
func countAndPlanesGeneric(mask, plane []uint64, counts []int) {
	switch w := len(mask); w {
	case 1:
		m := mask[0]
		for g, gw := range plane[:len(counts)] {
			counts[g] = bits.OnesCount64(m & gw)
		}
	case 2:
		m0, m1 := mask[0], mask[1]
		for g := range counts {
			counts[g] = bits.OnesCount64(m0&plane[2*g]) + bits.OnesCount64(m1&plane[2*g+1])
		}
	default:
		for g := range counts {
			gw := plane[g*w : g*w+w : g*w+w]
			var c0, c1, c2, c3 int
			i := 0
			for ; i+4 <= w; i += 4 {
				c0 += bits.OnesCount64(mask[i] & gw[i])
				c1 += bits.OnesCount64(mask[i+1] & gw[i+1])
				c2 += bits.OnesCount64(mask[i+2] & gw[i+2])
				c3 += bits.OnesCount64(mask[i+3] & gw[i+3])
			}
			for ; i < w; i++ {
				c0 += bits.OnesCount64(mask[i] & gw[i])
			}
			counts[g] = c0 + c1 + c2 + c3
		}
	}
}
