package bitset

import (
	"testing"

	"sre/internal/xrand"
)

// randomSet returns a Set of n bits with roughly density·n set, plus
// the same content as a fresh word slice.
func randomSet(r *xrand.RNG, n int, density float64) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Bernoulli(density) {
			s.Set(i)
		}
	}
	return s
}

func TestCountAndPlanesMatchesCountAnd(t *testing.T) {
	r := xrand.New(1)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(300) // deliberately non-word-aligned most of the time
		groups := 1 + r.Intn(9)
		mask := randomSet(r, n, 0.3)
		var plane []uint64
		sets := make([]*Set, groups)
		for g := range sets {
			sets[g] = randomSet(r, n, 0.5)
			plane = AppendPlane(plane, sets[g])
		}
		counts := make([]int, groups)
		CountAndPlanes(mask.Words(), plane, counts)
		for g, want := range sets {
			if counts[g] != mask.CountAnd(want) {
				t.Fatalf("trial %d n=%d group %d: fused count %d != scalar %d",
					trial, n, g, counts[g], mask.CountAnd(want))
			}
		}
	}
}

func TestCountAndPlanesEmpty(t *testing.T) {
	// Zero groups and zero-length masks must both be well-defined.
	CountAndPlanes(nil, nil, nil)
	counts := []int{7, 7}
	CountAndPlanes(nil, nil, counts)
	if counts[0] != 0 || counts[1] != 0 {
		t.Fatal("zero-word plane must produce zero counts")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch must panic")
		}
	}()
	CountAndPlanes(make([]uint64, 2), make([]uint64, 3), counts)
}

// scalarSliceMasks is the pre-kernel reference: per-bit Set calls, one
// slice at a time.
func scalarSliceMasks(codes []uint32, dacBits, spi, n int) []*Set {
	masks := make([]*Set, spi)
	dacMask := uint32(1)<<uint(dacBits) - 1
	for s := range masks {
		masks[s] = New(n)
	}
	for i, code := range codes {
		if code == 0 {
			continue
		}
		for s := 0; s < spi; s++ {
			if code>>uint(s*dacBits)&dacMask != 0 {
				masks[s].Set(i)
			}
		}
	}
	return masks
}

func TestBuildSliceMasksMatchesScalar(t *testing.T) {
	r := xrand.New(2)
	for _, dacBits := range []int{1, 2, 4, 8} {
		spi := 16 / dacBits
		for trial := 0; trial < 30; trial++ {
			n := 1 + r.Intn(200)
			codes := make([]uint32, n)
			for i := range codes {
				if !r.Bernoulli(0.4) {
					codes[i] = uint32(r.Intn(1 << 16))
				}
			}
			masks := make([][]uint64, spi)
			for s := range masks {
				masks[s] = make([]uint64, Words64(n))
			}
			nonEmpty := BuildSliceMasks(codes, dacBits, masks)
			want := scalarSliceMasks(codes, dacBits, spi, n)
			for s := range masks {
				for w, word := range masks[s] {
					if word != want[s].Words()[w] {
						t.Fatalf("dac=%d trial %d slice %d word %d: %x != %x",
							dacBits, trial, s, w, word, want[s].Words()[w])
					}
				}
				if got := nonEmpty&(1<<uint(s)) != 0; got != (want[s].Count() > 0) {
					t.Fatalf("dac=%d trial %d slice %d: non-empty bit %v, scalar count %d",
						dacBits, trial, s, got, want[s].Count())
				}
			}
		}
	}
}

func TestBuildSliceMasksOverwritesStale(t *testing.T) {
	// Reused mask buffers must not leak bits from a previous window.
	masks := [][]uint64{{^uint64(0)}, {^uint64(0)}}
	if nonEmpty := BuildSliceMasks(make([]uint32, 8), 1, masks); nonEmpty != 0 {
		t.Fatalf("all-zero codes reported non-empty slices %b", nonEmpty)
	}
	for s := range masks {
		if masks[s][0] != 0 {
			t.Fatal("stale bits survived")
		}
	}
}

func TestCountWords(t *testing.T) {
	if CountWords(nil) != 0 {
		t.Fatal("empty")
	}
	s := New(130)
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if CountWords(s.Words()) != 3 || CountWords(s.Words()) != s.Count() {
		t.Fatal("CountWords disagrees with Count")
	}
}

// ---- edge cases for the pre-existing scalar primitives ----

func TestCountRangeEdges(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Set(i)
	}
	check := func(lo, hi, want int) {
		t.Helper()
		if got := s.CountRange(lo, hi); got != want {
			t.Fatalf("CountRange(%d, %d) = %d, want %d", lo, hi, got, want)
		}
	}
	check(0, 0, 0)
	check(64, 64, 0)
	check(5, 5, 0)
	check(10, 5, 0)
	check(-5, 2, 2)
	check(128, 500, 2) // hi clamped to Len
	check(0, 130, 8)
	check(63, 65, 2)   // straddles a word boundary
	check(129, 130, 1) // final non-aligned bit
	empty := New(0)
	if empty.CountRange(0, 10) != 0 {
		t.Fatal("empty set must count zero")
	}
}

func TestCountAndEdges(t *testing.T) {
	a, b := New(0), New(0)
	if a.CountAnd(b) != 0 {
		t.Fatal("empty CountAnd")
	}
	// Non-word-aligned length: only in-range bits may match.
	a, b = New(70), New(70)
	a.SetAll()
	b.SetAll()
	if a.CountAnd(b) != 70 {
		t.Fatalf("CountAnd full overlap = %d, want 70", a.CountAnd(b))
	}
	b.Reset()
	if a.CountAnd(b) != 0 {
		t.Fatal("CountAnd with empty must be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	a.CountAnd(New(71))
}

func TestNextSetEdges(t *testing.T) {
	empty := New(0)
	if empty.NextSet(0) != -1 {
		t.Fatal("NextSet on zero-length set")
	}
	s := New(130)
	if s.NextSet(0) != -1 {
		t.Fatal("NextSet on all-zero set")
	}
	s.Set(129)
	if s.NextSet(-10) != 129 { // negative start clamps to 0
		t.Fatal("negative start")
	}
	if s.NextSet(129) != 129 || s.NextSet(130) != -1 || s.NextSet(1000) != -1 {
		t.Fatal("NextSet boundary behavior")
	}
	s.Set(0)
	if s.NextSet(0) != 0 || s.NextSet(1) != 129 {
		t.Fatal("NextSet skip behavior")
	}
}

// ---- micro-benchmarks of the kernels ----

func benchPlaneData(n, groups int) (*Set, []uint64, []*Set) {
	r := xrand.New(42)
	mask := randomSet(r, n, 0.4)
	var plane []uint64
	sets := make([]*Set, groups)
	for g := range sets {
		sets[g] = randomSet(r, n, 0.5)
		plane = AppendPlane(plane, sets[g])
	}
	return mask, plane, sets
}

func BenchmarkCountAndPerGroup(b *testing.B) {
	mask, _, sets := benchPlaneData(128, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, s := range sets {
			total += mask.CountAnd(s)
		}
		sink = total
	}
}

func BenchmarkCountAndPlanes(b *testing.B) {
	mask, plane, _ := benchPlaneData(128, 8)
	counts := make([]int, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CountAndPlanes(mask.Words(), plane, counts)
		sink = counts[0]
	}
}

func BenchmarkBuildSliceMasks(b *testing.B) {
	r := xrand.New(7)
	codes := make([]uint32, 128)
	for i := range codes {
		if !r.Bernoulli(0.5) {
			codes[i] = uint32(r.Intn(1 << 16))
		}
	}
	masks := make([][]uint64, 16)
	for s := range masks {
		masks[s] = make([]uint64, Words64(len(codes)))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = int(BuildSliceMasks(codes, 1, masks))
	}
}

var sink int
