// Word-plane kernels: fused popcount/gather primitives over raw
// []uint64 word slices, used by the simulator's Dynamic-OU-Formation
// hot loop. A "plane" is a structure-of-arrays flattening of the
// per-group retained-row bitsets of one crossbar tile — group g's words
// stored contiguously at [g*W : (g+1)*W] — so counting every group's
// mask intersection is one linear pass with no per-group *Set pointer
// chasing. Planes are built once per compression structure and shared
// read-only by all workers.
package bitset

import "math/bits"

// Words64 returns how many 64-bit words hold n bits.
func Words64(n int) int { return (n + wordBits - 1) / wordBits }

// AppendPlane appends s's backing words to plane and returns it —
// the flattening step that packs one group's row bitset into a tile's
// word plane.
func AppendPlane(plane []uint64, s *Set) []uint64 {
	return append(plane, s.words...)
}

// CountWords returns the population count of a raw word slice. It
// shares one kernel entry point with Set.Count (see kernel.go).
func CountWords(words []uint64) int {
	return popcountWords(words)
}

// CountAndPlanes computes counts[g] = popcount(mask ∩ plane group g)
// for every group in one pass. plane holds len(counts) groups of
// len(mask) words each (group g at plane[g*len(mask):(g+1)*len(mask)]).
// Dispatch is shape-aware (kernel.go): the simulator's dominant plane
// widths (1 and 2 words per group) take the AVX2 tier when available;
// everything else takes the unrolled portable tier.
func CountAndPlanes(mask, plane []uint64, counts []int) {
	w := len(mask)
	if len(plane) != w*len(counts) {
		panic("bitset: CountAndPlanes plane/mask/counts size mismatch")
	}
	if w == 0 || len(counts) == 0 {
		for g := range counts {
			counts[g] = 0
		}
		return
	}
	if hasAVX2 {
		switch w {
		case 1:
			countAndPlanes1(mask[0], plane, counts)
			return
		case 2:
			countAndPlanes2(mask, plane, counts)
			return
		}
	}
	countAndPlanesGeneric(mask, plane, counts)
}

// BuildSliceMasks derives every activation bit-slice mask from one
// window's quantized codes in a single sweep: bit i of masks[s] is set
// iff codes[i] has a non-zero dacBits-wide digit at slice s. Each
// masks[s] must hold Words64(len(codes)) words; contents are
// overwritten. The returned bitmap has bit s set iff slice s ended up
// non-empty (slices ≥ 64 are conservatively reported non-empty), so
// callers can skip all-zero high slices without rescanning words.
func BuildSliceMasks(codes []uint32, dacBits int, masks [][]uint64) uint64 {
	nw := Words64(len(codes))
	for s := range masks {
		ms := masks[s][:nw]
		for i := range ms {
			ms[i] = 0
		}
	}
	var nonEmpty uint64
	if dacBits == 1 {
		// One mask bit per code bit: walk only the set bits of each code.
		limit := ^uint32(0)
		if spi := len(masks); spi < 32 {
			limit = uint32(1)<<uint(spi) - 1
		}
		for i, code := range codes {
			if code == 0 {
				continue
			}
			w, bit := i>>6, uint64(1)<<uint(i&63)
			for c := code & limit; c != 0; c &= c - 1 {
				s := bits.TrailingZeros32(c)
				masks[s][w] |= bit
				nonEmpty |= 1 << uint(s)
			}
		}
		return nonEmpty
	}
	dacMask := uint32(1)<<uint(dacBits) - 1
	for i, code := range codes {
		if code == 0 {
			continue
		}
		w, bit := i>>6, uint64(1)<<uint(i&63)
		for s := range masks {
			if code>>uint(s*dacBits)&dacMask != 0 {
				masks[s][w] |= bit
				if s < 64 {
					nonEmpty |= 1 << uint(s)
				} else {
					nonEmpty = ^uint64(0)
				}
			}
		}
	}
	return nonEmpty
}
