//go:build amd64 && !purego

#include "textflag.h"

// AVX2 popcount kernels: per-byte population counts via a vpshufb
// nibble lookup table, reduced to per-qword sums with vpsadbw against
// zero. See kernel.go for the dispatch rules and kernel_test.go for
// the golden-reference cross-checks.

// nibblePop<> is popcount(i) for i in 0..15, replicated across both
// 128-bit lanes (vpshufb shuffles within lanes).
DATA nibblePop<>+0x00(SB)/8, $0x0302020102010100
DATA nibblePop<>+0x08(SB)/8, $0x0403030203020201
DATA nibblePop<>+0x10(SB)/8, $0x0302020102010100
DATA nibblePop<>+0x18(SB)/8, $0x0403030203020201
GLOBL nibblePop<>(SB), RODATA|NOPTR, $32

DATA lowNibbles<>+0x00(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA lowNibbles<>+0x08(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA lowNibbles<>+0x10(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA lowNibbles<>+0x18(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL lowNibbles<>(SB), RODATA|NOPTR, $32

// func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func popcntAVX2(p *uint64, n int) int
TEXT ·popcntAVX2(SB), NOSPLIT, $0-24
	MOVQ p+0(FP), SI
	MOVQ n+8(FP), CX
	XORQ AX, AX                  // running total
	CMPQ CX, $4
	JL   scalar
	VMOVDQU nibblePop<>(SB), Y4
	VMOVDQU lowNibbles<>(SB), Y5
	VPXOR Y6, Y6, Y6             // zero, for vpsadbw
	VPXOR Y7, Y7, Y7             // qword accumulators

loop4:
	VMOVDQU (SI), Y0
	VPAND   Y0, Y5, Y1           // low nibbles
	VPSRLW  $4, Y0, Y2
	VPAND   Y2, Y5, Y2           // high nibbles
	VPSHUFB Y1, Y4, Y1           // LUT: per-nibble popcounts
	VPSHUFB Y2, Y4, Y2
	VPADDB  Y1, Y2, Y1           // per-byte popcounts
	VPSADBW Y6, Y1, Y1           // 4 per-qword sums
	VPADDQ  Y1, Y7, Y7
	ADDQ    $32, SI
	SUBQ    $4, CX
	CMPQ    CX, $4
	JGE     loop4

	// Reduce the 4 qword accumulators.
	VEXTRACTI128 $1, Y7, X1
	VPADDQ  X1, X7, X7
	VPSRLDQ $8, X7, X1
	VPADDQ  X1, X7, X7
	MOVQ    X7, AX
	VZEROUPPER

scalar:
	TESTQ CX, CX
	JZ    done

tail:
	POPCNTQ (SI), DX
	ADDQ  DX, AX
	ADDQ  $8, SI
	DECQ  CX
	JNZ   tail

done:
	MOVQ AX, ret+16(FP)
	RET

// func countAndPlanes1AVX2(mask uint64, plane *uint64, counts *int, groups int)
// One word per group, 4 groups per iteration; groups is a positive
// multiple of 4. vpsadbw's per-qword sums are exactly the per-group
// counts, stored directly as 4 int64s.
TEXT ·countAndPlanes1AVX2(SB), NOSPLIT, $0-32
	MOVQ mask+0(FP), AX
	MOVQ plane+8(FP), SI
	MOVQ counts+16(FP), DI
	MOVQ groups+24(FP), CX
	MOVQ AX, X0
	VPBROADCASTQ X0, Y0          // mask in every qword
	VMOVDQU nibblePop<>(SB), Y4
	VMOVDQU lowNibbles<>(SB), Y5
	VPXOR Y6, Y6, Y6

loop1:
	VMOVDQU (SI), Y1             // 4 group words
	VPAND   Y0, Y1, Y1
	VPAND   Y1, Y5, Y2
	VPSRLW  $4, Y1, Y3
	VPAND   Y3, Y5, Y3
	VPSHUFB Y2, Y4, Y2
	VPSHUFB Y3, Y4, Y3
	VPADDB  Y2, Y3, Y2
	VPSADBW Y6, Y2, Y2           // counts for the 4 groups
	VMOVDQU Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $4, CX
	JNZ     loop1

	VZEROUPPER
	RET

// func countAndPlanes2AVX2(mask *uint64, plane *uint64, counts *int, groups int)
// Two words per group, 2 groups per iteration; groups is a positive
// multiple of 2. The two-word mask is lane-replicated with
// vbroadcasti128 so one YMM holds two consecutive groups.
TEXT ·countAndPlanes2AVX2(SB), NOSPLIT, $0-32
	MOVQ mask+0(FP), AX
	MOVQ plane+8(FP), SI
	MOVQ counts+16(FP), DI
	MOVQ groups+24(FP), CX
	VBROADCASTI128 (AX), Y0      // [m0 m1 m0 m1]
	VMOVDQU nibblePop<>(SB), Y4
	VMOVDQU lowNibbles<>(SB), Y5
	VPXOR Y6, Y6, Y6

loop2:
	VMOVDQU (SI), Y1             // [g0w0 g0w1 g1w0 g1w1]
	VPAND   Y0, Y1, Y1
	VPAND   Y1, Y5, Y2
	VPSRLW  $4, Y1, Y3
	VPAND   Y3, Y5, Y3
	VPSHUFB Y2, Y4, Y2
	VPSHUFB Y3, Y4, Y3
	VPADDB  Y2, Y3, Y2
	VPSADBW Y6, Y2, Y2           // [q0 q1 q2 q3]
	VPSRLDQ $8, Y2, Y3           // [q1 0 q3 0]
	VPADDQ  Y3, Y2, Y2           // [q0+q1 _ q2+q3 _]
	VPERMQ  $0x08, Y2, Y2        // low xmm = [q0+q1, q2+q3]
	VMOVDQU X2, (DI)
	ADDQ    $32, SI
	ADDQ    $16, DI
	SUBQ    $2, CX
	JNZ     loop2

	VZEROUPPER
	RET
