package bitset

import (
	"testing"
	"testing/quick"

	"sre/internal/xrand"
)

func TestSetClearTest(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		s.Clear(i)
		if s.Test(i) {
			t.Fatalf("bit %d set after Clear", i)
		}
	}
}

func TestCount(t *testing.T) {
	s := New(200)
	want := 0
	for i := 0; i < 200; i += 3 {
		s.Set(i)
		want++
	}
	if got := s.Count(); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

// TestCountRangeAgainstNaive is the load-bearing test: CountRange drives
// all DOF cycle math, so we check it exhaustively against a bit-by-bit
// reference on random sets.
func TestCountRangeAgainstNaive(t *testing.T) {
	r := xrand.New(1)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(300)
		s := New(n)
		for i := 0; i < n; i++ {
			if r.Bernoulli(0.4) {
				s.Set(i)
			}
		}
		for lo := 0; lo <= n; lo += 1 + r.Intn(5) {
			for hi := lo; hi <= n; hi += 1 + r.Intn(7) {
				want := 0
				for i := lo; i < hi; i++ {
					if s.Test(i) {
						want++
					}
				}
				if got := s.CountRange(lo, hi); got != want {
					t.Fatalf("n=%d CountRange(%d,%d) = %d, want %d", n, lo, hi, got, want)
				}
			}
		}
	}
}

func TestCountRangeClamps(t *testing.T) {
	s := New(10)
	s.SetAll()
	if got := s.CountRange(-5, 100); got != 10 {
		t.Fatalf("clamped CountRange = %d, want 10", got)
	}
	if got := s.CountRange(7, 3); got != 0 {
		t.Fatalf("inverted CountRange = %d, want 0", got)
	}
}

func TestCountAndMatchesAndCount(t *testing.T) {
	r := xrand.New(2)
	f := func(seedA, seedB uint16) bool {
		n := 257
		a, b := New(n), New(n)
		ra := r.Split(string(rune(seedA)))
		rb := r.Split(string(rune(seedB)) + "b")
		for i := 0; i < n; i++ {
			if ra.Bernoulli(0.5) {
				a.Set(i)
			}
			if rb.Bernoulli(0.5) {
				b.Set(i)
			}
		}
		dst := New(n)
		return a.CountAnd(b) == a.And(b, dst).Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOr(t *testing.T) {
	a, b := New(70), New(70)
	a.Set(0)
	a.Set(69)
	b.Set(1)
	b.Set(69)
	dst := New(70)
	a.Or(b, dst)
	if dst.Count() != 3 || !dst.Test(0) || !dst.Test(1) || !dst.Test(69) {
		t.Fatal("Or produced wrong result")
	}
}

func TestSetAllRespectsLength(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 128, 130} {
		s := New(n)
		s.SetAll()
		if got := s.Count(); got != n {
			t.Fatalf("SetAll on %d bits: Count = %d", n, got)
		}
	}
}

func TestNextSetAndIndices(t *testing.T) {
	s := New(150)
	set := []int{3, 64, 65, 149}
	for _, i := range set {
		s.Set(i)
	}
	got := s.Indices(nil)
	if len(got) != len(set) {
		t.Fatalf("Indices = %v", got)
	}
	for i := range set {
		if got[i] != set[i] {
			t.Fatalf("Indices = %v, want %v", got, set)
		}
	}
	if s.NextSet(150) != -1 || s.NextSet(4) != 64 {
		t.Fatal("NextSet edge behaviour wrong")
	}
	if s.NextSet(-10) != 3 {
		t.Fatal("NextSet should clamp negative start")
	}
}

func TestCopyIsIndependent(t *testing.T) {
	a := New(64)
	a.Set(5)
	b := a.Copy()
	b.Set(6)
	if a.Test(6) {
		t.Fatal("Copy shares storage with original")
	}
	if !b.Test(5) {
		t.Fatal("Copy dropped bits")
	}
}

func TestResetClears(t *testing.T) {
	s := New(99)
	s.SetAll()
	s.Reset()
	if s.Count() != 0 {
		t.Fatal("Reset left bits set")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	New(8).Set(8)
}

func BenchmarkCountRange(b *testing.B) {
	s := New(128)
	for i := 0; i < 128; i += 2 {
		s.Set(i)
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.CountRange(16, 112)
	}
	_ = sink
}
