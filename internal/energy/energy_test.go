package energy

import (
	"math"
	"strings"
	"testing"
)

func TestSRECycleAnchors(t *testing.T) {
	c := Default()
	if got := c.SRECycle(6); math.Abs(got-15e-9) > 1e-15 {
		t.Fatalf("6-bit cycle = %v", got)
	}
	// §5.3: the 65nm macro's 3-bit sensing is 15.6 ns; our 32 nm anchor
	// halves that. Linear scaling: 9-bit cycle = 22.5 ns.
	if got := c.SRECycle(9); math.Abs(got-22.5e-9) > 1e-15 {
		t.Fatalf("9-bit cycle = %v", got)
	}
}

func TestADCPowerScaling(t *testing.T) {
	c := Default()
	if got := c.ADCPower(6); math.Abs(got-5.14e-3) > 1e-9 {
		t.Fatalf("6-bit power = %v", got)
	}
	// The 8-bit point must land on ISAAC's published 16 mW.
	p8 := c.ADCPower(8)
	if math.Abs(p8-16e-3) > 1e-6 {
		t.Fatalf("8-bit power = %v, want 16 mW", p8)
	}
	if p8 <= c.ADCPower(6) || c.ADCPower(9) <= p8 {
		t.Fatal("ADC power must grow with resolution")
	}
	// Crucially, the per-conversion cost advantage of low-resolution ADCs
	// must NOT outweigh the extra conversions smaller OUs need: 8 small
	// 6-bit conversions must cost more than one 9-bit conversion (the
	// Fig. 21a baseline-energy trend).
	if 8*c.ADCConversionEnergy(6) <= c.ADCConversionEnergy(9) {
		t.Fatal("OU-shrink must increase total ADC energy")
	}
}

func TestOUEnergyDominatedByADC(t *testing.T) {
	c := Default()
	e := c.OUEnergy(16, 16, 6)
	adc := 16 * c.ADCConversionEnergy(6)
	if adc/e < 0.5 {
		t.Fatalf("ADC share %v; the paper's energy story needs ADC-dominated OU cost", adc/e)
	}
	if e <= 0 {
		t.Fatal("non-positive OU energy")
	}
}

func TestOUEnergyScalesWithActivity(t *testing.T) {
	c := Default()
	full := c.OUEnergy(16, 16, 6)
	halfWL := c.OUEnergy(8, 16, 6)
	halfBL := c.OUEnergy(16, 8, 6)
	if !(halfWL < full && halfBL < full) {
		t.Fatal("reduced activity must reduce energy")
	}
	// Fewer sensed bitlines saves much more than fewer wordlines (ADC
	// dominates over DAC).
	if full-halfBL < (full-halfWL)*5 {
		t.Fatalf("bitline reduction should dominate: ΔBL=%v ΔWL=%v", full-halfBL, full-halfWL)
	}
}

func TestFetchEnergyRoundsUpTransactions(t *testing.T) {
	c := Default()
	if c.FetchEnergy(1) != c.EDRAMTxEnergy {
		t.Fatal("sub-transaction fetch must cost one transaction")
	}
	// A 128×16-bit batch = 2048 bits = 4 transactions.
	if got := c.FetchEnergy(128 * 16); math.Abs(got-4*c.EDRAMTxEnergy) > 1e-18 {
		t.Fatalf("batch fetch = %v", got)
	}
}

func TestEDRAMVsComputeRatio(t *testing.T) {
	// The Fig. 18 effect requires: a full dense batch's compute energy
	// dwarfs one fetch, but a heavily compressed batch's compute (~30 OU
	// cycles) is comparable to the 8 fetches ORC needs.
	c := Default()
	fetch := c.FetchEnergy(128 * 16)
	denseBatch := 1024 * c.OUEnergy(16, 16, 6) // 8 groups × 8 OU rows × 16 slices
	if denseBatch < 50*fetch {
		t.Fatalf("dense compute (%v) should dwarf one fetch (%v)", denseBatch, fetch)
	}
	sparseBatch := 30 * c.OUEnergy(16, 16, 6)
	orcFetches := 8 * fetch
	ratio := orcFetches / sparseBatch
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("ORC fetch/compute ratio %v outside the regime that reproduces Fig. 18", ratio)
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{Compute: 1, EDRAM: 2, Index: 3, Leakage: 4}
	if b.Total() != 10 {
		t.Fatal("Total wrong")
	}
	b.Add(Breakdown{Compute: 1})
	if b.Compute != 2 {
		t.Fatal("Add wrong")
	}
	b.Scale(2)
	if b.EDRAM != 4 || b.Leakage != 8 {
		t.Fatal("Scale wrong")
	}
}

func TestIndexingEnergy(t *testing.T) {
	c := Default()
	if c.IndexingEnergy(1, false, false) != 0 {
		t.Fatal("no blocks, no energy")
	}
	both := c.IndexingEnergy(1, true, true)
	// The decoder is shared by the CU's arrays; each array carries its
	// own WLVG.
	want := c.IndexDecoderPower/float64(c.ArraysPerDecoder) + c.WLVGPower
	if math.Abs(both-want) > 1e-12 {
		t.Fatalf("indexing energy = %v, want %v", both, want)
	}
}

func TestTable1Rows(t *testing.T) {
	rows := Default().Table1()
	if len(rows) < 14 {
		t.Fatalf("Table 1 has %d rows", len(rows))
	}
	joined := strings.Join(rows, "\n")
	for _, want := range []string{"5.14 mW", "eDRAM", "128×128", "1.2 GSps"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("Table 1 missing %q", want)
		}
	}
}

func TestBadADCBitsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Default().SRECycle(0)
}
