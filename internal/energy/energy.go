// Package energy holds the Table 1 hardware configuration and turns it
// into per-event energies and cycle times for the simulator.
//
// Conventions:
//
//   - The SRE pipeline cycle is set by ADC sensing, which scales linearly
//     with ADC bit resolution [38]: 15 ns at 6 bits in 32 nm (the paper's
//     scaled figure; 30 ns at 65 nm). ISAAC's over-idealized design uses
//     its published 100 ns cycle.
//   - ADC power scales exponentially with resolution, anchored at the
//     paper's two published points (5.14 mW at 6 bits, ISAAC's 16 mW at
//     8 bits); see ADCPower.
//   - Peripheral event energies (DAC, S&H, IR, OR, S+A) are Table 1
//     powers divided by the 1.2 GHz reference clock; the eDRAM fetch cost
//     is per 512-bit bus transaction.
//
// Absolute joules are therefore honest derivations from the paper's own
// constants, and every result figure is reported normalized.
package energy

import (
	"fmt"
	"math"
)

// Config carries the Table 1 constants (powers in watts, times in
// seconds, sizes in bits/bytes).
type Config struct {
	// Timing anchors.
	SRECycleAt6Bits float64 // s; 15 ns at 32 nm
	ISAACCycle      float64 // s; 100 ns
	RefClock        float64 // Hz; 1.2 GHz peripheral clock

	// CU-level components (Table 1, CU configuration).
	ADCPowerAt6Bits float64 // W per ADC (6-bit, 1.2 GSps)
	ADCPowerAt8Bits float64 // W per ADC (8-bit; ISAAC's published figure)
	ADCSampleRate   float64 // conversions/s
	DACPower        float64 // W for 8×128 1-bit DACs
	DACCount        int
	SHPower         float64 // W for 8×128 sample-and-hold units
	SHCount         int
	ArrayPowerPerOU float64 // W while an OU is active (4.7 µW)
	SAPower         float64 // W, CU shift-and-add units
	IRPower         float64 // W, 2 KB input register
	ORPower         float64 // W, 256 B CU output register

	// PE-level components.
	EDRAMTxEnergy float64 // J per 512-bit eDRAM bus transaction
	EDRAMTxBits   int
	LeakagePower  float64 // W per active crossbar array (lumped)

	// Digital indexing blocks (synthesized, §7.2). The Index Decoder
	// serves a CU's Input Index Buffer and is shared by the CU's arrays;
	// each array needs its own Wordline Vector Generator.
	IndexDecoderPower float64 // W
	WLVGPower         float64 // W
	ArraysPerDecoder  int     // 8 arrays per CU share one decoder
}

// Default returns the Table 1 configuration.
func Default() Config {
	return Config{
		SRECycleAt6Bits: 15e-9,
		ISAACCycle:      100e-9,
		RefClock:        1.2e9,

		ADCPowerAt6Bits: 5.14e-3,
		ADCPowerAt8Bits: 16e-3,
		ADCSampleRate:   1.2e9,
		DACPower:        4e-3,
		DACCount:        8 * 128,
		SHPower:         10e-6,
		SHCount:         8 * 128,
		ArrayPowerPerOU: 4.7e-6,
		SAPower:         0.2e-3,
		IRPower:         1.24e-3,
		ORPower:         0.23e-3,

		EDRAMTxEnergy: 150e-12,
		EDRAMTxBits:   512,
		LeakagePower:  0.1e-3,

		IndexDecoderPower: 1.24e-3,
		WLVGPower:         0.86e-3,
		ArraysPerDecoder:  8,
	}
}

// SRECycle returns the pipeline cycle time for a given ADC resolution:
// sensing time is proportional to bit resolution [38].
func (c Config) SRECycle(adcBits int) float64 {
	if adcBits <= 0 {
		panic("energy: non-positive ADC bits")
	}
	return c.SRECycleAt6Bits * float64(adcBits) / 6
}

// ADCPower returns SAR ADC power at the given resolution. The scaling is
// exponential in resolution, anchored at the paper's two published
// points: 5.14 mW at 6 bits (Table 1, derived via [38]) and ISAAC's
// 16 mW at 8 bits — i.e. P(b) = P₆ · r^(b−6) with r = √(P₈/P₆) ≈ 1.76.
func (c Config) ADCPower(adcBits int) float64 {
	r := math.Sqrt(c.ADCPowerAt8Bits / c.ADCPowerAt6Bits)
	return c.ADCPowerAt6Bits * math.Pow(r, float64(adcBits-6))
}

// ADCConversionEnergy returns the energy of one conversion at the given
// resolution.
func (c Config) ADCConversionEnergy(adcBits int) float64 {
	return c.ADCPower(adcBits) / c.ADCSampleRate
}

// OUEnergy returns the energy of one OU activation: the array slice, the
// driven DACs and S&H units for the cycle, one ADC conversion per sensed
// bitline, one IR read, one OR write and the shift-and-add share.
// activeWL is the number of wordlines actually driven (≤ S_WL; DOF drives
// fewer when the batch runs out of non-zero inputs).
func (c Config) OUEnergy(activeWL, sensedBL, adcBits int) float64 {
	t := c.SRECycle(adcBits)
	dacPer := c.DACPower / float64(c.DACCount)
	shPer := c.SHPower / float64(c.SHCount)
	e := c.ArrayPowerPerOU * t
	e += float64(activeWL) * dacPer * t
	e += float64(sensedBL) * shPer * t
	e += float64(sensedBL) * c.ADCConversionEnergy(adcBits)
	e += (c.IRPower + c.ORPower + c.SAPower) / c.RefClock * float64(sensedBL)
	return e
}

// OUBaseEnergy returns the wordline-independent part of one OU
// activation's energy (array, S&H, ADC conversions, IR/OR/S+A). The
// simulator aggregates energy as events·OUBaseEnergy + drivenWordlines·
// WordlineEnergy, which equals summing OUEnergy per event.
func (c Config) OUBaseEnergy(sensedBL, adcBits int) float64 {
	return c.OUEnergy(0, sensedBL, adcBits)
}

// WordlineEnergy returns the energy of driving one wordline for one OU
// cycle (its DAC share).
func (c Config) WordlineEnergy(adcBits int) float64 {
	return c.DACPower / float64(c.DACCount) * c.SRECycle(adcBits)
}

// FetchEnergy returns the eDRAM energy of moving `bits` from the buffer
// to an input register (rounded up to whole bus transactions).
func (c Config) FetchEnergy(bits int) float64 {
	tx := (bits + c.EDRAMTxBits - 1) / c.EDRAMTxBits
	return float64(tx) * c.EDRAMTxEnergy
}

// IndexingEnergy returns one array's share of decoder+WLVG energy over an
// execution of the given duration (the blocks run while their crossbar
// computes; the decoder's power is split over the CU's arrays).
func (c Config) IndexingEnergy(seconds float64, useDecoder, useWLVG bool) float64 {
	e := 0.0
	if useDecoder {
		share := c.ArraysPerDecoder
		if share < 1 {
			share = 1
		}
		e += c.IndexDecoderPower * seconds / float64(share)
	}
	if useWLVG {
		e += c.WLVGPower * seconds
	}
	return e
}

// LeakageEnergy returns lumped leakage for one array over a duration.
func (c Config) LeakageEnergy(seconds float64) float64 {
	return c.LeakagePower * seconds
}

// Breakdown accumulates energy by component class; the Fig. 18/21/23/24
// plots stack these.
type Breakdown struct {
	Compute      float64 // array + DAC + S&H + ADC + IR + OR + S+A (per-OU costs)
	EDRAM        float64 // buffer fetches
	Index        float64 // Index Decoder + WLVG
	Interconnect float64 // inter-layer feature-map transfers (internal/noc)
	Leakage      float64
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 {
	return b.Compute + b.EDRAM + b.Index + b.Interconnect + b.Leakage
}

// Add accumulates other into b.
func (b *Breakdown) Add(other Breakdown) {
	b.Compute += other.Compute
	b.EDRAM += other.EDRAM
	b.Index += other.Index
	b.Interconnect += other.Interconnect
	b.Leakage += other.Leakage
}

// Scale multiplies every component (used when window sampling scales a
// sampled measurement to the full layer).
func (b *Breakdown) Scale(f float64) {
	b.Compute *= f
	b.EDRAM *= f
	b.Index *= f
	b.Interconnect *= f
	b.Leakage *= f
}

// Table1 returns the hardware-configuration rows in the layout of the
// paper's Table 1, for the table1 experiment.
func (c Config) Table1() []string {
	return []string{
		"PE configuration (1.2 GHz, 32nm process, 168 PEs per chip)",
		"eDRAM Buffer     | 64KB, 512-bit bus          | 29 mW",
		"eDRAM-to-CU bus  | 384 wires                  | 7 mW",
		"Router           | flit 32, 8 ports (4 PEs)   | 42 mW",
		"Sigmoid          | ×2                         | 0.52 mW",
		"S+A              | ×1                         | 0.05 mW",
		"MaxPool          | ×1                         | 0.4 mW",
		"OR               | 3KB                        | 1.68 mW",
		"CU configuration (12 CUs per PE)",
		fmt.Sprintf("ADC              | ×8, 6-bit, 1.2 GSps        | %.2f mW", c.ADCPowerAt6Bits*1e3),
		fmt.Sprintf("DAC              | ×8×128, 1-bit              | %.0f mW", c.DACPower*1e3),
		fmt.Sprintf("S+H              | ×8×128                     | %.0f µW", c.SHPower*1e6),
		fmt.Sprintf("Memristor array  | ×8, 128×128, 2b/cell, 16×16 OU | %.1f µW/OU", c.ArrayPowerPerOU*1e6),
		fmt.Sprintf("S+A              | ×4                         | %.1f mW", c.SAPower*1e3),
		fmt.Sprintf("IR               | 2KB                        | %.2f mW", c.IRPower*1e3),
		fmt.Sprintf("OR               | 256B                       | %.2f mW", c.ORPower*1e3),
	}
}
