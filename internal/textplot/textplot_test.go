package textplot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	c := Chart{Title: "speedup", Unit: "x", Ref: 1,
		Bars: []Bar{{"a", 2}, {"b", 4}, {"longlabel", 1}}}
	out := c.Render(40)
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines: %q", out)
	}
	if !strings.HasPrefix(lines[0], "speedup") {
		t.Fatal("missing title")
	}
	// The largest bar fills the width; the smaller one is about half.
	countHash := func(s string) int { return strings.Count(s, "#") }
	if countHash(lines[2]) != 40 {
		t.Fatalf("max bar has %d hashes, want 40", countHash(lines[2]))
	}
	if h := countHash(lines[1]); h < 18 || h > 22 {
		t.Fatalf("half bar has %d hashes", h)
	}
	// Reference mark appears in rows where the bar falls short of it.
	if !strings.Contains(lines[3], "|") {
		t.Fatal("missing reference mark")
	}
	// Values printed with unit.
	if !strings.Contains(lines[1], "2.00x") {
		t.Fatalf("value missing: %q", lines[1])
	}
}

func TestRenderEdges(t *testing.T) {
	if out := (Chart{Title: "t"}).Render(20); !strings.Contains(out, "no data") {
		t.Fatal("empty chart must say so")
	}
	// All-zero values must not divide by zero.
	c := Chart{Title: "z", Bars: []Bar{{"a", 0}}}
	if out := c.Render(5); !strings.Contains(out, "0.00") {
		t.Fatalf("zero chart: %q", out)
	}
	// Tiny width clamps.
	c2 := Chart{Title: "w", Bars: []Bar{{"a", 1}}}
	if out := c2.Render(1); !strings.Contains(out, "#") {
		t.Fatalf("clamped width: %q", out)
	}
}

func TestLabelsAligned(t *testing.T) {
	c := Chart{Title: "t", Bars: []Bar{{"x", 1}, {"yyyy", 1}}}
	lines := strings.Split(strings.TrimSuffix(c.Render(10), "\n"), "\n")
	if strings.Index(lines[1], "#") != strings.Index(lines[2], "#") {
		t.Fatal("bars not column-aligned")
	}
}
