// Package textplot renders small horizontal bar charts as text, so
// cmd/srebench can show the paper's figures as figures, not just tables.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labelled value.
type Bar struct {
	Label string
	Value float64
}

// Chart is a titled group of bars with an optional reference line.
type Chart struct {
	Title string
	Unit  string  // suffix printed after each value ("x", "%", "")
	Ref   float64 // draw a '|' marker at this value if > 0 (e.g. baseline = 1)
	Bars  []Bar
}

// Render draws the chart with bars scaled into `width` columns.
func (c Chart) Render(width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", c.Title)
	if len(c.Bars) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	labelW, maxV := 0, 0.0
	for _, bar := range c.Bars {
		if len(bar.Label) > labelW {
			labelW = len(bar.Label)
		}
		maxV = math.Max(maxV, bar.Value)
	}
	maxV = math.Max(maxV, c.Ref)
	if maxV <= 0 {
		maxV = 1
	}
	scale := float64(width) / maxV
	refCol := -1
	if c.Ref > 0 {
		refCol = int(math.Round(c.Ref * scale))
	}
	for _, bar := range c.Bars {
		n := int(math.Round(bar.Value * scale))
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		row := []byte(strings.Repeat("#", n) + strings.Repeat(" ", width-n))
		if refCol >= 0 && refCol <= width {
			idx := refCol
			if idx == len(row) {
				idx--
			}
			if row[idx] == ' ' {
				row[idx] = '|'
			}
		}
		fmt.Fprintf(&b, "  %-*s %s %.2f%s\n", labelW, bar.Label, string(row), bar.Value, c.Unit)
	}
	return b.String()
}
