// Package pipeline models SRE's per-crossbar execution pipeline (paper
// §5.3, Fig. 16).
//
// Stages: index decode → eDRAM fetch + IR write → {OU compute → ADC →
// S+A/OR write}. Decode and fetch each take one cycle per input batch and
// run concurrently with the previous batch's OU computation, so in steady
// state they are hidden — *unless* DOF collapses a batch to fewer OU
// cycles than the prep latency (the extreme case being an all-zero batch
// that needs no OU cycles at all), which stalls the compute stage. The
// trailing ADC and S+A stages drain after the last OU cycle.
package pipeline

// Tracker schedules one crossbar's batches and accounts stalls. The zero
// value is ready to use. FetchCycles overrides how many pipeline cycles
// the eDRAM fetch stage needs per batch (0 means the paper's design
// point of 1; internal/buffer computes larger values for undersized
// buffers).
type Tracker struct {
	FetchCycles int64

	decodeDone  int64 // cycle when the decode unit frees up
	fetchDone   int64 // cycle when the last fetched batch landed in the IR
	computeDone int64 // cycle when the compute stage finishes its work
	stalls      int64
	batches     int64
	started     bool
}

// Batch feeds the tracker one input batch requiring ouCycles of OU
// computation (possibly zero under DOF).
func (t *Tracker) Batch(ouCycles int64) {
	if ouCycles < 0 {
		panic("pipeline: negative OU cycles")
	}
	fetchCycles := t.FetchCycles
	if fetchCycles <= 0 {
		fetchCycles = 1
	}
	t.batches++
	// Decode and fetch units each process one batch per cycle (fetch may
	// take longer on an undersized buffer), in order.
	decodeStart := t.decodeDone
	t.decodeDone = decodeStart + 1
	fetchStart := t.decodeDone
	if t.fetchDone > fetchStart {
		fetchStart = t.fetchDone
	}
	t.fetchDone = fetchStart + fetchCycles
	// Compute starts when the batch is in the IR and the previous batch
	// left the OU stage.
	start := t.fetchDone
	if t.computeDone > start {
		start = t.computeDone
	}
	if t.started && start > t.computeDone {
		t.stalls += start - t.computeDone
	}
	t.computeDone = start + ouCycles
	t.started = true
}

// drainCycles covers the trailing ADC and S+A/OR-write stages of the
// final OU (Fig. 16's pipeline tail).
const drainCycles = 2

// Finish returns the total cycles consumed and the stall cycles observed.
// A tracker with no batches reports zero.
func (t *Tracker) Finish() (total, stalls int64) {
	if t.batches == 0 {
		return 0, 0
	}
	return t.computeDone + drainCycles, t.stalls
}

// Schedule is a convenience wrapper: run every batch through a fresh
// tracker and report totals.
func Schedule(ouCycles []int64) (total, stalls int64) {
	var t Tracker
	for _, c := range ouCycles {
		t.Batch(c)
	}
	return t.Finish()
}
