package pipeline

import "testing"

func TestEmpty(t *testing.T) {
	total, stalls := Schedule(nil)
	if total != 0 || stalls != 0 {
		t.Fatal("empty schedule must be free")
	}
}

func TestSingleBatch(t *testing.T) {
	// Decode (1) + fetch (1) + 10 OU cycles + 2 drain.
	total, stalls := Schedule([]int64{10})
	if total != 14 {
		t.Fatalf("total = %d, want 14", total)
	}
	if stalls != 0 {
		t.Fatalf("stalls = %d", stalls)
	}
}

func TestSteadyStateHidesPrep(t *testing.T) {
	// Long batches: prep fully hidden, so N batches of C cycles cost
	// 2 (fill) + N·C + 2 (drain).
	batches := make([]int64, 10)
	for i := range batches {
		batches[i] = 16
	}
	total, stalls := Schedule(batches)
	if total != 2+10*16+2 {
		t.Fatalf("total = %d, want %d", total, 2+10*16+2)
	}
	if stalls != 0 {
		t.Fatalf("steady state stalled %d cycles", stalls)
	}
}

func TestAllZeroBatchesStall(t *testing.T) {
	// Batches with zero OU work (fully skipped by DOF) are bounded by the
	// fetch unit: one batch per cycle.
	batches := make([]int64, 8)
	total, stalls := Schedule(batches)
	// Fetches complete at cycles 2,3,...,9; compute is instant; drain +2.
	if total != 11 {
		t.Fatalf("total = %d, want 11", total)
	}
	if stalls == 0 {
		t.Fatal("expected stalls when compute outruns prep")
	}
}

func TestMixedStallAccounting(t *testing.T) {
	// A long batch followed by an empty one then a long one: the empty
	// batch's successor is prep-bound only if compute caught up.
	total1, _ := Schedule([]int64{100, 0, 100})
	if total1 != 2+200+2 {
		t.Fatalf("total = %d; zero batch behind a long batch must be free", total1)
	}
	// Leading zeros are not hidden.
	total2, stalls2 := Schedule([]int64{0, 100})
	if total2 != 3+100+2 {
		t.Fatalf("total = %d, want 105", total2)
	}
	if stalls2 != 1 {
		t.Fatalf("stalls = %d, want 1", stalls2)
	}
}

func TestNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var tr Tracker
	tr.Batch(-1)
}

func TestThroughputLowerBound(t *testing.T) {
	// Total can never be less than ΣOU + fill + drain, nor less than
	// batches + 1 + drain (prep throughput).
	cases := [][]int64{
		{1, 1, 1, 1},
		{0, 0, 5, 0},
		{3},
		{0},
	}
	for _, c := range cases {
		var sum int64
		for _, v := range c {
			sum += v
		}
		total, _ := Schedule(c)
		if total < sum+4 && total < int64(len(c))+3 {
			t.Fatalf("schedule %v: total %d below both bounds", c, total)
		}
	}
}

func TestFetchCyclesSlowPipeline(t *testing.T) {
	// Slow fetch (4 cycles/batch) with short compute bursts: the fetch
	// unit becomes the bottleneck and stalls accumulate.
	fast, slow := Tracker{}, Tracker{FetchCycles: 4}
	for i := 0; i < 10; i++ {
		fast.Batch(2)
		slow.Batch(2)
	}
	ft, fs := fast.Finish()
	st, ss := slow.Finish()
	if st <= ft {
		t.Fatalf("slow fetch total %d not above fast %d", st, ft)
	}
	if ss <= fs {
		t.Fatalf("slow fetch stalls %d not above fast %d", ss, fs)
	}
	// Throughput bound: 10 batches × 4 fetch cycles dominate.
	if st < 40 {
		t.Fatalf("total %d below the fetch throughput bound", st)
	}
}
