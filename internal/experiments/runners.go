package experiments

import (
	"fmt"

	"sre/internal/core"
	"sre/internal/energy"
	"sre/internal/isaac"
	"sre/internal/mapping"
	"sre/internal/quant"
	"sre/internal/stats"
	"sre/internal/textplot"
	"sre/internal/workload"
)

// Fig17 reports the performance speedup of every sparsity-exploration
// approach over the no-sparsity OU baseline (paper Fig. 17).
func Fig17(opt Options) (*Table, error) {
	t := &Table{ID: "fig17", Title: "Speedup over OU baseline (SSL networks)",
		Header: []string{"network", "naive", "recom", "orc", "dof", "orc+dof"}}
	p, g := quant.Default(), mapping.Default()
	var orcdof []float64
	for _, spec := range specsFor(opt) {
		b, err := build(spec, workload.SSL, p, g, opt)
		if err != nil {
			return nil, err
		}
		res := modeResults(b, spec, p, g, opt)
		base := float64(res["baseline"].Cycles)
		row := []string{spec.Name}
		for _, m := range []string{"naive", "recom", "orc", "dof", "orc+dof"} {
			s := base / float64(res[m].Cycles)
			row = append(row, f2(s))
			if m == "orc+dof" {
				orcdof = append(orcdof, s)
			}
		}
		t.AddRow(row...)
	}
	chart := textplot.Chart{Title: "orc+dof speedup over baseline", Unit: "x", Ref: 1}
	for i, row := range t.Rows {
		chart.Bars = append(chart.Bars, textplot.Bar{Label: row[0], Value: orcdof[i]})
	}
	t.Charts = append(t.Charts, chart)
	t.Notes = append(t.Notes,
		fmt.Sprintf("orc+dof: average %.1fx, max %.1fx (paper: average 13.1x, max 42.3x)",
			stats.Mean(orcdof), stats.Max(orcdof)))
	return t, nil
}

// Fig18 reports energy normalized to the baseline, split into eDRAM and
// the rest (paper Fig. 18).
func Fig18(opt Options) (*Table, error) {
	t := &Table{ID: "fig18", Title: "Energy normalized to baseline (SSL networks)",
		Header: []string{"network", "mode", "total", "eDRAM part", "compute part", "other"}}
	p, g := quant.Default(), mapping.Default()
	var savings []float64
	for _, spec := range specsFor(opt) {
		b, err := build(spec, workload.SSL, p, g, opt)
		if err != nil {
			return nil, err
		}
		res := modeResults(b, spec, p, g, opt)
		base := res["baseline"].Energy.Total()
		for _, m := range []string{"naive", "recom", "orc", "dof", "orc+dof"} {
			e := res[m].Energy
			t.AddRow(spec.Name, m, f3(e.Total()/base), f3(e.EDRAM/base),
				f3(e.Compute/base), f3((e.Index+e.Interconnect+e.Leakage)/base))
			if m == "orc+dof" {
				savings = append(savings, 1-e.Total()/base)
			}
		}
	}
	chart := textplot.Chart{Title: "orc+dof energy vs baseline (lower is better)", Ref: 1}
	ci := 0
	for _, row := range t.Rows {
		if row[1] == "orc+dof" {
			chart.Bars = append(chart.Bars, textplot.Bar{Label: row[0], Value: 1 - savings[ci]})
			ci++
		}
	}
	t.Charts = append(t.Charts, chart)
	t.Notes = append(t.Notes,
		fmt.Sprintf("orc+dof savings: average %.1f%%, max %.1f%% (paper: average 85.3%%, max 95.4%%)",
			100*stats.Mean(savings), 100*stats.Max(savings)),
		"ORC modes pay one eDRAM fetch per column group; for the nets not tuned for structural sparsity that outweighs ORC's extra compute savings over DOF (paper §7.1)")
	return t, nil
}

// Fig21 reports baseline and SRE energy across OU sizes normalized to
// the 128×128 OU (paper Fig. 21).
func Fig21(opt Options) (*Table, error) {
	t := &Table{ID: "fig21", Title: "Energy vs OU size (normalized to 128x128 OU)",
		Header: []string{"network", "OU", "baseline", "sre(orc+dof)"}}
	p := quant.Default()
	sizes := []int{128, 64, 32, 16}
	if opt.Quick {
		sizes = []int{128, 16}
	}
	for _, spec := range specsFor(opt) {
		type pair struct{ base, sre float64 }
		vals := make([]pair, 0, len(sizes))
		for _, ou := range sizes {
			g := mapping.Default().WithOU(ou)
			b, err := build(spec, workload.SSL, p, g, opt)
			if err != nil {
				return nil, err
			}
			base := simulate(b, core.ModeBaseline, p, g, spec.IndexBits, opt)
			sre := simulate(b, core.ModeORCDOF, p, g, spec.IndexBits, opt)
			vals = append(vals, pair{base.Energy.Total(), sre.Energy.Total()})
		}
		for i, ou := range sizes {
			t.AddRow(spec.Name, fmt.Sprintf("%dx%d", ou, ou),
				f3(vals[i].base/vals[0].base), f3(vals[i].sre/vals[0].sre))
		}
	}
	t.Notes = append(t.Notes,
		"baseline energy grows fast as the OU shrinks (more OU events); with ORC+DOF smaller OUs often cost the same or less (paper Fig. 21)")
	return t, nil
}

// Fig22 reports SRE speedup over baseline across ReRAM bits-per-cell
// (paper Fig. 22).
func Fig22(opt Options) (*Table, error) {
	t := &Table{ID: "fig22", Title: "SRE speedup vs ReRAM bits-per-cell",
		Header: []string{"network", "bits/cell", "orc+dof speedup"}}
	g := mapping.Default()
	bpcs := []int{1, 2, 4, 8}
	if opt.Quick {
		bpcs = []int{2, 8}
	}
	perBPC := map[int][]float64{}
	for _, spec := range specsFor(opt) {
		for _, cb := range bpcs {
			p := quant.Params{WBits: 16, ABits: 16, CellBits: cb, DACBits: 1}
			b, err := build(spec, workload.SSL, p, g, opt)
			if err != nil {
				return nil, err
			}
			base := simulate(b, core.ModeBaseline, p, g, spec.IndexBits, opt)
			sre := simulate(b, core.ModeORCDOF, p, g, spec.IndexBits, opt)
			s := float64(base.Cycles) / float64(sre.Cycles)
			perBPC[cb] = append(perBPC[cb], s)
			t.AddRow(spec.Name, fmt.Sprintf("%d", cb), f2(s))
		}
	}
	for _, cb := range bpcs {
		t.Notes = append(t.Notes,
			fmt.Sprintf("average at %d bits/cell: %.1fx", cb, stats.Mean(perBPC[cb])))
	}
	t.Notes = append(t.Notes,
		"speedup falls as cells store more bits (less bit-level weight sparsity); paper: still 11.4x average at 8 bits")
	return t, nil
}

// Fig23 reports SRE speedup and energy for non-SSL (GSL-pruned) networks
// (paper Fig. 23).
func Fig23(opt Options) (*Table, error) {
	t := &Table{ID: "fig23", Title: "Non-SSL (GSL) networks: speedup and energy vs baseline",
		Header: []string{"network", "orc", "dof", "orc+dof", "energy(orc)", "energy(dof)", "energy(orc+dof)"}}
	p, g := quant.Default(), mapping.Default()
	specs := specsFor(opt)
	if !opt.Quick {
		// The paper evaluates the four large-scale networks here.
		var large []workload.Spec
		for _, s := range specs {
			if s.Large {
				large = append(large, s)
			}
		}
		specs = large
	}
	var orcdof, savings []float64
	for _, spec := range specs {
		b, err := build(spec, workload.GSL, p, g, opt)
		if err != nil {
			return nil, err
		}
		base := simulate(b, core.ModeBaseline, p, g, spec.IndexBits, opt)
		orc := simulate(b, core.ModeORC, p, g, spec.IndexBits, opt)
		dof := simulate(b, core.ModeDOF, p, g, spec.IndexBits, opt)
		both := simulate(b, core.ModeORCDOF, p, g, spec.IndexBits, opt)
		bc, be := float64(base.Cycles), base.Energy.Total()
		t.AddRow(spec.Name,
			f2(bc/float64(orc.Cycles)), f2(bc/float64(dof.Cycles)), f2(bc/float64(both.Cycles)),
			f3(orc.Energy.Total()/be), f3(dof.Energy.Total()/be), f3(both.Energy.Total()/be))
		orcdof = append(orcdof, bc/float64(both.Cycles))
		savings = append(savings, 1-both.Energy.Total()/be)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("orc+dof: average %.1fx speedup, %.1f%% energy savings (paper: 9.7x, 78.7%%)",
			stats.Mean(orcdof), 100*stats.Mean(savings)),
		"without SSL's structure ORC helps little (paper: VGG-16 drops from 6.8x to 1.1x) while DOF is unaffected")
	return t, nil
}

// Fig24 compares SRE with the over-idealized ISAAC design (paper
// Fig. 24): execution time and energy normalized to ISAAC+ReCom.
func Fig24(opt Options) (*Table, error) {
	t := &Table{ID: "fig24", Title: "SRE vs over-idealized ISAAC (+ReCom)",
		Header: []string{"network", "time(SRE/ISAAC)", "energy(SRE/ISAAC)", "energy(OU base/ISAAC)"}}
	p, g := quant.Default(), mapping.Default()
	var times, energies []float64
	for _, spec := range specsFor(opt) {
		b, err := build(spec, workload.SSL, p, g, opt)
		if err != nil {
			return nil, err
		}
		sre := simulate(b, core.ModeORCDOF, p, g, spec.IndexBits, opt)
		base := simulate(b, core.ModeBaseline, p, g, spec.IndexBits, opt)
		icfg := isaac.DefaultConfig()
		icfg.Geometry, icfg.Quant = g, p
		icfg.Energy = energy.Default()
		ires := isaac.SimulateNetwork(b.ISAACInputs(), icfg)
		tr := sre.Time / ires.Time
		er := sre.Energy.Total() / ires.Energy.Total()
		t.AddRow(spec.Name, f3(tr), f3(er), f3(base.Energy.Total()/ires.Energy.Total()))
		times = append(times, tr)
		energies = append(energies, er)
	}
	wins := 0
	for _, v := range times {
		if v < 1 {
			wins++
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("SRE faster than ISAAC on %d/%d networks; mean time ratio %.2f (paper: 3/6, 15.8%% faster on average)",
			wins, len(times), stats.Mean(times)),
		fmt.Sprintf("mean energy ratio %.2f (paper: 67%% savings); un-sparse OU baseline costs ~2.5x ISAAC", stats.Mean(energies)))
	return t, nil
}

// WSSComposability reports the weight bit-slice sparsity (WSS)
// composability table: every network rebuilt with its weights capped
// to the two least-significant bit slices, then run under plain
// ORC+DOF and the two WSS modes on the same capped weights. The cap
// stands in for slice-aware training (the weights all modes see are
// identical), so the cycle and energy deltas isolate what eliding
// all-zero weight slice groups buys on top of row compression and
// dynamic OU formation — the Fig. 10-style composability question the
// WSS scheme answers with "yes, all three axes stack".
func WSSComposability(opt Options) (*Table, error) {
	const sliceCap = 2
	t := &Table{ID: "pr10-wss",
		Title:  fmt.Sprintf("WSS composability (SSL networks, %d-slice weight cap)", sliceCap),
		Header: []string{"network", "mode", "cycles", "speedup vs orc+dof", "energy J", "energy vs orc+dof"}}
	p, g := quant.Default(), mapping.Default()
	modes := []core.Mode{core.ModeORCDOF, core.ModeWSS, core.ModeORCDOFWSS}
	var comb, erat []float64
	for _, spec := range specsFor(opt) {
		spec.SliceCap = sliceCap
		b, err := build(spec, workload.SSL, p, g, opt)
		if err != nil {
			return nil, err
		}
		var ref core.NetworkResult
		for i, m := range modes {
			res := simulate(b, m, p, g, spec.IndexBits, opt)
			if i == 0 {
				ref = res
			}
			s := float64(ref.Cycles) / float64(res.Cycles)
			t.AddRow(spec.Name, m.String(), fmt.Sprintf("%d", res.Cycles), f2(s),
				fmt.Sprintf("%.3g", res.Energy.Total()), f3(res.Energy.Total()/ref.Energy.Total()))
			if m == core.ModeORCDOFWSS {
				comb = append(comb, s)
				erat = append(erat, res.Energy.Total()/ref.Energy.Total())
			}
		}
	}
	chart := textplot.Chart{Title: "orc+dof+wss speedup over plain orc+dof", Unit: "x", Ref: 1}
	ci := 0
	for _, row := range t.Rows {
		if row[1] == core.ModeORCDOFWSS.String() {
			chart.Bars = append(chart.Bars, textplot.Bar{Label: row[0], Value: comb[ci]})
			ci++
		}
	}
	t.Charts = append(t.Charts, chart)
	wins := 0
	for _, v := range comb {
		if v > 1 {
			wins++
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("orc+dof+wss beats plain orc+dof on %d/%d networks (max %.2fx, mean %.2fx) — slice elision composes with both row compression and DOF where capped slices dominate the schedule",
			wins, len(comb), stats.Max(comb), stats.Mean(comb)),
		fmt.Sprintf("energy drops on every network (mean ratio %.2f): an elided slice group issues no eDRAM fetch, so per-group fetch traffic collapses with the all-zero high slices", stats.Mean(erat)),
		fmt.Sprintf("all modes simulate the same %d-slice-capped weights; plain orc+dof still pays cycles and eDRAM fetches for the all-zero high slices", sliceCap),
		"the trade-off: WSS's slice-major mapping groups 16 same-slice logical columns, so each group retains the union of 16 columns' rows — on the large nets that widens the per-group OU footprint more than slice elision recovers, the same interplay Fig. 10 charts for OCC vs DOF")
	return t, nil
}
