package experiments

import (
	"fmt"
	"math"

	"sre/internal/dataset"
	"sre/internal/nn"
	"sre/internal/quant"
	"sre/internal/reram"
	"sre/internal/tensor"
	"sre/internal/train"
	"sre/internal/xrand"
)

// Fig5 reproduces the motivation experiment (paper Fig. 5): inference
// accuracy as a function of the number of concurrently activated
// wordlines, for the baseline WOx cell and its 2× / 3× improved variants.
//
// The two small benchmarks are really trained (internal/train) on
// synthetic datasets and evaluated with the device read-error channel
// injected into every conv/FC dot product: each n-row chunk of a dot
// product picks up the post-ADC discrete noise of
// SlicesPerInput×CellsPerWeight reads (internal/reram.ChunkNoise). The
// large-scale benchmark (CaffeNet in the paper) uses a read-error-rate
// proxy — see largeNetProxy — because training an ImageNet-scale model
// is outside this reproduction's scope (DESIGN.md §2).
func Fig5(opt Options) (*Table, error) {
	t := &Table{ID: "fig5", Title: "Inference accuracy vs concurrently activated wordlines",
		Header: []string{"benchmark", "cell", "wordlines", "accuracy"}}
	wordlines := []int{4, 8, 16, 32, 64, 128}
	cellKs := []float64{1, 2, 3}
	samples := 200
	epochs := 8
	if opt.Quick {
		wordlines = []int{8, 128}
		cellKs = []float64{1, 3}
		samples = 60
		epochs = 4
	}

	benches := []struct {
		name string
		cfg  dataset.Config
		topo string
	}{
		// Noise/shift are set so the trained nets land in the mid-90s with
		// a realistic margin distribution — a task solved at exactly 100%
		// has no borderline samples and could not show the Fig. 5 cliff.
		{"MNIST(small)", dataset.Config{Name: "m", Channels: 1, Size: 20, Classes: 10,
			Train: 1200, Test: samples, Noise: 0.30, MaxShift: 2, Seed: 101},
			"conv5x8-pool-conv3x16-pool-64-10"},
		{"CIFAR-10(small)", dataset.Config{Name: "c", Channels: 3, Size: 20, Classes: 10,
			Train: 1200, Test: samples, Noise: 0.35, MaxShift: 2, Seed: 202},
			"conv5x8p2-pool-conv3x16p1-pool-64-10"},
	}
	if opt.Quick {
		benches = benches[:1]
	}

	p := quant.Default()
	base := reram.WOxBaseline()
	for _, bench := range benches {
		trainSet, testSet := dataset.Generate(bench.cfg)
		net, err := nn.Parse(bench.name, nn.Shape{bench.cfg.Channels, bench.cfg.Size, bench.cfg.Size}, bench.topo)
		if err != nil {
			return nil, err
		}
		tr := train.New(net, 0.03, opt.Seed+7)
		for e := 0; e < epochs; e++ {
			tr.TrainEpoch(trainSet)
			tr.LR *= 0.5 // decay keeps per-sample SGD from diverging once converged
		}
		clean := tr.Accuracy(testSet)
		t.AddRow(bench.name, "clean", "-", pct(clean))
		for _, k := range cellKs {
			cell := base.Improved(k)
			for _, n := range wordlines {
				acc := NoisyAccuracy(net, testSet, cell, n, p, xrand.New(opt.Seed+uint64(n)))
				t.AddRow(bench.name, cellLabel(k), fmt.Sprintf("%d", n), pct(acc))
			}
		}
	}

	// Large-scale proxy (CaffeNet row of Fig. 5).
	for _, k := range cellKs {
		cell := base.Improved(k)
		for _, n := range wordlines {
			acc := largeNetProxy(cell, n, p)
			t.AddRow("CaffeNet(proxy)", cellLabel(k), fmt.Sprintf("%d", n), pct(acc))
		}
	}
	t.Notes = append(t.Notes,
		"accuracy collapses as more wordlines activate concurrently; better cells shift the cliff right but >16 wordlines still degrades the large net (paper Fig. 5)",
		"small benchmarks: really trained nets + Monte-Carlo read-error injection; CaffeNet: read-error-rate proxy (DESIGN.md §2)")
	return t, nil
}

func cellLabel(k float64) string {
	if k == 1 {
		return "(Rb, sb)"
	}
	return fmt.Sprintf("(%.0fRb, sb/%.0f)", k, k)
}

// NoisyAccuracy evaluates the test set with device read noise injected
// into every matrix layer's outputs — the Fig. 5 measurement; exported
// for cmd/sreaccuracy.
func NoisyAccuracy(net *nn.Network, set *dataset.Set, cell reram.Cell, n int,
	p quant.Params, rng *xrand.RNG) float64 {
	correct := 0
	for i, x := range set.X {
		y := noisyForward(net, x, cell, n, p, rng)
		best, bestV := 0, y.Data()[0]
		for j, v := range y.Data() {
			if v > bestV {
				best, bestV = j, v
			}
		}
		if best == set.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(set.X))
}

// noisyForward runs the network, adding to each conv/FC output the
// accumulated post-ADC read error of its ceil(R/n) row chunks.
func noisyForward(net *nn.Network, x *tensor.Tensor, cell reram.Cell, n int,
	p quant.Params, rng *xrand.RNG) *tensor.Tensor {
	cur := x
	for _, l := range net.Layers {
		switch v := l.(type) {
		case *nn.Conv:
			cur = perturb(v.Forward(cur, nil), layerNoise(v.WeightMatrix(), cur, cell, n, p), rng)
		case *nn.FC:
			cur = perturb(v.Forward(cur, nil), layerNoise(v.W, cur.Reshape(cur.Size()), cell, n, p), rng)
		default:
			cur = l.Forward(cur, nil)
		}
	}
	return cur
}

// nonIdealityFactor lumps the analog error sources the per-cell deviation
// model omits — IR drop along lines, sneak currents, ADC offset and
// comparator noise — into one linear calibration of the injected value
// noise, following DL-RSIM's observation that cell deviation alone
// underpredicts accuracy loss. It scales the final value-domain std, so
// the ADC-rounding nonlinearity (which creates the wordline cliff) is
// preserved.
const nonIdealityFactor = 12

// layerNoise returns the per-output noise standard deviation for a layer
// whose weight matrix is w (crossbar orientation) and whose input tensor
// is x: chunk noise std times √chunks.
func layerNoise(w, x *tensor.Tensor, cell reram.Cell, n int, p quant.Params) float64 {
	rows := w.Dim(0)
	aScale := quant.ScaleFor(float64(x.MaxAbs()), p.ABits)
	wScale := quant.ScaleFor(float64(w.MaxAbs()), p.WBits)
	cn := reram.ChunkNoise{
		Cell:           cell,
		SlicesPerInput: p.SlicesPerInput(),
		CellsPerWeight: p.CellsPerWeight(),
		DACBits:        p.DACBits,
		CellBits:       p.CellBits,
		MeanState:      meanNonZeroState(p),
		Density:        quant.InputDensity(x.Data(), p),
	}
	m := n
	if m > rows {
		m = rows
	}
	chunks := (rows + n - 1) / n
	return cn.Std(m, aScale, wScale) * math.Sqrt(float64(chunks)) * nonIdealityFactor
}

// meanNonZeroState is the average programmed state of a driven cell,
// taken as the midpoint of the non-zero states.
func meanNonZeroState(p quant.Params) float64 {
	max := float64(int(1)<<uint(p.CellBits) - 1)
	return (1 + max) / 2
}

func perturb(y *tensor.Tensor, std float64, rng *xrand.RNG) *tensor.Tensor {
	if std == 0 {
		return y
	}
	d := y.Data()
	for i := range d {
		d[i] += float32(rng.NormFloat64() * std)
	}
	return y
}

// largeNetProxy models the large-scale benchmark's accuracy without
// training it. An ImageNet-scale inference issues on the order of a
// billion OU reads, so even a tiny per-read mis-sense probability
// corrupts many partial sums; the fraction of surviving classifications
// decays exponentially in the expected number of decision-relevant read
// errors, acc ≈ clean·exp(−C·P_read). C lumps reads-per-inference times
// the chance that one mis-sensed read flips the 1000-way decision, and
// is calibrated so the baseline cell degrades sharply past 8–16
// wordlines while the 3× cell only shows losses beyond ~64 — the shapes
// of the paper's Fig. 5(c).
func largeNetProxy(cell reram.Cell, n int, p quant.Params) float64 {
	const (
		cleanAcc = 0.57 // CaffeNet-class top-1
		density  = 0.35
		c        = 1e5
	)
	_ = p
	m := int(math.Round(density * float64(n)))
	if m <= 0 {
		m = 1
	}
	pRead := cell.ReadErrorProb(m, 1.5)
	acc := cleanAcc * math.Exp(-c*pRead)
	if acc < cleanAcc*0.002 {
		acc = cleanAcc * 0.002 // chance-level floor (1/1000 classes)
	}
	return acc
}
