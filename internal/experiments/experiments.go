// Package experiments regenerates every table and figure of the paper's
// evaluation (§6–§7). Each experiment returns a typed Table that
// cmd/srebench prints, the benchmarks exercise, and EXPERIMENTS.md
// records.
//
// Experiment IDs: table1, table2, fig4, fig5, fig17, fig18, fig19,
// fig20, fig21, fig22, fig23, fig24, overhead.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"sre/internal/textplot"

	"sre/internal/core"
	"sre/internal/energy"
	"sre/internal/mapping"
	"sre/internal/metrics"
	"sre/internal/parallel"
	"sre/internal/quant"
	"sre/internal/snapshot"
	"sre/internal/workload"
)

// Options tune experiment scope.
type Options struct {
	Seed       uint64
	MaxWindows int  // per-layer window sampling cap (0 → default 48)
	Quick      bool // trim sweeps for fast CI/bench runs
	Workers    int  // simulation worker-pool width (0 = GOMAXPROCS)
	// NoCodeCache disables the per-layer window-code plane cache
	// (results are bit-identical either way; see core.Config).
	NoCodeCache bool
	// Metrics, when non-nil, collects run observability across every
	// simulation an experiment performs (see internal/metrics).
	Metrics *metrics.Registry
	// SnapshotDir, when non-empty, consults (and populates) a
	// built-network snapshot directory before building, so repeated
	// srebench invocations skip workload synthesis entirely.
	SnapshotDir string
}

// DefaultOptions runs every experiment at full scope.
func DefaultOptions() Options { return Options{Seed: 1, MaxWindows: 48} }

func (o Options) maxWindows() int {
	if o.MaxWindows <= 0 {
		return 48
	}
	return o.MaxWindows
}

// Table is a regenerated table/figure.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Charts optionally renders the figure's headline series as text
	// bar charts (printed after the table).
	Charts []textplot.Chart
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, c := range t.Charts {
		b.WriteByte('\n')
		b.WriteString(c.Render(48))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// runner is one experiment implementation.
type runner func(Options) (*Table, error)

var registry = map[string]runner{
	"table1":               Table1,
	"table2":               Table2,
	"fig4":                 Fig4,
	"fig5":                 Fig5,
	"fig17":                Fig17,
	"fig18":                Fig18,
	"fig19":                Fig19,
	"fig20":                Fig20,
	"fig21":                Fig21,
	"fig22":                Fig22,
	"fig23":                Fig23,
	"fig24":                Fig24,
	"pr10-wss":             WSSComposability,
	"overhead":             Overhead,
	"ablation-indexbits":   AblationIndexBits,
	"ablation-occ":         AblationOCC,
	"ablation-buffer":      AblationBuffer,
	"ablation-replication": AblationReplication,
}

// IDs lists experiment identifiers in presentation order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return orderKey(ids[i]) < orderKey(ids[j]) })
	return ids
}

func orderKey(id string) int {
	order := []string{"table1", "table2", "fig4", "fig5", "fig17", "fig18",
		"fig19", "fig20", "fig21", "fig22", "fig23", "fig24", "pr10-wss",
		"overhead",
		"ablation-indexbits", "ablation-occ", "ablation-buffer",
		"ablation-replication"}
	for i, v := range order {
		if v == id {
			return i
		}
	}
	return len(order)
}

// Run executes the named experiment.
func Run(id string, opt Options) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(opt)
}

// ---- shared machinery ----

// specsFor returns the evaluated networks, trimmed in quick mode.
func specsFor(opt Options) []workload.Spec {
	specs := workload.Specs()
	if opt.Quick {
		return specs[:2] // MNIST + CIFAR-10
	}
	return specs
}

// builtKey memoizes network builds within a process: experiments share
// identical builds (same prune mode, quantization, geometry, seed).
type builtKey struct {
	name     string
	mode     workload.PruneMode
	p        quant.Params
	g        mapping.Geometry
	seed     uint64
	sliceCap int
}

var (
	builtMu    sync.Mutex
	builtCache = map[builtKey]*workload.Built{}
)

// build returns a cached simulator-ready network, consulting the
// snapshot directory (when opt names one) before paying for a build.
func build(spec workload.Spec, mode workload.PruneMode, p quant.Params, g mapping.Geometry, opt Options) (*workload.Built, error) {
	key := builtKey{spec.Name, mode, p, g, opt.Seed, spec.SliceCap}
	builtMu.Lock()
	b, ok := builtCache[key]
	builtMu.Unlock()
	if ok {
		return b, nil
	}
	var err error
	if opt.SnapshotDir != "" {
		b, _, err = snapshot.LoadOrBuild(opt.SnapshotDir,
			snapshot.Key{Spec: spec, Prune: mode, Quant: p, Geom: g, Seed: opt.Seed},
			snapshot.WriteOptions{MaxWindows: opt.maxWindows(), IndexBits: spec.IndexBits})
	} else {
		b, err = spec.Build(mode, p, g, opt.Seed)
	}
	if err != nil {
		return nil, err
	}
	builtMu.Lock()
	// Keep the cache bounded: drop everything if it grows large (sweeps
	// over OU sizes/cell bits would otherwise pin many VGG-size builds).
	if len(builtCache) > 24 {
		builtCache = map[builtKey]*workload.Built{}
	}
	builtCache[key] = b
	builtMu.Unlock()
	return b, nil
}

// simulate runs one built network in one mode, sharding the simulation
// over opt's worker width.
func simulate(b *workload.Built, mode core.Mode, p quant.Params, g mapping.Geometry, indexBits int, opt Options) core.NetworkResult {
	return simulateOn(b, mode, p, g, indexBits, opt, nil)
}

// simulateOn is simulate drawing from a shared pool (nil = own pool).
func simulateOn(b *workload.Built, mode core.Mode, p quant.Params, g mapping.Geometry, indexBits int, opt Options, pool *parallel.Pool) core.NetworkResult {
	cfg := core.Config{
		Geometry:    g,
		Quant:       p,
		Mode:        mode,
		IndexBits:   indexBits,
		MaxWindows:  opt.maxWindows(),
		Workers:     opt.Workers,
		Pool:        pool,
		Energy:      energy.Default(),
		Metrics:     opt.Metrics,
		NoCodeCache: opt.NoCodeCache,
	}
	return core.SimulateNetwork(b.Layers, cfg)
}

// sslModes are the Fig. 17/18 comparison set, baseline first.
var sslModes = []core.Mode{
	core.ModeBaseline, core.ModeNaive, core.ModeReCom,
	core.ModeORC, core.ModeDOF, core.ModeORCDOF,
}

// modeResults runs a built network through the paper's six core modes, overlapping
// the modes on one shared worker pool.
func modeResults(b *workload.Built, spec workload.Spec, p quant.Params, g mapping.Geometry, opt Options) map[string]core.NetworkResult {
	pool := parallel.New(opt.Workers)
	res := make([]core.NetworkResult, len(sslModes))
	pool.For(context.Background(), len(sslModes), func(start, end int) {
		for i := start; i < end; i++ {
			res[i] = simulateOn(b, sslModes[i], p, g, spec.IndexBits, opt, pool)
		}
	})
	out := make(map[string]core.NetworkResult, len(sslModes))
	for i, m := range sslModes {
		out[m.String()] = res[i]
	}
	return out
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
