package experiments

import (
	"fmt"

	"sre/internal/compress"
	"sre/internal/energy"
	"sre/internal/mapping"
	"sre/internal/quant"
	"sre/internal/synth"
	"sre/internal/workload"
)

// Table1 prints the hardware configuration (paper Table 1).
func Table1(Options) (*Table, error) {
	t := &Table{ID: "table1", Title: "Hardware configuration",
		Header: []string{"component | spec | power"}}
	for _, row := range energy.Default().Table1() {
		t.AddRow(row)
	}
	return t, nil
}

// Table2 prints the evaluated networks with their target and measured
// sparsities (paper Table 2).
func Table2(opt Options) (*Table, error) {
	t := &Table{ID: "table2", Title: "NN topology of evaluated benchmarks",
		Header: []string{"Name", "Wt.sparsity(paper)", "Wt.sparsity(built)",
			"Act.sparsity(paper)", "MatrixLayers", "Weights", "Topology"}}
	p, g := quant.Default(), mapping.Default()
	for _, spec := range specsFor(opt) {
		b, err := build(spec, workload.SSL, p, g, opt)
		if err != nil {
			return nil, err
		}
		var total int64
		for _, s := range b.Stats {
			total += s.WeightTotal
		}
		t.AddRow(spec.Name,
			pct(spec.WeightSparsity), pct(b.WeightSparsityBuilt()), pct(spec.ActSparsity),
			fmt.Sprintf("%d", len(b.Layers)),
			fmt.Sprintf("%d", total),
			spec.Display)
	}
	t.Notes = append(t.Notes,
		"built sparsity is parameter-weighted over synthetic SSL-pruned weights (DESIGN.md §2)")
	return t, nil
}

// Fig4 measures VGG-16 weight and input density after bit decomposition
// as bits-per-cell and DAC resolution vary (paper Fig. 4).
func Fig4(opt Options) (*Table, error) {
	t := &Table{ID: "fig4", Title: "VGG-16 density after decomposition",
		Header: []string{"setting", "value", "non-zero fraction"}}
	spec, err := workload.SpecByName("VGG-16")
	if err != nil {
		return nil, err
	}
	if opt.Quick {
		spec, err = workload.SpecByName("CIFAR-10")
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, "quick mode: CIFAR-10 stands in for VGG-16")
	}
	g := mapping.Default()
	// Weight density vs bits per cell (Fig. 4a): fraction of non-zero
	// cells = IdealCells / TotalCells.
	for _, cb := range []int{1, 2, 4, 8} {
		p := quant.Params{WBits: 16, ABits: 16, CellBits: cb, DACBits: 1}
		b, err := build(spec, workload.SSL, p, g, opt)
		if err != nil {
			return nil, err
		}
		var ideal, total int64
		for _, l := range b.Layers {
			ideal += l.Struct.CompressedCells(compress.Ideal, 0)
			total += l.Struct.Layout.TotalCells()
		}
		t.AddRow("weight density", fmt.Sprintf("%d bits/cell", cb), f3(float64(ideal)/float64(total)))
	}
	// Input density vs DAC resolution (Fig. 4b) over sampled activations.
	for _, dac := range []int{1, 2, 4, 8} {
		p := quant.Params{WBits: 16, ABits: 16, CellBits: 2, DACBits: dac}
		b, err := build(spec, workload.SSL, quant.Default(), g, opt)
		if err != nil {
			return nil, err
		}
		var sum float64
		for _, l := range b.Layers {
			sum += workload.MeanSliceDensity(l.Acts, l.Struct.Layout.Rows, p, 4)
		}
		t.AddRow("input density", fmt.Sprintf("%d-bit DAC", dac), f3(sum/float64(len(b.Layers))))
	}
	t.Notes = append(t.Notes,
		"density falls as cells/slices get narrower — the bit-level sparsity SRE exploits")
	return t, nil
}

// Fig19 reports input-index storage for SRE across OU sizes (paper
// Fig. 19).
func Fig19(opt Options) (*Table, error) {
	t := &Table{ID: "fig19", Title: "Input-index storage overhead vs OU size",
		Header: []string{"network", "OU", "index storage (KB)", "fillers"}}
	p := quant.Default()
	sizes := []int{128, 64, 32, 16}
	if opt.Quick {
		sizes = []int{128, 16}
	}
	for _, spec := range specsFor(opt) {
		for _, ou := range sizes {
			g := mapping.Default().WithOU(ou)
			b, err := build(spec, workload.SSL, p, g, opt)
			if err != nil {
				return nil, err
			}
			var bits int64
			var fillers int
			for _, l := range b.Layers {
				bits += l.Struct.IndexStorageBits(compress.ORC, spec.IndexBits)
				lay := l.Struct.Layout
				for rb := 0; rb < lay.RowBlocks; rb++ {
					for cb := 0; cb < lay.ColBlocks; cb++ {
						for gi := 0; gi < lay.GroupsInTile(cb); gi++ {
							fillers += l.Struct.Plan(compress.ORC, rb, cb, gi, spec.IndexBits).Fillers
						}
					}
				}
			}
			t.AddRow(spec.Name, fmt.Sprintf("%dx%d", ou, ou),
				fmt.Sprintf("%.1f", float64(bits)/8/1024), fmt.Sprintf("%d", fillers))
		}
	}
	t.Notes = append(t.Notes,
		"storage rises only mildly as the OU shrinks (more groups, fewer rows each) — paper §7.2")
	return t, nil
}

// Fig20 reports the ORC weight compression ratio across OU sizes, with
// SNrram and the ideal bound (paper Fig. 20).
func Fig20(opt Options) (*Table, error) {
	t := &Table{ID: "fig20", Title: "Weight compression ratio vs OU size",
		Header: []string{"network", "OU", "ORC ratio", "SNrram", "ideal"}}
	p := quant.Default()
	sizes := []int{128, 64, 32, 16, 8, 4, 2}
	if opt.Quick {
		sizes = []int{128, 16, 2}
	}
	for _, spec := range specsFor(opt) {
		for si, ou := range sizes {
			g := mapping.Default().WithOU(ou)
			b, err := build(spec, workload.SSL, p, g, opt)
			if err != nil {
				return nil, err
			}
			var orcCells, idealCells, total int64
			for _, l := range b.Layers {
				orcCells += l.Struct.CompressedCells(compress.ORC, spec.IndexBits)
				idealCells += l.Struct.CompressedCells(compress.Ideal, 0)
				total += l.Struct.Layout.TotalCells()
			}
			snr := ""
			ideal := ""
			if si == 0 {
				// SNrram and ideal are OU-independent; print once per net.
				snr = f2(float64(total) / float64(maxI64(b.SNrramCells(), 1)))
				ideal = f2(float64(total) / float64(maxI64(idealCells, 1)))
			}
			t.AddRow(spec.Name, fmt.Sprintf("%dx%d", ou, ou),
				f2(float64(total)/float64(maxI64(orcCells, 1))), snr, ideal)
		}
	}
	t.Notes = append(t.Notes,
		"ORC ratio grows as OU shrinks and approaches the ideal bound at 2x2 (paper Fig. 20)")
	return t, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Overhead reports the synthesized Index Decoder and WLVG area/power and
// the delta-vs-absolute index storage comparison (paper §7.2).
func Overhead(opt Options) (*Table, error) {
	t := &Table{ID: "overhead", Title: "Indexing overhead (paper §7.2)",
		Header: []string{"item", "value"}}
	dec, wlvg := synth.PaperIndexDecoder(), synth.PaperWLVG()
	t.AddRow("Index Decoder power", fmt.Sprintf("%.2f mW", dec.Power()))
	t.AddRow("Index Decoder area", fmt.Sprintf("%.4f mm^2", dec.Area()))
	t.AddRow("WLVG power", fmt.Sprintf("%.2f mW", wlvg.Power()))
	t.AddRow("WLVG area", fmt.Sprintf("%.4f mm^2", wlvg.Area()))

	name := "ResNet-50"
	if opt.Quick {
		name = "CIFAR-10"
	}
	spec, err := workload.SpecByName(name)
	if err != nil {
		return nil, err
	}
	b, err := build(spec, workload.SSL, quant.Default(), mapping.Default(), opt)
	if err != nil {
		return nil, err
	}
	var delta, abs int64
	for _, l := range b.Layers {
		delta += l.Struct.IndexStorageBits(compress.ORC, spec.IndexBits)
		abs += l.Struct.AbsoluteIndexBits()
	}
	t.AddRow(name+" delta-encoded index storage", fmt.Sprintf("%.1f KB", float64(delta)/8/1024))
	t.AddRow(name+" absolute index storage", fmt.Sprintf("%.1f KB", float64(abs)/8/1024))
	t.Notes = append(t.Notes,
		"paper: decoder 1.24 mW / 0.001 mm^2; WLVG 0.86 mW / 0.001 mm^2; ResNet-50 ~778 KB delta vs ~4 MB absolute")
	return t, nil
}
