package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// quick returns fast options for CI-grade runs.
func quick() Options { return Options{Seed: 1, MaxWindows: 12, Quick: true} }

func TestIDsOrderedAndComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 18 {
		t.Fatalf("have %d experiments, want 18", len(ids))
	}
	if ids[0] != "table1" || ids[len(ids)-1] != "ablation-replication" {
		t.Fatalf("ordering wrong: %v", ids)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", quick()); err == nil {
		t.Fatal("accepted unknown experiment")
	}
}

// TestEveryExperimentRunsQuick executes all experiments in quick mode and
// checks basic table integrity. This is the end-to-end smoke for the
// whole reproduction pipeline.
func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still takes seconds")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			table, err := Run(id, quick())
			if err != nil {
				t.Fatal(err)
			}
			if table.ID != id {
				t.Fatalf("table ID %q", table.ID)
			}
			if len(table.Rows) == 0 {
				t.Fatal("no rows produced")
			}
			out := table.Format()
			if !strings.Contains(out, id) {
				t.Fatal("Format misses the experiment ID")
			}
		})
	}
}

// cell parses a table cell as float, stripping trailing % and x.
func cellFloat(t *testing.T, s string) float64 {
	s = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSpace(s), "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

// TestFig17Shape checks the headline result's shape on the quick set:
// every mode speeds up (≥ ~1), DOF > ORC-family on the small nets, and
// ORC+DOF dominates.
func TestFig17Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	table, err := Run("fig17", quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		naive := cellFloat(t, row[1])
		recom := cellFloat(t, row[2])
		orc := cellFloat(t, row[3])
		dof := cellFloat(t, row[4])
		both := cellFloat(t, row[5])
		if naive < 0.99 || recom < 0.99 || orc < 0.99 {
			t.Fatalf("%s: a compression mode slowed things down: %v", row[0], row)
		}
		if !(both >= dof && both >= orc) {
			t.Fatalf("%s: orc+dof must dominate: %v", row[0], row)
		}
		if dof < 2 {
			t.Fatalf("%s: DOF speedup %v implausibly low", row[0], dof)
		}
	}
}

// TestFig18Shape: every sparsity mode's ORC+DOF energy is below baseline
// and eDRAM share grows for ORC-based modes.
func TestFig18Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	table, err := Run("fig18", quick())
	if err != nil {
		t.Fatal(err)
	}
	byNet := map[string]map[string][]float64{}
	for _, row := range table.Rows {
		net, mode := row[0], row[1]
		if byNet[net] == nil {
			byNet[net] = map[string][]float64{}
		}
		byNet[net][mode] = []float64{cellFloat(t, row[2]), cellFloat(t, row[3])}
	}
	for net, modes := range byNet {
		if modes["orc+dof"][0] >= 1 {
			t.Fatalf("%s: orc+dof energy not below baseline", net)
		}
		if modes["orc+dof"][1] <= modes["dof"][1] {
			t.Fatalf("%s: orc+dof must spend more eDRAM than dof", net)
		}
	}
}

// TestFig20Shape: compression ratio must not decrease as the OU shrinks,
// and must never exceed the ideal bound.
func TestFig20Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	table, err := Run("fig20", quick())
	if err != nil {
		t.Fatal(err)
	}
	prev := map[string]float64{}
	ideal := map[string]float64{}
	for _, row := range table.Rows {
		net := row[0]
		ratio := cellFloat(t, row[1+1])
		if row[4] != "" {
			ideal[net] = cellFloat(t, row[4])
		}
		if p, ok := prev[net]; ok && ratio < p-1e-9 {
			t.Fatalf("%s: ratio decreased with smaller OU", net)
		}
		prev[net] = ratio
		if ratio > ideal[net]+1e-9 {
			t.Fatalf("%s: ORC ratio %v above ideal %v", net, ratio, ideal[net])
		}
	}
}

// TestFig5Shape: accuracy must be monotonically non-increasing in the
// wordline count (within MC tolerance) and better cells must never be
// significantly worse.
func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	table, err := Run("fig5", quick())
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ bench, cell string }
	acc := map[key]map[int]float64{}
	for _, row := range table.Rows {
		if row[1] == "clean" {
			if cellFloat(t, row[3]) < 70 {
				t.Fatalf("%s failed to train: clean acc %s", row[0], row[3])
			}
			continue
		}
		k := key{row[0], row[1]}
		if acc[k] == nil {
			acc[k] = map[int]float64{}
		}
		n, _ := strconv.Atoi(row[2])
		acc[k][n] = cellFloat(t, row[3])
	}
	for k, m := range acc {
		if m[128] > m[8]+6 { // 6pp Monte-Carlo tolerance
			t.Fatalf("%v: accuracy rose with more wordlines: %v", k, m)
		}
	}
	// The proxy's baseline cell must collapse at 128 wordlines.
	if acc[key{"CaffeNet(proxy)", "(Rb, sb)"}][128] > 10 {
		t.Fatal("large-net proxy did not collapse at full-crossbar activation")
	}
}

func TestTableFormatAlignment(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	tb.AddRow("yyyy", "z")
	out := tb.Format()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("formatted lines: %v", lines)
	}
	if !strings.HasPrefix(lines[1], "a    ") {
		t.Fatalf("header not padded: %q", lines[1])
	}
}

// TestExperimentDeterminism: the same options must reproduce identical
// tables (the whole pipeline is seeded).
func TestExperimentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	for _, id := range []string{"fig17", "fig20"} {
		a, err := Run(id, quick())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(id, quick())
		if err != nil {
			t.Fatal(err)
		}
		if a.Format() != b.Format() {
			t.Fatalf("%s differs across identical runs", id)
		}
	}
}

// TestGoldenConstantTables snapshots the experiments that derive purely
// from the paper's published constants (no simulation), guarding against
// accidental drift in the hardware model. Regenerate with
//
//	go test ./internal/experiments -run TestGoldenConstantTables -update
var update = flag.Bool("update", false, "rewrite golden files")

func TestGoldenConstantTables(t *testing.T) {
	for _, id := range []string{"table1", "overhead"} {
		table, err := Run(id, Options{Seed: 1, MaxWindows: 12, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		got := table.Format()
		path := filepath.Join("testdata", id+".golden")
		if *update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden (run with -update): %v", err)
		}
		if got != string(want) {
			t.Fatalf("%s drifted from golden.\n-- got --\n%s\n-- want --\n%s", id, got, want)
		}
	}
}
