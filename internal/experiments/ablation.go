package experiments

import (
	"fmt"

	"sre/internal/buffer"
	"sre/internal/chip"
	"sre/internal/compress"
	"sre/internal/core"
	"sre/internal/energy"
	"sre/internal/mapping"
	"sre/internal/quant"
	"sre/internal/workload"
)

// AblationIndexBits studies the §6 design choice the paper describes but
// does not plot: the input-index width trades zero-padding loss in the
// ORC compression ratio against index storage. The paper's rule — the
// minimum width losing <10% of the unpadded ratio — selects 5 bits for
// the four smaller-index networks and 3 bits for GoogLeNet/ResNet-50.
func AblationIndexBits(opt Options) (*Table, error) {
	t := &Table{ID: "ablation-indexbits",
		Title:  "Index width vs ORC compression ratio and storage (§6 policy)",
		Header: []string{"network", "bits", "ORC ratio", "ratio kept", "storage (KB)", "chosen"}}
	p, g := quant.Default(), mapping.Default()
	widths := []int{1, 2, 3, 4, 5, 6, 7}
	if opt.Quick {
		widths = []int{2, 5}
	}
	for _, spec := range specsFor(opt) {
		b, err := build(spec, workload.SSL, p, g, opt)
		if err != nil {
			return nil, err
		}
		ratioAt := func(bits int) (ratio float64, storage int64) {
			var cells, total, bitsSum int64
			for _, l := range b.Layers {
				cells += l.Struct.CompressedCells(compress.ORC, bits)
				total += l.Struct.Layout.TotalCells()
				bitsSum += l.Struct.IndexStorageBits(compress.ORC, bits)
			}
			return float64(total) / float64(maxI64(cells, 1)), bitsSum
		}
		unpadded, _ := ratioAt(0)
		// Re-derive the paper's choice with the 10% rule over the whole
		// network.
		chosen := 0
		for bits := 1; bits <= 7; bits++ {
			if rr, _ := ratioAt(bits); rr >= unpadded*0.9 {
				chosen = bits
				break
			}
		}
		for _, bits := range widths {
			rr, storage := ratioAt(bits)
			mark := ""
			if bits == chosen {
				mark = "<- 10% rule"
			}
			t.AddRow(spec.Name, fmt.Sprintf("%d", bits), f2(rr),
				pct(rr/unpadded), fmt.Sprintf("%.1f", float64(storage)/8/1024), mark)
		}
	}
	t.Notes = append(t.Notes,
		"paper §6 chooses 5,5,5,5,3,3 bits; narrow codes pad more (ratio falls), wide codes store more bits per index")
	return t, nil
}

// AblationOCC compares the paper's chosen row compression (ORC) against
// the §4.1 alternative it rejects, OU-column compression: compression
// ratio, index-storage species (input vs output indexes), cycles, and —
// the deciding argument — that OCC cannot compose with DOF (Fig. 10)
// while ORC+DOF multiplies the gains.
func AblationOCC(opt Options) (*Table, error) {
	t := &Table{ID: "ablation-occ",
		Title: "ORC (rows) vs OCC (columns): why SRE compresses rows",
		Header: []string{"network", "orc ratio", "occ ratio",
			"orc speedup", "occ speedup", "orc+dof speedup",
			"input idx (KB)", "output idx (KB)"}}
	p, g := quant.Default(), mapping.Default()
	for _, spec := range specsFor(opt) {
		b, err := build(spec, workload.SSL, p, g, opt)
		if err != nil {
			return nil, err
		}
		occs, err := spec.BuildOCCStructures(workload.SSL, p, g, opt.Seed)
		if err != nil {
			return nil, err
		}
		layers := make([]core.Layer, len(b.Layers))
		copy(layers, b.Layers)
		var orcCells, occCells, total, inBits, outBits int64
		for i := range layers {
			layers[i].OCC = occs[i]
			orcCells += layers[i].Struct.CompressedCells(compress.ORC, spec.IndexBits)
			occCells += occs[i].CompressedCells()
			total += layers[i].Struct.Layout.TotalCells()
			inBits += layers[i].Struct.IndexStorageBits(compress.ORC, spec.IndexBits)
			outBits += occs[i].OutputIndexBits()
		}
		sim := func(m core.Mode) core.NetworkResult {
			return core.SimulateNetwork(layers, core.Config{
				Geometry: g, Quant: p, Mode: m, IndexBits: spec.IndexBits,
				MaxWindows: opt.maxWindows(), Workers: opt.Workers,
				NoCodeCache: opt.NoCodeCache,
				Energy:      energy.Default(),
			})
		}
		base := sim(core.ModeBaseline)
		orc := sim(core.ModeORC)
		occ := sim(core.ModeOCC)
		both := sim(core.ModeORCDOF)
		bc := float64(base.Cycles)
		t.AddRow(spec.Name,
			f2(float64(total)/float64(maxI64(orcCells, 1))),
			f2(float64(total)/float64(maxI64(occCells, 1))),
			f2(bc/float64(orc.Cycles)),
			f2(bc/float64(occ.Cycles)),
			f2(bc/float64(both.Cycles)),
			fmt.Sprintf("%.1f", float64(inBits)/8/1024),
			fmt.Sprintf("%.1f", float64(outBits)/8/1024))
	}
	t.Notes = append(t.Notes,
		"SSL's zero structure is row-shaped, so OCC finds little to remove here; even where it could, it needs per-column output indexing and cannot combine with DOF (Fig. 10) — the orc+dof column is unreachable for it")
	return t, nil
}

// AblationBuffer validates the §5.3 buffer design claim: the 8-bank,
// 512-bit eDRAM buffer fetches a full input batch within one pipeline
// cycle, so SRE's pipeline never waits on it; undersized buffers do
// stall, especially in ORC mode where every column group fetches its own
// batch.
func AblationBuffer(opt Options) (*Table, error) {
	t := &Table{ID: "ablation-buffer",
		Title:  "eDRAM buffer sizing vs pipeline latency (§5.3 claim)",
		Header: []string{"network", "buffer", "mode", "cycles", "slowdown"}}
	p, g := quant.Default(), mapping.Default()
	name := "CIFAR-10"
	spec, err := workload.SpecByName(name)
	if err != nil {
		return nil, err
	}
	b, err := build(spec, workload.SSL, p, g, opt)
	if err != nil {
		return nil, err
	}
	buffers := []struct {
		label string
		cfg   buffer.Config
	}{
		{"ideal (assumed)", buffer.Config{}},
		{"paper: 8 banks x 512b", buffer.Default()},
		{"2 banks x 512b", buffer.Config{CapacityBytes: 64 << 10, Banks: 2, BusBits: 512, Clock: 1.2e9}},
		{"1 bank x 64b", buffer.Config{CapacityBytes: 64 << 10, Banks: 1, BusBits: 64, Clock: 1.2e9}},
	}
	for _, mode := range []core.Mode{core.ModeORCDOF, core.ModeDOF} {
		var baseCycles int64
		for i, bc := range buffers {
			cfg := core.Config{Geometry: g, Quant: p, Mode: mode,
				IndexBits: spec.IndexBits, MaxWindows: opt.maxWindows(),
				Workers: opt.Workers, NoCodeCache: opt.NoCodeCache,
				Energy: energy.Default(), Buffer: bc.cfg}
			res := core.SimulateNetwork(b.Layers, cfg)
			if i == 0 {
				baseCycles = res.Cycles
			}
			t.AddRow(name, bc.label, mode.String(),
				fmt.Sprintf("%d", res.Cycles),
				f2(float64(res.Cycles)/float64(baseCycles)))
		}
	}
	t.Notes = append(t.Notes,
		"the paper's buffer matches the ideal one-cycle-fetch assumption; starving the buffer stalls compressed modes hardest (they have the least compute to hide fetches behind)")
	return t, nil
}

// AblationReplication re-weighs the Fig. 17 headline under ISAAC-style
// throughput-balanced weight replication. The paper's infrastructure is
// ISAAC-based and replicates window-heavy early layers across the chip's
// spare arrays; our default model is deliberately unreplicated (one copy
// per layer), which lets the unprunable stem convolution dominate
// end-to-end latency. The replication plan is computed once from the
// *baseline* per-layer latencies — the mapping is fixed before any
// sparsity mode runs — and applied identically to every mode.
func AblationReplication(opt Options) (*Table, error) {
	t := &Table{ID: "ablation-replication",
		Title: "ORC+DOF speedup without vs with ISAAC-style replication",
		Header: []string{"network", "arrays", "chips", "orc+dof (1 copy/layer)",
			"orc+dof (replicated)", "throughput gain"}}
	p, g := quant.Default(), mapping.Default()
	ch := chip.Default()
	for _, spec := range specsFor(opt) {
		b, err := build(spec, workload.SSL, p, g, opt)
		if err != nil {
			return nil, err
		}
		base := simulate(b, core.ModeBaseline, p, g, spec.IndexBits, opt)
		sre := simulate(b, core.ModeORCDOF, p, g, spec.IndexBits, opt)

		demands := make([]chip.LayerDemand, len(b.Layers))
		for i, l := range b.Layers {
			demands[i] = chip.LayerDemand{
				Name:    l.Name,
				Arrays:  l.Struct.Layout.TotalArrays(),
				Latency: base.Layers[i].Time,
			}
		}
		baseArrays := chip.BaseArrays(demands)
		chips := ch.ChipsFor(baseArrays)
		plan := chip.Balance(demands, chips*ch.Arrays())

		repl := func(res core.NetworkResult) float64 {
			total := 0.0
			for i, lr := range res.Layers {
				total += lr.Time / float64(plan.Copies[i])
			}
			return total
		}
		plain := float64(base.Cycles) / float64(sre.Cycles)
		replicated := repl(base) / repl(sre)
		thr := plan.Throughput(demands) * plan.Latency(demands) // ≥1: balance quality
		t.AddRow(spec.Name,
			fmt.Sprintf("%d", baseArrays),
			fmt.Sprintf("%d", chips),
			f2(plain), f2(replicated), f2(thr))
	}
	t.Notes = append(t.Notes,
		"finding: with balanced mapping the end-to-end speedup becomes (roughly) the harmonic mean of per-layer speedups, and it moves only mildly — the headline is mapping-insensitive in this reproduction; the residual gap to the paper's 42.3x VGG-16 number is per-layer (ceil floors on OU counts), not layer weighting",
		"throughput gain = balanced latency x pipelined rate (layers per inference overlap)")
	return t, nil
}
