package crossbar

import (
	"testing"

	"sre/internal/metrics"
	"sre/internal/quant"
	"sre/internal/reram"
	"sre/internal/tensor"
	"sre/internal/xrand"
)

// randomMatrix builds a quantized magnitude matrix with the given zero
// probability, returning it alongside random input codes.
func randomMatrix(r *xrand.RNG, rows, cols int, p quant.Params, zeroProb float64) (*quant.Matrix, []uint32) {
	w := tensor.New(rows, cols)
	for i := range w.Data() {
		if !r.Bernoulli(zeroProb) {
			w.Data()[i] = float32(1+r.Intn(1<<uint(p.WBits)-1)) / float32(uint(1)<<uint(p.WBits)-1)
		}
	}
	m := quant.QuantizeMatrix(w, p)
	inputs := make([]uint32, rows)
	for i := range inputs {
		if !r.Bernoulli(0.4) {
			inputs[i] = uint32(r.Intn(1 << uint(p.ABits)))
		}
	}
	return m, inputs
}

// program maps a full cell matrix onto one array sized to fit it.
func program(m *quant.Matrix) *Array {
	cm := m.Decompose()
	a := New(cm.Rows, cm.PhysCols)
	a.ProgramWindow(cm, 0, 0)
	return a
}

// TestFigure7OUComposition reproduces the Fig. 7 mechanism with the
// paper's numbers: OU1 (rows 0–1) reads [1,0] under inputs [1,0]; OU2
// (rows 2–3) reads [3,4] under inputs [1,1]; the shared bitlines add to
// [4,4] — the value the whole column would have produced at once.
func TestFigure7OUComposition(t *testing.T) {
	a := New(4, 2)
	// Rows 0-1 chosen so inputs [1,0] give [1,0]; rows 2-3 so [1,1] give [3,4].
	a.Set(0, 0, 1)
	a.Set(0, 1, 0)
	a.Set(1, 0, 3) // masked by zero input
	a.Set(1, 1, 2)
	a.Set(2, 0, 1)
	a.Set(2, 1, 3)
	a.Set(3, 0, 2)
	a.Set(3, 1, 1)
	drive := func(row int) uint16 { return []uint16{1, 0, 1, 1}[row] }
	ou1 := a.ReadOU([]int{0, 1}, drive, 0, 2)
	ou2 := a.ReadOU([]int{2, 3}, drive, 0, 2)
	if ou1[0] != 1 || ou1[1] != 0 {
		t.Fatalf("OU1 = %v, want [1 0]", ou1)
	}
	if ou2[0] != 3 || ou2[1] != 4 {
		t.Fatalf("OU2 = %v, want [3 4]", ou2)
	}
	full := a.ReadOU([]int{0, 1, 2, 3}, drive, 0, 2)
	if full[0] != ou1[0]+ou2[0] || full[1] != ou1[1]+ou2[1] {
		t.Fatalf("OU partial sums %v+%v do not compose to %v", ou1, ou2, full)
	}
}

// TestExecuteMatchesReference is the core functional property: OU-based
// execution with any OU size equals the plain integer product.
func TestExecuteMatchesReference(t *testing.T) {
	r := xrand.New(1)
	params := []quant.Params{
		{WBits: 4, ABits: 2, CellBits: 2, DACBits: 1},
		{WBits: 16, ABits: 16, CellBits: 2, DACBits: 1},
		{WBits: 8, ABits: 8, CellBits: 4, DACBits: 2},
	}
	for _, p := range params {
		for trial := 0; trial < 6; trial++ {
			rows := 2 + r.Intn(20)
			cols := 1 + r.Intn(6)
			m, inputs := randomMatrix(r, rows, cols, p, 0.4)
			a := program(m)
			for _, sWL := range []int{1, 2, 4, 16} {
				for _, sBL := range []int{2, 4, a.Cols} {
					sched := DenseSchedule(a.Rows, a.Cols, sBL)
					res := Execute(a, inputs, p, sWL, sched, false)
					got := ComposeLogical(res.Phys, p)
					want := ReferenceProduct(m, inputs)
					for c := range want {
						if got[c] != want[c] {
							t.Fatalf("p=%+v sWL=%d sBL=%d col %d: got %d want %d",
								p, sWL, sBL, c, got[c], want[c])
						}
					}
				}
			}
		}
	}
}

// TestDOFPreservesResultsAndSavesCycles: Dynamic OU Formation must never
// change the computed values and must never cost more cycles.
func TestDOFPreservesResultsAndSavesCycles(t *testing.T) {
	r := xrand.New(2)
	p := quant.Params{WBits: 8, ABits: 8, CellBits: 2, DACBits: 1}
	for trial := 0; trial < 10; trial++ {
		rows := 4 + r.Intn(30)
		cols := 1 + r.Intn(4)
		m, inputs := randomMatrix(r, rows, cols, p, 0.5)
		a := program(m)
		sched := DenseSchedule(a.Rows, a.Cols, 4)
		dense := Execute(a, inputs, p, 4, sched, false)
		dof := Execute(a, inputs, p, 4, sched, true)
		for c := range dense.Phys {
			if dense.Phys[c] != dof.Phys[c] {
				t.Fatalf("DOF changed result at col %d", c)
			}
		}
		if dof.Cycles > dense.Cycles {
			t.Fatalf("DOF used more cycles (%d > %d)", dof.Cycles, dense.Cycles)
		}
	}
}

func TestDOFSkipsAllZeroSlices(t *testing.T) {
	p := quant.Params{WBits: 4, ABits: 4, CellBits: 2, DACBits: 1}
	m, _ := randomMatrix(xrand.New(3), 8, 2, p, 0)
	a := program(m)
	inputs := make([]uint32, 8) // all zero
	sched := DenseSchedule(a.Rows, a.Cols, 4)
	res := Execute(a, inputs, p, 4, sched, true)
	if res.Cycles != 0 {
		t.Fatalf("all-zero input consumed %d cycles under DOF", res.Cycles)
	}
	dense := Execute(a, inputs, p, 4, sched, false)
	// Dense mode pays full cost even for zero input: 4 slices × 1 group
	// (4 phys cols / sBL 4) × 2 OUs (8 rows / sWL 4).
	if dense.Cycles != 4*1*2 {
		t.Fatalf("dense cycles = %d, want 8", dense.Cycles)
	}
}

// TestORCScheduleCorrect: removing all-zero rows per column group (OU-row
// compression) must preserve results exactly, because a zero cell row
// contributes nothing to its group's bitlines.
func TestORCScheduleCorrect(t *testing.T) {
	r := xrand.New(4)
	p := quant.Params{WBits: 8, ABits: 8, CellBits: 2, DACBits: 1}
	for trial := 0; trial < 10; trial++ {
		rows := 6 + r.Intn(24)
		cols := 1 + r.Intn(4)
		m, inputs := randomMatrix(r, rows, cols, p, 0.7)
		a := program(m)
		sBL := 4
		// Build the ORC schedule: per group keep rows with any non-zero cell.
		var sched Schedule
		for lo := 0; lo < a.Cols; lo += sBL {
			hi := lo + sBL
			if hi > a.Cols {
				hi = a.Cols
			}
			g := ColGroup{ColLo: lo, ColHi: hi}
			for row := 0; row < a.Rows; row++ {
				zero := true
				for c := lo; c < hi; c++ {
					if a.At(row, c) != 0 {
						zero = false
						break
					}
				}
				if !zero {
					g.Rows = append(g.Rows, row)
				}
			}
			sched.Groups = append(sched.Groups, g)
		}
		res := Execute(a, inputs, p, 4, sched, false)
		got := ComposeLogical(res.Phys, p)
		want := ReferenceProduct(m, inputs)
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("ORC broke col %d: got %d want %d", c, got[c], want[c])
			}
		}
		denseRes := Execute(a, inputs, p, 4, DenseSchedule(a.Rows, a.Cols, sBL), false)
		if res.Cycles > denseRes.Cycles {
			t.Fatal("ORC used more cycles than dense")
		}
	}
}

// TestFigure10ColumnCompressionPlusDOFIsWrong demonstrates the paper's
// Fig. 10 hazard. Emulate OU-column compression by packing two different
// logical outputs onto the same bitline in different row blocks (block A:
// rows 0–1 carry output X; block B: rows 2–3 carry output Y). DOF then
// gathers rows from both blocks into one virtual OU and the bitline
// accumulates X- and Y-currents together — the sum matches neither
// output.
func TestFigure10ColumnCompressionPlusDOFIsWrong(t *testing.T) {
	a := New(4, 1)
	a.Set(0, 0, 2) // output X weight
	a.Set(1, 0, 1) // output X weight
	a.Set(2, 0, 3) // output Y weight (column-compressed into the same bitline)
	a.Set(3, 0, 1) // output Y weight
	inputs := []uint32{1, 0, 1, 0}
	p := quant.Params{WBits: 4, ABits: 1, CellBits: 4, DACBits: 1}
	sched := Schedule{Groups: []ColGroup{{ColLo: 0, ColHi: 1, Rows: []int{0, 1, 2, 3}}}}
	res := Execute(a, inputs, p, 2, sched, true)
	wantX := uint64(2) // inputs[0]·2
	wantY := uint64(3) // inputs[2]·3
	if res.Phys[0] == wantX || res.Phys[0] == wantY {
		t.Fatalf("expected a corrupted sum, got a correct output %d", res.Phys[0])
	}
	if res.Phys[0] != wantX+wantY {
		t.Fatalf("accumulated %d, expected the conflated X+Y = %d", res.Phys[0], wantX+wantY)
	}
}

func TestReadOUNoisyMatchesIdealWithZeroSigma(t *testing.T) {
	r := xrand.New(5)
	p := quant.Params{WBits: 4, ABits: 1, CellBits: 2, DACBits: 1}
	m, _ := randomMatrix(r, 8, 2, p, 0.3)
	a := program(m)
	drive := func(row int) uint16 { return uint16(row % 2) }
	cell := reram.Cell{Bits: 2, RRatio: 20, Sigma: 0}
	rows := []int{0, 1, 2, 3, 4, 5, 6, 7}
	ideal := a.ReadOU(rows, drive, 0, a.Cols)
	noisy := a.ReadOUNoisy(rows, drive, 0, a.Cols, cell, r)
	for i := range ideal {
		if ideal[i] != noisy[i] {
			t.Fatalf("zero-sigma noisy read differs at col %d", i)
		}
	}
}

// TestReadOUNoisyZeroSigmaRandomSchedules sweeps random active-row
// sets, 0/1 drive patterns, and bitline ranges: with σ = 0 the device
// channel is exact, so every noisy read must equal the ideal read. It
// also pins the arrays' read accounting and its metrics publication.
func TestReadOUNoisyZeroSigmaRandomSchedules(t *testing.T) {
	r := xrand.New(33)
	cell := reram.Cell{Bits: 2, RRatio: 20, Sigma: 0}
	a := New(64, 24)
	for row := 0; row < a.Rows; row++ {
		for c := 0; c < a.Cols; c++ {
			a.Set(row, c, uint16(r.Intn(4)))
		}
	}
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		active := r.SampleK(1+r.Intn(16), a.Rows)
		drives := make([]uint16, a.Rows)
		for _, row := range active {
			drives[row] = uint16(r.Intn(2))
		}
		drive := func(row int) uint16 { return drives[row] }
		colLo := r.Intn(a.Cols - 1)
		colHi := colLo + 1 + r.Intn(a.Cols-colLo-1)
		ideal := a.ReadOU(active, drive, colLo, colHi)
		noisy := a.ReadOUNoisy(active, drive, colLo, colHi, cell, r)
		for i := range ideal {
			if ideal[i] != noisy[i] {
				t.Fatalf("trial %d: zero-sigma noisy read differs at col %d: %d != %d",
					trial, colLo+i, noisy[i], ideal[i])
			}
		}
	}
	if ideal, noisy := a.ReadCounts(); ideal != trials || noisy != trials {
		t.Fatalf("ReadCounts = (%d, %d), want (%d, %d)", ideal, noisy, trials, trials)
	}
	reg := metrics.NewRegistry()
	a.PublishMetrics(reg.Shard())
	snap := reg.Snapshot()
	if got := snap.Counters[`sre_crossbar_reads_total{kind="ideal"}`]; got != trials {
		t.Fatalf("published ideal reads = %d, want %d", got, trials)
	}
	if got := snap.Counters[`sre_crossbar_reads_total{kind="noisy"}`]; got != trials {
		t.Fatalf("published noisy reads = %d, want %d", got, trials)
	}
}

func TestDenseCycleFormula(t *testing.T) {
	p := quant.Params{WBits: 4, ABits: 8, CellBits: 2, DACBits: 2}
	m, inputs := randomMatrix(xrand.New(6), 10, 3, p, 0.2)
	a := program(m) // 10 rows × 6 phys cols
	sched := DenseSchedule(a.Rows, a.Cols, 4)
	res := Execute(a, inputs, p, 4, sched, false)
	// slices = 4; groups = ceil(6/4) = 2; OUs per group = ceil(10/4) = 3.
	if want := 4 * 2 * 3; res.Cycles != want {
		t.Fatalf("cycles = %d, want %d", res.Cycles, want)
	}
}

func TestProgramWindowClipsOutOfRange(t *testing.T) {
	p := quant.Params{WBits: 4, ABits: 4, CellBits: 2, DACBits: 1}
	m, _ := randomMatrix(xrand.New(7), 4, 2, p, 0)
	cm := m.Decompose()
	a := New(8, 8) // larger than the 4×4 cell matrix
	a.ProgramWindow(cm, 2, 2)
	// Source (2+r, 2+c) beyond cm bounds must be zero.
	if a.At(7, 7) != 0 {
		t.Fatal("out-of-range programming not zero-filled")
	}
	if a.At(0, 0) != cm.Cell(2, 2) {
		t.Fatal("window offset applied wrongly")
	}
}
