// Package crossbar is the functional model of an OU-based ReRAM crossbar
// array (paper §3, Figs. 6–10).
//
// It executes matrix–vector products the way the hardware does — cells
// programmed from a decomposed weight matrix, inputs fed as bit slices,
// an explicit wordline-activation vector per cycle, at most S_WL×S_BL
// cells active per cycle, partial sums accumulated per bitline and
// assembled by shift-and-add — and it reports the cycles consumed. Two
// properties hang off this package:
//
//  1. Correctness: for any compression schedule that preserves the
//     bitline→output mapping (ORC, with or without DOF), Execute's result
//     equals the plain integer matrix–vector product. The tests also
//     reproduce the paper's Fig. 10 failure: DOF over a column-compressed
//     layout accumulates currents belonging to different outputs.
//  2. Cycle truth: the analytic cycle model in internal/core is checked
//     against Execute's counted cycles on random instances.
package crossbar

import (
	"fmt"
	"sync/atomic"

	"sre/internal/metrics"
	"sre/internal/quant"
	"sre/internal/reram"
	"sre/internal/xrand"
)

// Array is a single physical crossbar of Rows×Cols cells. It counts its
// OU reads — ideal (ReadOU) vs noisy (ReadOUNoisy) — so accuracy
// studies can report how much traffic went through the device channel.
type Array struct {
	Rows, Cols int
	cells      []uint16

	idealReads atomic.Int64
	noisyReads atomic.Int64
}

// New returns a zeroed array.
func New(rows, cols int) *Array {
	if rows <= 0 || cols <= 0 {
		panic("crossbar: non-positive dimensions")
	}
	return &Array{Rows: rows, Cols: cols, cells: make([]uint16, rows*cols)}
}

// Set programs cell (r, c) to state v.
func (a *Array) Set(r, c int, v uint16) { a.cells[a.idx(r, c)] = v }

// At returns the state of cell (r, c).
func (a *Array) At(r, c int) uint16 { return a.cells[a.idx(r, c)] }

func (a *Array) idx(r, c int) int {
	if r < 0 || r >= a.Rows || c < 0 || c >= a.Cols {
		panic(fmt.Sprintf("crossbar: cell (%d,%d) outside %dx%d", r, c, a.Rows, a.Cols))
	}
	return r*a.Cols + c
}

// ProgramWindow copies a rectangle of a decomposed cell matrix into the
// array starting at the array's origin: array cell (r, c) gets
// cm[rowOff+r][colOff+c]. Out-of-range source positions program zero.
func (a *Array) ProgramWindow(cm *quant.CellMatrix, rowOff, colOff int) {
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			sr, sc := rowOff+r, colOff+c
			var v uint16
			if sr < cm.Rows && sc < cm.PhysCols {
				v = cm.Cell(sr, sc)
			}
			a.cells[r*a.Cols+c] = v
		}
	}
}

// ReadOU performs one OU cycle: wordlines listed in active (at most the
// OU height, enforced by the caller) are driven with drive[row] and the
// bitlines [colLo, colHi) accumulate Σ drive·cell. This is the ideal
// (noise-free) read; ReadOUNoisy sends each bitline through the device
// channel instead.
func (a *Array) ReadOU(active []int, drive func(row int) uint16, colLo, colHi int) []int64 {
	if colLo < 0 || colHi > a.Cols || colLo >= colHi {
		panic("crossbar: bad column range")
	}
	a.idealReads.Add(1)
	out := make([]int64, colHi-colLo)
	for _, r := range active {
		d := int64(drive(r))
		if d == 0 {
			continue
		}
		row := a.cells[r*a.Cols : (r+1)*a.Cols]
		for c := colLo; c < colHi; c++ {
			out[c-colLo] += d * int64(row[c])
		}
	}
	return out
}

// ReadOUNoisy is ReadOU through the Monte-Carlo device/ADC channel
// (1-bit drivers only).
func (a *Array) ReadOUNoisy(active []int, drive func(row int) uint16, colLo, colHi int,
	cell reram.Cell, rng *xrand.RNG) []int64 {
	a.noisyReads.Add(1)
	states := make([]uint16, len(active))
	bits := make([]uint16, len(active))
	out := make([]int64, colHi-colLo)
	for c := colLo; c < colHi; c++ {
		for i, r := range active {
			states[i] = a.cells[r*a.Cols+c]
			bits[i] = drive(r)
		}
		out[c-colLo] = int64(cell.SenseSum(states, bits, rng))
	}
	return out
}

// ReadCounts returns how many OU reads the array has served, split into
// ideal (ReadOU) and noisy (ReadOUNoisy) reads.
func (a *Array) ReadCounts() (ideal, noisy int64) {
	return a.idealReads.Load(), a.noisyReads.Load()
}

// PublishMetrics adds the array's read counts to the shard's
// `sre_crossbar_reads_total{kind=...}` counters. Call it at reduction
// time (the counts keep accumulating; publish once per array per run).
func (a *Array) PublishMetrics(sh *metrics.Shard) {
	ideal, noisy := a.ReadCounts()
	sh.Counter(`sre_crossbar_reads_total{kind="ideal"}`).Add(ideal)
	sh.Counter(`sre_crossbar_reads_total{kind="noisy"}`).Add(noisy)
}

// ColGroup is one column-wise OU group: a bitline range plus the ordered
// list of wordlines carrying (possibly compressed) weights for it. For an
// uncompressed layout Rows is simply 0..Rows-1; ORC removes the rows
// whose cells are all zero within the group.
type ColGroup struct {
	ColLo, ColHi int
	Rows         []int
}

// Schedule is a full per-array execution plan: one ColGroup per S_BL-wide
// bitline slice.
type Schedule struct {
	Groups []ColGroup
}

// DenseSchedule returns the uncompressed plan for an array with the given
// OU width.
func DenseSchedule(rows, cols, sBL int) Schedule {
	var s Schedule
	for lo := 0; lo < cols; lo += sBL {
		hi := lo + sBL
		if hi > cols {
			hi = cols
		}
		g := ColGroup{ColLo: lo, ColHi: hi, Rows: make([]int, rows)}
		for i := range g.Rows {
			g.Rows[i] = i
		}
		s.Groups = append(s.Groups, g)
	}
	return s
}

// Result of an Execute run.
type Result struct {
	// Phys[c] = Σ_r input[r]·cell[r][c] reassembled over input bit
	// slices, per physical column.
	Phys []uint64
	// Cycles is the number of OU activations consumed.
	Cycles int
}

// Execute runs the full decomposed computation on one array.
//
// inputs[r] is the quantized activation code feeding wordline r (length
// a.Rows; rows beyond the schedule's row lists are ignored). p gives the
// decomposition; sWL is the OU height. When dof is true, only wordlines
// whose current slice value is non-zero are activated (Dynamic OU
// Formation, Fig. 9); otherwise every scheduled wordline occupies an OU
// slot and an OU whose drive values are all zero still costs its cycle —
// exactly the baseline behaviour the paper improves on.
func Execute(a *Array, inputs []uint32, p quant.Params, sWL int, sched Schedule, dof bool) Result {
	if len(inputs) != a.Rows {
		panic("crossbar: inputs length must equal array rows")
	}
	if sWL <= 0 {
		panic("crossbar: non-positive OU height")
	}
	spi := p.SlicesPerInput()
	res := Result{Phys: make([]uint64, a.Cols)}
	sliceBuf := make([]uint16, spi)
	// Pre-decompose every input once.
	slices := make([][]uint16, a.Rows)
	for r := range slices {
		p.DecomposeSlices(inputs[r], sliceBuf)
		slices[r] = append([]uint16(nil), sliceBuf...)
	}
	for si := 0; si < spi; si++ {
		drive := func(row int) uint16 { return slices[row][si] }
		for _, g := range sched.Groups {
			rows := g.Rows
			if dof {
				rows = filterNonZero(rows, drive)
			}
			for lo := 0; lo < len(rows); lo += sWL {
				hi := lo + sWL
				if hi > len(rows) {
					hi = len(rows)
				}
				part := a.ReadOU(rows[lo:hi], drive, g.ColLo, g.ColHi)
				res.Cycles++
				shift := uint(si * p.DACBits)
				for i, v := range part {
					res.Phys[g.ColLo+i] += uint64(v) << shift
				}
			}
		}
	}
	return res
}

func filterNonZero(rows []int, drive func(int) uint16) []int {
	out := make([]int, 0, len(rows))
	for _, r := range rows {
		if drive(r) != 0 {
			out = append(out, r)
		}
	}
	return out
}

// ComposeLogical folds physical-column results into logical outputs:
// logical column c's value is Σ_j phys[c·cpw+j] · 2^(j·cellBits).
func ComposeLogical(phys []uint64, p quant.Params) []uint64 {
	cpw := p.CellsPerWeight()
	if len(phys)%cpw != 0 {
		panic("crossbar: physical column count not a multiple of cells-per-weight")
	}
	out := make([]uint64, len(phys)/cpw)
	for c := range out {
		var v uint64
		for j := 0; j < cpw; j++ {
			v += phys[c*cpw+j] << uint(j*p.CellBits)
		}
		out[c] = v
	}
	return out
}

// ReferenceProduct computes the integer matrix–vector product
// Σ_r q_in[r]·q_w[r][c] directly from a quantized matrix — the oracle
// Execute must match.
func ReferenceProduct(m *quant.Matrix, inputs []uint32) []uint64 {
	if len(inputs) != m.Rows {
		panic("crossbar: reference input length mismatch")
	}
	out := make([]uint64, m.Cols)
	for r := 0; r < m.Rows; r++ {
		in := uint64(inputs[r])
		if in == 0 {
			continue
		}
		for c := 0; c < m.Cols; c++ {
			out[c] += in * uint64(m.At(r, c))
		}
	}
	return out
}
