package crossbar

import (
	"math"
	"testing"

	"sre/internal/quant"
	"sre/internal/reram"
	"sre/internal/xrand"
)

// TestChunkNoiseMatchesBitLevelMonteCarlo validates the semi-analytic
// error-injection model the Fig. 5 experiment uses (reram.ChunkNoise)
// against ground truth: executing the same dot product bit slice by bit
// slice through the Monte-Carlo device/ADC channel (ReadOUNoisy) and
// measuring the empirical error standard deviation of the reconstructed
// integer product.
func TestChunkNoiseMatchesBitLevelMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo")
	}
	p := quant.Params{WBits: 8, ABits: 8, CellBits: 2, DACBits: 1}
	cell := reram.Cell{Bits: 2, RRatio: 20, Sigma: 0.06} // noisy enough to measure
	rng := xrand.New(77)

	const (
		rows   = 32
		n      = 8 // chunk height (concurrently read wordlines)
		trials = 400
	)
	// One logical column; cells uniform over all states so meanState
	// matches the analytic parameter exactly.
	cpw := p.CellsPerWeight()
	arr := New(rows, cpw)
	var stateSum float64
	for r := 0; r < rows; r++ {
		for c := 0; c < cpw; c++ {
			s := uint16(rng.Intn(4))
			arr.Set(r, c, s)
			stateSum += float64(s)
		}
	}
	meanState := stateSum / float64(rows*cpw)

	// Inputs with independent Bernoulli(density) bits per slice, so the
	// per-slice driven count is statistically uniform.
	const density = 0.5
	inputs := make([]uint32, rows)
	for i := range inputs {
		var code uint32
		for b := 0; b < p.ABits; b++ {
			if rng.Bernoulli(density) {
				code |= 1 << uint(b)
			}
		}
		inputs[i] = code
	}

	// Exact integer product of the composed weights with the inputs.
	codes := make([]uint32, rows)
	for r := 0; r < rows; r++ {
		var q uint32
		for j := 0; j < cpw; j++ {
			q |= uint32(arr.At(r, j)) << uint(j*p.CellBits)
		}
		codes[r] = q
	}
	var exact float64
	for r := 0; r < rows; r++ {
		exact += float64(inputs[r]) * float64(codes[r])
	}

	spi := p.SlicesPerInput()
	chunkRows := func(lo int) []int {
		var out []int
		for r := lo; r < lo+n && r < rows; r++ {
			out = append(out, r)
		}
		return out
	}
	var sumSq float64
	for trial := 0; trial < trials; trial++ {
		var got float64
		for lo := 0; lo < rows; lo += n {
			active := chunkRows(lo)
			for si := 0; si < spi; si++ {
				drive := func(row int) uint16 {
					return uint16(inputs[row] >> uint(si) & 1)
				}
				part := arr.ReadOUNoisy(active, drive, 0, cpw, cell, rng)
				for j, v := range part {
					got += float64(v) * math.Pow(2, float64(si+j*p.CellBits))
				}
			}
		}
		d := got - exact
		sumSq += d * d
	}
	empirical := math.Sqrt(sumSq / trials)

	cn := reram.ChunkNoise{
		Cell:           cell,
		SlicesPerInput: spi,
		CellsPerWeight: cpw,
		DACBits:        p.DACBits,
		CellBits:       p.CellBits,
		MeanState:      meanState,
		Density:        density,
	}
	chunks := float64((rows + n - 1) / n)
	analytic := cn.Std(n, 1, 1) * math.Sqrt(chunks)

	if empirical == 0 {
		t.Fatal("Monte-Carlo produced no errors; raise sigma")
	}
	ratio := empirical / analytic
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("bit-level MC std %.1f vs analytic %.1f (ratio %.2f)",
			empirical, analytic, ratio)
	}
}
