package noc

import (
	"math"
	"testing"
)

func TestDefaultValid(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c.Enabled() {
		t.Fatal("default must be enabled")
	}
	// 42 routers → 7×7 mesh.
	if c.MeshSide() != 7 {
		t.Fatalf("mesh side %d", c.MeshSide())
	}
	// Per-flit-hop energy ≈ 4.4 pJ from 42 mW / 1.2 GHz / 8 ports.
	if c.EnergyPerFlitHop < 3e-12 || c.EnergyPerFlitHop > 6e-12 {
		t.Fatalf("flit-hop energy %v", c.EnergyPerFlitHop)
	}
}

func TestZeroValueDisabled(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Fatal("zero config must be disabled")
	}
	if c.TransferEnergy(1<<20, 3) != 0 {
		t.Fatal("disabled config must be free")
	}
}

func TestHopsXY(t *testing.T) {
	c := Default() // 7×7
	if c.Hops(0, 0) != 0 {
		t.Fatal("self distance")
	}
	// Router 0 is (0,0); router 48 is (6,6): 12 hops.
	if got := c.Hops(0, 48); got != 12 {
		t.Fatalf("corner distance %d, want 12", got)
	}
	// Symmetry.
	if c.Hops(3, 17) != c.Hops(17, 3) {
		t.Fatal("hops not symmetric")
	}
}

func TestAvgHopsMatchesExhaustive(t *testing.T) {
	c := Default()
	side := c.MeshSide()
	n := side * side
	total := 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			total += c.Hops(a, b)
		}
	}
	exact := float64(total) / float64(n*n)
	if math.Abs(c.AvgHops()-exact) > 1e-9 {
		t.Fatalf("AvgHops %v vs exhaustive %v", c.AvgHops(), exact)
	}
}

func TestFlits(t *testing.T) {
	c := Default()
	if c.Flits(0) != 0 || c.Flits(-5) != 0 {
		t.Fatal("non-positive payload must be free")
	}
	if c.Flits(1) != 1 || c.Flits(32) != 1 || c.Flits(33) != 2 {
		t.Fatal("flit rounding wrong")
	}
}

func TestTransferEnergyLinear(t *testing.T) {
	c := Default()
	e1 := c.TransferEnergy(1024, 2)
	e2 := c.TransferEnergy(2048, 2)
	e3 := c.TransferEnergy(1024, 4)
	if math.Abs(e2-2*e1) > 1e-18 || math.Abs(e3-2*e1) > 1e-18 {
		t.Fatal("transfer energy must be linear in flits and hops")
	}
}

func TestLayerHandoffMagnitude(t *testing.T) {
	c := Default()
	// A 56×56×256 16-bit feature map ≈ 12.8 Mb → ~401k flits × ~4.4 hops
	// × 4.4 pJ ≈ 8 µJ — small next to compute but non-zero.
	e := c.LayerHandoffEnergy(56 * 56 * 256 * 16)
	if e < 1e-7 || e > 1e-4 {
		t.Fatalf("handoff energy %v J out of plausible range", e)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{Routers: 0, FlitBits: 32},
		{Routers: 4, FlitBits: 0},
		{Routers: 4, FlitBits: 32, EnergyPerFlitHop: -1},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("accepted %+v", c)
		}
	}
}
