// Package noc models the on-chip interconnect of the accelerator (paper
// Table 1: routers with 32-bit flits, 8 ports, one router per 4 PEs,
// 42 mW; 168 PEs per chip). Between layers, output feature maps travel
// from producing PEs to the PEs holding the next layer's weights; the
// packages turns those transfers into flit·hop counts and energy. The
// paper (like ISAAC) overlaps transfers with computation, so the
// interconnect contributes energy but not latency.
package noc

import (
	"fmt"
	"math"
)

// Config describes the mesh.
type Config struct {
	Routers          int     // routers on the chip (168 PEs / 4 per router = 42)
	FlitBits         int     // flit width (Table 1: 32)
	EnergyPerFlitHop float64 // J for one flit crossing one router
}

// Default derives the paper's design point: a 42-router mesh whose
// per-flit-hop energy comes from the router's 42 mW at the 1.2 GHz PE
// clock spread over its 8 ports.
func Default() Config {
	return Config{
		Routers:          42,
		FlitBits:         32,
		EnergyPerFlitHop: 42e-3 / 1.2e9 / 8,
	}
}

// Validate rejects non-physical configurations.
func (c Config) Validate() error {
	switch {
	case c.Routers <= 0:
		return fmt.Errorf("noc: non-positive router count")
	case c.FlitBits <= 0:
		return fmt.Errorf("noc: non-positive flit width")
	case c.EnergyPerFlitHop < 0:
		return fmt.Errorf("noc: negative flit-hop energy")
	}
	return nil
}

// Enabled reports whether the config carries a real mesh (the zero value
// disables interconnect accounting).
func (c Config) Enabled() bool { return c.Routers > 0 && c.FlitBits > 0 }

// MeshSide returns the side of the (near-)square router mesh.
func (c Config) MeshSide() int {
	return int(math.Ceil(math.Sqrt(float64(c.Routers))))
}

// Hops returns the XY-routing hop count between routers a and b
// (identified by their index in row-major mesh order).
func (c Config) Hops(a, b int) int {
	side := c.MeshSide()
	ax, ay := a%side, a/side
	bx, by := b%side, b/side
	return abs(ax-bx) + abs(ay-by)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// AvgHops returns the mean XY distance between two uniformly random
// routers of an n×n mesh, ≈ 2n/3 — the standard uniform-traffic estimate.
func (c Config) AvgHops() float64 {
	side := float64(c.MeshSide())
	return 2 * (side - 1.0/side) / 3
}

// Flits returns the flit count for a payload of `bits`.
func (c Config) Flits(bits int64) int64 {
	if bits <= 0 {
		return 0
	}
	fb := int64(c.FlitBits)
	return (bits + fb - 1) / fb
}

// TransferEnergy returns the energy of moving `bits` across `hops`
// routers.
func (c Config) TransferEnergy(bits int64, hops float64) float64 {
	if !c.Enabled() || hops <= 0 {
		return 0
	}
	return float64(c.Flits(bits)) * hops * c.EnergyPerFlitHop
}

// LayerHandoffEnergy returns the energy of a layer handing its output
// feature map to the next layer's PEs at the uniform-traffic average
// distance.
func (c Config) LayerHandoffEnergy(outputBits int64) float64 {
	return c.TransferEnergy(outputBits, c.AvgHops())
}
