// Package shard decides which replica of a sharded sreserved cluster
// owns a given registry key. The primitive is a deterministic
// consistent-hash ring: every replica contributes a fixed number of
// virtual nodes (hash points), a key is owned by the replica whose
// point is first clockwise from the key's hash, and — because the
// point set of the surviving replicas is unchanged when one replica
// joins or leaves — membership changes remap only the keys adjacent to
// the moved points, ~K/n of K keys for one of n replicas (the
// minimal-remap property the package tests pin).
//
// Determinism is the load-bearing requirement: every replica computes
// ownership locally from nothing but the shared peer list, so the ring
// sorts and de-duplicates that list before placing points — replicas
// handed the same addresses in different orders agree on every key —
// and hash collisions between points (possible, if vanishingly rare,
// with 64-bit FNV) are broken by highest-random-weight (rendezvous)
// hashing of (key, node) rather than by placement order.
package shard

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-replica point count used when New is
// given vnodes <= 0. 128 points per replica keeps the expected
// per-replica load within a few percent of uniform for small clusters
// while the whole ring for a dozen replicas still fits in L1.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over a fixed replica set.
// Create one with New; all methods are safe for concurrent use.
type Ring struct {
	nodes  []string // sorted, de-duplicated
	points []point  // sorted by hash
}

// point is one virtual node: a position on the ring owned by a replica.
type point struct {
	hash uint64
	node int32 // index into nodes
}

// New builds a ring over nodes (replica addresses; order-insensitive,
// duplicates ignored) with the given number of virtual nodes per
// replica (<= 0 selects DefaultVirtualNodes). At least one node is
// required.
func New(nodes []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	uniq := make([]string, 0, len(nodes))
	seen := map[string]bool{}
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("shard: empty node address")
		}
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one node")
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, points: make([]point, 0, len(uniq)*vnodes)}
	for i, n := range uniq {
		for v := 0; v < vnodes; v++ {
			h := hashString(n + "#" + strconv.Itoa(v))
			r.points = append(r.points, point{hash: h, node: int32(i)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Owner returns the replica that owns key: the node of the first ring
// point at or clockwise of the key's hash, wrapping past the top. When
// several points share that exact hash (a 64-bit collision), the tie
// is broken by rendezvous hashing of (key, node), so ownership never
// depends on point placement order.
func (r *Ring) Owner(key string) string {
	h := hashString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	winner := r.points[i]
	// Collision tiebreak: scan the run of points sharing the chosen
	// hash (almost always length 1) and keep the rendezvous winner.
	for j := i + 1; j < len(r.points) && r.points[j].hash == winner.hash; j++ {
		if r.points[j].node == winner.node {
			continue
		}
		if hashPair(key, r.nodes[r.points[j].node]) > hashPair(key, r.nodes[winner.node]) {
			winner = r.points[j]
		}
	}
	return r.nodes[winner.node]
}

// Nodes returns the ring's replica set, sorted and de-duplicated.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Contains reports whether node is a member of the ring.
func (r *Ring) Contains(node string) bool {
	i := sort.SearchStrings(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// FNV-1a, 64-bit, finished with a murmur-style mixer. Inlined rather
// than hash/fnv so Owner stays allocation-free on the serve hot path.
// The finalizer is load-bearing: raw FNV-1a of two strings that differ
// only in a short suffix (registry keys differ only in their trailing
// seed digits) differ by roughly suffixDelta x prime ≈ 2^40, far
// smaller than the ~2^56 average gap between ring points, so without
// mixing, whole families of adjacent keys collapse onto one owner.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// mix64 is the splitmix64/murmur3 finalizer: full avalanche, so every
// input bit flips each output bit with probability ~1/2.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func hashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return mix64(h)
}

// hashPair hashes (a, b) with a separator byte between the roles, for
// the rendezvous tiebreak.
func hashPair(a, b string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(a); i++ {
		h ^= uint64(a[i])
		h *= fnvPrime64
	}
	h ^= 0xff
	h *= fnvPrime64
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= fnvPrime64
	}
	return mix64(h)
}
