package shard

import (
	"fmt"
	"math/rand"
	"testing"
)

func nodeSet(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("127.0.0.1:%d", 18400+i)
	}
	return nodes
}

func keySet(k int) []string {
	keys := make([]string, k)
	for i := range keys {
		// Shaped like the serve registry key's String form.
		keys[i] = fmt.Sprintf("VGG-16/ssl/xbar128/ou8x8/w16a16/cell2/dac1/seed%d", i)
	}
	return keys
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("New(nil) should fail: a ring needs at least one node")
	}
	if _, err := New([]string{"a", ""}, 0); err == nil {
		t.Fatal("New with an empty address should fail")
	}
	r, err := New([]string{"a", "a", "a"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Nodes(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("duplicates not collapsed: %v", got)
	}
}

// TestDeterministicAndOrderIndependent pins the property every replica
// relies on: ownership is a pure function of the (unordered) peer set,
// so replicas handed the same addresses in different orders agree on
// every key.
func TestDeterministicAndOrderIndependent(t *testing.T) {
	nodes := nodeSet(5)
	keys := keySet(2000)
	ref, err := New(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(keys))
	for i, k := range keys {
		want[i] = ref.Owner(k)
		if !ref.Contains(want[i]) {
			t.Fatalf("Owner(%q) = %q not in ring", k, want[i])
		}
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]string(nil), nodes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r, err := New(shuffled, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range keys {
			if got := r.Owner(k); got != want[i] {
				t.Fatalf("trial %d: Owner(%q) = %q, want %q (peer order must not matter)",
					trial, k, got, want[i])
			}
		}
	}
}

// TestRemoveRemapsOnlyOwnedKeys pins the exact half of the minimal-
// remap property: removing one replica reassigns precisely the keys it
// owned — every other key keeps its owner.
func TestRemoveRemapsOnlyOwnedKeys(t *testing.T) {
	nodes := nodeSet(5)
	keys := keySet(5000)
	full, err := New(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	removed := nodes[2]
	rest, err := New(append(append([]string(nil), nodes[:2]...), nodes[3:]...), 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keys {
		before := full.Owner(k)
		after := rest.Owner(k)
		if before == removed {
			moved++
			if after == removed {
				t.Fatalf("key %q still owned by removed node", k)
			}
			continue
		}
		if after != before {
			t.Fatalf("key %q moved %q -> %q though its owner stayed in the ring", k, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("removed node owned no keys; ring badly unbalanced")
	}
}

// TestAddRemapsAboutKOverN pins the statistical half: adding one
// replica to n should steal about K/(n+1) keys, and never more than
// twice that.
func TestAddRemapsAboutKOverN(t *testing.T) {
	nodes := nodeSet(5)
	keys := keySet(10000)
	small, err := New(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := New(append(append([]string(nil), nodes...), "127.0.0.1:19999"), 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keys {
		before, after := small.Owner(k), grown.Owner(k)
		if before != after {
			if after != "127.0.0.1:19999" {
				t.Fatalf("key %q moved %q -> %q: an added node may only steal keys, never shuffle survivors", k, before, after)
			}
			moved++
		}
	}
	ideal := len(keys) / (len(nodes) + 1)
	if moved > 2*ideal {
		t.Fatalf("adding 1 of %d nodes remapped %d of %d keys (ideal ~%d, cap 2x)",
			len(nodes)+1, moved, len(keys), ideal)
	}
	if moved < ideal/4 {
		t.Fatalf("adding a node stole only %d of %d keys (ideal ~%d); ring badly unbalanced", moved, len(keys), ideal)
	}
}

// TestBalance sanity-checks the virtual-node count: no replica's share
// strays wildly from uniform.
func TestBalance(t *testing.T) {
	nodes := nodeSet(4)
	keys := keySet(8000)
	r, err := New(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	ideal := len(keys) / len(nodes)
	for _, n := range nodes {
		c := counts[n]
		if c < ideal/3 || c > 3*ideal {
			t.Fatalf("node %s owns %d of %d keys (ideal ~%d): balance off by >3x", n, c, len(keys), ideal)
		}
	}
}

// TestAdjacentKeysSpread is the avalanche regression: registry keys
// that differ only in their trailing seed digit (the common shape of a
// design-point sweep) must not collapse onto one owner. Raw FNV-1a
// without a finalizer fails this — consecutive suffixes land within
// ~2^42 of each other, far inside one ring gap.
func TestAdjacentKeysSpread(t *testing.T) {
	r, err := New([]string{"127.0.0.1:18401", "127.0.0.1:18402"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	owners := map[string]int{}
	for seed := 0; seed < 16; seed++ {
		owners[r.Owner(fmt.Sprintf("MNIST/ssl/xbar128/ou8x8/w16a16/cell2/dac1/seed%d", 1000+seed))]++
	}
	if len(owners) < 2 {
		t.Fatalf("16 adjacent keys all owned by one node (%v): hash avalanche broken", owners)
	}
}

func BenchmarkOwner(b *testing.B) {
	r, err := New(nodeSet(3), 0)
	if err != nil {
		b.Fatal(err)
	}
	keys := keySet(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(keys[i&63])
	}
}
