package compress

import (
	"testing"

	"sre/internal/mapping"
	"sre/internal/quant"
	"sre/internal/xrand"
)

// TestFigure8OCCExample reproduces Fig. 8(c): in the 4×4 crossbar with
// 2×2 OUs, the 2nd column of OU1 (rows 0–1, cols 0–1) and the 2nd column
// of OU4 (rows 2–3, cols 2–3) are zero and get compressed away.
func TestFigure8OCCExample(t *testing.T) {
	src := codeSource(4, 4, []uint32{
		1, 0, 2, 1, // OU1 col1 zero; OU3 dense-ish
		2, 0, 1, 2,
		0, 3, 1, 0, // OU2 dense in col1; OU4 col3 zero
		1, 2, 2, 0,
	})
	g := mapping.Geometry{XbarRows: 4, XbarCols: 4, SWL: 2, SBL: 2}
	s := BuildOCC(src, oneCell, g)
	// Band 0 (rows 0-1): group cols {0,2,3} retained (col 1 zero).
	if got := s.BandRetainedCols(0, 0, 0); got != 3 {
		t.Fatalf("band 0 retained %d, want 3", got)
	}
	// Band 1 (rows 2-3): cols {0,1,2} retained (col 3 zero).
	if got := s.BandRetainedCols(0, 0, 1); got != 3 {
		t.Fatalf("band 1 retained %d, want 3", got)
	}
	// Per slice: each band re-packs 3 columns into ceil(3/2)=2 OUs → 4
	// total, versus 2 bands × 2 groups = 4 uncompressed... the example's
	// saving appears at the cell level:
	if s.CompressedCells() != 3*2+3*2 {
		t.Fatalf("compressed cells = %d, want 12", s.CompressedCells())
	}
	if s.CompressionRatio() <= 1 {
		t.Fatal("OCC must compress this matrix")
	}
}

func TestOCCOUsPerTileSlice(t *testing.T) {
	// One band entirely zero must cost zero OUs.
	src := codeSource(4, 2, []uint32{
		0, 0,
		0, 0,
		5, 5,
		5, 5,
	})
	g := mapping.Geometry{XbarRows: 4, XbarCols: 2, SWL: 2, SBL: 2}
	s := BuildOCC(src, oneCell, g)
	if got := s.OUsPerTileSlice(0, 0); got != 1 {
		t.Fatalf("OUs per slice = %d, want 1 (empty band skipped)", got)
	}
}

// TestOCCMatchesBruteForce validates the builder against direct cell
// recomputation on random instances.
func TestOCCMatchesBruteForce(t *testing.T) {
	r := xrand.New(3)
	p := quant.Params{WBits: 8, ABits: 8, CellBits: 2, DACBits: 1}
	for trial := 0; trial < 8; trial++ {
		rows := 4 + r.Intn(60)
		cols := 1 + r.Intn(8)
		codes := &CodeSource{Rows: rows, Cols: cols, Codes: make([]uint32, rows*cols)}
		for i := range codes.Codes {
			if !r.Bernoulli(0.6) {
				codes.Codes[i] = uint32(r.Intn(256))
			}
		}
		g := mapping.Geometry{XbarRows: 16, XbarCols: 8, SWL: 4, SBL: 4}
		s := BuildOCC(codes, p, g)
		lay := s.Layout
		cpw := p.CellsPerWeight()
		for rb := 0; rb < lay.RowBlocks; rb++ {
			for cb := 0; cb < lay.ColBlocks; cb++ {
				for band := 0; band < s.Bands(rb); band++ {
					want := 0
					for tc := 0; tc < lay.TileCols(cb); tc++ {
						pc := cb*g.XbarCols + tc
						c, j := pc/cpw, pc%cpw
						nonzero := false
						for dr := 0; dr < g.SWL; dr++ {
							row := rb*g.XbarRows + band*g.SWL + dr
							if row >= rows || row >= (rb+1)*g.XbarRows {
								break
							}
							if codes.Codes[row*cols+c]>>uint(j*2)&3 != 0 {
								nonzero = true
								break
							}
						}
						if nonzero {
							want++
						}
					}
					if got := s.BandRetainedCols(rb, cb, band); got != want {
						t.Fatalf("trial %d (%d,%d,band %d): %d, want %d",
							trial, rb, cb, band, got, want)
					}
				}
			}
		}
	}
}

// TestOCCComparableToORCOnColumnStructure: weights with column-structured
// zeros favour OCC; row-structured zeros favour ORC. Both must beat 1 on
// their own structure.
func TestOCCvsORCStructuralAffinity(t *testing.T) {
	r := xrand.New(9)
	mk := func(rowStructured bool) (*Structure, *OCCStructure) {
		codes := &CodeSource{Rows: 64, Cols: 16, Codes: make([]uint32, 64*16)}
		// Dense non-zero fill, then structured zeros on even rows (or
		// even columns).
		for row := 0; row < 64; row++ {
			for c := 0; c < 16; c++ {
				switch {
				case rowStructured && row%2 == 0:
					// zero row
				case !rowStructured && c%2 == 0:
					// zero column
				default:
					codes.Codes[row*16+c] = uint32(1 + r.Intn(15))
				}
			}
		}
		p := oneCell
		g := mapping.Geometry{XbarRows: 16, XbarCols: 16, SWL: 4, SBL: 4}
		return Build(codes, p, g), BuildOCC(codes, p, g)
	}
	rowSt, rowOCC := mk(true)
	if rowSt.CompressionRatio(ORC, 0) < 1.9 {
		t.Fatalf("ORC missed row structure: %v", rowSt.CompressionRatio(ORC, 0))
	}
	if rowOCC.CompressionRatio() > rowSt.CompressionRatio(ORC, 0) {
		t.Fatal("OCC should not beat ORC on row-structured zeros")
	}
	colSt, colOCC := mk(false)
	if colOCC.CompressionRatio() < 1.9 {
		t.Fatalf("OCC missed column structure: %v", colOCC.CompressionRatio())
	}
	if colSt.CompressionRatio(ORC, 0) > colOCC.CompressionRatio() {
		t.Fatal("ORC should not beat OCC on column-structured zeros")
	}
}

func TestOCCOutputIndexBits(t *testing.T) {
	src := codeSource(4, 4, []uint32{
		1, 0, 2, 1,
		2, 0, 1, 2,
		0, 3, 1, 0,
		1, 2, 2, 0,
	})
	g := mapping.Geometry{XbarRows: 4, XbarCols: 4, SWL: 2, SBL: 2}
	s := BuildOCC(src, oneCell, g)
	// 6 retained columns × log2(4)=2 bits.
	if got := s.OutputIndexBits(); got != 12 {
		t.Fatalf("output index bits = %d, want 12", got)
	}
}
