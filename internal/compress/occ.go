package compress

import (
	"sre/internal/bitset"
	"sre/internal/mapping"
	"sre/internal/quant"
	"sre/internal/xmath"
)

// OU-column compression (paper §4.1, Fig. 8(c)): within each OU — an
// S_WL-row band crossed with a column group — all-zero column vectors are
// removed and the remaining columns shift left. Unlike row compression
// this changes the bitline→output mapping, so every remaining column
// needs an output index, and (Fig. 10) it cannot combine with Dynamic OU
// Formation: wordlines gathered from different row bands would accumulate
// currents belonging to different outputs on the same bitline.
//
// The structure needed is the transpose of the row case: per (row band,
// physical column), does any cell in the band hold a non-zero value? The
// Structure's per-group row bitsets cannot answer that (they collapse
// columns), so OCC gets its own builder.

// OCCStructure records, per crossbar tile, which (row band, column)
// positions are non-zero.
type OCCStructure struct {
	Layout mapping.Layout
	// cols[rb][cb][band] has bit c set iff tile column c holds a non-zero
	// cell within row band `band`.
	cols [][][]*bitset.Set
}

// BuildOCC scans src and records per-band column occupancy under the
// same geometry conventions as Build.
func BuildOCC(src Source, p quant.Params, g mapping.Geometry) *OCCStructure {
	rows, cols := src.Dims()
	layout := mapping.NewLayout(rows, cols, p, g)
	s := &OCCStructure{Layout: layout}
	bandsIn := func(tileRows int) int { return (tileRows + g.SWL - 1) / g.SWL }
	s.cols = make([][][]*bitset.Set, layout.RowBlocks)
	for rb := range s.cols {
		s.cols[rb] = make([][]*bitset.Set, layout.ColBlocks)
		nBands := bandsIn(layout.TileRows(rb))
		for cb := range s.cols[rb] {
			tileCols := layout.TileCols(cb)
			bands := make([]*bitset.Set, nBands)
			for b := range bands {
				bands[b] = bitset.New(tileCols)
			}
			s.cols[rb][cb] = bands
		}
	}
	cpw := p.CellsPerWeight()
	mask := uint32(1)<<uint(p.CellBits) - 1
	codes := make([]uint32, cols)
	for r := 0; r < rows; r++ {
		src.RowCodes(r, codes)
		rb := r / g.XbarRows
		band := (r % g.XbarRows) / g.SWL
		for c, code := range codes {
			if code == 0 {
				continue
			}
			for j := 0; j < cpw; j++ {
				if code>>uint(j*p.CellBits)&mask == 0 {
					continue
				}
				pc := c*cpw + j
				cb := pc / g.XbarCols
				s.cols[rb][cb][band].Set(pc % g.XbarCols)
			}
		}
	}
	return s
}

// BandRetainedCols returns how many columns of tile (rb, cb) survive
// column compression in row band `band`.
func (s *OCCStructure) BandRetainedCols(rb, cb, band int) int {
	return s.cols[rb][cb][band].Count()
}

// Bands returns the number of S_WL row bands in row block rb.
func (s *OCCStructure) Bands(rb int) int {
	return len(s.cols[rb][0])
}

// OUsPerTileSlice returns the OU activations one tile needs per input
// bit slice under OCC: per row band, the compacted columns re-pack into
// ceil(retained/S_BL) OUs (an empty band costs nothing).
func (s *OCCStructure) OUsPerTileSlice(rb, cb int) int {
	total := 0
	for band := range s.cols[rb][cb] {
		k := s.BandRetainedCols(rb, cb, band)
		total += (k + s.Layout.SBL - 1) / s.Layout.SBL
	}
	return total
}

// CompressedCells returns the mapped cell count under OCC.
func (s *OCCStructure) CompressedCells() int64 {
	var cells int64
	for rb := range s.cols {
		tileRows := s.Layout.TileRows(rb)
		for cb := range s.cols[rb] {
			for band := range s.cols[rb][cb] {
				bandRows := s.Layout.SWL
				if r := tileRows - band*s.Layout.SWL; r < bandRows {
					bandRows = r
				}
				cells += int64(s.BandRetainedCols(rb, cb, band)) * int64(bandRows)
			}
		}
	}
	return cells
}

// CompressionRatio returns originalCells / compressedCells.
func (s *OCCStructure) CompressionRatio() float64 {
	comp := s.CompressedCells()
	if comp == 0 {
		comp = 1
	}
	return float64(s.Layout.TotalCells()) / float64(comp)
}

// OutputIndexBits returns the output-indexing storage OCC needs: every
// retained column of every OU block must record which output bitline its
// current belongs to (paper §2.2 on SNrram: "significant storage
// overhead"; the same cost structure applies to OU-column compression).
// Each index addresses a position within the crossbar's columns.
func (s *OCCStructure) OutputIndexBits() int64 {
	bits := int64(xmath.CeilLog2(s.Layout.XbarCols))
	var total int64
	for rb := range s.cols {
		for cb := range s.cols[rb] {
			for band := range s.cols[rb][cb] {
				total += int64(s.BandRetainedCols(rb, cb, band)) * bits
			}
		}
	}
	return total
}
