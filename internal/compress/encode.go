// Structure and plan-set serialization: the owned-buffer layouts
// internal/snapshot persists. A Structure's source of truth is its
// per-(row block, column block, OU group) non-zero-row bitsets; this
// file flattens them into one contiguous word plane (group-major in
// (rb, cb, gi) order, each group occupying bitset.Words64(tileRows)
// words) and rebuilds a Structure from such a plane zero-copy, so a
// snapshot can be loaded in one read. PlanSets — the derived per-tile
// execution state — get their own compact encoding plus a cache-seeding
// hook, so a snapshot can carry the expensive-to-derive ORC plans and a
// loaded network starts with a warm plan cache.
package compress

import (
	"encoding/binary"
	"fmt"

	"sre/internal/bitset"
	"sre/internal/mapping"
	"sre/internal/quant"
	"sre/internal/xmath"
)

// PlaneWords returns the total word count of the structure's flattened
// group plane — the backing size AppendPlanes produces and
// NewStructureFromPlanes expects.
func (s *Structure) PlaneWords() int {
	lay := s.Layout
	words := 0
	for rb := 0; rb < lay.RowBlocks; rb++ {
		w := bitset.Words64(lay.TileRows(rb))
		for cb := 0; cb < lay.ColBlocks; cb++ {
			words += w * lay.GroupsInTile(cb)
		}
	}
	return words
}

// AppendPlanes appends every group's non-zero-row mask to dst in
// (rb, cb, gi) order and returns the extended slice. The layout is the
// one PlaneWords sizes and NewStructureFromPlanes consumes.
func (s *Structure) AppendPlanes(dst []uint64) []uint64 {
	for rb := range s.groups {
		for cb := range s.groups[rb] {
			for _, g := range s.groups[rb][cb] {
				dst = bitset.AppendPlane(dst, g)
			}
		}
	}
	return dst
}

// NonZeroCells returns the layer's non-zero cell count (the Ideal
// scheme's compressed size), persisted alongside the plane so a decoded
// Structure reports identical compression ratios.
func (s *Structure) NonZeroCells() int64 { return s.nonZeroCells }

// SlicePlaneWords returns the word count of the slice-major group plane
// (identical tiling, so it equals PlaneWords), or 0 when the structure
// carries no slice planes.
func (s *Structure) SlicePlaneWords() int {
	if s.sliceGroups == nil {
		return 0
	}
	return s.PlaneWords()
}

// AppendSlicePlanes appends every slice-major group's non-zero-row mask
// to dst in (rb, cb, gi) order — the layout SlicePlaneWords sizes and
// NewStructureFromPlanes consumes as its slicePlanes argument. Appends
// nothing when the structure carries no slice planes.
func (s *Structure) AppendSlicePlanes(dst []uint64) []uint64 {
	for rb := range s.sliceGroups {
		for cb := range s.sliceGroups[rb] {
			for _, g := range s.sliceGroups[rb][cb] {
				dst = bitset.AppendPlane(dst, g)
			}
		}
	}
	return dst
}

// NewStructureFromPlanes rebuilds a Structure from a contiguous group
// plane produced by AppendPlanes, plus an optional slice-major plane
// produced by AppendSlicePlanes (nil means the source carried none; the
// structure then reports HasSlicePlanes false and cannot serve WSS).
// The group bitsets adopt sub-slices of the planes without copying, so
// the caller must keep the slices alive and must not mutate them
// afterwards — exactly the read-only contract built Structures already
// obey. Derived state (plan sets, memoized stats) rebuilds lazily and
// bit-identically on first use.
func NewStructureFromPlanes(rows, cols int, p quant.Params, g mapping.Geometry, planes, slicePlanes []uint64, nonZeroCells int64) (*Structure, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("compress: non-positive matrix dims %dx%d", rows, cols)
	}
	layout := mapping.NewLayout(rows, cols, p, g)
	s := &Structure{Layout: layout, P: p, nonZeroCells: nonZeroCells}
	var err error
	if s.groups, err = adoptGroupGrid(layout, planes); err != nil {
		return nil, err
	}
	if slicePlanes != nil {
		if s.sliceGroups, err = adoptGroupGrid(layout, slicePlanes); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// adoptGroupGrid rebuilds one group grid zero-copy from its flattened
// plane.
func adoptGroupGrid(layout mapping.Layout, planes []uint64) ([][][]*bitset.Set, error) {
	grid := make([][][]*bitset.Set, layout.RowBlocks)
	off := 0
	for rb := range grid {
		grid[rb] = make([][]*bitset.Set, layout.ColBlocks)
		tileRows := layout.TileRows(rb)
		w := bitset.Words64(tileRows)
		for cb := range grid[rb] {
			gs := make([]*bitset.Set, layout.GroupsInTile(cb))
			for gi := range gs {
				if off+w > len(planes) {
					return nil, fmt.Errorf("compress: plane too short: have %d words, need more at (rb=%d,cb=%d,g=%d)", len(planes), rb, cb, gi)
				}
				gs[gi] = bitset.FromWords(tileRows, planes[off:off+w:off+w])
				off += w
			}
			grid[rb][cb] = gs
		}
	}
	if off != len(planes) {
		return nil, fmt.Errorf("compress: plane length mismatch: consumed %d of %d words", off, len(planes))
	}
	return grid, nil
}

// SeedPlanSet installs a pre-built plan set for (scheme, indexBits) in
// the structure's plan cache, so the first simulation under that key
// reads it instead of deriving plans. Seeding an already-cached key is
// a no-op (the first installation wins, matching the cache's
// build-once semantics). The plan set must describe this structure —
// snapshot decoding guarantees that by construction.
func (s *Structure) SeedPlanSet(scheme Scheme, indexBits int, ps *PlanSet) {
	if scheme == Baseline || scheme == Ideal || indexBits < 0 {
		indexBits = 0
	}
	key := planKey{scheme, indexBits}
	s.plans.mu.Lock()
	if s.plans.entries == nil {
		s.plans.entries = make(map[planKey]*planEntry)
	}
	e := s.plans.entries[key]
	if e == nil {
		e = &planEntry{}
		s.plans.entries[key] = e
	}
	s.plans.mu.Unlock()
	e.once.Do(func() { e.ps = ps })
}

// Plan-set wire encoding (all little-endian):
//
//	u32 rowBlocks, u32 colBlocks
//	per tile, rb-major:
//	  u8 flags (bit 0: AllRows)
//	  AllRows tile: u32 tileRows, u32 groups
//	  otherwise:    u32 groups, then per group u32 count + count×u16 rows
//
// Row values are tile-relative (< XbarRows ≤ 64Ki), so u16 suffices.
// The plane words, row counts, and OU counts are derived at decode
// time, keeping the wire form minimal.

// AppendPlanSet appends ps's wire encoding to dst and returns it.
func AppendPlanSet(dst []byte, ps *PlanSet) []byte {
	var u32 [4]byte
	put32 := func(v int) {
		binary.LittleEndian.PutUint32(u32[:], uint32(v))
		dst = append(dst, u32[:]...)
	}
	put32(len(ps.Tiles))
	if len(ps.Tiles) == 0 {
		put32(0)
		return dst
	}
	put32(len(ps.Tiles[0]))
	for rb := range ps.Tiles {
		for cb := range ps.Tiles[rb] {
			tp := &ps.Tiles[rb][cb]
			if tp.AllRows {
				dst = append(dst, 1)
				put32(tp.TileRows)
				put32(tp.Groups)
				continue
			}
			dst = append(dst, 0)
			put32(len(tp.GroupRows))
			for _, rows := range tp.GroupRows {
				put32(len(rows))
				for _, r := range rows {
					if r > 0xFFFF {
						panic("compress: AppendPlanSet row exceeds u16 (crossbar > 64Ki rows)")
					}
					dst = append(dst, byte(r), byte(r>>8))
				}
			}
		}
	}
	return dst
}

// DecodePlanSet rebuilds a PlanSet from AppendPlanSet's encoding for a
// layer with the given layout. Derived fields (Plane, Words, RowCount,
// OUs) are recomputed exactly as buildPlanSet fills them, so a decoded
// plan set is indistinguishable from a freshly built one.
func DecodePlanSet(data []byte, lay mapping.Layout) (*PlanSet, error) {
	off := 0
	need := func(n int) error {
		if len(data)-off < n {
			return fmt.Errorf("compress: plan set truncated at byte %d (need %d more)", off, n)
		}
		return nil
	}
	get32 := func() (int, error) {
		if err := need(4); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return int(v), nil
	}
	rbs, err := get32()
	if err != nil {
		return nil, err
	}
	cbs, err := get32()
	if err != nil {
		return nil, err
	}
	if rbs != lay.RowBlocks || cbs != lay.ColBlocks {
		return nil, fmt.Errorf("compress: plan set tiling %dx%d does not match layout %dx%d",
			rbs, cbs, lay.RowBlocks, lay.ColBlocks)
	}
	ps := &PlanSet{Tiles: make([][]TilePlans, rbs)}
	for rb := 0; rb < rbs; rb++ {
		ps.Tiles[rb] = make([]TilePlans, cbs)
		tileRows := lay.TileRows(rb)
		words := bitset.Words64(tileRows)
		bs := bitset.New(tileRows)
		for cb := 0; cb < cbs; cb++ {
			tp := &ps.Tiles[rb][cb]
			if err := need(1); err != nil {
				return nil, err
			}
			flags := data[off]
			off++
			if flags&1 != 0 {
				tr, err := get32()
				if err != nil {
					return nil, err
				}
				groups, err := get32()
				if err != nil {
					return nil, err
				}
				if tr != tileRows || groups != lay.GroupsInTile(cb) {
					return nil, fmt.Errorf("compress: plan set tile (%d,%d) shape mismatch", rb, cb)
				}
				tp.AllRows = true
				tp.TileRows = tileRows
				tp.Words = words
				tp.Groups = groups
				tp.RowCount = int64(groups) * int64(tileRows)
				tp.OUs = int64(groups) * int64(xmath.CeilDiv(tileRows, lay.SWL))
				tp.NonEmptyGroups = groups
				continue
			}
			nGroups, err := get32()
			if err != nil {
				return nil, err
			}
			if nGroups != lay.GroupsInTile(cb) {
				return nil, fmt.Errorf("compress: plan set tile (%d,%d) has %d groups, layout wants %d",
					rb, cb, nGroups, lay.GroupsInTile(cb))
			}
			tp.Words = words
			tp.Groups = nGroups
			tp.GroupRows = make([][]int, nGroups)
			tp.Plane = make([]uint64, 0, nGroups*words)
			counts := make([]int, nGroups)
			total := 0
			mark := off
			for gi := 0; gi < nGroups; gi++ {
				n, err := get32()
				if err != nil {
					return nil, err
				}
				if err := need(2 * n); err != nil {
					return nil, err
				}
				off += 2 * n
				counts[gi] = n
				total += n
			}
			off = mark
			backing := make([]int, 0, total)
			for gi := 0; gi < nGroups; gi++ {
				off += 4 // count, already read
				start := len(backing)
				for i := 0; i < counts[gi]; i++ {
					r := int(binary.LittleEndian.Uint16(data[off:]))
					off += 2
					if r >= tileRows {
						return nil, fmt.Errorf("compress: plan set row %d outside tile of %d rows", r, tileRows)
					}
					backing = append(backing, r)
				}
				rows := backing[start:len(backing):len(backing)]
				tp.GroupRows[gi] = rows
				bs.Reset()
				for _, r := range rows {
					bs.Set(r)
				}
				tp.Plane = bitset.AppendPlane(tp.Plane, bs)
				tp.RowCount += int64(len(rows))
				tp.OUs += int64(xmath.CeilDiv(len(rows), lay.SWL))
				if len(rows) > 0 {
					tp.NonEmptyGroups++
				}
			}
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("compress: plan set has %d trailing bytes", len(data)-off)
	}
	return ps, nil
}
