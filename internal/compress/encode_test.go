package compress

import (
	"testing"

	"sre/internal/mapping"
	"sre/internal/quant"
	"sre/internal/xrand"
)

// randomStructure builds a randomized sparse layer for roundtrip tests.
func randomStructure(r *xrand.RNG) (*Structure, *CodeSource, quant.Params, mapping.Geometry) {
	p := quant.Params{WBits: 8, ABits: 8, CellBits: 2, DACBits: 1}
	rows := 1 + r.Intn(90)
	cols := 1 + r.Intn(10)
	codes := &CodeSource{Rows: rows, Cols: cols, Codes: make([]uint32, rows*cols)}
	for i := range codes.Codes {
		if !r.Bernoulli(0.6) {
			codes.Codes[i] = uint32(r.Intn(1 << uint(p.WBits)))
		}
	}
	g := mapping.Geometry{
		XbarRows: 8 + r.Intn(40),
		XbarCols: 4 * (1 + r.Intn(8)),
		SWL:      1 + r.Intn(8),
	}
	g.SBL = 1 + r.Intn(g.XbarCols)
	return Build(codes, p, g), codes, p, g
}

// TestStructurePlaneRoundTrip proves AppendPlanes →
// NewStructureFromPlanes reproduces a structure exactly: every group
// bitset, the compression accounting of every scheme, and the derived
// ORC plan set all match the original bit for bit.
func TestStructurePlaneRoundTrip(t *testing.T) {
	r := xrand.New(7)
	for trial := 0; trial < 10; trial++ {
		s, _, p, g := randomStructure(r)
		planes := s.AppendPlanes(make([]uint64, 0, s.PlaneWords()))
		if len(planes) != s.PlaneWords() {
			t.Fatalf("trial %d: AppendPlanes wrote %d words, PlaneWords says %d",
				trial, len(planes), s.PlaneWords())
		}
		slicePlanes := s.AppendSlicePlanes(make([]uint64, 0, s.SlicePlaneWords()))
		if len(slicePlanes) != s.SlicePlaneWords() {
			t.Fatalf("trial %d: AppendSlicePlanes wrote %d words, SlicePlaneWords says %d",
				trial, len(slicePlanes), s.SlicePlaneWords())
		}
		back, err := NewStructureFromPlanes(s.Layout.Rows, s.Layout.LogicalCols, p, g, planes, slicePlanes, s.NonZeroCells())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !back.HasSlicePlanes() {
			t.Fatalf("trial %d: decoded structure lost its slice planes", trial)
		}
		lay := s.Layout
		if back.Layout != lay {
			t.Fatalf("trial %d: layout diverged", trial)
		}
		for rb := 0; rb < lay.RowBlocks; rb++ {
			for cb := 0; cb < lay.ColBlocks; cb++ {
				for gi := 0; gi < lay.GroupsInTile(cb); gi++ {
					a := s.GroupNonZeroRows(rb, cb, gi)
					b := back.GroupNonZeroRows(rb, cb, gi)
					sa := s.SliceGroupNonZeroRows(rb, cb, gi)
					sb := back.SliceGroupNonZeroRows(rb, cb, gi)
					if a.Count() != b.Count() || sa.Count() != sb.Count() {
						t.Fatalf("trial %d (%d,%d,%d): group count %d vs %d (slice %d vs %d)",
							trial, rb, cb, gi, a.Count(), b.Count(), sa.Count(), sb.Count())
					}
					for row := 0; row < lay.TileRows(rb); row++ {
						if a.Test(row) != b.Test(row) || sa.Test(row) != sb.Test(row) {
							t.Fatalf("trial %d (%d,%d,%d): row %d differs", trial, rb, cb, gi, row)
						}
					}
				}
			}
		}
		for _, sc := range []Scheme{Baseline, Naive, ReCom, ORC, Ideal, WSS} {
			if s.CompressedCells(sc, 5) != back.CompressedCells(sc, 5) ||
				s.IndexStorageBits(sc, 5) != back.IndexStorageBits(sc, 5) ||
				s.EmptyGroups(sc, 5) != back.EmptyGroups(sc, 5) {
				t.Fatalf("trial %d: scheme %v accounting diverged", trial, sc)
			}
		}
		comparePlanSets(t, s.PlanSet(ORC, 5), back.PlanSet(ORC, 5), s.Layout)
		comparePlanSets(t, s.PlanSet(WSS, 5), back.PlanSet(WSS, 5), s.Layout)
	}
}

// comparePlanSets checks two plan sets describe identical execution
// state (treating nil and empty row slices as equal).
func comparePlanSets(t *testing.T, a, b *PlanSet, lay mapping.Layout) {
	t.Helper()
	if len(a.Tiles) != len(b.Tiles) {
		t.Fatalf("tile row count %d vs %d", len(a.Tiles), len(b.Tiles))
	}
	for rb := range a.Tiles {
		for cb := range a.Tiles[rb] {
			ta, tb := &a.Tiles[rb][cb], &b.Tiles[rb][cb]
			if ta.AllRows != tb.AllRows || ta.Words != tb.Words || ta.Groups != tb.Groups ||
				ta.RowCount != tb.RowCount || ta.OUs != tb.OUs ||
				ta.NonEmptyGroups != tb.NonEmptyGroups {
				t.Fatalf("tile (%d,%d) scalars diverged:\n %+v\n %+v", rb, cb, ta, tb)
			}
			if ta.AllRows {
				if ta.TileRows != tb.TileRows {
					t.Fatalf("tile (%d,%d) TileRows %d vs %d", rb, cb, ta.TileRows, tb.TileRows)
				}
				continue
			}
			if len(ta.GroupRows) != len(tb.GroupRows) {
				t.Fatalf("tile (%d,%d) group count %d vs %d", rb, cb, len(ta.GroupRows), len(tb.GroupRows))
			}
			for gi := range ta.GroupRows {
				ra, rbk := ta.GroupRows[gi], tb.GroupRows[gi]
				if len(ra) != len(rbk) {
					t.Fatalf("tile (%d,%d) group %d rows %v vs %v", rb, cb, gi, ra, rbk)
				}
				for i := range ra {
					if ra[i] != rbk[i] {
						t.Fatalf("tile (%d,%d) group %d row %d: %d vs %d", rb, cb, gi, i, ra[i], rbk[i])
					}
				}
			}
			if len(ta.Plane) != len(tb.Plane) {
				t.Fatalf("tile (%d,%d) plane length %d vs %d", rb, cb, len(ta.Plane), len(tb.Plane))
			}
			for i := range ta.Plane {
				if ta.Plane[i] != tb.Plane[i] {
					t.Fatalf("tile (%d,%d) plane word %d differs", rb, cb, i)
				}
			}
		}
	}
}

// TestPlanSetWireRoundTrip proves AppendPlanSet → DecodePlanSet is
// exact across schemes with and without index-encoding fillers, and
// that decoding rejects truncated and oversized inputs.
func TestPlanSetWireRoundTrip(t *testing.T) {
	r := xrand.New(11)
	for trial := 0; trial < 10; trial++ {
		s, _, _, _ := randomStructure(r)
		for _, sc := range []Scheme{Baseline, Naive, ORC, WSS} {
			for _, idx := range []int{0, 3, 5} {
				ps := s.PlanSet(sc, idx)
				wire := AppendPlanSet(nil, ps)
				back, err := DecodePlanSet(wire, s.Layout)
				if err != nil {
					t.Fatalf("trial %d %v/%d: %v", trial, sc, idx, err)
				}
				comparePlanSets(t, ps, back, s.Layout)
				if _, err := DecodePlanSet(wire[:len(wire)-1], s.Layout); err == nil {
					t.Fatalf("trial %d: truncated plan set decoded", trial)
				}
				if _, err := DecodePlanSet(append(wire[:len(wire):len(wire)], 0), s.Layout); err == nil {
					t.Fatalf("trial %d: trailing byte accepted", trial)
				}
			}
		}
	}
}

// TestSeedPlanSetWins proves a seeded plan set is what the cache
// serves, and that seeding after a build is a harmless no-op.
func TestSeedPlanSetWins(t *testing.T) {
	r := xrand.New(23)
	s, _, _, _ := randomStructure(r)
	donor, _, _, _ := randomStructure(xrand.New(23)) // same RNG stream → identical layer
	ps := donor.PlanSet(ORC, 5)
	s.SeedPlanSet(ORC, 5, ps)
	if got := s.PlanSet(ORC, 5); got != ps {
		t.Fatal("cache did not serve the seeded plan set")
	}
	// Seeding an occupied key must not replace it.
	other := donor.PlanSet(ORC, 3)
	s.SeedPlanSet(ORC, 5, other)
	if got := s.PlanSet(ORC, 5); got != ps {
		t.Fatal("second seed displaced the first")
	}
}
