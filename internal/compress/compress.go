// Package compress implements the weight-compression schemes the paper
// evaluates (§4.1, §6, Figs. 8, 17, 20):
//
//	Baseline — no compression; every OU row executes.
//	Naive    — crossbar-row compression: a row is removed from a crossbar
//	           when all of its cells in that crossbar are zero.
//	ReCom    — weight-matrix-row compression [24]: a row is removed only
//	           when the entire logical matrix row (the same filter pixel
//	           across every filter) is zero.
//	ORC      — OU-row compression (the paper's scheme): per column-wise
//	           OU group, rows whose S_BL cells are all zero are removed;
//	           each group keeps its own delta-encoded input indexes
//	           (zero-padded to a bounded width, internal/index).
//	Ideal    — every zero cell removed (Fig. 20's upper bound).
//	SNrram   — filter-grained column compression [44] (Fig. 20 arrows).
//
// The package never materializes the cell matrix: it scans weight codes
// row by row and records, per (row block, column block, OU column group),
// a bitset of rows that carry at least one non-zero cell. Everything else
// — retained-row plans, compression ratios, index storage — derives from
// those bitsets.
package compress

import (
	"fmt"
	"sync"

	"sre/internal/bitset"
	"sre/internal/index"
	"sre/internal/mapping"
	"sre/internal/quant"
	"sre/internal/tensor"
	"sre/internal/xmath"
)

// Scheme selects a weight-compression policy.
type Scheme int

const (
	Baseline Scheme = iota
	Naive
	ReCom
	ORC
	Ideal
	// OCC is OU-column compression (§4.1, Fig. 8(c)). It has its own
	// structure type (OCCStructure) because it compresses along the other
	// axis; Plan rejects it.
	OCC
	// WSS is weight-bit-slice skipping (ROADMAP bit-slice item; SME
	// arXiv:2103.01705, Bit-Slice Sparsity arXiv:1909.08496): weights are
	// mapped slice-major, so each OU column group holds same-significance
	// cell slices of S_BL weights, and rows whose cells in that slice
	// group are all zero are skipped. An all-zero slice produces an empty
	// group — zero OUs, zero driven wordlines, no eDRAM fetch — which is
	// how high-order slices of magnitude-skewed weights vanish.
	WSS
)

func (s Scheme) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case Naive:
		return "naive"
	case ReCom:
		return "recom"
	case ORC:
		return "orc"
	case Ideal:
		return "ideal"
	case OCC:
		return "occ"
	case WSS:
		return "wss"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// ReordersInputs reports whether the scheme keeps a per-group row order
// different from the physical crossbar order, so the simulator must
// fetch each group's inputs separately from eDRAM (one fetch per group
// rather than one per tile). True for the per-group row-compressing
// schemes (ORC, WSS).
func (s Scheme) ReordersInputs() bool { return s == ORC || s == WSS }

// ComposesWithDOF reports whether the scheme can combine with Dynamic
// OU Formation. OCC compresses along the column axis, which conflicts
// with DOF's row regrouping (paper Fig. 10); every row-compressing
// scheme composes.
func (s Scheme) ComposesWithDOF() bool { return s != OCC }

// RequiresSlicePlanes reports whether the scheme needs the structure's
// weight-slice group planes (built by Build, carried by snapshots as a
// separate plane section). Only WSS reads them.
func (s Scheme) RequiresSlicePlanes() bool { return s == WSS }

// FetchGroups returns the per-batch eDRAM fetch count of one tile with
// the given total and non-empty OU column group counts. Input-order-
// preserving schemes fetch the batch once; ORC fetches once per group
// (its per-group row orders diverge — the Fig. 18 eDRAM effect); WSS
// additionally skips the fetches of groups whose weight bit slice is
// all zero (an empty group maps no OUs, so nothing reads the batch).
func (s Scheme) FetchGroups(groups, nonEmpty int) int {
	switch {
	case s == WSS:
		return nonEmpty
	case s.ReordersInputs():
		return groups
	default:
		return 1
	}
}

// Source supplies quantized weight magnitude codes row-major without
// materializing the decomposed cell matrix.
type Source interface {
	// Dims returns the logical matrix dimensions.
	Dims() (rows, cols int)
	// RowCodes fills dst (length cols) with row r's magnitude codes.
	RowCodes(r int, dst []uint32)
}

// FloatSource adapts a rank-2 float weight tensor, quantizing on the fly
// with a single per-tensor scale (as quant.QuantizeMatrix does).
type FloatSource struct {
	W     *tensor.Tensor
	WBits int
	scale float64
}

// NewFloatSource builds a FloatSource for w under p.
func NewFloatSource(w *tensor.Tensor, p quant.Params) *FloatSource {
	if len(w.Shape()) != 2 {
		panic("compress: FloatSource wants a rank-2 tensor")
	}
	return &FloatSource{W: w, WBits: p.WBits, scale: quant.ScaleFor(float64(w.MaxAbs()), p.WBits)}
}

func (f *FloatSource) Dims() (int, int) { return f.W.Dim(0), f.W.Dim(1) }

func (f *FloatSource) RowCodes(r int, dst []uint32) {
	cols := f.W.Dim(1)
	row := f.W.Data()[r*cols : (r+1)*cols]
	for c, v := range row {
		if v < 0 {
			v = -v
		}
		dst[c] = quant.QuantizeUnsigned(float64(v), f.WBits, f.scale)
	}
}

// CodeSource adapts an in-memory code matrix (used by the synthetic
// workload generator).
type CodeSource struct {
	Rows, Cols int
	Codes      []uint32
}

func (c *CodeSource) Dims() (int, int) { return c.Rows, c.Cols }

func (c *CodeSource) RowCodes(r int, dst []uint32) {
	copy(dst, c.Codes[r*c.Cols:(r+1)*c.Cols])
}

// Structure is the per-layer compression structure: for every OU column
// group of every crossbar tile, which rows carry non-zero cells.
type Structure struct {
	Layout mapping.Layout
	P      quant.Params
	// groups[rb][cb][g] has bit r set iff tile row r has a non-zero cell
	// in group g's columns.
	groups [][][]*bitset.Set
	// sliceGroups is the same shape under the slice-major (WSS) mapping,
	// where a weight's cell j lands at physical column j*cols + c instead
	// of c*cpw + j: group g then holds same-significance slices of S_BL
	// weights, and bit r is set iff tile row r has a non-zero cell in
	// that slice group. Nil when the structure was decoded from a source
	// without slice planes; WSS plans then cannot be built.
	sliceGroups [][][]*bitset.Set
	// nonZeroCells counts non-zero cells over the whole layer (Ideal).
	nonZeroCells int64
	// plans memoizes derived per-tile execution plans by
	// (scheme, indexBits) — see PlanSet.
	plans planCache
	// stats memoizes the CompressedCells/IndexStorageBits totals by the
	// same key — two int64s per key, so sweeps over many index widths
	// (ChooseIndexBits, Fig. 19) stay cheap without caching full plans.
	stats statsCache
}

// Build scans src and constructs the structure for geometry g under
// quantization p.
func Build(src Source, p quant.Params, g mapping.Geometry) *Structure {
	rows, cols := src.Dims()
	layout := mapping.NewLayout(rows, cols, p, g)
	s := &Structure{Layout: layout, P: p}
	s.groups = newGroupGrid(layout)
	s.sliceGroups = newGroupGrid(layout)
	cpw := p.CellsPerWeight()
	mask := uint32(1)<<uint(p.CellBits) - 1
	codes := make([]uint32, cols)
	for r := 0; r < rows; r++ {
		src.RowCodes(r, codes)
		rb := r / g.XbarRows
		tr := r % g.XbarRows
		for c, code := range codes {
			if code == 0 {
				continue
			}
			for j := 0; j < cpw; j++ {
				if code>>uint(j*p.CellBits)&mask == 0 {
					continue
				}
				s.nonZeroCells++
				pc := c*cpw + j
				cb := pc / g.XbarCols
				gi := (pc % g.XbarCols) / g.SBL
				s.groups[rb][cb][gi].Set(tr)
				// Slice-major mapping: same physical-column count, so the
				// tiling shape is identical; only the column index differs.
				smpc := j*cols + c
				scb := smpc / g.XbarCols
				sgi := (smpc % g.XbarCols) / g.SBL
				s.sliceGroups[rb][scb][sgi].Set(tr)
			}
		}
	}
	return s
}

// newGroupGrid allocates the per-(row block, column block, group) bitset
// grid both mappings share.
func newGroupGrid(layout mapping.Layout) [][][]*bitset.Set {
	grid := make([][][]*bitset.Set, layout.RowBlocks)
	for rb := range grid {
		grid[rb] = make([][]*bitset.Set, layout.ColBlocks)
		tileRows := layout.TileRows(rb)
		for cb := range grid[rb] {
			gs := make([]*bitset.Set, layout.GroupsInTile(cb))
			for gi := range gs {
				gs[gi] = bitset.New(tileRows)
			}
			grid[rb][cb] = gs
		}
	}
	return grid
}

// GroupNonZeroRows returns the bitset of rows with any non-zero cell in
// (rb, cb, gi). Callers must not mutate it.
func (s *Structure) GroupNonZeroRows(rb, cb, gi int) *bitset.Set {
	return s.groups[rb][cb][gi]
}

// HasSlicePlanes reports whether the structure carries the slice-major
// group planes WSS plans derive from. Always true for built structures;
// false only for structures decoded from a source without a slice-plane
// section.
func (s *Structure) HasSlicePlanes() bool { return s.sliceGroups != nil }

// SliceGroupNonZeroRows returns the bitset of rows with a non-zero cell
// in slice-major group (rb, cb, gi). Callers must not mutate it; panics
// when HasSlicePlanes is false.
func (s *Structure) SliceGroupNonZeroRows(rb, cb, gi int) *bitset.Set {
	return s.sliceGroups[rb][cb][gi]
}

// schemeGroups returns the group grid a scheme's plans derive from: the
// slice-major grid for WSS, the word-major grid otherwise.
func (s *Structure) schemeGroups(scheme Scheme) [][][]*bitset.Set {
	if scheme == WSS {
		if s.sliceGroups == nil {
			panic("compress: structure has no weight-slice planes (scheme wss)")
		}
		return s.sliceGroups
	}
	return s.groups
}

// TileNonZeroRows returns rows non-zero anywhere within tile (rb, cb) —
// the Naive crossbar-row criterion.
func (s *Structure) TileNonZeroRows(rb, cb int) *bitset.Set {
	out := bitset.New(s.Layout.TileRows(rb))
	for _, g := range s.groups[rb][cb] {
		g.Or(out, out)
	}
	return out
}

// BlockNonZeroRows returns rows non-zero anywhere in the whole logical
// matrix row (across every column block) — the ReCom criterion.
func (s *Structure) BlockNonZeroRows(rb int) *bitset.Set {
	out := bitset.New(s.Layout.TileRows(rb))
	for cb := range s.groups[rb] {
		for _, g := range s.groups[rb][cb] {
			g.Or(out, out)
		}
	}
	return out
}

// GroupPlan is the execution plan of one column-wise OU group under a
// compression scheme: the ordered tile-relative rows that remain mapped
// (fillers included), and the input-index storage it needs.
type GroupPlan struct {
	Rows        []int
	Fillers     int
	StorageBits int64
}

// RowCount returns the number of mapped rows (fillers included) — what
// cycle counts and compressed size derive from.
func (gp GroupPlan) RowCount() int { return len(gp.Rows) }

// Plan computes the retained rows of group (rb, cb, gi) under scheme.
// indexBits bounds the delta-encoded input indexes for schemes that
// reorder inputs (Naive, ReCom, ORC, WSS); pass 0 to disable zero-padding
// (unbounded indexes, each costing ceil(log2(XbarRows)) bits).
func (s *Structure) Plan(scheme Scheme, rb, cb, gi, indexBits int) GroupPlan {
	tileRows := s.Layout.TileRows(rb)
	var keep *bitset.Set
	switch scheme {
	case Baseline:
		all := make([]int, tileRows)
		for i := range all {
			all[i] = i
		}
		return GroupPlan{Rows: all}
	case Naive:
		keep = s.TileNonZeroRows(rb, cb)
	case ReCom:
		keep = s.BlockNonZeroRows(rb)
	case ORC, Ideal:
		keep = s.groups[rb][cb][gi]
	case WSS:
		keep = s.schemeGroups(WSS)[rb][cb][gi]
	default:
		panic("compress: Plan does not support scheme " + scheme.String())
	}
	rows := keep.Indices(nil)
	if scheme == Ideal {
		// Upper bound: no padding, no index cost accounted.
		return GroupPlan{Rows: rows}
	}
	if indexBits <= 0 {
		bits := xmath.CeilLog2(s.Layout.XbarRows)
		return GroupPlan{Rows: rows, StorageBits: int64(len(rows)) * int64(bits)}
	}
	enc, err := index.Encode(rows, indexBits)
	if err != nil {
		panic(err)
	}
	return GroupPlan{Rows: enc.Rows, Fillers: enc.Filler, StorageBits: enc.StorageBits()}
}

// storagePlanned totals mapped cells and index storage by calling Plan
// for every group. A scheme stores one index stream per tile's column
// group (ORC), per tile (Naive), or per row block (ReCom, shared by
// every tile in the block). It is the uncached reference the memoized
// count-only scan (computePlanStats) is tested against — production
// callers go through CompressedCells/IndexStorageBits, which never
// rebuild plans.
func (s *Structure) storagePlanned(scheme Scheme, indexBits int) (cells, storage int64) {
	for rb := range s.groups {
		recomCounted := false
		for cb := range s.groups[rb] {
			naiveCounted := false
			for gi := range s.groups[rb][cb] {
				gp := s.Plan(scheme, rb, cb, gi, indexBits)
				lo, hi := s.Layout.GroupCols(cb, gi)
				cells += int64(gp.RowCount()) * int64(hi-lo)
				switch scheme {
				case ORC, WSS:
					storage += gp.StorageBits
				case Naive:
					if !naiveCounted {
						storage += gp.StorageBits
						naiveCounted = true
					}
				case ReCom:
					if !recomCounted {
						storage += gp.StorageBits
						recomCounted = true
					}
				}
			}
		}
	}
	return cells, storage
}

// statsCache memoizes planStats per (scheme, indexBits). Entries are
// tiny (two int64s), so unlike the plan cache it can afford to keep
// every key an index-width sweep ever asks about.
type statsCache struct {
	mu sync.Mutex
	m  map[planKey]planStats
}

// planStats are the memoized per-(scheme, indexBits) totals: mapped
// cells, index storage, and the number of OU column groups with no
// retained rows at all (elided groups — for WSS these are the all-zero
// weight bit slices the mode skips).
type planStats struct{ cells, storage, emptyGroups int64 }

// planStatsFor returns the memoized storagePlanned totals, computing
// them once per key with the count-only scan. The per-Result ratio
// reporting (sre.RunContext) hits this for every mode of every run, so
// the recurring cost must be a map lookup, not a plan rebuild.
func (s *Structure) planStatsFor(scheme Scheme, indexBits int) planStats {
	if scheme == Baseline || scheme == Ideal || indexBits <= 0 {
		indexBits = 0 // Plan treats every non-positive width the same
	}
	key := planKey{scheme, indexBits}
	s.stats.mu.Lock()
	defer s.stats.mu.Unlock()
	if st, ok := s.stats.m[key]; ok {
		return st
	}
	st := s.computePlanStats(scheme, indexBits)
	if s.stats.m == nil {
		s.stats.m = make(map[planKey]planStats)
	}
	s.stats.m[key] = st
	return st
}

// computePlanStats reproduces storagePlanned's totals without
// materializing any plan: a keep set contributes only its retained-row
// count and (for bounded index widths) its filler count, which a
// set-bit walk yields directly. The Naive tile criterion and the ReCom
// block criterion are hoisted out of the per-group loop — their keep
// sets are shared — so this runs one bitset union per tile or block
// instead of one per group.
func (s *Structure) computePlanStats(scheme Scheme, indexBits int) planStats {
	lay := s.Layout
	absBits := int64(xmath.CeilLog2(lay.XbarRows))
	var st planStats
	for rb := range s.groups {
		tileRows := int64(lay.TileRows(rb))
		var blockRows, blockStorage int64
		if scheme == ReCom {
			blockRows, blockStorage = plannedRowTotals(s.BlockNonZeroRows(rb), scheme, indexBits, absBits)
		}
		recomCounted := false
		for cb := range s.groups[rb] {
			var tileKeepRows, tileStorage int64
			if scheme == Naive {
				tileKeepRows, tileStorage = plannedRowTotals(s.TileNonZeroRows(rb, cb), scheme, indexBits, absBits)
			}
			naiveCounted := false
			for gi := range s.groups[rb][cb] {
				lo, hi := lay.GroupCols(cb, gi)
				width := int64(hi - lo)
				var rows, storage int64
				switch scheme {
				case Baseline:
					rows = tileRows
				case Naive:
					rows, storage = tileKeepRows, tileStorage
				case ReCom:
					rows, storage = blockRows, blockStorage
				case ORC, Ideal:
					rows, storage = plannedRowTotals(s.groups[rb][cb][gi], scheme, indexBits, absBits)
				case WSS:
					rows, storage = plannedRowTotals(s.schemeGroups(WSS)[rb][cb][gi], scheme, indexBits, absBits)
				default:
					panic("compress: Plan does not support scheme " + scheme.String())
				}
				if rows == 0 {
					st.emptyGroups++
				}
				st.cells += rows * width
				switch scheme {
				case ORC, WSS:
					st.storage += storage
				case Naive:
					if !naiveCounted {
						st.storage += storage
						naiveCounted = true
					}
				case ReCom:
					if !recomCounted {
						st.storage += storage
						recomCounted = true
					}
				}
			}
		}
	}
	return st
}

// plannedRowTotals returns the mapped-row count (fillers included) and
// index storage of one keep set under Plan's encoding rules: Ideal pays
// no index cost, unbounded widths store one absolute index per retained
// row, and bounded widths insert a filler each time a gap exceeds the
// representable span (exactly index.Encode's loop) with every row —
// filler or retained — storing one code.
func plannedRowTotals(keep *bitset.Set, scheme Scheme, indexBits int, absBits int64) (rows, storage int64) {
	n := int64(keep.Count())
	if scheme == Ideal {
		return n, 0
	}
	if indexBits <= 0 {
		return n, n * absBits
	}
	span := 1 << uint(indexBits)
	var fillers int64
	prev := -1
	for i := keep.NextSet(0); i >= 0; i = keep.NextSet(i + 1) {
		if gap := i - prev; gap > span {
			fillers += int64((gap - 1) / span)
		}
		prev = i
	}
	total := n + fillers
	return total, total * int64(indexBits)
}

// CompressedCells returns the mapped cell count under scheme (fillers
// included) — the denominator of the Fig. 20 compression ratio. Totals
// are memoized per (scheme, indexBits), so per-run ratio reporting
// costs a map lookup after the first call.
func (s *Structure) CompressedCells(scheme Scheme, indexBits int) int64 {
	if scheme == Ideal {
		return s.nonZeroCells
	}
	return s.planStatsFor(scheme, indexBits).cells
}

// CompressionRatio returns originalCells / compressedCells (≥ 1).
func (s *Structure) CompressionRatio(scheme Scheme, indexBits int) float64 {
	comp := s.CompressedCells(scheme, indexBits)
	if comp == 0 {
		comp = 1
	}
	return float64(s.Layout.TotalCells()) / float64(comp)
}

// IndexStorageBits returns the total input-index storage the scheme needs
// (Fig. 19 for ORC), memoized like CompressedCells.
func (s *Structure) IndexStorageBits(scheme Scheme, indexBits int) int64 {
	return s.planStatsFor(scheme, indexBits).storage
}

// EmptyGroups returns the number of OU column groups the scheme retains
// no rows for — groups the simulator elides entirely (no OUs, no driven
// wordlines, no eDRAM fetch). Under WSS these are the all-zero weight
// bit slices; memoized like CompressedCells.
func (s *Structure) EmptyGroups(scheme Scheme, indexBits int) int64 {
	return s.planStatsFor(scheme, indexBits).emptyGroups
}

// SizeBytes estimates the structure's resident memory: the per-group
// non-zero-row masks (the dominant owned allocation — exactly the words
// the snapshot plane persists) plus per-group bitset headers and a
// fixed bookkeeping constant. The derived plan/stat memos are not
// walked; they are bounded by the same group geometry and fold into the
// constant. The serve-layer registry uses this estimate for its
// byte-bounded LRU accounting, so it only needs to order networks by
// footprint, not be exact.
func (s *Structure) SizeBytes() int64 {
	lay := s.Layout
	groupsPerRow := 0
	for cb := 0; cb < lay.ColBlocks; cb++ {
		groupsPerRow += lay.GroupsInTile(cb)
	}
	groups := int64(groupsPerRow) * int64(lay.RowBlocks)
	planes := int64(1)
	if s.sliceGroups != nil {
		planes = 2 // the slice-major grid doubles the owned mask words
	}
	return planes*(int64(s.PlaneWords())*8+groups*48) + 512
}

// AbsoluteIndexBits returns the storage needed if absolute (non-delta)
// indexes were kept instead — the ~4 MB comparison point the paper gives
// for ResNet-50 (§7.2).
func (s *Structure) AbsoluteIndexBits() int64 {
	bits := int64(xmath.CeilLog2(s.Layout.XbarRows))
	var total int64
	for rb := range s.groups {
		for cb := range s.groups[rb] {
			for gi := range s.groups[rb][cb] {
				total += int64(s.groups[rb][cb][gi].Count()) * bits
			}
		}
	}
	return total
}

// ChooseIndexBits implements the paper's §6 policy: the minimum index
// width whose zero-padding loses less than lossFrac (10 %) of the
// unpadded ORC compression ratio.
func (s *Structure) ChooseIndexBits(lossFrac float64) int {
	ref := s.CompressionRatio(ORC, 0)
	maxBits := xmath.CeilLog2(s.Layout.XbarRows)
	for bits := 1; bits < maxBits; bits++ {
		if s.CompressionRatio(ORC, bits) >= ref*(1-lossFrac) {
			return bits
		}
	}
	return maxBits
}

// SNrramCompressedCells models SNrram's [44] filter-grained column
// compression: each logical column splits into segments of segRows rows
// (filter height × width for conv layers; 1 for FC), and all-zero
// segments are removed. Works at weight granularity, matching the
// model-based scheme it mimics.
func SNrramCompressedCells(src Source, p quant.Params, segRows int) int64 {
	rows, cols := src.Dims()
	if segRows <= 0 {
		segRows = 1
	}
	cpw := int64(p.CellsPerWeight())
	// segNonZero[c] tracks whether the current segment of column c has a
	// non-zero weight.
	segNonZero := make([]bool, cols)
	var kept int64
	codes := make([]uint32, cols)
	flush := func(rowsInSeg int) {
		for c := range segNonZero {
			if segNonZero[c] {
				kept += int64(rowsInSeg) * cpw
				segNonZero[c] = false
			}
		}
	}
	inSeg := 0
	for r := 0; r < rows; r++ {
		src.RowCodes(r, codes)
		for c, code := range codes {
			if code != 0 {
				segNonZero[c] = true
			}
		}
		inSeg++
		if inSeg == segRows {
			flush(inSeg)
			inSeg = 0
		}
	}
	if inSeg > 0 {
		flush(inSeg)
	}
	return kept
}
