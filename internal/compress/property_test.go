package compress

import (
	"testing"

	"sre/internal/mapping"
	"sre/internal/quant"
	"sre/internal/xrand"
)

// bruteGroupNonZero recomputes a group's non-zero rows directly from the
// decomposed cells, independently of Build's streaming implementation.
func bruteGroupNonZero(codes *CodeSource, p quant.Params, g mapping.Geometry, rb, cb, gi int) map[int]bool {
	lay := mapping.NewLayout(codes.Rows, codes.Cols, p, g)
	loRel, hiRel := lay.GroupCols(cb, gi)
	lo := cb*g.XbarCols + loRel
	hi := cb*g.XbarCols + hiRel
	cpw := p.CellsPerWeight()
	mask := uint32(1)<<uint(p.CellBits) - 1
	out := map[int]bool{}
	for r := rb * g.XbarRows; r < (rb+1)*g.XbarRows && r < codes.Rows; r++ {
		for pc := lo; pc < hi; pc++ {
			c, j := pc/cpw, pc%cpw
			if codes.Codes[r*codes.Cols+c]>>uint(j*p.CellBits)&mask != 0 {
				out[r%g.XbarRows] = true
				break
			}
		}
	}
	return out
}

// TestBuildMatchesBruteForce validates the streaming structure builder
// against a direct cell-by-cell recomputation on randomized layers,
// geometries, and quantizations.
func TestBuildMatchesBruteForce(t *testing.T) {
	r := xrand.New(42)
	params := []quant.Params{
		{WBits: 4, ABits: 4, CellBits: 2, DACBits: 1},
		{WBits: 16, ABits: 16, CellBits: 2, DACBits: 1},
		{WBits: 8, ABits: 8, CellBits: 4, DACBits: 1},
		{WBits: 8, ABits: 8, CellBits: 8, DACBits: 1},
	}
	for trial := 0; trial < 12; trial++ {
		p := params[trial%len(params)]
		rows := 1 + r.Intn(70)
		cols := 1 + r.Intn(12)
		codes := &CodeSource{Rows: rows, Cols: cols, Codes: make([]uint32, rows*cols)}
		for i := range codes.Codes {
			if !r.Bernoulli(0.5) {
				codes.Codes[i] = uint32(r.Intn(1 << uint(p.WBits)))
			}
		}
		g := mapping.Geometry{
			XbarRows: 8 + r.Intn(40),
			XbarCols: 4 * (1 + r.Intn(10)),
			SWL:      1 + r.Intn(8),
		}
		g.SBL = 1 + r.Intn(g.XbarCols)
		s := Build(codes, p, g)
		lay := s.Layout
		for rb := 0; rb < lay.RowBlocks; rb++ {
			for cb := 0; cb < lay.ColBlocks; cb++ {
				for gi := 0; gi < lay.GroupsInTile(cb); gi++ {
					want := bruteGroupNonZero(codes, p, g, rb, cb, gi)
					got := s.GroupNonZeroRows(rb, cb, gi)
					if got.Count() != len(want) {
						t.Fatalf("trial %d (%d,%d,%d): %d rows, want %d",
							trial, rb, cb, gi, got.Count(), len(want))
					}
					for row := range want {
						if !got.Test(row) {
							t.Fatalf("trial %d: row %d missing from group (%d,%d,%d)",
								trial, row, rb, cb, gi)
						}
					}
				}
			}
		}
		// Cross-check Ideal cell count against direct counting.
		var wantIdeal int64
		mask := uint32(1)<<uint(p.CellBits) - 1
		for _, code := range codes.Codes {
			for j := 0; j < p.CellsPerWeight(); j++ {
				if code>>uint(j*p.CellBits)&mask != 0 {
					wantIdeal++
				}
			}
		}
		if got := s.CompressedCells(Ideal, 0); got != wantIdeal {
			t.Fatalf("trial %d: ideal cells %d, want %d", trial, got, wantIdeal)
		}
	}
}

// TestPlanInvariants checks structural invariants of every scheme's plan
// on random structures: rows ascending and within the tile; ORC keeps a
// subset of Naive's rows, which keeps a subset of ReCom's (per column
// block); Baseline keeps everything.
func TestPlanInvariants(t *testing.T) {
	r := xrand.New(7)
	p := quant.Default()
	for trial := 0; trial < 6; trial++ {
		rows := 64 + r.Intn(200)
		cols := 8 + r.Intn(24)
		codes := &CodeSource{Rows: rows, Cols: cols, Codes: make([]uint32, rows*cols)}
		for i := range codes.Codes {
			if !r.Bernoulli(0.7) {
				codes.Codes[i] = uint32(1 + r.Intn(1<<16-1))
			}
		}
		g := mapping.Default()
		s := Build(codes, p, g)
		lay := s.Layout
		for rb := 0; rb < lay.RowBlocks; rb++ {
			tileRows := lay.TileRows(rb)
			for cb := 0; cb < lay.ColBlocks; cb++ {
				for gi := 0; gi < lay.GroupsInTile(cb); gi++ {
					plans := map[Scheme]GroupPlan{}
					for _, sc := range []Scheme{Baseline, Naive, ReCom, ORC} {
						gp := s.Plan(sc, rb, cb, gi, 0)
						plans[sc] = gp
						for i, row := range gp.Rows {
							if row < 0 || row >= tileRows {
								t.Fatalf("%v: row %d outside tile", sc, row)
							}
							if i > 0 && gp.Rows[i-1] >= row {
								t.Fatalf("%v: rows not ascending", sc)
							}
						}
					}
					if len(plans[Baseline].Rows) != tileRows {
						t.Fatal("baseline must keep every row")
					}
					if !subset(plans[ORC].Rows, plans[Naive].Rows) {
						t.Fatal("ORC must keep a subset of Naive's rows")
					}
					if !subset(plans[Naive].Rows, plans[ReCom].Rows) {
						t.Fatal("Naive must keep a subset of ReCom's rows")
					}
				}
			}
		}
	}
}

func subset(a, b []int) bool {
	set := map[int]bool{}
	for _, v := range b {
		set[v] = true
	}
	for _, v := range a {
		if !set[v] {
			return false
		}
	}
	return true
}

// TestPaddingRowsAreValid: zero-padding fillers must stay inside the
// tile and keep the row list strictly ascending.
func TestPaddingRowsAreValid(t *testing.T) {
	r := xrand.New(11)
	p := quant.Default()
	codes := &CodeSource{Rows: 256, Cols: 16, Codes: make([]uint32, 256*16)}
	for i := range codes.Codes {
		if r.Bernoulli(0.04) {
			codes.Codes[i] = uint32(1 + r.Intn(1<<16-1))
		}
	}
	s := Build(codes, p, mapping.Default())
	lay := s.Layout
	for _, bits := range []int{1, 2, 3, 5} {
		for rb := 0; rb < lay.RowBlocks; rb++ {
			tileRows := lay.TileRows(rb)
			for cb := 0; cb < lay.ColBlocks; cb++ {
				for gi := 0; gi < lay.GroupsInTile(cb); gi++ {
					gp := s.Plan(ORC, rb, cb, gi, bits)
					for i, row := range gp.Rows {
						if row < 0 || row >= tileRows {
							t.Fatalf("bits=%d: filler row %d outside tile of %d", bits, row, tileRows)
						}
						if i > 0 && gp.Rows[i-1] >= row {
							t.Fatalf("bits=%d: padded rows not ascending", bits)
						}
					}
					if gp.Fillers > len(gp.Rows) {
						t.Fatal("filler count exceeds rows")
					}
				}
			}
		}
	}
}
