package compress

import (
	"math"
	"testing"

	"sre/internal/mapping"
	"sre/internal/quant"
	"sre/internal/tensor"
	"sre/internal/xrand"
)

// oneCell is a quantization where each weight is one cell — handy for
// tests that reason at weight granularity.
var oneCell = quant.Params{WBits: 4, ABits: 4, CellBits: 4, DACBits: 1}

func codeSource(rows, cols int, vals []uint32) *CodeSource {
	if len(vals) != rows*cols {
		panic("bad test matrix")
	}
	return &CodeSource{Rows: rows, Cols: cols, Codes: vals}
}

// TestFigure8ORCExample reproduces Fig. 8(b): a 4×4 crossbar with 2×2
// OUs where OU1's 2nd row, OU2's 1st row, OU3's 1st row and OU4's 2nd
// row are zero. ORC must retain rows {0,3} for the left column group and
// {1,2} for the right one, while no full crossbar row is removable.
func TestFigure8ORCExample(t *testing.T) {
	src := codeSource(4, 4, []uint32{
		1, 2, 0, 0, // row 0: zero in right group (OU3 1st row)
		0, 0, 3, 1, // row 1: zero in left group (OU1 2nd row)
		0, 0, 2, 2, // row 2: zero in left group (OU2 1st row)
		2, 1, 0, 0, // row 3: zero in right group (OU4 2nd row)
	})
	g := mapping.Geometry{XbarRows: 4, XbarCols: 4, SWL: 2, SBL: 2}
	s := Build(src, oneCell, g)

	left := s.Plan(ORC, 0, 0, 0, 0)
	right := s.Plan(ORC, 0, 0, 1, 0)
	if len(left.Rows) != 2 || left.Rows[0] != 0 || left.Rows[1] != 3 {
		t.Fatalf("left group rows = %v, want [0 3]", left.Rows)
	}
	if len(right.Rows) != 2 || right.Rows[0] != 1 || right.Rows[1] != 2 {
		t.Fatalf("right group rows = %v, want [1 2]", right.Rows)
	}
	// No crossbar row is fully zero, so Naive and ReCom remove nothing.
	naive := s.Plan(Naive, 0, 0, 0, 0)
	if len(naive.Rows) != 4 {
		t.Fatalf("naive rows = %v, want all 4", naive.Rows)
	}
	recom := s.Plan(ReCom, 0, 0, 0, 0)
	if len(recom.Rows) != 4 {
		t.Fatalf("recom rows = %v, want all 4", recom.Rows)
	}
	// ORC halves the mapped cells: 8 OU-rows of 2 cells → 4 rows of 2.
	if got := s.CompressionRatio(ORC, 0); math.Abs(got-2) > 1e-12 {
		t.Fatalf("ORC ratio = %v, want 2", got)
	}
}

// TestNaiveFinerThanReCom reproduces the §7.1 observation: a crossbar row
// can be all-zero while its weight-matrix row is not (the row spans
// several crossbars), so Naive removes at least as much as ReCom.
func TestNaiveFinerThanReCom(t *testing.T) {
	// 2 rows × 8 cols, crossbar width 4 → two column blocks. Row 0 is
	// zero in block 0 but non-zero in block 1.
	src := codeSource(2, 8, []uint32{
		0, 0, 0, 0, 5, 0, 0, 0,
		1, 0, 0, 0, 0, 0, 0, 2,
	})
	g := mapping.Geometry{XbarRows: 4, XbarCols: 4, SWL: 2, SBL: 2}
	s := Build(src, oneCell, g)
	naiveB0 := s.Plan(Naive, 0, 0, 0, 0)
	if len(naiveB0.Rows) != 1 || naiveB0.Rows[0] != 1 {
		t.Fatalf("naive block0 rows = %v, want [1]", naiveB0.Rows)
	}
	recomB0 := s.Plan(ReCom, 0, 0, 0, 0)
	if len(recomB0.Rows) != 2 {
		t.Fatalf("recom block0 rows = %v, want both", recomB0.Rows)
	}
	if s.CompressionRatio(Naive, 0) <= s.CompressionRatio(ReCom, 0) {
		t.Fatal("naive must compress at least as well as ReCom here")
	}
}

func TestBaselinePlanKeepsEverything(t *testing.T) {
	src := codeSource(3, 2, []uint32{0, 0, 0, 0, 0, 0})
	g := mapping.Geometry{XbarRows: 4, XbarCols: 4, SWL: 2, SBL: 2}
	s := Build(src, oneCell, g)
	p := s.Plan(Baseline, 0, 0, 0, 0)
	if len(p.Rows) != 3 || p.StorageBits != 0 {
		t.Fatalf("baseline plan = %+v", p)
	}
	if s.CompressionRatio(Baseline, 0) != 1 {
		t.Fatal("baseline ratio must be 1")
	}
}

// TestBitLevelGroupDetection: with multi-cell weights, a group covering
// only the high cells of a small-magnitude weight must see zero rows even
// though the weight itself is non-zero.
func TestBitLevelGroupDetection(t *testing.T) {
	// 4-bit weights, 2-bit cells → 2 cells per weight. Weight code 3 =
	// 0b0011 has a non-zero low cell and a zero high cell.
	p := quant.Params{WBits: 4, ABits: 4, CellBits: 2, DACBits: 1}
	src := codeSource(2, 1, []uint32{3, 3})
	g := mapping.Geometry{XbarRows: 2, XbarCols: 2, SWL: 2, SBL: 1}
	s := Build(src, p, g)
	low := s.GroupNonZeroRows(0, 0, 0)
	high := s.GroupNonZeroRows(0, 0, 1)
	if low.Count() != 2 {
		t.Fatalf("low-cell group rows = %d, want 2", low.Count())
	}
	if high.Count() != 0 {
		t.Fatalf("high-cell group rows = %d, want 0 (bit-level sparsity)", high.Count())
	}
}

func TestSchemeOrderingOnRandomSSLMatrix(t *testing.T) {
	r := xrand.New(1)
	w := tensor.New(256, 64)
	for i := range w.Data() {
		w.Data()[i] = float32(r.NormFloat64())
	}
	// SSL-like structure: zero 60% of rows entirely, then 40% of the rest.
	for row := 0; row < 256; row++ {
		if r.Bernoulli(0.6) {
			for c := 0; c < 64; c++ {
				w.Set(0, row, c)
			}
		}
	}
	for i := range w.Data() {
		if r.Bernoulli(0.4) {
			w.Data()[i] = 0
		}
	}
	p := quant.Default()
	s := Build(NewFloatSource(w, p), p, mapping.Default())
	ideal := s.CompressionRatio(Ideal, 0)
	orc := s.CompressionRatio(ORC, 0)
	naive := s.CompressionRatio(Naive, 0)
	recom := s.CompressionRatio(ReCom, 0)
	if !(ideal >= orc && orc >= naive && naive >= recom && recom >= 1) {
		t.Fatalf("ordering violated: ideal %v orc %v naive %v recom %v", ideal, orc, naive, recom)
	}
	if orc < 2 {
		t.Fatalf("ORC ratio %v suspiciously low for this structure", orc)
	}
}

func TestSmallerOUCompressesMore(t *testing.T) {
	r := xrand.New(2)
	w := tensor.New(128, 32)
	for i := range w.Data() {
		if r.Bernoulli(0.3) {
			w.Data()[i] = float32(r.NormFloat64())
		}
	}
	p := quant.Default()
	prev := -1.0
	for _, ou := range []int{128, 64, 32, 16, 8, 4, 2} {
		g := mapping.Default().WithOU(ou)
		s := Build(NewFloatSource(w, p), p, g)
		ratio := s.CompressionRatio(ORC, 0)
		if prev > 0 && ratio < prev-1e-9 {
			t.Fatalf("ratio decreased at OU %d: %v < %v", ou, ratio, prev)
		}
		prev = ratio
	}
}

func TestZeroPaddingCostsCompression(t *testing.T) {
	r := xrand.New(3)
	w := tensor.New(256, 16)
	for i := range w.Data() {
		if r.Bernoulli(0.05) { // very sparse → long gaps → padding matters
			w.Data()[i] = 1
		}
	}
	p := quant.Default()
	s := Build(NewFloatSource(w, p), p, mapping.Default())
	unpadded := s.CompressionRatio(ORC, 0)
	padded2 := s.CompressionRatio(ORC, 2)
	padded5 := s.CompressionRatio(ORC, 5)
	if padded2 > unpadded || padded5 > unpadded {
		t.Fatal("padding cannot improve the ratio")
	}
	if padded2 > padded5 {
		t.Fatal("narrower codes must pad at least as much")
	}
	// But narrower codes store fewer bits per index... per entry; total
	// storage tradeoff is what ChooseIndexBits balances.
	bits := s.ChooseIndexBits(0.1)
	if bits < 1 || bits > 7 {
		t.Fatalf("ChooseIndexBits = %d", bits)
	}
	if s.CompressionRatio(ORC, bits) < unpadded*0.9-1e-9 {
		t.Fatal("chosen bits lose more than 10% of the ratio")
	}
}

func TestIndexStorageAccounting(t *testing.T) {
	src := codeSource(4, 4, []uint32{
		1, 2, 0, 0,
		0, 0, 3, 1,
		0, 0, 2, 2,
		2, 1, 0, 0,
	})
	g := mapping.Geometry{XbarRows: 4, XbarCols: 4, SWL: 2, SBL: 2}
	s := Build(src, oneCell, g)
	// ORC with 3-bit indexes: 2 groups × 2 entries × 3 bits.
	if got := s.IndexStorageBits(ORC, 3); got != 12 {
		t.Fatalf("ORC storage = %d bits, want 12", got)
	}
	// Naive: one stream per tile: 4 entries × 3 bits (nothing removed).
	if got := s.IndexStorageBits(Naive, 3); got != 12 {
		t.Fatalf("naive storage = %d bits, want 12", got)
	}
	// Absolute indexes: every non-zero group row × log2(4) bits = 4·2·... :
	// group0 has rows {0,3}, group1 {1,2} → 4 rows × 2 bits = 8.
	if got := s.AbsoluteIndexBits(); got != 8 {
		t.Fatalf("absolute storage = %d bits, want 8", got)
	}
}

func TestDeltaBeatsAbsoluteOnSparseLayers(t *testing.T) {
	r := xrand.New(4)
	w := tensor.New(512, 64)
	for i := range w.Data() {
		if r.Bernoulli(0.15) {
			w.Data()[i] = 1
		}
	}
	p := quant.Default()
	s := Build(NewFloatSource(w, p), p, mapping.Default())
	bits := s.ChooseIndexBits(0.1)
	delta := s.IndexStorageBits(ORC, bits)
	abs := s.AbsoluteIndexBits()
	if delta >= abs {
		t.Fatalf("delta (%d bits) should beat absolute (%d bits)", delta, abs)
	}
}

func TestSNrramCompressedCells(t *testing.T) {
	// 4 rows × 2 cols, segments of 2 rows. Column 0 has a zero first
	// segment; column 1 is dense.
	src := codeSource(4, 2, []uint32{
		0, 1,
		0, 2,
		3, 1,
		0, 2,
	})
	got := SNrramCompressedCells(src, oneCell, 2)
	// Kept segments: col0 seg1 (2 rows) + col1 both segs (4 rows) = 6
	// weights × 1 cell.
	if got != 6 {
		t.Fatalf("SNrram kept %d cells, want 6", got)
	}
	// Ragged tail: 3 rows with segRows 2 → final 1-row segment.
	src2 := codeSource(3, 1, []uint32{0, 0, 7})
	if got := SNrramCompressedCells(src2, oneCell, 2); got != 1 {
		t.Fatalf("ragged SNrram kept %d, want 1", got)
	}
}

func TestFloatSourceQuantization(t *testing.T) {
	w := tensor.New(2, 2)
	w.Set(1, 0, 0)
	w.Set(-0.5, 1, 1)
	fs := NewFloatSource(w, quant.Default())
	dst := make([]uint32, 2)
	fs.RowCodes(0, dst)
	if dst[0] != 65535 || dst[1] != 0 {
		t.Fatalf("row 0 codes = %v", dst)
	}
	fs.RowCodes(1, dst)
	if dst[0] != 0 || dst[1] == 0 {
		t.Fatalf("row 1 codes = %v (negative weights keep magnitude)", dst)
	}
}

func BenchmarkBuildStructure(b *testing.B) {
	// A VGG-16 mid-layer: 4608×512 weights at 70% sparsity.
	r := xrand.New(1)
	w := tensor.New(4608, 512)
	for i := range w.Data() {
		if !r.Bernoulli(0.7) {
			w.Data()[i] = float32(r.NormFloat64())
		}
	}
	p := quant.Default()
	src := NewFloatSource(w, p)
	g := mapping.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(src, p, g)
	}
}

func BenchmarkPlanORC(b *testing.B) {
	r := xrand.New(2)
	w := tensor.New(512, 64)
	for i := range w.Data() {
		if !r.Bernoulli(0.8) {
			w.Data()[i] = float32(r.NormFloat64())
		}
	}
	p := quant.Default()
	s := Build(NewFloatSource(w, p), p, mapping.Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for rb := 0; rb < s.Layout.RowBlocks; rb++ {
			for cb := 0; cb < s.Layout.ColBlocks; cb++ {
				for gi := 0; gi < s.Layout.GroupsInTile(cb); gi++ {
					_ = s.Plan(ORC, rb, cb, gi, 5)
				}
			}
		}
	}
}
