package compress

import (
	"sync"
	"testing"

	"sre/internal/bitset"
	"sre/internal/mapping"
	"sre/internal/quant"
	"sre/internal/xmath"
	"sre/internal/xrand"
)

func cacheTestStructure(t *testing.T) *Structure {
	t.Helper()
	p := quant.Params{WBits: 4, ABits: 4, CellBits: 2, DACBits: 1}
	g := mapping.Geometry{XbarRows: 32, XbarCols: 16, SWL: 4, SBL: 4}
	r := xrand.New(3)
	rows, cols := 70, 11 // multiple row and column blocks, ragged edges
	codes := make([]uint32, rows*cols)
	for i := range codes {
		if !r.Bernoulli(0.6) {
			codes[i] = uint32(r.Intn(16))
		}
	}
	return Build(&CodeSource{Rows: rows, Cols: cols, Codes: codes}, p, g)
}

// TestPlanSetMatchesPlan checks every cached field against the direct
// Plan computation for every scheme the cache serves.
func TestPlanSetMatchesPlan(t *testing.T) {
	s := cacheTestStructure(t)
	lay := s.Layout
	for _, scheme := range []Scheme{Baseline, Naive, ReCom, ORC, Ideal, WSS} {
		indexBits := 3
		ps := s.PlanSet(scheme, indexBits)
		if len(ps.Tiles) != lay.RowBlocks || len(ps.Tiles[0]) != lay.ColBlocks {
			t.Fatalf("%v: tile grid %dx%d", scheme, len(ps.Tiles), len(ps.Tiles[0]))
		}
		for rb := 0; rb < lay.RowBlocks; rb++ {
			tileRows := lay.TileRows(rb)
			for cb := 0; cb < lay.ColBlocks; cb++ {
				tp := ps.Tile(rb, cb)
				if tp.Groups != lay.GroupsInTile(cb) || tp.Words != bitset.Words64(tileRows) {
					t.Fatalf("%v tile (%d,%d): groups/words wrong", scheme, rb, cb)
				}
				if scheme == Baseline {
					// Baseline keeps every row in every group; the cache
					// stores that virtually instead of materializing
					// Groups identical full planes.
					if !tp.AllRows || tp.TileRows != tileRows {
						t.Fatalf("Baseline tile (%d,%d): AllRows=%v TileRows=%d, want true/%d",
							rb, cb, tp.AllRows, tp.TileRows, tileRows)
					}
					if tp.GroupRows != nil || tp.Plane != nil {
						t.Fatalf("Baseline tile (%d,%d): expected virtual plans, got materialized rows", rb, cb)
					}
					plan := s.Plan(Baseline, rb, cb, 0, 0)
					wantRows := int64(tp.Groups) * int64(len(plan.Rows))
					wantOUs := int64(tp.Groups) * int64(xmath.CeilDiv(len(plan.Rows), lay.SWL))
					if tp.RowCount != wantRows || tp.OUs != wantOUs {
						t.Fatalf("Baseline tile (%d,%d): static counts %d/%d want %d/%d",
							rb, cb, tp.RowCount, tp.OUs, wantRows, wantOUs)
					}
					continue
				}
				if tp.AllRows {
					t.Fatalf("%v tile (%d,%d): AllRows set for a non-Baseline scheme", scheme, rb, cb)
				}
				var wantRows, wantOUs int64
				for gi := 0; gi < tp.Groups; gi++ {
					// Baseline/Ideal normalize the key to indexBits 0.
					wantBits := indexBits
					if scheme == Baseline || scheme == Ideal {
						wantBits = 0
					}
					plan := s.Plan(scheme, rb, cb, gi, wantBits)
					if len(plan.Rows) != len(tp.GroupRows[gi]) {
						t.Fatalf("%v tile (%d,%d) group %d: cached %d rows, plan %d",
							scheme, rb, cb, gi, len(tp.GroupRows[gi]), len(plan.Rows))
					}
					mask := bitset.New(tileRows)
					for i, r := range plan.Rows {
						if tp.GroupRows[gi][i] != r {
							t.Fatalf("%v tile (%d,%d) group %d: row order differs", scheme, rb, cb, gi)
						}
						mask.Set(r)
					}
					gw := tp.Plane[gi*tp.Words : (gi+1)*tp.Words]
					for w := range gw {
						if gw[w] != mask.Words()[w] {
							t.Fatalf("%v tile (%d,%d) group %d: plane word %d mismatch", scheme, rb, cb, gi, w)
						}
					}
					wantRows += int64(len(plan.Rows))
					wantOUs += int64(xmath.CeilDiv(len(plan.Rows), lay.SWL))
				}
				if tp.RowCount != wantRows || tp.OUs != wantOUs {
					t.Fatalf("%v tile (%d,%d): static counts %d/%d want %d/%d",
						scheme, rb, cb, tp.RowCount, tp.OUs, wantRows, wantOUs)
				}
			}
		}
	}
}

// TestPlanSetMemoizes checks identity reuse per key, distinct sets per
// distinct key, and the Baseline indexBits normalization.
func TestPlanSetMemoizes(t *testing.T) {
	s := cacheTestStructure(t)
	a := s.PlanSet(ORC, 3)
	if s.PlanSet(ORC, 3) != a {
		t.Fatal("same key must return the cached PlanSet")
	}
	if s.PlanSet(ORC, 4) == a {
		t.Fatal("different index width must build a different PlanSet")
	}
	if s.PlanSet(Baseline, 3) != s.PlanSet(Baseline, 0) {
		t.Fatal("Baseline must normalize indexBits")
	}
}

// TestPlanSetConcurrent hammers one Structure from many goroutines the
// way RunAll's modes do; run under -race this is the cache's safety
// proof.
func TestPlanSetConcurrent(t *testing.T) {
	s := cacheTestStructure(t)
	schemes := []Scheme{Baseline, Naive, ReCom, ORC}
	var wg sync.WaitGroup
	results := make([]*PlanSet, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.PlanSet(schemes[i%len(schemes)], 3)
		}(i)
	}
	wg.Wait()
	for i := range results {
		if results[i] != s.PlanSet(schemes[i%len(schemes)], 3) {
			t.Fatal("concurrent PlanSet returned a non-cached instance")
		}
	}
}

func TestPlanSetRejectsOCC(t *testing.T) {
	s := cacheTestStructure(t)
	defer func() {
		if recover() == nil {
			t.Fatal("PlanSet must reject OCC")
		}
	}()
	s.PlanSet(OCC, 3)
}

// TestPlanStatsMatchStoragePlanned cross-checks the memoized count-only
// CompressedCells/IndexStorageBits path against the uncached
// storagePlanned reference (which rebuilds every plan through Plan),
// for every scheme across several index widths.
func TestPlanStatsMatchStoragePlanned(t *testing.T) {
	s := cacheTestStructure(t)
	for _, scheme := range []Scheme{Baseline, Naive, ReCom, ORC, Ideal, WSS} {
		for _, bits := range []int{0, 1, 2, 3, 5} {
			wantCells, wantStorage := s.storagePlanned(scheme, bits)
			gotCells := s.CompressedCells(scheme, bits)
			if scheme == Ideal {
				// CompressedCells keeps the Ideal shortcut (exact non-zero
				// cells, no retained-row rounding); compare the scan itself.
				gotCells = s.planStatsFor(scheme, bits).cells
			}
			gotStorage := s.IndexStorageBits(scheme, bits)
			if gotCells != wantCells || gotStorage != wantStorage {
				t.Fatalf("%v bits=%d: stats %d/%d, storagePlanned %d/%d",
					scheme, bits, gotCells, gotStorage, wantCells, wantStorage)
			}
		}
	}
}
