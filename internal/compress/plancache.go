// Plan caching: a Structure memoizes, per (scheme, indexBits), the
// fully-derived execution state of every crossbar tile — retained-row
// plans, the word-plane flattening of the per-group row bitsets, and
// the static OU/wordline counts the simulator's scheduling needs.
// Before this cache the simulator rebuilt identical plans (including
// the delta-index encoding) on every SimulateLayer call, once per mode per
// RunAll sweep; now each distinct key is built exactly once per
// Structure, concurrently-safe, and shared read-only by every mode and
// worker.
package compress

import (
	"sync"

	"sre/internal/bitset"
	"sre/internal/index"
	"sre/internal/metrics"
	"sre/internal/xmath"
)

// TilePlans is the cached execution state of one (rb, cb) tile under
// one (scheme, indexBits) key. All fields are read-only after build.
type TilePlans struct {
	// GroupRows lists, per OU column group, the ordered tile-relative
	// retained rows (zero-padding fillers included).
	GroupRows [][]int
	// Plane is the structure-of-arrays word flattening of the per-group
	// retained-row bitsets: group g occupies words [g*Words:(g+1)*Words].
	Plane []uint64
	// Words is the word count of one group's row mask.
	Words int
	// Groups is len(GroupRows) (the plane's group count).
	Groups int
	// RowCount is Σ_g len(GroupRows[g]) — the per-slice driven-wordline
	// count when every retained row executes.
	RowCount int64
	// OUs is Σ_g ceil(len(GroupRows[g])/S_WL) — the per-slice OU count
	// without Dynamic OU Formation.
	OUs int64
	// NonEmptyGroups counts groups retaining at least one row. Schemes
	// whose plans reorder inputs fetch once per non-empty group — an
	// empty group (an all-zero weight bit slice under WSS) costs no
	// eDRAM read at all.
	NonEmptyGroups int
	// AllRows marks a Baseline tile: every group keeps every row, so
	// GroupRows and Plane are left nil rather than materializing Groups
	// identical full masks; TileRows carries the height. RowCount and
	// OUs are still filled in, and consumers that walk per-group rows
	// (the static-occupancy recorder) treat each group as TileRows full
	// rows.
	AllRows bool
	// TileRows is the tile's row count (meaningful when AllRows is set).
	TileRows int
}

// PlanSet holds the cached tile plans of one Structure under one
// (scheme, indexBits) key, indexed [rb][cb].
type PlanSet struct {
	Tiles [][]TilePlans
}

// Tile returns the cached plans of tile (rb, cb).
func (ps *PlanSet) Tile(rb, cb int) *TilePlans { return &ps.Tiles[rb][cb] }

type planKey struct {
	scheme    Scheme
	indexBits int
}

// planCache is the lazily-initialized per-Structure memo. Entries are
// created under mu but built outside it via their own once, so two
// modes racing for the same key build it once and distinct keys build
// concurrently.
type planCache struct {
	mu      sync.Mutex
	entries map[planKey]*planEntry
}

type planEntry struct {
	once sync.Once
	ps   *PlanSet
}

// CacheMetrics carries the optional plan-cache observability counters a
// caller wants fed (all fields may be nil — metrics.Counter methods are
// nil-safe). Hits and Misses split lookups by whether the (scheme,
// indexBits) entry already existed; Builds counts plan constructions
// actually executed. Exactly one lookup creates each distinct key, so
// for a fixed workload the merged totals are deterministic regardless
// of which mode's goroutine wins the race: misses == builds == distinct
// keys, hits == lookups − distinct keys.
type CacheMetrics struct {
	Hits, Misses, Builds *metrics.Counter
}

// PlanSet returns the cached per-tile execution plans for scheme at the
// given index width, building them on first use. The result is shared
// and must be treated as read-only. Baseline and Ideal ignore the index
// width, so their entries are normalized to indexBits 0. OCC compresses
// along the other axis and has no row plans; like Plan, this panics for
// it.
func (s *Structure) PlanSet(scheme Scheme, indexBits int) *PlanSet {
	return s.PlanSetMetered(scheme, indexBits, CacheMetrics{})
}

// PlanSetMetered is PlanSet feeding the given cache counters.
func (s *Structure) PlanSetMetered(scheme Scheme, indexBits int, cm CacheMetrics) *PlanSet {
	if scheme == OCC {
		panic("compress: PlanSet does not support scheme " + scheme.String())
	}
	if scheme == Baseline || scheme == Ideal || indexBits < 0 {
		indexBits = 0
	}
	key := planKey{scheme, indexBits}
	s.plans.mu.Lock()
	if s.plans.entries == nil {
		s.plans.entries = make(map[planKey]*planEntry)
	}
	e := s.plans.entries[key]
	if e == nil {
		e = &planEntry{}
		s.plans.entries[key] = e
		cm.Misses.Inc()
	} else {
		cm.Hits.Inc()
	}
	s.plans.mu.Unlock()
	e.once.Do(func() {
		cm.Builds.Inc()
		e.ps = s.buildPlanSet(scheme, indexBits)
	})
	return e.ps
}

// buildPlanSet derives every tile's plans. Schemes whose keep set is
// shared — Naive's per-tile criterion, ReCom's per-block criterion —
// are encoded exactly once per tile (resp. row block) and every group
// header aliases the one row list, instead of re-running the
// delta-index encoding per group as Plan does; per-group schemes (ORC,
// Ideal) accumulate their rows in a scratch buffer reused across tiles
// and take one exact-size copy per tile, so steady-state builds do no
// append growth at all. Plane words are set in place in the final
// allocation. The produced rows (and the words the simulator counts
// against) are byte-for-byte what Plan returns; snapshot encoding
// serializes each group's rows by content, so aliased headers persist
// identically.
func (s *Structure) buildPlanSet(scheme Scheme, indexBits int) *PlanSet {
	lay := s.Layout
	grid := s.schemeGroups(scheme)
	ps := &PlanSet{Tiles: make([][]TilePlans, lay.RowBlocks)}
	var idxScratch []int // reused raw keep-set indices across groups
	var rowScratch []int // reused encoded-rows accumulator across tiles
	var offScratch []int // reused per-tile group offsets
	// encode overwrites rowScratch with keep's retained rows, delta-index
	// encoded (fillers included) when the scheme carries bounded indices.
	encode := func(keep *bitset.Set) []int {
		if scheme == Ideal || indexBits <= 0 {
			rowScratch = keep.Indices(rowScratch[:0])
			return rowScratch
		}
		idxScratch = keep.Indices(idxScratch[:0])
		var err error
		rowScratch, _, err = index.AppendEncodedRows(rowScratch[:0], idxScratch, indexBits)
		if err != nil {
			panic(err)
		}
		return rowScratch
	}
	for rb := 0; rb < lay.RowBlocks; rb++ {
		ps.Tiles[rb] = make([]TilePlans, lay.ColBlocks)
		tileRows := lay.TileRows(rb)
		words := bitset.Words64(tileRows)
		var blockRows []int // ReCom: one exact-size row list per row block
		if scheme == ReCom {
			enc := encode(s.BlockNonZeroRows(rb))
			blockRows = make([]int, len(enc))
			copy(blockRows, enc)
		}
		for cb := 0; cb < lay.ColBlocks; cb++ {
			tp := &ps.Tiles[rb][cb]
			nGroups := lay.GroupsInTile(cb)
			tp.Words = words
			tp.Groups = nGroups
			switch scheme {
			case Baseline:
				tp.AllRows = true
				tp.TileRows = tileRows
				tp.RowCount = int64(nGroups) * int64(tileRows)
				tp.OUs = int64(nGroups) * int64(xmath.CeilDiv(tileRows, lay.SWL))
				tp.NonEmptyGroups = nGroups
			case Naive:
				enc := encode(s.TileNonZeroRows(rb, cb))
				rows := make([]int, len(enc))
				copy(rows, enc)
				tp.shareRows(rows, lay.SWL)
			case ReCom:
				tp.shareRows(blockRows, lay.SWL)
			default: // ORC, Ideal: per-group keep sets
				tp.GroupRows = make([][]int, nGroups)
				if cap(offScratch) < nGroups+1 {
					offScratch = make([]int, nGroups+1)
				}
				offs := offScratch[:nGroups+1]
				offs[0] = 0
				acc := rowScratch[:0]
				for gi := 0; gi < nGroups; gi++ {
					keep := grid[rb][cb][gi]
					if scheme == Ideal || indexBits <= 0 {
						acc = keep.Indices(acc)
					} else {
						idxScratch = keep.Indices(idxScratch[:0])
						var err error
						acc, _, err = index.AppendEncodedRows(acc, idxScratch, indexBits)
						if err != nil {
							panic(err)
						}
					}
					offs[gi+1] = len(acc)
				}
				rowScratch = acc // keep the grown accumulator for later tiles
				backing := make([]int, len(acc))
				copy(backing, acc)
				tp.Plane = make([]uint64, nGroups*words)
				for gi := 0; gi < nGroups; gi++ {
					rows := backing[offs[gi]:offs[gi+1]:offs[gi+1]]
					tp.GroupRows[gi] = rows
					gw := tp.Plane[gi*words : (gi+1)*words]
					for _, r := range rows {
						gw[r>>6] |= 1 << uint(r&63)
					}
					tp.RowCount += int64(len(rows))
					tp.OUs += int64(xmath.CeilDiv(len(rows), lay.SWL))
					if len(rows) > 0 {
						tp.NonEmptyGroups++
					}
				}
			}
		}
	}
	return ps
}

// shareRows fills a tile whose groups all retain the same rows (Naive,
// ReCom): every group header aliases the one list and the plane
// replicates one group's words, preserving the exact per-group layout
// the counting kernels and snapshot encoder expect.
func (tp *TilePlans) shareRows(rows []int, swl int) {
	tp.GroupRows = make([][]int, tp.Groups)
	tp.Plane = make([]uint64, tp.Groups*tp.Words)
	g0 := tp.Plane[:tp.Words]
	for _, r := range rows {
		g0[r>>6] |= 1 << uint(r&63)
	}
	for gi := 0; gi < tp.Groups; gi++ {
		tp.GroupRows[gi] = rows
		copy(tp.Plane[gi*tp.Words:(gi+1)*tp.Words], g0)
	}
	tp.RowCount = int64(tp.Groups) * int64(len(rows))
	tp.OUs = int64(tp.Groups) * int64(xmath.CeilDiv(len(rows), swl))
	if len(rows) > 0 {
		tp.NonEmptyGroups = tp.Groups
	}
}
