// Plan caching: a Structure memoizes, per (scheme, indexBits), the
// fully-derived execution state of every crossbar tile — retained-row
// plans, the word-plane flattening of the per-group row bitsets, and
// the static OU/wordline counts the simulator's scheduling needs.
// Before this cache the simulator rebuilt identical plans (including
// the delta-index encoding) on every SimulateLayer call, six times per
// RunAll sweep; now each distinct key is built exactly once per
// Structure, concurrently-safe, and shared read-only by every mode and
// worker.
package compress

import (
	"sync"

	"sre/internal/bitset"
	"sre/internal/metrics"
	"sre/internal/xmath"
)

// TilePlans is the cached execution state of one (rb, cb) tile under
// one (scheme, indexBits) key. All fields are read-only after build.
type TilePlans struct {
	// GroupRows lists, per OU column group, the ordered tile-relative
	// retained rows (zero-padding fillers included).
	GroupRows [][]int
	// Plane is the structure-of-arrays word flattening of the per-group
	// retained-row bitsets: group g occupies words [g*Words:(g+1)*Words].
	Plane []uint64
	// Words is the word count of one group's row mask.
	Words int
	// Groups is len(GroupRows) (the plane's group count).
	Groups int
	// RowCount is Σ_g len(GroupRows[g]) — the per-slice driven-wordline
	// count when every retained row executes.
	RowCount int64
	// OUs is Σ_g ceil(len(GroupRows[g])/S_WL) — the per-slice OU count
	// without Dynamic OU Formation.
	OUs int64
}

// PlanSet holds the cached tile plans of one Structure under one
// (scheme, indexBits) key, indexed [rb][cb].
type PlanSet struct {
	Tiles [][]TilePlans
}

// Tile returns the cached plans of tile (rb, cb).
func (ps *PlanSet) Tile(rb, cb int) *TilePlans { return &ps.Tiles[rb][cb] }

type planKey struct {
	scheme    Scheme
	indexBits int
}

// planCache is the lazily-initialized per-Structure memo. Entries are
// created under mu but built outside it via their own once, so two
// modes racing for the same key build it once and distinct keys build
// concurrently.
type planCache struct {
	mu      sync.Mutex
	entries map[planKey]*planEntry
}

type planEntry struct {
	once sync.Once
	ps   *PlanSet
}

// CacheMetrics carries the optional plan-cache observability counters a
// caller wants fed (all fields may be nil — metrics.Counter methods are
// nil-safe). Hits and Misses split lookups by whether the (scheme,
// indexBits) entry already existed; Builds counts plan constructions
// actually executed. Exactly one lookup creates each distinct key, so
// for a fixed workload the merged totals are deterministic regardless
// of which mode's goroutine wins the race: misses == builds == distinct
// keys, hits == lookups − distinct keys.
type CacheMetrics struct {
	Hits, Misses, Builds *metrics.Counter
}

// PlanSet returns the cached per-tile execution plans for scheme at the
// given index width, building them on first use. The result is shared
// and must be treated as read-only. Baseline and Ideal ignore the index
// width, so their entries are normalized to indexBits 0. OCC compresses
// along the other axis and has no row plans; like Plan, this panics for
// it.
func (s *Structure) PlanSet(scheme Scheme, indexBits int) *PlanSet {
	return s.PlanSetMetered(scheme, indexBits, CacheMetrics{})
}

// PlanSetMetered is PlanSet feeding the given cache counters.
func (s *Structure) PlanSetMetered(scheme Scheme, indexBits int, cm CacheMetrics) *PlanSet {
	if scheme == OCC {
		panic("compress: PlanSet does not support scheme " + scheme.String())
	}
	if scheme == Baseline || scheme == Ideal || indexBits < 0 {
		indexBits = 0
	}
	key := planKey{scheme, indexBits}
	s.plans.mu.Lock()
	if s.plans.entries == nil {
		s.plans.entries = make(map[planKey]*planEntry)
	}
	e := s.plans.entries[key]
	if e == nil {
		e = &planEntry{}
		s.plans.entries[key] = e
		cm.Misses.Inc()
	} else {
		cm.Hits.Inc()
	}
	s.plans.mu.Unlock()
	e.once.Do(func() {
		cm.Builds.Inc()
		e.ps = s.buildPlanSet(scheme, indexBits)
	})
	return e.ps
}

func (s *Structure) buildPlanSet(scheme Scheme, indexBits int) *PlanSet {
	lay := s.Layout
	ps := &PlanSet{Tiles: make([][]TilePlans, lay.RowBlocks)}
	for rb := 0; rb < lay.RowBlocks; rb++ {
		ps.Tiles[rb] = make([]TilePlans, lay.ColBlocks)
		tileRows := lay.TileRows(rb)
		words := bitset.Words64(tileRows)
		for cb := 0; cb < lay.ColBlocks; cb++ {
			tp := &ps.Tiles[rb][cb]
			nGroups := lay.GroupsInTile(cb)
			tp.Words = words
			tp.Groups = nGroups
			tp.GroupRows = make([][]int, nGroups)
			tp.Plane = make([]uint64, 0, nGroups*words)
			for gi := 0; gi < nGroups; gi++ {
				plan := s.Plan(scheme, rb, cb, gi, indexBits)
				tp.GroupRows[gi] = plan.Rows
				bs := bitset.New(tileRows)
				for _, r := range plan.Rows {
					bs.Set(r)
				}
				tp.Plane = bitset.AppendPlane(tp.Plane, bs)
				tp.RowCount += int64(len(plan.Rows))
				tp.OUs += int64(xmath.CeilDiv(len(plan.Rows), lay.SWL))
			}
		}
	}
	return ps
}
