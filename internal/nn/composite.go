package nn

import (
	"fmt"

	"sre/internal/tensor"
)

// concatChannels stacks CHW tensors with identical spatial dims along the
// channel axis.
func concatChannels(xs ...*tensor.Tensor) *tensor.Tensor {
	h, w := xs[0].Dim(1), xs[0].Dim(2)
	c := 0
	for _, x := range xs {
		if x.Dim(1) != h || x.Dim(2) != w {
			panic("nn: concatChannels spatial mismatch")
		}
		c += x.Dim(0)
	}
	y := tensor.New(c, h, w)
	off := 0
	for _, x := range xs {
		copy(y.Data()[off:], x.Data())
		off += x.Size()
	}
	return y
}

// Inception is a GoogLeNet-v1 inception module: four parallel branches
// (1×1; 1×1→3×3; 1×1→5×5; 3×3 pool→1×1) whose outputs concatenate along
// channels. Every conv is followed by ReLU.
type Inception struct {
	Tag                      string // e.g. "3a"
	B1                       *Conv  // 1×1
	B2Reduce, B2             *Conv  // 1×1 reduce, 3×3 pad 1
	B3Reduce, B3             *Conv  // 1×1 reduce, 5×5 pad 2
	PoolProj                 *Conv  // 1×1 after pooling
	pool                     *MaxPool
	n1, n3r, n3, n5r, n5, np int
}

// NewInception builds an inception module over cin input channels with
// the standard six filter counts.
func NewInception(tag string, cin, n1, n3r, n3, n5r, n5, np int) *Inception {
	return &Inception{
		Tag:      tag,
		B1:       NewConv(cin, n1, 1, 1, 0),
		B2Reduce: NewConv(cin, n3r, 1, 1, 0),
		B2:       NewConv(n3r, n3, 3, 1, 1),
		B3Reduce: NewConv(cin, n5r, 1, 1, 0),
		B3:       NewConv(n5r, n5, 5, 1, 2),
		PoolProj: NewConv(cin, np, 1, 1, 0),
		pool:     &MaxPool{K: 3, Stride: 1, Pad: 1},
		n1:       n1, n3r: n3r, n3: n3, n5r: n5r, n5: n5, np: np,
	}
}

func (m *Inception) Name() string { return "inception(" + m.Tag + ")" }

func (m *Inception) OutShape(in Shape) Shape {
	return Shape{m.n1 + m.n3 + m.n5 + m.np, in[1], in[2]}
}

// Convs returns the module's six conv layers in a fixed order.
func (m *Inception) Convs() []*Conv {
	return []*Conv{m.B1, m.B2Reduce, m.B2, m.B3Reduce, m.B3, m.PoolProj}
}

func (m *Inception) Forward(x *tensor.Tensor, tr *Trace) *tensor.Tensor {
	relu := ReLU{}
	save := ""
	if tr != nil {
		save = tr.prefix
		tr.prefix = save + m.Name() + "/"
		defer func() { tr.prefix = save }()
	}
	b1 := relu.Forward(m.B1.Forward(x, tr), nil)
	b2 := relu.Forward(m.B2.Forward(relu.Forward(m.B2Reduce.Forward(x, tr), nil), tr), nil)
	b3 := relu.Forward(m.B3.Forward(relu.Forward(m.B3Reduce.Forward(x, tr), nil), tr), nil)
	b4 := relu.Forward(m.PoolProj.Forward(m.pool.Forward(x, nil), tr), nil)
	return concatChannels(b1, b2, b3, b4)
}

// Residual is a ResNet bottleneck block: 1×1 → 3×3 (stride s) → 1×1 convs
// with batch-norm and ReLU, plus an identity or 1×1-projection shortcut.
// The trailing batch-norm layers are what re-sparsify ResNet-50's
// activations (paper §7.1's explanation of its large DOF gain).
type Residual struct {
	C1, C2, C3    *Conv
	BN1, BN2, BN3 *BatchNorm
	Proj          *Conv // nil for identity shortcut
	ProjBN        *BatchNorm
}

// NewResidual builds a bottleneck over cin channels with the given inner
// width (planes), output width cout, and stride on the 3×3 conv. A
// projection shortcut is added when cin != cout or stride != 1.
func NewResidual(cin, planes, cout, stride int) *Residual {
	r := &Residual{
		C1:  NewConv(cin, planes, 1, 1, 0),
		C2:  NewConv(planes, planes, 3, stride, 1),
		C3:  NewConv(planes, cout, 1, 1, 0),
		BN1: NewBatchNorm(planes),
		BN2: NewBatchNorm(planes),
		BN3: NewBatchNorm(cout),
	}
	if cin != cout || stride != 1 {
		r.Proj = NewConv(cin, cout, 1, stride, 0)
		r.ProjBN = NewBatchNorm(cout)
	}
	return r
}

func (r *Residual) Name() string {
	return fmt.Sprintf("res[%s-%s-%s]", r.C1.Name(), r.C2.Name(), r.C3.Name())
}

func (r *Residual) OutShape(in Shape) Shape {
	return r.C3.OutShape(r.C2.OutShape(r.C1.OutShape(in)))
}

// Convs returns the block's conv layers (including projection if any).
func (r *Residual) Convs() []*Conv {
	cs := []*Conv{r.C1, r.C2, r.C3}
	if r.Proj != nil {
		cs = append(cs, r.Proj)
	}
	return cs
}

func (r *Residual) Forward(x *tensor.Tensor, tr *Trace) *tensor.Tensor {
	relu := ReLU{}
	save := ""
	if tr != nil {
		save = tr.prefix
		tr.prefix = save + r.Name() + "/"
		defer func() { tr.prefix = save }()
	}
	y := relu.Forward(r.BN1.Forward(r.C1.Forward(x, tr), nil), nil)
	y = relu.Forward(r.BN2.Forward(r.C2.Forward(y, tr), nil), nil)
	y = r.BN3.Forward(r.C3.Forward(y, tr), nil)
	short := x
	if r.Proj != nil {
		short = r.ProjBN.Forward(r.Proj.Forward(x, tr), nil)
	}
	y.AddInPlace(short)
	return relu.Forward(y, nil)
}
