package nn

import (
	"strings"
	"testing"
)

// FuzzParse hammers the topology parser: it must never panic, and any
// accepted network must validate and enumerate consistently.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"conv5x20-pool-conv5x50-pool-500-10",
		"conv3x64p1-conv3x64p1-pool-4096-1000",
		"conv7x64s2p3-pool3s2p1-[conv1x64-conv3x64-conv1x256]x3-gap-10",
		"inception(3a:64,96,128,16,32,32)-10",
		"gap-5",
		"avgpool2s2-4",
		"conv3x4q9",
		"[conv1x4-conv3x4]x2",
		"conv0x0",
		"----",
		"10-10-10",
		"inception(:1,2,3,4,5,6)-1",
		"[conv1x4-conv3x4-conv1x8]x0",
		"pool3s0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, topo string) {
		if len(topo) > 300 {
			return // keep enormous inputs from dominating
		}
		net, err := Parse("fuzz", Shape{3, 16, 16}, topo)
		if err != nil {
			return
		}
		out, err := net.Validate()
		if err != nil {
			t.Fatalf("accepted topology %q fails Validate: %v", topo, err)
		}
		if len(out) == 0 {
			t.Fatalf("accepted topology %q has empty output shape", topo)
		}
		infos := net.MatrixLayerInfos()
		for _, li := range infos {
			if li.Rows <= 0 || li.Cols <= 0 || li.Windows <= 0 {
				t.Fatalf("topology %q produced degenerate layer %+v", topo, li)
			}
		}
		// Paths must be unique (the tracing contract).
		seen := map[string]bool{}
		for _, li := range infos {
			if strings.TrimSpace(li.Path) == "" {
				t.Fatalf("empty layer path in %q", topo)
			}
			// Duplicate names are allowed across repeated blocks; only the
			// (pointer) layers must be distinct.
			if seen[li.Path] && li.Kind == KindFC {
				// FC paths repeat only if the same name appears twice,
				// which is fine; nothing to assert.
				_ = seen
			}
			seen[li.Path] = true
		}
	})
}
