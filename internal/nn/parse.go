package nn

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a Network from a compact topology string in the style of
// the paper's Table 2, e.g.
//
//	conv5x20-pool-conv5x50-pool-500-10
//
// Token grammar (tokens joined by '-'; '-' inside (…) or […] does not
// split):
//
//	convKxN[sS][pP]      conv, kernel K, N filters, stride S (1), pad P (0)
//	pool                 2×2/s2 max pool
//	poolKsS[pP]          K×K max pool, stride S, pad P
//	gap                  global average pool
//	avgpoolKsS           K×K average pool
//	N                    fully-connected layer with N outputs
//	inception(tag:a,b,c,d,e,f)   GoogLeNet module (1×1; 3×3r,3×3; 5×5r,5×5; proj)
//	[convline]xN         N ResNet bottleneck blocks; a stride suffix on the
//	                     first conv applies to the first block only
//
// A ReLU is inserted after every conv and FC layer except the final
// layer, matching the evaluated CNNs (activation sparsity comes from
// these ReLUs).
func Parse(name string, in Shape, topo string) (net *Network, err error) {
	// Shape propagation panics on inconsistent geometry; surface that as a
	// parse error rather than crashing the caller.
	defer func() {
		if r := recover(); r != nil {
			net, err = nil, fmt.Errorf("nn: parse %q: %v", name, r)
		}
	}()
	tokens, err := splitTopLevel(topo)
	if err != nil {
		return nil, fmt.Errorf("nn: parse %q: %w", name, err)
	}
	net = &Network{NetName: name, InShape: in}
	shape := in
	for _, tok := range tokens {
		layers, out, err := parseToken(tok, shape)
		if err != nil {
			return nil, fmt.Errorf("nn: parse %q token %q: %w", name, tok, err)
		}
		net.Layers = append(net.Layers, layers...)
		shape = out
	}
	// Drop a trailing ReLU: the last layer produces logits.
	if n := len(net.Layers); n > 0 {
		if _, ok := net.Layers[n-1].(ReLU); ok {
			net.Layers = net.Layers[:n-1]
		}
	}
	if _, err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// splitTopLevel splits on '-' outside any parentheses/brackets.
func splitTopLevel(s string) ([]string, error) {
	var tokens []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced bracket at %d", i)
			}
		case '-':
			if depth == 0 {
				tokens = append(tokens, s[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced brackets")
	}
	tokens = append(tokens, s[start:])
	for i, t := range tokens {
		tokens[i] = strings.TrimSpace(t)
		if tokens[i] == "" {
			return nil, fmt.Errorf("empty token %d", i)
		}
	}
	return tokens, nil
}

func parseToken(tok string, in Shape) ([]Layer, Shape, error) {
	switch {
	case strings.HasPrefix(tok, "conv"):
		c, err := parseConv(tok, in[0])
		if err != nil {
			return nil, nil, err
		}
		return []Layer{c, ReLU{}}, c.OutShape(in), nil

	case tok == "pool":
		p := &MaxPool{K: 2, Stride: 2}
		return []Layer{p}, p.OutShape(in), nil

	case strings.HasPrefix(tok, "pool"):
		k, s, p, err := parseKSP(tok[len("pool"):])
		if err != nil {
			return nil, nil, err
		}
		mp := &MaxPool{K: k, Stride: s, Pad: p}
		return []Layer{mp}, mp.OutShape(in), nil

	case tok == "gap":
		g := &AvgPool{}
		return []Layer{g}, g.OutShape(in), nil

	case strings.HasPrefix(tok, "avgpool"):
		k, s, _, err := parseKSP(tok[len("avgpool"):])
		if err != nil {
			return nil, nil, err
		}
		ap := &AvgPool{K: k, Stride: s}
		return []Layer{ap}, ap.OutShape(in), nil

	case strings.HasPrefix(tok, "inception("):
		m, err := parseInception(tok, in[0])
		if err != nil {
			return nil, nil, err
		}
		return []Layer{m}, m.OutShape(in), nil

	case strings.HasPrefix(tok, "["):
		return parseResidualGroup(tok, in)

	default:
		n, err := strconv.Atoi(tok)
		if err != nil || n <= 0 {
			return nil, nil, fmt.Errorf("unrecognized token")
		}
		if n > maxLayerWidth {
			return nil, nil, fmt.Errorf("fc width %d exceeds limit %d", n, maxLayerWidth)
		}
		if elems := in.Elems(); elems > maxLayerWeights/n {
			return nil, nil, fmt.Errorf("fc %d×%d exceeds the weight limit", elems, n)
		}
		fc := NewFC(in.Elems(), n)
		return []Layer{fc, ReLU{}}, Shape{n}, nil
	}
}

// Parser sanity limits: topology strings may come from users, and a
// single absurd token ("8880000000") must fail cleanly instead of
// attempting a hundred-gigabyte weight allocation.
const (
	maxKernel       = 64
	maxLayerWidth   = 1 << 20 // filters / FC outputs
	maxLayerWeights = 1 << 31 // weights per layer
	maxRepeat       = 512
)

// parseConv parses "convKxN[gG][sS][pP]": kernel K, N total filters,
// G groups (AlexNet/CaffeNet-style grouped convolution), stride, pad.
func parseConv(tok string, cin int) (Layer, error) {
	body := tok[len("conv"):]
	k, rest, err := leadingInt(body)
	if err != nil {
		return nil, fmt.Errorf("bad kernel: %w", err)
	}
	if !strings.HasPrefix(rest, "x") {
		return nil, fmt.Errorf("expected 'x' after kernel size")
	}
	n, rest, err := leadingInt(rest[1:])
	if err != nil {
		return nil, fmt.Errorf("bad filter count: %w", err)
	}
	stride, pad, groups := 1, 0, 1
	for rest != "" {
		switch rest[0] {
		case 's':
			stride, rest, err = mustLeadingInt(rest[1:])
		case 'p':
			pad, rest, err = mustLeadingInt(rest[1:])
		case 'g':
			groups, rest, err = mustLeadingInt(rest[1:])
		default:
			return nil, fmt.Errorf("unexpected suffix %q", rest)
		}
		if err != nil {
			return nil, err
		}
	}
	switch {
	case k <= 0 || k > maxKernel:
		return nil, fmt.Errorf("kernel %d outside [1,%d]", k, maxKernel)
	case n <= 0 || n > maxLayerWidth:
		return nil, fmt.Errorf("filter count %d outside [1,%d]", n, maxLayerWidth)
	case stride <= 0 || pad < 0 || pad > maxKernel:
		return nil, fmt.Errorf("bad stride/pad %d/%d", stride, pad)
	case groups < 1 || cin%groups != 0 || n%groups != 0:
		return nil, fmt.Errorf("groups %d must divide channels %d and filters %d", groups, cin, n)
	case cin*k*k > maxLayerWeights/n:
		return nil, fmt.Errorf("conv %dx%dx%dx%d exceeds the weight limit", n, cin, k, k)
	}
	if groups > 1 {
		return NewGroupedConv(cin, n, k, stride, pad, groups), nil
	}
	return NewConv(cin, n, k, stride, pad), nil
}

// parseKSP parses "KsS[pP]" pooling geometry.
func parseKSP(body string) (k, s, p int, err error) {
	k, rest, err := leadingInt(body)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bad pool kernel: %w", err)
	}
	s = k
	if strings.HasPrefix(rest, "s") {
		s, rest, err = mustLeadingInt(rest[1:])
		if err != nil {
			return 0, 0, 0, err
		}
	}
	if strings.HasPrefix(rest, "p") {
		p, rest, err = mustLeadingInt(rest[1:])
		if err != nil {
			return 0, 0, 0, err
		}
	}
	if rest != "" {
		return 0, 0, 0, fmt.Errorf("unexpected suffix %q", rest)
	}
	return k, s, p, nil
}

// parseInception parses "inception(tag:a,b,c,d,e,f)" (tag optional).
func parseInception(tok string, cin int) (*Inception, error) {
	inner := strings.TrimSuffix(strings.TrimPrefix(tok, "inception("), ")")
	if len(inner) == len(tok) || !strings.HasSuffix(tok, ")") {
		return nil, fmt.Errorf("malformed inception token")
	}
	tag := ""
	if i := strings.IndexByte(inner, ':'); i >= 0 {
		tag, inner = inner[:i], inner[i+1:]
	}
	parts := strings.Split(inner, ",")
	if len(parts) != 6 {
		return nil, fmt.Errorf("inception wants 6 filter counts, got %d", len(parts))
	}
	var ns [6]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 || v > maxLayerWidth {
			return nil, fmt.Errorf("bad inception count %q", p)
		}
		ns[i] = v
	}
	if cin > maxLayerWeights/(25*max(ns[4], 1)) {
		return nil, fmt.Errorf("inception weights exceed the limit")
	}
	if tag == "" {
		tag = inner
	}
	return NewInception(tag, cin, ns[0], ns[1], ns[2], ns[3], ns[4], ns[5]), nil
}

// parseResidualGroup parses "[conv1xA[sS]-conv3xB-conv1xC]xN" into N
// bottleneck blocks.
func parseResidualGroup(tok string, in Shape) ([]Layer, Shape, error) {
	close := strings.LastIndexByte(tok, ']')
	if close < 0 {
		return nil, nil, fmt.Errorf("missing ']'")
	}
	inner := tok[1:close]
	suffix := tok[close+1:]
	if !strings.HasPrefix(suffix, "x") {
		return nil, nil, fmt.Errorf("residual group needs xN repeat suffix")
	}
	n, err := strconv.Atoi(suffix[1:])
	if err != nil || n <= 0 || n > maxRepeat {
		return nil, nil, fmt.Errorf("bad repeat count %q", suffix[1:])
	}
	parts, err := splitTopLevel(inner)
	if err != nil {
		return nil, nil, err
	}
	if len(parts) != 3 {
		return nil, nil, fmt.Errorf("bottleneck wants 3 convs, got %d", len(parts))
	}
	l1, err := parseConv(parts[0], in[0])
	if err != nil {
		return nil, nil, err
	}
	c1, ok := l1.(*Conv)
	if !ok {
		return nil, nil, fmt.Errorf("bottleneck convs cannot be grouped")
	}
	l2, err := parseConv(parts[1], c1.Cout)
	if err != nil {
		return nil, nil, err
	}
	c2, ok := l2.(*Conv)
	if !ok {
		return nil, nil, fmt.Errorf("bottleneck convs cannot be grouped")
	}
	l3, err := parseConv(parts[2], c2.Cout)
	if err != nil {
		return nil, nil, err
	}
	c3, ok := l3.(*Conv)
	if !ok {
		return nil, nil, fmt.Errorf("bottleneck convs cannot be grouped")
	}
	if c1.K != 1 || c2.K != 3 || c3.K != 1 {
		return nil, nil, fmt.Errorf("bottleneck pattern must be 1x1-3x3-1x1")
	}
	planes, cout := c1.Cout, c3.Cout
	stride := c1.Stride * c2.Stride // stride may be written on either conv
	var layers []Layer
	shape := in
	cin := in[0]
	for i := 0; i < n; i++ {
		s := 1
		if i == 0 {
			s = stride
		}
		r := NewResidual(cin, planes, cout, s)
		layers = append(layers, r)
		shape = r.OutShape(shape)
		cin = cout
	}
	return layers, shape, nil
}

func leadingInt(s string) (int, string, error) {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == 0 {
		return 0, s, fmt.Errorf("expected integer at %q", s)
	}
	v, err := strconv.Atoi(s[:i])
	return v, s[i:], err
}

func mustLeadingInt(s string) (int, string, error) {
	v, rest, err := leadingInt(s)
	if err != nil {
		return 0, rest, err
	}
	return v, rest, nil
}
