package nn

import (
	"fmt"

	"sre/internal/tensor"
)

// GroupedConv is a grouped 2-D convolution (AlexNet/CaffeNet style): the
// input channels split into Groups equal slices, each convolved by its
// own filter bank, outputs concatenated. On a crossbar accelerator each
// group maps as an independent weight matrix — representing the layer as
// one block-diagonal matrix would hand the row-compression schemes a
// large fake sparsity windfall, so the walker enumerates one matrix
// layer per group instead.
type GroupedConv struct {
	Groups int
	Convs  []*Conv // one per group, each Cin/Groups → Cout/Groups
}

// NewGroupedConv builds a grouped conv over cin channels with cout total
// filters. cin and cout must divide by groups.
func NewGroupedConv(cin, cout, k, stride, pad, groups int) *GroupedConv {
	if groups <= 0 || cin%groups != 0 || cout%groups != 0 {
		panic(fmt.Sprintf("nn: grouped conv %d/%d not divisible by %d groups", cin, cout, groups))
	}
	g := &GroupedConv{Groups: groups}
	for i := 0; i < groups; i++ {
		g.Convs = append(g.Convs, NewConv(cin/groups, cout/groups, k, stride, pad))
	}
	return g
}

func (g *GroupedConv) Name() string {
	c := g.Convs[0]
	s := fmt.Sprintf("conv%dx%dg%d", c.K, c.Cout*g.Groups, g.Groups)
	if c.Stride != 1 {
		s += fmt.Sprintf("s%d", c.Stride)
	}
	if c.Pad != 0 {
		s += fmt.Sprintf("p%d", c.Pad)
	}
	return s
}

func (g *GroupedConv) OutShape(in Shape) Shape {
	sub := g.Convs[0].OutShape(Shape{in[0] / g.Groups, in[1], in[2]})
	return Shape{sub[0] * g.Groups, sub[1], sub[2]}
}

func (g *GroupedConv) Forward(x *tensor.Tensor, tr *Trace) *tensor.Tensor {
	save := ""
	if tr != nil {
		save = tr.prefix
		tr.prefix = save + g.Name() + "/"
		defer func() { tr.prefix = save }()
	}
	cinG := x.Dim(0) / g.Groups
	outs := make([]*tensor.Tensor, g.Groups)
	for i, c := range g.Convs {
		outs[i] = c.Forward(channelSlice(x, i*cinG, cinG), tr)
	}
	return concatChannels(outs...)
}

// channelSlice copies channels [lo, lo+n) of a CHW tensor.
func channelSlice(x *tensor.Tensor, lo, n int) *tensor.Tensor {
	h, w := x.Dim(1), x.Dim(2)
	out := tensor.New(n, h, w)
	copy(out.Data(), x.Data()[lo*h*w:(lo+n)*h*w])
	return out
}
