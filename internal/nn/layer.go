// Package nn implements the neural-network substrate of the reproduction:
// the layer types appearing in the paper's Table 2 topologies (Conv2D,
// fully-connected, max/average pooling, ReLU, batch-norm, GoogLeNet
// inception modules and ResNet bottleneck blocks), shape inference, a
// forward evaluator that can record the inputs reaching every
// matrix-multiplying layer (what the crossbars consume), and a parser for
// the compact topology strings used by Table 2
// ("conv5x20-pool-conv5x50-pool-500-10").
//
// Feature maps are CHW tensors; conv weights are [Cout, Cin, K, K]; FC
// weights are [In, Out]. The crossbar-facing weight matrix of a conv
// layer has R = Cin·K·K rows in (c, ky, kx) order — the same order
// tensor.Im2ColWindow produces — and Cout columns.
package nn

import (
	"fmt"

	"sre/internal/tensor"
)

// Shape is a tensor shape; CHW for spatial tensors, [N] for vectors.
type Shape []int

// Elems returns the number of elements in the shape.
func (s Shape) Elems() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Layer is a forward-computable network stage.
type Layer interface {
	// Name returns a short human-readable identifier ("conv3x64").
	Name() string
	// OutShape computes the output shape for a given input shape.
	OutShape(in Shape) Shape
	// Forward evaluates the layer. If tr is non-nil, matrix layers record
	// the activation tensor they consumed.
	Forward(x *tensor.Tensor, tr *Trace) *tensor.Tensor
}

// MatrixLayer is a layer that performs a weight-matrix computation and is
// therefore mapped onto ReRAM crossbars.
type MatrixLayer interface {
	Layer
	// WeightMatrix returns the weights in crossbar orientation [R, C].
	// The returned tensor aliases the layer's weights.
	WeightMatrix() *tensor.Tensor
	// Windows returns the number of input sliding windows the layer
	// processes for input shape in (1 for FC layers).
	Windows(in Shape) int
}

// Trace records, in execution order, every matrix layer together with the
// activation tensor that reached it. The simulator replays these pairs on
// the crossbar model.
type Trace struct {
	Layers []MatrixLayer
	Inputs []*tensor.Tensor
	Paths  []string
	prefix string
}

func (tr *Trace) record(l MatrixLayer, x *tensor.Tensor) {
	if tr == nil {
		return
	}
	tr.Layers = append(tr.Layers, l)
	tr.Inputs = append(tr.Inputs, x)
	tr.Paths = append(tr.Paths, tr.prefix+l.Name())
}

// Conv is a 2-D convolution layer.
type Conv struct {
	Cin, Cout, K, Stride, Pad int
	// W is [Cout, Cin, K, K]; B is [Cout] (may be nil for no bias).
	W *tensor.Tensor
	B []float32

	// scratch for Forward
	winBuf []float32
}

// NewConv allocates a conv layer with zero weights.
func NewConv(cin, cout, k, stride, pad int) *Conv {
	return &Conv{
		Cin: cin, Cout: cout, K: k, Stride: stride, Pad: pad,
		W: tensor.New(cout, cin, k, k),
		B: make([]float32, cout),
	}
}

func (c *Conv) Name() string {
	s := fmt.Sprintf("conv%dx%d", c.K, c.Cout)
	if c.Stride != 1 {
		s += fmt.Sprintf("s%d", c.Stride)
	}
	if c.Pad != 0 {
		s += fmt.Sprintf("p%d", c.Pad)
	}
	return s
}

func (c *Conv) OutShape(in Shape) Shape {
	if len(in) != 3 || in[0] != c.Cin {
		panic(fmt.Sprintf("nn: %s got input shape %v, want [%d H W]", c.Name(), in, c.Cin))
	}
	return Shape{c.Cout,
		tensor.ConvOutputDim(in[1], c.K, c.Stride, c.Pad),
		tensor.ConvOutputDim(in[2], c.K, c.Stride, c.Pad)}
}

// WeightMatrix returns a [Cin·K·K, Cout] view. Row r = ci·K·K + ky·K + kx.
// The view copies (orientation differs from storage); callers mutate
// weights through W, not through this matrix.
func (c *Conv) WeightMatrix() *tensor.Tensor {
	rows := c.Cin * c.K * c.K
	m := tensor.New(rows, c.Cout)
	for co := 0; co < c.Cout; co++ {
		for ci := 0; ci < c.Cin; ci++ {
			for ky := 0; ky < c.K; ky++ {
				for kx := 0; kx < c.K; kx++ {
					r := ci*c.K*c.K + ky*c.K + kx
					m.Set(c.W.At(co, ci, ky, kx), r, co)
				}
			}
		}
	}
	return m
}

func (c *Conv) Windows(in Shape) int {
	out := c.OutShape(in)
	return out[1] * out[2]
}

func (c *Conv) Forward(x *tensor.Tensor, tr *Trace) *tensor.Tensor {
	tr.record(c, x)
	out := c.OutShape(Shape(x.Shape()))
	hout, wout := out[1], out[2]
	y := tensor.New(out...)
	h, w := x.Dim(1), x.Dim(2)
	yd := y.Data()
	xd := x.Data()
	kk := c.K * c.K
	for co := 0; co < c.Cout; co++ {
		wBase := co * c.Cin * kk
		wData := c.W.Data()[wBase : wBase+c.Cin*kk]
		bias := float32(0)
		if c.B != nil {
			bias = c.B[co]
		}
		plane := yd[co*hout*wout : (co+1)*hout*wout]
		for oy := 0; oy < hout; oy++ {
			for ox := 0; ox < wout; ox++ {
				acc := bias
				baseY := oy*c.Stride - c.Pad
				baseX := ox*c.Stride - c.Pad
				for ci := 0; ci < c.Cin; ci++ {
					xPlane := xd[ci*h*w : (ci+1)*h*w]
					wPlane := wData[ci*kk : (ci+1)*kk]
					for ky := 0; ky < c.K; ky++ {
						iy := baseY + ky
						if iy < 0 || iy >= h {
							continue
						}
						rowOff := iy * w
						for kx := 0; kx < c.K; kx++ {
							ix := baseX + kx
							if ix < 0 || ix >= w {
								continue
							}
							acc += xPlane[rowOff+ix] * wPlane[ky*c.K+kx]
						}
					}
				}
				plane[oy*wout+ox] = acc
			}
		}
	}
	return y
}

// FC is a fully-connected layer. Inputs of any shape are flattened.
type FC struct {
	In, Out int
	// W is [In, Out]; B is [Out].
	W *tensor.Tensor
	B []float32
}

// NewFC allocates an FC layer with zero weights.
func NewFC(in, out int) *FC {
	return &FC{In: in, Out: out, W: tensor.New(in, out), B: make([]float32, out)}
}

func (f *FC) Name() string { return fmt.Sprintf("fc%d", f.Out) }

func (f *FC) OutShape(in Shape) Shape {
	if in.Elems() != f.In {
		panic(fmt.Sprintf("nn: %s got %d inputs, want %d", f.Name(), in.Elems(), f.In))
	}
	return Shape{f.Out}
}

// WeightMatrix returns the [In, Out] weights (aliased, not copied).
func (f *FC) WeightMatrix() *tensor.Tensor { return f.W }

func (f *FC) Windows(Shape) int { return 1 }

func (f *FC) Forward(x *tensor.Tensor, tr *Trace) *tensor.Tensor {
	tr.record(f, x) // record pre-flatten so traced shapes match enumeration
	flat := x.Reshape(x.Size())
	y := tensor.FromSlice(tensor.MatVec(f.W, flat.Data()), f.Out)
	if f.B != nil {
		for i := range f.B {
			y.Data()[i] += f.B[i]
		}
	}
	return y
}

// ReLU clamps negatives to zero — the source of activation sparsity
// (paper §2.2).
type ReLU struct{}

func (ReLU) Name() string            { return "relu" }
func (ReLU) OutShape(in Shape) Shape { return in }
func (ReLU) Forward(x *tensor.Tensor, _ *Trace) *tensor.Tensor {
	y := x.Clone()
	d := y.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		}
	}
	return y
}

// MaxPool is a 2-D max pooling layer with optional zero padding (needed
// by inception pool branches, which use 3×3/s1/p1 pooling).
type MaxPool struct {
	K, Stride, Pad int
}

func (p *MaxPool) Name() string {
	if p.K == 2 && p.Stride == 2 && p.Pad == 0 {
		return "pool"
	}
	s := fmt.Sprintf("pool%ds%d", p.K, p.Stride)
	if p.Pad != 0 {
		s += fmt.Sprintf("p%d", p.Pad)
	}
	return s
}

func (p *MaxPool) OutShape(in Shape) Shape {
	return Shape{in[0],
		poolOut(in[1]+2*p.Pad, p.K, p.Stride),
		poolOut(in[2]+2*p.Pad, p.K, p.Stride)}
}

// poolOut uses ceil semantics (Caffe-style) so odd sizes pool cleanly.
func poolOut(h, k, s int) int {
	o := (h-k+s-1)/s + 1
	if o < 1 {
		o = 1
	}
	return o
}

func (p *MaxPool) Forward(x *tensor.Tensor, _ *Trace) *tensor.Tensor {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	out := p.OutShape(Shape(x.Shape()))
	ho, wo := out[1], out[2]
	y := tensor.New(c, ho, wo)
	for ci := 0; ci < c; ci++ {
		for oy := 0; oy < ho; oy++ {
			for ox := 0; ox < wo; ox++ {
				best := float32(0)
				first := true
				for ky := 0; ky < p.K; ky++ {
					iy := oy*p.Stride + ky - p.Pad
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < p.K; kx++ {
						ix := ox*p.Stride + kx - p.Pad
						if ix < 0 || ix >= w {
							continue
						}
						v := x.At(ci, iy, ix)
						if first || v > best {
							best, first = v, false
						}
					}
				}
				y.Set(best, ci, oy, ox)
			}
		}
	}
	return y
}

// AvgPool is global average pooling when K == 0, else K×K/Stride pooling.
type AvgPool struct {
	K, Stride int
}

func (p *AvgPool) Name() string {
	if p.K == 0 {
		return "gap"
	}
	return fmt.Sprintf("avgpool%ds%d", p.K, p.Stride)
}

func (p *AvgPool) OutShape(in Shape) Shape {
	if p.K == 0 {
		return Shape{in[0], 1, 1}
	}
	return Shape{in[0], poolOut(in[1], p.K, p.Stride), poolOut(in[2], p.K, p.Stride)}
}

func (p *AvgPool) Forward(x *tensor.Tensor, _ *Trace) *tensor.Tensor {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	k, s := p.K, p.Stride
	if k == 0 {
		k, s = h, h
	}
	ho, wo := poolOut(h, k, s), poolOut(w, k, s)
	y := tensor.New(c, ho, wo)
	for ci := 0; ci < c; ci++ {
		for oy := 0; oy < ho; oy++ {
			for ox := 0; ox < wo; ox++ {
				var sum float32
				n := 0
				for ky := 0; ky < k; ky++ {
					iy := oy*s + ky
					if iy >= h {
						break
					}
					for kx := 0; kx < k; kx++ {
						ix := ox*s + kx
						if ix >= w {
							break
						}
						sum += x.At(ci, iy, ix)
						n++
					}
				}
				y.Set(sum/float32(n), ci, oy, ox)
			}
		}
	}
	return y
}

// BatchNorm applies per-channel scale and shift (inference form). The
// paper notes ResNet-50's many batch-norm layers boost DOF gains by
// re-sparsifying activations after ReLU; we model the inference transform.
type BatchNorm struct {
	C            int
	Scale, Shift []float32
}

// NewBatchNorm returns an identity batch-norm over c channels.
func NewBatchNorm(c int) *BatchNorm {
	b := &BatchNorm{C: c, Scale: make([]float32, c), Shift: make([]float32, c)}
	for i := range b.Scale {
		b.Scale[i] = 1
	}
	return b
}

func (b *BatchNorm) Name() string            { return "bn" }
func (b *BatchNorm) OutShape(in Shape) Shape { return in }

func (b *BatchNorm) Forward(x *tensor.Tensor, _ *Trace) *tensor.Tensor {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	if c != b.C {
		panic(fmt.Sprintf("nn: bn over %d channels got %d", b.C, c))
	}
	y := x.Clone()
	d := y.Data()
	for ci := 0; ci < c; ci++ {
		sc, sh := b.Scale[ci], b.Shift[ci]
		plane := d[ci*h*w : (ci+1)*h*w]
		for i := range plane {
			plane[i] = plane[i]*sc + sh
		}
	}
	return y
}
