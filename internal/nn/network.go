package nn

import (
	"fmt"

	"sre/internal/tensor"
)

// Network is a feed-forward stack of layers with a fixed input shape.
type Network struct {
	NetName string
	InShape Shape
	Layers  []Layer
}

// Forward evaluates the network. tr (optional) records the activations
// that reach every matrix layer, in execution order.
func (n *Network) Forward(x *tensor.Tensor, tr *Trace) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, tr)
	}
	return x
}

// OutShape returns the network's output shape.
func (n *Network) OutShape() Shape {
	s := n.InShape
	for _, l := range n.Layers {
		s = l.OutShape(s)
	}
	return s
}

// LayerKind distinguishes the two matrix-layer geometries.
type LayerKind int

const (
	KindConv LayerKind = iota
	KindFC
)

func (k LayerKind) String() string {
	if k == KindConv {
		return "conv"
	}
	return "fc"
}

// LayerInfo describes one matrix layer as the crossbar mapper sees it.
type LayerInfo struct {
	Path           string      // hierarchical name, e.g. "inception(3a)/conv3x128"
	Layer          MatrixLayer // the layer itself
	Kind           LayerKind
	In             Shape // activation shape reaching the layer
	Rows           int   // weight-matrix rows (Cin·K·K or FC inputs)
	Cols           int   // weight-matrix columns (Cout or FC outputs)
	Windows        int   // sliding windows per inference (1 for FC)
	K, Stride, Pad int   // conv geometry (K=0 for FC)
	// ParallelGroup names a set of sibling layers that execute
	// concurrently on disjoint crossbars (the groups of a grouped
	// convolution); empty means the layer runs in sequence.
	ParallelGroup string
}

// MACs returns the layer's multiply-accumulate count per inference.
func (li LayerInfo) MACs() int64 {
	return int64(li.Rows) * int64(li.Cols) * int64(li.Windows)
}

// MatrixLayerInfos enumerates every matrix layer with the activation
// shape that reaches it, in the exact order Forward records them in a
// Trace. This runs pure shape propagation — no tensor math — so it is
// cheap even for ImageNet-scale networks.
func (n *Network) MatrixLayerInfos() []LayerInfo {
	var infos []LayerInfo
	s := n.InShape
	for _, l := range n.Layers {
		s = walk(l, s, "", &infos)
	}
	return infos
}

// walk mirrors each layer's Forward: it visits contained matrix layers in
// trace order and returns the output shape.
func walk(l Layer, in Shape, prefix string, infos *[]LayerInfo) Shape {
	switch v := l.(type) {
	case *Conv:
		out := v.OutShape(in)
		*infos = append(*infos, LayerInfo{
			Path: prefix + v.Name(), Layer: v, Kind: KindConv, In: in,
			Rows: v.Cin * v.K * v.K, Cols: v.Cout, Windows: out[1] * out[2],
			K: v.K, Stride: v.Stride, Pad: v.Pad,
		})
		return out
	case *FC:
		*infos = append(*infos, LayerInfo{
			Path: prefix + v.Name(), Layer: v, Kind: KindFC, In: in,
			Rows: v.In, Cols: v.Out, Windows: 1,
		})
		return v.OutShape(in)
	case *GroupedConv:
		p := prefix + v.Name() + "/"
		out := in
		for _, c := range v.Convs {
			before := len(*infos)
			out = walk(c, Shape{in[0] / v.Groups, in[1], in[2]}, p, infos)
			for i := before; i < len(*infos); i++ {
				(*infos)[i].ParallelGroup = p
			}
		}
		return Shape{out[0] * v.Groups, out[1], out[2]}
	case *Inception:
		p := prefix + v.Name() + "/"
		walk(v.B1, in, p, infos)
		r2 := walk(v.B2Reduce, in, p, infos)
		walk(v.B2, r2, p, infos)
		r3 := walk(v.B3Reduce, in, p, infos)
		walk(v.B3, r3, p, infos)
		walk(v.PoolProj, v.pool.OutShape(in), p, infos)
		return v.OutShape(in)
	case *Residual:
		p := prefix + v.Name() + "/"
		s1 := walk(v.C1, in, p, infos)
		s2 := walk(v.C2, s1, p, infos)
		out := walk(v.C3, s2, p, infos)
		if v.Proj != nil {
			walk(v.Proj, in, p, infos)
		}
		return out
	default:
		return l.OutShape(in)
	}
}

// Validate checks that shapes propagate cleanly end to end and returns
// the output shape.
func (n *Network) Validate() (out Shape, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("nn: %s: %v", n.NetName, r)
		}
	}()
	out = n.OutShape()
	return out, nil
}

// WeightCount returns the total number of weight parameters in matrix
// layers.
func (n *Network) WeightCount() int64 {
	var total int64
	for _, li := range n.MatrixLayerInfos() {
		total += int64(li.Rows) * int64(li.Cols)
	}
	return total
}

// WeightSparsity returns the fraction of exactly-zero weights over all
// matrix layers.
func (n *Network) WeightSparsity() float64 {
	var zero, total int64
	for _, li := range n.MatrixLayerInfos() {
		w := weightData(li.Layer)
		total += int64(len(w))
		for _, v := range w {
			if v == 0 {
				zero++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(zero) / float64(total)
}

// weightData returns the raw weight storage of a matrix layer.
func weightData(l MatrixLayer) []float32 {
	switch v := l.(type) {
	case *Conv:
		return v.W.Data()
	case *FC:
		return v.W.Data()
	default:
		panic("nn: unknown matrix layer type")
	}
}
