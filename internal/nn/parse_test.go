package nn

import (
	"strings"
	"testing"
)

func TestParseLeNet(t *testing.T) {
	// Table 2 MNIST row: conv5x20-pool-conv5x50-pool-500-10 on 1×28×28.
	net, err := Parse("LeNet", Shape{1, 28, 28}, "conv5x20-pool-conv5x50-pool-500-10")
	if err != nil {
		t.Fatal(err)
	}
	out, err := net.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 10 {
		t.Fatalf("LeNet output shape %v", out)
	}
	infos := net.MatrixLayerInfos()
	if len(infos) != 4 {
		t.Fatalf("LeNet matrix layers = %d, want 4", len(infos))
	}
	// conv5x20 on 28 → 24; pool → 12; conv5x50 → 8; pool → 4; fc500 in=800.
	if infos[1].Rows != 20*25 || infos[1].Windows != 64 {
		t.Fatalf("conv5x50 geometry: rows=%d windows=%d", infos[1].Rows, infos[1].Windows)
	}
	if infos[2].Rows != 50*4*4 || infos[2].Cols != 500 {
		t.Fatalf("fc500 geometry: %d x %d", infos[2].Rows, infos[2].Cols)
	}
}

func TestParseConvSuffixes(t *testing.T) {
	net, err := Parse("stem", Shape{3, 224, 224}, "conv7x64s2p3-pool3s2-10")
	if err != nil {
		t.Fatal(err)
	}
	info := net.MatrixLayerInfos()[0]
	if info.K != 7 || info.Stride != 2 || info.Pad != 3 {
		t.Fatalf("conv suffixes parsed wrong: %+v", info)
	}
	// 224 →(7/2/3) 112 →(pool3s2, ceil) 56.
	if info.Windows != 112*112 {
		t.Fatalf("stem windows = %d", info.Windows)
	}
}

func TestParseInceptionToken(t *testing.T) {
	net, err := Parse("g", Shape{192, 28, 28}, "inception(3a:64,96,128,16,32,32)-10")
	if err != nil {
		t.Fatal(err)
	}
	infos := net.MatrixLayerInfos()
	// 6 convs + final fc.
	if len(infos) != 7 {
		t.Fatalf("matrix layers = %d", len(infos))
	}
	if !strings.Contains(infos[0].Path, "inception(3a)") {
		t.Fatalf("path = %q", infos[0].Path)
	}
	// Output channels 64+128+32+32 = 256.
	fc := infos[6]
	if fc.Rows != 256*28*28 {
		t.Fatalf("fc rows = %d", fc.Rows)
	}
}

func TestParseResidualGroup(t *testing.T) {
	net, err := Parse("r", Shape{64, 56, 56},
		"[conv1x64-conv3x64-conv1x256]x3-[conv1x128s2-conv3x128-conv1x512]x4-gap-10")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	// Stage 1: 3 blocks; block 0 has projection (64→256), blocks 1-2 identity.
	res0 := net.Layers[0].(*Residual)
	res1 := net.Layers[1].(*Residual)
	if res0.Proj == nil || res1.Proj != nil {
		t.Fatal("projection placement wrong in stage 1")
	}
	// Stage 2 block 0 downsamples 56→28.
	res3 := net.Layers[3].(*Residual)
	out := res3.OutShape(Shape{256, 56, 56})
	if out[0] != 512 || out[1] != 28 {
		t.Fatalf("stage-2 first block out %v", out)
	}
	// Stage 2 blocks 1..3 keep 28 and have no projection.
	res4 := net.Layers[4].(*Residual)
	if res4.Proj != nil || res4.C2.Stride != 1 {
		t.Fatal("stride must apply to first block only")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"convx5",                      // missing kernel
		"conv3",                       // missing filters
		"conv3x",                      // missing count
		"bogus",                       // unknown token
		"conv3x4q2",                   // bad suffix
		"[conv1x4-conv3x4-conv1x8]",   // missing repeat
		"[conv3x4-conv3x4-conv1x8]x2", // not a 1-3-1 bottleneck
		"inception(1,2,3)",            // wrong arity
		"0",                           // non-positive fc
		"conv3x4-(",                   // unbalanced
		"",                            // empty
	}
	for _, topo := range cases {
		if _, err := Parse("bad", Shape{3, 32, 32}, topo); err == nil {
			t.Errorf("Parse accepted %q", topo)
		}
	}
}

func TestParseShapeMismatchError(t *testing.T) {
	// Kernel larger than input must surface as an error, not a panic.
	if _, err := Parse("big", Shape{1, 4, 4}, "conv5x8-10"); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestParseTrailingReLUDropped(t *testing.T) {
	net, err := Parse("t", Shape{1, 6, 6}, "conv3x2-4")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := net.Layers[len(net.Layers)-1].(ReLU); ok {
		t.Fatal("final layer must not be ReLU (logits)")
	}
}

func TestParseVGG16Topology(t *testing.T) {
	// The Table 2 VGG-16 string with explicit same-padding.
	topo := "conv3x64p1-conv3x64p1-pool-conv3x128p1-conv3x128p1-pool-" +
		"conv3x256p1-conv3x256p1-conv3x256p1-pool-" +
		"conv3x512p1-conv3x512p1-conv3x512p1-pool-" +
		"conv3x512p1-conv3x512p1-conv3x512p1-pool-4096-4096-1000"
	net, err := Parse("VGG-16", Shape{3, 224, 224}, topo)
	if err != nil {
		t.Fatal(err)
	}
	infos := net.MatrixLayerInfos()
	if len(infos) != 16 {
		t.Fatalf("VGG-16 matrix layers = %d, want 16", len(infos))
	}
	// First FC sees 512×7×7 = 25088 inputs.
	if infos[13].Rows != 25088 {
		t.Fatalf("fc1 rows = %d", infos[13].Rows)
	}
	// Total parameter count ≈ 138M for VGG-16.
	wc := net.WeightCount()
	if wc < 130_000_000 || wc > 145_000_000 {
		t.Fatalf("VGG-16 weight count = %d", wc)
	}
}

func TestParseAvgPoolToken(t *testing.T) {
	net, err := Parse("a", Shape{2, 8, 8}, "avgpool2s2-4")
	if err != nil {
		t.Fatal(err)
	}
	out, _ := net.Validate()
	if out[0] != 4 {
		t.Fatalf("out %v", out)
	}
}

func TestParseGroupedConvToken(t *testing.T) {
	net, err := Parse("g", Shape{4, 8, 8}, "conv3x8g2p1-4")
	if err != nil {
		t.Fatal(err)
	}
	gc, ok := net.Layers[0].(*GroupedConv)
	if !ok {
		t.Fatalf("first layer %T, want *GroupedConv", net.Layers[0])
	}
	if gc.Name() != "conv3x8g2p1" {
		t.Fatalf("name %q", gc.Name())
	}
}

func TestParseSizeLimits(t *testing.T) {
	cases := []string{
		"8880000000",                     // FC allocation bomb
		"conv3x9999999",                  // filter bomb
		"conv65x4",                       // kernel over limit
		"[conv1x4-conv3x4-conv1x8]x9999", // repeat bomb
		"conv3x4s0",                      // zero stride
	}
	for _, topo := range cases {
		if _, err := Parse("bomb", Shape{3, 64, 64}, topo); err == nil {
			t.Errorf("accepted %q", topo)
		}
	}
}
