package nn

import (
	"math"
	"testing"

	"sre/internal/tensor"
	"sre/internal/xrand"
)

// randomize fills all conv/FC weights of net with small random values.
func randomize(net *Network, seed uint64) {
	r := xrand.New(seed)
	for _, li := range net.MatrixLayerInfos() {
		rr := r.Split(li.Path)
		for i := range weightData(li.Layer) {
			weightData(li.Layer)[i] = float32(rr.NormFloat64() * 0.3)
		}
	}
}

func randomInput(shape Shape, seed uint64) *tensor.Tensor {
	r := xrand.New(seed)
	x := tensor.New(shape...)
	for i := range x.Data() {
		x.Data()[i] = float32(r.NormFloat64())
	}
	return x
}

// TestConvForwardMatchesIm2ColMatVec: the direct convolution loop must
// equal the im2col lowering for every output pixel and channel.
func TestConvForwardMatchesIm2ColMatVec(t *testing.T) {
	r := xrand.New(1)
	for trial := 0; trial < 8; trial++ {
		cin, cout := 1+r.Intn(4), 1+r.Intn(5)
		k := 1 + r.Intn(3)
		h := k + r.Intn(6)
		stride, pad := 1+r.Intn(2), r.Intn(2)
		c := NewConv(cin, cout, k, stride, pad)
		for i := range c.W.Data() {
			c.W.Data()[i] = float32(r.Intn(7) - 3)
		}
		x := tensor.New(cin, h, h)
		for i := range x.Data() {
			x.Data()[i] = float32(r.Intn(9) - 4)
		}
		y := c.Forward(x, nil)
		wm := c.WeightMatrix()
		out := c.OutShape(Shape(x.Shape()))
		buf := make([]float32, cin*k*k)
		for oy := 0; oy < out[1]; oy++ {
			for ox := 0; ox < out[2]; ox++ {
				tensor.Im2ColWindow(x, k, stride, pad, oy, ox, buf)
				ref := tensor.MatVec(wm, buf)
				for co := 0; co < cout; co++ {
					if y.At(co, oy, ox) != ref[co] {
						t.Fatalf("trial %d: conv(%d,%d,ch%d) = %v, want %v",
							trial, oy, ox, co, y.At(co, oy, ox), ref[co])
					}
				}
			}
		}
	}
}

func TestConvBias(t *testing.T) {
	c := NewConv(1, 2, 1, 1, 0)
	c.B[0], c.B[1] = 1, -2
	x := tensor.New(1, 1, 1)
	y := c.Forward(x, nil)
	if y.At(0, 0, 0) != 1 || y.At(1, 0, 0) != -2 {
		t.Fatal("bias not applied")
	}
}

func TestReLUZeroesNegatives(t *testing.T) {
	x := tensor.New(1, 2, 2)
	x.Set(-1, 0, 0, 0)
	x.Set(2, 0, 0, 1)
	y := ReLU{}.Forward(x, nil)
	if y.At(0, 0, 0) != 0 || y.At(0, 0, 1) != 2 {
		t.Fatal("ReLU wrong")
	}
	if x.At(0, 0, 0) != -1 {
		t.Fatal("ReLU must not mutate its input")
	}
}

func TestMaxPool(t *testing.T) {
	x := tensor.New(1, 4, 4)
	v := float32(0)
	for y := 0; y < 4; y++ {
		for xx := 0; xx < 4; xx++ {
			x.Set(v, 0, y, xx)
			v++
		}
	}
	p := &MaxPool{K: 2, Stride: 2}
	y := p.Forward(x, nil)
	if y.Dim(1) != 2 || y.Dim(2) != 2 {
		t.Fatalf("pool out shape %v", y.Shape())
	}
	if y.At(0, 0, 0) != 5 || y.At(0, 1, 1) != 15 {
		t.Fatal("max pooling values wrong")
	}
}

func TestMaxPoolPaddingKeepsSpatialSize(t *testing.T) {
	p := &MaxPool{K: 3, Stride: 1, Pad: 1}
	out := p.OutShape(Shape{8, 14, 14})
	if out[1] != 14 || out[2] != 14 {
		t.Fatalf("3x3/s1/p1 pool changed spatial dims: %v", out)
	}
	// Negative values: padding must not inject zeros as maxima incorrectly
	// for interior windows; border windows legitimately see only real
	// values (we skip padded cells).
	x := tensor.New(1, 3, 3)
	x.Fill(-5)
	y := p.Forward(x, nil)
	if y.At(0, 1, 1) != -5 {
		t.Fatalf("interior pooled value %v, want -5", y.At(0, 1, 1))
	}
}

func TestAvgPoolGlobal(t *testing.T) {
	x := tensor.New(2, 2, 2)
	for i := range x.Data() {
		x.Data()[i] = float32(i)
	}
	g := &AvgPool{}
	y := g.Forward(x, nil)
	if y.Dim(1) != 1 || y.Dim(2) != 1 {
		t.Fatal("gap shape wrong")
	}
	if y.At(0, 0, 0) != 1.5 || y.At(1, 0, 0) != 5.5 {
		t.Fatalf("gap values %v %v", y.At(0, 0, 0), y.At(1, 0, 0))
	}
}

func TestBatchNorm(t *testing.T) {
	b := NewBatchNorm(2)
	b.Scale[1] = 2
	b.Shift[1] = -1
	x := tensor.New(2, 1, 1)
	x.Set(3, 0, 0, 0)
	x.Set(3, 1, 0, 0)
	y := b.Forward(x, nil)
	if y.At(0, 0, 0) != 3 || y.At(1, 0, 0) != 5 {
		t.Fatal("batchnorm affine wrong")
	}
}

func TestFCFlattensAndComputes(t *testing.T) {
	f := NewFC(4, 2)
	for i := 0; i < 4; i++ {
		f.W.Set(float32(i+1), i, 0) // col 0 = [1,2,3,4]
	}
	f.B[1] = 7
	x := tensor.New(1, 2, 2)
	for i := range x.Data() {
		x.Data()[i] = 1
	}
	y := f.Forward(x, nil)
	if y.At(0) != 10 || y.At(1) != 7 {
		t.Fatalf("fc output %v %v", y.At(0), y.At(1))
	}
}

func TestInceptionShapesAndForward(t *testing.T) {
	m := NewInception("3a", 192, 64, 96, 128, 16, 32, 32)
	in := Shape{192, 28, 28}
	out := m.OutShape(in)
	if out[0] != 256 || out[1] != 28 || out[2] != 28 {
		t.Fatalf("inception out shape %v", out)
	}
	// Forward on a small spatial size for speed.
	small := NewInception("t", 3, 2, 2, 3, 1, 2, 1)
	randomizeConvs(small.Convs(), 3)
	x := randomInput(Shape{3, 5, 5}, 4)
	y := small.Forward(x, nil)
	if y.Dim(0) != 8 || y.Dim(1) != 5 || y.Dim(2) != 5 {
		t.Fatalf("inception forward shape %v", y.Shape())
	}
}

func randomizeConvs(cs []*Conv, seed uint64) {
	r := xrand.New(seed)
	for _, c := range cs {
		for i := range c.W.Data() {
			c.W.Data()[i] = float32(r.NormFloat64() * 0.3)
		}
	}
}

func TestResidualIdentityAndProjection(t *testing.T) {
	// Identity shortcut when cin == cout and stride 1.
	r1 := NewResidual(8, 2, 8, 1)
	if r1.Proj != nil {
		t.Fatal("unexpected projection for identity block")
	}
	// Projection when shapes change.
	r2 := NewResidual(8, 4, 16, 2)
	if r2.Proj == nil {
		t.Fatal("missing projection")
	}
	out := r2.OutShape(Shape{8, 14, 14})
	if out[0] != 16 || out[1] != 7 || out[2] != 7 {
		t.Fatalf("residual out shape %v", out)
	}
	// With zero conv weights and identity shortcut, output = relu(x).
	x := randomInput(Shape{8, 6, 6}, 9)
	y := r1.Forward(x, nil)
	for i, v := range x.Data() {
		want := v
		if want < 0 {
			want = 0
		}
		if y.Data()[i] != want {
			t.Fatal("identity residual with zero weights must be relu(x)")
		}
	}
}

func TestResidualOutputNonNegative(t *testing.T) {
	r := NewResidual(4, 2, 8, 1)
	randomizeConvs(r.Convs(), 7)
	x := randomInput(Shape{4, 5, 5}, 8)
	y := r.Forward(x, nil)
	for _, v := range y.Data() {
		if v < 0 {
			t.Fatal("residual output must be post-ReLU non-negative")
		}
	}
}

// TestTraceOrderMatchesEnumeration is the load-bearing invariant: the
// simulator pairs Trace entries with MatrixLayerInfos positionally.
func TestTraceOrderMatchesEnumeration(t *testing.T) {
	topo := "conv3x4p1-pool-inception(t:2,2,3,1,2,1)-[conv1x4-conv3x4-conv1x8]x2-gap-6"
	net, err := Parse("mixed", Shape{2, 8, 8}, topo)
	if err != nil {
		t.Fatal(err)
	}
	randomize(net, 5)
	infos := net.MatrixLayerInfos()
	tr := &Trace{}
	net.Forward(randomInput(net.InShape, 6), tr)
	if len(tr.Layers) != len(infos) {
		t.Fatalf("trace has %d layers, enumeration %d", len(tr.Layers), len(infos))
	}
	for i := range infos {
		if tr.Layers[i] != infos[i].Layer {
			t.Fatalf("position %d: trace layer %s != enumerated %s",
				i, tr.Paths[i], infos[i].Path)
		}
		if !sameShape(tr.Inputs[i].Shape(), infos[i].In) {
			t.Fatalf("position %d (%s): traced input shape %v != enumerated %v",
				i, infos[i].Path, tr.Inputs[i].Shape(), infos[i].In)
		}
	}
}

func sameShape(a []int, b Shape) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestWeightSparsityAndCount(t *testing.T) {
	net, err := Parse("tiny", Shape{1, 6, 6}, "conv3x2-4")
	if err != nil {
		t.Fatal(err)
	}
	// conv3x2: 2*1*3*3 = 18 weights; output 4x4x2 = 32; fc 32*4 = 128.
	if got := net.WeightCount(); got != 18+128 {
		t.Fatalf("WeightCount = %d", got)
	}
	if net.WeightSparsity() != 1 {
		t.Fatal("all-zero net must have sparsity 1")
	}
	randomize(net, 2)
	if s := net.WeightSparsity(); s > 0.1 {
		t.Fatalf("randomized sparsity = %v", s)
	}
}

func TestActivationSparsityFromReLU(t *testing.T) {
	// Random weights with zero bias → roughly half the conv outputs are
	// negative → ReLU produces ~50% zeros reaching the next layer.
	net, err := Parse("two", Shape{1, 12, 12}, "conv3x8-conv3x8-10")
	if err != nil {
		t.Fatal(err)
	}
	randomize(net, 11)
	tr := &Trace{}
	net.Forward(randomInput(net.InShape, 12), tr)
	// Trace entry 1 is the second conv's input (post-ReLU).
	sp := tr.Inputs[1].Sparsity()
	if sp < 0.25 || sp > 0.75 {
		t.Fatalf("post-ReLU activation sparsity %v outside plausible band", sp)
	}
}

func TestMACs(t *testing.T) {
	net, err := Parse("m", Shape{1, 6, 6}, "conv3x2-4")
	if err != nil {
		t.Fatal(err)
	}
	infos := net.MatrixLayerInfos()
	if infos[0].MACs() != int64(9*2*16) {
		t.Fatalf("conv MACs = %d", infos[0].MACs())
	}
	if infos[1].MACs() != int64(32*4) {
		t.Fatalf("fc MACs = %d", infos[1].MACs())
	}
}

func TestNumericStabilitySmoke(t *testing.T) {
	net, err := Parse("s", Shape{1, 8, 8}, "conv3x4p1-pool-conv3x4p1-pool-8-4")
	if err != nil {
		t.Fatal(err)
	}
	randomize(net, 20)
	y := net.Forward(randomInput(net.InShape, 21), nil)
	for _, v := range y.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite output")
		}
	}
}

func TestGroupedConvForwardEqualsPerGroupConv(t *testing.T) {
	g := NewGroupedConv(4, 6, 3, 1, 1, 2)
	randomizeConvs(g.Convs, 31)
	x := randomInput(Shape{4, 5, 5}, 32)
	y := g.Forward(x, nil)
	if y.Dim(0) != 6 {
		t.Fatalf("grouped out channels %d", y.Dim(0))
	}
	// Group 1's outputs must equal convolving channels 2..3 alone.
	xa := channelSlice(x, 2, 2)
	ya := g.Convs[1].Forward(xa, nil)
	for co := 0; co < 3; co++ {
		for yy := 0; yy < 5; yy++ {
			for xx := 0; xx < 5; xx++ {
				if y.At(3+co, yy, xx) != ya.At(co, yy, xx) {
					t.Fatal("grouped conv group-1 output mismatch")
				}
			}
		}
	}
}

func TestGroupedConvTraceMatchesEnumeration(t *testing.T) {
	net, err := Parse("g", Shape{4, 8, 8}, "conv3x8g2p1-pool-6")
	if err != nil {
		t.Fatal(err)
	}
	randomize(net, 41)
	infos := net.MatrixLayerInfos()
	if len(infos) != 3 { // 2 conv groups + fc
		t.Fatalf("matrix layers = %d", len(infos))
	}
	if infos[0].Rows != 2*9 || infos[0].Cols != 4 {
		t.Fatalf("group geometry %dx%d", infos[0].Rows, infos[0].Cols)
	}
	tr := &Trace{}
	net.Forward(randomInput(net.InShape, 42), tr)
	if len(tr.Layers) != len(infos) {
		t.Fatalf("trace %d vs infos %d", len(tr.Layers), len(infos))
	}
	for i := range infos {
		if tr.Layers[i] != infos[i].Layer {
			t.Fatalf("position %d: %s vs %s", i, tr.Paths[i], infos[i].Path)
		}
		if !sameShape(tr.Inputs[i].Shape(), infos[i].In) {
			t.Fatalf("position %d shape mismatch", i)
		}
	}
}

func TestGroupedConvParserRejectsBadGroups(t *testing.T) {
	if _, err := Parse("b", Shape{3, 8, 8}, "conv3x8g2-4"); err == nil {
		t.Fatal("3 channels cannot split into 2 groups")
	}
	if _, err := Parse("b", Shape{4, 8, 8}, "conv3x7g2-4"); err == nil {
		t.Fatal("7 filters cannot split into 2 groups")
	}
}
