// Package train implements plain SGD with backpropagation for the
// sequential subset of nn layers (Conv, FC, ReLU, MaxPool).
//
// The Fig. 5 experiment needs *really trained* small networks: accuracy
// under injected ReRAM read errors is only meaningful relative to a
// network that actually classifies its task well. LeNet-scale models on
// the synthetic datasets train to >90 % in a few seconds of CPU time;
// nothing here aims at large-scale training.
package train

import (
	"fmt"
	"math"

	"sre/internal/dataset"
	"sre/internal/nn"
	"sre/internal/tensor"
	"sre/internal/xrand"
)

// Trainer drives SGD over a network.
type Trainer struct {
	Net *nn.Network
	LR  float32
	rng *xrand.RNG
}

// New wraps a network and He-initializes its weights.
func New(net *nn.Network, lr float32, seed uint64) *Trainer {
	t := &Trainer{Net: net, LR: lr, rng: xrand.New(seed)}
	t.initWeights()
	return t
}

func (t *Trainer) initWeights() {
	for _, li := range t.Net.MatrixLayerInfos() {
		r := t.rng.Split("init/" + li.Path)
		std := float32(math.Sqrt(2 / float64(li.Rows)))
		switch l := li.Layer.(type) {
		case *nn.Conv:
			for i := range l.W.Data() {
				l.W.Data()[i] = float32(r.NormFloat64()) * std
			}
		case *nn.FC:
			for i := range l.W.Data() {
				l.W.Data()[i] = float32(r.NormFloat64()) * std
			}
		}
	}
}

// TrainEpoch runs one pass of per-sample SGD in a random order and
// returns the mean cross-entropy loss.
func (t *Trainer) TrainEpoch(set *dataset.Set) float64 {
	order := t.rng.Perm(set.Len())
	total := 0.0
	for _, i := range order {
		total += t.Step(set.X[i], set.Y[i])
	}
	return total / float64(set.Len())
}

// Step performs one SGD update for a single sample and returns its loss.
func (t *Trainer) Step(x *tensor.Tensor, label int) float64 {
	// Forward with per-layer input caching.
	inputs := make([]*tensor.Tensor, len(t.Net.Layers))
	cur := x
	for i, l := range t.Net.Layers {
		inputs[i] = cur
		cur = l.Forward(cur, nil)
	}
	loss, dz := softmaxCrossEntropy(cur.Data(), label)
	dy := tensor.FromSlice(dz, cur.Shape()...)
	// Backward in reverse order, updating weights in place.
	for i := len(t.Net.Layers) - 1; i >= 0; i-- {
		dy = t.backward(t.Net.Layers[i], inputs[i], dy)
	}
	return loss
}

// Accuracy returns top-1 accuracy of the current weights on set.
func (t *Trainer) Accuracy(set *dataset.Set) float64 {
	correct := 0
	for i, x := range set.X {
		if Predict(t.Net, x) == set.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(set.Len())
}

// Predict returns the argmax class for input x.
func Predict(net *nn.Network, x *tensor.Tensor) int {
	y := net.Forward(x, nil)
	best, bestV := 0, y.Data()[0]
	for i, v := range y.Data() {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// softmaxCrossEntropy returns the loss and dLoss/dLogits.
func softmaxCrossEntropy(logits []float32, label int) (float64, []float32) {
	maxV := logits[0]
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	exps := make([]float64, len(logits))
	for i, v := range logits {
		exps[i] = math.Exp(float64(v - maxV))
		sum += exps[i]
	}
	dz := make([]float32, len(logits))
	for i := range logits {
		p := exps[i] / sum
		dz[i] = float32(p)
	}
	dz[label] -= 1
	loss := -math.Log(exps[label]/sum + 1e-30)
	return loss, dz
}

// backward computes dx for layer l given its cached input and upstream
// gradient dy, applying SGD weight updates in place.
func (t *Trainer) backward(l nn.Layer, x, dy *tensor.Tensor) *tensor.Tensor {
	switch v := l.(type) {
	case *nn.FC:
		return t.backwardFC(v, x, dy)
	case *nn.Conv:
		return t.backwardConv(v, x, dy)
	case nn.ReLU:
		// dx = dy where forward output was positive. Forward output
		// positivity equals input positivity for ReLU.
		dx := dy.Clone()
		for i, xv := range x.Data() {
			if xv <= 0 {
				dx.Data()[i] = 0
			}
		}
		return dx
	case *nn.MaxPool:
		return backwardMaxPool(v, x, dy)
	default:
		panic(fmt.Sprintf("train: layer %s not supported for backprop", l.Name()))
	}
}

func (t *Trainer) backwardFC(f *nn.FC, x, dy *tensor.Tensor) *tensor.Tensor {
	xf := x.Data() // cached input, flattened view is the same backing slice
	dyd := dy.Data()
	dx := make([]float32, f.In)
	w := f.W.Data()
	lr := t.LR
	for i := 0; i < f.In; i++ {
		row := w[i*f.Out : (i+1)*f.Out]
		xi := xf[i]
		var g float32
		for j, dyj := range dyd {
			g += row[j] * dyj
			row[j] -= lr * xi * dyj
		}
		dx[i] = g
	}
	for j, dyj := range dyd {
		f.B[j] -= lr * dyj
	}
	return tensor.FromSlice(dx, x.Shape()...)
}

func (t *Trainer) backwardConv(c *nn.Conv, x, dy *tensor.Tensor) *tensor.Tensor {
	h, w := x.Dim(1), x.Dim(2)
	hout, wout := dy.Dim(1), dy.Dim(2)
	dx := tensor.New(x.Shape()...)
	lr := t.LR
	kk := c.K * c.K
	for co := 0; co < c.Cout; co++ {
		wBase := c.W.Data()[co*c.Cin*kk : (co+1)*c.Cin*kk]
		dyPlane := dy.Data()[co*hout*wout : (co+1)*hout*wout]
		var biasGrad float32
		for oy := 0; oy < hout; oy++ {
			for ox := 0; ox < wout; ox++ {
				g := dyPlane[oy*wout+ox]
				if g == 0 {
					continue
				}
				biasGrad += g
				baseY := oy*c.Stride - c.Pad
				baseX := ox*c.Stride - c.Pad
				for ci := 0; ci < c.Cin; ci++ {
					xPlane := x.Data()[ci*h*w : (ci+1)*h*w]
					dxPlane := dx.Data()[ci*h*w : (ci+1)*h*w]
					wPlane := wBase[ci*kk : (ci+1)*kk]
					for ky := 0; ky < c.K; ky++ {
						iy := baseY + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							ix := baseX + kx
							if ix < 0 || ix >= w {
								continue
							}
							wi := ky*c.K + kx
							dxPlane[iy*w+ix] += wPlane[wi] * g
							wPlane[wi] -= lr * xPlane[iy*w+ix] * g
						}
					}
				}
			}
		}
		if c.B != nil {
			c.B[co] -= lr * biasGrad
		}
	}
	return dx
}

func backwardMaxPool(p *nn.MaxPool, x, dy *tensor.Tensor) *tensor.Tensor {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	hout, wout := dy.Dim(1), dy.Dim(2)
	dx := tensor.New(x.Shape()...)
	for ci := 0; ci < c; ci++ {
		for oy := 0; oy < hout; oy++ {
			for ox := 0; ox < wout; ox++ {
				// Recompute the argmax of the forward pass.
				bestY, bestX := -1, -1
				var best float32
				for ky := 0; ky < p.K; ky++ {
					iy := oy*p.Stride + ky - p.Pad
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < p.K; kx++ {
						ix := ox*p.Stride + kx - p.Pad
						if ix < 0 || ix >= w {
							continue
						}
						v := x.At(ci, iy, ix)
						if bestY < 0 || v > best {
							best, bestY, bestX = v, iy, ix
						}
					}
				}
				if bestY >= 0 {
					dx.Set(dx.At(ci, bestY, bestX)+dy.At(ci, oy, ox), ci, bestY, bestX)
				}
			}
		}
	}
	return dx
}
