package train

import (
	"math"
	"testing"

	"sre/internal/dataset"
	"sre/internal/nn"
	"sre/internal/tensor"
	"sre/internal/xrand"
)

func TestSoftmaxCrossEntropy(t *testing.T) {
	loss, dz := softmaxCrossEntropy([]float32{0, 0, 0}, 1)
	if math.Abs(loss-math.Log(3)) > 1e-6 {
		t.Fatalf("uniform loss = %v, want ln 3", loss)
	}
	// Gradient sums to zero and is p - onehot.
	var sum float32
	for _, d := range dz {
		sum += d
	}
	if math.Abs(float64(sum)) > 1e-6 {
		t.Fatalf("gradient sum = %v", sum)
	}
	if math.Abs(float64(dz[1])-(1.0/3-1)) > 1e-6 {
		t.Fatalf("dz[label] = %v", dz[1])
	}
	// Overflow safety with huge logits.
	loss, _ = softmaxCrossEntropy([]float32{1e4, 0}, 0)
	if math.IsNaN(loss) || math.IsInf(loss, 0) || loss > 1e-3 {
		t.Fatalf("big-logit loss = %v", loss)
	}
}

// numericalGrad estimates dLoss/dw by central difference.
func numericalGrad(net *nn.Network, x *tensor.Tensor, label int, w []float32, i int) float64 {
	const eps = 1e-2
	orig := w[i]
	w[i] = orig + eps
	lp, _ := softmaxCrossEntropy(net.Forward(x, nil).Data(), label)
	w[i] = orig - eps
	lm, _ := softmaxCrossEntropy(net.Forward(x, nil).Data(), label)
	w[i] = orig
	return (lp - lm) / (2 * eps)
}

// TestGradientCheck compares analytic gradients (recovered from the SGD
// update, grad = Δw/lr) against numerical differentiation on a small
// conv+pool+fc network.
func TestGradientCheck(t *testing.T) {
	net, err := nn.Parse("gc", nn.Shape{1, 8, 8}, "conv3x3-pool-5-3")
	if err != nil {
		t.Fatal(err)
	}
	const lr = 1e-3
	tr := New(net, lr, 42)
	r := xrand.New(7)
	x := tensor.New(1, 8, 8)
	for i := range x.Data() {
		x.Data()[i] = float32(r.Float64())
	}
	label := 2

	infos := net.MatrixLayerInfos()
	type probe struct {
		w []float32
		i int
	}
	var probes []probe
	for _, li := range infos {
		var w []float32
		switch l := li.Layer.(type) {
		case *nn.Conv:
			w = l.W.Data()
		case *nn.FC:
			w = l.W.Data()
		}
		for k := 0; k < 4; k++ {
			probes = append(probes, probe{w, r.Intn(len(w))})
		}
	}

	numeric := make([]float64, len(probes))
	for pi, p := range probes {
		numeric[pi] = numericalGrad(net, x, label, p.w, p.i)
	}
	before := make([]float32, len(probes))
	for pi, p := range probes {
		before[pi] = p.w[p.i]
	}
	tr.Step(x, label)
	// The loss surface has kinks (ReLU, max-pool argmax switches), so a
	// few probes may straddle one and diverge from the central
	// difference; require the large majority to agree tightly.
	bad := 0
	for pi, p := range probes {
		analytic := float64(before[pi]-p.w[p.i]) / lr
		diff := math.Abs(analytic - numeric[pi])
		scale := math.Max(math.Abs(analytic)+math.Abs(numeric[pi]), 1e-3)
		if diff/scale > 0.05 {
			bad++
			t.Logf("probe %d: analytic %.5f vs numeric %.5f", pi, analytic, numeric[pi])
		}
	}
	if bad > len(probes)/4 {
		t.Fatalf("%d/%d gradient probes disagree", bad, len(probes))
	}
}

func TestStepReducesLossOnAverage(t *testing.T) {
	net, err := nn.Parse("red", nn.Shape{1, 10, 10}, "conv3x4-pool-6-3")
	if err != nil {
		t.Fatal(err)
	}
	tr := New(net, 0.05, 3)
	r := xrand.New(5)
	x := tensor.New(1, 10, 10)
	for i := range x.Data() {
		x.Data()[i] = float32(r.Float64())
	}
	first := tr.Step(x, 1)
	var last float64
	for i := 0; i < 20; i++ {
		last = tr.Step(x, 1)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v → %v", first, last)
	}
}

// TestLearnsSyntheticTask is the end-to-end check: a LeNet-style model
// must learn the synthetic dataset well above chance. This is the
// foundation of the Fig. 5 experiment.
func TestLearnsSyntheticTask(t *testing.T) {
	cfg := dataset.Config{Name: "t", Channels: 1, Size: 14, Classes: 4,
		Train: 160, Test: 80, Noise: 0.06, MaxShift: 1, Seed: 11}
	trainSet, testSet := dataset.Generate(cfg)
	net, err := nn.Parse("mini", nn.Shape{1, 14, 14}, "conv5x6-pool-conv3x8-pool-32-4")
	if err != nil {
		t.Fatal(err)
	}
	tr := New(net, 0.04, 99)
	for epoch := 0; epoch < 10; epoch++ {
		tr.TrainEpoch(trainSet)
	}
	acc := tr.Accuracy(testSet)
	if acc < 0.85 {
		t.Fatalf("test accuracy %.2f after training; expected > 0.85", acc)
	}
}

func TestPredictArgmax(t *testing.T) {
	net, err := nn.Parse("p", nn.Shape{1, 4, 4}, "3")
	if err != nil {
		t.Fatal(err)
	}
	fc := net.MatrixLayerInfos()[0].Layer.(*nn.FC)
	fc.B[2] = 10 // bias forces class 2 regardless of input
	if got := Predict(net, tensor.New(1, 4, 4)); got != 2 {
		t.Fatalf("Predict = %d", got)
	}
}

func TestUnsupportedLayerPanics(t *testing.T) {
	net := &nn.Network{NetName: "bad", InShape: nn.Shape{1, 4, 4},
		Layers: []nn.Layer{&nn.AvgPool{}, nn.NewFC(1, 2)}}
	tr := New(net, 0.01, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsupported layer")
		}
	}()
	tr.Step(tensor.New(1, 4, 4), 0)
}
