package reram

import (
	"math"
	"testing"

	"sre/internal/xrand"
)

func TestValidate(t *testing.T) {
	if WOxBaseline().Validate() != nil {
		t.Fatal("baseline cell rejected")
	}
	bad := []Cell{
		{Bits: 0, RRatio: 10, Sigma: 0.1},
		{Bits: 2, RRatio: 0.5, Sigma: 0.1},
		{Bits: 2, RRatio: 10, Sigma: -1},
		{Bits: 9, RRatio: 10, Sigma: 0.1},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("accepted %+v", c)
		}
	}
}

func TestImproved(t *testing.T) {
	b := WOxBaseline()
	i3 := b.Improved(3)
	if i3.RRatio != 3*b.RRatio || math.Abs(i3.Sigma-b.Sigma/3) > 1e-12 {
		t.Fatal("Improved scaling wrong")
	}
}

func TestCurrentLevelsMonotonic(t *testing.T) {
	c := WOxBaseline()
	prev := -1.0
	for s := 0; s <= 3; s++ {
		i := c.Current(s)
		if i <= prev {
			t.Fatal("currents not strictly increasing")
		}
		prev = i
	}
	if math.Abs(c.Current(3)-1) > 1e-12 {
		t.Fatal("top state must normalize to Ion = 1")
	}
	if math.Abs(c.Current(0)-1/c.RRatio) > 1e-12 {
		t.Fatal("bottom state must be Ion/R")
	}
}

func TestSumNoiseGrowsWithSqrtM(t *testing.T) {
	c := WOxBaseline()
	s1 := c.SumNoiseStd(4, 1.5)
	s2 := c.SumNoiseStd(16, 1.5)
	if math.Abs(s2/s1-2) > 1e-9 {
		t.Fatalf("noise ratio %v, want 2 (√(16/4))", s2/s1)
	}
	if c.SumNoiseStd(0, 1.5) != 0 {
		t.Fatal("no driven wordlines must mean no noise")
	}
}

func TestReadErrorMonotoneInWordlines(t *testing.T) {
	c := WOxBaseline()
	prev := -1.0
	for _, m := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		p := c.ReadErrorProb(m, 1.5)
		if p < prev {
			t.Fatalf("error prob decreased at m=%d", m)
		}
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
		prev = p
	}
}

func TestBetterCellsErrLess(t *testing.T) {
	b := WOxBaseline()
	for _, m := range []int{8, 16, 64} {
		p1 := b.ReadErrorProb(m, 1.5)
		p2 := b.Improved(2).ReadErrorProb(m, 1.5)
		p3 := b.Improved(3).ReadErrorProb(m, 1.5)
		if !(p3 <= p2 && p2 <= p1) {
			t.Fatalf("m=%d: error probs not ordered: %v %v %v", m, p1, p2, p3)
		}
	}
}

// TestCliffShape pins the calibration the Fig. 5 reproduction relies on:
// near-perfect reads at small OU heights, heavy errors at full-crossbar
// activation.
func TestCliffShape(t *testing.T) {
	c := WOxBaseline()
	if p := c.ReadErrorProb(8, 1.5); p > 0.02 {
		t.Fatalf("baseline error at 8 wordlines = %v, want small", p)
	}
	if p := c.ReadErrorProb(128, 1.5); p < 0.3 {
		t.Fatalf("baseline error at 128 wordlines = %v, want large", p)
	}
	// The 3× cell must be clean at 16 but degraded at 128.
	i3 := c.Improved(3)
	if p := i3.ReadErrorProb(16, 1.5); p > 0.01 {
		t.Fatalf("3x cell error at 16 = %v", p)
	}
	if p := i3.ReadErrorProb(128, 1.5); p < 0.002 {
		t.Fatalf("3x cell error at 128 = %v, want noticeable", p)
	}
}

func TestSenseSumNoiselessIsExact(t *testing.T) {
	c := Cell{Bits: 2, RRatio: 20, Sigma: 0}
	rng := xrand.New(1)
	states := []uint16{3, 1, 0, 2}
	bits := []uint16{1, 1, 0, 1}
	for i := 0; i < 10; i++ {
		if got := c.SenseSum(states, bits, rng); got != 6 {
			t.Fatalf("noiseless sense = %d, want 6", got)
		}
	}
	if c.SenseSum([]uint16{3}, []uint16{0}, rng) != 0 {
		t.Fatal("no driven wordlines must sense 0")
	}
}

func TestSenseSumErrorRateMatchesAnalytic(t *testing.T) {
	c := WOxBaseline()
	rng := xrand.New(2)
	const m, trials = 32, 4000
	states := make([]uint16, m)
	bits := make([]uint16, m)
	var meanState float64
	for i := range states {
		states[i] = uint16(rng.Intn(4))
		bits[i] = 1
		meanState += float64(states[i])
	}
	meanState /= m
	ideal := 0
	for _, s := range states {
		ideal += int(s)
	}
	errs := 0
	for i := 0; i < trials; i++ {
		if c.SenseSum(states, bits, rng) != ideal {
			errs++
		}
	}
	got := float64(errs) / trials
	want := c.ReadErrorProb(m, meanState)
	if math.Abs(got-want) > 0.05+0.3*want {
		t.Fatalf("MC error rate %v vs analytic %v", got, want)
	}
}

func TestSenseSumClamps(t *testing.T) {
	// With monstrous σ the sensed value must stay within [0, m·maxState].
	c := Cell{Bits: 2, RRatio: 5, Sigma: 10}
	rng := xrand.New(3)
	states := []uint16{3, 3}
	bits := []uint16{1, 1}
	for i := 0; i < 200; i++ {
		k := c.SenseSum(states, bits, rng)
		if k < 0 || k > 6 {
			t.Fatalf("sensed %d outside [0,6]", k)
		}
	}
}

func TestADCBitsFor(t *testing.T) {
	// Paper §5.3: 16×16 OU with 2-bit cells needs a 6-bit ADC.
	if got := ADCBitsFor(16, 2); got != 6 {
		t.Fatalf("ADCBitsFor(16,2) = %d, want 6", got)
	}
	// ISAAC-style full 128-row activation with 2-bit cells needs 9 bits
	// (128·3+1 = 385 levels); the paper's ISAAC config lists 8 bits
	// because of its encoding tricks — we only check our formula's math.
	if got := ADCBitsFor(128, 2); got != 9 {
		t.Fatalf("ADCBitsFor(128,2) = %d, want 9", got)
	}
	if got := ADCBitsFor(1, 1); got != 1 {
		t.Fatalf("ADCBitsFor(1,1) = %d, want 1", got)
	}
}

func TestChunkNoiseStd(t *testing.T) {
	cn := ChunkNoise{
		Cell:           WOxBaseline(),
		SlicesPerInput: 2, CellsPerWeight: 2,
		DACBits: 1, CellBits: 2,
		MeanState: 1.5, Density: 0.5,
	}
	got := cn.Std(16, 0.5, 0.25)
	// Hand-computed: m = 8; per-read variance = DiscreteReadVar(8, 1.5);
	// Σ over (i,j) of 4^(i+2j) = (1+4)·(1+16) = 85.
	want := math.Sqrt(cn.Cell.DiscreteReadVar(8, 1.5)*85) * 0.5 * 0.25
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ChunkNoise.Std = %v, want %v", got, want)
	}
	if cn.Std(0, 1, 1) != 0 {
		t.Fatal("zero rows must carry zero noise")
	}
	zero := cn
	zero.Density = 0
	if zero.Std(16, 1, 1) != 0 {
		t.Fatal("zero density must carry zero noise")
	}
}

func TestMoreWordlinesNeverImproveAccuracyProxy(t *testing.T) {
	// Chunked reads: for a fixed R=128 rows split into chunks of n, the
	// total post-ADC error variance must grow with n — the ADC's rounding
	// corrects sub-half-LSB noise, so many small reads beat few large
	// ones. This is the Fig. 5 x-axis mechanism at value level.
	cn := ChunkNoise{Cell: WOxBaseline(), SlicesPerInput: 16, CellsPerWeight: 8,
		DACBits: 1, CellBits: 2, MeanState: 1.5, Density: 0.5}
	prevVar := -1.0
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128} {
		chunks := 128 / n
		std := cn.Std(n, 1, 1)
		totalVar := float64(chunks) * std * std
		// Allow a small tolerance: once reads are fully saturated the
		// discrete variance approaches the raw Gaussian variance, which
		// is flat in this comparison, and tiny corrections go either way.
		if totalVar < prevVar*0.95 {
			t.Fatalf("total variance decreased at n=%d", n)
		}
		prevVar = totalVar
	}
	// And the growth must be dramatic: total error variance at
	// full-crossbar activation must exceed the 4-row-chunk total by orders
	// of magnitude (in the accurate regime rounding eats nearly all noise).
	tot4 := 32 * cn.Std(4, 1, 1) * cn.Std(4, 1, 1)
	tot128 := cn.Std(128, 1, 1) * cn.Std(128, 1, 1)
	if tot128 < 100*tot4 {
		t.Fatalf("discrete model not super-linear: var4=%v var128=%v", tot4, tot128)
	}
}
