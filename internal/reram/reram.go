// Package reram models the ReRAM device non-idealities that force the
// OU-based architecture (paper §3, Fig. 5).
//
// Mechanism (following DL-RSIM [31] and the ISSCC'18 macro [6]): each
// cell's read current deviates from its programmed level; the deviations
// accumulate over the concurrently activated wordlines of a bitline, and
// once the accumulated distribution overlaps the neighbouring
// sum-of-products level the ADC mis-senses the result. More active
// wordlines ⇒ wider distribution ⇒ more errors; larger R-ratio and
// smaller deviation σ ⇒ taller level spacing relative to noise ⇒ fewer
// errors. That is exactly the trade Fig. 5 sweeps.
//
// Current model: a cell in state s ∈ [0, 2^Bits−1] draws
//
//	I(s) = Ioff + s·ΔI,  ΔI = (Ion − Ioff)/(2^Bits−1),  Ioff = Ion/RRatio
//
// with multiplicative Gaussian deviation σ (relative to the cell's own
// current). A read of m driven wordlines senses Σ I(s_i)(1+ε_i); the ADC
// decides the nearest ideal level, so a read errs when the accumulated
// deviation exceeds ΔI/2.
package reram

import (
	"fmt"
	"math"

	"sre/internal/stats"
	"sre/internal/xrand"
)

// Cell describes a ReRAM cell technology.
type Cell struct {
	Bits   int     // bits stored per cell
	RRatio float64 // Ion/Ioff resistance window
	Sigma  float64 // relative per-cell current deviation
}

// WOxBaseline returns the baseline (R_b, σ_b) WOx cell of the paper's
// Fig. 5. The absolute constants are calibrated so that, as in the paper,
// accuracy is solid at ≤ 8 concurrent wordlines, marginal near 16, and
// collapses well before 128.
func WOxBaseline() Cell { return Cell{Bits: 2, RRatio: 20, Sigma: 0.03} }

// Improved returns the cell with k× larger R-ratio and k× smaller σ —
// the "(k·R_b, σ_b/k)" variants of Fig. 5.
func (c Cell) Improved(k float64) Cell {
	return Cell{Bits: c.Bits, RRatio: c.RRatio * k, Sigma: c.Sigma / k}
}

// Validate rejects non-physical parameters.
func (c Cell) Validate() error {
	if c.Bits <= 0 || c.Bits > 8 {
		return fmt.Errorf("reram: bits %d out of range", c.Bits)
	}
	if c.RRatio <= 1 {
		return fmt.Errorf("reram: R-ratio %v must exceed 1", c.RRatio)
	}
	if c.Sigma < 0 {
		return fmt.Errorf("reram: negative sigma")
	}
	return nil
}

// maxState returns the top programmable state.
func (c Cell) maxState() int { return 1<<uint(c.Bits) - 1 }

// levels returns (Ioff, ΔI) with Ion normalized to 1.
func (c Cell) levels() (ioff, deltaI float64) {
	ioff = 1 / c.RRatio
	deltaI = (1 - ioff) / float64(c.maxState())
	return ioff, deltaI
}

// Current returns the mean normalized current of state s.
func (c Cell) Current(s int) float64 {
	if s < 0 || s > c.maxState() {
		panic("reram: state out of range")
	}
	ioff, deltaI := c.levels()
	return ioff + float64(s)*deltaI
}

// SumNoiseStd returns the standard deviation of the sensed bitline sum in
// LSB (ΔI) units when m wordlines are driven and the driven cells sit at
// meanState on average. Deviations are independent per cell, so the
// accumulated σ grows as √m — the root cause of the Fig. 5 cliff.
func (c Cell) SumNoiseStd(m int, meanState float64) float64 {
	if m <= 0 {
		return 0
	}
	ioff, deltaI := c.levels()
	iTyp := ioff + meanState*deltaI
	return math.Sqrt(float64(m)) * c.Sigma * iTyp / deltaI
}

// ReadErrorProb returns the probability that a single bitline read is
// sensed at the wrong level: P(|N(0, σ_sum)| > 1/2 LSB).
func (c Cell) ReadErrorProb(m int, meanState float64) float64 {
	sd := c.SumNoiseStd(m, meanState)
	if sd == 0 {
		return 0
	}
	return 2 * (1 - stats.NormalCDF(0.5/sd))
}

// SenseSum Monte-Carlo-simulates one bitline read: states[i] is the cell
// state on wordline i, bits[i] the (0/1) driver value. It returns the
// integer sum the ADC reports, clamped to the representable range.
func (c Cell) SenseSum(states, bits []uint16, rng *xrand.RNG) int {
	if len(states) != len(bits) {
		panic("reram: states/bits length mismatch")
	}
	ioff, deltaI := c.levels()
	ideal := 0
	current := 0.0
	m := 0
	for i, b := range bits {
		if b == 0 {
			continue
		}
		if b != 1 {
			panic("reram: SenseSum models a 1-bit driver")
		}
		s := int(states[i])
		ideal += s
		mean := ioff + float64(s)*deltaI
		current += mean * (1 + c.Sigma*rng.NormFloat64())
		m++
	}
	if m == 0 {
		return 0
	}
	// The ADC decides the nearest ideal level given the (known) count of
	// driven wordlines: level k has current m·Ioff + k·ΔI.
	k := int(math.Round((current - float64(m)*ioff) / deltaI))
	if k < 0 {
		k = 0
	}
	if max := m * c.maxState(); k > max {
		k = max
	}
	return k
}

// ADCBitsFor returns the ADC resolution needed to read a sum over m
// wordlines of cells with c.Bits bits: ceil(log2(m·(2^Bits−1)+1)).
// With a 16×16 OU and 2-bit cells this is 6 bits, matching Table 1.
func ADCBitsFor(m, cellBits int) int {
	levels := m*(1<<uint(cellBits)-1) + 1
	b := 0
	for 1<<uint(b) < levels {
		b++
	}
	return b
}

// DiscreteReadVar returns the variance, in LSB² units, of the *sensed*
// level error of a single read with m driven wordlines. The ADC rounds to
// the nearest level, so deviations below half an LSB are corrected
// entirely — this nonlinearity is why small OUs read accurately and large
// ones collapse (Fig. 5): the residual variance is near zero until the
// accumulated σ approaches the level spacing, then grows rapidly.
func (c Cell) DiscreteReadVar(m int, meanState float64) float64 {
	sd := c.SumNoiseStd(m, meanState)
	if sd == 0 {
		return 0
	}
	// Var = 2·Σ_{j≥1} j²·P(round(N(0,sd)) = j); terms die off fast.
	v := 0.0
	for j := 1; ; j++ {
		p := stats.NormalCDF((float64(j)+0.5)/sd) - stats.NormalCDF((float64(j)-0.5)/sd)
		term := 2 * float64(j) * float64(j) * p
		v += term
		if term < 1e-12*v || float64(j) > 6*sd+4 {
			break
		}
	}
	return v
}

// ChunkNoise describes the value-domain read noise for one n-row chunk
// of a dot product (see Std).
type ChunkNoise struct {
	Cell           Cell
	SlicesPerInput int // activation bit slices (quant.SlicesPerInput)
	CellsPerWeight int // weight cell groups (quant.CellsPerWeight)
	DACBits        int
	CellBits       int
	MeanState      float64 // average programmed state of driven cells
	Density        float64 // fraction of wordlines driven with a 1 bit
}

// Std returns the standard deviation, in *value* units, of the error a
// hardware computation adds to one chunk of n dot-product rows, given the
// activation/weight quantization scales. Each of the
// SlicesPerInput×CellsPerWeight reads carries independent post-ADC
// (discrete) level noise weighted by its bit position
// 2^(i·DACBits + j·CellBits).
func (cn ChunkNoise) Std(n int, aScale, wScale float64) float64 {
	m := int(math.Round(cn.Density * float64(n)))
	if m <= 0 {
		return 0
	}
	readVar := cn.Cell.DiscreteReadVar(m, cn.MeanState)
	var sumSq float64
	for i := 0; i < cn.SlicesPerInput; i++ {
		for j := 0; j < cn.CellsPerWeight; j++ {
			w := math.Pow(2, float64(i*cn.DACBits+j*cn.CellBits))
			sumSq += w * w
		}
	}
	return math.Sqrt(readVar*sumSq) * aScale * wScale
}
