// Package isaac models the over-idealized ISAAC-style accelerator the
// paper compares against (§7.5, Fig. 24): every wordline of a 128×128
// crossbar is activated in a single 100 ns cycle, read by an 8-bit ADC,
// ignoring the accumulated current-deviation limit that makes such a
// design mis-sense in practice (§3).
//
// Latency: tiles operate in parallel and each consumes one cycle per
// (window, input bit slice), so a layer takes windows·slices cycles
// regardless of sparsity. ReCom-style weight-matrix-row compression
// (applied for the paper's fair comparison) packs retained rows into
// fewer row blocks: it cannot shorten latency, but it removes whole
// crossbars and their energy.
package isaac

import (
	"sre/internal/compress"
	"sre/internal/energy"
	"sre/internal/mapping"
	"sre/internal/noc"
	"sre/internal/quant"
)

// Config describes the ISAAC-style design point.
type Config struct {
	Geometry mapping.Geometry // crossbar size; OU fields are ignored
	Quant    quant.Params
	ADCBits  int  // 8 in ISAAC
	ReCom    bool // apply weight-matrix-row compression
	Energy   energy.Config
	NoC      noc.Config // zero value disables interconnect accounting
}

// DefaultConfig returns the paper's ISAAC comparison point.
func DefaultConfig() Config {
	return Config{
		Geometry: mapping.Default(),
		Quant:    quant.Default(),
		ADCBits:  8,
		ReCom:    true,
		Energy:   energy.Default(),
		NoC:      noc.Default(),
	}
}

// LayerInput describes one layer: its compression structure (for ReCom
// row counting) and window count.
type LayerInput struct {
	Name       string
	Struct     *compress.Structure
	Windows    int
	OutputBits int64 // output feature-map size, for interconnect energy
	// ParallelGroup marks grouped-convolution siblings that execute
	// concurrently (latency of the slowest, energy of all).
	ParallelGroup string
}

// LayerResult reports one layer.
type LayerResult struct {
	Name   string
	Cycles int64
	Time   float64
	Tiles  int
	Energy energy.Breakdown
}

// NetworkResult aggregates layers.
type NetworkResult struct {
	Layers []LayerResult
	Cycles int64
	Time   float64
	Energy energy.Breakdown
}

// SimulateLayer evaluates one layer on the ISAAC model.
func SimulateLayer(l LayerInput, cfg Config) LayerResult {
	lay := l.Struct.Layout
	spi := cfg.Quant.SlicesPerInput()
	cycleTime := cfg.Energy.ISAACCycle

	// Rows that remain mapped after (optional) ReCom packing.
	mappedRows := lay.Rows
	if cfg.ReCom {
		mappedRows = 0
		for rb := 0; rb < lay.RowBlocks; rb++ {
			mappedRows += l.Struct.BlockNonZeroRows(rb).Count()
		}
	}
	rowBlocks := (mappedRows + lay.XbarRows - 1) / lay.XbarRows
	if rowBlocks == 0 {
		rowBlocks = 1
	}
	tiles := rowBlocks * lay.ColBlocks

	cycles := int64(l.Windows) * int64(spi)
	res := LayerResult{Name: l.Name, Cycles: cycles, Time: float64(cycles) * cycleTime, Tiles: tiles}

	// Energy per tile-cycle: the full crossbar fires — XbarCols ADC
	// conversions at ISAAC resolution, XbarRows driven wordlines, array
	// and register costs over the long cycle.
	e := cfg.Energy
	convE := e.ADCConversionEnergy(cfg.ADCBits)
	dacPer := e.DACPower / float64(e.DACCount)
	shPer := e.SHPower / float64(e.SHCount)
	// The whole array is active: scale the per-OU array power by the
	// crossbar/OU cell ratio of the Table 1 reference (16×16).
	arrayP := e.ArrayPowerPerOU * float64(lay.XbarRows*lay.XbarCols) / 256
	perTileCycle := arrayP*cycleTime +
		float64(lay.XbarRows)*dacPer*cycleTime +
		float64(lay.XbarCols)*shPer*cycleTime +
		float64(lay.XbarCols)*convE +
		(e.IRPower+e.ORPower+e.SAPower)/e.RefClock*float64(lay.XbarCols)
	res.Energy.Compute = float64(tiles) * float64(cycles) * perTileCycle

	// One eDRAM batch fetch per (window, row block) per column of tiles.
	fetchBits := lay.XbarRows * cfg.Quant.ABits
	res.Energy.EDRAM = float64(l.Windows) * float64(tiles) * e.FetchEnergy(fetchBits)
	res.Energy.Leakage = e.LeakageEnergy(res.Time) * float64(tiles)
	res.Energy.Interconnect = cfg.NoC.LayerHandoffEnergy(l.OutputBits)
	return res
}

// SimulateNetwork sums layers (sequential execution, like the SRE model).
func SimulateNetwork(layers []LayerInput, cfg Config) NetworkResult {
	var out NetworkResult
	for i := 0; i < len(layers); {
		j := i + 1
		if g := layers[i].ParallelGroup; g != "" {
			for j < len(layers) && layers[j].ParallelGroup == g {
				j++
			}
		}
		var maxCycles int64
		var maxTime float64
		for k := i; k < j; k++ {
			lr := SimulateLayer(layers[k], cfg)
			out.Layers = append(out.Layers, lr)
			out.Energy.Add(lr.Energy)
			if lr.Cycles > maxCycles {
				maxCycles, maxTime = lr.Cycles, lr.Time
			}
		}
		out.Cycles += maxCycles
		out.Time += maxTime
		i = j
	}
	return out
}
