package isaac

import (
	"testing"

	"sre/internal/compress"
	"sre/internal/mapping"
	"sre/internal/quant"
	"sre/internal/tensor"
	"sre/internal/xrand"
)

func buildStruct(rows, cols int, rowZeroFrac float64, seed uint64) *compress.Structure {
	r := xrand.New(seed)
	w := tensor.New(rows, cols)
	for row := 0; row < rows; row++ {
		if r.Bernoulli(rowZeroFrac) {
			continue
		}
		for c := 0; c < cols; c++ {
			w.Set(float32(r.Float64()+0.1), row, c)
		}
	}
	p := quant.Default()
	return compress.Build(compress.NewFloatSource(w, p), p, mapping.Default())
}

func TestLatencyIndependentOfSparsity(t *testing.T) {
	dense := buildStruct(256, 32, 0, 1)
	sparse := buildStruct(256, 32, 0.8, 2)
	cfg := DefaultConfig()
	a := SimulateLayer(LayerInput{Name: "d", Struct: dense, Windows: 10}, cfg)
	b := SimulateLayer(LayerInput{Name: "s", Struct: sparse, Windows: 10}, cfg)
	if a.Cycles != b.Cycles {
		t.Fatalf("ISAAC latency must not depend on sparsity: %d vs %d", a.Cycles, b.Cycles)
	}
	// 10 windows × 16 slices.
	if a.Cycles != 160 {
		t.Fatalf("cycles = %d, want 160", a.Cycles)
	}
	if a.Time <= 0 || a.Time != float64(a.Cycles)*cfg.Energy.ISAACCycle {
		t.Fatal("time accounting wrong")
	}
}

func TestReComRemovesTilesAndEnergy(t *testing.T) {
	sparse := buildStruct(256, 32, 0.8, 3)
	with := DefaultConfig()
	without := DefaultConfig()
	without.ReCom = false
	a := SimulateLayer(LayerInput{Name: "s", Struct: sparse, Windows: 4}, with)
	b := SimulateLayer(LayerInput{Name: "s", Struct: sparse, Windows: 4}, without)
	if a.Tiles >= b.Tiles {
		t.Fatalf("ReCom did not remove row blocks: %d vs %d", a.Tiles, b.Tiles)
	}
	if a.Energy.Total() >= b.Energy.Total() {
		t.Fatal("ReCom did not save energy")
	}
	if a.Cycles != b.Cycles {
		t.Fatal("ReCom must not change ISAAC latency")
	}
}

func TestNetworkAggregation(t *testing.T) {
	s := buildStruct(128, 16, 0.5, 4)
	cfg := DefaultConfig()
	layers := []LayerInput{
		{Name: "a", Struct: s, Windows: 2},
		{Name: "b", Struct: s, Windows: 3},
	}
	res := SimulateNetwork(layers, cfg)
	if res.Cycles != (2+3)*16 {
		t.Fatalf("network cycles = %d", res.Cycles)
	}
	if res.Energy.Total() <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestAllZeroLayerKeepsOneRowBlock(t *testing.T) {
	s := buildStruct(128, 16, 1.0, 5)
	res := SimulateLayer(LayerInput{Name: "z", Struct: s, Windows: 1}, DefaultConfig())
	if res.Tiles <= 0 {
		t.Fatal("tile count must stay positive")
	}
}
