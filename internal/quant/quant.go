// Package quant implements fixed-point quantization and the bit-level
// decomposition that maps quantized values onto ReRAM hardware.
//
// In a practical ReRAM accelerator (paper §2.1, Fig. 3):
//
//   - a weight quantized to WBits is split into WBits/CellBits groups and
//     each group is stored in one cell, so one logical weight column spans
//     WBits/CellBits physical bitlines (LSB group on the first bitline);
//   - an activation quantized to ABits is split into ABits/DACBits slices
//     that are fed to the wordline driver over successive groups of
//     cycles (LSB slice first).
//
// Decomposition is where *bit-level sparsity* (paper §2.2, Fig. 4) comes
// from: a small non-zero weight still has all-zero high cells, and a small
// activation has all-zero high slices. Both are exposed here as density
// measurements consumed by the Fig. 4 experiment.
package quant

import (
	"fmt"
	"math"

	"sre/internal/tensor"
)

// Params describes a fixed-point format and its hardware decomposition.
type Params struct {
	WBits    int // weight magnitude precision in bits (paper: 16)
	ABits    int // activation magnitude precision in bits (paper: 16)
	CellBits int // bits stored per ReRAM cell (paper default: 2)
	DACBits  int // wordline-driver resolution in bits (paper: 1)
}

// Default returns the paper's Table 1 configuration: 16-bit values, 2-bit
// cells, 1-bit DACs.
func Default() Params { return Params{WBits: 16, ABits: 16, CellBits: 2, DACBits: 1} }

// Validate checks the decomposition divides evenly.
func (p Params) Validate() error {
	switch {
	case p.WBits <= 0 || p.ABits <= 0 || p.CellBits <= 0 || p.DACBits <= 0:
		return fmt.Errorf("quant: non-positive field in %+v", p)
	case p.WBits%p.CellBits != 0:
		return fmt.Errorf("quant: WBits %d not divisible by CellBits %d", p.WBits, p.CellBits)
	case p.ABits%p.DACBits != 0:
		return fmt.Errorf("quant: ABits %d not divisible by DACBits %d", p.ABits, p.DACBits)
	case p.CellBits > 16 || p.DACBits > 16:
		return fmt.Errorf("quant: unreasonable cell/DAC width in %+v", p)
	}
	return nil
}

// CellsPerWeight returns how many bitlines one logical weight occupies.
func (p Params) CellsPerWeight() int { return p.WBits / p.CellBits }

// SlicesPerInput returns how many sequential bit slices one activation
// needs.
func (p Params) SlicesPerInput() int { return p.ABits / p.DACBits }

// SlicesPerWeight returns how many bit slices one weight decomposes
// into — numerically CellsPerWeight, but named for the slice-major
// (WSS) view where same-significance cells of neighbouring weights are
// grouped rather than the cells of one weight.
func (p Params) SlicesPerWeight() int { return p.WBits / p.CellBits }

// QuantizeUnsigned maps |x| into [0, 2^bits−1] with the given scale
// (values-per-LSB). Values are clamped at the top code.
func QuantizeUnsigned(x float64, bits int, scale float64) uint32 {
	if x <= 0 || scale <= 0 {
		return 0
	}
	q := int64(math.Round(x / scale))
	max := int64(1)<<uint(bits) - 1
	if q > max {
		q = max
	}
	return uint32(q)
}

// ScaleFor returns the quantization scale that maps maxAbs to the top
// code of a bits-wide unsigned format. A zero maxAbs yields scale 1 so
// that all-zero tensors quantize to all-zero codes.
func ScaleFor(maxAbs float64, bits int) float64 {
	if maxAbs == 0 {
		return 1
	}
	return maxAbs / float64(uint64(1)<<uint(bits)-1)
}

// DecomposeCells splits the magnitude code q into WBits/CellBits cell
// values, least-significant group first. dst may be nil.
func (p Params) DecomposeCells(q uint32, dst []uint16) []uint16 {
	n := p.CellsPerWeight()
	if dst == nil {
		dst = make([]uint16, n)
	}
	mask := uint32(1)<<uint(p.CellBits) - 1
	for i := 0; i < n; i++ {
		dst[i] = uint16(q >> uint(i*p.CellBits) & mask)
	}
	return dst
}

// DecomposeSlices splits the activation code q into ABits/DACBits driver
// slices, least-significant first. dst may be nil.
func (p Params) DecomposeSlices(q uint32, dst []uint16) []uint16 {
	n := p.SlicesPerInput()
	if dst == nil {
		dst = make([]uint16, n)
	}
	mask := uint32(1)<<uint(p.DACBits) - 1
	for i := 0; i < n; i++ {
		dst[i] = uint16(q >> uint(i*p.DACBits) & mask)
	}
	return dst
}

// DecomposeWeightSlices splits the weight magnitude code q into
// WBits/CellBits bit slices, least-significant first — the weight-side
// mirror of DecomposeSlices. The values equal DecomposeCells; the
// distinction is interpretive: slice j of every weight in an OU column
// group lands in the same physical group under the WSS slice-major
// mapping, so an all-zero slice j across a group elides that group
// entirely. dst may be nil.
func (p Params) DecomposeWeightSlices(q uint32, dst []uint16) []uint16 {
	n := p.SlicesPerWeight()
	if dst == nil {
		dst = make([]uint16, n)
	}
	mask := uint32(1)<<uint(p.CellBits) - 1
	for i := 0; i < n; i++ {
		dst[i] = uint16(q >> uint(i*p.CellBits) & mask)
	}
	return dst
}

// WeightSliceDensities returns, per weight bit slice (LSB first), the
// fraction of non-zero slice values across all the matrix's weights —
// the per-slice refinement of CellMatrix.Density and the statistic that
// motivates WSS: magnitude-skewed weights leave high-order slices
// almost entirely zero.
func (m *Matrix) WeightSliceDensities() []float64 {
	spw := m.P.SlicesPerWeight()
	counts := make([]int, spw)
	buf := make([]uint16, spw)
	for _, q := range m.Q {
		m.P.DecomposeWeightSlices(q, buf)
		for j, s := range buf {
			if s != 0 {
				counts[j]++
			}
		}
	}
	out := make([]float64, spw)
	if len(m.Q) == 0 {
		return out
	}
	for j, n := range counts {
		out[j] = float64(n) / float64(len(m.Q))
	}
	return out
}

// ComposeCells reassembles a magnitude code from its cell values
// (inverse of DecomposeCells).
func (p Params) ComposeCells(cells []uint16) uint32 {
	var q uint32
	for i, c := range cells {
		q |= uint32(c) << uint(i*p.CellBits)
	}
	return q
}

// ComposeSlices reassembles an activation code from its slices.
func (p Params) ComposeSlices(slices []uint16) uint32 {
	var q uint32
	for i, s := range slices {
		q |= uint32(s) << uint(i*p.DACBits)
	}
	return q
}

// Matrix is a quantized weight matrix in crossbar orientation: Rows×Cols
// magnitude codes with separate signs. Q[r][c] is the magnitude code of
// logical weight (r, c); Neg[r][c] reports a negative weight. The paper's
// evaluation is sign-agnostic (zeros are what matter), but the functional
// crossbar model uses signs to verify numeric equivalence with the
// reference convolution.
type Matrix struct {
	Rows, Cols int
	Q          []uint32
	Neg        []bool
	Scale      float64
	P          Params
}

// QuantizeMatrix quantizes a rank-2 float tensor (crossbar orientation
// [R, C]) into a Matrix using a single per-tensor scale.
func QuantizeMatrix(w *tensor.Tensor, p Params) *Matrix {
	if len(w.Shape()) != 2 {
		panic("quant: QuantizeMatrix wants rank-2 tensor")
	}
	r, c := w.Dim(0), w.Dim(1)
	scale := ScaleFor(float64(w.MaxAbs()), p.WBits)
	m := &Matrix{Rows: r, Cols: c, Q: make([]uint32, r*c), Neg: make([]bool, r*c), Scale: scale, P: p}
	for i, v := range w.Data() {
		m.Q[i] = QuantizeUnsigned(math.Abs(float64(v)), p.WBits, scale)
		m.Neg[i] = v < 0
	}
	return m
}

// At returns the magnitude code at (r, c).
func (m *Matrix) At(r, c int) uint32 { return m.Q[r*m.Cols+c] }

// Dequantize returns the signed float value at (r, c).
func (m *Matrix) Dequantize(r, c int) float64 {
	v := float64(m.At(r, c)) * m.Scale
	if m.Neg[r*m.Cols+c] {
		return -v
	}
	return v
}

// CellMatrix is the physical view after decomposition: Rows ×
// (Cols·CellsPerWeight) cell values. Physical column c·CPW+i holds bit
// group i (LSB-first) of logical column c.
type CellMatrix struct {
	Rows, PhysCols int
	CellsPerWeight int
	CellBits       int
	Cells          []uint16
}

// Decompose expands a quantized Matrix into its CellMatrix.
func (m *Matrix) Decompose() *CellMatrix {
	cpw := m.P.CellsPerWeight()
	cm := &CellMatrix{
		Rows:           m.Rows,
		PhysCols:       m.Cols * cpw,
		CellsPerWeight: cpw,
		CellBits:       m.P.CellBits,
		Cells:          make([]uint16, m.Rows*m.Cols*cpw),
	}
	buf := make([]uint16, cpw)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			m.P.DecomposeCells(m.At(r, c), buf)
			base := r*cm.PhysCols + c*cpw
			copy(cm.Cells[base:base+cpw], buf)
		}
	}
	return cm
}

// Cell returns the cell value at physical position (r, pc).
func (cm *CellMatrix) Cell(r, pc int) uint16 { return cm.Cells[r*cm.PhysCols+pc] }

// Density returns the fraction of non-zero cells — the quantity plotted
// in Fig. 4(a).
func (cm *CellMatrix) Density() float64 {
	nz := 0
	for _, c := range cm.Cells {
		if c != 0 {
			nz++
		}
	}
	if len(cm.Cells) == 0 {
		return 0
	}
	return float64(nz) / float64(len(cm.Cells))
}

// InputDensity quantizes the activations xs with the given params and
// returns the fraction of non-zero decomposed driver slices — Fig. 4(b).
func InputDensity(xs []float32, p Params) float64 {
	if len(xs) == 0 {
		return 0
	}
	var maxAbs float64
	for _, x := range xs {
		if a := math.Abs(float64(x)); a > maxAbs {
			maxAbs = a
		}
	}
	scale := ScaleFor(maxAbs, p.ABits)
	spi := p.SlicesPerInput()
	buf := make([]uint16, spi)
	nz, total := 0, 0
	for _, x := range xs {
		q := QuantizeUnsigned(math.Abs(float64(x)), p.ABits, scale)
		p.DecomposeSlices(q, buf)
		for _, s := range buf {
			if s != 0 {
				nz++
			}
		}
		total += spi
	}
	return float64(nz) / float64(total)
}
