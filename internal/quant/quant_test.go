package quant

import (
	"math"
	"testing"
	"testing/quick"

	"sre/internal/tensor"
	"sre/internal/xrand"
)

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{WBits: 16, ABits: 16, CellBits: 3, DACBits: 1}, // 16 % 3 != 0
		{WBits: 16, ABits: 16, CellBits: 2, DACBits: 5}, // 16 % 5 != 0
		{WBits: 0, ABits: 16, CellBits: 2, DACBits: 1},
		{WBits: 16, ABits: 16, CellBits: 32, DACBits: 1},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Fatalf("Validate accepted %+v", p)
		}
	}
}

func TestCountsMatchPaper(t *testing.T) {
	p := Default()
	// 16-bit weights in 2-bit cells span 8 bitlines; 16-bit inputs through
	// a 1-bit DAC need 16 slices (paper §5.3 example).
	if p.CellsPerWeight() != 8 || p.SlicesPerInput() != 16 {
		t.Fatalf("CPW=%d SPI=%d", p.CellsPerWeight(), p.SlicesPerInput())
	}
}

// TestFigure3Decomposition reproduces the worked example of Fig. 3: 4-bit
// weights split into two 2-bit cells, 2-bit inputs split into LSB/MSB
// 1-bit slices; window [1,2,3,1] becomes slices [1,0,1,1] and [0,1,1,0].
func TestFigure3Decomposition(t *testing.T) {
	p := Params{WBits: 4, ABits: 2, CellBits: 2, DACBits: 1}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	window := []uint32{1, 2, 3, 1}
	var lsb, msb []uint16
	for _, q := range window {
		s := p.DecomposeSlices(q, nil)
		lsb = append(lsb, s[0])
		msb = append(msb, s[1])
	}
	wantLSB := []uint16{1, 0, 1, 1}
	wantMSB := []uint16{0, 1, 1, 0}
	for i := range window {
		if lsb[i] != wantLSB[i] || msb[i] != wantMSB[i] {
			t.Fatalf("slices: lsb=%v msb=%v, want %v / %v", lsb, msb, wantLSB, wantMSB)
		}
	}
	// A 4-bit weight 0b1101 = 13 splits into cells [0b01, 0b11].
	cells := p.DecomposeCells(13, nil)
	if cells[0] != 1 || cells[1] != 3 {
		t.Fatalf("cells of 13 = %v", cells)
	}
}

func TestDecomposeComposeRoundTrip(t *testing.T) {
	ps := []Params{
		Default(),
		{WBits: 8, ABits: 8, CellBits: 1, DACBits: 2},
		{WBits: 16, ABits: 16, CellBits: 8, DACBits: 4},
		{WBits: 16, ABits: 16, CellBits: 4, DACBits: 8},
	}
	for _, p := range ps {
		f := func(q uint32) bool {
			qw := q & (1<<uint(p.WBits) - 1)
			qa := q & (1<<uint(p.ABits) - 1)
			return p.ComposeCells(p.DecomposeCells(qw, nil)) == qw &&
				p.ComposeSlices(p.DecomposeSlices(qa, nil)) == qa
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("params %+v: %v", p, err)
		}
	}
}

func TestQuantizeUnsignedEdges(t *testing.T) {
	if QuantizeUnsigned(0, 8, 1) != 0 {
		t.Fatal("zero must quantize to code 0")
	}
	if QuantizeUnsigned(-3, 8, 1) != 0 {
		t.Fatal("negative input must quantize to 0 (magnitude handled by caller)")
	}
	if QuantizeUnsigned(1e9, 8, 1) != 255 {
		t.Fatal("overflow must clamp to top code")
	}
	// Top of range maps to top code exactly.
	scale := ScaleFor(10, 8)
	if QuantizeUnsigned(10, 8, scale) != 255 {
		t.Fatal("maxAbs must hit top code")
	}
}

func TestScaleForZero(t *testing.T) {
	if ScaleFor(0, 16) != 1 {
		t.Fatal("zero maxAbs should give scale 1")
	}
}

func TestQuantizeMatrixPreservesZerosAndSigns(t *testing.T) {
	w := tensor.New(3, 2)
	w.Set(0.5, 0, 0)
	w.Set(-0.25, 1, 1)
	// (2,0) stays exactly zero.
	m := QuantizeMatrix(w, Default())
	if m.At(2, 0) != 0 {
		t.Fatal("exact zero must quantize to code 0")
	}
	if !m.Neg[1*2+1] || m.Neg[0] {
		t.Fatal("signs not preserved")
	}
	if m.Dequantize(0, 0) <= 0 || m.Dequantize(1, 1) >= 0 {
		t.Fatal("Dequantize signs wrong")
	}
	// Dequantization error bounded by scale/2.
	if math.Abs(m.Dequantize(0, 0)-0.5) > m.Scale/2+1e-12 {
		t.Fatal("Dequantize error too large")
	}
}

func TestCellMatrixLayoutLSBFirst(t *testing.T) {
	p := Params{WBits: 4, ABits: 4, CellBits: 2, DACBits: 1}
	w := tensor.New(1, 2)
	w.Set(1.0, 0, 0) // quantizes to 15 = 0b1111 → cells [3,3]
	w.Set(0.2, 0, 1) // 0.2/ (1/15) = 3 → cells [3,0]
	m := QuantizeMatrix(w, p)
	cm := m.Decompose()
	if cm.PhysCols != 4 || cm.Rows != 1 {
		t.Fatalf("phys shape %dx%d", cm.Rows, cm.PhysCols)
	}
	if cm.Cell(0, 0) != 3 || cm.Cell(0, 1) != 3 {
		t.Fatalf("col0 cells = %d,%d", cm.Cell(0, 0), cm.Cell(0, 1))
	}
	if cm.Cell(0, 2) != 3 || cm.Cell(0, 3) != 0 {
		t.Fatalf("col1 cells = %d,%d", cm.Cell(0, 2), cm.Cell(0, 3))
	}
}

// TestBitLevelSparsityMonotonicity checks the Fig. 4 mechanism: for the
// same weights, fewer bits per cell (more cells per weight) exposes more
// zero cells, i.e. density decreases.
func TestBitLevelSparsityMonotonicity(t *testing.T) {
	r := xrand.New(4)
	w := tensor.New(64, 64)
	for i := range w.Data() {
		if r.Bernoulli(0.7) { // 30% exact zeros
			w.Data()[i] = float32(math.Abs(r.NormFloat64()) * 0.2) // mostly small values
		}
	}
	var prev float64 = -1
	for _, cb := range []int{1, 2, 4, 8, 16} {
		p := Params{WBits: 16, ABits: 16, CellBits: cb, DACBits: 1}
		d := QuantizeMatrix(w, p).Decompose().Density()
		if d < 0 || d > 1 {
			t.Fatalf("density out of range: %v", d)
		}
		if d < prev {
			t.Fatalf("density not non-decreasing with CellBits: %v then %v at cb=%d", prev, d, cb)
		}
		prev = d
	}
}

func TestInputDensityMonotonicityWithDAC(t *testing.T) {
	r := xrand.New(8)
	xs := make([]float32, 4096)
	for i := range xs {
		if r.Bernoulli(0.5) {
			xs[i] = float32(math.Abs(r.NormFloat64()))
		}
	}
	var prev float64 = -1
	for _, dac := range []int{1, 2, 4, 8, 16} {
		p := Params{WBits: 16, ABits: 16, CellBits: 2, DACBits: dac}
		d := InputDensity(xs, p)
		if d < prev {
			t.Fatalf("input density decreased at DAC=%d: %v < %v", dac, d, prev)
		}
		prev = d
	}
	// All-zero input → zero density; empty input → 0.
	if InputDensity([]float32{0, 0}, Default()) != 0 || InputDensity(nil, Default()) != 0 {
		t.Fatal("degenerate input densities wrong")
	}
}

func TestInputDensityBounds(t *testing.T) {
	// Exactly one non-zero input with value == max ⇒ its slices are all
	// ones ⇒ density = 1/len for single-slice DAC=16.
	p := Params{WBits: 16, ABits: 16, CellBits: 2, DACBits: 16}
	d := InputDensity([]float32{5, 0, 0, 0}, p)
	if math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("density = %v, want 0.25", d)
	}
}
