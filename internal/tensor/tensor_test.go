package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"sre/internal/xrand"
)

func TestNewAndIndexing(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size = %d", x.Size())
	}
	x.Set(7, 1, 2, 3)
	if x.At(1, 2, 3) != 7 {
		t.Fatal("round-trip Set/At failed")
	}
	if x.At(0, 0, 0) != 0 {
		t.Fatal("fresh tensor not zeroed")
	}
	// Row-major: last axis contiguous.
	x.Set(9, 0, 0, 1)
	if x.Data()[1] != 9 {
		t.Fatal("layout is not row-major")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestRankMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(1)
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Set(5, 2, 3)
	if x.At(1, 5) != 5 {
		t.Fatal("Reshape does not alias data")
	}
}

func TestCloneIndependent(t *testing.T) {
	x := New(4)
	x.Set(1, 0)
	y := x.Clone()
	y.Set(2, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone aliases data")
	}
}

func TestSparsityAndNNZ(t *testing.T) {
	x := New(10)
	if x.Sparsity() != 1 {
		t.Fatal("zero tensor sparsity != 1")
	}
	x.Set(1, 3)
	x.Set(-2, 7)
	if x.NNZ() != 2 {
		t.Fatalf("NNZ = %d", x.NNZ())
	}
	if math.Abs(x.Sparsity()-0.8) > 1e-12 {
		t.Fatalf("Sparsity = %v", x.Sparsity())
	}
}

func TestConvOutputDim(t *testing.T) {
	// 4x4 input, 2x2 kernel, stride 1, no pad → 3 (Figure 2's geometry).
	if ConvOutputDim(4, 2, 1, 0) != 3 {
		t.Fatal("ConvOutputDim basic case wrong")
	}
	// Same-padding 3x3 stride 1: out == in.
	if ConvOutputDim(224, 3, 1, 1) != 224 {
		t.Fatal("same-padding case wrong")
	}
	// Stride-2 7x7 with pad 3 on 224 → 112 (ResNet/GoogLeNet stem).
	if ConvOutputDim(224, 7, 2, 3) != 112 {
		t.Fatal("stem conv case wrong")
	}
}

func TestIm2ColWindowOrderingAndPadding(t *testing.T) {
	// 2-channel 2x2 input; window at (0,0) of a 2x2 kernel with pad 1 picks
	// the top-left corner with three padded zeros per channel.
	x := New(2, 2, 2)
	v := float32(1)
	for c := 0; c < 2; c++ {
		for y := 0; y < 2; y++ {
			for xx := 0; xx < 2; xx++ {
				x.Set(v, c, y, xx)
				v++
			}
		}
	}
	got := Im2ColWindow(x, 2, 1, 1, 0, 0, nil)
	want := []float32{0, 0, 0, 1 /* ch0 */, 0, 0, 0, 5 /* ch1 */}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window = %v, want %v", got, want)
		}
	}
}

// TestIm2ColMatVecEqualsDirectConv is the key property: lowering + MatVec
// must equal a directly computed convolution for random shapes.
func TestIm2ColMatVecEqualsDirectConv(t *testing.T) {
	r := xrand.New(99)
	for trial := 0; trial < 10; trial++ {
		cin := 1 + r.Intn(3)
		cout := 1 + r.Intn(4)
		k := 1 + r.Intn(3)
		h := k + r.Intn(5)
		s := 1 + r.Intn(2)
		p := r.Intn(2)
		x := New(cin, h, h)
		for i := range x.Data() {
			x.Data()[i] = float32(r.Intn(7) - 3)
		}
		wt := New(cin*k*k, cout) // weight matrix in crossbar orientation
		for i := range wt.Data() {
			wt.Data()[i] = float32(r.Intn(5) - 2)
		}
		hout := ConvOutputDim(h, k, s, p)
		buf := make([]float32, cin*k*k)
		for oy := 0; oy < hout; oy++ {
			for ox := 0; ox < hout; ox++ {
				Im2ColWindow(x, k, s, p, oy, ox, buf)
				y := MatVec(wt, buf)
				for co := 0; co < cout; co++ {
					// Direct convolution with the same (c,ky,kx) unrolling.
					var want float32
					for ci := 0; ci < cin; ci++ {
						for ky := 0; ky < k; ky++ {
							for kx := 0; kx < k; kx++ {
								iy, ix := oy*s-p+ky, ox*s-p+kx
								if iy < 0 || iy >= h || ix < 0 || ix >= h {
									continue
								}
								row := ci*k*k + ky*k + kx
								want += x.At(ci, iy, ix) * wt.At(row, co)
							}
						}
					}
					if y[co] != want {
						t.Fatalf("trial %d: conv mismatch at (%d,%d,ch %d): %v vs %v",
							trial, oy, ox, co, y[co], want)
					}
				}
			}
		}
	}
}

func TestIm2ColMatrixColumnsMatchWindows(t *testing.T) {
	r := xrand.New(5)
	x := New(2, 5, 5)
	for i := range x.Data() {
		x.Data()[i] = float32(r.Intn(9) - 4)
	}
	k, s, p := 3, 2, 1
	m := Im2Col(x, k, s, p)
	hout := ConvOutputDim(5, k, s, p)
	buf := make([]float32, 2*k*k)
	for oy := 0; oy < hout; oy++ {
		for ox := 0; ox < hout; ox++ {
			Im2ColWindow(x, k, s, p, oy, ox, buf)
			col := oy*hout + ox
			for row := 0; row < m.Dim(0); row++ {
				if m.At(row, col) != buf[row] {
					t.Fatalf("Im2Col col %d row %d mismatch", col, row)
				}
			}
		}
	}
}

func TestMatVecSkipsZeroInputsCorrectly(t *testing.T) {
	// The zero-skip fast path must not change results.
	f := func(seed uint32) bool {
		r := xrand.New(uint64(seed))
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		w := New(rows, cols)
		for i := range w.Data() {
			w.Data()[i] = float32(r.Intn(5) - 2)
		}
		x := make([]float32, rows)
		for i := range x {
			if r.Bernoulli(0.5) {
				x[i] = float32(r.Intn(5) - 2)
			}
		}
		y := MatVec(w, x)
		for j := 0; j < cols; j++ {
			var want float32
			for i := 0; i < rows; i++ {
				want += x[i] * w.At(i, j)
			}
			if y[j] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleAddMaxAbs(t *testing.T) {
	x := New(3)
	x.Set(1, 0)
	x.Set(-4, 1)
	x.Scale(2)
	if x.At(1) != -8 {
		t.Fatal("Scale wrong")
	}
	y := New(3)
	y.Set(10, 2)
	x.AddInPlace(y)
	if x.At(2) != 10 {
		t.Fatal("AddInPlace wrong")
	}
	if x.MaxAbs() != 10 {
		t.Fatalf("MaxAbs = %v", x.MaxAbs())
	}
}

func TestFill(t *testing.T) {
	x := New(2, 2)
	x.Fill(3)
	for _, v := range x.Data() {
		if v != 3 {
			t.Fatal("Fill incomplete")
		}
	}
}

func TestFromSlice(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	if x.At(1, 1) != 4 {
		t.Fatal("FromSlice layout wrong")
	}
	d[0] = 9
	if x.At(0, 0) != 9 {
		t.Fatal("FromSlice must wrap, not copy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	FromSlice(d, 3, 2)
}

func TestReshapePanicsOnSizeChange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(4).Reshape(5)
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 0)
}

func TestMatVecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	MatVec(New(2, 2), []float32{1})
}

func TestConvOutputDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for impossible conv")
		}
	}()
	ConvOutputDim(2, 5, 1, 0)
}
