// Package tensor implements the dense float32 tensors the neural-network
// substrate computes with, plus the im2col lowering that turns
// convolutions into the matrix–vector products a ReRAM crossbar executes.
//
// Layout conventions (used consistently by internal/nn and
// internal/mapping):
//
//   - Feature maps are CHW: Shape = [C, H, W].
//   - Conv weights are [Cout, Cin, K, K].
//   - The im2col row index for (c, ky, kx) is c·K·K + ky·K + kx, so a
//     conv layer's weight matrix has R = Cin·K·K rows and Cout columns,
//     and the same function generates both the weight matrix rows and the
//     per-window input vectors. Keeping one ordering in one place is what
//     makes the crossbar functional model provably equal to the reference
//     convolution (see mapping tests).
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense float32 tensor with row-major layout.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim in shape %v", shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data (not copied) with the given shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elements, have %d", shape, n, len(data)))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Shape returns the tensor's dimensions. The caller must not mutate it.
func (t *Tensor) Shape() []int { return t.shape }

// Data returns the backing slice in row-major order.
func (t *Tensor) Data() []float32 { return t.data }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// offset computes the row-major offset of idx.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, v := range idx {
		if v < 0 || v >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + v
	}
	return off
}

// At returns the element at idx.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set assigns the element at idx.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of the same data with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// NNZ returns the number of non-zero elements.
func (t *Tensor) NNZ() int {
	n := 0
	for _, v := range t.data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns the fraction of elements that are exactly zero.
func (t *Tensor) Sparsity() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return 1 - float64(t.NNZ())/float64(len(t.data))
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AddInPlace adds other element-wise; shapes must match exactly.
func (t *Tensor) AddInPlace(other *Tensor) {
	if len(t.data) != len(other.data) {
		panic("tensor: AddInPlace size mismatch")
	}
	for i, v := range other.data {
		t.data[i] += v
	}
}

// MaxAbs returns the maximum absolute element value (0 for empty).
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.data {
		a := float32(math.Abs(float64(v)))
		if a > m {
			m = a
		}
	}
	return m
}

// ConvOutputDim returns the output spatial size for input size h, kernel
// k, stride s and padding p. It panics on a non-positive result.
func ConvOutputDim(h, k, s, p int) int {
	out := (h+2*p-k)/s + 1
	if out <= 0 {
		panic(fmt.Sprintf("tensor: conv output dim %d for h=%d k=%d s=%d p=%d", out, h, k, s, p))
	}
	return out
}

// Im2ColWindow extracts one sliding window of a CHW input x as a flat
// vector of length Cin·K·K in the canonical (c, ky, kx) ordering,
// zero-padding out-of-bounds positions. (oy, ox) is the output pixel,
// stride s, padding p. dst must have length Cin·K·K (or nil to allocate).
func Im2ColWindow(x *Tensor, k, s, p, oy, ox int, dst []float32) []float32 {
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	n := c * k * k
	if dst == nil {
		dst = make([]float32, n)
	} else if len(dst) != n {
		panic("tensor: Im2ColWindow dst length mismatch")
	}
	baseY := oy*s - p
	baseX := ox*s - p
	i := 0
	for ci := 0; ci < c; ci++ {
		plane := x.data[ci*h*w : (ci+1)*h*w]
		for ky := 0; ky < k; ky++ {
			y := baseY + ky
			for kx := 0; kx < k; kx++ {
				xx := baseX + kx
				if y < 0 || y >= h || xx < 0 || xx >= w {
					dst[i] = 0
				} else {
					dst[i] = plane[y*w+xx]
				}
				i++
			}
		}
	}
	return dst
}

// Im2Col lowers a full CHW input into a matrix with Cin·K·K rows and
// Hout·Wout columns; column (oy·Wout + ox) is the window at output pixel
// (oy, ox). It is the reference lowering the crossbar mapping is checked
// against.
func Im2Col(x *Tensor, k, s, p int) *Tensor {
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	hout := ConvOutputDim(h, k, s, p)
	wout := ConvOutputDim(w, k, s, p)
	rows := c * k * k
	out := New(rows, hout*wout)
	buf := make([]float32, rows)
	for oy := 0; oy < hout; oy++ {
		for ox := 0; ox < wout; ox++ {
			Im2ColWindow(x, k, s, p, oy, ox, buf)
			col := oy*wout + ox
			for r := 0; r < rows; r++ {
				out.data[r*hout*wout+col] = buf[r]
			}
		}
	}
	return out
}

// MatVec computes y = Wᵀ·x for a weight matrix W with shape [R, C] and an
// input vector x of length R, producing y of length C. This is exactly
// the crossbar's semantics: inputs drive rows (wordlines), outputs
// accumulate down columns (bitlines).
func MatVec(w *Tensor, x []float32) []float32 {
	if len(w.shape) != 2 {
		panic("tensor: MatVec wants a rank-2 weight matrix")
	}
	r, c := w.shape[0], w.shape[1]
	if len(x) != r {
		panic(fmt.Sprintf("tensor: MatVec input length %d vs %d rows", len(x), r))
	}
	y := make([]float32, c)
	for i := 0; i < r; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := w.data[i*c : (i+1)*c]
		for j, wij := range row {
			y[j] += xi * wij
		}
	}
	return y
}
