package workload

import (
	"math"
	"testing"

	"sre/internal/mapping"
	"sre/internal/quant"
)

func TestAllSpecsParse(t *testing.T) {
	for _, s := range Specs() {
		net, err := s.Network()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		out, err := net.Validate()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		want := 10
		if s.Large {
			want = 1000
		}
		if out[len(out)-1] != want {
			t.Fatalf("%s output shape %v", s.Name, out)
		}
	}
}

func TestSpecByName(t *testing.T) {
	if _, err := SpecByName("VGG-16"); err != nil {
		t.Fatal(err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("accepted unknown network")
	}
}

func TestTable2IndexBits(t *testing.T) {
	// §6: 5,5,5,5,3,3 bits in Table 2 order.
	want := []int{5, 5, 5, 5, 3, 3}
	for i, s := range Specs() {
		if s.IndexBits != want[i] {
			t.Fatalf("%s index bits = %d, want %d", s.Name, s.IndexBits, want[i])
		}
	}
}

func TestParameterCounts(t *testing.T) {
	// Sanity-pin the topologies to the well-known parameter counts.
	want := map[string][2]int64{ // name → {min, max} weights
		"MNIST":     {420_000, 440_000},
		"CaffeNet":  {58_000_000, 64_000_000},
		"VGG-16":    {130_000_000, 145_000_000},
		"GoogLeNet": {5_500_000, 7_500_000},
		"ResNet-50": {23_000_000, 27_000_000},
	}
	for _, s := range Specs() {
		bounds, ok := want[s.Name]
		if !ok {
			continue
		}
		net, err := s.Network()
		if err != nil {
			t.Fatal(err)
		}
		wc := net.WeightCount()
		if wc < bounds[0] || wc > bounds[1] {
			t.Fatalf("%s weight count %d outside [%d, %d]", s.Name, wc, bounds[0], bounds[1])
		}
	}
}

func TestBuildSmallNetworkSparsities(t *testing.T) {
	s, _ := SpecByName("MNIST")
	b, err := s.Build(SSL, quant.Default(), mapping.Default(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Layers) != 4 {
		t.Fatalf("MNIST has %d matrix layers", len(b.Layers))
	}
	// Every layer needs a structure and an activation source with the
	// right geometry.
	for i, l := range b.Layers {
		if l.Struct.Layout.Rows != b.Infos[i].Rows {
			t.Fatalf("layer %s: structure rows %d != %d", l.Name, l.Struct.Layout.Rows, b.Infos[i].Rows)
		}
		if l.Acts.Windows() != b.Infos[i].Windows {
			t.Fatalf("layer %s: windows mismatch", l.Name)
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	s, _ := SpecByName("CIFAR-10")
	a, err := s.Build(SSL, quant.Default(), mapping.Default(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build(SSL, quant.Default(), mapping.Default(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Layers {
		ra := a.Layers[i].Struct.CompressionRatio(2, 0) // ReCom as a digest
		rb := b.Layers[i].Struct.CompressionRatio(2, 0)
		if ra != rb {
			t.Fatal("builds differ across runs with the same seed")
		}
	}
	codesA := make([]uint32, a.Infos[0].Rows)
	codesB := make([]uint32, a.Infos[0].Rows)
	a.Layers[0].Acts.WindowCodes(3, codesA)
	b.Layers[0].Acts.WindowCodes(3, codesB)
	for i := range codesA {
		if codesA[i] != codesB[i] {
			t.Fatal("activation streams differ across runs")
		}
	}
}

func TestSyntheticActsSparsity(t *testing.T) {
	acts := &SyntheticActs{Rows: 5000, NWindows: 4, Sparsity: 0.4, Octaves: 4, ABits: 16, Seed: 3}
	codes := make([]uint32, 5000)
	acts.WindowCodes(0, codes)
	zeros := 0
	for _, c := range codes {
		if c == 0 {
			zeros++
		}
	}
	got := float64(zeros) / 5000
	if math.Abs(got-0.4) > 0.03 {
		t.Fatalf("activation sparsity %v, want ~0.4", got)
	}
}

func TestOctavesSkewSliceDensity(t *testing.T) {
	p := quant.Default()
	mk := func(octaves float64) float64 {
		acts := &SyntheticActs{Rows: 4000, NWindows: 8, Sparsity: 0.4, Octaves: octaves, ABits: 16, Seed: 5}
		return MeanSliceDensity(acts, 4000, p, 8)
	}
	d0, d8 := mk(0), mk(8)
	if d8 >= d0 {
		t.Fatalf("more octaves must lower slice density: %v vs %v", d0, d8)
	}
	if d0 <= 0 || d0 >= 0.5 {
		t.Fatalf("zero-octave density %v implausible", d0)
	}
}

func TestGSLVsSSLStructure(t *testing.T) {
	s, _ := SpecByName("CIFAR-10")
	p, g := quant.Default(), mapping.Default()
	ssl, err := s.Build(SSL, p, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	gsl, err := s.Build(GSL, p, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// SSL must yield a higher ORC compression ratio than GSL at the same
	// order of total sparsity (the Fig. 17 vs Fig. 23 contrast).
	var sslRatio, gslRatio float64
	for i := range ssl.Layers {
		sslRatio += ssl.Layers[i].Struct.CompressionRatio(3, 0) // ORC
		gslRatio += gsl.Layers[i].Struct.CompressionRatio(3, 0)
	}
	if sslRatio <= gslRatio {
		t.Fatalf("SSL ORC ratio %v should beat GSL %v", sslRatio, gslRatio)
	}
}

func TestISAACInputs(t *testing.T) {
	s, _ := SpecByName("MNIST")
	b, err := s.Build(SSL, quant.Default(), mapping.Default(), 1)
	if err != nil {
		t.Fatal(err)
	}
	in := b.ISAACInputs()
	if len(in) != len(b.Layers) {
		t.Fatal("ISAAC inputs length mismatch")
	}
	for i := range in {
		if in[i].Windows != b.Layers[i].Acts.Windows() {
			t.Fatal("window mismatch")
		}
	}
}

func TestNoPruneKeepsWeightsDense(t *testing.T) {
	s, _ := SpecByName("MNIST")
	b, err := s.Build(NoPrune, quant.Default(), mapping.Default(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if sp := b.WeightSparsityBuilt(); sp > 0.01 {
		t.Fatalf("dense build has sparsity %v", sp)
	}
}

func TestWeightSparsityBuiltTracksTarget(t *testing.T) {
	for _, name := range []string{"MNIST", "CIFAR-10"} {
		s, _ := SpecByName(name)
		b, err := s.Build(SSL, quant.Default(), mapping.Default(), 4)
		if err != nil {
			t.Fatal(err)
		}
		got := b.WeightSparsityBuilt()
		if math.Abs(got-s.WeightSparsity) > 0.08 {
			t.Fatalf("%s built sparsity %.3f vs Table 2 %.3f", name, got, s.WeightSparsity)
		}
	}
}

func TestSNrramCellsPositive(t *testing.T) {
	s, _ := SpecByName("CIFAR-10")
	b, err := s.Build(SSL, quant.Default(), mapping.Default(), 5)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, st := range b.Stats {
		total += st.WeightTotal
	}
	cells := b.SNrramCells()
	if cells <= 0 || cells > total*int64(quant.Default().CellsPerWeight()) {
		t.Fatalf("SNrram cells %d out of range", cells)
	}
}

func TestBuildOCCStructuresAligned(t *testing.T) {
	s, _ := SpecByName("MNIST")
	p, g := quant.Default(), mapping.Default()
	b, err := s.Build(SSL, p, g, 6)
	if err != nil {
		t.Fatal(err)
	}
	occs, err := s.BuildOCCStructures(SSL, p, g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(occs) != len(b.Layers) {
		t.Fatalf("OCC structures %d vs layers %d", len(occs), len(b.Layers))
	}
	for i := range occs {
		if occs[i].Layout.Rows != b.Layers[i].Struct.Layout.Rows {
			t.Fatalf("layer %d geometry mismatch", i)
		}
		// Same weights → OCC's compressed cells can never exceed totals.
		if occs[i].CompressedCells() > occs[i].Layout.TotalCells() {
			t.Fatal("OCC kept more cells than exist")
		}
	}
}

func TestOutputBitsSet(t *testing.T) {
	s, _ := SpecByName("MNIST")
	b, err := s.Build(SSL, quant.Default(), mapping.Default(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range b.Layers {
		want := int64(b.Infos[i].Windows) * int64(b.Infos[i].Cols) * 16
		if l.OutputBits != want {
			t.Fatalf("layer %s OutputBits %d, want %d", l.Name, l.OutputBits, want)
		}
	}
}

func TestMeanSliceDensityEdges(t *testing.T) {
	p := quant.Default()
	empty := &SyntheticActs{Rows: 0, NWindows: 1, ABits: 16, Seed: 1}
	if d := MeanSliceDensity(empty, 0, p, 1); d != 0 {
		t.Fatalf("empty density %v", d)
	}
	allZero := &SyntheticActs{Rows: 100, NWindows: 3, Sparsity: 1, Octaves: 2, ABits: 16, Seed: 2}
	if d := MeanSliceDensity(allZero, 100, p, 0); d != 0 {
		t.Fatalf("all-zero density %v", d)
	}
}
