// Package workload defines the paper's six evaluated networks (Table 2)
// and builds simulator-ready layers for them: topology from internal/nn,
// weight zero-structure from internal/prune (SSL-style for Figs. 17–22 and
// 24, GSL-style for Fig. 23), and synthetic activation streams whose
// sparsity matches Table 2.
//
// Calibration knobs and what they stand in for (DESIGN.md §2):
//
//   - WeightSparsity / ActSparsity come straight from Table 2.
//   - RowFrac is the SSL structure share: the fraction of weight-matrix
//     rows (filter pixels shared across filters) zeroed entirely.
//     CaffeNet and VGG-16 were released by the SSL authors and are
//     heavily row-structured; the others were trained by the paper's
//     authors and are not, which the paper calls out when explaining
//     their smaller ORC gains.
//   - ColFrac zeroes whole filters (matrix columns) — SSL also learns
//     filter-wise sparsity, and it is what lets naive crossbar-row
//     compression remove rows that ReCom's whole-matrix-row criterion
//     cannot (the paper's §7.1 naive-vs-ReCom observation).
//   - ActOctaves models the dynamic range of feature maps: each window's
//     local maximum sits a uniform number of octaves (0..ActOctaves)
//     below the layer's global maximum, and element magnitudes are
//     log-uniform below that. Real post-ReLU maps behave this way, and
//     it is what makes whole high-order bit slices of a batch all-zero —
//     the main source of DOF's large gains. ResNet-50's many batch-norm
//     layers re-normalize per channel and widen this spread the most
//     (the paper's stated reason for its largest DOF gain).
package workload

import (
	"fmt"
	"math"

	"sre/internal/compress"
	"sre/internal/core"
	"sre/internal/isaac"
	"sre/internal/mapping"
	"sre/internal/nn"
	"sre/internal/prune"
	"sre/internal/quant"
	"sre/internal/xrand"
)

// PruneMode selects which training-time pruning the synthetic weights
// imitate.
type PruneMode int

const (
	SSL     PruneMode = iota // structured (Figs. 17–22, 24)
	GSL                      // unstructured per-layer (Fig. 23)
	NoPrune                  // dense weights
)

func (m PruneMode) String() string {
	switch m {
	case SSL:
		return "ssl"
	case GSL:
		return "gsl"
	default:
		return "none"
	}
}

// Spec describes one Table 2 network.
type Spec struct {
	Name           string
	Display        string // topology exactly as Table 2 prints it
	Topology       string // canonical string for nn.Parse
	Input          nn.Shape
	WeightSparsity float64 // Table 2 (overall, parameter-weighted)
	ActSparsity    float64 // Table 2
	ConvSparsity   float64 // SSL per-conv-layer sparsity (cycle-relevant)
	FCSparsity     float64 // SSL per-FC-layer sparsity (parameter-heavy)
	RowFrac        float64 // SSL whole-matrix-row share (what ReCom/naive exploit)
	ColFrac        float64 // SSL whole-filter share
	SegFrac        float64 // SSL narrow (OU-group-wide) row-segment share — ORC's structure
	TileSegFrac    float64 // SSL crossbar-wide row-segment share — naive's edge over ReCom
	ActOctaves     float64 // per-window dynamic-range spread (calibrated)
	ActChanOctaves float64 // per-channel dynamic-range spread (batch-norm effect)
	IndexBits      int     // §6: chosen index width
	GSLConv        float64 // Fig. 23 per-conv-layer sparsity
	GSLFC          float64 // Fig. 23 per-FC-layer sparsity
	Large          bool    // ImageNet-scale (Fig. 23's subject set)
	// SliceCap, when positive, clamps each layer's pruned weights
	// (prune.SliceSparsify) so their quantized codes fit in the SliceCap
	// least-significant weight bit slices — the slice-sparse structure
	// the WSS modes elide. 0 leaves weights untouched, so every existing
	// build stays bit-identical. Not part of Table 2; the WSS
	// composability experiment sets it on a spec copy.
	SliceCap int
}

// Specs returns the six evaluated networks in Table 2 order.
func Specs() []Spec {
	return []Spec{
		{
			Name:           "MNIST",
			Display:        "conv5x20-pool-conv5x50-pool-500-10",
			Topology:       "conv5x20-pool-conv5x50-pool-500-10",
			Input:          nn.Shape{1, 28, 28},
			WeightSparsity: 0.42, ActSparsity: 0.28,
			ConvSparsity: 0.40, FCSparsity: 0.45,
			RowFrac: 0.15, ColFrac: 0.03, SegFrac: 0.12, TileSegFrac: 0.05, ActOctaves: 12, ActChanOctaves: 2, IndexBits: 5,
			GSLConv: 0.35, GSLFC: 0.55,
		},
		{
			Name:           "CIFAR-10",
			Display:        "conv5x32-pool-conv5x32-pool-conv5x64-pool-64-10",
			Topology:       "conv5x32p2-pool-conv5x32p2-pool-conv5x64p2-pool-64-10",
			Input:          nn.Shape{3, 32, 32},
			WeightSparsity: 0.34, ActSparsity: 0.22,
			ConvSparsity: 0.33, FCSparsity: 0.40,
			RowFrac: 0.14, ColFrac: 0.03, SegFrac: 0.10, TileSegFrac: 0.04, ActOctaves: 9, ActChanOctaves: 2, IndexBits: 5,
			GSLConv: 0.30, GSLFC: 0.50,
		},
		{
			Name:    "CaffeNet",
			Display: "conv11x96-conv5x256-conv3x384-conv3x384-conv3x256-4096-4096-1000",
			Topology: "conv11x96s4-pool3s2-conv5x256g2p2-pool3s2-conv3x384p1-conv3x384g2p1-" +
				"conv3x256g2p1-pool3s2-4096-4096-1000",
			Input:          nn.Shape{3, 227, 227},
			WeightSparsity: 0.91, ActSparsity: 0.21,
			ConvSparsity: 0.65, FCSparsity: 0.93,
			RowFrac: 0.15, ColFrac: 0.05, SegFrac: 0.78, TileSegFrac: 0.10, ActOctaves: 5.5, ActChanOctaves: 2, IndexBits: 5,
			GSLConv: 0.40, GSLFC: 0.90, Large: true,
		},
		{
			Name: "VGG-16",
			Display: "conv3x64-conv3x64-pool-conv3x128-conv3x128-pool-conv3x256×3-pool-" +
				"conv3x512×3-pool-conv3x512×3-pool-4096-4096-1000",
			Topology: "conv3x64p1-conv3x64p1-pool-conv3x128p1-conv3x128p1-pool-" +
				"conv3x256p1-conv3x256p1-conv3x256p1-pool-" +
				"conv3x512p1-conv3x512p1-conv3x512p1-pool-" +
				"conv3x512p1-conv3x512p1-conv3x512p1-pool-4096-4096-1000",
			Input:          nn.Shape{3, 224, 224},
			WeightSparsity: 0.95, ActSparsity: 0.41,
			ConvSparsity: 0.86, FCSparsity: 0.97,
			RowFrac: 0.15, ColFrac: 0.05, SegFrac: 0.95, TileSegFrac: 0.08, ActOctaves: 11, ActChanOctaves: 7, IndexBits: 5,
			GSLConv: 0.30, GSLFC: 0.92, Large: true,
		},
		{
			Name: "GoogLeNet",
			Display: "conv7x64-pool-conv3x192-pool-inception(3a)…(4e)-pool-" +
				"inception(5a)-inception(5b)-pool-1000",
			Topology: "conv7x64s2p3-pool3s2-conv3x192p1-pool3s2-" +
				"inception(3a:64,96,128,16,32,32)-inception(3b:128,128,192,32,96,64)-pool3s2-" +
				"inception(4a:192,96,208,16,48,64)-inception(4b:160,112,224,24,64,64)-" +
				"inception(4c:128,128,256,24,64,64)-inception(4d:112,144,288,32,64,64)-" +
				"inception(4e:256,160,320,32,128,128)-pool3s2-" +
				"inception(5a:256,160,320,32,128,128)-inception(5b:384,192,384,48,128,128)-" +
				"gap-1000",
			Input:          nn.Shape{3, 224, 224},
			WeightSparsity: 0.79, ActSparsity: 0.37,
			ConvSparsity: 0.79, FCSparsity: 0.70,
			RowFrac: 0.14, ColFrac: 0.04, SegFrac: 0.22, TileSegFrac: 0.05, ActOctaves: 9, ActChanOctaves: 3, IndexBits: 3,
			GSLConv: 0.45, GSLFC: 0.70, Large: true,
		},
		{
			Name: "ResNet-50",
			Display: "conv7x64-pool-[conv1x64-conv3x64-conv1x256]x3-" +
				"[conv1x128-conv3x128-conv1x512]x4-[conv1x256-conv3x256-conv1x1024]x6-" +
				"[conv1x512-conv3x512-conv1x2048]x3-pool-1000",
			Topology: "conv7x64s2p3-pool3s2p1-[conv1x64-conv3x64-conv1x256]x3-" +
				"[conv1x128s2-conv3x128-conv1x512]x4-[conv1x256s2-conv3x256-conv1x1024]x6-" +
				"[conv1x512s2-conv3x512-conv1x2048]x3-gap-1000",
			Input:          nn.Shape{3, 224, 224},
			WeightSparsity: 0.81, ActSparsity: 0.46,
			ConvSparsity: 0.81, FCSparsity: 0.70,
			RowFrac: 0.14, ColFrac: 0.04, SegFrac: 0.22, TileSegFrac: 0.05, ActOctaves: 15, ActChanOctaves: 12, IndexBits: 3,
			GSLConv: 0.45, GSLFC: 0.70, Large: true,
		},
	}
}

// SpecByName returns the named spec.
func SpecByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown network %q", name)
}

// Network parses and returns the spec's nn topology with zero weights.
func (s Spec) Network() (*nn.Network, error) {
	return nn.Parse(s.Name, s.Input, s.Topology)
}

// Built is a simulator-ready network: per-layer compression structures
// and activation sources (weights themselves are no longer referenced;
// LayerStats keeps the weight-level counts experiments report).
type Built struct {
	Spec   Spec
	Layers []core.Layer
	Infos  []nn.LayerInfo
	Stats  []LayerStats
}

// LayerStats records weight-level counts measured while building.
type LayerStats struct {
	WeightZeros int64 // exactly-zero weights after pruning
	WeightTotal int64
	SNrramCells int64 // cells SNrram's filter-grained column compression keeps
}

// WeightSparsityBuilt returns the parameter-weighted zero fraction of the
// built (pruned) weights.
func (b *Built) WeightSparsityBuilt() float64 {
	var zeros, total int64
	for _, s := range b.Stats {
		zeros += s.WeightZeros
		total += s.WeightTotal
	}
	if total == 0 {
		return 0
	}
	return float64(zeros) / float64(total)
}

// SNrramCells sums the SNrram-retained cells over all layers.
func (b *Built) SNrramCells() int64 {
	var n int64
	for _, s := range b.Stats {
		n += s.SNrramCells
	}
	return n
}

// Build constructs the network, fills weights with a right-skewed random
// magnitude distribution, prunes them per mode, and packages every matrix
// layer with a synthetic activation source. Each layer uses an
// independent RNG stream keyed by its path, so results are reproducible
// and order-independent.
func (s Spec) Build(mode PruneMode, p quant.Params, g mapping.Geometry, seed uint64) (*Built, error) {
	net, err := s.Network()
	if err != nil {
		return nil, err
	}
	root := xrand.New(seed).Split("workload/" + s.Name)
	infos := net.MatrixLayerInfos()
	b := &Built{Spec: s, Infos: infos}
	for _, li := range infos {
		r := root.Split("w/" + li.Path)
		w := li.Layer.WeightMatrix()
		// Right-skewed magnitudes: |N(0, 0.3·max)| so that high cell
		// groups of most weights are zero (the Fig. 4 bit-level effect).
		d := w.Data()
		for i := range d {
			d[i] = float32(r.NormFloat64() * 0.3)
		}
		for pi, spec := range s.pruneSpecs(mode, li) {
			prune.ApplyMatrix(w, spec, root.Split(fmt.Sprintf("p%d/%s", pi, li.Path)))
		}
		if s.SliceCap > 0 {
			prune.SliceSparsify(w.Data(), s.SliceCap, p.WBits, p.CellBits)
		}

		src := compress.NewFloatSource(w, p)
		st := compress.Build(src, p, g)
		var zeros int64
		for _, v := range w.Data() {
			if v == 0 {
				zeros++
			}
		}
		segRows := 1
		if li.Kind == nn.KindConv {
			segRows = li.K * li.K
		}
		b.Stats = append(b.Stats, LayerStats{
			WeightZeros: zeros,
			WeightTotal: int64(len(w.Data())),
			SNrramCells: compress.SNrramCompressedCells(src, p, segRows),
		})
		rowsPerChan := 1
		if li.Kind == nn.KindConv && li.K > 0 {
			rowsPerChan = li.K * li.K
		}
		acts := &SyntheticActs{
			Rows:        li.Rows,
			NWindows:    li.Windows,
			Sparsity:    s.ActSparsity,
			Octaves:     s.ActOctaves,
			ChanOctaves: s.ActChanOctaves,
			RowsPerChan: rowsPerChan,
			ABits:       p.ABits,
			Seed:        root.Split("a/" + li.Path).Uint64(),
		}
		b.Layers = append(b.Layers, core.Layer{
			Name: li.Path, Struct: st, Acts: acts,
			Codes:         core.NewCodePlanes(),
			OutputBits:    int64(li.Windows) * int64(li.Cols) * int64(p.ABits),
			ParallelGroup: li.ParallelGroup,
		})
	}
	return b, nil
}

// VariantSources returns one activation source per layer, re-deriving
// every synthetic source's per-layer RNG stream from actSeed exactly
// as Build derives it from the build seed: xrand.Split is a pure
// function of (parent state, label), so the per-layer seed depends
// only on (actSeed, spec name, layer path) — no weight regeneration,
// no ordering sensitivity. actSeed equal to the build seed reproduces
// the built-in sources bit-identically; layers whose source is not a
// *SyntheticActs keep their own source. The batched multi-activation
// sweep (sre.RunBatchContext) is the consumer.
func (s Spec) VariantSources(layers []core.Layer, actSeed uint64) []core.ActivationSource {
	root := xrand.New(actSeed).Split("workload/" + s.Name)
	out := make([]core.ActivationSource, len(layers))
	for i := range layers {
		sa, ok := layers[i].Acts.(*SyntheticActs)
		if !ok {
			out[i] = layers[i].Acts
			continue
		}
		v := *sa
		v.Seed = root.Split("a/" + layers[i].Name).Uint64()
		out[i] = &v
	}
	return out
}

// pruneSpecs returns the zero-structure passes for a layer under a prune
// mode; passes compose (zeros union), which lets SSL mix several segment
// granularities: narrow (2-logical-column ≈ one OU group) segments that
// only ORC can exploit, crossbar-wide (16-column) segments that naive
// crossbar-row compression also catches (the paper's §7.1 naive > ReCom
// observation), whole rows that every row scheme catches, and leftover
// element zeros sized to hit the per-kind sparsity target.
func (s Spec) pruneSpecs(mode PruneMode, li nn.LayerInfo) []prune.Spec {
	switch mode {
	case SSL:
		if li.Kind == nn.KindConv {
			// Channel-granular segments for the ImageNet-scale nets:
			// SSL's group lasso zeroes whole (channel, filter-group)
			// blocks there. The small nets' layers have too few channel
			// blocks for that granularity to leave removable OU rows, so
			// they keep per-row segments.
			kk := 1
			if s.Large {
				kk = li.K * li.K
			}
			return []prune.Spec{
				{RowFrac: s.RowFrac, ColFrac: s.ColFrac,
					SegFrac: s.SegFrac, SegCols: 2, SegRows: kk,
					ElemFrac: prune.ElemFracFor(s.ConvSparsity,
						s.RowFrac, s.ColFrac, s.SegFrac, s.TileSegFrac)},
				{SegFrac: s.TileSegFrac, SegCols: 16, SegRows: kk},
			}
		}
		return []prune.Spec{{
			RowFrac:  s.RowFrac,
			ElemFrac: prune.ElemFracFor(s.FCSparsity, s.RowFrac),
		}}
	case GSL:
		if li.Kind == nn.KindConv {
			return []prune.Spec{{ElemFrac: s.GSLConv}}
		}
		return []prune.Spec{{ElemFrac: s.GSLFC}}
	default:
		return nil
	}
}

// BuildOCCStructures regenerates the network's pruned weights (same seed
// and prune mode, hence bit-identical) and builds the OU-column
// compression structures aligned one-to-one with Build's layers. Kept
// separate from Build so the common experiments do not pay the extra
// scan.
func (s Spec) BuildOCCStructures(mode PruneMode, p quant.Params, g mapping.Geometry, seed uint64) ([]*compress.OCCStructure, error) {
	net, err := s.Network()
	if err != nil {
		return nil, err
	}
	root := xrand.New(seed).Split("workload/" + s.Name)
	var out []*compress.OCCStructure
	for _, li := range net.MatrixLayerInfos() {
		r := root.Split("w/" + li.Path)
		w := li.Layer.WeightMatrix()
		d := w.Data()
		for i := range d {
			d[i] = float32(r.NormFloat64() * 0.3)
		}
		for pi, spec := range s.pruneSpecs(mode, li) {
			prune.ApplyMatrix(w, spec, root.Split(fmt.Sprintf("p%d/%s", pi, li.Path)))
		}
		if s.SliceCap > 0 {
			prune.SliceSparsify(w.Data(), s.SliceCap, p.WBits, p.CellBits)
		}
		out = append(out, compress.BuildOCC(compress.NewFloatSource(w, p), p, g))
	}
	return out, nil
}

// ISAACInputs converts the built layers for the ISAAC model (Fig. 24).
func (b *Built) ISAACInputs() []isaac.LayerInput {
	out := make([]isaac.LayerInput, len(b.Layers))
	for i, l := range b.Layers {
		out[i] = isaac.LayerInput{
			Name:          l.Name,
			Struct:        l.Struct,
			Windows:       l.Acts.Windows(),
			OutputBits:    l.OutputBits,
			ParallelGroup: l.ParallelGroup,
		}
	}
	return out
}

// SyntheticActs generates deterministic activation codes per window.
// Each window first draws a local dynamic-range shift of
// Uniform(0, Octaves) octaves below the layer's global maximum — the
// window's own maximum — then each element is zero with probability
// Sparsity or log-uniform in [1, windowMax]. The per-window shift is what
// leaves whole high-order bit slices of a batch all-zero, the dominant
// source of DOF cycle savings; the log-uniform body gives the bit-level
// input sparsity of Fig. 4(b).
type SyntheticActs struct {
	Rows        int
	NWindows    int
	Sparsity    float64
	Octaves     float64 // per-window dynamic-range spread
	ChanOctaves float64 // additional per-channel spread (batch-norm effect)
	RowsPerChan int     // rows sharing one channel scale (K·K for conv)
	ABits       int
	// Seed is the per-layer RNG stream root (derived from the build seed
	// and the layer path). Exported so internal/snapshot can persist and
	// reconstruct the source bit-identically.
	Seed uint64
}

// Windows implements core.ActivationSource.
func (s *SyntheticActs) Windows() int { return s.NWindows }

// CloneSource implements core.SourceCloner. WindowCodes derives every
// window from the seed alone (no scratch state), so the source itself
// is safe to share across workers.
func (s *SyntheticActs) CloneSource() core.ActivationSource { return s }

// WindowCodes implements core.ActivationSource.
func (s *SyntheticActs) WindowCodes(w int, dst []uint32) {
	if len(dst) != s.Rows {
		panic(fmt.Sprintf("workload: window wants %d rows, got %d", s.Rows, len(dst)))
	}
	r := xrand.New(s.Seed + uint64(w)*0x9e3779b97f4a7c15)
	globalMax := float64(uint64(1)<<uint(s.ABits) - 1)
	windowMax := globalMax * math.Pow(2, -s.Octaves*r.Float64())
	if windowMax < 1 {
		windowMax = 1
	}
	rpc := s.RowsPerChan
	if rpc <= 0 {
		rpc = 1
	}
	chanMax := windowMax
	lnMax := math.Log(chanMax)
	for i := range dst {
		if i%rpc == 0 && s.ChanOctaves > 0 {
			chanMax = windowMax * math.Pow(2, -s.ChanOctaves*r.Float64())
			if chanMax < 1 {
				chanMax = 1
			}
			lnMax = math.Log(chanMax)
		}
		if r.Bernoulli(s.Sparsity) {
			dst[i] = 0
			continue
		}
		v := math.Exp(lnMax * r.Float64()) // log-uniform in [1, chanMax]
		if v > chanMax {
			v = chanMax
		}
		dst[i] = uint32(v)
	}
}

// MeanSliceDensity measures the average fraction of non-zero bits per
// DAC slice over sampled windows — the quantity that determines DOF
// gains (used by calibration tests and the Fig. 4 experiment).
func MeanSliceDensity(src core.ActivationSource, rows int, p quant.Params, sampleWindows int) float64 {
	w := src.Windows()
	if sampleWindows <= 0 || sampleWindows > w {
		sampleWindows = w
	}
	codes := make([]uint32, rows)
	spi := p.SlicesPerInput()
	mask := uint32(1)<<uint(p.DACBits) - 1
	var nz, total int64
	for i := 0; i < sampleWindows; i++ {
		src.WindowCodes(i*w/sampleWindows, codes)
		for _, c := range codes {
			for s := 0; s < spi; s++ {
				if c>>uint(s*p.DACBits)&mask != 0 {
					nz++
				}
			}
			total += int64(spi)
		}
	}
	if total == 0 {
		return 0
	}
	return float64(nz) / float64(total)
}
