package prune

import (
	"math"
	"testing"

	"sre/internal/nn"
	"sre/internal/tensor"
	"sre/internal/xrand"
)

func filledMatrix(r, c int) *tensor.Tensor {
	w := tensor.New(r, c)
	for i := range w.Data() {
		w.Data()[i] = float32(i%7 + 1)
	}
	return w
}

func TestSpecValidate(t *testing.T) {
	if (Spec{RowFrac: 1.5}).Validate() == nil {
		t.Fatal("accepted fraction > 1")
	}
	if (Spec{ElemFrac: -0.1}).Validate() == nil {
		t.Fatal("accepted negative fraction")
	}
	if (Spec{RowFrac: 0.5, ColFrac: 0.5, ElemFrac: 0.5}).Validate() != nil {
		t.Fatal("rejected valid spec")
	}
}

func TestTotalSparsityFormula(t *testing.T) {
	s := Spec{RowFrac: 0.5, ColFrac: 0.2, ElemFrac: 0.25}
	want := 1 - 0.5*0.8*0.75
	if math.Abs(s.TotalSparsity()-want) > 1e-12 {
		t.Fatalf("TotalSparsity = %v, want %v", s.TotalSparsity(), want)
	}
}

func TestElemFracForInvertsTotalSparsity(t *testing.T) {
	for _, target := range []float64{0.3, 0.5, 0.9, 0.95} {
		for _, rf := range []float64{0, 0.2, 0.5} {
			e := ElemFracFor(target, rf, 0.1)
			s := Spec{RowFrac: rf, ColFrac: 0.1, ElemFrac: e}
			got := s.TotalSparsity()
			if e > 0 && e < 1 && math.Abs(got-target) > 1e-9 {
				t.Fatalf("target %v rf %v: got %v", target, rf, got)
			}
		}
	}
	// Structured zeros exceeding target → clamp to 0 extra.
	if ElemFracFor(0.3, 0.9, 0) != 0 {
		t.Fatal("over-structured case should clamp")
	}
}

func TestApplyMatrixRowAndColStructure(t *testing.T) {
	w := filledMatrix(100, 40)
	ApplyMatrix(w, Spec{RowFrac: 0.3, ColFrac: 0.1}, xrand.New(1))
	// Exactly 30 rows must be fully zero.
	if got := MatrixRowSparsity(w); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("row sparsity = %v", got)
	}
	// Exactly 4 columns fully zero.
	zeroCols := 0
	for j := 0; j < 40; j++ {
		all := true
		for i := 0; i < 100; i++ {
			if w.At(i, j) != 0 {
				all = false
				break
			}
		}
		if all {
			zeroCols++
		}
	}
	// Zero columns could exceed 4 only if a column were zeroed by row
	// overlap, impossible here (rows zero 30 of 100 entries per column).
	if zeroCols != 4 {
		t.Fatalf("zero columns = %d, want 4", zeroCols)
	}
}

func TestApplyMatrixTotalSparsityCalibration(t *testing.T) {
	target := 0.91
	rf := 0.5
	e := ElemFracFor(target, rf, 0)
	w := filledMatrix(200, 120)
	ApplyMatrix(w, Spec{RowFrac: rf, ElemFrac: e}, xrand.New(2))
	got := w.Sparsity()
	if math.Abs(got-target) > 0.02 {
		t.Fatalf("sparsity %v, want ~%v", got, target)
	}
}

func TestApplyConvMatchesMatrixOrientation(t *testing.T) {
	c := nn.NewConv(3, 8, 3, 1, 1)
	for i := range c.W.Data() {
		c.W.Data()[i] = 1
	}
	ApplyConv(c, Spec{RowFrac: 0.4}, xrand.New(3))
	// The weight-matrix view must show exactly the zeroed rows.
	m := c.WeightMatrix()
	if got := MatrixRowSparsity(m); math.Abs(got-0.4) > 0.05 {
		t.Fatalf("conv matrix row sparsity = %v", got)
	}
	// A zero row means that pixel is zero in EVERY filter.
	for r := 0; r < m.Dim(0); r++ {
		zero := true
		for j := 0; j < m.Dim(1); j++ {
			if m.At(r, j) != 0 {
				zero = false
			}
		}
		if zero {
			ci, rest := r/9, r%9
			ky, kx := rest/3, rest%3
			for co := 0; co < 8; co++ {
				if c.W.At(co, ci, ky, kx) != 0 {
					t.Fatal("row zero in matrix but not in conv storage")
				}
			}
		}
	}
}

func TestApplyNetworkDeterministicPerLayer(t *testing.T) {
	build := func() *nn.Network {
		net, err := nn.Parse("p", nn.Shape{1, 12, 12}, "conv3x4-pool-conv3x4-8-4")
		if err != nil {
			t.Fatal(err)
		}
		for _, li := range net.MatrixLayerInfos() {
			switch l := li.Layer.(type) {
			case *nn.Conv:
				l.W.Fill(1)
			case *nn.FC:
				l.W.Fill(1)
			}
		}
		return net
	}
	spec := func(nn.LayerInfo) Spec { return Spec{RowFrac: 0.25, ElemFrac: 0.3} }
	a, b := build(), build()
	ApplyNetwork(a, spec, xrand.New(9))
	ApplyNetwork(b, spec, xrand.New(9))
	la, lb := a.MatrixLayerInfos(), b.MatrixLayerInfos()
	for i := range la {
		wa := la[i].Layer.WeightMatrix()
		wb := lb[i].Layer.WeightMatrix()
		for j := range wa.Data() {
			if wa.Data()[j] != wb.Data()[j] {
				t.Fatal("ApplyNetwork is not deterministic")
			}
		}
	}
	if a.WeightSparsity() < 0.3 {
		t.Fatalf("network sparsity %v too low", a.WeightSparsity())
	}
}

func TestMagnitude(t *testing.T) {
	w := []float32{0.1, -0.5, 0.02, 3, -0.01, 0}
	Magnitude(w, 0.5) // 3 of 6 zero; one already zero → zero 2 smallest
	if w[4] != 0 || w[2] != 0 {
		t.Fatal("smallest magnitudes not zeroed")
	}
	if w[3] != 3 || w[1] != -0.5 {
		t.Fatal("large magnitudes must survive")
	}
	zeros := 0
	for _, v := range w {
		if v == 0 {
			zeros++
		}
	}
	if zeros != 3 {
		t.Fatalf("zeros = %d, want 3", zeros)
	}
}

func TestMagnitudeEdgeCases(t *testing.T) {
	w := []float32{1, 2}
	Magnitude(w, 0)
	if w[0] != 1 {
		t.Fatal("target 0 must be a no-op")
	}
	Magnitude(w, 1)
	if w[0] != 0 || w[1] != 0 {
		t.Fatal("target 1 must zero everything")
	}
	Magnitude(nil, 0.5) // must not panic
}

// TestSSLvsGSLStructure verifies the property the whole evaluation rests
// on: at equal total sparsity, SSL-style pruning yields far more all-zero
// matrix rows than GSL-style pruning.
func TestSSLvsGSLStructure(t *testing.T) {
	target := 0.9
	ssl := filledMatrix(256, 64)
	gsl := filledMatrix(256, 64)
	ApplyMatrix(ssl, Spec{RowFrac: 0.7, ElemFrac: ElemFracFor(target, 0.7, 0)}, xrand.New(5))
	ApplyMatrix(gsl, Spec{ElemFrac: target}, xrand.New(6))
	if math.Abs(ssl.Sparsity()-gsl.Sparsity()) > 0.03 {
		t.Fatalf("total sparsities differ too much: %v vs %v", ssl.Sparsity(), gsl.Sparsity())
	}
	sslRows, gslRows := MatrixRowSparsity(ssl), MatrixRowSparsity(gsl)
	if sslRows < 0.65 {
		t.Fatalf("SSL row sparsity %v too low", sslRows)
	}
	if gslRows > 0.05 {
		t.Fatalf("GSL row sparsity %v unexpectedly high", gslRows)
	}
}

// TestSegmentRowsBlockConsistency: with SegRows = 4, the zero decision
// for a (block, segment) must apply to all four rows identically.
func TestSegmentRowsBlockConsistency(t *testing.T) {
	w := filledMatrix(64, 32)
	spec := Spec{SegFrac: 0.5, SegCols: 4, SegRows: 4}
	ApplyMatrix(w, spec, xrand.New(3))
	for blk := 0; blk < 16; blk++ {
		for seg := 0; seg < 8; seg++ {
			zero := w.At(blk*4, seg*4) == 0
			for dr := 0; dr < 4; dr++ {
				for dc := 0; dc < 4; dc++ {
					if (w.At(blk*4+dr, seg*4+dc) == 0) != zero {
						t.Fatalf("block (%d,%d) not uniformly zeroed", blk, seg)
					}
				}
			}
		}
	}
	if s := w.Sparsity(); s < 0.3 || s > 0.7 {
		t.Fatalf("segment sparsity %v implausible for frac 0.5", s)
	}
}

// TestApplyConvMatchesApplyMatrix: pruning a conv layer directly must
// produce exactly the zeros that pruning its matrix view produces (same
// RNG stream), including with segments and row blocks.
func TestApplyConvMatchesApplyMatrix(t *testing.T) {
	specs := []Spec{
		{RowFrac: 0.2, ColFrac: 0.1},
		{SegFrac: 0.4, SegCols: 2, SegRows: 9},
		{RowFrac: 0.1, SegFrac: 0.3, SegCols: 4, SegRows: 3, ElemFrac: 0.0},
	}
	for si, spec := range specs {
		c := nn.NewConv(4, 8, 3, 1, 1)
		for i := range c.W.Data() {
			c.W.Data()[i] = 1
		}
		m := c.WeightMatrix() // dense copy in matrix orientation
		ApplyConv(c, spec, xrand.New(77))
		ApplyMatrix(m, spec, xrand.New(77))
		got := c.WeightMatrix()
		for r := 0; r < m.Dim(0); r++ {
			for cc := 0; cc < m.Dim(1); cc++ {
				if (got.At(r, cc) == 0) != (m.At(r, cc) == 0) {
					t.Fatalf("spec %d: conv and matrix pruning disagree at (%d,%d)", si, r, cc)
				}
			}
		}
	}
}
