// Package prune produces the weight zero-structures the paper's
// experiments depend on.
//
// The paper evaluates networks trained with SSL (structured sparsity
// learning [45]) and, for Fig. 23, with SkimCaffe's GSL (unstructured,
// per-layer-tuned). We cannot rerun Caffe training, but every measured
// quantity depends only on where the zeros are (DESIGN.md §2), so this
// package synthesizes those structures directly:
//
//   - SSL zeroes whole *weight-matrix rows* — the same filter pixel
//     (ci, ky, kx) across every filter of the layer — plus whole filters
//     (matrix columns), plus residual element-wise zeros. Row-structured
//     zeros are exactly what ReCom/naive/ORC row compression can exploit.
//   - GSL zeroes elements independently (magnitude-style), with per-layer
//     rates; element zeros only align into removable OU rows by chance.
//
// Magnitude pruning of genuinely trained weights is also provided for the
// small networks the repo really trains.
package prune

import (
	"fmt"
	"sort"

	"sre/internal/nn"
	"sre/internal/tensor"
	"sre/internal/xrand"
)

// Spec describes a synthetic zero structure for one layer.
//
// SSL produces zeros at several granularities at once: whole
// weight-matrix rows (the same filter pixel across every filter), whole
// filters (columns), row *segments* — a filter pixel zeroed across a
// contiguous group of SegCols filters but not all of them — and leftover
// element-wise zeros. Row segments are the structure that OU-row
// compression exploits but whole-matrix-row schemes (ReCom) cannot.
type Spec struct {
	RowFrac  float64 // fraction of weight-matrix rows zeroed entirely
	ColFrac  float64 // fraction of columns (filters / FC outputs) zeroed entirely
	SegFrac  float64 // probability a (SegRows-row, SegCols-column block) is zeroed
	SegCols  int     // segment width in logical columns (default 16)
	SegRows  int     // segment height in rows (default 1; K·K groups whole channels)
	ElemFrac float64 // independent zero probability among remaining elements
}

// segCols returns the effective segment width.
func (s Spec) segCols() int {
	if s.SegCols <= 0 {
		return 16
	}
	return s.SegCols
}

// segRows returns the effective segment height.
func (s Spec) segRows() int {
	if s.SegRows <= 0 {
		return 1
	}
	return s.SegRows
}

// Validate checks all fractions are probabilities.
func (s Spec) Validate() error {
	for _, f := range []float64{s.RowFrac, s.ColFrac, s.SegFrac, s.ElemFrac} {
		if f < 0 || f > 1 {
			return fmt.Errorf("prune: fraction %v outside [0,1]", f)
		}
	}
	return nil
}

// TotalSparsity returns the expected overall zero fraction produced by
// the spec (assuming no pre-existing zeros).
func (s Spec) TotalSparsity() float64 {
	keep := (1 - s.RowFrac) * (1 - s.ColFrac) * (1 - s.SegFrac) * (1 - s.ElemFrac)
	return 1 - keep
}

// ElemFracFor returns the element-wise rate needed to reach the target
// total sparsity given the structured fractions. It returns 0 if the
// structured zeros alone already exceed the target.
func ElemFracFor(target float64, structured ...float64) float64 {
	keep := 1.0
	for _, f := range structured {
		keep *= 1 - f
	}
	if keep <= 0 {
		return 0
	}
	e := 1 - (1-target)/keep
	if e < 0 {
		return 0
	}
	if e > 1 {
		return 1
	}
	return e
}

// ApplyMatrix zeroes a rank-2 [R, C] weight matrix in place per spec.
func ApplyMatrix(w *tensor.Tensor, spec Spec, rng *xrand.RNG) {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	r, c := w.Dim(0), w.Dim(1)
	zeroRows := pickSet(rng.Split("rows"), r, spec.RowFrac)
	zeroCols := pickSet(rng.Split("cols"), c, spec.ColFrac)
	er := rng.Split("elems")
	sr := rng.Split("segs")
	sc, sRows := spec.segCols(), spec.segRows()
	d := w.Data()
	segZero := make([]bool, (c+sc-1)/sc)
	for i := 0; i < r; i++ {
		rowZero := zeroRows[i]
		if i%sRows == 0 { // one decision per (row block, column segment)
			for s := range segZero {
				segZero[s] = spec.SegFrac > 0 && sr.Bernoulli(spec.SegFrac)
			}
		}
		row := d[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			if rowZero || zeroCols[j] || segZero[j/sc] || er.Bernoulli(spec.ElemFrac) {
				row[j] = 0
			}
		}
	}
}

// pickSet returns a boolean membership vector with round(frac·n) members.
func pickSet(rng *xrand.RNG, n int, frac float64) []bool {
	k := int(frac*float64(n) + 0.5)
	if k > n {
		k = n
	}
	set := make([]bool, n)
	for _, i := range rng.SampleK(k, n) {
		set[i] = true
	}
	return set
}

// ApplyConv zeroes a conv layer's weights in place. Matrix rows are
// filter pixels (ci, ky, kx) shared across output filters; matrix columns
// are output filters — the same orientation as Conv.WeightMatrix.
func ApplyConv(c *nn.Conv, spec Spec, rng *xrand.RNG) {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	rows := c.Cin * c.K * c.K
	zeroRows := pickSet(rng.Split("rows"), rows, spec.RowFrac)
	zeroCols := pickSet(rng.Split("cols"), c.Cout, spec.ColFrac)
	er := rng.Split("elems")
	sr := rng.Split("segs")
	sc, sRows := spec.segCols(), spec.segRows()
	nSeg := (c.Cout + sc - 1) / sc
	nBlock := (rows + sRows - 1) / sRows
	// Segment decisions must match ApplyMatrix's draw order (row blocks
	// outer, column segments inner); precompute them because conv storage
	// iterates filters (columns) in the outer loop.
	segZero := make([]bool, nBlock*nSeg)
	if spec.SegFrac > 0 {
		for i := range segZero {
			segZero[i] = sr.Bernoulli(spec.SegFrac)
		}
	}
	kk := c.K * c.K
	d := c.W.Data()
	for co := 0; co < c.Cout; co++ {
		base := co * c.Cin * kk
		seg := co / sc
		for rIdx := 0; rIdx < rows; rIdx++ {
			if zeroRows[rIdx] || zeroCols[co] || segZero[(rIdx/sRows)*nSeg+seg] || er.Bernoulli(spec.ElemFrac) {
				d[base+rIdx] = 0
			}
		}
	}
}

// ApplyFC zeroes an FC layer's weights in place.
func ApplyFC(f *nn.FC, spec Spec, rng *xrand.RNG) {
	ApplyMatrix(f.W, spec, rng)
}

// ApplyLayer dispatches on the matrix-layer type.
func ApplyLayer(l nn.MatrixLayer, spec Spec, rng *xrand.RNG) {
	switch v := l.(type) {
	case *nn.Conv:
		ApplyConv(v, spec, rng)
	case *nn.FC:
		ApplyFC(v, spec, rng)
	default:
		panic("prune: unknown matrix layer type")
	}
}

// SpecFunc selects the spec for a layer; used by ApplyNetwork.
type SpecFunc func(li nn.LayerInfo) Spec

// ApplyNetwork prunes every matrix layer of net using the per-layer spec
// from f. Each layer draws from an independent RNG stream keyed by its
// path, so results do not depend on layer iteration order.
func ApplyNetwork(net *nn.Network, f SpecFunc, rng *xrand.RNG) {
	for _, li := range net.MatrixLayerInfos() {
		ApplyLayer(li.Layer, f(li), rng.Split("prune/"+li.Path))
	}
}

// Magnitude zeroes the smallest-magnitude elements of w until the target
// sparsity is reached (counting pre-existing zeros toward the target).
func Magnitude(w []float32, target float64) {
	if target <= 0 {
		return
	}
	n := len(w)
	want := int(target*float64(n) + 0.5)
	zeros := 0
	for _, v := range w {
		if v == 0 {
			zeros++
		}
	}
	need := want - zeros
	if need <= 0 {
		return
	}
	type mag struct {
		i int
		a float32
	}
	nonzero := make([]mag, 0, n-zeros)
	for i, v := range w {
		if v != 0 {
			a := v
			if a < 0 {
				a = -a
			}
			nonzero = append(nonzero, mag{i, a})
		}
	}
	sort.Slice(nonzero, func(a, b int) bool { return nonzero[a].a < nonzero[b].a })
	if need > len(nonzero) {
		need = len(nonzero)
	}
	for _, m := range nonzero[:need] {
		w[m.i] = 0
	}
}

// SliceSparsify clamps weight magnitudes in place so that, quantized
// with a single per-tensor scale at wbits precision and decomposed into
// cellBits-wide cells, every clamped code fits in the maxSlices
// least-significant weight bit slices — the high slices become all-zero
// and the WSS scheme elides their OU groups entirely. The elements at
// the tensor's maximum magnitude are left untouched: they anchor the
// per-tensor quantization scale (which maps the max to the top code),
// without which clamping would simply rescale every code back to full
// range. Signs are preserved. maxSlices outside (0, wbits/cellBits)
// leaves w unchanged. The parameters are plain ints so the package
// stays independent of internal/quant.
func SliceSparsify(w []float32, maxSlices, wbits, cellBits int) {
	if cellBits <= 0 || maxSlices <= 0 || maxSlices >= wbits/cellBits || len(w) == 0 {
		return
	}
	var maxAbs float32
	for _, v := range w {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return
	}
	topCode := float64(uint64(1)<<uint(wbits) - 1)
	capCode := float64(uint64(1)<<uint(maxSlices*cellBits) - 1)
	clampAt := float32(float64(maxAbs) * capCode / topCode)
	for i, v := range w {
		a := v
		if a < 0 {
			a = -a
		}
		if a == maxAbs {
			continue // scale anchor
		}
		if a > clampAt {
			if v < 0 {
				w[i] = -clampAt
			} else {
				w[i] = clampAt
			}
		}
	}
}

// MatrixRowSparsity returns the fraction of fully-zero rows in a rank-2
// matrix — the structure SSL creates and row compression exploits.
func MatrixRowSparsity(w *tensor.Tensor) float64 {
	r, c := w.Dim(0), w.Dim(1)
	zero := 0
	d := w.Data()
outer:
	for i := 0; i < r; i++ {
		for _, v := range d[i*c : (i+1)*c] {
			if v != 0 {
				continue outer
			}
		}
		zero++
	}
	return float64(zero) / float64(r)
}
