// Package profiling wires the runtime/pprof profilers into the CLIs
// (srebench, sresim) behind -cpuprofile/-memprofile flags, so hot-path
// work can be profiled without a test harness (`make profile`).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile written to path and returns the stop
// function (a no-op when path is empty). Call the stop function before
// the process exits or the profile will be truncated.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profiling: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes an up-to-date heap profile to path (a no-op when
// path is empty).
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	runtime.GC() // get up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("profiling: %w", err)
	}
	return f.Close()
}
