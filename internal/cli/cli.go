// Package cli is the flag wiring the sre binaries share: the
// simulation worker-pool width, the window-code cache toggle, and the
// run-metrics snapshot file/format pair with its writer. Extracting it
// keeps the four binaries (sresim, srebench, sreaccuracy, sreserved)
// agreeing on flag names, defaults, and help text, and keeps the
// json-vs-prom snapshot switch in one place.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sre/internal/metrics"
)

// AddWorkers registers the shared -workers flag on fs.
func AddWorkers(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "simulation worker-pool width (0 = GOMAXPROCS)")
}

// AddCodeCache registers the shared -codecache flag on fs.
func AddCodeCache(fs *flag.FlagSet) *bool {
	return fs.Bool("codecache", true, "share one window-code materialization per layer across modes")
}

// AddSnapshotDir registers the shared -snapshot-dir flag on fs.
func AddSnapshotDir(fs *flag.FlagSet) *string {
	return fs.String("snapshot-dir", "",
		"consult (and populate) this directory of built-network snapshots instead of always building")
}

// MetricsFlags is the parsed -metrics/-metrics-format pair.
type MetricsFlags struct {
	Path   string
	Format string
}

// AddMetrics registers the shared -metrics and -metrics-format flags
// on fs.
func AddMetrics(fs *flag.FlagSet) *MetricsFlags {
	m := &MetricsFlags{}
	fs.StringVar(&m.Path, "metrics", "", "write a run-metrics snapshot to this file")
	fs.StringVar(&m.Format, "metrics-format", "json", "metrics snapshot format: json|prom")
	return m
}

// Enabled reports whether a snapshot file was requested.
func (m *MetricsFlags) Enabled() bool { return m.Path != "" }

// Registry returns a fresh registry when -metrics was given, nil
// otherwise (a nil registry disables collection everywhere).
func (m *MetricsFlags) Registry() *metrics.Registry {
	if !m.Enabled() {
		return nil
	}
	return metrics.NewRegistry()
}

// Write writes snap to the requested file in the requested format; it
// is a no-op when -metrics was not given.
func (m *MetricsFlags) Write(snap *metrics.Snapshot) error {
	if !m.Enabled() {
		return nil
	}
	f, err := os.Create(m.Path)
	if err != nil {
		return err
	}
	err = WriteSnapshot(f, m.Format, snap)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteSnapshot writes snap to w in the named format (json|prom).
func WriteSnapshot(w io.Writer, format string, snap *metrics.Snapshot) error {
	switch format {
	case "json":
		return snap.WriteJSON(w)
	case "prom":
		return snap.WritePrometheus(w)
	}
	return fmt.Errorf("unknown -metrics-format %q (want json or prom)", format)
}
