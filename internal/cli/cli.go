// Package cli is the flag wiring the sre binaries share: the
// simulation worker-pool width, the window-code cache toggle, and the
// run-metrics snapshot file/format pair with its writer. Extracting it
// keeps the four binaries (sresim, srebench, sreaccuracy, sreserved)
// agreeing on flag names, defaults, and help text, and keeps the
// json-vs-prom snapshot switch in one place.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sre/internal/metrics"
)

// AddWorkers registers the shared -workers flag on fs.
func AddWorkers(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "simulation worker-pool width (0 = GOMAXPROCS)")
}

// AddCodeCache registers the shared -codecache flag on fs.
func AddCodeCache(fs *flag.FlagSet) *bool {
	return fs.Bool("codecache", true, "share one window-code materialization per layer across modes")
}

// AddSnapshotDir registers the shared -snapshot-dir flag on fs.
func AddSnapshotDir(fs *flag.FlagSet) *string {
	return fs.String("snapshot-dir", "",
		"consult (and populate) this directory of built-network snapshots instead of always building")
}

// AddPeers registers the shared -peers flag on fs (sreserved's cluster
// membership; sreload reuses the same grammar for multi-target load).
func AddPeers(fs *flag.FlagSet) *string {
	return fs.String("peers", "",
		"comma-separated replica addresses of a sharded cluster, including this replica (empty = single-replica mode)")
}

// AddSelf registers the shared -self flag on fs.
func AddSelf(fs *flag.FlagSet) *string {
	return fs.String("self", "",
		"this replica's own address as listed in -peers (default: the listen address)")
}

// SplitAddrs splits a comma-separated address list, trimming
// whitespace and dropping empty elements, so "a, b," and "a,b" agree.
func SplitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// ByteSize is a flag.Value holding a byte count. It parses a plain
// integer (bytes) or an integer with a binary suffix — KiB, MiB, GiB
// (or the short forms K, M, G, and B for bytes), case-insensitive —
// so capacity flags read as "-result-cache-bytes 64MiB" rather than a
// raw digit string. Negative values pass through for flags that use
// them to mean "disabled".
type ByteSize int64

// byteSuffixes in longest-match-first order; short forms follow the
// canonical binary spellings so "64M" and "64MiB" agree.
var byteSuffixes = []struct {
	suffix string
	mult   int64
}{
	{"GIB", 1 << 30}, {"MIB", 1 << 20}, {"KIB", 1 << 10},
	{"G", 1 << 30}, {"M", 1 << 20}, {"K", 1 << 10}, {"B", 1},
}

// ParseByteSize parses s as a byte count per the ByteSize grammar.
func ParseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	num, mult := t, int64(1)
	upper := strings.ToUpper(t)
	for _, sfx := range byteSuffixes {
		if strings.HasSuffix(upper, sfx.suffix) {
			num = strings.TrimSpace(t[:len(t)-len(sfx.suffix)])
			mult = sfx.mult
			break
		}
	}
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q (want e.g. 1048576, 64MiB, 2GiB)", s)
	}
	return n * mult, nil
}

func (b *ByteSize) Set(s string) error {
	n, err := ParseByteSize(s)
	if err != nil {
		return err
	}
	*b = ByteSize(n)
	return nil
}

func (b *ByteSize) String() string {
	v := int64(*b)
	switch {
	case v != 0 && v%(1<<30) == 0:
		return strconv.FormatInt(v>>30, 10) + "GiB"
	case v != 0 && v%(1<<20) == 0:
		return strconv.FormatInt(v>>20, 10) + "MiB"
	case v != 0 && v%(1<<10) == 0:
		return strconv.FormatInt(v>>10, 10) + "KiB"
	}
	return strconv.FormatInt(v, 10)
}

// Int64 returns the byte count.
func (b *ByteSize) Int64() int64 { return int64(*b) }

// AddByteSize registers a byte-size flag on fs and returns its value.
func AddByteSize(fs *flag.FlagSet, name string, def int64, usage string) *ByteSize {
	b := ByteSize(def)
	fs.Var(&b, name, usage)
	return &b
}

// MetricsFlags is the parsed -metrics/-metrics-format pair.
type MetricsFlags struct {
	Path   string
	Format string
}

// AddMetrics registers the shared -metrics and -metrics-format flags
// on fs.
func AddMetrics(fs *flag.FlagSet) *MetricsFlags {
	m := &MetricsFlags{}
	fs.StringVar(&m.Path, "metrics", "", "write a run-metrics snapshot to this file")
	fs.StringVar(&m.Format, "metrics-format", "json", "metrics snapshot format: json|prom")
	return m
}

// Enabled reports whether a snapshot file was requested.
func (m *MetricsFlags) Enabled() bool { return m.Path != "" }

// Registry returns a fresh registry when -metrics was given, nil
// otherwise (a nil registry disables collection everywhere).
func (m *MetricsFlags) Registry() *metrics.Registry {
	if !m.Enabled() {
		return nil
	}
	return metrics.NewRegistry()
}

// Write writes snap to the requested file in the requested format; it
// is a no-op when -metrics was not given.
func (m *MetricsFlags) Write(snap *metrics.Snapshot) error {
	if !m.Enabled() {
		return nil
	}
	f, err := os.Create(m.Path)
	if err != nil {
		return err
	}
	err = WriteSnapshot(f, m.Format, snap)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteSnapshot writes snap to w in the named format (json|prom).
func WriteSnapshot(w io.Writer, format string, snap *metrics.Snapshot) error {
	switch format {
	case "json":
		return snap.WriteJSON(w)
	case "prom":
		return snap.WritePrometheus(w)
	}
	return fmt.Errorf("unknown -metrics-format %q (want json or prom)", format)
}
