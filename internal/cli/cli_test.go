package cli

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlagDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	workers := AddWorkers(fs)
	codeCache := AddCodeCache(fs)
	m := AddMetrics(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *workers != 0 || !*codeCache || m.Enabled() || m.Format != "json" {
		t.Fatalf("defaults: workers=%d codecache=%v metrics=%+v", *workers, *codeCache, m)
	}
	if m.Registry() != nil {
		t.Fatal("disabled metrics flags must yield a nil registry")
	}
	if err := m.Write(nil); err != nil {
		t.Fatalf("disabled Write must be a no-op: %v", err)
	}
}

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"1048576", 1 << 20, true},
		{"64KiB", 64 << 10, true},
		{"64kib", 64 << 10, true},
		{"256MiB", 256 << 20, true},
		{"2GiB", 2 << 30, true},
		{"2G", 2 << 30, true},
		{"512M", 512 << 20, true},
		{"7K", 7 << 10, true},
		{"128B", 128, true},
		{" 64MiB ", 64 << 20, true},
		{"-1", -1, true}, // negative passes through (flags use it as "disabled")
		{"", 0, false},
		{"MiB", 0, false},
		{"12.5MiB", 0, false},
		{"64XB", 0, false},
	}
	for _, c := range cases {
		got, err := ParseByteSize(c.in)
		if c.ok != (err == nil) || (c.ok && got != c.want) {
			t.Errorf("ParseByteSize(%q) = %d, %v; want %d, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

func TestByteSizeFlag(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	b := AddByteSize(fs, "cache-bytes", 256<<20, "cache capacity")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if b.Int64() != 256<<20 {
		t.Fatalf("default = %d, want %d", b.Int64(), int64(256<<20))
	}
	if got := b.String(); got != "256MiB" {
		t.Fatalf("String() = %q, want 256MiB", got)
	}
	if err := fs.Parse([]string{"-cache-bytes", "2GiB"}); err != nil {
		t.Fatal(err)
	}
	if b.Int64() != 2<<30 {
		t.Fatalf("parsed = %d, want %d", b.Int64(), int64(2<<30))
	}
	fs2 := flag.NewFlagSet("t2", flag.ContinueOnError)
	fs2.SetOutput(discard{})
	AddByteSize(fs2, "cache-bytes", 0, "cache capacity")
	if err := fs2.Parse([]string{"-cache-bytes", "lots"}); err == nil {
		t.Fatal("accepted a non-numeric byte size")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestMetricsWrite(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	m := AddMetrics(fs)
	path := filepath.Join(t.TempDir(), "snap.prom")
	if err := fs.Parse([]string{"-metrics", path, "-metrics-format", "prom"}); err != nil {
		t.Fatal(err)
	}
	reg := m.Registry()
	if reg == nil {
		t.Fatal("enabled metrics flags must yield a registry")
	}
	reg.Shard().Counter("sre_cli_test_total").Add(3)
	if err := m.Write(reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "sre_cli_test_total 3") {
		t.Fatalf("prom snapshot missing counter:\n%s", raw)
	}

	m.Format = "bogus"
	if err := m.Write(reg.Snapshot()); err == nil {
		t.Fatal("accepted unknown format")
	}
}
