package cli

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlagDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	workers := AddWorkers(fs)
	codeCache := AddCodeCache(fs)
	m := AddMetrics(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *workers != 0 || !*codeCache || m.Enabled() || m.Format != "json" {
		t.Fatalf("defaults: workers=%d codecache=%v metrics=%+v", *workers, *codeCache, m)
	}
	if m.Registry() != nil {
		t.Fatal("disabled metrics flags must yield a nil registry")
	}
	if err := m.Write(nil); err != nil {
		t.Fatalf("disabled Write must be a no-op: %v", err)
	}
}

func TestMetricsWrite(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	m := AddMetrics(fs)
	path := filepath.Join(t.TempDir(), "snap.prom")
	if err := fs.Parse([]string{"-metrics", path, "-metrics-format", "prom"}); err != nil {
		t.Fatal(err)
	}
	reg := m.Registry()
	if reg == nil {
		t.Fatal("enabled metrics flags must yield a registry")
	}
	reg.Shard().Counter("sre_cli_test_total").Add(3)
	if err := m.Write(reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "sre_cli_test_total 3") {
		t.Fatalf("prom snapshot missing counter:\n%s", raw)
	}

	m.Format = "bogus"
	if err := m.Write(reg.Snapshot()); err == nil {
		t.Fatal("accepted unknown format")
	}
}
