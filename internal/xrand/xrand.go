// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator used throughout the simulator.
//
// Every experiment in this repository must be exactly reproducible from a
// seed, independent of iteration order of other experiments, so we avoid
// math/rand's global state entirely. The generator is xoshiro256**
// seeded through SplitMix64, the combination recommended by the xoshiro
// authors (Blackman & Vigna). Streams can be split hierarchically with
// Split, which derives an independent child stream from a label, so e.g.
// every layer of every network draws from its own stream no matter how
// many draws its siblings consumed.
package xrand

import "math"

// RNG is a deterministic xoshiro256** generator. The zero value is not
// valid; construct with New or Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances x and returns the next SplitMix64 output. It is used
// both for seeding and for label mixing in Split.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed via SplitMix64.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.reseed(seed)
	return r
}

func (r *RNG) reseed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	// xoshiro must not start from the all-zero state.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 1
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives an independent child generator from this generator's
// current state and a label. Calling Split with distinct labels yields
// statistically independent streams; Split does not advance the parent, so
// the set of children is a pure function of (parent state, label).
func (r *RNG) Split(label string) *RNG {
	h := r.s0 ^ rotl(r.s2, 23)
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * 0x100000001b3
	}
	seed := h
	return New(splitmix64(&seed))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hi = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi += aHi*bHi + t>>32
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// NormFloat64 returns a standard normal variate using the polar
// Marsaglia method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// SampleK returns k distinct integers drawn uniformly from [0, n), in
// increasing order. It panics if k > n or k < 0. It runs in O(n) when
// k is a large fraction of n and O(k) expected otherwise.
func (r *RNG) SampleK(k, n int) []int {
	if k < 0 || k > n {
		panic("xrand: SampleK out of range")
	}
	if k == 0 {
		return nil
	}
	if k*3 >= n {
		// Dense: shuffle-and-take, then sort by selection order.
		p := r.Perm(n)[:k]
		insertionSort(p)
		return p
	}
	// Sparse: rejection sampling into a set.
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := r.Intn(n)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	insertionSort(out)
	return out
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
