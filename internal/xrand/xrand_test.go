package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split("layer0")
	c2 := root.Split("layer1")
	c1again := root.Split("layer0")
	if c1.Uint64() != c1again.Uint64() {
		t.Fatal("Split with same label is not reproducible")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("Split with different labels produced identical streams")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := New(9), New(9)
	_ = a.Split("x")
	_ = a.Split("y")
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleKProperties(t *testing.T) {
	r := New(19)
	f := func(kRaw, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		k := int(kRaw) % (n + 1)
		s := r.SampleK(k, n)
		if len(s) != k {
			return false
		}
		for i, v := range s {
			if v < 0 || v >= n {
				return false
			}
			if i > 0 && s[i-1] >= v {
				return false // must be strictly increasing (distinct, sorted)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(23)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestMul128AgainstBig(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul128(a, b)
		// Verify via 32-bit decomposition computed a second, independent way.
		wantLo := a * b
		// hi = floor(a*b / 2^64) computed with math/bits-free algebra:
		a0, a1 := a&0xffffffff, a>>32
		b0, b1 := b&0xffffffff, b>>32
		mid := a1*b0 + (a0*b0)>>32
		mid2 := a0*b1 + (mid & 0xffffffff)
		wantHi := a1*b1 + (mid >> 32) + (mid2 >> 32)
		return lo == wantLo && hi == wantHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
