package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"sre/internal/metrics"
	"sre/internal/tensor"
)

// TestGoldenCodeCacheBitIdentical is the code-plane cache's identity
// proof: for every mode, worker count, and sampling setting, a layer
// that carries a CodePlanes must produce exactly the LayerResult of the
// same layer without one, and of a cached layer run with
// Config.NoCodeCache — same Cycles, Stalls, OUEvents, Fetches, and
// bit-for-bit the same Energy floats. One CodePlanes instance persists
// across all runs, so later iterations also prove reads of an
// already-built plane stay identical.
func TestGoldenCodeCacheBitIdentical(t *testing.T) {
	uncached := goldenLayer(t)
	cached := uncached
	cached.Codes = NewCodePlanes()
	ctx := context.Background()
	modes := []Mode{ModeBaseline, ModeNaive, ModeReCom, ModeORC, ModeDOF, ModeORCDOF}
	for _, mode := range modes {
		for _, workers := range []int{1, 0} {
			for _, maxWin := range []int{0, 4} {
				cfg := DefaultConfig()
				cfg.Mode = mode
				cfg.MaxWindows = maxWin
				cfg.Workers = workers
				tag := fmt.Sprintf("%v workers=%d maxWin=%d", mode, workers, maxWin)
				want, err := SimulateLayerContext(ctx, uncached, cfg)
				if err != nil {
					t.Fatalf("%s uncached: %v", tag, err)
				}
				got, err := SimulateLayerContext(ctx, cached, cfg)
				if err != nil {
					t.Fatalf("%s cached: %v", tag, err)
				}
				if got != want {
					t.Fatalf("%s: cached %+v != uncached %+v", tag, got, want)
				}
				cfg.NoCodeCache = true
				optOut, err := SimulateLayerContext(ctx, cached, cfg)
				if err != nil {
					t.Fatalf("%s opt-out: %v", tag, err)
				}
				if optOut != want {
					t.Fatalf("%s: NoCodeCache %+v != uncached %+v", tag, optOut, want)
				}
			}
		}
	}
}

// TestGoldenCodeCacheMeteredIdentical repeats the identity with a
// metrics registry attached and reconciles the cache counters: distinct
// sampled-window counts build distinct planes exactly once, every other
// lookup hits, and the opted-out run touches none of them.
func TestGoldenCodeCacheMeteredIdentical(t *testing.T) {
	layer := goldenLayer(t)
	layer.Codes = NewCodePlanes()
	ctx := context.Background()
	reg := metrics.NewRegistry()
	modes := []Mode{ModeBaseline, ModeNaive, ModeReCom, ModeORC, ModeDOF, ModeORCDOF}
	lookups := 0
	for _, mode := range modes {
		for _, maxWin := range []int{0, 4} { // two distinct sampled counts
			cfg := DefaultConfig()
			cfg.Mode = mode
			cfg.MaxWindows = maxWin
			cfg.Workers = 2
			plain, err := SimulateLayerContext(ctx, layer, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Metrics = reg
			metered, err := SimulateLayerContext(ctx, layer, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if metered != plain {
				t.Fatalf("%v maxWin=%d: metered %+v != unmetered %+v", mode, maxWin, metered, plain)
			}
			lookups++ // only the metered run feeds the counters
		}
	}
	snap := reg.Snapshot()
	// The unmetered warm-up runs already built both planes, so every
	// metered lookup hits; builds are therefore absent from this
	// registry, and misses stay zero.
	if got := snap.Counters["sre_core_code_cache_hits_total"]; got != int64(lookups) {
		t.Fatalf("hits = %d, want %d", got, lookups)
	}
	if got := snap.Counters["sre_core_code_cache_misses_total"]; got != 0 {
		t.Fatalf("misses = %d, want 0 (planes pre-built by unmetered runs)", got)
	}

	// A fresh cache under one registry shows the full algebra: one miss
	// and one build per distinct sampled count, hits for the rest, and
	// resident bytes matching the two plane sizes.
	layer.Codes = NewCodePlanes()
	reg = metrics.NewRegistry()
	lookups = 0
	for _, mode := range modes {
		for _, maxWin := range []int{0, 4} {
			cfg := DefaultConfig()
			cfg.Mode = mode
			cfg.MaxWindows = maxWin
			cfg.Workers = 2
			cfg.Metrics = reg
			if _, err := SimulateLayerContext(ctx, layer, cfg); err != nil {
				t.Fatal(err)
			}
			lookups++
		}
	}
	snap = reg.Snapshot()
	const distinct = 2 // sampled counts: all 9 windows, and 4
	if got := snap.Counters["sre_core_code_cache_misses_total"]; got != distinct {
		t.Fatalf("misses = %d, want %d", got, distinct)
	}
	if got := snap.Counters["sre_core_code_cache_builds_total"]; got != distinct {
		t.Fatalf("builds = %d, want %d", got, distinct)
	}
	if got := snap.Counters["sre_core_code_cache_hits_total"]; got != int64(lookups-distinct) {
		t.Fatalf("hits = %d, want %d", got, lookups-distinct)
	}
	rows := layer.Struct.Layout.Rows
	wantBytes := int64((9 + 4) * rows * 4)
	if got := snap.Counters["sre_core_code_cache_bytes_total"]; got != wantBytes {
		t.Fatalf("bytes = %d, want %d", got, wantBytes)
	}
}

// TestCodePlaneConcurrentBuild races many goroutines at one entry and
// at two distinct sampled counts; under -race this is the cache's
// safety proof, and the once-per-entry build must hold regardless of
// who wins.
func TestCodePlaneConcurrentBuild(t *testing.T) {
	layer := goldenLayer(t)
	cp := NewCodePlanes()
	rows := layer.Struct.Layout.Rows
	windows := layer.Acts.Windows()
	var wg sync.WaitGroup
	planes := make([][]uint32, 16)
	for i := range planes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sampled := windows
			if i%2 == 1 {
				sampled = 4
			}
			planes[i] = cp.plane(layer.Acts, rows, sampled, windows, codeCacheMetrics{})
		}(i)
	}
	wg.Wait()
	for i := range planes {
		if planes[i] == nil {
			t.Fatalf("goroutine %d: nil plane", i)
		}
		// Same sampled count must share one backing array.
		if &planes[i][0] != &planes[i%2][0] {
			t.Fatalf("goroutine %d: plane not shared with its key's first builder", i)
		}
	}
	if len(planes[0]) != windows*rows || len(planes[1]) != 4*rows {
		t.Fatalf("plane sizes %d/%d, want %d/%d", len(planes[0]), len(planes[1]), windows*rows, 4*rows)
	}
}

// TestCodePlaneSizeBound pins the memory backstop: a plane that would
// exceed maxCachedPlaneElems is not cached (the caller falls back to
// per-window source reads) and records neither a hit nor a build.
func TestCodePlaneSizeBound(t *testing.T) {
	cp := NewCodePlanes()
	rows := 1 << 12
	sampled := maxCachedPlaneElems/rows + 1
	if p := cp.plane(nil, rows, sampled, sampled, codeCacheMetrics{}); p != nil {
		t.Fatalf("oversized plane was cached (%d elems)", len(p))
	}
	if len(cp.entries) != 0 {
		t.Fatalf("oversized request left %d cache entries", len(cp.entries))
	}
}

// TestTensorSourceCloneWindowCodes is the clone-correctness check for
// the traced-activation adapter: clones reading windows in interleaved
// and reversed orders must reproduce exactly the codes the parent
// produces in forward order, because each clone owns its im2col scratch
// while sharing the read-only tensor.
func TestTensorSourceCloneWindowCodes(t *testing.T) {
	x := tensor.New(3, 6, 6)
	for i := range x.Data() {
		x.Data()[i] = float32(i%7) - 3.2
	}
	src := NewTensorSource(x, 3, 1, 1, 8)
	rows := 3 * 3 * 3
	windows := src.Windows()
	want := make([][]uint32, windows)
	for w := 0; w < windows; w++ {
		want[w] = make([]uint32, rows)
		src.WindowCodes(w, want[w])
	}
	a := src.CloneSource()
	b := src.CloneSource()
	got := make([]uint32, rows)
	// Interleave two clones over opposite orders; any shared scratch
	// would cross-contaminate the gathers.
	for w := 0; w < windows; w++ {
		a.WindowCodes(w, got)
		for i := range got {
			if got[i] != want[w][i] {
				t.Fatalf("clone a window %d row %d: %d != %d", w, i, got[i], want[w][i])
			}
		}
		rev := windows - 1 - w
		b.WindowCodes(rev, got)
		for i := range got {
			if got[i] != want[rev][i] {
				t.Fatalf("clone b window %d row %d: %d != %d", rev, i, got[i], want[rev][i])
			}
		}
	}
}

// TestTensorSourceConcurrentClones hammers distinct clones of one
// TensorSource from parallel goroutines; under -race this proves the
// clone contract (shared tensor read-only, scratch private).
func TestTensorSourceConcurrentClones(t *testing.T) {
	x := tensor.New(2, 8, 8)
	for i := range x.Data() {
		x.Data()[i] = float32((i*13)%11) * 0.25
	}
	src := NewTensorSource(x, 3, 1, 0, 8)
	rows := 2 * 3 * 3
	windows := src.Windows()
	want := make([]uint32, windows*rows)
	for w := 0; w < windows; w++ {
		src.WindowCodes(w, want[w*rows:(w+1)*rows])
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < len(errs); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			clone := src.CloneSource()
			got := make([]uint32, rows)
			for rep := 0; rep < 3; rep++ {
				for w := 0; w < windows; w++ {
					wi := (w*7 + g) % windows // clone-specific order
					clone.WindowCodes(wi, got)
					for i := range got {
						if got[i] != want[wi*rows+i] {
							errs[g] = fmt.Errorf("clone %d window %d row %d: %d != %d",
								g, wi, i, got[i], want[wi*rows+i])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
