package core

import (
	"context"
	"strings"
	"testing"

	"sre/internal/compress"
	"sre/internal/mapping"
	"sre/internal/quant"
)

// noSlicePlaneStructure rebuilds a structure through the plane decoder
// with the slice-plane section absent — the shape a pre-format-2
// snapshot (or any caller of NewStructureFromPlanes passing nil slice
// planes) produces.
func noSlicePlaneStructure(t *testing.T, rows, cols int, p quant.Params, g mapping.Geometry) *compress.Structure {
	t.Helper()
	st, _, _ := smallCase(3, rows, cols, p, g, 0.5, 0)
	planes := st.AppendPlanes(nil)
	back, err := compress.NewStructureFromPlanes(rows, cols, p, g, planes, nil, st.NonZeroCells())
	if err != nil {
		t.Fatal(err)
	}
	if back.HasSlicePlanes() {
		t.Fatal("nil slice planes still produced a slice grid")
	}
	return back
}

// TestInvalidModeCombosRejected is the mode×structure table test:
// every combination the paper's Fig. 10 (or the engine's data
// requirements) forbids must be rejected with an error that names the
// offending layer, and must fail identically through the batch path.
func TestInvalidModeCombosRejected(t *testing.T) {
	p := quant.Default()
	g := mapping.Default()
	full, _, inputs := smallCase(3, 40, 24, p, g, 0.5, 0)
	bare := noSlicePlaneStructure(t, 40, 24, p, g)
	acts := &sliceSource{rows: [][]uint32{inputs}}

	cases := []struct {
		name   string
		mode   Mode
		st     *compress.Structure
		substr string // must appear in the error
	}{
		{"occ+dof", Mode{compress.OCC, true}, full, "cannot combine with DOF"},
		{"occ without companion", ModeOCC, full, "needs Layer.OCC"},
		{"wss without slice planes", ModeWSS, bare, "weight bit-slice planes"},
		{"orc+dof+wss without slice planes", ModeORCDOFWSS, bare, "weight bit-slice planes"},
	}
	for _, tc := range cases {
		layer := Layer{Name: "victim", Struct: tc.st, Acts: acts}
		cfg := DefaultConfig()
		cfg.Mode = tc.mode
		_, err := SimulateLayerContext(context.Background(), layer, cfg)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), `"victim"`) {
			t.Fatalf("%s: error does not name the layer: %v", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Fatalf("%s: error %v does not explain (%q)", tc.name, err, tc.substr)
		}
		_, berr := SimulateNetworkContext(context.Background(), []Layer{layer}, cfg)
		if berr == nil {
			t.Fatalf("%s: network path accepted", tc.name)
		}
		if !strings.Contains(berr.Error(), `"victim"`) {
			t.Fatalf("%s: network-path error does not name the layer: %v", tc.name, berr)
		}
	}

	// The same modes on the right structure are fine.
	for _, mode := range []Mode{ModeWSS, ModeORCDOFWSS} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		if _, err := SimulateLayerContext(context.Background(), Layer{Name: "ok", Struct: full, Acts: acts}, cfg); err != nil {
			t.Fatalf("%v rejected a slice-plane structure: %v", mode, err)
		}
	}
}
