// Slice-mask plane cache: the second derivation layer on top of the
// window-code planes. DOF-mode phase 1 turns each sampled window's
// codes into per-(row block, bit slice) wordline masks
// (bitset.BuildSliceMasks) before counting OU occupancy — work that is
// identical across the DOF modes of one sweep and across repeated runs
// of a resident network, and that profiles as the single largest
// phase-1 cost. A CodePlanes therefore also caches the derived masks:
// one contiguous word plane per (sampled count, DAC width, slices per
// input) holding every window's masks, its per-(window, row block)
// non-empty-slice bitmaps, and per-slice popcounts, built once under
// sync.Once from the code plane and read lock-free ever after.
//
// The cached masks are exactly the words BuildSliceMasks would have
// produced per window, so phase-1 results are bit-identical with the
// cache on or off (golden tests enforce this through the existing
// cached-vs-uncached comparisons). Config.NoCodeCache opts out of this
// cache together with the code plane it derives from.
package core

import (
	"sync"

	"sre/internal/bitset"
	"sre/internal/mapping"
	"sre/internal/metrics"
)

// maxCachedMaskWords bounds one mask plane's size (uint64 words;
// 64 MiB). Past the bound phase 1 falls back to building masks per
// window, which those runs paid before the cache existed.
const maxCachedMaskWords = 8 << 20

// maskKey identifies one derived mask plane. The layout is fixed per
// Layer (it comes from the compression structure), so only the
// run-variable inputs key the entry: the sampled-window count selects
// which code plane the masks derive from, and the quantization pair
// (DACBits, SlicesPerInput) selects how codes split into slices.
type maskKey struct {
	sampled, dacBits, spi int
}

type maskPlaneEntry struct {
	once sync.Once
	mp   *maskPlane
}

// maskPlane is one built entry: a window-major structure-of-arrays
// flattening of every sampled window's slice masks. The mask words of
// (window wi, row block rb, slice s) live at index
// ((wi·rowBlocks+rb)·spi+s)·maxWords, padded to the full-tile word
// count so offsets are uniform; nonEmpty and sliceNZ are indexed by
// the same (wi·rowBlocks+rb) and ((wi·rowBlocks+rb)·spi+s) keys.
type maskPlane struct {
	words     []uint64
	nonEmpty  []uint64
	sliceNZ   []int32
	rowBlocks int
	spi       int
	maxWords  int
}

// mask returns the mask words for flat index idx =
// (wi·rowBlocks+rb)·spi+s, trimmed to the tile's w words.
func (mp *maskPlane) mask(idx, w int) []uint64 {
	off := idx * mp.maxWords
	return mp.words[off : off+w : off+w]
}

// maskCacheMetrics carries the mask-cache observability counters
// (nil-safe). The algebra mirrors the code cache's: for a fixed
// workload, misses == builds == distinct (sampled, quant) keys and
// hits == DOF-mode lookups − builds, deterministically.
type maskCacheMetrics struct {
	hits, misses, builds, bytes *metrics.Counter
}

// maskPlane returns the cached slice-mask plane derived from the
// layer's code plane (which must hold sampled·lay.Rows codes), building
// it on first use. Returns nil when the plane would exceed the size
// bound — phase 1 then builds masks per window as before.
func (c *CodePlanes) maskPlane(plane []uint32, lay mapping.Layout, sampled, dacBits, spi int, m maskCacheMetrics) *maskPlane {
	maxWords := bitset.Words64(lay.XbarRows)
	total := sampled * lay.RowBlocks * spi * maxWords
	if total == 0 || int64(total) > maxCachedMaskWords {
		return nil
	}
	key := maskKey{sampled, dacBits, spi}
	c.mu.Lock()
	if c.masks == nil {
		c.masks = make(map[maskKey]*maskPlaneEntry)
	}
	e := c.masks[key]
	if e == nil {
		e = &maskPlaneEntry{}
		c.masks[key] = e
		m.misses.Inc()
	} else {
		m.hits.Inc()
	}
	c.mu.Unlock()
	e.once.Do(func() {
		m.builds.Inc()
		mp := &maskPlane{
			words:     make([]uint64, total),
			nonEmpty:  make([]uint64, sampled*lay.RowBlocks),
			sliceNZ:   make([]int32, sampled*lay.RowBlocks*spi),
			rowBlocks: lay.RowBlocks,
			spi:       spi,
			maxWords:  maxWords,
		}
		heads := make([][]uint64, spi)
		for wi := 0; wi < sampled; wi++ {
			codes := plane[wi*lay.Rows : (wi+1)*lay.Rows]
			for rb := 0; rb < lay.RowBlocks; rb++ {
				lo := rb * lay.XbarRows
				hi := lo + lay.TileRows(rb)
				w := bitset.Words64(hi - lo)
				base := (wi*lay.RowBlocks + rb) * spi
				for s := 0; s < spi; s++ {
					off := (base + s) * maxWords
					heads[s] = mp.words[off : off+w : off+w]
				}
				ne := bitset.BuildSliceMasks(codes[lo:hi], dacBits, heads)
				mp.nonEmpty[wi*lay.RowBlocks+rb] = ne
				for s := 0; s < spi; s++ {
					if s >= 64 || ne&(1<<uint(s)) != 0 {
						mp.sliceNZ[base+s] = int32(bitset.CountWords(heads[s]))
					}
				}
			}
		}
		e.mp = mp
		size := int64(len(mp.words))*8 + int64(len(mp.nonEmpty))*8 + int64(len(mp.sliceNZ))*4
		m.bytes.Add(size)
		c.resident.Add(size)
	})
	return e.mp
}
