package core

import (
	"context"
	"testing"

	"sre/internal/buffer"
	"sre/internal/compress"
	"sre/internal/mapping"
	"sre/internal/quant"
	"sre/internal/tensor"
	"sre/internal/xrand"
)

// buildOCCCase makes a single-tile layer with column-structured zeros
// plus its OCC structure.
func buildOCCCase(t *testing.T, seed uint64) Layer {
	t.Helper()
	r := xrand.New(seed)
	p := quant.Default()
	w := tensor.New(128, 16)
	for row := 0; row < 128; row++ {
		for c := 0; c < 16; c++ {
			if c%2 == 0 && !r.Bernoulli(0.3) { // odd columns mostly zero... even dense
				w.Set(float32(r.Float64()+0.1), row, c)
			}
		}
	}
	src := compress.NewFloatSource(w, p)
	g := mapping.Default()
	st := compress.Build(src, p, g)
	occ := compress.BuildOCC(src, p, g)
	inputs := make([]uint32, 128)
	for i := range inputs {
		if !r.Bernoulli(0.4) {
			inputs[i] = uint32(r.Intn(1 << 16))
		}
	}
	return Layer{Name: "occ", Struct: st, OCC: occ,
		Acts: &sliceSource{rows: [][]uint32{inputs}}}
}

func TestOCCModeSpeedsUpColumnStructure(t *testing.T) {
	l := buildOCCCase(t, 1)
	cfg := DefaultConfig()
	cfg.MaxWindows = 0
	base := SimulateLayer(l, cfg)
	cfg.Mode = ModeOCC
	occ := SimulateLayer(l, cfg)
	if occ.Cycles >= base.Cycles {
		t.Fatalf("OCC %d cycles vs baseline %d on column-sparse weights", occ.Cycles, base.Cycles)
	}
	// Input order unchanged → same fetch count as baseline.
	if occ.Fetches != base.Fetches {
		t.Fatalf("OCC fetches %d != baseline %d", occ.Fetches, base.Fetches)
	}
	if occ.Energy.Total() >= base.Energy.Total() {
		t.Fatal("OCC should save energy here")
	}
}

func TestOCCPlusDOFErrors(t *testing.T) {
	l := buildOCCCase(t, 2)
	cfg := DefaultConfig()
	cfg.Mode = Mode{Scheme: compress.OCC, DOF: true}
	if _, err := SimulateLayerContext(context.Background(), l, cfg); err == nil {
		t.Fatal("expected the Fig. 10 hazard to be rejected with an error")
	}
	// The non-context wrapper turns the same error into a panic.
	defer func() {
		if recover() == nil {
			t.Fatal("SimulateLayer must panic on the Fig. 10 hazard")
		}
	}()
	SimulateLayer(l, cfg)
}

func TestOCCWithoutStructureErrors(t *testing.T) {
	l := buildOCCCase(t, 3)
	l.OCC = nil
	cfg := DefaultConfig()
	cfg.Mode = ModeOCC
	if _, err := SimulateLayerContext(context.Background(), l, cfg); err == nil {
		t.Fatal("expected an error for missing OCC structure")
	}
	// Through the network engine the error names the failing layer.
	if _, err := SimulateNetworkContext(context.Background(), []Layer{l}, cfg); err == nil {
		t.Fatal("expected the network engine to surface the layer error")
	}
}

// TestOCCCycleFormula pins the static OU count: per tile, per slice,
// Σ_bands ceil(retainedCols/S_BL).
func TestOCCCycleFormula(t *testing.T) {
	l := buildOCCCase(t, 4)
	cfg := DefaultConfig()
	cfg.MaxWindows = 0
	cfg.Mode = ModeOCC
	res := SimulateLayer(l, cfg)
	spi := cfg.Quant.SlicesPerInput()
	want := int64(l.OCC.OUsPerTileSlice(0, 0)) * int64(spi)
	if res.OUEvents != want {
		t.Fatalf("OCC OU events %d, want %d", res.OUEvents, want)
	}
}

// TestBufferStalls: the §5.3 buffer design point must add no latency,
// while an undersized buffer must stall the pipeline.
func TestBufferStalls(t *testing.T) {
	l := buildOCCCase(t, 5)
	cfg := DefaultConfig()
	cfg.MaxWindows = 0

	ideal := SimulateLayer(l, cfg)

	cfg.Buffer = buffer.Default()
	paper := SimulateLayer(l, cfg)
	if paper.Cycles != ideal.Cycles {
		t.Fatalf("paper's buffer (%d cycles) must match the ideal fetch (%d)",
			paper.Cycles, ideal.Cycles)
	}

	cfg.Buffer = buffer.Config{CapacityBytes: 1024, Banks: 1, BusBits: 32, Clock: 1.2e9}
	starved := SimulateLayer(l, cfg)
	if starved.Cycles <= ideal.Cycles {
		t.Fatalf("starved buffer did not slow the layer: %d vs %d", starved.Cycles, ideal.Cycles)
	}
}
