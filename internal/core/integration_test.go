package core

import (
	"testing"

	"sre/internal/compress"
	"sre/internal/dataset"
	"sre/internal/energy"
	"sre/internal/mapping"
	"sre/internal/nn"
	"sre/internal/prune"
	"sre/internal/quant"
	"sre/internal/train"
)

// TestRealNetworkEndToEnd drives the full real-data path the examples
// advertise: train a small network on synthetic data, magnitude-prune it,
// trace a real forward pass, feed the traced activations through
// TensorSource into the simulator, and check the paper's orderings hold
// on genuinely ReLU-sparse activations (not the synthetic generator).
func TestRealNetworkEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	cfg := dataset.Config{Name: "e2e", Channels: 1, Size: 14, Classes: 4,
		Train: 120, Test: 30, Noise: 0.08, MaxShift: 1, Seed: 31}
	trainSet, testSet := dataset.Generate(cfg)
	net, err := nn.Parse("e2e", nn.Shape{1, 14, 14}, "conv5x6-pool-conv3x8-pool-32-4")
	if err != nil {
		t.Fatal(err)
	}
	tr := train.New(net, 0.03, 77)
	for e := 0; e < 6; e++ {
		tr.TrainEpoch(trainSet)
		tr.LR *= 0.6
	}
	if acc := tr.Accuracy(testSet); acc < 0.8 {
		t.Fatalf("training failed (acc %.2f); integration test needs a working model", acc)
	}

	// Magnitude-prune the trained weights to 60% and confirm accuracy
	// survives (magnitude pruning keeps the large weights).
	for _, li := range net.MatrixLayerInfos() {
		switch l := li.Layer.(type) {
		case *nn.Conv:
			prune.Magnitude(l.W.Data(), 0.6)
		case *nn.FC:
			prune.Magnitude(l.W.Data(), 0.6)
		}
	}
	if acc := tr.Accuracy(testSet); acc < 0.6 {
		t.Fatalf("pruned accuracy collapsed to %.2f", acc)
	}

	// Trace a real forward pass and build simulator layers from it.
	trace := &nn.Trace{}
	net.Forward(testSet.X[0], trace)
	p := quant.Default()
	g := mapping.Default()
	infos := net.MatrixLayerInfos()
	var layers []Layer
	for i, li := range infos {
		w := li.Layer.WeightMatrix()
		st := compress.Build(compress.NewFloatSource(w, p), p, g)
		var acts ActivationSource
		if li.Kind == nn.KindConv {
			acts = NewTensorSource(trace.Inputs[i], li.K, li.Stride, li.Pad, p.ABits)
		} else {
			acts = NewTensorSource(trace.Inputs[i], 0, 0, 0, p.ABits)
		}
		if acts.Windows() != li.Windows {
			t.Fatalf("layer %s: traced windows %d != %d", li.Path, acts.Windows(), li.Windows)
		}
		layers = append(layers, Layer{Name: li.Path, Struct: st, Acts: acts})
	}

	run := func(m Mode) NetworkResult {
		return SimulateNetwork(layers, Config{
			Geometry: g, Quant: p, Mode: m, IndexBits: 5, MaxWindows: 0,
			Energy: energy.Default(),
		})
	}
	base := run(ModeBaseline)
	orc := run(ModeORC)
	dof := run(ModeDOF)
	both := run(ModeORCDOF)

	if !(orc.Cycles <= base.Cycles) {
		t.Fatal("ORC slower than baseline on real weights")
	}
	// ReLU guarantees activation sparsity, so DOF must help on real data.
	if !(dof.Cycles < base.Cycles) {
		t.Fatal("DOF found no activation sparsity in a post-ReLU trace")
	}
	if !(both.Cycles <= dof.Cycles && both.Cycles <= orc.Cycles) {
		t.Fatal("ORC+DOF must dominate both parents")
	}
	if !(both.Energy.Total() < base.Energy.Total()) {
		t.Fatal("SRE spent more energy than the baseline")
	}
}
