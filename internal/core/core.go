// Package core is the Sparse ReRAM Engine simulator — the paper's primary
// contribution rendered as an OU-level event-accurate performance and
// energy model.
//
// For every (layer, crossbar tile, input window, activation bit slice) it
// counts the OU activations each sparsity mode needs:
//
//	Baseline        slices · Σ_groups ceil(mappedRows/S_WL), mappedRows
//	                from the weight-compression plan (all rows for the
//	                no-compression baseline; fewer for Naive/ReCom/ORC);
//	DOF             per slice, only wordlines whose input bit is non-zero
//	                occupy OU slots: ceil(popcount(mask ∩ groupRows)/S_WL);
//	ORC+DOF         the same popcount restricted to the ORC-retained rows
//	                of each column group (fillers included).
//
// Crossbar tiles run in parallel, each with its own 3-stage pipeline
// (internal/pipeline); a layer's latency is the slowest tile's schedule
// and the network's latency is the sum over layers. Energy counts every
// OU activation, driven wordline, ADC conversion, eDRAM batch fetch (one
// per batch for input-order-preserving modes, one per column group when
// row compression reorders inputs — the Fig. 18 eDRAM effect), indexing
// blocks, and leakage.
//
// Large layers use deterministic window sampling (Config.MaxWindows):
// per-tile cycle and energy sums over the sampled windows scale by
// windows/sampled before the cross-tile maximum is taken.
//
// The simulator is parallel by default: window batch-work, per-tile
// pipeline schedules, and independent layers are sharded over a shared
// worker pool (internal/parallel, Config.Workers/Config.Pool). All
// cross-shard state is written to disjoint, pre-sized slots and the
// final reduction runs serially in a fixed order, so results are
// bit-identical to a single-worker run at any pool width.
// SimulateNetworkContext adds cancellation and per-layer progress
// reporting on top of the same engine.
package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"sre/internal/bitset"
	"sre/internal/buffer"
	"sre/internal/compress"
	"sre/internal/energy"
	"sre/internal/mapping"
	"sre/internal/metrics"
	"sre/internal/noc"
	"sre/internal/parallel"
	"sre/internal/pipeline"
	"sre/internal/quant"
	"sre/internal/reram"
	"sre/internal/tensor"
)

// Mode names a sparsity-exploitation configuration from the paper's
// evaluation (§6: baseline, naive, ReCom, ORC, DOF, ORC+DOF).
type Mode struct {
	Scheme compress.Scheme // weight compression
	DOF    bool            // dynamic OU formation (activation sparsity)
}

// The evaluated modes.
var (
	ModeBaseline = Mode{compress.Baseline, false}
	ModeNaive    = Mode{compress.Naive, false}
	ModeReCom    = Mode{compress.ReCom, false}
	ModeORC      = Mode{compress.ORC, false}
	ModeDOF      = Mode{compress.Baseline, true}
	ModeORCDOF   = Mode{compress.ORC, true}
	// ModeOCC is the §4.1 column-compression alternative; it cannot
	// combine with DOF (Fig. 10), which is why the paper's SRE uses ORC.
	ModeOCC = Mode{compress.OCC, false}
	// ModeWSS adds weight bit-slice sparsity on top of ORC's per-group
	// row compression: groups whose 16 same-slice columns hold only
	// all-zero weight bit slices map no OUs and issue no eDRAM fetch.
	ModeWSS = Mode{compress.WSS, false}
	// ModeORCDOFWSS composes all three axes: ORC-style row compression
	// per slice group, weight-slice elision, and Dynamic OU Formation.
	ModeORCDOFWSS = Mode{compress.WSS, true}
)

func (m Mode) String() string {
	switch {
	case m.Scheme == compress.Baseline && !m.DOF:
		return "baseline"
	case m.Scheme == compress.Baseline && m.DOF:
		return "dof"
	case m.Scheme == compress.ORC && m.DOF:
		return "orc+dof"
	case m.Scheme == compress.WSS && m.DOF:
		return "orc+dof+wss"
	case m.DOF:
		return m.Scheme.String() + "+dof"
	default:
		return m.Scheme.String()
	}
}

// Config selects the simulated hardware and mode.
type Config struct {
	Geometry   mapping.Geometry
	Quant      quant.Params
	Mode       Mode
	IndexBits  int // input-index width for row-compressing schemes (0 = unbounded)
	MaxWindows int // per-layer window sampling cap (0 = simulate all)
	Energy     energy.Config
	NoC        noc.Config    // zero value disables interconnect accounting
	Buffer     buffer.Config // zero value assumes the §5.3 one-cycle fetch

	// NoCodeCache disables the layer-level window-code plane cache
	// (Layer.Codes): every mode goes back to reading the
	// ActivationSource per window, as the pre-cache simulator did.
	// Results are bit-identical either way; the switch exists for
	// memory-constrained runs and as the golden comparison baseline.
	NoCodeCache bool

	// Workers is the simulation worker-pool width (0 = GOMAXPROCS).
	// Results are bit-identical at every width.
	Workers int
	// Pool, when non-nil, is the shared worker pool to draw from
	// (overrides Workers); sweeps use it to bound total concurrency
	// across concurrent SimulateNetwork calls.
	Pool *parallel.Pool
	// Progress, when non-nil, is called after each layer completes
	// during SimulateNetworkContext. Calls are serialized but may
	// arrive out of layer order when layers overlap.
	Progress func(ProgressEvent)

	// Metrics, when non-nil, receives run observability: OU
	// activations, wordline-occupancy histograms, window sampling,
	// plan-cache traffic, and pool utilization. Hot loops write to
	// worker-private shards; nothing the registry records feeds back
	// into the simulation, so Cycles/Energy stay bit-identical to an
	// unmetered run.
	Metrics *metrics.Registry

	// ScalarReference, when true, routes plan building and the DOF
	// inner loop through the pre-kernel scalar implementation (per-call
	// plan rebuilds, per-group bitset intersections). It exists as the
	// golden reference the word-plane kernel path is proven
	// bit-identical against, and as the before/after benchmark baseline
	// — never as a production configuration.
	ScalarReference bool
}

// ProgressEvent reports one completed layer of a running network
// simulation.
type ProgressEvent struct {
	Index int // layer index in the input slice
	Count int // total layers in the simulation
	Done  int // layers completed so far, including this one
	Layer LayerResult
}

// pool resolves the worker pool a simulation draws from, switching on
// its execution accounting when the run is metered.
func (c Config) pool() *parallel.Pool {
	p := c.Pool
	if p == nil {
		p = parallel.New(c.Workers)
	}
	if c.Metrics != nil {
		p.EnableStats()
	}
	return p
}

// occupancyBounds are the wordline-occupancy histogram buckets. S_WL
// never exceeds 128 in any modelled geometry, so the top bucket always
// covers a full OU.
var occupancyBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// occName returns the per-mode occupancy histogram name.
func occName(m Mode) string {
	return fmt.Sprintf("sre_core_ou_occupancy{mode=%q}", m.String())
}

// observeOccupancy records the wordline fill of the OUs serving one
// column group with nz driven rows: nz/swl full OUs and, if nz is not a
// multiple of swl, one partial OU — repeated for reps identical groups.
func observeOccupancy(occ *metrics.Histogram, nz, swl int, reps int64) {
	if f := nz / swl; f > 0 {
		occ.ObserveN(int64(swl), int64(f)*reps)
	}
	if r := nz % swl; r > 0 {
		occ.ObserveN(int64(r), reps)
	}
}

// recordStaticOccupancy feeds occ the fixed per-slice OU fill of one
// tile's plans — without DOF every slice drives the same retained rows,
// so one pass over the plans, repeated reps = slices×windows times,
// replaces a per-window scan. OCC keeps every row mapped, so its OUs
// are full by construction.
func recordStaticOccupancy(occ *metrics.Histogram, tp *tilePlan, swl int, reps int64) {
	switch {
	case tp.plans != nil:
		if tp.plans.AllRows {
			// Baseline plans are virtualized (no per-group row lists):
			// every group drives all TileRows rows, so batching the
			// Groups identical observations is additive-identical.
			observeOccupancy(occ, tp.plans.TileRows, swl, reps*int64(tp.plans.Groups))
			return
		}
		for _, rows := range tp.plans.GroupRows {
			observeOccupancy(occ, len(rows), swl, reps)
		}
	case tp.groupBits != nil:
		for _, gb := range tp.groupBits {
			observeOccupancy(occ, gb.Count(), swl, reps)
		}
	default:
		occ.ObserveN(int64(swl), tp.staticOUs*reps)
	}
}

// publishPoolMetrics records the pool's cumulative accounting as
// max-gauges. Gauges merge by maximum and the stats are monotonic, so
// repeated publishes from a shared pool (RunAll's modes, nested
// sweeps) converge on the final totals instead of double-counting.
func publishPoolMetrics(reg *metrics.Registry, pool *parallel.Pool) {
	if reg == nil {
		return
	}
	st := pool.Stats()
	if st == nil {
		return
	}
	sh := reg.Shard()
	sh.Gauge("sre_parallel_pool_width").Set(int64(pool.Workers()))
	sh.Gauge("sre_parallel_for_calls").Set(st.ForCalls.Load())
	sh.Gauge("sre_parallel_items").Set(st.Items.Load())
	sh.Gauge("sre_parallel_shards_inline").Set(st.ShardsInline.Load())
	sh.Gauge("sre_parallel_shards_spawned").Set(st.ShardsSpawned.Load())
	sh.Gauge("sre_parallel_spawn_wait_ns").Set(st.SpawnWaitNanos.Load())
	sh.Gauge("sre_parallel_dyn_for_calls").Set(st.DynCalls.Load())
	sh.Gauge("sre_parallel_dyn_chunks").Set(st.DynChunks.Load())
	sh.Gauge("sre_parallel_dyn_workers").Set(st.DynWorkers.Load())
}

// DefaultConfig returns the Table 1 configuration in baseline mode.
func DefaultConfig() Config {
	return Config{
		Geometry:   mapping.Default(),
		Quant:      quant.Default(),
		Mode:       ModeBaseline,
		IndexBits:  5,
		MaxWindows: 64,
		Energy:     energy.Default(),
		NoC:        noc.Default(),
	}
}

// ADCBits returns the ADC resolution the OU height demands.
func (c Config) ADCBits() int { return reram.ADCBitsFor(c.Geometry.SWL, c.Quant.CellBits) }

// CycleTime returns the pipeline cycle in seconds.
func (c Config) CycleTime() float64 { return c.Energy.SRECycle(c.ADCBits()) }

// ActivationSource yields the quantized activation vector feeding a
// layer's crossbar rows for each input sliding window.
type ActivationSource interface {
	// Windows returns how many sliding windows the layer processes.
	Windows() int
	// WindowCodes fills dst (length = layer rows) with window w's
	// quantized activation codes.
	WindowCodes(w int, dst []uint32)
}

// SourceCloner is implemented by ActivationSources that can hand each
// parallel worker an independent view of the same activations (sharing
// read-only data, duplicating scratch state). Sources that do not
// implement it are read by a single worker at a time.
type SourceCloner interface {
	CloneSource() ActivationSource
}

// cloneSource returns a worker-private view of src, or src itself when
// it does not support cloning.
func cloneSource(src ActivationSource) ActivationSource {
	if c, ok := src.(SourceCloner); ok {
		return c.CloneSource()
	}
	return src
}

// TensorSource adapts a real traced activation tensor (CHW) to an
// ActivationSource via im2col, quantizing with a single per-layer scale.
type TensorSource struct {
	X              *tensor.Tensor
	K, Stride, Pad int
	ABits          int
	scale          float64
	wout, hout     int
	buf            []float32
}

// NewTensorSource builds a source for a conv layer's traced input. For
// FC layers pass K=0 (the whole tensor is the single window).
func NewTensorSource(x *tensor.Tensor, k, stride, pad, abits int) *TensorSource {
	ts := &TensorSource{X: x, K: k, Stride: stride, Pad: pad, ABits: abits}
	ts.scale = quant.ScaleFor(float64(x.MaxAbs()), abits)
	if k > 0 {
		ts.hout = tensor.ConvOutputDim(x.Dim(1), k, stride, pad)
		ts.wout = tensor.ConvOutputDim(x.Dim(2), k, stride, pad)
		ts.buf = make([]float32, x.Dim(0)*k*k)
	}
	return ts
}

// CloneSource implements SourceCloner: the clone shares the (read-only)
// tensor but owns its im2col scratch buffer.
func (ts *TensorSource) CloneSource() ActivationSource {
	c := *ts
	if ts.buf != nil {
		c.buf = make([]float32, len(ts.buf))
	}
	return &c
}

func (ts *TensorSource) Windows() int {
	if ts.K == 0 {
		return 1
	}
	return ts.hout * ts.wout
}

func (ts *TensorSource) WindowCodes(w int, dst []uint32) {
	var vals []float32
	if ts.K == 0 {
		vals = ts.X.Data()
	} else {
		oy, ox := w/ts.wout, w%ts.wout
		tensor.Im2ColWindow(ts.X, ts.K, ts.Stride, ts.Pad, oy, ox, ts.buf)
		vals = ts.buf
	}
	if len(dst) != len(vals) {
		panic(fmt.Sprintf("core: window codes length %d, layer rows %d", len(vals), len(dst)))
	}
	for i, v := range vals {
		if v < 0 {
			v = -v
		}
		dst[i] = quant.QuantizeUnsigned(float64(v), ts.ABits, ts.scale)
	}
}

// Layer pairs one layer's compression structure with its activations.
// OCC is only needed for the ModeOCC extension (compress.BuildOCC).
type Layer struct {
	Name   string
	Struct *compress.Structure
	OCC    *compress.OCCStructure
	Acts   ActivationSource
	// Codes, when non-nil, caches the layer's sampled window codes so
	// RunAll's modes (and repeated SimulateLayer calls) share one
	// materialization instead of re-reading Acts per mode
	// (workload.Build attaches one to every layer). Config.NoCodeCache
	// opts a run out.
	Codes *CodePlanes
	// OutputBits is the layer's output feature-map size; when the config
	// carries an interconnect, handing it to the next layer's PEs costs
	// NoC energy (overlapped with compute, so no latency).
	OutputBits int64
	// ParallelGroup marks consecutive layers that run concurrently on
	// disjoint crossbars (grouped convolutions): their latency is the
	// maximum of the group, their energy the sum.
	ParallelGroup string
}

// LayerResult reports one layer under one config.
type LayerResult struct {
	Name     string
	Windows  int
	Sampled  int
	Cycles   int64 // slowest tile's pipelined schedule
	Stalls   int64
	OUEvents int64 // summed over all tiles (energy-relevant)
	Fetches  int64
	Time     float64 // seconds
	Energy   energy.Breakdown
}

// NetworkResult aggregates layers.
type NetworkResult struct {
	Layers []LayerResult
	Cycles int64
	Time   float64
	Energy energy.Breakdown
}

// Total satisfies common reporting.
func (r NetworkResult) TotalOUEvents() int64 {
	var n int64
	for _, l := range r.Layers {
		n += l.OUEvents
	}
	return n
}

// SimulateNetwork runs every layer and sums latency (layers execute
// sequentially on the modelled hardware) and energy. It is the
// non-cancellable form of SimulateNetworkContext and panics on the
// configuration errors that form reports (invalid quantization,
// geometry mismatch, OCC misuse); long-running servers should call
// SimulateNetworkContext and handle the error.
func SimulateNetwork(layers []Layer, cfg Config) NetworkResult {
	out, err := SimulateNetworkContext(context.Background(), layers, cfg)
	if err != nil {
		panic(err)
	}
	return out
}

// SimulateNetworkContext runs every layer, overlapping independent
// layers on the worker pool, and sums modelled latency and energy. The
// modelled hardware still executes layers sequentially — overlap only
// accelerates the simulation itself, and the fixed-order reduction
// keeps results bit-identical to a single-worker run. Returns ctx.Err
// if the context is cancelled before the simulation completes, or the
// first (lowest-index) layer's configuration error otherwise.
func SimulateNetworkContext(ctx context.Context, layers []Layer, cfg Config) (NetworkResult, error) {
	pool := cfg.pool()
	results := make([]LayerResult, len(layers))
	layerErrs := make([]error, len(layers))
	var progressMu sync.Mutex
	done := 0
	err := pool.For(ctx, len(layers), func(start, end int) {
		for i := start; i < end; i++ {
			lr, err := simulateLayer(ctx, layers[i], cfg, pool)
			if err != nil {
				layerErrs[i] = err
				return
			}
			lr.Energy.Interconnect = cfg.NoC.LayerHandoffEnergy(layers[i].OutputBits)
			results[i] = lr
			if cfg.Progress != nil {
				progressMu.Lock()
				done++
				cfg.Progress(ProgressEvent{Index: i, Count: len(layers), Done: done, Layer: lr})
				progressMu.Unlock()
			}
		}
	})
	if err != nil {
		return NetworkResult{}, err
	}
	for i, lerr := range layerErrs {
		if lerr != nil {
			return NetworkResult{}, fmt.Errorf("layer %d (%s): %w", i, layers[i].Name, lerr)
		}
	}
	publishPoolMetrics(cfg.Metrics, pool)
	return reduceNetwork(layers, results), nil
}

// reduceNetwork folds per-layer results into the network total: layers
// execute sequentially on the modelled hardware, except that a run of
// layers sharing a non-empty ParallelGroup executes concurrently —
// latency is the slowest member's, energy sums. Shared by the
// single-input and batched network simulations.
func reduceNetwork(layers []Layer, results []LayerResult) NetworkResult {
	var out NetworkResult
	for i := 0; i < len(layers); {
		j := i + 1
		if g := layers[i].ParallelGroup; g != "" {
			for j < len(layers) && layers[j].ParallelGroup == g {
				j++
			}
		}
		var maxCycles int64
		var maxTime float64
		for k := i; k < j; k++ {
			lr := results[k]
			out.Layers = append(out.Layers, lr)
			out.Energy.Add(lr.Energy)
			if lr.Cycles > maxCycles {
				maxCycles, maxTime = lr.Cycles, lr.Time
			}
		}
		out.Cycles += maxCycles
		out.Time += maxTime
		i = j
	}
	return out
}

// SimulateLayer runs one layer under cfg. It panics on the
// configuration errors SimulateLayerContext reports.
func SimulateLayer(l Layer, cfg Config) LayerResult {
	lr, err := SimulateLayerContext(context.Background(), l, cfg)
	if err != nil {
		panic(err)
	}
	return lr
}

// SimulateLayerContext runs one layer under cfg, sharding its window
// and tile loops over the worker pool.
func SimulateLayerContext(ctx context.Context, l Layer, cfg Config) (LayerResult, error) {
	return simulateLayer(ctx, l, cfg, cfg.pool())
}

// tilePlan is one (rb, cb) tile's per-run execution state: static
// OU/wordline counts, eDRAM fetch shape, and — for DOF modes — the
// retained-row masks the activation masks intersect with, either as the
// cached word plane (kernel path) or as per-group bitsets (scalar
// reference path).
type tilePlan struct {
	plans       *compress.TilePlans // cached word-plane plans (kernel path)
	groupBits   []*bitset.Set       // scalar-reference per-group row masks
	staticOUs   int64               // per-slice OU count without DOF
	staticWL    int64               // per-slice driven wordlines without DOF
	fetchGroups int                 // eDRAM fetches per batch
	fetchBits   int                 // bits per fetch
}

// batchWork is one (window, tile) batch's DOF-dependent work, written
// to a disjoint slot by phase 1.
type batchWork struct{ ous, wl int64 }

// validateModeLayer checks the mode against the layer's prepared state.
// The rules derive from scheme traits, not a per-mode switch: a scheme
// that cannot compose with DOF (OCC — Fig. 10: currents of different
// outputs would accumulate on one bitline) rejects any DOF pairing, a
// scheme that plans over weight bit-slice planes (WSS) requires the
// structure to carry them, and OCC additionally needs its column-
// compressed companion structure.
func validateModeLayer(l Layer, cfg Config) error {
	if cfg.Mode.DOF && !cfg.Mode.Scheme.ComposesWithDOF() {
		return fmt.Errorf(
			"core: layer %q: scheme %v cannot combine with DOF (paper Fig. 10)", l.Name, cfg.Mode.Scheme)
	}
	if cfg.Mode.Scheme.RequiresSlicePlanes() && !l.Struct.HasSlicePlanes() {
		return fmt.Errorf(
			"core: layer %q: mode %v needs weight bit-slice planes (structure predates them or was decoded without slice planes)",
			l.Name, cfg.Mode)
	}
	if cfg.Mode.Scheme == compress.OCC && l.OCC == nil {
		return fmt.Errorf(
			"core: layer %q: OCC mode needs Layer.OCC (compress.BuildOCC)", l.Name)
	}
	return nil
}

// simulateLayer is the layer engine. It runs in three phases so that
// parallel execution stays bit-identical to serial:
//
//  1. per-window batch work — OU slots and driven wordlines per tile —
//     computed by workers over disjoint window shards (pure functions
//     of the window, written to disjoint slots);
//  2. per-tile pipeline schedules — each tile's tracker consumes its
//     batches in window order, workers over disjoint tile shards;
//  3. a serial reduction over tiles in fixed (row, column) order, the
//     same float-accumulation order as the serial simulator.
//
// Configuration problems (invalid quantization, a structure built for a
// different geometry, OCC misuse) are reported as errors, not panics,
// so sweep servers survive a bad request.
func simulateLayer(ctx context.Context, l Layer, cfg Config, pool *parallel.Pool) (LayerResult, error) {
	if err := cfg.Quant.Validate(); err != nil {
		return LayerResult{}, err
	}
	st := l.Struct
	lay := st.Layout
	g := cfg.Geometry
	if lay.SWL != g.SWL || lay.SBL != g.SBL || lay.XbarRows != g.XbarRows {
		return LayerResult{}, fmt.Errorf(
			"core: layer %q: structure was built with a different geometry (layout %d/%d/%d, config %d/%d/%d)",
			l.Name, lay.XbarRows, lay.SWL, lay.SBL, g.XbarRows, g.SWL, g.SBL)
	}
	cycleTime := cfg.CycleTime()
	eCfg := cfg.Energy
	// msh is this layer call's private metrics shard (nil when the run
	// is unmetered — every cell operation on the nil chain is a no-op).
	// Layers overlap on the pool, so shard-per-layer keeps the serial
	// phase-3 writes race-free without locks.
	msh := cfg.Metrics.Shard()

	windows := l.Acts.Windows()
	sampled := SampledWindows(windows, cfg.MaxWindows)

	if err := validateModeLayer(l, cfg); err != nil {
		return LayerResult{}, err
	}

	// Resolve the layer's shared window-code plane. Every non-scalar
	// mode performs the lookup — not just the DOF modes that read the
	// codes — so the cache's hit/miss algebra is deterministic for a
	// fixed workload: misses == builds == distinct sampled counts, hits
	// == lookups − builds, regardless of mode order. The scalar
	// reference path keeps its historical per-call source reads.
	var plane []uint32
	if l.Codes != nil && !cfg.NoCodeCache && !cfg.ScalarReference {
		plane = l.Codes.plane(l.Acts, lay.Rows, sampled, windows, codeCacheMetrics{
			hits:   msh.Counter("sre_core_code_cache_hits_total"),
			misses: msh.Counter("sre_core_code_cache_misses_total"),
			builds: msh.Counter("sre_core_code_cache_builds_total"),
			bytes:  msh.Counter("sre_core_code_cache_bytes_total"),
		})
	}

	// Non-scalar paths run on a pooled scratch block (plan grid, DOF
	// work slots, tile accumulators); the scalar reference keeps fresh
	// allocations so the golden baseline's behavior is untouched.
	var ls *layerScratch
	if !cfg.ScalarReference {
		ls = getLayerScratch(arenaMetrics{
			gets: msh.Counter(`sre_core_arena_gets_total{arena="layer"}`),
			news: msh.Counter(`sre_core_arena_news_total{arena="layer"}`),
		})
		defer ls.release()
	}

	// Per-tile plans. The row-compression plans (and their word-plane
	// flattening) are memoized on the Structure per (scheme, indexBits),
	// so RunAll's modes and repeated SimulateLayer calls share one
	// build; only the mode-dependent fetch shape is derived here. The
	// scalar reference path instead rebuilds everything per call, as
	// the pre-kernel simulator did.
	var plans [][]tilePlan
	switch {
	case cfg.Mode.Scheme == compress.OCC:
		plans = ls.tilePlans(lay.RowBlocks, lay.ColBlocks)
		for rb := 0; rb < lay.RowBlocks; rb++ {
			tileRows := lay.TileRows(rb)
			for cb := 0; cb < lay.ColBlocks; cb++ {
				// Column compression keeps every row mapped; the OU count
				// per slice comes from the per-band retained columns.
				tp := &plans[rb][cb]
				tp.staticOUs = int64(l.OCC.OUsPerTileSlice(rb, cb))
				tp.staticWL = tp.staticOUs * int64(g.SWL)
				tp.fetchGroups = 1 // input order unchanged
				tp.fetchBits = tileRows * cfg.Quant.ABits
			}
		}
	case cfg.ScalarReference:
		var err error
		plans, err = scalarTilePlans(ctx, l, cfg)
		if err != nil {
			return LayerResult{}, err
		}
	default:
		var err error
		plans, err = kernelTilePlans(ctx, l, cfg, ls, msh)
		if err != nil {
			return LayerResult{}, err
		}
	}

	spi := cfg.Quant.SlicesPerInput()
	nTiles := lay.RowBlocks * lay.ColBlocks

	// Phase 1: per-window batch work, sharded over windows. Only DOF
	// modes inspect the activations; for the static modes every window
	// issues the same per-tile batch, so the phase is skipped entirely.
	var work []batchWork // indexed [wi*nTiles + rb*ColBlocks + cb]
	if cfg.Mode.DOF {
		// Resolve the derived slice-mask plane (maskplane.go): when the
		// code plane is cached, the per-window BuildSliceMasks sweep and
		// its popcounts are shared across DOF modes and repeated runs
		// the same way. nil (size bound, no code plane) falls back to
		// per-window mask building.
		var mp *maskPlane
		if plane != nil {
			mp = l.Codes.maskPlane(plane, lay, sampled, cfg.Quant.DACBits, spi, maskCacheMetrics{
				hits:   msh.Counter("sre_core_mask_cache_hits_total"),
				misses: msh.Counter("sre_core_mask_cache_misses_total"),
				builds: msh.Counter("sre_core_mask_cache_builds_total"),
				bytes:  msh.Counter("sre_core_mask_cache_bytes_total"),
			})
		}
		if ls != nil {
			work = ls.workSlots(sampled * nTiles)
		} else {
			work = make([]batchWork, sampled*nTiles)
		}
		phase1 := kernelPhase1(ctx, l, cfg, plans, work, sampled, windows,
			[]p1Input{{plane: plane, mp: mp, acts: l.Acts}})
		if cfg.ScalarReference {
			phase1 = scalarPhase1(ctx, l, cfg, plans, work, sampled, windows)
		}
		if plane != nil {
			// Cached codes need no source reads, so the window loop can
			// rebalance freely: dynamic chunked sharding absorbs the
			// skew of activation-dependent window costs. Result slots
			// stay disjoint, so bit-identity is unaffected.
			if err := pool.ForDynamic(ctx, sampled, parallel.ChunkFor(sampled, pool.Workers()), phase1); err != nil {
				return LayerResult{}, err
			}
		} else {
			winPool := pool
			if _, ok := l.Acts.(SourceCloner); !ok {
				// The source cannot give workers private views; read it
				// from a single shard (tiles still parallelize below).
				winPool = nil
			}
			if err := winPool.For(ctx, sampled, phase1); err != nil {
				return LayerResult{}, err
			}
		}
	}

	// Phase 2: per-tile pipeline schedules, sharded over tiles. Each
	// tile's tracker consumes its batches in window order — the same
	// order (and, for the float fetch-energy sum, the same sequence of
	// additions) as the serial simulator.
	var accs []tileAcc
	if ls != nil {
		accs = ls.tileAccs(nTiles)
	} else {
		accs = make([]tileAcc, nTiles)
	}
	err := pool.For(ctx, nTiles, func(start, end int) {
		for t := start; t < end; t++ {
			if ctx.Err() != nil {
				return
			}
			rb, cb := t/lay.ColBlocks, t%lay.ColBlocks
			tp := &plans[rb][cb]
			acc := &accs[t]
			var tracker pipeline.Tracker
			if cfg.Buffer.Banks > 0 {
				// An explicit buffer model may not sustain the §5.3
				// one-cycle fetch; charge the fetch stage accordingly.
				totalBits := tp.fetchBits * tp.fetchGroups
				tracker.FetchCycles = int64(1 + cfg.Buffer.StallCycles(totalBits, cycleTime))
			}
			staticOUs := tp.staticOUs * int64(spi)
			staticWL := tp.staticWL * int64(spi)
			fetchE := float64(tp.fetchGroups) * eCfg.FetchEnergy(tp.fetchBits)
			for wi := 0; wi < sampled; wi++ {
				batchOUs, batchWL := staticOUs, staticWL
				if cfg.Mode.DOF {
					bw := work[wi*nTiles+t]
					batchOUs, batchWL = bw.ous, bw.wl
				}
				tracker.Batch(batchOUs)
				acc.ouEvents += batchOUs
				acc.drivenWL += batchWL
				acc.fetches += int64(tp.fetchGroups)
				acc.fetchE += fetchE
			}
			acc.total, acc.stalls = tracker.Finish()
		}
	})
	if err != nil {
		return LayerResult{}, err
	}

	// Phase 3: serial reduction in fixed tile order — latency is the
	// slowest tile; energy sums over tiles.
	return phase3Reduce(l, cfg, plans, accs, windows, sampled, msh), nil
}

// kernelTilePlans resolves the memoized word-plane tile plans of a
// non-OCC, non-scalar run into ls's plan grid — the row-compression
// plans come from the Structure's (scheme, indexBits) memo; only the
// mode-dependent fetch shape is derived here. Shared by the
// single-input and batched layer engines.
func kernelTilePlans(ctx context.Context, l Layer, cfg Config, ls *layerScratch, msh *metrics.Shard) ([][]tilePlan, error) {
	lay := l.Struct.Layout
	ps := l.Struct.PlanSetMetered(cfg.Mode.Scheme, cfg.IndexBits, compress.CacheMetrics{
		Hits:   msh.Counter("sre_compress_plan_cache_hits_total"),
		Misses: msh.Counter("sre_compress_plan_cache_misses_total"),
		Builds: msh.Counter("sre_compress_plan_cache_builds_total"),
	})
	plans := ls.tilePlans(lay.RowBlocks, lay.ColBlocks)
	for rb := 0; rb < lay.RowBlocks; rb++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tileRows := lay.TileRows(rb)
		for cb := 0; cb < lay.ColBlocks; cb++ {
			tp := &plans[rb][cb]
			tp.plans = ps.Tile(rb, cb)
			tp.staticOUs = tp.plans.OUs
			tp.staticWL = tp.plans.RowCount
			// Row-reordering schemes issue one batch fetch per column
			// group (paper §4.1, the Fig. 18 eDRAM effect);
			// input-order-preserving modes fetch the batch once, and
			// WSS skips the fetch of groups whose weight bit slice is
			// all-zero. Each fetch reads the full batch's buffer lines
			// — gather happens at the IR, not inside the eDRAM.
			tp.fetchGroups = cfg.Mode.Scheme.FetchGroups(tp.plans.Groups, tp.plans.NonEmptyGroups)
			tp.fetchBits = tileRows * cfg.Quant.ABits
		}
	}
	return plans, nil
}

// phase3Reduce is the layer engine's serial phase-3 reduction over one
// input's tile accumulators, in fixed (row, column) tile order — the
// same float-accumulation order as the serial simulator. Latency is
// the slowest tile's scaled schedule; energy sums over tiles. Shared
// by the single-input and batched layer engines (a batched layer
// reduces each input's accumulator stripe independently, in input
// order, so every input sees exactly the single-run order).
func phase3Reduce(l Layer, cfg Config, plans [][]tilePlan, accs []tileAcc, windows, sampled int, msh *metrics.Shard) LayerResult {
	lay := l.Struct.Layout
	g := cfg.Geometry
	adcBits := cfg.ADCBits()
	cycleTime := cfg.CycleTime()
	eCfg := cfg.Energy
	spi := cfg.Quant.SlicesPerInput()
	scale := float64(windows) / float64(sampled)
	reorders := cfg.Mode.Scheme != compress.Baseline
	res := LayerResult{Name: l.Name, Windows: windows, Sampled: sampled}
	ouBase := eCfg.OUBaseEnergy(g.SBL, adcBits)
	wlE := eCfg.WordlineEnergy(adcBits)
	var maxCycles, maxStalls, scaledWL int64
	var staticOcc *metrics.Histogram
	if msh != nil && !cfg.Mode.DOF {
		// DOF occupancy is activation-dependent and recorded in phase 1;
		// static modes drive the same retained rows every slice, so the
		// histogram is derived once per tile from the plans here.
		staticOcc = msh.Histogram(occName(cfg.Mode), occupancyBounds)
	}
	for t := range accs {
		acc := &accs[t]
		scaledCycles := int64(math.Round(float64(acc.total) * scale))
		if scaledCycles > maxCycles {
			maxCycles, maxStalls = scaledCycles, int64(math.Round(float64(acc.stalls)*scale))
		}
		res.OUEvents += int64(math.Round(float64(acc.ouEvents) * scale))
		res.Fetches += int64(math.Round(float64(acc.fetches) * scale))
		res.Energy.Compute += scale * (float64(acc.ouEvents)*ouBase + float64(acc.drivenWL)*wlE)
		res.Energy.EDRAM += scale * acc.fetchE
		tileTime := float64(acc.total) * scale * cycleTime
		res.Energy.Index += eCfg.IndexingEnergy(tileTime, reorders, cfg.Mode.DOF)
		res.Energy.Leakage += eCfg.LeakageEnergy(tileTime)
		if msh != nil {
			scaledWL += int64(math.Round(float64(acc.drivenWL) * scale))
			if staticOcc != nil {
				rb, cb := t/lay.ColBlocks, t%lay.ColBlocks
				recordStaticOccupancy(staticOcc, &plans[rb][cb], g.SWL, int64(spi)*int64(sampled))
			}
		}
	}
	res.Cycles = maxCycles
	res.Stalls = maxStalls
	res.Time = float64(maxCycles) * cycleTime
	if msh != nil {
		// Per-layer totals, scaled by the window-sampling factor exactly
		// like the LayerResult fields, so the counters reconcile with the
		// reported Cycles/OUEvents. Occupancy histograms, by contrast,
		// hold raw per-sampled-window observations (unscaled).
		mode := cfg.Mode.String()
		msh.Counter(fmt.Sprintf("sre_core_layers_total{mode=%q}", mode)).Inc()
		msh.Counter(fmt.Sprintf("sre_core_windows_total{mode=%q}", mode)).Add(int64(windows))
		msh.Counter(fmt.Sprintf("sre_core_windows_simulated_total{mode=%q}", mode)).Add(int64(sampled))
		msh.Counter(fmt.Sprintf("sre_core_windows_skipped_total{mode=%q}", mode)).Add(int64(windows - sampled))
		msh.Counter(fmt.Sprintf("sre_core_ou_activations_total{mode=%q}", mode)).Add(res.OUEvents)
		msh.Counter(fmt.Sprintf("sre_core_driven_wordlines_total{mode=%q}", mode)).Add(scaledWL)
		msh.Counter(fmt.Sprintf("sre_core_fetches_total{mode=%q}", mode)).Add(res.Fetches)
		msh.Counter(fmt.Sprintf("sre_core_layer_cycles_total{mode=%q}", mode)).Add(res.Cycles)
		msh.Counter(fmt.Sprintf("sre_core_stall_cycles_total{mode=%q}", mode)).Add(res.Stalls)
	}
	return res
}

// p1Input is one activation input's phase-1 view. Exactly one of the
// derivation tiers is used per window: the cached slice-mask plane
// (mp), the cached code plane (plane), or a per-worker clone of the
// source (acts). Single-input simulations pass one of these; batched
// multi-activation sweeps pass one per coalesced input.
type p1Input struct {
	plane []uint32
	mp    *maskPlane
	acts  ActivationSource
}

// kernelPhase1 returns the word-plane phase-1 shard body over the
// flattened (input, window) index space (idx = input·sampled+window;
// single-input runs pass one input, so idx degenerates to the window
// index). For each window it derives all activation bit-slice masks in
// one sweep (bitset.BuildSliceMasks) — or reads them straight from the
// input's cached mask plane — then counts every column group's
// retained-row intersection with one fused pass per slice over the
// tile's cached word plane (bitset.CountAndPlanes). Scratch comes from
// the phase-1 arena (checked out per shard or dynamic chunk) and every
// result lands in a disjoint work slot, so the phase stays
// bit-identical at any worker count.
func kernelPhase1(ctx context.Context, l Layer, cfg Config, plans [][]tilePlan,
	work []batchWork, sampled, windows int, inputs []p1Input) func(start, end int) {
	lay := l.Struct.Layout
	g := cfg.Geometry
	spi := cfg.Quant.SlicesPerInput()
	nTiles := lay.RowBlocks * lay.ColBlocks
	baseline := cfg.Mode.Scheme == compress.Baseline
	return func(start, end int) {
		scr := getP1Scratch(lay, spi, cfg.Metrics)
		defer scr.release()
		// Source clones are established lazily per input as the shard
		// crosses input boundaries (at most once per boundary per chunk).
		var acts ActivationSource
		actsInput := -1
		codes := scr.codes
		masks := scr.masks
		nonEmpty := scr.nonEmpty
		counts := scr.counts
		sliceNZ := scr.sliceNZ
		ouTab := scr.ouTab
		// Worker-private occupancy histogram (nil when unmetered: the
		// whole recording block is skipped by one branch per group, and
		// the name is never even formatted).
		var occ *metrics.Histogram
		if cfg.Metrics != nil {
			occ = scr.shard(cfg.Metrics).Histogram(occName(cfg.Mode), occupancyBounds)
		}
		for idx := start; idx < end; idx++ {
			if ctx.Err() != nil {
				return
			}
			ji, wi := idx/sampled, idx%sampled
			in := &inputs[ji]
			mp := in.mp
			if mp == nil {
				// No cached masks: derive them from the codes (cached
				// plane or source read) into this worker's scratch.
				if in.plane != nil {
					codes = in.plane[wi*lay.Rows : (wi+1)*lay.Rows]
				} else {
					if actsInput != ji {
						acts, actsInput = cloneSource(in.acts), ji
					}
					codes = scr.codes
					acts.WindowCodes(wi*windows/sampled, codes)
				}
				for rb := 0; rb < lay.RowBlocks; rb++ {
					lo := rb * g.XbarRows
					hi := lo + lay.TileRows(rb)
					nonEmpty[rb] = bitset.BuildSliceMasks(codes[lo:hi], cfg.Quant.DACBits, masks[rb])
					if baseline {
						for s := 0; s < spi; s++ {
							nz := 0
							if s >= 64 || nonEmpty[rb]&(1<<uint(s)) != 0 {
								nz = bitset.CountWords(masks[rb][s])
							}
							sliceNZ[rb*spi+s] = nz
						}
					}
				}
			}
			for rb := range plans {
				ne := nonEmpty[rb]
				mbase, tw := 0, 0
				if mp != nil {
					mbase = (wi*lay.RowBlocks + rb) * spi
					ne = mp.nonEmpty[wi*lay.RowBlocks+rb]
					tw = bitset.Words64(lay.TileRows(rb))
				}
				for cb := range plans[rb] {
					tp := &plans[rb][cb]
					var batchOUs, batchWL int64
					for s := 0; s < spi; s++ {
						if s < 64 && ne&(1<<uint(s)) == 0 {
							continue
						}
						if baseline {
							var nz int
							if mp != nil {
								nz = int(mp.sliceNZ[mbase+s])
							} else {
								nz = sliceNZ[rb*spi+s]
							}
							if nz == 0 {
								continue
							}
							batchOUs += int64(ouTab[nz]) * int64(tp.plans.Groups)
							batchWL += int64(nz) * int64(tp.plans.Groups)
							if occ != nil {
								observeOccupancy(occ, nz, g.SWL, int64(tp.plans.Groups))
							}
							continue
						}
						m := masks[rb][s]
						if mp != nil {
							m = mp.mask(mbase+s, tw)
						}
						cnt := counts[:tp.plans.Groups]
						bitset.CountAndPlanes(m, tp.plans.Plane, cnt)
						for _, nz := range cnt {
							if nz == 0 {
								continue
							}
							batchOUs += int64(ouTab[nz])
							batchWL += int64(nz)
							if occ != nil {
								observeOccupancy(occ, nz, g.SWL, 1)
							}
						}
					}
					work[idx*nTiles+rb*lay.ColBlocks+cb] = batchWork{batchOUs, batchWL}
				}
			}
		}
	}
}
