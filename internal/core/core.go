// Package core is the Sparse ReRAM Engine simulator — the paper's primary
// contribution rendered as an OU-level event-accurate performance and
// energy model.
//
// For every (layer, crossbar tile, input window, activation bit slice) it
// counts the OU activations each sparsity mode needs:
//
//	Baseline        slices · Σ_groups ceil(mappedRows/S_WL), mappedRows
//	                from the weight-compression plan (all rows for the
//	                no-compression baseline; fewer for Naive/ReCom/ORC);
//	DOF             per slice, only wordlines whose input bit is non-zero
//	                occupy OU slots: ceil(popcount(mask ∩ groupRows)/S_WL);
//	ORC+DOF         the same popcount restricted to the ORC-retained rows
//	                of each column group (fillers included).
//
// Crossbar tiles run in parallel, each with its own 3-stage pipeline
// (internal/pipeline); a layer's latency is the slowest tile's schedule
// and the network's latency is the sum over layers. Energy counts every
// OU activation, driven wordline, ADC conversion, eDRAM batch fetch (one
// per batch for input-order-preserving modes, one per column group when
// row compression reorders inputs — the Fig. 18 eDRAM effect), indexing
// blocks, and leakage.
//
// Large layers use deterministic window sampling (Config.MaxWindows):
// per-tile cycle and energy sums over the sampled windows scale by
// windows/sampled before the cross-tile maximum is taken.
package core

import (
	"fmt"
	"math"

	"sre/internal/bitset"
	"sre/internal/buffer"
	"sre/internal/compress"
	"sre/internal/energy"
	"sre/internal/mapping"
	"sre/internal/noc"
	"sre/internal/pipeline"
	"sre/internal/quant"
	"sre/internal/reram"
	"sre/internal/tensor"
)

// Mode names a sparsity-exploitation configuration from the paper's
// evaluation (§6: baseline, naive, ReCom, ORC, DOF, ORC+DOF).
type Mode struct {
	Scheme compress.Scheme // weight compression
	DOF    bool            // dynamic OU formation (activation sparsity)
}

// The evaluated modes.
var (
	ModeBaseline = Mode{compress.Baseline, false}
	ModeNaive    = Mode{compress.Naive, false}
	ModeReCom    = Mode{compress.ReCom, false}
	ModeORC      = Mode{compress.ORC, false}
	ModeDOF      = Mode{compress.Baseline, true}
	ModeORCDOF   = Mode{compress.ORC, true}
	// ModeOCC is the §4.1 column-compression alternative; it cannot
	// combine with DOF (Fig. 10), which is why the paper's SRE uses ORC.
	ModeOCC = Mode{compress.OCC, false}
)

func (m Mode) String() string {
	switch {
	case m.Scheme == compress.Baseline && !m.DOF:
		return "baseline"
	case m.Scheme == compress.Baseline && m.DOF:
		return "dof"
	case m.Scheme == compress.ORC && m.DOF:
		return "orc+dof"
	case m.DOF:
		return m.Scheme.String() + "+dof"
	default:
		return m.Scheme.String()
	}
}

// Config selects the simulated hardware and mode.
type Config struct {
	Geometry   mapping.Geometry
	Quant      quant.Params
	Mode       Mode
	IndexBits  int // input-index width for row-compressing schemes (0 = unbounded)
	MaxWindows int // per-layer window sampling cap (0 = simulate all)
	Energy     energy.Config
	NoC        noc.Config    // zero value disables interconnect accounting
	Buffer     buffer.Config // zero value assumes the §5.3 one-cycle fetch
}

// DefaultConfig returns the Table 1 configuration in baseline mode.
func DefaultConfig() Config {
	return Config{
		Geometry:   mapping.Default(),
		Quant:      quant.Default(),
		Mode:       ModeBaseline,
		IndexBits:  5,
		MaxWindows: 64,
		Energy:     energy.Default(),
		NoC:        noc.Default(),
	}
}

// ADCBits returns the ADC resolution the OU height demands.
func (c Config) ADCBits() int { return reram.ADCBitsFor(c.Geometry.SWL, c.Quant.CellBits) }

// CycleTime returns the pipeline cycle in seconds.
func (c Config) CycleTime() float64 { return c.Energy.SRECycle(c.ADCBits()) }

// ActivationSource yields the quantized activation vector feeding a
// layer's crossbar rows for each input sliding window.
type ActivationSource interface {
	// Windows returns how many sliding windows the layer processes.
	Windows() int
	// WindowCodes fills dst (length = layer rows) with window w's
	// quantized activation codes.
	WindowCodes(w int, dst []uint32)
}

// TensorSource adapts a real traced activation tensor (CHW) to an
// ActivationSource via im2col, quantizing with a single per-layer scale.
type TensorSource struct {
	X              *tensor.Tensor
	K, Stride, Pad int
	ABits          int
	scale          float64
	wout, hout     int
	buf            []float32
}

// NewTensorSource builds a source for a conv layer's traced input. For
// FC layers pass K=0 (the whole tensor is the single window).
func NewTensorSource(x *tensor.Tensor, k, stride, pad, abits int) *TensorSource {
	ts := &TensorSource{X: x, K: k, Stride: stride, Pad: pad, ABits: abits}
	ts.scale = quant.ScaleFor(float64(x.MaxAbs()), abits)
	if k > 0 {
		ts.hout = tensor.ConvOutputDim(x.Dim(1), k, stride, pad)
		ts.wout = tensor.ConvOutputDim(x.Dim(2), k, stride, pad)
		ts.buf = make([]float32, x.Dim(0)*k*k)
	}
	return ts
}

func (ts *TensorSource) Windows() int {
	if ts.K == 0 {
		return 1
	}
	return ts.hout * ts.wout
}

func (ts *TensorSource) WindowCodes(w int, dst []uint32) {
	var vals []float32
	if ts.K == 0 {
		vals = ts.X.Data()
	} else {
		oy, ox := w/ts.wout, w%ts.wout
		tensor.Im2ColWindow(ts.X, ts.K, ts.Stride, ts.Pad, oy, ox, ts.buf)
		vals = ts.buf
	}
	if len(dst) != len(vals) {
		panic(fmt.Sprintf("core: window codes length %d, layer rows %d", len(vals), len(dst)))
	}
	for i, v := range vals {
		if v < 0 {
			v = -v
		}
		dst[i] = quant.QuantizeUnsigned(float64(v), ts.ABits, ts.scale)
	}
}

// Layer pairs one layer's compression structure with its activations.
// OCC is only needed for the ModeOCC extension (compress.BuildOCC).
type Layer struct {
	Name   string
	Struct *compress.Structure
	OCC    *compress.OCCStructure
	Acts   ActivationSource
	// OutputBits is the layer's output feature-map size; when the config
	// carries an interconnect, handing it to the next layer's PEs costs
	// NoC energy (overlapped with compute, so no latency).
	OutputBits int64
	// ParallelGroup marks consecutive layers that run concurrently on
	// disjoint crossbars (grouped convolutions): their latency is the
	// maximum of the group, their energy the sum.
	ParallelGroup string
}

// LayerResult reports one layer under one config.
type LayerResult struct {
	Name     string
	Windows  int
	Sampled  int
	Cycles   int64 // slowest tile's pipelined schedule
	Stalls   int64
	OUEvents int64 // summed over all tiles (energy-relevant)
	Fetches  int64
	Time     float64 // seconds
	Energy   energy.Breakdown
}

// NetworkResult aggregates layers.
type NetworkResult struct {
	Layers []LayerResult
	Cycles int64
	Time   float64
	Energy energy.Breakdown
}

// Total satisfies common reporting.
func (r NetworkResult) TotalOUEvents() int64 {
	var n int64
	for _, l := range r.Layers {
		n += l.OUEvents
	}
	return n
}

// SimulateNetwork runs every layer and sums latency (layers execute
// sequentially) and energy.
func SimulateNetwork(layers []Layer, cfg Config) NetworkResult {
	var out NetworkResult
	for i := 0; i < len(layers); {
		// A run of layers sharing a non-empty ParallelGroup executes
		// concurrently: latency is the slowest member's; energy sums.
		j := i + 1
		if g := layers[i].ParallelGroup; g != "" {
			for j < len(layers) && layers[j].ParallelGroup == g {
				j++
			}
		}
		var maxCycles int64
		var maxTime float64
		for k := i; k < j; k++ {
			lr := SimulateLayer(layers[k], cfg)
			lr.Energy.Interconnect = cfg.NoC.LayerHandoffEnergy(layers[k].OutputBits)
			out.Layers = append(out.Layers, lr)
			out.Energy.Add(lr.Energy)
			if lr.Cycles > maxCycles {
				maxCycles, maxTime = lr.Cycles, lr.Time
			}
		}
		out.Cycles += maxCycles
		out.Time += maxTime
		i = j
	}
	return out
}

// SimulateLayer runs one layer under cfg.
func SimulateLayer(l Layer, cfg Config) LayerResult {
	if err := cfg.Quant.Validate(); err != nil {
		panic(err)
	}
	st := l.Struct
	lay := st.Layout
	g := cfg.Geometry
	if lay.SWL != g.SWL || lay.SBL != g.SBL || lay.XbarRows != g.XbarRows {
		panic("core: structure was built with a different geometry")
	}
	adcBits := cfg.ADCBits()
	cycleTime := cfg.CycleTime()
	eCfg := cfg.Energy

	windows := l.Acts.Windows()
	sampled := windows
	if cfg.MaxWindows > 0 && sampled > cfg.MaxWindows {
		sampled = cfg.MaxWindows
	}
	scale := float64(windows) / float64(sampled)

	// Precompute per-tile plans.
	type tilePlan struct {
		groupRows   [][]int       // retained rows per group (fillers included)
		groupBits   []*bitset.Set // same as bitsets (for DOF intersection)
		staticOUs   int64         // per-slice OU count without DOF
		staticWL    int64         // per-slice driven wordlines without DOF
		fetchGroups int           // eDRAM fetches per batch
		fetchBits   int           // bits per fetch
	}
	reorders := cfg.Mode.Scheme != compress.Baseline
	if cfg.Mode.Scheme == compress.OCC {
		if cfg.Mode.DOF {
			// Fig. 10: DOF over a column-compressed layout accumulates
			// currents of different outputs on one bitline.
			panic("core: OU-column compression cannot combine with DOF (paper Fig. 10)")
		}
		if l.OCC == nil {
			panic("core: OCC mode needs Layer.OCC (compress.BuildOCC)")
		}
	}
	plans := make([][]tilePlan, lay.RowBlocks)
	for rb := 0; rb < lay.RowBlocks; rb++ {
		plans[rb] = make([]tilePlan, lay.ColBlocks)
		tileRows := lay.TileRows(rb)
		for cb := 0; cb < lay.ColBlocks; cb++ {
			tp := &plans[rb][cb]
			nGroups := lay.GroupsInTile(cb)
			if cfg.Mode.Scheme == compress.OCC {
				// Column compression keeps every row mapped; the OU count
				// per slice comes from the per-band retained columns.
				tp.staticOUs = int64(l.OCC.OUsPerTileSlice(rb, cb))
				tp.staticWL = tp.staticOUs * int64(g.SWL)
				tp.fetchGroups = 1 // input order unchanged
				tp.fetchBits = tileRows * cfg.Quant.ABits
				continue
			}
			tp.groupRows = make([][]int, nGroups)
			tp.groupBits = make([]*bitset.Set, nGroups)
			for gi := 0; gi < nGroups; gi++ {
				plan := st.Plan(cfg.Mode.Scheme, rb, cb, gi, cfg.IndexBits)
				tp.groupRows[gi] = plan.Rows
				bs := bitset.New(tileRows)
				for _, r := range plan.Rows {
					bs.Set(r)
				}
				tp.groupBits[gi] = bs
				tp.staticOUs += int64(ceilDiv(len(plan.Rows), g.SWL))
				tp.staticWL += int64(len(plan.Rows))
			}
			// ORC reorders inputs per column group, so every group issues
			// its own batch fetch (paper §4.1, the Fig. 18 eDRAM effect);
			// input-order-preserving modes fetch the batch once. Each
			// fetch reads the full batch's buffer lines — gather happens
			// at the IR, not inside the eDRAM.
			if cfg.Mode.Scheme == compress.ORC {
				tp.fetchGroups = nGroups
			} else {
				tp.fetchGroups = 1
			}
			tp.fetchBits = tileRows * cfg.Quant.ABits
		}
	}

	spi := cfg.Quant.SlicesPerInput()
	codes := make([]uint32, lay.Rows)
	// Per-slice, per-row-block masks of non-zero input bits.
	masks := make([][]*bitset.Set, spi)
	for s := range masks {
		masks[s] = make([]*bitset.Set, lay.RowBlocks)
		for rb := range masks[s] {
			masks[s][rb] = bitset.New(lay.TileRows(rb))
		}
	}

	// Per-tile accumulators.
	type tileAcc struct {
		tracker  pipeline.Tracker
		ouEvents int64
		drivenWL int64
		fetches  int64
		fetchE   float64
	}
	accs := make([][]tileAcc, lay.RowBlocks)
	for rb := range accs {
		accs[rb] = make([]tileAcc, lay.ColBlocks)
		if cfg.Buffer.Banks > 0 {
			// An explicit buffer model may not sustain the §5.3
			// one-cycle fetch; charge the fetch stage accordingly.
			for cb := range accs[rb] {
				tp := &plans[rb][cb]
				totalBits := tp.fetchBits * tp.fetchGroups
				fc := int64(1 + cfg.Buffer.StallCycles(totalBits, cycleTime))
				accs[rb][cb].tracker.FetchCycles = fc
			}
		}
	}

	dacMask := uint32(1)<<uint(cfg.Quant.DACBits) - 1
	for wi := 0; wi < sampled; wi++ {
		w := wi * windows / sampled
		l.Acts.WindowCodes(w, codes)
		if cfg.Mode.DOF {
			for s := 0; s < spi; s++ {
				for rb := range masks[s] {
					masks[s][rb].Reset()
				}
			}
			for r, code := range codes {
				if code == 0 {
					continue
				}
				rb, tr := r/g.XbarRows, r%g.XbarRows
				for s := 0; s < spi; s++ {
					if code>>uint(s*cfg.Quant.DACBits)&dacMask != 0 {
						masks[s][rb].Set(tr)
					}
				}
			}
		}
		for rb := 0; rb < lay.RowBlocks; rb++ {
			for cb := 0; cb < lay.ColBlocks; cb++ {
				tp := &plans[rb][cb]
				acc := &accs[rb][cb]
				var batchOUs, batchWL int64
				if !cfg.Mode.DOF {
					batchOUs = tp.staticOUs * int64(spi)
					batchWL = tp.staticWL * int64(spi)
				} else {
					for s := 0; s < spi; s++ {
						mask := masks[s][rb]
						if cfg.Mode.Scheme == compress.Baseline {
							nz := mask.Count()
							if nz == 0 {
								continue
							}
							c := int64(ceilDiv(nz, g.SWL))
							batchOUs += c * int64(len(tp.groupBits))
							batchWL += int64(nz) * int64(len(tp.groupBits))
						} else {
							for _, gb := range tp.groupBits {
								nz := mask.CountAnd(gb)
								if nz == 0 {
									continue
								}
								batchOUs += int64(ceilDiv(nz, g.SWL))
								batchWL += int64(nz)
							}
						}
					}
				}
				acc.tracker.Batch(batchOUs)
				acc.ouEvents += batchOUs
				acc.drivenWL += batchWL
				acc.fetches += int64(tp.fetchGroups)
				acc.fetchE += float64(tp.fetchGroups) * eCfg.FetchEnergy(tp.fetchBits)
			}
		}
	}

	// Aggregate: latency is the slowest tile; energy sums over tiles.
	res := LayerResult{Name: l.Name, Windows: windows, Sampled: sampled}
	ouBase := eCfg.OUBaseEnergy(g.SBL, adcBits)
	wlE := eCfg.WordlineEnergy(adcBits)
	var maxCycles, maxStalls int64
	for rb := range accs {
		for cb := range accs[rb] {
			acc := &accs[rb][cb]
			total, stalls := acc.tracker.Finish()
			scaledCycles := int64(math.Round(float64(total) * scale))
			if scaledCycles > maxCycles {
				maxCycles, maxStalls = scaledCycles, int64(math.Round(float64(stalls)*scale))
			}
			res.OUEvents += int64(math.Round(float64(acc.ouEvents) * scale))
			res.Fetches += int64(math.Round(float64(acc.fetches) * scale))
			res.Energy.Compute += scale * (float64(acc.ouEvents)*ouBase + float64(acc.drivenWL)*wlE)
			res.Energy.EDRAM += scale * acc.fetchE
			tileTime := float64(total) * scale * cycleTime
			res.Energy.Index += eCfg.IndexingEnergy(tileTime, reorders, cfg.Mode.DOF)
			res.Energy.Leakage += eCfg.LeakageEnergy(tileTime)
		}
	}
	res.Cycles = maxCycles
	res.Stalls = maxStalls
	res.Time = float64(maxCycles) * cycleTime
	return res
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
