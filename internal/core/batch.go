// Batched multi-activation sweeps: simulate one network under one mode
// for several activation assignments at once, sharing everything that
// does not depend on the activation values — compression plans, code
// and mask planes, scratch arenas, and (for the static modes, which
// never read activation values at all) the entire simulation.
//
// The contract is bit-identity: result j of a batched run equals a
// plain SimulateNetworkContext over the same layers with input j's
// sources substituted. The batched DOF engine reuses the exact
// single-input kernels — kernelPhase1 over the flattened
// (input, window) index space, one pipeline tracker per (input, tile)
// consuming windows in order, and phase3Reduce per input in fixed tile
// order — so every input sees precisely the single-run arithmetic and
// float-accumulation order.
package core

import (
	"context"
	"fmt"

	"sre/internal/parallel"
	"sre/internal/pipeline"
)

// BatchInput is one coalesced activation assignment of a batched
// sweep. Sources[i], when non-nil, replaces layer i's activation
// source; a nil element — or a nil Sources slice — keeps the layer's
// own Acts. Substituted sources bypass the layer's code/mask plane
// caches (those hold the layer's own activations), so they are read
// per window exactly as an uncached single run would read them.
type BatchInput struct {
	Sources []ActivationSource
}

// SimulateNetworkBatchContext runs every layer once per batch input
// and returns one NetworkResult per input, in batch order. Result j is
// bit-identical to SimulateNetworkContext over layers with input j's
// sources substituted. Static (non-DOF) modes never read activation
// values, so the whole batch costs one simulation plus replication;
// DOF modes share plans, planes, and scratch across inputs and pay
// only the per-input phase-1/2 work — both sub-linear in the batch
// size against independent sweeps. cfg.Progress is not invoked on the
// batched path (per-layer completion is not meaningful per input).
func SimulateNetworkBatchContext(ctx context.Context, layers []Layer, cfg Config, batch []BatchInput) ([]NetworkResult, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("core: SimulateNetworkBatchContext needs at least one batch input")
	}
	for j := range batch {
		if batch[j].Sources != nil && len(batch[j].Sources) != len(layers) {
			return nil, fmt.Errorf("core: batch input %d has %d sources, network has %d layers",
				j, len(batch[j].Sources), len(layers))
		}
	}
	n := len(batch)
	pool := cfg.pool()
	results := make([]LayerResult, len(layers)*n) // [layer*n + input]
	layerErrs := make([]error, len(layers))
	err := pool.For(ctx, len(layers), func(start, end int) {
		for i := start; i < end; i++ {
			srcs := make([]ActivationSource, n)
			for j := range batch {
				if batch[j].Sources != nil {
					srcs[j] = batch[j].Sources[i]
				}
			}
			lrs, err := simulateLayerBatch(ctx, layers[i], cfg, pool, srcs)
			if err != nil {
				layerErrs[i] = err
				return
			}
			for j, lr := range lrs {
				lr.Energy.Interconnect = cfg.NoC.LayerHandoffEnergy(layers[i].OutputBits)
				results[i*n+j] = lr
			}
		}
	})
	if err != nil {
		return nil, err
	}
	for i, lerr := range layerErrs {
		if lerr != nil {
			return nil, fmt.Errorf("layer %d (%s): %w", i, layers[i].Name, lerr)
		}
	}
	publishPoolMetrics(cfg.Metrics, pool)
	out := make([]NetworkResult, n)
	perLayer := make([]LayerResult, len(layers))
	for j := 0; j < n; j++ {
		for i := range layers {
			perLayer[i] = results[i*n+j]
		}
		out[j] = reduceNetwork(layers, perLayer)
	}
	return out, nil
}

// simulateLayerBatch runs one layer once per activation source
// (sources[j] nil means the layer's own Acts) and returns the per-input
// results in order. See SimulateNetworkBatchContext for the sharing
// and bit-identity contract.
func simulateLayerBatch(ctx context.Context, l Layer, cfg Config, pool *parallel.Pool, sources []ActivationSource) ([]LayerResult, error) {
	n := len(sources)
	own := make([]bool, n)
	for j := range sources {
		if sources[j] == nil || sources[j] == l.Acts {
			sources[j], own[j] = l.Acts, true
		}
	}
	out := make([]LayerResult, n)

	// Static modes read the activations only through Windows(): one
	// simulation serves every input that agrees on the window count.
	if !cfg.Mode.DOF {
		base, err := simulateLayer(ctx, l, cfg, pool)
		if err != nil {
			return nil, err
		}
		for j := range sources {
			if own[j] || sources[j].Windows() == base.Windows {
				out[j] = base
				continue
			}
			lj := l
			lj.Acts, lj.Codes = sources[j], nil
			if out[j], err = simulateLayer(ctx, lj, cfg, pool); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	// DOF under the scalar golden reference, or with inputs that
	// disagree on the window count (so the flattened index space would
	// not be rectangular), falls back to one independent simulation per
	// input — the semantics the batched path is proven against.
	windows := l.Acts.Windows()
	uniform := !cfg.ScalarReference
	for j := range sources {
		if sources[j].Windows() != windows {
			uniform = false
		}
	}
	if !uniform {
		for j := range sources {
			lj := l
			if !own[j] {
				lj.Acts, lj.Codes = sources[j], nil
			}
			var err error
			if out[j], err = simulateLayer(ctx, lj, cfg, pool); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	// Batched DOF engine: one shared plan grid and one flattened
	// (input, window) phase 1, then per-(input, tile) schedules and a
	// per-input serial reduction.
	if err := cfg.Quant.Validate(); err != nil {
		return nil, err
	}
	lay := l.Struct.Layout
	g := cfg.Geometry
	if lay.SWL != g.SWL || lay.SBL != g.SBL || lay.XbarRows != g.XbarRows {
		return nil, fmt.Errorf(
			"core: layer %q: structure was built with a different geometry (layout %d/%d/%d, config %d/%d/%d)",
			l.Name, lay.XbarRows, lay.SWL, lay.SBL, g.XbarRows, g.SWL, g.SBL)
	}
	if err := validateModeLayer(l, cfg); err != nil {
		return nil, err
	}
	msh := cfg.Metrics.Shard()
	sampled := SampledWindows(windows, cfg.MaxWindows)
	spi := cfg.Quant.SlicesPerInput()
	nTiles := lay.RowBlocks * lay.ColBlocks

	// The layer's cached code and mask planes serve the inputs bound to
	// its own source, exactly as a single run would resolve them.
	var plane []uint32
	var mp *maskPlane
	if l.Codes != nil && !cfg.NoCodeCache {
		plane = l.Codes.plane(l.Acts, lay.Rows, sampled, windows, codeCacheMetrics{
			hits:   msh.Counter("sre_core_code_cache_hits_total"),
			misses: msh.Counter("sre_core_code_cache_misses_total"),
			builds: msh.Counter("sre_core_code_cache_builds_total"),
			bytes:  msh.Counter("sre_core_code_cache_bytes_total"),
		})
		if plane != nil {
			mp = l.Codes.maskPlane(plane, lay, sampled, cfg.Quant.DACBits, spi, maskCacheMetrics{
				hits:   msh.Counter("sre_core_mask_cache_hits_total"),
				misses: msh.Counter("sre_core_mask_cache_misses_total"),
				builds: msh.Counter("sre_core_mask_cache_builds_total"),
				bytes:  msh.Counter("sre_core_mask_cache_bytes_total"),
			})
		}
	}

	ls := getLayerScratch(arenaMetrics{
		gets: msh.Counter(`sre_core_arena_gets_total{arena="layer"}`),
		news: msh.Counter(`sre_core_arena_news_total{arena="layer"}`),
	})
	defer ls.release()
	plans, err := kernelTilePlans(ctx, l, cfg, ls, msh)
	if err != nil {
		return nil, err
	}

	inputs := make([]p1Input, n)
	cached := true   // every input reads a materialized code plane
	clonable := true // every source-reading input can clone per worker
	for j := range sources {
		if own[j] {
			inputs[j] = p1Input{plane: plane, mp: mp, acts: l.Acts}
			if plane == nil {
				cached = false
				if _, ok := l.Acts.(SourceCloner); !ok {
					clonable = false
				}
			}
		} else {
			inputs[j] = p1Input{acts: sources[j]}
			cached = false
			if _, ok := sources[j].(SourceCloner); !ok {
				clonable = false
			}
		}
	}

	// Phase 1 over the flattened (input, window) space. The pool choice
	// mirrors the single-input engine: cached planes rebalance freely
	// under dynamic sharding; clonable sources shard statically; a
	// source that cannot clone is read from a single shard.
	work := ls.workSlots(n * sampled * nTiles)
	phase1 := kernelPhase1(ctx, l, cfg, plans, work, sampled, windows, inputs)
	total := n * sampled
	switch {
	case cached:
		err = pool.ForDynamic(ctx, total, parallel.ChunkFor(total, pool.Workers()), phase1)
	case clonable:
		err = pool.For(ctx, total, phase1)
	default:
		var serial *parallel.Pool
		err = serial.For(ctx, total, phase1)
	}
	if err != nil {
		return nil, err
	}

	// Phase 2: per-(input, tile) pipeline schedules, sharded over
	// tiles. Each (input, tile) tracker consumes its windows in order —
	// the identical schedule a single run of that input would produce.
	accs := ls.tileAccs(n * nTiles)
	cycleTime := cfg.CycleTime()
	err = pool.For(ctx, nTiles, func(start, end int) {
		for t := start; t < end; t++ {
			if ctx.Err() != nil {
				return
			}
			rb, cb := t/lay.ColBlocks, t%lay.ColBlocks
			tp := &plans[rb][cb]
			var fetchCycles int64
			if cfg.Buffer.Banks > 0 {
				totalBits := tp.fetchBits * tp.fetchGroups
				fetchCycles = int64(1 + cfg.Buffer.StallCycles(totalBits, cycleTime))
			}
			fetchE := float64(tp.fetchGroups) * cfg.Energy.FetchEnergy(tp.fetchBits)
			for j := 0; j < n; j++ {
				acc := &accs[j*nTiles+t]
				var tracker pipeline.Tracker
				if cfg.Buffer.Banks > 0 {
					tracker.FetchCycles = fetchCycles
				}
				for wi := 0; wi < sampled; wi++ {
					bw := work[(j*sampled+wi)*nTiles+t]
					tracker.Batch(bw.ous)
					acc.ouEvents += bw.ous
					acc.drivenWL += bw.wl
					acc.fetches += int64(tp.fetchGroups)
					acc.fetchE += fetchE
				}
				acc.total, acc.stalls = tracker.Finish()
			}
		}
	})
	if err != nil {
		return nil, err
	}

	// Phase 3: per-input serial reductions over each input's
	// accumulator stripe, in input order.
	for j := 0; j < n; j++ {
		out[j] = phase3Reduce(l, cfg, plans, accs[j*nTiles:(j+1)*nTiles], windows, sampled, msh)
	}
	return out, nil
}
