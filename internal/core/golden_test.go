package core

import (
	"context"
	"fmt"
	"testing"

	"sre/internal/mapping"
	"sre/internal/metrics"
	"sre/internal/quant"
	"sre/internal/xrand"
)

// cloneableSource is a sliceSource whose workers get private views, so
// the golden test exercises the parallel phase-1 shards too.
type cloneableSource struct{ sliceSource }

func (c *cloneableSource) CloneSource() ActivationSource {
	d := *c
	return &d
}

// goldenLayer builds a multi-tile layer: 200 rows → two row blocks
// (128 + a non-word-aligned 72), 20 logical columns → 160 physical →
// two column blocks, sparse weights and activations, several windows.
func goldenLayer(t *testing.T) Layer {
	t.Helper()
	p := quant.Default()
	g := mapping.Default()
	st, _, _ := smallCase(13, 200, 20, p, g, 0.65, 0)
	r := xrand.New(17)
	src := &cloneableSource{}
	for w := 0; w < 9; w++ {
		v := make([]uint32, 200)
		for i := range v {
			if !r.Bernoulli(0.55) {
				v[i] = uint32(r.Intn(1 << 16))
			}
		}
		src.rows = append(src.rows, v)
	}
	return Layer{Name: "golden", Struct: st, Acts: src}
}

// TestGoldenKernelMatchesScalar is the tentpole's bit-identity proof:
// for every mode and worker count, the word-plane kernel path must
// produce exactly the results of the retained scalar reference — same
// Cycles, Stalls, OUEvents, Fetches, and bit-for-bit the same Energy
// floats.
func TestGoldenKernelMatchesScalar(t *testing.T) {
	layer := goldenLayer(t)
	ctx := context.Background()
	modes := []Mode{ModeBaseline, ModeNaive, ModeReCom, ModeORC, ModeDOF, ModeORCDOF, ModeWSS, ModeORCDOFWSS}
	for _, mode := range modes {
		for _, workers := range []int{1, 4} {
			cfg := DefaultConfig()
			cfg.Mode = mode
			cfg.MaxWindows = 0
			cfg.Workers = workers
			kernel, err := SimulateLayerContext(ctx, layer, cfg)
			if err != nil {
				t.Fatalf("%v workers=%d kernel: %v", mode, workers, err)
			}
			cfg.ScalarReference = true
			scalar, err := SimulateLayerContext(ctx, layer, cfg)
			if err != nil {
				t.Fatalf("%v workers=%d scalar: %v", mode, workers, err)
			}
			if kernel != scalar {
				t.Fatalf("%v workers=%d: kernel %+v != scalar %+v", mode, workers, kernel, scalar)
			}
		}
	}
}

// TestGoldenSampledWindows repeats the identity with window sampling
// engaged (sampled stride indexing is part of the phase-1 contract).
func TestGoldenSampledWindows(t *testing.T) {
	layer := goldenLayer(t)
	ctx := context.Background()
	for _, mode := range []Mode{ModeDOF, ModeORCDOF} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		cfg.MaxWindows = 4
		cfg.Workers = 3
		kernel, err := SimulateLayerContext(ctx, layer, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.ScalarReference = true
		scalar, err := SimulateLayerContext(ctx, layer, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if kernel != scalar {
			t.Fatalf("%v sampled: kernel %+v != scalar %+v", mode, kernel, scalar)
		}
	}
}

// TestGoldenMeteredIdentical pins the observability guarantee: a run
// with a metrics registry attached produces exactly the LayerResult of
// an unmetered run — same Cycles, Stalls, OUEvents, Fetches, and
// bit-for-bit the same Energy floats — for every mode at several worker
// counts. It also reconciles the recorded counters against the result:
// with sampling disabled the OU-activation counter and the occupancy
// histogram's observation count must both equal the layer's OUEvents.
func TestGoldenMeteredIdentical(t *testing.T) {
	layer := goldenLayer(t)
	ctx := context.Background()
	modes := []Mode{ModeBaseline, ModeNaive, ModeReCom, ModeORC, ModeDOF, ModeORCDOF, ModeWSS, ModeORCDOFWSS}
	for _, mode := range modes {
		for _, workers := range []int{1, 4} {
			cfg := DefaultConfig()
			cfg.Mode = mode
			cfg.MaxWindows = 0
			cfg.Workers = workers
			plain, err := SimulateLayerContext(ctx, layer, cfg)
			if err != nil {
				t.Fatalf("%v workers=%d unmetered: %v", mode, workers, err)
			}
			cfg.Metrics = metrics.NewRegistry()
			metered, err := SimulateLayerContext(ctx, layer, cfg)
			if err != nil {
				t.Fatalf("%v workers=%d metered: %v", mode, workers, err)
			}
			if metered != plain {
				t.Fatalf("%v workers=%d: metered %+v != unmetered %+v", mode, workers, metered, plain)
			}
			snap := cfg.Metrics.Snapshot()
			ouName := fmt.Sprintf("sre_core_ou_activations_total{mode=%q}", mode.String())
			if got := snap.Counters[ouName]; got != plain.OUEvents {
				t.Fatalf("%v workers=%d: %s = %d, want %d", mode, workers, ouName, got, plain.OUEvents)
			}
			occ, ok := snap.Histograms[occName(mode)]
			if !ok {
				t.Fatalf("%v workers=%d: occupancy histogram missing", mode, workers)
			}
			if occ.Count != plain.OUEvents {
				t.Fatalf("%v workers=%d: occupancy observations %d, want OUEvents %d",
					mode, workers, occ.Count, plain.OUEvents)
			}
			winName := fmt.Sprintf("sre_core_windows_simulated_total{mode=%q}", mode.String())
			if got := snap.Counters[winName]; got != int64(plain.Sampled) {
				t.Fatalf("%v workers=%d: %s = %d, want %d", mode, workers, winName, got, plain.Sampled)
			}
		}
	}
}

// TestGoldenMeteredScalarOccupancy pins the scalar reference path to the
// same occupancy observations as the kernel path.
func TestGoldenMeteredScalarOccupancy(t *testing.T) {
	layer := goldenLayer(t)
	ctx := context.Background()
	for _, mode := range []Mode{ModeNaive, ModeDOF, ModeORCDOF, ModeORCDOFWSS} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		cfg.MaxWindows = 0
		cfg.Workers = 2
		cfg.Metrics = metrics.NewRegistry()
		if _, err := SimulateLayerContext(ctx, layer, cfg); err != nil {
			t.Fatal(err)
		}
		kernel := cfg.Metrics.Snapshot().Histograms[occName(mode)]
		cfg.ScalarReference = true
		cfg.Metrics = metrics.NewRegistry()
		if _, err := SimulateLayerContext(ctx, layer, cfg); err != nil {
			t.Fatal(err)
		}
		scalar := cfg.Metrics.Snapshot().Histograms[occName(mode)]
		if fmt.Sprint(kernel) != fmt.Sprint(scalar) {
			t.Fatalf("%v: kernel occupancy %+v != scalar %+v", mode, kernel, scalar)
		}
	}
}

// TestGeometryMismatchErrors pins the error-instead-of-panic contract
// for structures built under a different geometry.
func TestGeometryMismatchErrors(t *testing.T) {
	layer := goldenLayer(t)
	cfg := DefaultConfig()
	cfg.Geometry = cfg.Geometry.WithOU(32)
	if _, err := SimulateLayerContext(context.Background(), layer, cfg); err == nil {
		t.Fatal("expected a geometry-mismatch error")
	}
	if _, err := SimulateNetworkContext(context.Background(), []Layer{layer}, cfg); err == nil {
		t.Fatal("expected the network engine to surface the mismatch")
	}
	cfg = DefaultConfig()
	cfg.Quant.DACBits = 3 // 16 % 3 != 0
	if _, err := SimulateLayerContext(context.Background(), layer, cfg); err == nil {
		t.Fatal("expected a quantization validation error")
	}
}
