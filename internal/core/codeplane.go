// Window-code plane cache: the activation-side analogue of
// compress.PlanSet. RunAll's modes (and repeated SimulateLayer
// calls) all consume the same sampled window codes, but before this
// cache each mode re-synthesized them from the ActivationSource —
// per-window RNG and transcendentals for workload.SyntheticActs,
// im2col gathers for TensorSource — once per mode. A Layer that
// carries a CodePlanes materializes each sampled-window count's codes
// once into a contiguous plane and shares it read-only across modes,
// workers, and runs.
package core

import (
	"sync"
	"sync/atomic"

	"sre/internal/metrics"
)

// maxCachedPlaneElems bounds one cached plane's size (uint32 elements;
// 64 MiB). Full-scope runs over ImageNet-size layers with sampling
// disabled would otherwise pin hundreds of megabytes of codes per
// network; past the bound the simulator falls back to the per-call
// source reads, which those runs already paid before the cache.
const maxCachedPlaneElems = 16 << 20

// CodePlanes caches a layer's sampled window codes, keyed by the
// sampled-window count (MaxWindows changes which windows are read, so
// each distinct count is its own plane). Like compress.PlanSet,
// entries are created under a mutex and built once via sync.Once, so
// concurrent modes racing for a key build it exactly once and read it
// lock-free afterwards. Planes are read-only after build.
type CodePlanes struct {
	mu      sync.Mutex
	entries map[int]*codePlaneEntry
	// masks caches the slice-mask planes DOF-mode phase 1 derives from
	// the code planes (see maskplane.go), under the same mutex and the
	// same build-once discipline.
	masks map[maskKey]*maskPlaneEntry
	// resident tracks the bytes of every plane built or seeded so far
	// (code planes and derived slice-mask planes), so a holder can
	// account the cache's memory without racing the lazy builds.
	resident atomic.Int64
}

// ResidentBytes returns the bytes of all planes currently cached —
// window-code planes plus derived slice-mask planes. It grows as runs
// lazily build planes and never shrinks; the serve-layer registry folds
// it into its per-network size estimate.
func (c *CodePlanes) ResidentBytes() int64 {
	if c == nil {
		return 0
	}
	return c.resident.Load()
}

type codePlaneEntry struct {
	once  sync.Once
	plane []uint32 // [sampled][rows], window-major
}

// NewCodePlanes returns an empty cache ready to attach to a Layer.
func NewCodePlanes() *CodePlanes { return &CodePlanes{} }

// codeCacheMetrics carries the cache observability counters (nil-safe,
// like compress.CacheMetrics). Hits/misses split lookups by whether the
// sampled-count entry already existed; builds counts plane
// constructions; bytes accumulates the resident size of built planes.
type codeCacheMetrics struct {
	hits, misses, builds, bytes *metrics.Counter
}

// SampledWindows returns how many of a layer's windows a run with the
// given cap actually simulates — the deterministic sampling rule shared
// by the simulator and snapshot serialization (which persists the code
// plane for exactly this count).
func SampledWindows(windows, maxWindows int) int {
	if maxWindows > 0 && windows > maxWindows {
		return maxWindows
	}
	return windows
}

// Materialize returns the layer's [sampled][rows] code plane, building
// and caching it like a simulation run would (nil when the plane would
// exceed the cache's size bound). Snapshot writing uses it to persist
// the plane a loaded network's first run will want.
func (c *CodePlanes) Materialize(src ActivationSource, rows, sampled, windows int) []uint32 {
	return c.plane(src, rows, sampled, windows, codeCacheMetrics{})
}

// Seed installs a pre-materialized code plane for the given sampled
// count — the snapshot-load path. The plane must be window-major
// [sampled][rows] as Materialize produces; seeding an already-present
// count is a no-op (first installation wins, matching the cache's
// build-once semantics). An out-of-bound plane is ignored, mirroring
// what plane() would have refused to cache.
func (c *CodePlanes) Seed(sampled, rows int, plane []uint32) {
	if sampled <= 0 || rows <= 0 || len(plane) != sampled*rows ||
		int64(rows)*int64(sampled) > maxCachedPlaneElems {
		return
	}
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[int]*codePlaneEntry)
	}
	e := c.entries[sampled]
	if e == nil {
		e = &codePlaneEntry{}
		c.entries[sampled] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.plane = plane
		c.resident.Add(int64(len(plane)) * 4)
	})
}

// plane returns the cached [sampled][rows] code plane, building it on
// first use by reading every sampled window from src once (through a
// worker-private clone, so a shared source's scratch state is not
// touched). Returns nil when the plane would exceed the size bound —
// callers must then read the source per window as before.
func (c *CodePlanes) plane(src ActivationSource, rows, sampled, windows int, m codeCacheMetrics) []uint32 {
	if int64(rows)*int64(sampled) > maxCachedPlaneElems {
		return nil
	}
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[int]*codePlaneEntry)
	}
	e := c.entries[sampled]
	if e == nil {
		e = &codePlaneEntry{}
		c.entries[sampled] = e
		m.misses.Inc()
	} else {
		m.hits.Inc()
	}
	c.mu.Unlock()
	e.once.Do(func() {
		m.builds.Inc()
		p := make([]uint32, sampled*rows)
		acts := cloneSource(src)
		for wi := 0; wi < sampled; wi++ {
			acts.WindowCodes(wi*windows/sampled, p[wi*rows:(wi+1)*rows])
		}
		e.plane = p
		m.bytes.Add(int64(len(p)) * 4)
		c.resident.Add(int64(len(p)) * 4)
	})
	return e.plane
}
