package core

import (
	"testing"

	"sre/internal/compress"
	"sre/internal/crossbar"
	"sre/internal/energy"
	"sre/internal/mapping"
	"sre/internal/quant"
	"sre/internal/tensor"
	"sre/internal/xrand"
)

// sliceSource serves explicit per-window code vectors.
type sliceSource struct{ rows [][]uint32 }

func (s *sliceSource) Windows() int { return len(s.rows) }
func (s *sliceSource) WindowCodes(w int, dst []uint32) {
	copy(dst, s.rows[w])
}

// smallCase builds a random single-tile layer: weight tensor, its
// structure, quantized matrix, and random input codes.
func smallCase(seed uint64, rows, cols int, p quant.Params, g mapping.Geometry, zeroW, zeroA float64) (
	*compress.Structure, *quant.Matrix, []uint32) {
	r := xrand.New(seed)
	w := tensor.New(rows, cols)
	for i := range w.Data() {
		if !r.Bernoulli(zeroW) {
			w.Data()[i] = float32(r.Float64())
		}
	}
	st := compress.Build(compress.NewFloatSource(w, p), p, g)
	m := quant.QuantizeMatrix(w, p)
	inputs := make([]uint32, rows)
	for i := range inputs {
		if !r.Bernoulli(zeroA) {
			inputs[i] = uint32(r.Intn(1 << uint(p.ABits)))
		}
	}
	return st, m, inputs
}

// orcSchedule converts compress plans into a crossbar schedule for a
// single-tile layout.
func orcSchedule(st *compress.Structure, scheme compress.Scheme, indexBits int) crossbar.Schedule {
	lay := st.Layout
	var sched crossbar.Schedule
	for gi := 0; gi < lay.GroupsInTile(0); gi++ {
		lo, hi := lay.GroupCols(0, gi)
		plan := st.Plan(scheme, 0, 0, gi, indexBits)
		sched.Groups = append(sched.Groups, crossbar.ColGroup{ColLo: lo, ColHi: hi, Rows: plan.Rows})
	}
	return sched
}

// TestOUEventsMatchFunctionalModel is the load-bearing cross-check: the
// analytic OU-event counts must equal the functional crossbar model's
// counted cycles for every mode, and the functional results must stay
// correct.
func TestOUEventsMatchFunctionalModel(t *testing.T) {
	p := quant.Params{WBits: 4, ABits: 4, CellBits: 2, DACBits: 1}
	for trial := 0; trial < 8; trial++ {
		rows := 6 + int(trial)*4
		cols := 2 + trial%3
		g := mapping.Geometry{XbarRows: rows, XbarCols: cols * p.CellsPerWeight(), SWL: 3, SBL: 3}
		st, m, inputs := smallCase(uint64(trial+1), rows, cols, p, g, 0.6, 0.4)
		cm := m.Decompose()
		arr := crossbar.New(rows, cm.PhysCols)
		arr.ProgramWindow(cm, 0, 0)
		acts := &sliceSource{rows: [][]uint32{inputs}}

		for _, mode := range []Mode{ModeBaseline, ModeORC, ModeDOF, ModeORCDOF} {
			cfg := Config{Geometry: g, Quant: p, Mode: mode, IndexBits: 0,
				MaxWindows: 0, Energy: energy.Default()}
			lr := SimulateLayer(Layer{Name: "t", Struct: st, Acts: acts}, cfg)

			sched := orcSchedule(st, mode.Scheme, 0)
			fres := crossbar.Execute(arr, inputs, p, g.SWL, sched, mode.DOF)
			if lr.OUEvents != int64(fres.Cycles) {
				t.Fatalf("trial %d mode %s: analytic OU events %d != functional cycles %d",
					trial, mode, lr.OUEvents, fres.Cycles)
			}
			// Functional result must equal the reference product for
			// every result-preserving mode.
			got := crossbar.ComposeLogical(fres.Phys, p)
			want := crossbar.ReferenceProduct(m, inputs)
			for c := range want {
				if got[c] != want[c] {
					t.Fatalf("trial %d mode %s: functional result wrong at col %d", trial, mode, c)
				}
			}
		}
	}
}

func TestModeOrdering(t *testing.T) {
	p := quant.Default()
	g := mapping.Default()
	r := xrand.New(9)
	w := tensor.New(256, 32)
	// SSL-ish: 50% of rows zero, plus element zeros.
	for row := 0; row < 256; row++ {
		zeroRow := r.Bernoulli(0.5)
		for c := 0; c < 32; c++ {
			if !zeroRow && !r.Bernoulli(0.3) {
				w.Set(float32(r.Float64()), row, c)
			}
		}
	}
	st := compress.Build(compress.NewFloatSource(w, p), p, g)
	// Two windows with ~60% activation sparsity.
	mk := func(seed uint64) []uint32 {
		rr := xrand.New(seed)
		v := make([]uint32, 256)
		for i := range v {
			if !rr.Bernoulli(0.6) {
				v[i] = uint32(rr.Intn(1 << 16))
			}
		}
		return v
	}
	acts := &sliceSource{rows: [][]uint32{mk(1), mk(2)}}
	layer := Layer{Name: "t", Struct: st, Acts: acts}

	results := map[string]LayerResult{}
	for _, mode := range []Mode{ModeBaseline, ModeNaive, ModeReCom, ModeORC, ModeDOF, ModeORCDOF} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		cfg.MaxWindows = 0
		results[mode.String()] = SimulateLayer(layer, cfg)
	}
	b := results["baseline"]
	if b.Cycles <= 0 || b.Energy.Total() <= 0 {
		t.Fatal("degenerate baseline")
	}
	// Cycle ordering: every sparsity mode beats baseline; ORC beats the
	// coarser row schemes; ORC+DOF beats both parents.
	if !(results["orc"].Cycles <= results["naive"].Cycles &&
		results["naive"].Cycles <= b.Cycles) {
		t.Fatalf("row-compression ordering violated: %d %d %d",
			results["orc"].Cycles, results["naive"].Cycles, b.Cycles)
	}
	if !(results["recom"].Cycles <= b.Cycles) {
		t.Fatal("ReCom slower than baseline")
	}
	if !(results["dof"].Cycles < b.Cycles) {
		t.Fatal("DOF did not speed up a sparse-activation layer")
	}
	if !(results["orc+dof"].Cycles <= results["dof"].Cycles &&
		results["orc+dof"].Cycles <= results["orc"].Cycles) {
		t.Fatal("ORC+DOF must dominate both parents in cycles")
	}
	// Energy: compute energy must shrink with skipped work.
	if !(results["orc+dof"].Energy.Compute < b.Energy.Compute) {
		t.Fatal("ORC+DOF compute energy not reduced")
	}
	// eDRAM: ORC-based modes pay per-group fetches; DOF keeps one per
	// batch, like baseline.
	if !(results["orc+dof"].Energy.EDRAM > results["dof"].Energy.EDRAM) {
		t.Fatal("ORC+DOF must fetch more eDRAM than DOF")
	}
	if results["dof"].Fetches != b.Fetches {
		t.Fatal("DOF must not change fetch count")
	}
}

func TestDeterminism(t *testing.T) {
	p := quant.Default()
	g := mapping.Default()
	st, _, inputs := smallCase(5, 200, 16, p, g, 0.7, 0.5)
	acts := &sliceSource{rows: [][]uint32{inputs}}
	cfg := DefaultConfig()
	cfg.Mode = ModeORCDOF
	a := SimulateLayer(Layer{Name: "d", Struct: st, Acts: acts}, cfg)
	b := SimulateLayer(Layer{Name: "d", Struct: st, Acts: acts}, cfg)
	if a.Cycles != b.Cycles || a.Energy != b.Energy {
		t.Fatal("simulation is not deterministic")
	}
}

func TestSamplingApproximatesFullRun(t *testing.T) {
	p := quant.Default()
	g := mapping.Default()
	st, _, _ := smallCase(7, 128, 16, p, g, 0.6, 0)
	r := xrand.New(11)
	var wins [][]uint32
	for w := 0; w < 40; w++ {
		v := make([]uint32, 128)
		for i := range v {
			if !r.Bernoulli(0.5) {
				v[i] = uint32(r.Intn(1 << 16))
			}
		}
		wins = append(wins, v)
	}
	acts := &sliceSource{rows: wins}
	layer := Layer{Name: "s", Struct: st, Acts: acts}
	cfg := DefaultConfig()
	cfg.Mode = ModeORCDOF
	cfg.MaxWindows = 0
	full := SimulateLayer(layer, cfg)
	cfg.MaxWindows = 10
	sampledRes := SimulateLayer(layer, cfg)
	if sampledRes.Sampled != 10 || full.Sampled != 40 {
		t.Fatalf("sampling bookkeeping wrong: %d/%d", sampledRes.Sampled, full.Sampled)
	}
	ratio := float64(sampledRes.Cycles) / float64(full.Cycles)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("sampled estimate off by %vx", ratio)
	}
}

func TestNetworkAggregation(t *testing.T) {
	p := quant.Default()
	g := mapping.Default()
	st1, _, in1 := smallCase(21, 64, 8, p, g, 0.5, 0.4)
	st2, _, in2 := smallCase(22, 96, 8, p, g, 0.5, 0.4)
	layers := []Layer{
		{Name: "l1", Struct: st1, Acts: &sliceSource{rows: [][]uint32{in1}}},
		{Name: "l2", Struct: st2, Acts: &sliceSource{rows: [][]uint32{in2}}},
	}
	cfg := DefaultConfig()
	res := SimulateNetwork(layers, cfg)
	if len(res.Layers) != 2 {
		t.Fatal("layer count")
	}
	if res.Cycles != res.Layers[0].Cycles+res.Layers[1].Cycles {
		t.Fatal("network cycles must sum layer cycles")
	}
	if res.Energy.Total() <= 0 || res.Time <= 0 {
		t.Fatal("degenerate network result")
	}
}

func TestCycleTimeTracksOUSize(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ADCBits() != 6 {
		t.Fatalf("ADC bits = %d, want 6 for 16-row OUs", cfg.ADCBits())
	}
	t16 := cfg.CycleTime()
	cfg.Geometry = cfg.Geometry.WithOU(128)
	if cfg.ADCBits() != 9 {
		t.Fatalf("ADC bits = %d, want 9 for 128-row OUs", cfg.ADCBits())
	}
	if cfg.CycleTime() <= t16 {
		t.Fatal("bigger OUs need slower cycles")
	}
}

// TestTensorSourceQuantization checks the real-activation adapter: zeros
// stay zero and window geometry matches im2col.
func TestTensorSourceQuantization(t *testing.T) {
	x := tensor.New(1, 4, 4)
	x.Set(1.0, 0, 0, 0)
	x.Set(0.5, 0, 1, 1)
	ts := NewTensorSource(x, 2, 1, 0, 8)
	if ts.Windows() != 9 {
		t.Fatalf("windows = %d", ts.Windows())
	}
	dst := make([]uint32, 4)
	ts.WindowCodes(0, dst) // window at (0,0): [x00, x01, x10, x11]
	if dst[0] != 255 {
		t.Fatalf("max activation code = %d, want 255", dst[0])
	}
	if dst[1] != 0 || dst[2] != 0 {
		t.Fatal("zero activations must quantize to zero codes")
	}
	if dst[3] == 0 || dst[3] > 128 {
		t.Fatalf("half-scale activation code = %d", dst[3])
	}
	// FC form: K = 0, single window over the flattened tensor.
	fc := NewTensorSource(x, 0, 0, 0, 8)
	if fc.Windows() != 1 {
		t.Fatal("FC source must expose one window")
	}
	full := make([]uint32, 16)
	fc.WindowCodes(0, full)
	if full[0] != 255 {
		t.Fatal("FC window codes wrong")
	}
}

func TestPipelineOverheadSmall(t *testing.T) {
	// For a dense batch, pipelined cycles ≈ OU events + fill/drain.
	p := quant.Default()
	g := mapping.Default()
	st, _, inputs := smallCase(31, 128, 16, p, g, 0, 0)
	acts := &sliceSource{rows: [][]uint32{inputs}}
	cfg := DefaultConfig()
	cfg.MaxWindows = 0
	lr := SimulateLayer(Layer{Name: "p", Struct: st, Acts: acts}, cfg)
	if lr.Cycles < lr.OUEvents || lr.Cycles > lr.OUEvents+8 {
		t.Fatalf("pipelined cycles %d vs OU events %d", lr.Cycles, lr.OUEvents)
	}
}

// BenchmarkSimulateLayerModes measures the hot path: one 512-row,
// 64-logical-column layer with 16 windows under each mode.
func BenchmarkSimulateLayerModes(b *testing.B) {
	p := quant.Default()
	g := mapping.Default()
	st, _, _ := smallCase(99, 512, 64, p, g, 0.7, 0)
	r := xrand.New(7)
	var wins [][]uint32
	for w := 0; w < 16; w++ {
		v := make([]uint32, 512)
		for i := range v {
			if !r.Bernoulli(0.4) {
				v[i] = uint32(r.Intn(1 << 16))
			}
		}
		wins = append(wins, v)
	}
	layer := Layer{Name: "bench", Struct: st, Acts: &sliceSource{rows: wins}}
	for _, mode := range []Mode{ModeBaseline, ModeORC, ModeDOF, ModeORCDOF} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Mode = mode
			cfg.MaxWindows = 0
			for i := 0; i < b.N; i++ {
				SimulateLayer(layer, cfg)
			}
		})
	}
}
