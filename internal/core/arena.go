// Per-worker scratch arenas: simulateLayer's transient state — the
// per-tile plan grid, phase-1 DOF batch slots, phase-2 tile
// accumulators, and each phase-1 worker's mask/count scratch — is
// recycled through sync.Pools instead of being reallocated per call.
// A six-mode sweep calls simulateLayer 6·layers times and phase 1
// checks scratch out once per window chunk, so steady-state allocation
// drops by an order of magnitude while ownership stays strict: a
// scratch block is held by exactly one goroutine between get and
// release, and everything a later phase reads is either fully
// overwritten (work slots) or explicitly zeroed at checkout (tile
// plans, accumulators).
//
// The pools' New hooks are deliberately left nil so a miss is
// observable: sre_core_arena_gets_total counts checkouts,
// sre_core_arena_news_total counts the misses that had to allocate.
package core

import (
	"sync"

	"sre/internal/bitset"
	"sre/internal/mapping"
	"sre/internal/metrics"
)

// arenaMetrics feeds the arena observability counters. Fields may be
// nil (metrics.Counter methods are nil-safe no-ops).
type arenaMetrics struct {
	gets, news *metrics.Counter
}

// tileAcc is one tile's phase-2 accumulator: the pipeline schedule
// totals and energy-relevant event counts phase 3 reduces serially.
type tileAcc struct {
	total    int64
	stalls   int64
	ouEvents int64
	drivenWL int64
	fetches  int64
	fetchE   float64
}

// layerScratch is one simulateLayer call's allocation block: the plan
// grid, DOF work slots, and tile accumulators, sized (and re-zeroed
// where required) per checkout. The kernel and OCC paths always run on
// a pooled block; the scalar reference path keeps its historical fresh
// allocations.
type layerScratch struct {
	planBack []tilePlan
	planRows [][]tilePlan
	work     []batchWork
	accs     []tileAcc
}

var layerScratchPool sync.Pool

// getLayerScratch checks a scratch block out of the pool, allocating
// one on a miss.
func getLayerScratch(am arenaMetrics) *layerScratch {
	am.gets.Inc()
	if v := layerScratchPool.Get(); v != nil {
		return v.(*layerScratch)
	}
	am.news.Inc()
	return &layerScratch{}
}

func (ls *layerScratch) release() { layerScratchPool.Put(ls) }

// tilePlans returns a zeroed [rowBlocks][colBlocks] plan grid backed by
// one contiguous array. Zeroing matters: a recycled block may hold a
// previous run's plan pointers, and recordStaticOccupancy dispatches on
// which tilePlan fields are non-nil.
func (ls *layerScratch) tilePlans(rowBlocks, colBlocks int) [][]tilePlan {
	n := rowBlocks * colBlocks
	if cap(ls.planBack) < n {
		ls.planBack = make([]tilePlan, n)
	} else {
		ls.planBack = ls.planBack[:n]
		for i := range ls.planBack {
			ls.planBack[i] = tilePlan{}
		}
	}
	if cap(ls.planRows) < rowBlocks {
		ls.planRows = make([][]tilePlan, rowBlocks)
	}
	ls.planRows = ls.planRows[:rowBlocks]
	for rb := 0; rb < rowBlocks; rb++ {
		ls.planRows[rb] = ls.planBack[rb*colBlocks : (rb+1)*colBlocks]
	}
	return ls.planRows
}

// workSlots returns n batch-work slots. They are not cleared: phase 1
// writes every slot for every sampled window before phase 2 reads any,
// and on early cancellation the layer errors out before the read.
func (ls *layerScratch) workSlots(n int) []batchWork {
	if cap(ls.work) < n {
		ls.work = make([]batchWork, n)
	}
	ls.work = ls.work[:n]
	return ls.work
}

// tileAccs returns n zeroed tile accumulators (phase 2 accumulates
// into them, so stale totals would corrupt results).
func (ls *layerScratch) tileAccs(n int) []tileAcc {
	if cap(ls.accs) < n {
		ls.accs = make([]tileAcc, n)
		return ls.accs
	}
	ls.accs = ls.accs[:n]
	for i := range ls.accs {
		ls.accs[i] = tileAcc{}
	}
	return ls.accs
}

// p1Scratch is one phase-1 worker's scratch block: the window code
// buffer, the (row block, slice) mask plane and its per-block headers,
// and the per-group count buffers. The layout stamp (lay, spi)
// identifies the shapes; a recycled block with a matching stamp is
// reused as-is because every buffer is fully overwritten per window
// (BuildSliceMasks rewrites each mask's words, CountAndPlanes rewrites
// the counts). It also memoizes its metrics shard per registry, so the
// dynamic window loop's many chunk checkouts don't register a shard
// each.
type p1Scratch struct {
	lay mapping.Layout
	spi int

	codes    []uint32
	backing  []uint64
	masks    [][][]uint64 // [rb][s] -> word mask into backing
	nonEmpty []uint64
	counts   []int
	sliceNZ  []int
	ouTab    []int32 // ouTab[nz] = ceil(nz/SWL), nz in [0, XbarRows]

	reg *metrics.Registry
	sh  *metrics.Shard
}

var p1ScratchPool sync.Pool

// getP1Scratch checks a phase-1 scratch block out of the pool,
// (re)shaping it when the layout stamp differs from the last use.
func getP1Scratch(lay mapping.Layout, spi int, reg *metrics.Registry) *p1Scratch {
	s, _ := p1ScratchPool.Get().(*p1Scratch)
	isNew := s == nil
	if isNew {
		s = &p1Scratch{}
	}
	sh := s.shard(reg)
	sh.Counter(`sre_core_arena_gets_total{arena="phase1"}`).Inc()
	if isNew {
		sh.Counter(`sre_core_arena_news_total{arena="phase1"}`).Inc()
	}
	if s.lay != lay || s.spi != spi {
		s.shape(lay, spi)
	}
	return s
}

func (s *p1Scratch) release() { p1ScratchPool.Put(s) }

// shard returns the worker-private metrics shard for reg, registering
// one only when the registry changes (nil registry -> nil shard; every
// shard operation is nil-safe).
func (s *p1Scratch) shard(reg *metrics.Registry) *metrics.Shard {
	if reg == nil {
		return nil
	}
	if s.reg != reg {
		s.reg = reg
		s.sh = reg.Shard()
	}
	return s.sh
}

// shape sizes every buffer for the given layout. Mask headers are cut
// from one backing array exactly like the pre-arena per-shard setup.
func (s *p1Scratch) shape(lay mapping.Layout, spi int) {
	s.lay, s.spi = lay, spi
	s.codes = make([]uint32, lay.Rows)
	maxWords := bitset.Words64(lay.XbarRows)
	s.backing = make([]uint64, lay.RowBlocks*spi*maxWords)
	s.masks = make([][][]uint64, lay.RowBlocks)
	for rb := range s.masks {
		s.masks[rb] = make([][]uint64, spi)
		words := bitset.Words64(lay.TileRows(rb))
		for sl := 0; sl < spi; sl++ {
			off := (rb*spi + sl) * maxWords
			s.masks[rb][sl] = s.backing[off : off+words]
		}
	}
	s.nonEmpty = make([]uint64, lay.RowBlocks)
	maxGroups := 0
	for cb := 0; cb < lay.ColBlocks; cb++ {
		if n := lay.GroupsInTile(cb); n > maxGroups {
			maxGroups = n
		}
	}
	s.counts = make([]int, maxGroups)
	s.sliceNZ = make([]int, lay.RowBlocks*spi)
	// Phase 1 computes ceil(nz/S_WL) for every non-zero group count; a
	// lookup table turns the inner loop's hardware division (a ~20%
	// profile cost) into an L1 load. nz never exceeds a tile's rows.
	s.ouTab = make([]int32, lay.XbarRows+1)
	for nz := 1; nz <= lay.XbarRows; nz++ {
		s.ouTab[nz] = int32((nz + lay.SWL - 1) / lay.SWL)
	}
}
