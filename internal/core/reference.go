// Scalar reference implementation of the simulator's plan building and
// Dynamic-OU-Formation inner loop — the exact pre-kernel code path,
// kept so the word-plane kernels (kernelPhase1, compress.PlanSet) can
// be proven bit-identical against it (TestGoldenKernelMatchesScalar)
// and benchmarked against it (BenchmarkSimulateLayerScalar). Selected
// by Config.ScalarReference; never used in production runs.
package core

import (
	"context"

	"sre/internal/bitset"
	"sre/internal/compress"
	"sre/internal/metrics"
	"sre/internal/xmath"
)

// scalarTilePlans rebuilds every tile's retained-row plans and group
// bitsets from Structure.Plan on each call — the allocation-heavy
// behavior the per-structure plan cache replaced.
func scalarTilePlans(ctx context.Context, l Layer, cfg Config) ([][]tilePlan, error) {
	st := l.Struct
	lay := st.Layout
	g := cfg.Geometry
	plans := make([][]tilePlan, lay.RowBlocks)
	for rb := 0; rb < lay.RowBlocks; rb++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		plans[rb] = make([]tilePlan, lay.ColBlocks)
		tileRows := lay.TileRows(rb)
		for cb := 0; cb < lay.ColBlocks; cb++ {
			tp := &plans[rb][cb]
			nGroups := lay.GroupsInTile(cb)
			tp.groupBits = make([]*bitset.Set, nGroups)
			nonEmpty := 0
			for gi := 0; gi < nGroups; gi++ {
				plan := st.Plan(cfg.Mode.Scheme, rb, cb, gi, cfg.IndexBits)
				bs := bitset.New(tileRows)
				for _, r := range plan.Rows {
					bs.Set(r)
				}
				tp.groupBits[gi] = bs
				tp.staticOUs += int64(xmath.CeilDiv(len(plan.Rows), g.SWL))
				tp.staticWL += int64(len(plan.Rows))
				if len(plan.Rows) > 0 {
					nonEmpty++
				}
			}
			tp.fetchGroups = cfg.Mode.Scheme.FetchGroups(nGroups, nonEmpty)
			tp.fetchBits = tileRows * cfg.Quant.ABits
		}
	}
	return plans, nil
}

// scalarPhase1 returns the pre-kernel phase-1 shard body: per-bit Set
// calls to build each slice mask and one CountAnd per (slice, group)
// over per-group *bitset.Set row masks.
func scalarPhase1(ctx context.Context, l Layer, cfg Config, plans [][]tilePlan,
	work []batchWork, sampled, windows int) func(start, end int) {
	lay := l.Struct.Layout
	g := cfg.Geometry
	spi := cfg.Quant.SlicesPerInput()
	nTiles := lay.RowBlocks * lay.ColBlocks
	dacMask := uint32(1)<<uint(cfg.Quant.DACBits) - 1
	return func(start, end int) {
		acts := cloneSource(l.Acts)
		codes := make([]uint32, lay.Rows)
		// Same shard-private occupancy recording as kernelPhase1, so the
		// metered scalar path observes identical occupancy.
		var occ *metrics.Histogram
		if cfg.Metrics != nil {
			occ = cfg.Metrics.Shard().Histogram(occName(cfg.Mode), occupancyBounds)
		}
		// Per-slice, per-row-block masks of non-zero input bits.
		masks := make([][]*bitset.Set, spi)
		for s := range masks {
			masks[s] = make([]*bitset.Set, lay.RowBlocks)
			for rb := range masks[s] {
				masks[s][rb] = bitset.New(lay.TileRows(rb))
			}
		}
		for wi := start; wi < end; wi++ {
			if ctx.Err() != nil {
				return
			}
			acts.WindowCodes(wi*windows/sampled, codes)
			for s := 0; s < spi; s++ {
				for rb := range masks[s] {
					masks[s][rb].Reset()
				}
			}
			for r, code := range codes {
				if code == 0 {
					continue
				}
				rb, tr := r/g.XbarRows, r%g.XbarRows
				for s := 0; s < spi; s++ {
					if code>>uint(s*cfg.Quant.DACBits)&dacMask != 0 {
						masks[s][rb].Set(tr)
					}
				}
			}
			for rb := 0; rb < lay.RowBlocks; rb++ {
				for cb := 0; cb < lay.ColBlocks; cb++ {
					tp := &plans[rb][cb]
					var batchOUs, batchWL int64
					for s := 0; s < spi; s++ {
						mask := masks[s][rb]
						if cfg.Mode.Scheme == compress.Baseline {
							nz := mask.Count()
							if nz == 0 {
								continue
							}
							c := int64(xmath.CeilDiv(nz, g.SWL))
							batchOUs += c * int64(len(tp.groupBits))
							batchWL += int64(nz) * int64(len(tp.groupBits))
							if occ != nil {
								observeOccupancy(occ, nz, g.SWL, int64(len(tp.groupBits)))
							}
						} else {
							for _, gb := range tp.groupBits {
								nz := mask.CountAnd(gb)
								if nz == 0 {
									continue
								}
								batchOUs += int64(xmath.CeilDiv(nz, g.SWL))
								batchWL += int64(nz)
								if occ != nil {
									observeOccupancy(occ, nz, g.SWL, 1)
								}
							}
						}
					}
					work[wi*nTiles+rb*lay.ColBlocks+cb] = batchWork{batchOUs, batchWL}
				}
			}
		}
	}
}
