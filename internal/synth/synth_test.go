package synth

import (
	"math"
	"testing"
)

// TestPaperIndexDecoderInventory pins the generator to the exact §7.2
// component list.
func TestPaperIndexDecoderInventory(t *testing.T) {
	n := PaperIndexDecoder()
	want := map[[2]int]int{ // {kind, bits} → count
		{int(Adder), 5}:  7,
		{int(Adder), 6}:  6,
		{int(Adder), 7}:  4,
		{int(Adder), 13}: 8,
		{int(Latch), 6}:  8,
		{int(Latch), 7}:  8,
		{int(Latch), 8}:  8,
		{int(Latch), 13}: 1,
	}
	got := map[[2]int]int{}
	for _, c := range n {
		got[[2]int{int(c.Kind), c.Bits}] += c.Count
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("component %v: got %d, want %d (full netlist %+v)", k, got[k], v, n)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("extra components: %+v", got)
	}
}

func TestPaperWLVGInventory(t *testing.T) {
	n := PaperWLVG()
	want := map[[2]int]int{
		{int(Adder), 1}:      4,
		{int(Adder), 2}:      4,
		{int(Adder), 3}:      4,
		{int(Adder), 8}:      8,
		{int(Comparator), 4}: 32,
	}
	got := map[[2]int]int{}
	for _, c := range n {
		got[[2]int{int(c.Kind), c.Bits}] += c.Count
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("component %v: got %d, want %d", k, got[k], v)
		}
	}
}

// TestCalibration: the fitted cost model must land on the paper's
// synthesized numbers: ~1.24 mW / ~0.86 mW and ~0.001 mm² each.
func TestCalibration(t *testing.T) {
	dec, wlvg := PaperIndexDecoder(), PaperWLVG()
	if p := dec.Power(); math.Abs(p-1.24) > 0.05 {
		t.Fatalf("decoder power = %v mW, want ≈1.24", p)
	}
	if p := wlvg.Power(); math.Abs(p-0.86) > 0.05 {
		t.Fatalf("WLVG power = %v mW, want ≈0.86", p)
	}
	for _, n := range []Netlist{dec, wlvg} {
		if a := n.Area(); a < 0.0005 || a > 0.002 {
			t.Fatalf("area = %v mm², want ≈0.001", a)
		}
	}
}

func TestCostScalesWithWidth(t *testing.T) {
	p8 := IndexDecoder(8, 5, 13).Power()
	p16 := IndexDecoder(16, 5, 13).Power()
	p32 := IndexDecoder(32, 5, 13).Power()
	if !(p8 < p16 && p16 < p32) {
		t.Fatal("power must grow with width")
	}
	// Hillis–Steele grows as O(w·log w): 4× the width should cost well
	// under 8× the power.
	if p32 > 8*p8 {
		t.Fatalf("super-linear blowup: p8=%v p32=%v", p8, p32)
	}
}

func TestBitsByKind(t *testing.T) {
	n := Netlist{{Adder, 4, 2}, {Latch, 3, 3}, {Comparator, 2, 5}}
	if n.Bits(Adder) != 8 || n.Bits(Latch) != 9 || n.Bits(Comparator) != 10 {
		t.Fatal("Bits accounting wrong")
	}
}

func TestBadParamsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { IndexDecoder(0, 5, 13) },
		func() { WLVG(1, 8, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestKindString(t *testing.T) {
	if Adder.String() != "adder" || Latch.String() != "latch" || Comparator.String() != "comparator" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind must still print")
	}
}

func TestAreaPositiveAndOrdered(t *testing.T) {
	small := IndexDecoder(2, 3, 8)
	big := IndexDecoder(16, 3, 8)
	if small.Area() <= 0 || big.Area() <= small.Area() {
		t.Fatal("area must grow with width")
	}
}
