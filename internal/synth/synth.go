// Package synth estimates area and power of SRE's two added digital
// blocks — the Index Decoder and the Wordline Vector Generator — from
// structural netlists, standing in for the paper's Verilog + Synopsys DC
// flow (§7.2).
//
// The paper publishes the exact component inventories of both blocks at
// width 8 (e.g. "seven 5-bit adders, six 6-bit adders, four 7-bit adders,
// eight 13-bit adders, …"), and their synthesized cost (each ≈ 0.001 mm²;
// 1.24 mW and 0.86 mW). We rebuild those inventories — the decoder's
// small adders are exactly the w−2^(k−1) adders of each Hillis–Steele
// stage — and fit a per-bit linear cost model to the published numbers,
// so the *scaling* conclusions (cost grows ~linearly with width, is
// independent of OU size) carry over even though absolute standard-cell
// constants are process-specific.
package synth

import "fmt"

// Kind is a digital component class.
type Kind int

const (
	Adder Kind = iota
	Latch
	Comparator
)

func (k Kind) String() string {
	switch k {
	case Adder:
		return "adder"
	case Latch:
		return "latch"
	case Comparator:
		return "comparator"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Component is a counted, width-parameterized element of a netlist.
type Component struct {
	Kind  Kind
	Bits  int
	Count int
}

// Netlist is a bag of components.
type Netlist []Component

// Bits returns the total component bits of a kind.
func (n Netlist) Bits(k Kind) int {
	total := 0
	for _, c := range n {
		if c.Kind == k {
			total += c.Bits * c.Count
		}
	}
	return total
}

// Cost model: per-bit power (mW) and area (mm²), fitted to the paper's
// synthesized results at 32 nm (see package comment). Latches are taken
// at half an adder bit's cost; the comparator constant then follows from
// the WLVG total.
const (
	adderPowerPerBit      = 4.22e-3 // mW
	latchPowerPerBit      = adderPowerPerBit / 2
	comparatorPowerPerBit = 3.82e-3

	adderAreaPerBit      = 3.4e-6 // mm²
	latchAreaPerBit      = adderAreaPerBit / 2
	comparatorAreaPerBit = 3.0e-6
)

// Power returns the netlist's estimated power in mW.
func (n Netlist) Power() float64 {
	return adderPowerPerBit*float64(n.Bits(Adder)) +
		latchPowerPerBit*float64(n.Bits(Latch)) +
		comparatorPowerPerBit*float64(n.Bits(Comparator))
}

// Area returns the netlist's estimated area in mm².
func (n Netlist) Area() float64 {
	return adderAreaPerBit*float64(n.Bits(Adder)) +
		latchAreaPerBit*float64(n.Bits(Latch)) +
		comparatorAreaPerBit*float64(n.Bits(Comparator))
}

// IndexDecoder builds the decoder netlist for a given parallel width and
// index code bits, with position accumulators wide enough for posBits
// absolute positions. Per Hillis–Steele stage k (1-based), the block
// needs width−2^(k−1) adders of codeBits+k−1 bits and width pipeline
// latches of codeBits+k bits; width posBits-bit adders add the running
// base, latched once.
func IndexDecoder(width, codeBits, posBits int) Netlist {
	if width < 1 || codeBits < 1 || posBits < 1 {
		panic("synth: bad decoder parameters")
	}
	var n Netlist
	for k, step := 1, 1; step < width; k, step = k+1, step*2 {
		n = append(n,
			Component{Adder, codeBits + k - 1, width - step},
			Component{Latch, codeBits + k, width},
		)
	}
	n = append(n,
		Component{Adder, posBits, width},
		Component{Latch, posBits, 1},
	)
	return n
}

// PaperIndexDecoder returns the exact width-8 inventory of §7.2: seven
// 5-bit adders, six 6-bit adders, four 7-bit adders, eight 13-bit adders,
// eight 6-bit latches, eight 7-bit latches, eight 8-bit latches, and one
// 13-bit latch.
func PaperIndexDecoder() Netlist { return IndexDecoder(8, 5, 13) }

// WLVG builds the Wordline Vector Generator netlist: a width-wide
// parallel prefix sum over the 1-bit mask (stage k uses width/2 adders of
// k bits in the paper's folded organization, ending in width adders of
// sumBits) plus 2·width double-buffered comparator pairs of cmpBits.
func WLVG(width, sumBits, cmpBits int) Netlist {
	if width < 2 {
		panic("synth: WLVG width must be ≥ 2")
	}
	var n Netlist
	for k, step := 1, 1; step < width; k, step = k+1, step*2 {
		n = append(n, Component{Adder, k, width / 2})
	}
	n = append(n,
		Component{Adder, sumBits, width},
		Component{Comparator, cmpBits, 4 * width},
	)
	return n
}

// PaperWLVG returns the exact width-8 inventory of §7.2: four 1-bit, four
// 2-bit and four 3-bit adders, eight 8-bit adders, and thirty-two 4-bit
// comparators.
func PaperWLVG() Netlist { return WLVG(8, 8, 4) }
