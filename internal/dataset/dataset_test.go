package dataset

import (
	"testing"

	"sre/internal/tensor"
)

func small() Config {
	return Config{Name: "t", Channels: 1, Size: 12, Classes: 4,
		Train: 40, Test: 20, Noise: 0.05, MaxShift: 1, Seed: 7}
}

func TestGenerateShapesAndLabels(t *testing.T) {
	train, test := Generate(small())
	if train.Len() != 40 || test.Len() != 20 {
		t.Fatalf("sizes %d/%d", train.Len(), test.Len())
	}
	for i, x := range train.X {
		s := x.Shape()
		if s[0] != 1 || s[1] != 12 || s[2] != 12 {
			t.Fatalf("sample %d shape %v", i, s)
		}
		if train.Y[i] < 0 || train.Y[i] >= 4 {
			t.Fatalf("label %d out of range", train.Y[i])
		}
	}
}

func TestValuesInUnitRange(t *testing.T) {
	train, _ := Generate(small())
	for _, x := range train.X {
		for _, v := range x.Data() {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %v outside [0,1]", v)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Generate(small())
	b, _ := Generate(small())
	for i := range a.X {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels differ across runs")
		}
		for j := range a.X[i].Data() {
			if a.X[i].Data()[j] != b.X[i].Data()[j] {
				t.Fatal("pixels differ across runs")
			}
		}
	}
}

func TestClassesAreBalanced(t *testing.T) {
	train, _ := Generate(small())
	counts := make([]int, 4)
	for _, y := range train.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n != 10 {
			t.Fatalf("class %d has %d samples", c, n)
		}
	}
}

// TestClassesAreSeparable: a trivial nearest-template classifier must beat
// chance by a wide margin, otherwise the Fig. 5 experiment could not show
// accuracy degradation.
func TestClassesAreSeparable(t *testing.T) {
	cfg := small()
	train, test := Generate(cfg)
	// Build per-class mean images from train.
	means := make([]*tensor.Tensor, cfg.Classes)
	counts := make([]int, cfg.Classes)
	for i, x := range train.X {
		c := train.Y[i]
		if means[c] == nil {
			means[c] = tensor.New(x.Shape()...)
		}
		means[c].AddInPlace(x)
		counts[c]++
	}
	for c := range means {
		means[c].Scale(1 / float32(counts[c]))
	}
	correct := 0
	for i, x := range test.X {
		best, bestD := -1, float32(0)
		for c := range means {
			var d float32
			for j := range x.Data() {
				diff := x.Data()[j] - means[c].Data()[j]
				d += diff * diff
			}
			if best < 0 || d < bestD {
				best, bestD = c, d
			}
		}
		if best == test.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.8 {
		t.Fatalf("nearest-mean accuracy %.2f; classes not separable", acc)
	}
}

func TestShiftZeroFills(t *testing.T) {
	x := tensor.New(1, 3, 3)
	x.Fill(1)
	y := shift(x, 1, 0)
	if y.At(0, 0, 0) != 0 || y.At(0, 1, 0) != 1 {
		t.Fatal("shift zero-fill wrong")
	}
}

func TestStandardConfigs(t *testing.T) {
	for _, cfg := range []Config{MNISTLike(), CIFARLike()} {
		if cfg.Train <= 0 || cfg.Classes != 10 {
			t.Fatalf("bad standard config %+v", cfg)
		}
	}
}
