// Package dataset generates deterministic synthetic labelled image sets.
//
// The paper evaluates on MNIST, CIFAR-10 and ILSVRC-2012. We cannot ship
// those datasets, and the reproduction does not need them: every measured
// quantity depends on *zero structure*, not on what the images depict
// (DESIGN.md §2). What the Fig. 5 accuracy experiment does need is a
// classification task that (a) a LeNet-scale network can really learn,
// and (b) degrades when ReRAM read errors corrupt partial sums. Each
// class here is a smooth random template; samples are the template plus
// a random spatial shift and pixel noise, which gives exactly that.
package dataset

import (
	"fmt"

	"sre/internal/tensor"
	"sre/internal/xrand"
)

// Set is a labelled dataset.
type Set struct {
	Name    string
	Classes int
	X       []*tensor.Tensor // CHW images in [0, 1]
	Y       []int            // labels in [0, Classes)
}

// Config describes a synthetic dataset.
type Config struct {
	Name     string
	Channels int
	Size     int // spatial H = W
	Classes  int
	Train    int // number of training samples
	Test     int // number of test samples
	Noise    float64
	MaxShift int
	Seed     uint64
}

// MNISTLike returns a config resembling MNIST geometry (1×28×28, 10
// classes).
func MNISTLike() Config {
	return Config{Name: "mnist-like", Channels: 1, Size: 28, Classes: 10,
		Train: 2000, Test: 500, Noise: 0.08, MaxShift: 2, Seed: 1009}
}

// CIFARLike returns a config resembling CIFAR-10 geometry (3×32×32).
func CIFARLike() Config {
	return Config{Name: "cifar-like", Channels: 3, Size: 32, Classes: 10,
		Train: 2000, Test: 500, Noise: 0.10, MaxShift: 2, Seed: 2003}
}

// Generate builds the train and test sets for cfg. Templates are shared
// between the splits; samples differ by shift and noise, so a classifier
// must generalize rather than memorize.
func Generate(cfg Config) (train, test *Set) {
	root := xrand.New(cfg.Seed)
	templates := make([]*tensor.Tensor, cfg.Classes)
	for c := range templates {
		templates[c] = makeTemplate(root.Split(fmt.Sprintf("template-%d", c)), cfg)
	}
	train = sample(cfg, templates, root.Split("train"), cfg.Train, cfg.Name+"/train")
	test = sample(cfg, templates, root.Split("test"), cfg.Test, cfg.Name+"/test")
	return train, test
}

// makeTemplate builds one class's smooth random pattern: a few random
// Gaussian bumps per channel, normalized to [0, 1].
func makeTemplate(r *xrand.RNG, cfg Config) *tensor.Tensor {
	t := tensor.New(cfg.Channels, cfg.Size, cfg.Size)
	for ch := 0; ch < cfg.Channels; ch++ {
		nBumps := 3 + r.Intn(3)
		type bump struct{ cy, cx, s, a float64 }
		bumps := make([]bump, nBumps)
		for i := range bumps {
			bumps[i] = bump{
				cy: r.Float64() * float64(cfg.Size),
				cx: r.Float64() * float64(cfg.Size),
				s:  2 + r.Float64()*float64(cfg.Size)/4,
				a:  0.5 + r.Float64(),
			}
		}
		var maxV float64
		vals := make([]float64, cfg.Size*cfg.Size)
		for y := 0; y < cfg.Size; y++ {
			for x := 0; x < cfg.Size; x++ {
				v := 0.0
				for _, b := range bumps {
					dy, dx := float64(y)-b.cy, float64(x)-b.cx
					v += b.a * gauss((dy*dy+dx*dx)/(2*b.s*b.s))
				}
				vals[y*cfg.Size+x] = v
				if v > maxV {
					maxV = v
				}
			}
		}
		if maxV == 0 {
			maxV = 1
		}
		for i, v := range vals {
			t.Data()[ch*cfg.Size*cfg.Size+i] = float32(v / maxV)
		}
	}
	return t
}

// gauss approximates exp(-x) cheaply and monotonically for x >= 0.
func gauss(x float64) float64 { return 1 / (1 + x + 0.5*x*x) }

func sample(cfg Config, templates []*tensor.Tensor, r *xrand.RNG, n int, name string) *Set {
	s := &Set{Name: name, Classes: cfg.Classes}
	for i := 0; i < n; i++ {
		c := i % cfg.Classes // balanced classes
		dy := r.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
		dx := r.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
		img := shift(templates[c], dy, dx)
		d := img.Data()
		for j := range d {
			v := float64(d[j]) + r.NormFloat64()*cfg.Noise
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			d[j] = float32(v)
		}
		s.X = append(s.X, img)
		s.Y = append(s.Y, c)
	}
	return s
}

// shift translates a CHW image by (dy, dx), zero-filling exposed borders.
func shift(t *tensor.Tensor, dy, dx int) *tensor.Tensor {
	c, h, w := t.Dim(0), t.Dim(1), t.Dim(2)
	out := tensor.New(c, h, w)
	for ci := 0; ci < c; ci++ {
		for y := 0; y < h; y++ {
			sy := y - dy
			if sy < 0 || sy >= h {
				continue
			}
			for x := 0; x < w; x++ {
				sx := x - dx
				if sx < 0 || sx >= w {
					continue
				}
				out.Set(t.At(ci, sy, sx), ci, y, x)
			}
		}
	}
	return out
}

// Len returns the number of samples.
func (s *Set) Len() int { return len(s.X) }
