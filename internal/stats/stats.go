// Package stats provides the small statistical helpers the experiment
// runners use to aggregate per-network results (arithmetic and geometric
// means, standard deviation, simple histograms).
package stats

import "math"

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, or 0 for an empty slice. All
// inputs must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean requires positive inputs")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Histogram counts xs into nbins equal-width bins over [lo, hi). Values
// outside the range are clamped into the first/last bin.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		panic("stats: invalid histogram spec")
	}
	h := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		h[b]++
	}
	return h
}

// NormalCDF returns the standard normal cumulative distribution function
// Φ(x). The ReRAM sensing-error model (internal/reram) uses it to compute
// the probability mass of a bitline-current distribution that crosses an
// ADC decision boundary.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
