package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); !almost(got, 4, 1e-12) {
		t.Fatalf("GeoMean = %v, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almost(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("Min/Max wrong")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{-5, 0, 0.5, 0.99, 1.5, 100}, 0, 1, 2)
	// -5 clamps to bin 0; 0, 0.49→bin0... 0.5,0.99→bin1; 1.5,100 clamp to bin1.
	if h[0] != 2 || h[1] != 4 {
		t.Fatalf("Histogram = %v", h)
	}
}

func TestNormalCDFProperties(t *testing.T) {
	if !almost(NormalCDF(0), 0.5, 1e-12) {
		t.Fatal("Φ(0) != 0.5")
	}
	// Symmetry: Φ(x) + Φ(−x) = 1.
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 10)
		return almost(NormalCDF(x)+NormalCDF(-x), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Known quantile: Φ(1.96) ≈ 0.975.
	if !almost(NormalCDF(1.959964), 0.975, 1e-4) {
		t.Fatalf("Φ(1.96) = %v", NormalCDF(1.959964))
	}
}

func TestMeanGeoMeanOrdering(t *testing.T) {
	// AM-GM inequality as a property test.
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
