package index

import (
	"testing"
	"testing/quick"

	"sre/internal/bitset"
	"sre/internal/xrand"
)

// TestFigure12Example reproduces the paper's Fig. 12 worked example:
// non-zero rows {1,3,9} encoded with 2-bit codes require a filler zero
// row at index 7.
func TestFigure12Example(t *testing.T) {
	e, err := Encode([]int{1, 3, 9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := []int{1, 3, 7, 9}
	if len(e.Rows) != len(wantRows) {
		t.Fatalf("rows = %v, want %v", e.Rows, wantRows)
	}
	for i := range wantRows {
		if e.Rows[i] != wantRows[i] {
			t.Fatalf("rows = %v, want %v", e.Rows, wantRows)
		}
	}
	if e.Filler != 1 {
		t.Fatalf("fillers = %d, want 1", e.Filler)
	}
	// Raw deltas 2,2,4,2 are stored minus one: 1,1,3,1.
	wantCodes := []uint32{1, 1, 3, 1}
	for i := range wantCodes {
		if e.Codes[i] != wantCodes[i] {
			t.Fatalf("codes = %v, want %v", e.Codes, wantCodes)
		}
	}
}

func TestFigure12WideCodesNeedNoPadding(t *testing.T) {
	// With enough bits (raw delta ≤ 8 fits in 3 bits), no filler appears.
	e, err := Encode([]int{1, 3, 9}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e.Filler != 0 || len(e.Rows) != 3 {
		t.Fatalf("unexpected padding: %+v", e)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := xrand.New(1)
	f := func(seed uint32, bitsRaw uint8) bool {
		rr := r.Split(string(rune(seed)))
		bits := 1 + int(bitsRaw%6)
		n := 1 + rr.Intn(200)
		k := 1 + rr.Intn(n)
		rows := rr.SampleK(k, n)
		e, err := Encode(rows, bits)
		if err != nil {
			return false
		}
		decoded := Decode(e.Codes, bits)
		if len(decoded) != len(e.Rows) {
			return false
		}
		// Decoded rows (with fillers) must be a superset of the original
		// rows, strictly ascending, and code count must match.
		for i := range decoded {
			if decoded[i] != e.Rows[i] {
				return false
			}
			if i > 0 && decoded[i] <= decoded[i-1] {
				return false
			}
		}
		// Every original row survives.
		j := 0
		for _, want := range rows {
			for j < len(decoded) && decoded[j] != want {
				j++
			}
			if j == len(decoded) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	if _, err := Encode([]int{3, 3}, 4); err == nil {
		t.Fatal("accepted duplicate rows")
	}
	if _, err := Encode([]int{5, 2}, 4); err == nil {
		t.Fatal("accepted descending rows")
	}
	if _, err := Encode([]int{-1}, 4); err == nil {
		t.Fatal("accepted negative row")
	}
	if _, err := Encode([]int{1}, 0); err == nil {
		t.Fatal("accepted zero-width codes")
	}
}

func TestEncodeEmpty(t *testing.T) {
	e, err := Encode(nil, 3)
	if err != nil || len(e.Codes) != 0 || e.StorageBits() != 0 {
		t.Fatalf("empty encode: %+v err %v", e, err)
	}
}

func TestStorageBits(t *testing.T) {
	e, _ := Encode([]int{1, 3, 9}, 2)
	if e.StorageBits() != 4*2 {
		t.Fatalf("storage = %d bits", e.StorageBits())
	}
}

func TestNarrowCodesTradeStorageForFillers(t *testing.T) {
	// The paper's tradeoff: fewer index bits → more fillers (worse
	// compression) but fewer bits per entry.
	rows := []int{0, 30, 60, 90, 120}
	e2, _ := Encode(rows, 2)
	e5, _ := Encode(rows, 5)
	if e2.Filler <= e5.Filler {
		t.Fatalf("narrow codes should pad more: %d vs %d", e2.Filler, e5.Filler)
	}
	if e5.Filler != 0 {
		t.Fatalf("5-bit codes span 32 rows; no filler expected, got %d", e5.Filler)
	}
}

// TestDecoderModelMatchesDecode: the width-limited Hillis–Steele model
// must produce the same indexes as the plain sequential decode.
func TestDecoderModelMatchesDecode(t *testing.T) {
	r := xrand.New(2)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(300)
		codes := make([]uint32, n)
		for i := range codes {
			codes[i] = uint32(r.Intn(32))
		}
		for _, width := range []int{1, 2, 8, 16} {
			got := DecoderModel{Width: width}.Run(codes)
			want := Decode(codes, 5)
			if len(got.Rows) != len(want) {
				t.Fatalf("width %d: length mismatch", width)
			}
			for i := range want {
				if got.Rows[i] != want[i] {
					t.Fatalf("width %d idx %d: %d != %d", width, i, got.Rows[i], want[i])
				}
			}
			if wantPasses := (n + width - 1) / width; got.Passes != wantPasses {
				t.Fatalf("width %d: passes = %d, want %d", width, got.Passes, wantPasses)
			}
		}
	}
}

func TestDecoderStages(t *testing.T) {
	// Width-8 Hillis–Steele needs 3 adder stages (paper's Fig. 14).
	res := DecoderModel{Width: 8}.Run([]uint32{1, 2, 3})
	if res.Stages != 3 {
		t.Fatalf("stages = %d, want 3", res.Stages)
	}
}

// TestWLVGMatchesPaperCondition checks the Fig. 15 semantics: cycle c
// activates masked wordlines whose prefix count falls in the c-th S_WL
// window, and the union over cycles is exactly the mask.
func TestWLVGMatchesPaperCondition(t *testing.T) {
	r := xrand.New(3)
	for trial := 0; trial < 20; trial++ {
		n := 8 + r.Intn(128)
		mask := bitset.New(n)
		for i := 0; i < n; i++ {
			if r.Bernoulli(0.4) {
				mask.Set(i)
			}
		}
		sWL := 1 + r.Intn(8)
		g := WordlineVectorGenerator{SWL: sWL}
		vecs := g.Vectors(mask)
		if len(vecs) != g.Cycles(mask.Count()) {
			t.Fatalf("vector count %d != Cycles %d", len(vecs), g.Cycles(mask.Count()))
		}
		prefix := 0
		union := bitset.New(n)
		for ci, v := range vecs {
			cnt := v.Count()
			if cnt == 0 || cnt > sWL {
				t.Fatalf("cycle %d activates %d wordlines (S_WL=%d)", ci, cnt, sWL)
			}
			if ci < len(vecs)-1 && cnt != sWL {
				t.Fatalf("non-final cycle %d underfilled: %d < %d", ci, cnt, sWL)
			}
			for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) {
				if !mask.Test(i) {
					t.Fatalf("cycle %d activated an unmasked wordline %d", ci, i)
				}
				prefix++
				// Paper condition: 1 + ci·S_WL ≤ prefix < 1 + (ci+1)·S_WL.
				if prefix < 1+ci*sWL || prefix >= 1+(ci+1)*sWL {
					t.Fatalf("wordline %d in wrong cycle %d (prefix %d)", i, ci, prefix)
				}
				union.Set(i)
			}
		}
		if union.Count() != mask.Count() {
			t.Fatal("cycles do not cover the mask exactly")
		}
	}
}

func TestWLVGEmptyMask(t *testing.T) {
	g := WordlineVectorGenerator{SWL: 4}
	if len(g.Vectors(bitset.New(16))) != 0 {
		t.Fatal("empty mask should need zero cycles")
	}
	if g.Cycles(0) != 0 {
		t.Fatal("Cycles(0) != 0")
	}
}

func TestWLVGCycleCeiling(t *testing.T) {
	g := WordlineVectorGenerator{SWL: 16}
	if g.Cycles(1) != 1 || g.Cycles(16) != 1 || g.Cycles(17) != 2 {
		t.Fatal("ceil division wrong")
	}
}

// TestAppendEncodedRowsMatchesEncode cross-checks the allocation-free
// append form against Encode on random ascending row lists: same
// decoded rows (fillers included), same filler count, and a stored-code
// count equal to the appended row count.
func TestAppendEncodedRowsMatchesEncode(t *testing.T) {
	r := xrand.New(41)
	for trial := 0; trial < 200; trial++ {
		bits := 1 + r.Intn(8)
		var rows []int
		next := 0
		for next < 256 {
			if r.Bernoulli(0.35) {
				rows = append(rows, next)
			}
			next += 1 + r.Intn(40)
		}
		enc, err := Encode(rows, bits)
		if err != nil {
			t.Fatal(err)
		}
		prefix := []int{-7, -7} // pre-existing content must survive the append
		got, fillers, err := AppendEncodedRows(prefix, rows, bits)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != -7 || got[1] != -7 {
			t.Fatal("AppendEncodedRows clobbered the destination prefix")
		}
		body := got[2:]
		if len(body) != len(enc.Rows) || fillers != enc.Filler {
			t.Fatalf("bits=%d rows=%v: got %d rows / %d fillers, want %d / %d",
				bits, rows, len(body), fillers, len(enc.Rows), enc.Filler)
		}
		for i := range body {
			if body[i] != enc.Rows[i] {
				t.Fatalf("bits=%d: row %d = %d, want %d", bits, i, body[i], enc.Rows[i])
			}
		}
		if len(enc.Codes) != len(enc.Rows) {
			t.Fatalf("encode invariant broken: %d codes for %d rows", len(enc.Codes), len(enc.Rows))
		}
		if want := int64(len(body)) * int64(bits); enc.StorageBits() != want {
			t.Fatalf("storage %d, want rows*bits = %d", enc.StorageBits(), want)
		}
	}
}

func TestAppendEncodedRowsRejectsBadInput(t *testing.T) {
	if _, _, err := AppendEncodedRows(nil, []int{1, 2}, 0); err == nil {
		t.Fatal("expected width error")
	}
	if _, _, err := AppendEncodedRows(nil, []int{3, 3}, 4); err == nil {
		t.Fatal("expected ascending error")
	}
}
