// Package index implements SRE's input-indexing machinery (paper §5.1,
// §5.2, Figs. 12–15): delta encoding of the non-zero row indexes each
// column-wise OU group must fetch, zero-padding that bounds the encoded
// width, the parallel-prefix-sum Index Decoder that recovers absolute
// indexes at run time, and the Wordline Vector Generator that gathers
// non-zero inputs into virtual OUs for Dynamic OU Formation.
//
// Encoding convention: with B index bits, a stored code d ∈ [0, 2^B−1]
// means "next index = previous index + d + 1" (the +1 exists because two
// retained rows are always distinct). The first code is relative to −1.
// When a gap exceeds 2^B a filler zero row is inserted at prev + 2^B and
// costs one OU-row of execution like any retained row. This convention
// reproduces the paper's Fig. 12 example exactly: rows {1,3,9} with 2-bit
// codes force a filler at row 7.
package index

import (
	"fmt"

	"sre/internal/bitset"
)

// Encoding is the delta-encoded index stream for one column-wise OU
// group.
type Encoding struct {
	Bits   int      // code width in bits
	Codes  []uint32 // stored codes, each < 2^Bits
	Rows   []int    // decoded row list including filler rows, ascending
	Filler int      // how many of Rows are zero-padding fillers
}

// StorageBits returns the index storage this encoding occupies.
func (e *Encoding) StorageBits() int64 { return int64(len(e.Codes)) * int64(e.Bits) }

// Encode delta-encodes the ascending row indexes rows using B-bit codes,
// inserting filler rows where a gap exceeds the representable span.
func Encode(rows []int, bits int) (*Encoding, error) {
	if bits <= 0 || bits > 30 {
		return nil, fmt.Errorf("index: code width %d out of range", bits)
	}
	span := 1 << uint(bits) // maximum representable raw delta
	e := &Encoding{Bits: bits}
	prev := -1
	for _, idx := range rows {
		if idx <= prev {
			return nil, fmt.Errorf("index: rows must be strictly ascending and non-negative (got %d after %d)", idx, prev)
		}
		for idx-prev > span {
			// Filler zero row at the farthest representable position.
			filler := prev + span
			e.Codes = append(e.Codes, uint32(span-1))
			e.Rows = append(e.Rows, filler)
			e.Filler++
			prev = filler
		}
		e.Codes = append(e.Codes, uint32(idx-prev-1))
		e.Rows = append(e.Rows, idx)
		prev = idx
	}
	return e, nil
}

// AppendEncodedRows appends to dst the decoded row list — fillers
// included — that Encode(rows, bits) would produce, returning the grown
// slice and the filler count. It is the allocation-free core of Encode
// for callers that batch many groups' row lists into one backing array
// (compress.Structure plan building): every filler and every retained
// row stores exactly one code, so the encoding's storage is
// (appended row count) · bits without materializing the codes.
func AppendEncodedRows(dst []int, rows []int, bits int) ([]int, int, error) {
	if bits <= 0 || bits > 30 {
		return dst, 0, fmt.Errorf("index: code width %d out of range", bits)
	}
	span := 1 << uint(bits)
	fillers := 0
	prev := -1
	for _, idx := range rows {
		if idx <= prev {
			return dst, 0, fmt.Errorf("index: rows must be strictly ascending and non-negative (got %d after %d)", idx, prev)
		}
		for idx-prev > span {
			prev += span
			dst = append(dst, prev)
			fillers++
		}
		dst = append(dst, idx)
		prev = idx
	}
	return dst, fillers, nil
}

// Decode recovers the absolute row list from the stored codes by prefix
// summation — the operation the hardware Index Decoder performs. It is
// the exact inverse of Encode (fillers included).
func Decode(codes []uint32, bits int) []int {
	rows := make([]int, len(codes))
	prev := -1
	for i, c := range codes {
		prev += int(c) + 1
		rows[i] = prev
	}
	_ = bits
	return rows
}

// DecoderModel models the width-limited Hillis–Steele Index Decoder
// (Figs. 13–14): codes are consumed `Width` at a time; each pass computes
// the parallel prefix sum of its block in ceil(log2(Width)) adder stages
// and adds the running base.
type DecoderModel struct {
	Width int
}

// DecodeResult reports what the hardware decode run would do.
type DecodeResult struct {
	Rows   []int // decoded absolute indexes
	Passes int   // blocks processed (one per cycle at full throughput)
	Stages int   // adder stages per pass (log2 of width)
}

// Run decodes the stream and reports pass/stage counts.
func (d DecoderModel) Run(codes []uint32) DecodeResult {
	if d.Width <= 0 {
		panic("index: decoder width must be positive")
	}
	stages := 0
	for 1<<uint(stages) < d.Width {
		stages++
	}
	res := DecodeResult{Stages: stages}
	base := -1
	for lo := 0; lo < len(codes); lo += d.Width {
		hi := lo + d.Width
		if hi > len(codes) {
			hi = len(codes)
		}
		block := codes[lo:hi]
		// Hillis–Steele inclusive prefix sum over (code+1) values.
		sums := make([]int, len(block))
		for i, c := range block {
			sums[i] = int(c) + 1
		}
		for step := 1; step < len(block); step <<= 1 {
			next := make([]int, len(block))
			copy(next, sums)
			for i := step; i < len(block); i++ {
				next[i] = sums[i] + sums[i-step]
			}
			sums = next
		}
		for _, s := range sums {
			res.Rows = append(res.Rows, base+s)
		}
		if len(sums) > 0 {
			base += sums[len(sums)-1]
		}
		res.Passes++
	}
	return res
}

// CanSustain reports whether the decoder keeps the pipeline fed: it must
// decode `rowsPerBatch` indexes within `cyclesAvailable` pipeline cycles,
// processing Width codes per cycle (paper §5.3: width 8 decodes 128
// indexes in 16 decoder cycles, which fits inside one 30 ns OU cycle of
// the slower ADC stage at the decoder's synthesized clock).
func (d DecoderModel) CanSustain(rowsPerBatch, codesPerCycle int) bool {
	return d.Width >= codesPerCycle && rowsPerBatch > 0
}

// WordlineVectorGenerator models Fig. 15: given the mask of wordlines
// whose current input slice is non-zero, emit one wordline-activation
// vector per cycle, each activating up to S_WL masked wordlines in
// ascending order (the prefix-sum + comparator window of the paper).
type WordlineVectorGenerator struct {
	SWL int
}

// Vectors returns the activation vectors for one batch. The i-th vector
// activates the masked wordlines whose 1-based prefix count lies in
// [1+i·S_WL, 1+(i+1)·S_WL).
func (g WordlineVectorGenerator) Vectors(mask *bitset.Set) []*bitset.Set {
	if g.SWL <= 0 {
		panic("index: S_WL must be positive")
	}
	n := mask.Len()
	total := mask.Count()
	cycles := (total + g.SWL - 1) / g.SWL
	out := make([]*bitset.Set, cycles)
	for i := range out {
		out[i] = bitset.New(n)
	}
	count := 0
	for i := mask.NextSet(0); i >= 0; i = mask.NextSet(i + 1) {
		out[count/g.SWL].Set(i)
		count++
	}
	return out
}

// Cycles returns only the number of activation vectors (OU cycles) the
// generator would emit for a mask with `nonZero` set bits.
func (g WordlineVectorGenerator) Cycles(nonZero int) int {
	if g.SWL <= 0 {
		panic("index: S_WL must be positive")
	}
	return (nonZero + g.SWL - 1) / g.SWL
}
