package index

import "testing"

// FuzzEncodeDecode checks the index codec round-trip on arbitrary gap
// sequences and widths: Encode must either reject the input or produce a
// stream Decode inverts exactly (fillers included), with every original
// row present and bounded storage.
func FuzzEncodeDecode(f *testing.F) {
	f.Add([]byte{1, 3, 9}, uint8(2))
	f.Add([]byte{0, 1, 2, 3}, uint8(1))
	f.Add([]byte{255}, uint8(5))
	f.Add([]byte{}, uint8(3))
	f.Fuzz(func(t *testing.T, gaps []byte, bitsRaw uint8) {
		bits := int(bitsRaw%8) + 1
		if len(gaps) > 512 {
			return
		}
		// Build a strictly ascending row list from the gap bytes.
		rows := make([]int, 0, len(gaps))
		cur := -1
		for _, g := range gaps {
			cur += int(g) + 1
			rows = append(rows, cur)
		}
		e, err := Encode(rows, bits)
		if err != nil {
			t.Fatalf("rejected valid ascending rows: %v", err)
		}
		decoded := Decode(e.Codes, bits)
		if len(decoded) != len(e.Rows) {
			t.Fatal("decode length mismatch")
		}
		for i := range decoded {
			if decoded[i] != e.Rows[i] {
				t.Fatalf("decode mismatch at %d", i)
			}
			if decoded[i] >= (1<<30) || decoded[i] < 0 {
				t.Fatal("decoded index out of range")
			}
			if i > 0 && decoded[i] <= decoded[i-1] {
				t.Fatal("decoded rows not strictly ascending")
			}
		}
		// Every original row survives encoding.
		j := 0
		for _, want := range rows {
			for j < len(decoded) && decoded[j] != want {
				j++
			}
			if j == len(decoded) {
				t.Fatalf("row %d lost in encoding", want)
			}
		}
		// Width-limited decoder agrees.
		got := DecoderModel{Width: 8}.Run(e.Codes)
		for i := range got.Rows {
			if got.Rows[i] != decoded[i] {
				t.Fatal("hardware decoder model diverges")
			}
		}
	})
}
