// Package metrics is the simulator's run-metrics observability layer: a
// zero-dependency registry of counters, gauges, and fixed-bucket
// histograms that the hot simulation loops can feed without perturbing
// the bit-identical Cycles/Energy guarantee.
//
// Layout: the Registry hands out Shards — one per worker shard of a
// parallel loop (Registry.Shard is called at shard setup, never inside
// the hot loop). Each shard owns its cells, so the hot-path operations
// (Counter.Add, Histogram.Observe, Gauge.Set) are single-writer atomic
// stores on shard-private cache lines: no locks, no allocations, no
// cross-worker contention. Cells use atomics only so that a Snapshot
// taken while another run is still writing (e.g. RunAll's per-mode
// snapshots) is race-free; shard-private ownership keeps the atomic
// adds effectively as cheap as plain stores.
//
// Merge: Snapshot folds every shard deterministically — counters and
// histogram buckets sum (integer addition, order-independent), gauges
// take the maximum — so the merged snapshot of a fixed workload does
// not depend on worker count or scheduling, and enabling metrics never
// feeds back into the simulation itself.
//
// Naming: metric names may embed Prometheus-style labels directly,
// e.g. "sre_core_ou_activations_total{mode=\"orc+dof\"}". The JSON
// snapshot uses the full string as the key; the Prometheus writer
// splits base name and label set so histogram bucket labels compose.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Registry collects shards and merges them into Snapshots. The zero
// value is not usable; create one with NewRegistry. A nil *Registry is
// valid everywhere and disables collection.
type Registry struct {
	mu     sync.Mutex
	shards []*Shard
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Shard returns a new worker-private shard registered with r, or nil
// for a nil registry (every Shard operation is nil-safe). Call it at
// shard setup — it takes the registry lock — and keep the result on the
// worker's stack for the hot loop.
func (r *Registry) Shard() *Shard {
	if r == nil {
		return nil
	}
	s := &Shard{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
	r.mu.Lock()
	r.shards = append(r.shards, s)
	r.mu.Unlock()
	return s
}

// Shard is one worker's private slice of the registry. Cell lookup
// (Counter, Gauge, Histogram) is setup-time work guarded by the shard's
// own mutex; the returned cells are the hot-path handles.
type Shard struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Counter returns the shard's counter cell for name, creating it on
// first use. Returns nil (a valid no-op cell) on a nil shard.
func (s *Shard) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.counters[name]
	if c == nil {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the shard's gauge cell for name, creating it on first
// use. Returns nil (a valid no-op cell) on a nil shard.
func (s *Shard) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.gauges[name]
	if g == nil {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the shard's histogram cell for name with the given
// ascending upper bounds (an implicit +Inf bucket is appended), creating
// it on first use. Every shard must use identical bounds for one name.
// Returns nil (a valid no-op cell) on a nil shard.
func (s *Shard) Histogram(name string, bounds []int64) *Histogram {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.hists[name]
	if h == nil {
		h = &Histogram{
			bounds:  append([]int64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
		s.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing shard-private cell. All methods
// are nil-safe no-ops so disabled metrics cost one predictable branch.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Gauge is a high-water-mark cell: Set records the maximum value ever
// seen, which makes the cross-shard merge (max) deterministic. All
// methods are nil-safe no-ops.
type Gauge struct{ v atomic.Int64 }

// Set raises the gauge to v if v exceeds the current value (gauges
// start at zero and record non-negative values).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Histogram is a fixed-bucket shard-private histogram of int64
// observations. All methods are nil-safe no-ops.
type Histogram struct {
	bounds  []int64 // ascending upper bounds; bucket i counts v <= bounds[i]
	buckets []atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
}

// Observe records one observation of v.
func (h *Histogram) Observe(v int64) { h.ObserveN(v, 1) }

// ObserveN records n identical observations of v — the hot loops use it
// to fold e.g. "k full OUs of occupancy S_WL" into one call.
func (h *Histogram) ObserveN(v, n int64) {
	if h == nil || n <= 0 {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(n)
	h.sum.Add(v * n)
	h.count.Add(n)
}

// Snapshot is the deterministic merge of every shard. Maps are keyed by
// the full metric name (labels included); encoding/json sorts map keys,
// so the serialized form is stable.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is one merged histogram. Counts[i] holds the
// observations v <= Bounds[i]; the final element of Counts is the
// overflow (+Inf) bucket.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// Snapshot merges every shard registered so far: counters and histogram
// buckets sum, gauges take the maximum. Safe to call while shards are
// still being written (the result is then a point-in-time view); the
// merge order never affects the result. A nil registry returns nil.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	shards := append([]*Shard(nil), r.shards...)
	r.mu.Unlock()
	out := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, s := range shards {
		s.mu.Lock()
		for name, c := range s.counters {
			out.Counters[name] += c.v.Load()
		}
		for name, g := range s.gauges {
			if v := g.v.Load(); v > out.Gauges[name] || !hasKey(out.Gauges, name) {
				out.Gauges[name] = v
			}
		}
		for name, h := range s.hists {
			hs, ok := out.Histograms[name]
			if !ok {
				hs = HistogramSnapshot{
					Bounds: append([]int64(nil), h.bounds...),
					Counts: make([]int64, len(h.buckets)),
				}
			}
			for i := range h.buckets {
				hs.Counts[i] += h.buckets[i].Load()
			}
			hs.Sum += h.sum.Load()
			hs.Count += h.count.Load()
			out.Histograms[name] = hs
		}
		s.mu.Unlock()
	}
	return out
}

func hasKey(m map[string]int64, k string) bool { _, ok := m[k]; return ok }

// Names returns every metric name in the snapshot, sorted.
func (s *Snapshot) Names() []string {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
