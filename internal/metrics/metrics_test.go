package metrics

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryAndCells(t *testing.T) {
	var r *Registry
	sh := r.Shard()
	if sh != nil {
		t.Fatal("nil registry must hand out nil shards")
	}
	// Every cell operation must be a safe no-op on the nil chain.
	sh.Counter("c").Add(3)
	sh.Counter("c").Inc()
	sh.Gauge("g").Set(7)
	sh.Histogram("h", []int64{1, 2}).Observe(1)
	sh.Histogram("h", []int64{1, 2}).ObserveN(2, 5)
	if snap := r.Snapshot(); snap != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestCounterGaugeHistogramMerge(t *testing.T) {
	r := NewRegistry()
	a, b := r.Shard(), r.Shard()
	a.Counter("ops").Add(5)
	b.Counter("ops").Add(7)
	a.Gauge("width").Set(4)
	b.Gauge("width").Set(2) // lower value must not win
	bounds := []int64{1, 2, 4, 8, 16}
	ha := a.Histogram("occ", bounds)
	hb := b.Histogram("occ", bounds)
	ha.Observe(1)      // bucket le=1
	ha.ObserveN(16, 3) // bucket le=16, three observations
	hb.Observe(5)      // bucket le=8
	hb.Observe(100)    // overflow bucket
	snap := r.Snapshot()
	if got := snap.Counters["ops"]; got != 12 {
		t.Fatalf("ops = %d, want 12", got)
	}
	if got := snap.Gauges["width"]; got != 4 {
		t.Fatalf("width = %d, want 4", got)
	}
	h := snap.Histograms["occ"]
	wantCounts := []int64{1, 0, 0, 1, 3, 1}
	if !reflect.DeepEqual(h.Counts, wantCounts) {
		t.Fatalf("occ counts = %v, want %v", h.Counts, wantCounts)
	}
	if h.Count != 6 || h.Sum != 1+3*16+5+100 {
		t.Fatalf("occ count=%d sum=%d", h.Count, h.Sum)
	}
	if !reflect.DeepEqual(h.Bounds, bounds) {
		t.Fatalf("occ bounds = %v", h.Bounds)
	}
}

// TestMergeDeterministic pins the registry's core contract: the merged
// snapshot of a fixed set of observations is identical no matter how
// the observations were sharded.
func TestMergeDeterministic(t *testing.T) {
	build := func(shards int) *Snapshot {
		r := NewRegistry()
		var wg sync.WaitGroup
		for s := 0; s < shards; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sh := r.Shard()
				c := sh.Counter("n")
				h := sh.Histogram("h", []int64{4, 8})
				g := sh.Gauge("hw")
				for i := s; i < 100; i += shards {
					c.Add(int64(i))
					h.Observe(int64(i % 12))
					g.Set(int64(i))
				}
			}(s)
		}
		wg.Wait()
		return r.Snapshot()
	}
	want := build(1)
	for _, shards := range []int{2, 7, 16} {
		got := build(shards)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: %+v != %+v", shards, got, want)
		}
	}
}

func TestSnapshotJSONStable(t *testing.T) {
	r := NewRegistry()
	sh := r.Shard()
	sh.Counter(`b_total{mode="dof"}`).Add(2)
	sh.Counter(`a_total`).Add(1)
	var buf1, buf2 bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatal("JSON snapshot not byte-stable")
	}
	var round Snapshot
	if err := json.Unmarshal(buf1.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Counters[`b_total{mode="dof"}`] != 2 {
		t.Fatalf("round-trip lost labeled counter: %+v", round)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	sh := r.Shard()
	sh.Counter(`sre_ou_total{mode="dof"}`).Add(9)
	sh.Gauge("sre_pool_width").Set(4)
	h := sh.Histogram(`sre_occ{mode="dof"}`, []int64{8, 16})
	h.Observe(3)
	h.Observe(20)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE sre_ou_total counter",
		`sre_ou_total{mode="dof"} 9`,
		"# TYPE sre_pool_width gauge",
		"sre_pool_width 4",
		"# TYPE sre_occ histogram",
		`sre_occ_bucket{mode="dof",le="8"} 1`,
		`sre_occ_bucket{mode="dof",le="16"} 1`,
		`sre_occ_bucket{mode="dof",le="+Inf"} 2`,
		`sre_occ_sum{mode="dof"} 23`,
		`sre_occ_count{mode="dof"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	sh := r.Shard()
	sh.Counter("c").Inc()
	sh.Gauge("a").Set(1)
	sh.Histogram("b", []int64{1}).Observe(1)
	got := r.Snapshot().Names()
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Shard().Counter("n")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Shard().Histogram("h", []int64{1, 2, 4, 8, 16, 32, 64, 128})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveN(int64(i&15)+1, 2)
	}
}

func BenchmarkDisabledCounterAdd(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
