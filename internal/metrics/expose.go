// Snapshot exposition: JSON (the -metrics file format, a stable
// machine-readable manifest alongside BENCH_*.json) and the Prometheus
// text exposition format (-metrics-format prom), so a run can feed
// either ad-hoc tooling or a scrape pipeline without new dependencies.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteJSON writes the snapshot as indented JSON. encoding/json sorts
// map keys, so the output is byte-stable for a fixed snapshot.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4). Metric names may embed a label set
// (`name{k="v"}`); histogram bucket/sum/count suffixes are spliced onto
// the base name so the labels compose with `le`.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	if s == nil {
		return nil
	}
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	typed := map[string]bool{}
	for _, n := range names {
		base, labels := splitName(n)
		if !typed[base] {
			fmt.Fprintf(&b, "# TYPE %s counter\n", base)
			typed[base] = true
		}
		fmt.Fprintf(&b, "%s%s %d\n", base, labelBlock(labels, ""), s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		base, labels := splitName(n)
		if !typed[base] {
			fmt.Fprintf(&b, "# TYPE %s gauge\n", base)
			typed[base] = true
		}
		fmt.Fprintf(&b, "%s%s %d\n", base, labelBlock(labels, ""), s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		base, labels := splitName(n)
		if !typed[base] {
			fmt.Fprintf(&b, "# TYPE %s histogram\n", base)
			typed[base] = true
		}
		h := s.Histograms[n]
		cum := int64(0)
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", base,
				labelBlock(labels, fmt.Sprintf("le=%q", le)), cum)
		}
		fmt.Fprintf(&b, "%s_sum%s %d\n", base, labelBlock(labels, ""), h.Sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", base, labelBlock(labels, ""), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// splitName separates `base{k="v",...}` into base and the raw label
// body (no braces); names without labels return an empty body.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// labelBlock renders a label body plus an optional extra label as a
// `{...}` block, or nothing when both are empty.
func labelBlock(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	default:
		return "{" + labels + "," + extra + "}"
	}
}
