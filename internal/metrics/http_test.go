package metrics

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerServesPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Shard().Counter("sre_http_test_total").Add(7)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(rec.Body)
	if !strings.Contains(string(body), "sre_http_test_total 7") {
		t.Fatalf("body missing counter:\n%s", body)
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	var r *Registry
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
}
