// HTTP exposition of a live registry: the scrape endpoint sreserved
// mounts at /metrics. Each request takes a fresh snapshot, so a scrape
// that lands mid-run sees the in-flight totals (the shard-per-worker
// cells are atomics precisely so this is race-free).
package metrics

import "net/http"

// Handler returns an http.Handler serving the registry's current
// snapshot in the Prometheus text exposition format (version 0.0.4).
// A nil registry serves empty (but well-formed) responses.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if r == nil {
			return
		}
		// The write only fails when the client goes away mid-scrape;
		// there is no useful recovery and the status line is long gone.
		_ = r.Snapshot().WritePrometheus(w)
	})
}
