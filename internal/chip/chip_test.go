package chip

import (
	"math"
	"testing"
)

func TestChipCapacity(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Arrays() != 16128 {
		t.Fatalf("Table 1 chip holds %d arrays, want 16128", c.Arrays())
	}
	if (Chip{}).Validate() == nil {
		t.Fatal("zero chip accepted")
	}
}

func TestChipsFor(t *testing.T) {
	c := Default()
	if c.ChipsFor(1) != 1 || c.ChipsFor(16128) != 1 || c.ChipsFor(16129) != 2 {
		t.Fatal("chip rounding wrong")
	}
}

func demands() []LayerDemand {
	return []LayerDemand{
		{Name: "stem", Arrays: 2, Latency: 8}, // few arrays, many windows
		{Name: "mid", Arrays: 10, Latency: 2},
		{Name: "tail", Arrays: 40, Latency: 1},
	}
}

func TestBalanceEveryLayerMapped(t *testing.T) {
	p := Balance(demands(), 0) // budget too small even for one copy each
	for i, c := range p.Copies {
		if c != 1 {
			t.Fatalf("layer %d copies %d, want 1", i, c)
		}
	}
}

func TestBalanceFavorsSlowLayers(t *testing.T) {
	ls := demands()
	p := Balance(ls, 100)
	if p.Copies[0] <= p.Copies[2] {
		t.Fatalf("slow cheap layer must replicate most: %v", p.Copies)
	}
	// Budget respected.
	used := 0
	for i, l := range ls {
		used += l.Arrays * p.Copies[i]
	}
	if used > 100 {
		t.Fatalf("plan uses %d arrays over budget", used)
	}
}

func TestBalanceImprovesLatencyAndThroughput(t *testing.T) {
	ls := demands()
	one := Plan{Copies: []int{1, 1, 1}}
	bal := Balance(ls, 200)
	if bal.Latency(ls) >= one.Latency(ls) {
		t.Fatal("replication did not cut latency")
	}
	if bal.Throughput(ls) <= one.Throughput(ls) {
		t.Fatal("replication did not raise throughput")
	}
}

func TestBalanceEqualizesPerCopyLatency(t *testing.T) {
	ls := demands()
	p := Balance(ls, 1000)
	// With a generous budget, per-copy latencies should be within one
	// replication step of each other wherever another copy would fit.
	var lats []float64
	for i, l := range ls {
		lats = append(lats, l.Latency/float64(p.Copies[i]))
	}
	max, min := lats[0], lats[0]
	for _, v := range lats {
		max = math.Max(max, v)
		min = math.Min(min, v)
	}
	if max/min > 3 {
		t.Fatalf("per-copy latencies unbalanced: %v (copies %v)", lats, p.Copies)
	}
}

func TestZeroLatencyLayerTerminates(t *testing.T) {
	ls := []LayerDemand{{Name: "z", Arrays: 1, Latency: 0}}
	p := Balance(ls, 1000)
	if p.Copies[0] != 1 {
		t.Fatal("zero-latency layer should not replicate")
	}
	if p.Throughput(ls) != 0 {
		t.Fatal("degenerate throughput must be 0")
	}
}

func TestBaseArrays(t *testing.T) {
	if BaseArrays(demands()) != 52 {
		t.Fatal("BaseArrays wrong")
	}
}
