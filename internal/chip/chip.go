// Package chip models chip-level resource provisioning and ISAAC-style
// weight replication.
//
// Table 1 fixes the chip at 168 PEs × 12 CUs × 8 crossbar arrays = 16128
// arrays. A network's layers occupy arrays according to their mapping
// (internal/mapping); whatever capacity remains can hold *replicas* of
// layer weights, and a layer's window stream divides across its replicas.
// ISAAC replicates early convolution layers — which process tens of
// thousands of sliding windows — so that every layer sustains a similar
// throughput; the paper's evaluation builds on the ISAAC infrastructure
// and inherits that mapping. Replication does not change any per-window
// cycle counts, so speedup *ratios* per layer are untouched; it changes
// how much each layer weighs in the end-to-end latency.
package chip

import "fmt"

// Chip describes the array capacity of one accelerator chip.
type Chip struct {
	PEs         int
	CUsPerPE    int
	ArraysPerCU int
}

// Default returns the Table 1 chip: 168 PEs, 12 CUs each, 8 arrays each.
func Default() Chip { return Chip{PEs: 168, CUsPerPE: 12, ArraysPerCU: 8} }

// Arrays returns the chip's crossbar-array capacity.
func (c Chip) Arrays() int { return c.PEs * c.CUsPerPE * c.ArraysPerCU }

// Validate rejects non-physical chips.
func (c Chip) Validate() error {
	if c.PEs <= 0 || c.CUsPerPE <= 0 || c.ArraysPerCU <= 0 {
		return fmt.Errorf("chip: non-positive dimension in %+v", c)
	}
	return nil
}

// LayerDemand is one layer's resource footprint and unreplicated latency.
type LayerDemand struct {
	Name    string
	Arrays  int     // crossbar arrays one copy of the weights occupies
	Latency float64 // seconds for one copy to process every window
}

// Plan is a replication assignment.
type Plan struct {
	Copies []int // replicas per layer (≥ 1)
	Chips  int   // chips needed to hold the plan
}

// BaseArrays returns the arrays needed with no replication.
func BaseArrays(layers []LayerDemand) int {
	total := 0
	for _, l := range layers {
		total += l.Arrays
	}
	return total
}

// ChipsFor returns how many chips hold `arrays` arrays.
func (c Chip) ChipsFor(arrays int) int {
	cap := c.Arrays()
	return (arrays + cap - 1) / cap
}

// Balance allocates replicas within an array budget to minimize the
// end-to-end latency Σ latency_i/copies_i (equivalently, to balance
// per-layer throughput): a greedy water-filling that always gives the
// next copy to the layer with the largest current per-copy latency,
// provided its weights fit the remaining budget. Every layer always gets
// one copy even if the budget is exceeded (the network must be mapped).
func Balance(layers []LayerDemand, budgetArrays int) Plan {
	p := Plan{Copies: make([]int, len(layers))}
	used := 0
	for i, l := range layers {
		p.Copies[i] = 1
		used += l.Arrays
	}
	for {
		// Find the slowest layer whose next copy still fits.
		best := -1
		var bestLat float64
		for i, l := range layers {
			if l.Arrays == 0 || used+l.Arrays > budgetArrays {
				continue
			}
			lat := l.Latency / float64(p.Copies[i])
			if lat > bestLat {
				best, bestLat = i, lat
			}
		}
		if best < 0 || bestLat == 0 {
			break
		}
		p.Copies[best]++
		used += layers[best].Arrays
	}
	p.Chips = Default().ChipsFor(used)
	return p
}

// Latency returns the replicated end-to-end latency: layers execute in
// sequence, each with its windows spread over its copies.
func (p Plan) Latency(layers []LayerDemand) float64 {
	total := 0.0
	for i, l := range layers {
		total += l.Latency / float64(p.Copies[i])
	}
	return total
}

// Throughput returns the pipelined inference rate (1/s): with layers
// pipelined across inferences, the slowest replicated layer bounds the
// rate.
func (p Plan) Throughput(layers []LayerDemand) float64 {
	worst := 0.0
	for i, l := range layers {
		lat := l.Latency / float64(p.Copies[i])
		if lat > worst {
			worst = lat
		}
	}
	if worst == 0 {
		return 0
	}
	return 1 / worst
}
