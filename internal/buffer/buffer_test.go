package buffer

import "testing"

func TestValidate(t *testing.T) {
	if Default().Validate() != nil {
		t.Fatal("default buffer rejected")
	}
	bad := []Config{
		{CapacityBytes: 0, Banks: 8, BusBits: 512, Clock: 1e9},
		{CapacityBytes: 1, Banks: 0, BusBits: 512, Clock: 1e9},
		{CapacityBytes: 1, Banks: 8, BusBits: 0, Clock: 1e9},
		{CapacityBytes: 1, Banks: 8, BusBits: 512, Clock: 0},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("accepted %+v", c)
		}
	}
}

// TestPaperBatchFitsInOneCycle validates the §5.3 claim the simulator
// assumes: a 128×16-bit batch fetch completes within one 15 ns pipeline
// cycle on the 8-bank, 512-bit-bus buffer.
func TestPaperBatchFitsInOneCycle(t *testing.T) {
	c := Default()
	const batchBits = 128 * 16
	// 2048 bits = 4 bus beats over 8 banks → one buffer clock (0.83 ns).
	if got := c.FetchClocks(batchBits); got != 1 {
		t.Fatalf("batch fetch takes %d buffer clocks, want 1", got)
	}
	if !c.FitsInCycle(batchBits, 15e-9) {
		t.Fatal("paper's batch fetch must fit one SRE cycle")
	}
	if c.StallCycles(batchBits, 15e-9) != 0 {
		t.Fatal("no stalls expected at the paper's design point")
	}
}

// Even ORC's worst case — eight back-to-back group fetches per batch —
// fits within one 15 ns cycle at the paper's clock (8 buffer clocks ≈
// 6.7 ns), which is why the simulator charges energy but no latency for
// them.
func TestORCGroupFetchesFit(t *testing.T) {
	c := Default()
	total := 0.0
	for g := 0; g < 8; g++ {
		total += c.FetchSeconds(128 * 16)
	}
	if total > 15e-9 {
		t.Fatalf("8 group fetches take %v s, exceeding one cycle", total)
	}
}

func TestFetchClocksScaling(t *testing.T) {
	c := Default()
	if c.FetchClocks(0) != 0 {
		t.Fatal("zero bits must be free")
	}
	if c.FetchClocks(1) != 1 {
		t.Fatal("sub-beat fetch costs one clock")
	}
	// 16 beats over 8 banks = 2 clocks.
	if got := c.FetchClocks(16 * 512); got != 2 {
		t.Fatalf("16-beat fetch = %d clocks, want 2", got)
	}
}

func TestStallCyclesWhenUndersized(t *testing.T) {
	// A single-bank, narrow-bus buffer cannot hide a big fetch.
	c := Config{CapacityBytes: 1024, Banks: 1, BusBits: 64, Clock: 1.2e9}
	bits := 128 * 16 // 32 beats → 32 clocks ≈ 26.7 ns
	if c.FitsInCycle(bits, 15e-9) {
		t.Fatal("undersized buffer cannot fit the fetch")
	}
	if s := c.StallCycles(bits, 15e-9); s < 1 {
		t.Fatalf("expected stalls, got %d", s)
	}
}

func TestHoldsFeatureMaps(t *testing.T) {
	c := Default()
	// 64 KB holds e.g. a 14×14×512 16-bit input map (≈196 KB)? No — and
	// the check must say so; a 14×14×128 map (≈49 KB) plus small output fits.
	if c.HoldsFeatureMaps(14*14*512*16, 0) {
		t.Fatal("capacity check too permissive")
	}
	if !c.HoldsFeatureMaps(14*14*128*16, 14*14*32*16) {
		t.Fatal("capacity check too strict")
	}
}

func TestStallPanicsOnBadCycle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Default().StallCycles(10, 0)
}
