// Package buffer models the PE's on-chip eDRAM buffer (paper Table 1 and
// §5.3): 64 KB, banked, with a 512-bit bus. Its job in the SRE pipeline
// is to deliver one full input batch (128 activations × 16 bits) to an
// input register within a single pipeline cycle so that index decoding
// and fetching stay hidden behind OU computation; the paper states the
// buffer is "configured to ensure that fetching a batch of input data
// could be completed in one cycle" (8 banks, 512-bit bus). This package
// makes that claim checkable instead of assumed, and reports when a
// configuration would stall the pipeline instead.
package buffer

import "fmt"

// Config describes an eDRAM buffer design point.
type Config struct {
	CapacityBytes int     // total capacity (Table 1: 64 KB)
	Banks         int     // independently accessible banks (paper §5.3: 8)
	BusBits       int     // data bus width per transfer (Table 1: 512)
	Clock         float64 // buffer clock in Hz (PE clock, 1.2 GHz)
}

// Default returns the paper's buffer design point.
func Default() Config {
	return Config{CapacityBytes: 64 * 1024, Banks: 8, BusBits: 512, Clock: 1.2e9}
}

// Validate rejects non-physical configurations.
func (c Config) Validate() error {
	switch {
	case c.CapacityBytes <= 0:
		return fmt.Errorf("buffer: non-positive capacity")
	case c.Banks <= 0:
		return fmt.Errorf("buffer: non-positive bank count")
	case c.BusBits <= 0:
		return fmt.Errorf("buffer: non-positive bus width")
	case c.Clock <= 0:
		return fmt.Errorf("buffer: non-positive clock")
	}
	return nil
}

// FetchClocks returns how many buffer clock cycles moving `bits` takes:
// the transfer is striped over the banks, each contributing one BusBits
// beat per clock.
func (c Config) FetchClocks(bits int) int {
	if bits <= 0 {
		return 0
	}
	beats := (bits + c.BusBits - 1) / c.BusBits
	return (beats + c.Banks - 1) / c.Banks
}

// FetchSeconds returns the wall-clock duration of a fetch.
func (c Config) FetchSeconds(bits int) float64 {
	return float64(c.FetchClocks(bits)) / c.Clock
}

// FitsInCycle reports whether a batch of `bits` can be fetched within one
// pipeline cycle of the given duration — the §5.3 requirement for a
// stall-free SRE pipeline.
func (c Config) FitsInCycle(bits int, cycleSeconds float64) bool {
	return c.FetchSeconds(bits) <= cycleSeconds
}

// StallCycles returns the pipeline cycles a fetch steals when it does not
// fit (0 when it fits).
func (c Config) StallCycles(bits int, cycleSeconds float64) int {
	if cycleSeconds <= 0 {
		panic("buffer: non-positive cycle time")
	}
	over := c.FetchSeconds(bits) - cycleSeconds
	if over <= 0 {
		return 0
	}
	return int(over/cycleSeconds) + 1
}

// HoldsFeatureMaps reports whether input plus output feature maps of
// `inBits` and `outBits` fit the buffer simultaneously (the PE must hold
// both while a layer computes).
func (c Config) HoldsFeatureMaps(inBits, outBits int64) bool {
	return (inBits+outBits+7)/8 <= int64(c.CapacityBytes)
}
