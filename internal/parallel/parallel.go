// Package parallel is the simulator's shared worker-pool runner.
//
// A Pool bounds how many goroutines work at once, across nested For
// calls: the window loop of one layer, the layers of one network, and
// the modes of one sweep all draw workers from the same pool, so total
// concurrency never exceeds the configured width no matter how the
// loops nest. Extra workers are acquired with a non-blocking token
// grab — when the pool is saturated the caller simply runs the shard
// inline — so nested For calls can never deadlock.
//
// Determinism: For only partitions index space; it performs no
// reduction. Callers write per-index (or per-shard) results into
// pre-sized slices and reduce serially afterwards, which keeps results
// bit-identical to a serial run regardless of worker count or
// scheduling order.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool bounds concurrent workers. Create one with New; a nil *Pool is
// valid and runs everything inline on the caller's goroutine.
type Pool struct {
	workers int
	sem     chan struct{} // tokens for workers beyond the caller
	stats   atomic.Pointer[Stats]
}

// Stats is the pool's cumulative execution accounting, collected only
// after EnableStats. All fields are atomics: the pool is shared across
// goroutines, and these counts sit outside the per-shard hot loops (one
// update per For call or per shard, never per item).
type Stats struct {
	// ForCalls counts For invocations that dispatched work.
	ForCalls atomic.Int64
	// Items counts the total index-space size dispatched (Σ n).
	Items atomic.Int64
	// ShardsInline counts shards run on the caller's goroutine — the
	// caller's own final shard plus any saturation fallbacks.
	ShardsInline atomic.Int64
	// ShardsSpawned counts shards handed to pool goroutines.
	ShardsSpawned atomic.Int64
	// SpawnWaitNanos accumulates, over spawned shards, the delay between
	// the spawn request and the shard body starting — the pool's
	// scheduling latency ("queue wait").
	SpawnWaitNanos atomic.Int64
	// DynCalls counts ForDynamic invocations that dispatched work.
	DynCalls atomic.Int64
	// DynChunks counts the chunks ForDynamic's workers claimed (Σ
	// ceil(n/chunk) over calls).
	DynChunks atomic.Int64
	// DynWorkers counts worker bodies that drained a ForDynamic cursor
	// (the caller's own body plus any spawned ones).
	DynWorkers atomic.Int64
}

// EnableStats switches on execution accounting for this pool and
// returns the live Stats (idempotent; concurrent callers share one
// instance). A nil pool returns nil.
func (p *Pool) EnableStats() *Stats {
	if p == nil {
		return nil
	}
	if s := p.stats.Load(); s != nil {
		return s
	}
	p.stats.CompareAndSwap(nil, &Stats{})
	return p.stats.Load()
}

// Stats returns the pool's accounting, or nil when EnableStats was
// never called (or the pool is nil).
func (p *Pool) Stats() *Stats {
	if p == nil {
		return nil
	}
	return p.stats.Load()
}

// New returns a pool of the given width. width <= 0 means GOMAXPROCS.
func New(width int) *Pool {
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: width, sem: make(chan struct{}, width-1)}
}

// Workers returns the pool's width (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// For partitions [0, n) into at most Workers() contiguous shards and
// calls fn(start, end) on each, using the caller's goroutine plus as
// many pool workers as are free. fn must be safe to run concurrently
// on disjoint shards. For stops dispatching new shards once ctx is
// cancelled (shards already running finish first) and returns ctx.Err
// if the context was cancelled at any point, nil otherwise.
func (p *Pool) For(ctx context.Context, n int, fn func(start, end int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	st := p.Stats()
	if st != nil {
		st.ForCalls.Add(1)
		st.Items.Add(int64(n))
	}
	shards := p.Workers()
	if shards > n {
		shards = n
	}
	if shards == 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		if st != nil {
			st.ShardsInline.Add(1)
		}
		fn(0, n)
		return ctx.Err()
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		if err := ctx.Err(); err != nil {
			wg.Wait()
			return err
		}
		start, end := s*n/shards, (s+1)*n/shards
		if s == shards-1 {
			// The caller always works the last shard itself.
			if st != nil {
				st.ShardsInline.Add(1)
			}
			fn(start, end)
			break
		}
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			var spawned time.Time
			if st != nil {
				st.ShardsSpawned.Add(1)
				spawned = time.Now()
			}
			go func() {
				defer func() { <-p.sem; wg.Done() }()
				if st != nil {
					st.SpawnWaitNanos.Add(time.Since(spawned).Nanoseconds())
				}
				fn(start, end)
			}()
		default:
			// Pool saturated (e.g. a nested For): run inline.
			if st != nil {
				st.ShardsInline.Add(1)
			}
			fn(start, end)
		}
	}
	wg.Wait()
	return ctx.Err()
}

// ForDynamic partitions [0, n) into fixed-size contiguous chunks and
// lets workers claim them through an atomic cursor — work stealing at
// chunk granularity, for loops whose per-index cost is too uneven for
// For's static shards (one slow chunk no longer serializes the tail
// behind the coarsest shard). Like For, it acquires extra workers with
// a non-blocking token grab (saturated nested calls degrade to the
// caller draining every chunk inline, so nesting cannot deadlock) and
// a nil pool runs everything on the caller's goroutine.
//
// Determinism: every index is processed exactly once, by exactly one
// worker, with fn(start, end) covering disjoint ranges — ForDynamic
// performs no reduction, so callers that write per-index results to
// disjoint pre-sized slots and reduce serially afterwards get results
// bit-identical to a serial run at any width, exactly as with For.
// Only the assignment of chunks to workers is scheduling-dependent.
//
// ForDynamic stops claiming new chunks once ctx is cancelled (chunks
// already running finish first) and returns ctx.Err if the context was
// cancelled at any point, nil otherwise.
func (p *Pool) ForDynamic(ctx context.Context, n, chunk int, fn func(start, end int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if chunk < 1 {
		chunk = 1
	}
	nChunks := (n + chunk - 1) / chunk
	st := p.Stats()
	if st != nil {
		st.DynCalls.Add(1)
		st.Items.Add(int64(n))
		st.DynChunks.Add(int64(nChunks))
	}
	var cursor atomic.Int64
	body := func() {
		if st != nil {
			st.DynWorkers.Add(1)
		}
		for ctx.Err() == nil {
			c := int(cursor.Add(1)) - 1
			if c >= nChunks {
				return
			}
			start := c * chunk
			end := start + chunk
			if end > n {
				end = n
			}
			fn(start, end)
		}
	}
	workers := p.Workers()
	if workers > nChunks {
		workers = nChunks
	}
	var wg sync.WaitGroup
spawn:
	for w := 1; w < workers; w++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			var spawned time.Time
			if st != nil {
				st.ShardsSpawned.Add(1)
				spawned = time.Now()
			}
			go func() {
				defer func() { <-p.sem; wg.Done() }()
				if st != nil {
					st.SpawnWaitNanos.Add(time.Since(spawned).Nanoseconds())
				}
				body()
			}()
		default:
			// Saturated: the caller's own drain loop below covers the
			// remaining chunks.
			break spawn
		}
	}
	body()
	wg.Wait()
	return ctx.Err()
}

// ChunkFor sizes a ForDynamic chunk for n items over the given worker
// count: ~8 chunks per worker leaves slack for stealing when per-item
// costs skew, clamped to [1, 32] so a chunk neither degenerates to
// per-index cursor contention nor starves the steal.
func ChunkFor(n, workers int) int {
	if workers < 1 {
		workers = 1
	}
	c := (n + 8*workers - 1) / (8 * workers)
	if c < 1 {
		c = 1
	}
	if c > 32 {
		c = 32
	}
	return c
}
