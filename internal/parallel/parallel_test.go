package parallel

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, width := range []int{1, 2, 3, 8, 64} {
		p := New(width)
		for _, n := range []int{0, 1, 2, 7, 100} {
			hits := make([]int32, n)
			err := p.For(context.Background(), n, func(start, end int) {
				for i := start; i < end; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			if err != nil {
				t.Fatalf("width %d n %d: %v", width, n, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("width %d n %d: index %d hit %d times", width, n, i, h)
				}
			}
		}
	}
}

func TestForShardsAreContiguous(t *testing.T) {
	p := New(4)
	var got atomic.Int64
	err := p.For(context.Background(), 10, func(start, end int) {
		if end <= start {
			t.Errorf("empty shard [%d,%d)", start, end)
		}
		for i := start; i < end; i++ {
			got.Add(int64(i))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Load() != 45 {
		t.Fatalf("sum of indexes = %d, want 45", got.Load())
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	p := New(4)
	var count atomic.Int64
	err := p.For(context.Background(), 8, func(start, end int) {
		for i := start; i < end; i++ {
			if err := p.For(context.Background(), 16, func(s, e int) {
				count.Add(int64(e - s))
			}); err != nil {
				t.Error(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 8*16 {
		t.Fatalf("inner iterations = %d, want %d", count.Load(), 8*16)
	}
}

func TestForCancelledContext(t *testing.T) {
	p := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := p.For(ctx, 100, func(start, end int) { ran = true }); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("dispatched a shard on a cancelled context")
	}
}

func TestForCancelDuringRun(t *testing.T) {
	p := New(1) // serial: cancellation observed after the single shard
	ctx, cancel := context.WithCancel(context.Background())
	err := p.For(ctx, 4, func(start, end int) { cancel() })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool width %d", p.Workers())
	}
	sum := 0
	if err := p.For(context.Background(), 5, func(start, end int) {
		for i := start; i < end; i++ {
			sum += i
		}
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 10 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestForDynamicCoversEveryIndexOnce(t *testing.T) {
	for _, width := range []int{1, 2, 3, 8, 64} {
		p := New(width)
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			for _, chunk := range []int{0, 1, 3, 7, 64, 5000} {
				hits := make([]int32, n)
				err := p.ForDynamic(context.Background(), n, chunk, func(start, end int) {
					for i := start; i < end; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				if err != nil {
					t.Fatalf("width %d n %d chunk %d: %v", width, n, chunk, err)
				}
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("width %d n %d chunk %d: index %d hit %d times", width, n, chunk, i, h)
					}
				}
			}
		}
	}
}

// TestForDynamicDeterministicWrites pins the determinism contract:
// per-index results written to disjoint slots are identical at every
// width and chunk size, because each index is claimed exactly once.
func TestForDynamicDeterministicWrites(t *testing.T) {
	const n = 500
	want := make([]int64, n)
	for i := range want {
		want[i] = int64(i) * int64(i)
	}
	for _, width := range []int{1, 4, 16} {
		for _, chunk := range []int{1, 3, 7, 50} {
			p := New(width)
			got := make([]int64, n)
			if err := p.ForDynamic(context.Background(), n, chunk, func(start, end int) {
				for i := start; i < end; i++ {
					got[i] = int64(i) * int64(i)
				}
			}); err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("width %d chunk %d: slot %d = %d, want %d", width, chunk, i, got[i], want[i])
				}
			}
		}
	}
}

func TestForDynamicNestedDoesNotDeadlock(t *testing.T) {
	p := New(2)
	var total atomic.Int64
	err := p.For(context.Background(), 4, func(start, end int) {
		for i := start; i < end; i++ {
			if err := p.ForDynamic(context.Background(), 100, 8, func(s, e int) {
				total.Add(int64(e - s))
			}); err != nil {
				t.Error(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 400 {
		t.Fatalf("nested dynamic loops covered %d items, want 400", total.Load())
	}
}

func TestForDynamicCancellation(t *testing.T) {
	p := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.ForDynamic(ctx, 100, 4, func(start, end int) {
		t.Error("chunk ran after cancellation")
	}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	ctx, cancel = context.WithCancel(context.Background())
	var ran atomic.Int64
	err := p.ForDynamic(ctx, 10000, 1, func(start, end int) {
		if ran.Add(1) == 3 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("mid-run cancel: err = %v, want context.Canceled", err)
	}
	if ran.Load() >= 10000 {
		t.Fatal("cancellation did not stop chunk claiming")
	}
}

func TestForDynamicNilPool(t *testing.T) {
	var p *Pool
	sum := 0
	if err := p.ForDynamic(context.Background(), 10, 3, func(start, end int) {
		for i := start; i < end; i++ {
			sum += i
		}
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 45 {
		t.Fatalf("nil-pool sum = %d, want 45", sum)
	}
}

func TestForDynamicStats(t *testing.T) {
	p := New(4)
	st := p.EnableStats()
	if err := p.ForDynamic(context.Background(), 100, 8, func(start, end int) {}); err != nil {
		t.Fatal(err)
	}
	if st.DynCalls.Load() != 1 {
		t.Fatalf("DynCalls = %d, want 1", st.DynCalls.Load())
	}
	if st.DynChunks.Load() != 13 { // ceil(100/8)
		t.Fatalf("DynChunks = %d, want 13", st.DynChunks.Load())
	}
	if w := st.DynWorkers.Load(); w < 1 || w > 4 {
		t.Fatalf("DynWorkers = %d, want 1..4", w)
	}
	if st.Items.Load() != 100 {
		t.Fatalf("Items = %d, want 100", st.Items.Load())
	}
}
