package parallel

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, width := range []int{1, 2, 3, 8, 64} {
		p := New(width)
		for _, n := range []int{0, 1, 2, 7, 100} {
			hits := make([]int32, n)
			err := p.For(context.Background(), n, func(start, end int) {
				for i := start; i < end; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			if err != nil {
				t.Fatalf("width %d n %d: %v", width, n, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("width %d n %d: index %d hit %d times", width, n, i, h)
				}
			}
		}
	}
}

func TestForShardsAreContiguous(t *testing.T) {
	p := New(4)
	var got atomic.Int64
	err := p.For(context.Background(), 10, func(start, end int) {
		if end <= start {
			t.Errorf("empty shard [%d,%d)", start, end)
		}
		for i := start; i < end; i++ {
			got.Add(int64(i))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Load() != 45 {
		t.Fatalf("sum of indexes = %d, want 45", got.Load())
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	p := New(4)
	var count atomic.Int64
	err := p.For(context.Background(), 8, func(start, end int) {
		for i := start; i < end; i++ {
			if err := p.For(context.Background(), 16, func(s, e int) {
				count.Add(int64(e - s))
			}); err != nil {
				t.Error(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 8*16 {
		t.Fatalf("inner iterations = %d, want %d", count.Load(), 8*16)
	}
}

func TestForCancelledContext(t *testing.T) {
	p := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := p.For(ctx, 100, func(start, end int) { ran = true }); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("dispatched a shard on a cancelled context")
	}
}

func TestForCancelDuringRun(t *testing.T) {
	p := New(1) // serial: cancellation observed after the single shard
	ctx, cancel := context.WithCancel(context.Background())
	err := p.For(ctx, 4, func(start, end int) { cancel() })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool width %d", p.Workers())
	}
	sum := 0
	if err := p.For(context.Background(), 5, func(start, end int) {
		for i := start; i < end; i++ {
			sum += i
		}
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 10 {
		t.Fatalf("sum = %d", sum)
	}
}
