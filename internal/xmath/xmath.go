// Package xmath holds the small integer-math helpers shared by the
// mapping, compression, and simulation packages (previously duplicated
// as unexported ceilDiv/ceilLog2 copies in each).
package xmath

// CeilDiv returns ceil(a / b) for b > 0.
func CeilDiv(a, b int) int { return (a + b - 1) / b }

// CeilLog2 returns the smallest k with 2^k >= n (0 for n <= 1).
func CeilLog2(n int) int {
	b := 0
	for 1<<uint(b) < n {
		b++
	}
	return b
}
