package xmath

import "testing"

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 1, 0}, {1, 1, 1}, {1, 2, 1}, {2, 2, 1}, {3, 2, 2},
		{127, 64, 2}, {128, 64, 2}, {129, 64, 3}, {16, 16, 1}, {17, 16, 2},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilLog2(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{127, 7}, {128, 7}, {129, 8}, {1 << 20, 20},
	}
	for _, c := range cases {
		if got := CeilLog2(c.n); got != c.want {
			t.Errorf("CeilLog2(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
