// Package snapshot persists built networks: everything workload.Build
// produces — prune-derived compression structures (as contiguous
// little-endian word planes), per-layer ORC plan sets, window-code
// planes, activation-source parameters, and layer stats — in one
// versioned binary artifact that loads in a single read. It is the
// serializable representation behind sre.(*Network).WriteTo and
// sre.OpenSnapshot, and the build cache behind sre.WithSnapshotDir.
//
// File layout (all integers little-endian):
//
//	[ 0, 8)  magic "SRESNAP\x00"
//	[ 8,12)  u32 format version (currently 2)
//	[12,16)  u32 meta length in bytes
//	[16,24)  u64 payload length in bytes
//	[24,32)  u64 CRC-64/ECMA of the meta JSON
//	[32,40)  u64 CRC-64/ECMA of the payload
//	[40,72)  sha-256 content hash of the build inputs (Key.Hash)
//	[72,  )  meta JSON, then payload
//
// The content hash covers the format version and every build input
// (network spec, prune mode, quantization, geometry, seed) and nothing
// derived, so it is computable before building — that is what lets a
// snapshot directory be consulted by hash prior to paying for a build,
// and shared across replicas and CI. The payload is the concatenation,
// layer by layer, of the structure word plane ([]u64), the weight-slice
// group plane ([]u64, format 2 — what the WSS modes plan over), an
// optional ORC plan-set section, and an optional window-code plane
// ([]u32); each section's size is recorded in the meta, so decoding is
// pure slicing and the group bitsets adopt sub-slices of one backing
// array without copying.
//
// Decoding fails loudly: a bad magic, an unsupported version, a length
// or checksum that does not line up, or a meta whose recomputed content
// hash differs from the header's all return named errors (ErrBadMagic,
// ErrVersion, ErrCorrupt, ErrHashMismatch) — never a silently rebuilt
// or partially loaded network.
package snapshot

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"

	"sre/internal/compress"
	"sre/internal/core"
	"sre/internal/mapping"
	"sre/internal/quant"
	"sre/internal/workload"

	"crypto/sha256"
)

// FormatVersion is the current snapshot format version. Bump it on any
// incompatible layout change; it participates in the content hash, so
// old snapshots are never matched by hash, and OpenSnapshot rejects
// them with ErrVersion rather than misreading them. Version 2 added
// the per-layer weight-slice plane section and Spec.SliceCap.
const FormatVersion = 2

const (
	magic      = "SRESNAP\x00"
	headerSize = 72

	// maxMetaBytes bounds the meta section a header may claim, keeping
	// hostile or corrupt headers from driving huge allocations.
	maxMetaBytes = 64 << 20
	// maxPlanSectionBytes bounds one layer's persisted plan set; a layer
	// whose ORC plans encode larger (dense weights on huge tilings) just
	// rebuilds them lazily after load instead.
	maxPlanSectionBytes = 16 << 20
)

// Named decode failures, matchable with errors.Is.
var (
	ErrBadMagic     = errors.New("snapshot: not a snapshot file (bad magic)")
	ErrVersion      = errors.New("snapshot: unsupported format version")
	ErrCorrupt      = errors.New("snapshot: corrupt snapshot")
	ErrHashMismatch = errors.New("snapshot: content hash mismatch")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Key is the complete set of build inputs one artifact stands for. Two
// builds with equal Keys produce bit-identical networks (builds are
// deterministic), which is what makes the content hash a safe cache
// key.
type Key struct {
	Spec  workload.Spec
	Prune workload.PruneMode
	Quant quant.Params
	Geom  mapping.Geometry
	Seed  uint64
}

// Hash returns the sha-256 content hash of the key: a canonical binary
// serialization of the format version and every build input, stable
// across runs, platforms, and field ordering.
func (k Key) Hash() [32]byte {
	h := sha256.New()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wi := func(v int) { wu(uint64(int64(v))) }
	wf := func(v float64) { wu(math.Float64bits(v)) }
	ws := func(s string) {
		wi(len(s))
		io.WriteString(h, s)
	}
	wu(FormatVersion)
	ws(k.Spec.Name)
	ws(k.Spec.Display)
	ws(k.Spec.Topology)
	wi(len(k.Spec.Input))
	for _, d := range k.Spec.Input {
		wi(d)
	}
	wf(k.Spec.WeightSparsity)
	wf(k.Spec.ActSparsity)
	wf(k.Spec.ConvSparsity)
	wf(k.Spec.FCSparsity)
	wf(k.Spec.RowFrac)
	wf(k.Spec.ColFrac)
	wf(k.Spec.SegFrac)
	wf(k.Spec.TileSegFrac)
	wf(k.Spec.ActOctaves)
	wf(k.Spec.ActChanOctaves)
	wi(k.Spec.IndexBits)
	wf(k.Spec.GSLConv)
	wf(k.Spec.GSLFC)
	if k.Spec.Large {
		wi(1)
	} else {
		wi(0)
	}
	wi(k.Spec.SliceCap)
	wi(int(k.Prune))
	wi(k.Quant.WBits)
	wi(k.Quant.ABits)
	wi(k.Quant.CellBits)
	wi(k.Quant.DACBits)
	wi(k.Geom.XbarRows)
	wi(k.Geom.XbarCols)
	wi(k.Geom.SWL)
	wi(k.Geom.SBL)
	wu(k.Seed)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// HashHex returns the content hash as lowercase hex.
func (k Key) HashHex() string {
	h := k.Hash()
	return hex.EncodeToString(h[:])
}

// FileName returns the canonical file name a snapshot directory stores
// this key under.
func (k Key) FileName() string { return k.HashHex() + ".sresnap" }

// WriteOptions tune which derived sections a written snapshot carries.
// Both sections are warm-start accelerators: omitting them (or asking
// for widths/caps that later runs don't use) costs nothing but a lazy
// rebuild, never correctness.
type WriteOptions struct {
	// MaxWindows is the per-layer window sampling cap whose code plane
	// is persisted (0 = all windows), normally the writer's build-config
	// value.
	MaxWindows int
	// IndexBits is the input-index width the persisted ORC plan sets use
	// (0 = the spec's Table 2 value) — the effective width sre resolves.
	IndexBits int
}

// fileMeta is the JSON meta section.
type fileMeta struct {
	FormatVersion int
	Key           keyMeta
	PlanIndexBits int // index width of the persisted plan sections
	Layers        []layerMeta
}

type keyMeta struct {
	Spec  workload.Spec
	Prune int
	Quant quant.Params
	Geom  mapping.Geometry
	Seed  uint64
}

func (m keyMeta) key() Key {
	return Key{Spec: m.Spec, Prune: workload.PruneMode(m.Prune),
		Quant: m.Quant, Geom: m.Geom, Seed: m.Seed}
}

// layerMeta describes one layer's identity and payload sections.
type layerMeta struct {
	Name          string
	Rows, Cols    int // logical weight-matrix dims (the layout rebuilds from these)
	OutputBits    int64
	ParallelGroup string
	NonZeroCells  int64
	Stats         workload.LayerStats
	Acts          actsMeta
	PlaneWords    int // structure word-plane length (u64 words)
	SliceWords    int // weight-slice plane length (u64 words, format 2)
	PlanBytes     int // ORC plan-set section length (0 = absent)
	CodeSampled   int // code-plane sampled-window count (0 = absent)
}

// actsMeta mirrors workload.SyntheticActs field for field.
type actsMeta struct {
	Rows, NWindows                 int
	Sparsity, Octaves, ChanOctaves float64
	RowsPerChan, ABits             int
	Seed                           uint64
}

// Write serializes the built network b (built from inputs k) to w and
// returns the byte count written. Only networks whose activation
// sources are workload.SyntheticActs serialize; anything else returns
// an error naming the layer.
func Write(w io.Writer, k Key, b *workload.Built, o WriteOptions) (int64, error) {
	meta, payload, err := encodeBody(k, b, o)
	if err != nil {
		return 0, err
	}
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[8:], FormatVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(meta)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(payload)))
	binary.LittleEndian.PutUint64(hdr[24:], crc64.Checksum(meta, crcTable))
	binary.LittleEndian.PutUint64(hdr[32:], crc64.Checksum(payload, crcTable))
	hash := k.Hash()
	copy(hdr[40:], hash[:])
	var n int64
	for _, part := range [][]byte{hdr, meta, payload} {
		m, err := w.Write(part)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func encodeBody(k Key, b *workload.Built, o WriteOptions) (meta, payload []byte, err error) {
	effIdx := o.IndexBits
	if effIdx <= 0 {
		effIdx = k.Spec.IndexBits
	}
	fm := fileMeta{
		FormatVersion: FormatVersion,
		Key: keyMeta{Spec: k.Spec, Prune: int(k.Prune), Quant: k.Quant,
			Geom: k.Geom, Seed: k.Seed},
		PlanIndexBits: effIdx,
	}
	if len(b.Stats) != len(b.Layers) {
		return nil, nil, fmt.Errorf("snapshot: %d layers but %d stats entries", len(b.Layers), len(b.Stats))
	}
	var word [8]byte
	for i := range b.Layers {
		l := &b.Layers[i]
		sa, ok := l.Acts.(*workload.SyntheticActs)
		if !ok {
			return nil, nil, fmt.Errorf("snapshot: layer %s: activation source %T is not serializable", l.Name, l.Acts)
		}
		st := l.Struct
		lm := layerMeta{
			Name:          l.Name,
			Rows:          st.Layout.Rows,
			Cols:          st.Layout.LogicalCols,
			OutputBits:    l.OutputBits,
			ParallelGroup: l.ParallelGroup,
			NonZeroCells:  st.NonZeroCells(),
			Stats:         b.Stats[i],
			Acts: actsMeta{Rows: sa.Rows, NWindows: sa.NWindows,
				Sparsity: sa.Sparsity, Octaves: sa.Octaves, ChanOctaves: sa.ChanOctaves,
				RowsPerChan: sa.RowsPerChan, ABits: sa.ABits, Seed: sa.Seed},
			PlaneWords: st.PlaneWords(),
			SliceWords: st.SlicePlaneWords(),
		}
		// Structure word plane, contiguous little-endian, then the
		// weight-slice group plane in the same encoding.
		planes := st.AppendPlanes(make([]uint64, 0, lm.PlaneWords))
		for _, wd := range planes {
			binary.LittleEndian.PutUint64(word[:], wd)
			payload = append(payload, word[:]...)
		}
		for _, wd := range st.AppendSlicePlanes(make([]uint64, 0, lm.SliceWords)) {
			binary.LittleEndian.PutUint64(word[:], wd)
			payload = append(payload, word[:]...)
		}
		// ORC plan set — the expensive-to-derive section. Skipped when the
		// geometry outgrows the u16 row encoding or the section the bound.
		if st.Layout.XbarRows <= 0xFFFF {
			pb := compress.AppendPlanSet(nil, st.PlanSet(compress.ORC, effIdx))
			if len(pb) <= maxPlanSectionBytes {
				lm.PlanBytes = len(pb)
				payload = append(payload, pb...)
			}
		}
		// Window-code plane for the writer's sampling cap (nil when the
		// plane exceeds the code cache's size bound — then it stays lazy
		// after load too).
		if l.Codes != nil {
			windows := sa.Windows()
			sampled := core.SampledWindows(windows, o.MaxWindows)
			if plane := l.Codes.Materialize(sa, sa.Rows, sampled, windows); plane != nil {
				lm.CodeSampled = sampled
				var quad [4]byte
				for _, c := range plane {
					binary.LittleEndian.PutUint32(quad[:], c)
					payload = append(payload, quad[:]...)
				}
			}
		}
		fm.Layers = append(fm.Layers, lm)
	}
	meta, err = json.Marshal(fm)
	if err != nil {
		return nil, nil, err
	}
	return meta, payload, nil
}

// header is the decoded fixed-size prologue.
type header struct {
	version    uint32
	metaLen    uint32
	payloadLen uint64
	metaCRC    uint64
	payloadCRC uint64
	hash       [32]byte
}

// decodeHeader validates the fixed-size prologue. It is the fuzzed
// entry point: any input must yield a named error or a structurally
// sane header, never a panic.
func decodeHeader(data []byte) (header, error) {
	var h header
	if len(data) < headerSize {
		return h, fmt.Errorf("%w: %d-byte file is shorter than the %d-byte header", ErrCorrupt, len(data), headerSize)
	}
	if string(data[:8]) != magic {
		return h, ErrBadMagic
	}
	h.version = binary.LittleEndian.Uint32(data[8:])
	if h.version != FormatVersion {
		return h, fmt.Errorf("%w: file has version %d, this build reads %d", ErrVersion, h.version, FormatVersion)
	}
	h.metaLen = binary.LittleEndian.Uint32(data[12:])
	h.payloadLen = binary.LittleEndian.Uint64(data[16:])
	h.metaCRC = binary.LittleEndian.Uint64(data[24:])
	h.payloadCRC = binary.LittleEndian.Uint64(data[32:])
	copy(h.hash[:], data[40:72])
	if h.metaLen > maxMetaBytes {
		return h, fmt.Errorf("%w: meta length %d exceeds the %d-byte bound", ErrCorrupt, h.metaLen, maxMetaBytes)
	}
	want := uint64(headerSize) + uint64(h.metaLen) + h.payloadLen
	if uint64(len(data)) != want {
		return h, fmt.Errorf("%w: file is %d bytes, header promises %d", ErrCorrupt, len(data), want)
	}
	return h, nil
}

// Decode reconstructs a built network from a complete snapshot image.
// The returned Built shares backing memory with data (the structure
// bitsets adopt sub-slices of one decoded plane), which is what keeps
// loading a single read plus one word-conversion pass.
func Decode(data []byte) (Key, *workload.Built, error) {
	var zero Key
	h, err := decodeHeader(data)
	if err != nil {
		return zero, nil, err
	}
	meta := data[headerSize : headerSize+int(h.metaLen)]
	payload := data[headerSize+int(h.metaLen):]
	if crc64.Checksum(meta, crcTable) != h.metaCRC {
		return zero, nil, fmt.Errorf("%w: meta checksum mismatch", ErrCorrupt)
	}
	if crc64.Checksum(payload, crcTable) != h.payloadCRC {
		return zero, nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}
	var fm fileMeta
	if err := json.Unmarshal(meta, &fm); err != nil {
		return zero, nil, fmt.Errorf("%w: meta does not parse: %v", ErrCorrupt, err)
	}
	if fm.FormatVersion != FormatVersion {
		return zero, nil, fmt.Errorf("%w: meta says version %d", ErrVersion, fm.FormatVersion)
	}
	k := fm.Key.key()
	if k.Hash() != h.hash {
		return zero, nil, fmt.Errorf("%w: header hash does not match the build inputs in the meta", ErrHashMismatch)
	}
	if err := k.Geom.Validate(); err != nil {
		return zero, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := k.Quant.Validate(); err != nil {
		return zero, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	b := &workload.Built{Spec: k.Spec}
	off := 0
	for i := range fm.Layers {
		lm := &fm.Layers[i]
		if lm.Rows <= 0 || lm.Cols <= 0 || lm.PlaneWords < 0 || lm.SliceWords < 0 ||
			lm.PlanBytes < 0 || lm.CodeSampled < 0 || lm.Acts.Rows != lm.Rows {
			return zero, nil, fmt.Errorf("%w: layer %s has inconsistent meta", ErrCorrupt, lm.Name)
		}
		need := (lm.PlaneWords+lm.SliceWords)*8 + lm.PlanBytes + lm.CodeSampled*lm.Acts.Rows*4
		if need < 0 || len(payload)-off < need {
			return zero, nil, fmt.Errorf("%w: payload too short for layer %s", ErrCorrupt, lm.Name)
		}
		planes := make([]uint64, lm.PlaneWords)
		for j := range planes {
			planes[j] = binary.LittleEndian.Uint64(payload[off:])
			off += 8
		}
		slicePlanes := make([]uint64, lm.SliceWords)
		for j := range slicePlanes {
			slicePlanes[j] = binary.LittleEndian.Uint64(payload[off:])
			off += 8
		}
		st, err := compress.NewStructureFromPlanes(lm.Rows, lm.Cols, k.Quant, k.Geom, planes, slicePlanes, lm.NonZeroCells)
		if err != nil {
			return zero, nil, fmt.Errorf("%w: layer %s: %v", ErrCorrupt, lm.Name, err)
		}
		if lm.PlanBytes > 0 {
			ps, err := compress.DecodePlanSet(payload[off:off+lm.PlanBytes], st.Layout)
			if err != nil {
				return zero, nil, fmt.Errorf("%w: layer %s: %v", ErrCorrupt, lm.Name, err)
			}
			st.SeedPlanSet(compress.ORC, fm.PlanIndexBits, ps)
			off += lm.PlanBytes
		}
		codes := core.NewCodePlanes()
		if lm.CodeSampled > 0 {
			plane := make([]uint32, lm.CodeSampled*lm.Acts.Rows)
			for j := range plane {
				plane[j] = binary.LittleEndian.Uint32(payload[off:])
				off += 4
			}
			codes.Seed(lm.CodeSampled, lm.Acts.Rows, plane)
		}
		acts := &workload.SyntheticActs{
			Rows: lm.Acts.Rows, NWindows: lm.Acts.NWindows,
			Sparsity: lm.Acts.Sparsity, Octaves: lm.Acts.Octaves,
			ChanOctaves: lm.Acts.ChanOctaves, RowsPerChan: lm.Acts.RowsPerChan,
			ABits: lm.Acts.ABits, Seed: lm.Acts.Seed,
		}
		b.Layers = append(b.Layers, core.Layer{
			Name: lm.Name, Struct: st, Acts: acts, Codes: codes,
			OutputBits: lm.OutputBits, ParallelGroup: lm.ParallelGroup,
		})
		b.Stats = append(b.Stats, lm.Stats)
	}
	if off != len(payload) {
		return zero, nil, fmt.Errorf("%w: payload has %d trailing bytes", ErrCorrupt, len(payload)-off)
	}
	return k, b, nil
}

// ReadFile loads a snapshot in one read. Note the decoded network
// shares backing memory with that read; see Decode.
func ReadFile(path string) (Key, *workload.Built, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Key{}, nil, err
	}
	k, b, err := Decode(data)
	if err != nil {
		return Key{}, nil, fmt.Errorf("%s: %w", path, err)
	}
	return k, b, nil
}

// WriteFile writes the snapshot atomically: a temp file in the target
// directory, fsync-free rename into place, so concurrent readers and
// racing writers only ever observe complete snapshots.
func WriteFile(path string, k Key, b *workload.Built, o WriteOptions) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".sresnap-*")
	if err != nil {
		return err
	}
	_, werr := Write(tmp, k, b, o)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// LoadOrBuild consults dir for the key's snapshot: on a hit it loads
// and returns (built, true); on a clean miss it builds, persists the
// result for the next caller, and returns (built, false). A snapshot
// that exists but fails to decode — corruption, version skew, hash
// mismatch — is a loud error, never a silent rebuild: a shared
// snapshot directory that has gone bad should be noticed, not
// papered over.
func LoadOrBuild(dir string, k Key, o WriteOptions) (*workload.Built, bool, error) {
	path := filepath.Join(dir, k.FileName())
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		kk, b, derr := Decode(data)
		if derr != nil {
			return nil, false, fmt.Errorf("%s: %w", path, derr)
		}
		if kk.Hash() != k.Hash() {
			return nil, false, fmt.Errorf("%s: %w: file holds a different build's artifact", path, ErrHashMismatch)
		}
		return b, true, nil
	case errors.Is(err, fs.ErrNotExist):
		// Clean miss: build and persist below.
	default:
		return nil, false, err
	}
	b, err := k.Spec.Build(k.Prune, k.Quant, k.Geom, k.Seed)
	if err != nil {
		return nil, false, err
	}
	if err := WriteFile(path, k, b, o); err != nil {
		return nil, false, fmt.Errorf("snapshot: persisting %s: %w", path, err)
	}
	return b, false, nil
}
