package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sre/internal/mapping"
	"sre/internal/quant"
	"sre/internal/workload"
)

// testKey builds the smallest Table 2 network's key.
func testKey(t *testing.T) Key {
	t.Helper()
	spec, err := workload.SpecByName("MNIST")
	if err != nil {
		t.Fatal(err)
	}
	return Key{Spec: spec, Prune: workload.SSL, Quant: quant.Default(),
		Geom: mapping.Default(), Seed: 1}
}

func buildKey(t *testing.T, k Key) *workload.Built {
	t.Helper()
	b, err := k.Spec.Build(k.Prune, k.Quant, k.Geom, k.Seed)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func snapshotBytes(t *testing.T, k Key, b *workload.Built) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := Write(&buf, k, b, WriteOptions{MaxWindows: 12})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Write reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// TestRoundTrip proves Decode(Write(b)) reproduces the built network's
// serialized form exactly: re-encoding the decoded network yields the
// same bytes.
func TestRoundTrip(t *testing.T) {
	k := testKey(t)
	b := buildKey(t, k)
	data := snapshotBytes(t, k, b)
	kk, back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if kk.Hash() != k.Hash() {
		t.Fatal("decoded key hash diverged")
	}
	if len(back.Layers) != len(b.Layers) || len(back.Stats) != len(b.Stats) {
		t.Fatalf("layer/stat counts diverged: %d/%d vs %d/%d",
			len(back.Layers), len(back.Stats), len(b.Layers), len(b.Stats))
	}
	for i := range b.Stats {
		if back.Stats[i] != b.Stats[i] {
			t.Fatalf("layer %d stats diverged", i)
		}
	}
	data2 := snapshotBytes(t, kk, back)
	if !bytes.Equal(data, data2) {
		t.Fatal("re-encoding the decoded network produced different bytes")
	}
}

// TestDeterministicHashAndBytes proves two independent builds of the
// same key serialize to identical bytes (the golden property snapshot
// caching rests on), and that every build input perturbs the hash.
func TestDeterministicHashAndBytes(t *testing.T) {
	k := testKey(t)
	a := snapshotBytes(t, k, buildKey(t, k))
	b := snapshotBytes(t, k, buildKey(t, k))
	if !bytes.Equal(a, b) {
		t.Fatal("two builds of the same key serialized differently")
	}
	perturb := []func(*Key){
		func(k *Key) { k.Seed++ },
		func(k *Key) { k.Prune = workload.GSL },
		func(k *Key) { k.Quant.CellBits = 4 },
		func(k *Key) { k.Geom.SWL = 8 },
		func(k *Key) { k.Spec.WeightSparsity += 0.01 },
		func(k *Key) { k.Spec.Name += "x" },
		func(k *Key) { k.Spec.SliceCap = 2 },
	}
	base := k.Hash()
	for i, f := range perturb {
		kk := testKey(t)
		f(&kk)
		if kk.Hash() == base {
			t.Fatalf("perturbation %d did not change the content hash", i)
		}
	}
}

// TestCorruptionPaths proves every way a file can go bad yields the
// right named error and never a panic or a silently-wrong network.
func TestCorruptionPaths(t *testing.T) {
	k := testKey(t)
	data := snapshotBytes(t, k, buildKey(t, k))

	check := func(name string, mutate func([]byte) []byte, want error) {
		t.Helper()
		img := mutate(append([]byte(nil), data...))
		_, _, err := Decode(img)
		if err == nil {
			t.Fatalf("%s: decoded successfully", name)
		}
		if want != nil && !errors.Is(err, want) {
			t.Fatalf("%s: got %v, want errors.Is(%v)", name, err, want)
		}
	}

	check("truncated header", func(b []byte) []byte { return b[:headerSize-1] }, ErrCorrupt)
	check("truncated body", func(b []byte) []byte { return b[:len(b)-7] }, ErrCorrupt)
	check("bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrBadMagic)
	check("wrong version", func(b []byte) []byte { b[8] = 99; return b }, ErrVersion)
	check("flipped length", func(b []byte) []byte { b[12] ^= 1; return b }, ErrCorrupt)
	check("flipped header hash", func(b []byte) []byte { b[40] ^= 1; return b }, ErrHashMismatch)
	check("flipped meta byte", func(b []byte) []byte { b[headerSize+2] ^= 1; return b }, ErrCorrupt)
	check("flipped payload byte", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, ErrCorrupt)
	check("empty file", func(b []byte) []byte { return nil }, ErrCorrupt)
}

// TestLoadOrBuild proves the cache protocol: miss builds and persists,
// hit loads, corruption surfaces loudly instead of rebuilding.
func TestLoadOrBuild(t *testing.T) {
	dir := t.TempDir()
	k := testKey(t)
	b1, hit, err := LoadOrBuild(dir, k, WriteOptions{MaxWindows: 12})
	if err != nil || hit {
		t.Fatalf("first load: hit=%v err=%v", hit, err)
	}
	path := filepath.Join(dir, k.FileName())
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("miss did not persist a snapshot: %v", err)
	}
	b2, hit, err := LoadOrBuild(dir, k, WriteOptions{MaxWindows: 12})
	if err != nil || !hit {
		t.Fatalf("second load: hit=%v err=%v", hit, err)
	}
	if len(b1.Layers) != len(b2.Layers) {
		t.Fatal("hit returned a different network shape")
	}
	// Corrupt the file: the next load must fail loudly, not rebuild.
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-1] ^= 1
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadOrBuild(dir, k, WriteOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot: got %v, want ErrCorrupt", err)
	}
}

// FuzzDecodeHeader drives arbitrary bytes through the header decoder:
// any input must produce a named error or a sane header, never a panic.
func FuzzDecodeHeader(f *testing.F) {
	spec, err := workload.SpecByName("MNIST")
	if err != nil {
		f.Fatal(err)
	}
	k := Key{Spec: spec, Prune: workload.SSL, Quant: quant.Default(),
		Geom: mapping.Default(), Seed: 1}
	b, err := k.Spec.Build(k.Prune, k.Quant, k.Geom, k.Seed)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Write(&buf, k, b, WriteOptions{MaxWindows: 4}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:headerSize])
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := decodeHeader(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) {
				t.Fatalf("unnamed error: %v", err)
			}
			return
		}
		if uint64(headerSize)+uint64(h.metaLen)+h.payloadLen != uint64(len(data)) {
			t.Fatal("accepted header does not cover the input")
		}
	})
}

// FuzzDecode drives arbitrary mutations of a valid snapshot through
// the full decoder; decoding must never panic.
func FuzzDecode(f *testing.F) {
	spec, err := workload.SpecByName("MNIST")
	if err != nil {
		f.Fatal(err)
	}
	k := Key{Spec: spec, Prune: workload.SSL, Quant: quant.Default(),
		Geom: mapping.Default(), Seed: 1}
	b, err := k.Spec.Build(k.Prune, k.Quant, k.Geom, k.Seed)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Write(&buf, k, b, WriteOptions{MaxWindows: 4}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes(), 0, byte(0xFF))
	f.Add(buf.Bytes(), headerSize+1, byte(1))
	f.Fuzz(func(t *testing.T, data []byte, pos int, mask byte) {
		img := append([]byte(nil), data...)
		if len(img) > 0 {
			img[((pos%len(img))+len(img))%len(img)] ^= mask
		}
		_, _, _ = Decode(img)
	})
}
