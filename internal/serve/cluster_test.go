package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"sre"
	"sre/internal/shard"
)

// startCluster boots n replicas that share one peer list, each behind
// its own httptest listener. The listeners exist before the servers
// (NewUnstartedServer allocates the port immediately), so every
// replica's Options can name the full address set.
func startCluster(t *testing.T, n int, mod func(i int, o *Options)) ([]*Server, []string, []string) {
	t.Helper()
	srvs := make([]*Server, n)
	tss := make([]*httptest.Server, n)
	addrs := make([]string, n)
	for i := range tss {
		i := i
		tss[i] = httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			srvs[i].ServeHTTP(w, r)
		}))
		addrs[i] = tss[i].Listener.Addr().String()
	}
	urls := make([]string, n)
	for i := range srvs {
		o := Options{Peers: addrs, Self: addrs[i]}
		if mod != nil {
			mod(i, &o)
		}
		srvs[i] = NewServer(o)
		tss[i].Start()
		urls[i] = tss[i].URL
	}
	t.Cleanup(func() {
		for _, ts := range tss {
			ts.Close()
		}
	})
	return srvs, urls, addrs
}

// seedOwnedBy finds a build seed whose MNIST registry key the ring
// assigns to owner (the ring is deterministic, so the scan is too).
func seedOwnedBy(t *testing.T, ring *shard.Ring, owner string) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 4096; seed++ {
		cfg := sre.DefaultConfig()
		cfg.Seed = seed
		if ring.Owner(KeyFor("MNIST", sre.SSL, cfg).String()) == owner {
			return seed
		}
	}
	t.Fatalf("no seed in [1,4096) owned by %s", owner)
	return 0
}

func simBody(seed uint64) string {
	return fmt.Sprintf(`{"network":"MNIST","mode":"baseline","config":{"seed":%d,"max_windows":6},"timeout_ms":60000}`, seed)
}

func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	return parseProm(t, body)
}

// TestClusterForwardedBitIdentical is the 2-replica serve contract:
// the same key requested through the owner and through the forwarding
// replica — concurrently, repeatedly — yields bit-identical Results,
// and the network behind it builds exactly once cluster-wide.
func TestClusterForwardedBitIdentical(t *testing.T) {
	srvs, urls, addrs := startCluster(t, 2, nil)
	ring := srvs[0].cluster.ring
	seeds := []uint64{seedOwnedBy(t, ring, addrs[0]), seedOwnedBy(t, ring, addrs[1])}

	const perTarget = 3
	type reply struct {
		key  int
		body []byte
	}
	var wg sync.WaitGroup
	replies := make(chan reply, len(seeds)*len(urls)*perTarget)
	for ki, seed := range seeds {
		for _, url := range urls {
			for r := 0; r < perTarget; r++ {
				wg.Add(1)
				go func(ki int, seed uint64, url string) {
					defer wg.Done()
					status, body := postSimulate(t, url, simBody(seed))
					if status != http.StatusOK {
						t.Errorf("seed %d via %s: HTTP %d: %s", seed, url, status, body)
						return
					}
					replies <- reply{key: ki, body: body}
				}(ki, seed, url)
			}
		}
	}
	wg.Wait()
	close(replies)

	refs := make([][]sre.Result, len(seeds))
	for rep := range replies {
		got := decodeSimulate(t, rep.body).Results
		if refs[rep.key] == nil {
			refs[rep.key] = got
			continue
		}
		if !reflect.DeepEqual(refs[rep.key], got) {
			t.Fatalf("seed %d: forwarded and owned results differ:\n%+v\nvs\n%+v",
				seeds[rep.key], refs[rep.key], got)
		}
	}

	// Exactly one build per key cluster-wide: forwarding moved the
	// requests, not the networks.
	builds := srvs[0].Registry().Builds() + srvs[1].Registry().Builds()
	if builds != int64(len(seeds)) {
		t.Fatalf("cluster-wide builds = %d, want %d (one per key)", builds, len(seeds))
	}
	for i, srv := range srvs {
		if got := srv.Registry().Builds(); got != 1 {
			t.Errorf("replica %d built %d networks, want 1 (each owns one key)", i, got)
		}
	}
	// Each replica forwarded the requests for the key it does not own.
	for i, url := range urls {
		m := scrapeMetrics(t, url)
		if got := m["sre_serve_forwarded_total"]; got != perTarget {
			t.Errorf("replica %d forwarded %v requests, want %d", i, got, perTarget)
		}
		if got := m["sre_serve_forward_errors_total"]; got != 0 {
			t.Errorf("replica %d forward errors = %v, want 0", i, got)
		}
	}
}

// TestForwardLoopGuard pins the one-hop rule: a request that already
// carries the forwarded stamp is answered locally even by a replica
// that does not own its key — never re-forwarded.
func TestForwardLoopGuard(t *testing.T) {
	srvs, urls, addrs := startCluster(t, 2, nil)
	ring := srvs[0].cluster.ring
	seedA := seedOwnedBy(t, ring, addrs[0]) // owned by replica 0

	// Hand replica 1 a pre-stamped request for replica 0's key.
	req, err := http.NewRequest(http.MethodPost, urls[1]+"/v1/simulate",
		bytes.NewReader([]byte(simBody(seedA))))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, addrs[0])
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stamped mis-owned request: HTTP %d: %s", resp.StatusCode, body)
	}

	// Replica 1 must have served it itself: one local build, zero
	// forwards from either replica (replica 0 never saw the request).
	if got := srvs[1].Registry().Builds(); got != 1 {
		t.Fatalf("replica 1 builds = %d, want 1 (stamped request served locally)", got)
	}
	if got := srvs[0].Registry().Builds(); got != 0 {
		t.Fatalf("replica 0 builds = %d, want 0 (request must not bounce back)", got)
	}
	for i, url := range urls {
		if got := scrapeMetrics(t, url)["sre_serve_forwarded_total"]; got != 0 {
			t.Fatalf("replica %d forwarded %v requests, want 0", i, got)
		}
	}
}

// TestForwardPropagatesRetryAfter is the regression test for the 503
// path: a forwarded 503 reaches the client with Retry-After: 1 and the
// owner's error body intact.
func TestForwardPropagatesRetryAfter(t *testing.T) {
	var stamped bool
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		stamped = r.Header.Get(ForwardHeader) != ""
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "stub owner saturated"})
	}))
	defer stub.Close()
	stubAddr := stub.Listener.Addr().String()

	var srv *Server
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		srv.ServeHTTP(w, r)
	}))
	selfAddr := ts.Listener.Addr().String()
	srv = NewServer(Options{Peers: []string{selfAddr, stubAddr}, Self: selfAddr})
	ts.Start()
	defer ts.Close()

	seed := seedOwnedBy(t, srv.cluster.ring, stubAddr)
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
		strings.NewReader(simBody(seed)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("forwarded 503: got HTTP %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("forwarded 503 Retry-After = %q, want \"1\"", got)
	}
	if !strings.Contains(string(body), "stub owner saturated") {
		t.Fatalf("owner's error body not relayed verbatim: %s", body)
	}
	if !stamped {
		t.Fatal("forwarded request did not carry the one-hop stamp")
	}
}

// TestForwardPropagatesCachedFlag: the second request for a forwarded
// key is served from the owner's result cache, and the cached flag
// (plus the bit-identical Results) survives the hop.
func TestForwardPropagatesCachedFlag(t *testing.T) {
	srvs, urls, addrs := startCluster(t, 2, nil)
	seed := seedOwnedBy(t, srvs[0].cluster.ring, addrs[1]) // owned by the *other* replica

	status, first := postSimulate(t, urls[0], simBody(seed))
	if status != http.StatusOK {
		t.Fatalf("first forwarded request: HTTP %d: %s", status, first)
	}
	status, second := postSimulate(t, urls[0], simBody(seed))
	if status != http.StatusOK {
		t.Fatalf("second forwarded request: HTTP %d: %s", status, second)
	}
	r1, r2 := decodeSimulate(t, first), decodeSimulate(t, second)
	if r1.Cached {
		t.Fatal("first forwarded request claims cached")
	}
	if !r2.Cached {
		t.Fatal("repeated forwarded request not served from the owner's result cache")
	}
	if !reflect.DeepEqual(r1.Results, r2.Results) {
		t.Fatalf("cached forwarded results differ:\n%+v\nvs\n%+v", r1.Results, r2.Results)
	}
}

// TestForwardPeerDown: a key owned by an unreachable peer yields a
// retryable 503, not a local build or a hang.
func TestForwardPeerDown(t *testing.T) {
	// Reserve a port, then close it, so the "peer" deterministically
	// refuses connections.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	var srv *Server
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		srv.ServeHTTP(w, r)
	}))
	selfAddr := ts.Listener.Addr().String()
	srv = NewServer(Options{Peers: []string{selfAddr, deadAddr}, Self: selfAddr})
	ts.Start()
	defer ts.Close()

	seed := seedOwnedBy(t, srv.cluster.ring, deadAddr)
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
		strings.NewReader(simBody(seed)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("peer-down forward: got HTTP %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("peer-down 503 Retry-After = %q, want \"1\"", got)
	}
	if got := srv.Registry().Builds(); got != 0 {
		t.Fatalf("peer-down forward built locally (%d builds); ownership must stay with the ring", got)
	}
	if got := scrapeMetrics(t, ts.URL)["sre_serve_forward_errors_total"]; got != 1 {
		t.Fatalf("sre_serve_forward_errors_total = %v, want 1", got)
	}
}

// TestNetworksResidentDetail: /v1/networks reports per-network size,
// pin count, and (cluster mode) the owning replica.
func TestNetworksResidentDetail(t *testing.T) {
	srvs, urls, addrs := startCluster(t, 2, nil)
	seed := seedOwnedBy(t, srvs[0].cluster.ring, addrs[0])
	if status, body := postSimulate(t, urls[0], simBody(seed)); status != http.StatusOK {
		t.Fatalf("simulate: HTTP %d: %s", status, body)
	}

	resp, err := http.Get(urls[0] + "/v1/networks")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var nr NetworksResponse
	if err := json.NewDecoder(resp.Body).Decode(&nr); err != nil {
		t.Fatal(err)
	}
	if nr.Self != addrs[0] || len(nr.Peers) != 2 {
		t.Fatalf("cluster shape not reported: self=%q peers=%v", nr.Self, nr.Peers)
	}
	if len(nr.ResidentDetail) != 1 {
		t.Fatalf("resident_detail = %+v, want exactly the one built network", nr.ResidentDetail)
	}
	d := nr.ResidentDetail[0]
	if d.Key != nr.Resident[0] {
		t.Fatalf("detail key %q != resident key %q", d.Key, nr.Resident[0])
	}
	if d.SizeBytes <= 0 {
		t.Fatalf("resident size_bytes = %d, want > 0", d.SizeBytes)
	}
	if d.Pinned != 0 {
		t.Fatalf("resident pinned = %d, want 0 (no sweep in flight)", d.Pinned)
	}
	if d.Owner != addrs[0] {
		t.Fatalf("resident owner = %q, want %q", d.Owner, addrs[0])
	}
}
