package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestGateDepthAndDrain(t *testing.T) {
	g := NewGate(2)
	if err := g.Enter(); err != nil {
		t.Fatal(err)
	}
	if err := g.Enter(); err != nil {
		t.Fatal(err)
	}
	if err := g.Enter(); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third Enter = %v, want ErrSaturated", err)
	}
	if got := g.Inflight(); got != 2 {
		t.Fatalf("inflight = %d", got)
	}

	done := g.Close()
	if err := g.Enter(); !errors.Is(err, ErrDraining) {
		t.Fatalf("Enter after Close = %v, want ErrDraining", err)
	}
	select {
	case <-done:
		t.Fatal("drained before in-flight left")
	default:
	}
	g.Leave()
	g.Leave()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("drain signal never arrived")
	}
	// A second Close on an already-drained gate resolves immediately.
	select {
	case <-g.Close():
	case <-time.After(time.Second):
		t.Fatal("second Close did not resolve")
	}
}

func TestGateCloseIdleResolvesImmediately(t *testing.T) {
	g := NewGate(4)
	select {
	case <-g.Close():
	case <-time.After(time.Second):
		t.Fatal("idle Close did not resolve")
	}
}

func TestBudgetBlocksAndHonorsContext(t *testing.T) {
	b := NewBudget(1)
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := b.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second Acquire = %v, want DeadlineExceeded", err)
	}
	b.Release()
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire after Release: %v", err)
	}
	b.Release()
}
