// Package serve is the sreserved simulation service: a long-lived
// HTTP/JSON front end over the sre library that keeps built networks
// resident (registry.go), admits a bounded number of concurrent
// requests (admission.go), coalesces same-key requests into shared
// sweeps (batcher.go), and drains gracefully on shutdown. One process
// amortizes Load's workload synthesis and the simulator's plan and
// window-code caches across every request that hits the same design
// point — the serving shape ReRAM accelerator stacks assume, where the
// compressed structures are built once and reused.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"sre"
	"sre/internal/metrics"
)

// Options configures a Server. The zero value serves with the
// defaults noted per field.
type Options struct {
	// MaxQueue bounds admitted-but-unfinished requests (default 64);
	// excess requests get 503 + Retry-After instead of queueing
	// without bound.
	MaxQueue int
	// MaxSweeps caps concurrent simulation sweeps (default 2), so
	// admitted requests cannot oversubscribe the worker pool.
	MaxSweeps int
	// BatchWindow is the micro-batcher's coalescing delay (default
	// 2ms; negative disables coalescing so every request sweeps alone).
	BatchWindow time.Duration
	// Workers is the per-sweep worker-pool width (0 = GOMAXPROCS).
	Workers int
	// DefaultTimeout applies when a request carries no timeout_ms
	// (default 60s); MaxTimeout caps what a request may ask for
	// (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Metrics receives both the server's own counters and every
	// sweep's simulator metrics; /metrics serves it. NewServer creates
	// one when nil.
	Metrics *metrics.Registry
	// SnapshotDir, when non-empty, makes cold registry keys consult
	// (and populate) a network-snapshot directory before building, so
	// restarts and replicas sharing the directory start warm.
	// sre_serve_snapshot_{hits,misses}_total count the outcomes.
	SnapshotDir string
	// ResultCacheBytes bounds the deterministic result cache (default
	// 256 MiB; negative disables caching). Repeated (design point, mode,
	// act_seed) requests are answered from the cache without sweeping,
	// bit-identical and flagged "cached" in the response.
	ResultCacheBytes int64
	// RegistryBytes bounds the resident-network registry's accounted
	// bytes (default 0 = unbounded). Past the cap the least-recently-
	// used networks not pinned by a running sweep are evicted.
	RegistryBytes int64
	// Peers lists every replica address of a sharded cluster,
	// including this one (order-insensitive; empty = single-replica
	// mode, byte-identical to pre-cluster behavior). Registry keys are
	// partitioned over the peers by consistent hashing, and requests
	// for keys this replica does not own are forwarded one hop to the
	// owner.
	Peers []string
	// Self is this replica's own address as it appears in Peers.
	// Required when Peers is non-empty; NewServer panics if it is
	// missing from the list (a misconfigured replica would silently
	// forward its own keys away).
	Self string
}

func (o Options) withDefaults() Options {
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 2
	}
	if o.BatchWindow == 0 {
		o.BatchWindow = 2 * time.Millisecond
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 60 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 5 * time.Minute
	}
	if o.ResultCacheBytes == 0 {
		o.ResultCacheBytes = 256 << 20
	}
	if o.Metrics == nil {
		o.Metrics = metrics.NewRegistry()
	}
	return o
}

// Server is the simulation service. Create one with NewServer; it
// implements http.Handler.
type Server struct {
	opts     Options
	registry *Registry
	gate     *Gate
	batcher  *Batcher
	cluster  *cluster // nil in single-replica mode
	mux      *http.ServeMux
	stop     context.CancelFunc // cancels the sweeps' base context

	requests *metrics.Counter
	rejected *metrics.Counter
	timeouts *metrics.Counter
	inflight *metrics.Gauge
}

// NewServer returns a ready-to-serve Server.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	base, stop := context.WithCancel(context.Background())
	shard := opts.Metrics.Shard()
	window := opts.BatchWindow
	if window < 0 {
		window = 0
	}
	s := &Server{
		opts:     opts,
		registry: NewRegistry(),
		gate:     NewGate(opts.MaxQueue),
		stop:     stop,
		requests: shard.Counter("sre_serve_requests_total"),
		rejected: shard.Counter("sre_serve_rejected_total"),
		timeouts: shard.Counter("sre_serve_timeouts_total"),
		inflight: shard.Gauge("sre_serve_inflight_requests"),
	}
	s.gate.Track(s.inflight)
	s.registry.CountBuilds(shard.Counter("sre_serve_registry_builds_total"))
	if len(opts.Peers) > 0 {
		c, err := newCluster(opts.Peers, opts.Self, shard)
		if err != nil {
			panic(err) // startup misconfiguration; cmd/sreserved validates first
		}
		s.cluster = c
	}
	if opts.SnapshotDir != "" {
		s.registry.UseSnapshots(opts.SnapshotDir,
			shard.Counter("sre_serve_snapshot_hits_total"),
			shard.Counter("sre_serve_snapshot_misses_total"))
	}
	if opts.RegistryBytes > 0 {
		s.registry.Bound(opts.RegistryBytes,
			shard.Counter("sre_serve_registry_evictions_total"),
			shard.Counter("sre_serve_registry_evicted_bytes_total"),
			shard.Gauge("sre_serve_registry_bytes"))
	}
	cache := NewResultCache(opts.ResultCacheBytes,
		shard.Counter("sre_serve_result_cache_hits_total"),
		shard.Counter("sre_serve_result_cache_misses_total"),
		shard.Counter("sre_serve_result_cache_evictions_total"),
		shard.Gauge("sre_serve_result_cache_bytes"))
	s.batcher = NewBatcher(s.registry, NewBudget(opts.MaxSweeps), cache, window,
		opts.Workers, base, shard, sre.WithMetrics(opts.Metrics))
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("GET /v1/networks", s.handleNetworks)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", opts.Metrics.Handler())
	s.mux = mux
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics returns the server's registry (for the drain-time snapshot).
func (s *Server) Metrics() *metrics.Registry { return s.opts.Metrics }

// Registry exposes the resident-network registry (read-mostly; tests
// assert its build-once invariant).
func (s *Server) Registry() *Registry { return s.registry }

// Drain gracefully shuts the service down: stop admitting (new
// requests get 503), let every in-flight request finish, then cancel
// the sweeps' base context. Returns nil once drained, or ctx.Err if
// ctx ends first (in-flight sweeps are then cancelled mid-run). Pair
// it with http.Server.Shutdown, which drains the connections.
func (s *Server) Drain(ctx context.Context) error {
	done := s.gate.Close()
	select {
	case <-done:
		s.stop()
		return nil
	case <-ctx.Done():
		s.stop()
		return ctx.Err()
	}
}

// SimulateRequest is the POST /v1/simulate body. Exactly the canonical
// spellings the CLIs use: modes via sre.ParseMode (the registry's full
// list — "baseline" through "orc+dof+wss"), prune styles via
// sre.ParsePruneStyle. An unknown mode spelling is a 400 whose error
// body names the rejected mode and the accepted list.
type SimulateRequest struct {
	// Network is a Table 2 name (GET /v1/networks lists them).
	Network string `json:"network"`
	// Prune is ssl|gsl|dense (default ssl).
	Prune string `json:"prune,omitempty"`
	// Mode names one mode; Modes names several (or ["all"]). At least
	// one of the two must be set.
	Mode  string   `json:"mode,omitempty"`
	Modes []string `json:"modes,omitempty"`
	// Config overrides individual fields of the default design point.
	Config ConfigOverrides `json:"config"`
	// ActSeed, when non-zero, re-derives the network's activations from
	// this seed (same statistics, independent random stream; weights
	// and compression structures unchanged). Requests that differ only
	// in act_seed coalesce into one batched multi-activation sweep.
	ActSeed uint64 `json:"act_seed,omitempty"`
	// TimeoutMillis is the per-request deadline; 0 means the server
	// default. The deadline propagates into the simulation via context
	// cancellation; an expired request gets 504.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// ConfigOverrides patches sre.DefaultConfig field by field. Build-
// scoped fields select the resident network; run-scoped fields
// (max_windows, index_bits) apply per request on the shared instance.
type ConfigOverrides struct {
	Crossbar   *int    `json:"crossbar,omitempty"`
	OU         *int    `json:"ou,omitempty"` // square OU size
	WeightBits *int    `json:"weight_bits,omitempty"`
	ActBits    *int    `json:"act_bits,omitempty"`
	CellBits   *int    `json:"cell_bits,omitempty"`
	DACBits    *int    `json:"dac_bits,omitempty"`
	IndexBits  *int    `json:"index_bits,omitempty"`
	MaxWindows *int    `json:"max_windows,omitempty"`
	SliceCap   *int    `json:"slice_cap,omitempty"` // weight bit-slice cap (build-scoped; wss elision)
	Seed       *uint64 `json:"seed,omitempty"`
}

func (o ConfigOverrides) apply(cfg sre.Config) sre.Config {
	if o.Crossbar != nil {
		cfg.CrossbarSize = *o.Crossbar
	}
	if o.OU != nil {
		cfg.OUHeight, cfg.OUWidth = *o.OU, *o.OU
	}
	if o.WeightBits != nil {
		cfg.WeightBits = *o.WeightBits
	}
	if o.ActBits != nil {
		cfg.ActivationBits = *o.ActBits
	}
	if o.CellBits != nil {
		cfg.CellBits = *o.CellBits
	}
	if o.DACBits != nil {
		cfg.DACBits = *o.DACBits
	}
	if o.IndexBits != nil {
		cfg.IndexBits = *o.IndexBits
	}
	if o.MaxWindows != nil {
		cfg.MaxWindows = *o.MaxWindows
	}
	if o.SliceCap != nil {
		cfg.SliceCap = *o.SliceCap
	}
	if o.Seed != nil {
		cfg.Seed = *o.Seed
	}
	return cfg
}

// SimulateResponse is the POST /v1/simulate reply. Results come back
// in the order the request named its modes; each Result is
// bit-identical to a direct Network.RunContext with the same options
// (the sweep-wide metrics snapshot is stripped — scrape /metrics for
// the aggregate view). Each Result carries its wire-format version
// (sre.ResultVersion, currently 2: version 2 added the "wss" and
// "orc+dof+wss" mode spellings and the elided-group count).
type SimulateResponse struct {
	Network   string       `json:"network"`
	Prune     string       `json:"prune"`
	BatchSize int          `json:"batch_size"` // requests that shared the sweep
	Cached    bool         `json:"cached"`     // served from the result cache, no sweep
	Results   []sre.Result `json:"results"`
}

// NetworksResponse is the GET /v1/networks reply.
type NetworksResponse struct {
	// Networks lists every loadable Table 2 name.
	Networks []string `json:"networks"`
	// Resident lists the built, cached design points.
	Resident []string `json:"resident"`
	// ResidentDetail reports, per resident design point, the accounted
	// size, the pin count (sweeps currently running against it), and —
	// in cluster mode — the replica the ring says owns it, so eviction
	// and rebalancing behavior are observable from the outside.
	ResidentDetail []ResidentNetwork `json:"resident_detail,omitempty"`
	// Builds counts network builds since startup.
	Builds int64 `json:"builds"`
	// Self and Peers describe the cluster shape (cluster mode only).
	Self  string   `json:"self,omitempty"`
	Peers []string `json:"peers,omitempty"`
}

// ResidentNetwork is one resident design point's observability row.
type ResidentNetwork struct {
	Key       string `json:"key"`
	SizeBytes int64  `json:"size_bytes"`
	Pinned    int    `json:"pinned"`
	Owner     string `json:"owner,omitempty"` // cluster mode: ring owner
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleNetworks(w http.ResponseWriter, r *http.Request) {
	resident := s.registry.Resident()
	resp := NetworksResponse{
		Networks: sre.Networks(),
		Resident: make([]string, len(resident)),
		Builds:   s.registry.Builds(),
	}
	if len(resident) > 0 {
		resp.ResidentDetail = make([]ResidentNetwork, len(resident))
	}
	for i, ri := range resident {
		ks := ri.Key.String()
		resp.Resident[i] = ks
		if resp.ResidentDetail != nil {
			resp.ResidentDetail[i] = ResidentNetwork{Key: ks, SizeBytes: ri.SizeBytes, Pinned: ri.Pinned}
			if s.cluster != nil {
				resp.ResidentDetail[i].Owner = s.cluster.ring.Owner(ks)
			}
		}
	}
	if s.cluster != nil {
		resp.Self = s.cluster.self
		resp.Peers = s.cluster.ring.Nodes()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	var req SimulateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	key, batchKey, modes, status, err := s.resolve(req)
	if err != nil {
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}

	// Cluster mode: a key this replica does not own is proxied one hop
	// to its owner — before admission, so forwarded traffic queues at
	// the owner's gate, not twice. A request already stamped by a peer
	// is answered locally no matter what this replica's ring says
	// (one-hop cap: disagreeing rings can mis-place a key, never loop).
	if s.cluster != nil && r.Header.Get(ForwardHeader) == "" {
		if owner, local := s.cluster.owner(key); !local {
			s.forward(w, r, owner, req)
			return
		}
	}

	if err := s.gate.Enter(); err != nil {
		s.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	defer s.gate.Leave()

	timeout := s.opts.DefaultTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	if timeout > s.opts.MaxTimeout {
		timeout = s.opts.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	results, size, cached, err := s.batcher.Do(ctx, batchKey, modes, req.ActSeed)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Inc()
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "deadline exceeded"})
		return
	case errors.Is(err, context.Canceled), errors.Is(err, ErrDraining):
		// Client went away or the server is stopping mid-flight. Both
		// are retryable against a healthy replica, so advertise that
		// like every other 503 this server emits.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "request cancelled"})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, SimulateResponse{
		Network:   key.Network,
		Prune:     key.Prune.String(),
		BatchSize: size,
		Cached:    cached,
		Results:   results,
	})
}

// resolve validates a request into its registry key, batch key, and
// mode list, returning the HTTP status to use on error.
func (s *Server) resolve(req SimulateRequest) (Key, BatchKey, []sre.Mode, int, error) {
	known := false
	for _, n := range sre.Networks() {
		if n == req.Network {
			known = true
			break
		}
	}
	if !known {
		return Key{}, BatchKey{}, nil, http.StatusNotFound,
			fmt.Errorf("unknown network %q (GET /v1/networks lists them)", req.Network)
	}
	prune := sre.SSL
	if req.Prune != "" {
		var err error
		if prune, err = sre.ParsePruneStyle(req.Prune); err != nil {
			return Key{}, BatchKey{}, nil, http.StatusBadRequest, err
		}
	}
	names := req.Modes
	if req.Mode != "" {
		names = append([]string{req.Mode}, names...)
	}
	if len(names) == 0 {
		return Key{}, BatchKey{}, nil, http.StatusBadRequest,
			fmt.Errorf(`request names no modes (set "mode" or "modes"; "all" selects every mode)`)
	}
	var modes []sre.Mode
	for _, name := range names {
		if name == "all" {
			for _, m := range sre.Modes() {
				if !containsMode(modes, m) {
					modes = append(modes, m)
				}
			}
			continue
		}
		m, err := sre.ParseMode(name)
		if err != nil {
			return Key{}, BatchKey{}, nil, http.StatusBadRequest, err
		}
		if !containsMode(modes, m) {
			modes = append(modes, m)
		}
	}
	cfg := req.Config.apply(sre.DefaultConfig())
	if err := cfg.Validate(); err != nil {
		return Key{}, BatchKey{}, nil, http.StatusBadRequest, err
	}
	key := KeyFor(req.Network, prune, cfg)
	return key, BatchKey{Key: key, MaxWindows: cfg.MaxWindows, IndexBits: cfg.IndexBits},
		modes, 0, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
