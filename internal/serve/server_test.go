package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"sre"
)

// directMNIST builds MNIST once, directly through the library, as the
// reference the served results must be bit-identical to.
var (
	directOnce sync.Once
	directNet  *sre.Network
	directErr  error
)

func mnistDirect(t *testing.T) *sre.Network {
	t.Helper()
	directOnce.Do(func() { directNet, directErr = sre.Load("MNIST") })
	if directErr != nil {
		t.Fatalf("direct Load(MNIST): %v", directErr)
	}
	return directNet
}

// expect runs mode directly with the given run options; served results
// must DeepEqual this (both sides carry no metrics snapshot).
func expect(t *testing.T, mode sre.Mode, opts ...sre.Option) sre.Result {
	t.Helper()
	res, err := mnistDirect(t).RunContext(context.Background(), mode, opts...)
	if err != nil {
		t.Fatalf("direct Run(%v): %v", mode, err)
	}
	res.Metrics = nil
	return res
}

func postSimulate(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/simulate: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b
}

func decodeSimulate(t *testing.T, b []byte) SimulateResponse {
	t.Helper()
	var out SimulateResponse
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("decode response %s: %v", b, err)
	}
	return out
}

// parsePromErr parses the Prometheus text exposition into name → value,
// reporting the first malformed line.
func parsePromErr(body []byte) (map[string]float64, error) {
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out, nil
}

func parseProm(t *testing.T, body []byte) map[string]float64 {
	t.Helper()
	vals, err := parsePromErr(body)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

func TestServedResultBitIdentical(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	status, body := postSimulate(t, ts.URL,
		`{"network":"MNIST","modes":["baseline","orc+dof","dof"],"config":{"max_windows":6}}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	resp := decodeSimulate(t, body)
	if resp.Network != "MNIST" || resp.Prune != "ssl" {
		t.Fatalf("echoed identity = %q/%q", resp.Network, resp.Prune)
	}
	if resp.BatchSize < 1 {
		t.Fatalf("batch_size = %d", resp.BatchSize)
	}
	wantModes := []sre.Mode{sre.Baseline, sre.ORCDOF, sre.DOF}
	if len(resp.Results) != len(wantModes) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(wantModes))
	}
	for i, m := range wantModes {
		want := expect(t, m, sre.WithMaxWindows(6))
		if !reflect.DeepEqual(resp.Results[i], want) {
			t.Errorf("mode %v: served result differs from direct RunContext\n got %+v\nwant %+v",
				m, resp.Results[i], want)
		}
	}
}

// TestSimulateWSSRoundTrip proves the version-2 wire surface end to
// end: the wss spellings parse, slice_cap selects its own resident
// design point, and the served result is bit-identical to a direct
// run with the same build options.
func TestSimulateWSSRoundTrip(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	status, body := postSimulate(t, ts.URL,
		`{"network":"MNIST","modes":["orc+dof","orc+dof+wss"],"config":{"max_windows":6,"slice_cap":2}}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	resp := decodeSimulate(t, body)
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(resp.Results))
	}
	net, err := sre.Load("MNIST", sre.WithMaxWindows(6), sre.WithSliceCap(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, mode := range []sre.Mode{sre.ORCDOF, sre.ORCDOFWSS} {
		want, err := net.RunContext(context.Background(), mode, sre.WithMaxWindows(6))
		if err != nil {
			t.Fatal(err)
		}
		want.Metrics = nil
		if !reflect.DeepEqual(resp.Results[i], want) {
			t.Errorf("mode %v: served result differs from direct run\n got %+v\nwant %+v",
				mode, resp.Results[i], want)
		}
	}
	if resp.Results[1].Version != 2 {
		t.Fatalf("Result.Version = %d, want 2", resp.Results[1].Version)
	}
	// The capped design point must be resident under its own key.
	found := false
	for _, k := range srv.Registry().Keys() {
		if strings.Contains(k.String(), "slicecap2") {
			found = true
		}
	}
	if !found {
		t.Fatal("slice-capped design point not resident under a slicecap key")
	}
}

func TestSimulateRequestValidation(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		body string
		want int
	}{
		{`{"network":"NoSuchNet","mode":"orc"}`, http.StatusNotFound},
		{`{"network":"MNIST"}`, http.StatusBadRequest},                            // no modes
		{`{"network":"MNIST","mode":"warp-drive"}`, http.StatusBadRequest},        // bad mode
		{`{"network":"MNIST","mode":"orc","prune":"zap"}`, http.StatusBadRequest}, // bad prune
		{`{"network":"MNIST","mode":"orc","config":{"crossbar":-4}}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if status, body := postSimulate(t, ts.URL, c.body); status != c.want {
			t.Errorf("%s: status %d (want %d): %s", c.body, status, c.want, body)
		}
	}
	// An unknown mode's 400 must name the rejected spelling so clients
	// can tell a typo from a version skew.
	if status, body := postSimulate(t, ts.URL, `{"network":"MNIST","mode":"warp-drive"}`); status != http.StatusBadRequest ||
		!strings.Contains(string(body), "warp-drive") {
		t.Errorf("unknown-mode reject does not name the mode: status %d body %s", status, body)
	}
	// None of the rejects may have built anything.
	if got := srv.Registry().Builds(); got != 0 {
		t.Fatalf("Builds() = %d after validation rejects, want 0", got)
	}
}

func TestDeadlineExceededDoesNotPoison(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// 1ms is far below CIFAR-10's build cost: the request must time out.
	status, body := postSimulate(t, ts.URL,
		`{"network":"CIFAR-10","mode":"orc+dof","config":{"max_windows":4},"timeout_ms":1}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d (want 504): %s", status, body)
	}

	// The same key must now succeed with a sane deadline — the timed-out
	// request neither cached a failure nor wedged the entry.
	status, body = postSimulate(t, ts.URL,
		`{"network":"CIFAR-10","mode":"orc+dof","config":{"max_windows":4},"timeout_ms":60000}`)
	if status != http.StatusOK {
		t.Fatalf("follow-up status %d (want 200): %s", status, body)
	}
	resp := decodeSimulate(t, body)
	if len(resp.Results) != 1 || resp.Results[0].Mode != sre.ORCDOF {
		t.Fatalf("follow-up results = %+v", resp.Results)
	}
	// The abandoned request's build completed and was reused.
	if got := srv.Registry().Builds(); got != 1 {
		t.Fatalf("Builds() = %d, want 1", got)
	}
}

func TestConcurrentSameKeyBuildsOnce(t *testing.T) {
	srv := NewServer(Options{MaxQueue: 64, MaxSweeps: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	modes := sre.Modes()
	const clients = 16
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mode := modes[i%len(modes)]
			status, body := postSimulate(t, ts.URL, fmt.Sprintf(
				`{"network":"MNIST","mode":%q,"config":{"max_windows":6}}`, mode))
			if status != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, status, body)
			}
		}(i)
	}
	wg.Wait()
	if got := srv.Registry().Builds(); got != 1 {
		t.Fatalf("Builds() = %d after %d concurrent same-key requests, want 1", got, clients)
	}

	// /v1/networks reflects the one resident design point.
	resp, err := http.Get(ts.URL + "/v1/networks")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var nets NetworksResponse
	if err := json.NewDecoder(resp.Body).Decode(&nets); err != nil {
		t.Fatal(err)
	}
	if nets.Builds != 1 || len(nets.Resident) != 1 {
		t.Fatalf("networks = %+v, want builds 1 / one resident key", nets)
	}
	if !strings.HasPrefix(nets.Resident[0], "MNIST/ssl/") {
		t.Fatalf("resident key = %q", nets.Resident[0])
	}
}

func TestBatchCoalescing(t *testing.T) {
	srv := NewServer(Options{BatchWindow: 150 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Two same-key requests inside one window must share a sweep.
	var wg sync.WaitGroup
	sizes := make([]int, 2)
	for i, mode := range []string{"orc", "dof"} {
		wg.Add(1)
		go func(i int, mode string) {
			defer wg.Done()
			status, body := postSimulate(t, ts.URL, fmt.Sprintf(
				`{"network":"MNIST","mode":%q,"config":{"max_windows":6}}`, mode))
			if status != http.StatusOK {
				t.Errorf("status %d: %s", status, body)
				return
			}
			sizes[i] = decodeSimulate(t, body).BatchSize
		}(i, mode)
	}
	wg.Wait()
	if sizes[0] != 2 || sizes[1] != 2 {
		t.Fatalf("batch sizes = %v, want [2 2]", sizes)
	}

	// The batcher's own counters agree: one sweep, one coalesced rider.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	vals := parseProm(t, b)
	if vals["sre_serve_sweeps_total"] != 1 {
		t.Errorf("sre_serve_sweeps_total = %v, want 1", vals["sre_serve_sweeps_total"])
	}
	if vals["sre_serve_coalesced_requests_total"] != 1 {
		t.Errorf("sre_serve_coalesced_requests_total = %v, want 1",
			vals["sre_serve_coalesced_requests_total"])
	}
	// Coalesced results are still bit-identical per requester.
}

func TestLoadBitIdenticalAndMetricsMidLoad(t *testing.T) {
	srv := NewServer(Options{MaxQueue: 64, MaxSweeps: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	modes := sre.Modes()
	want := map[sre.Mode]sre.Result{}
	for _, m := range modes {
		want[m] = expect(t, m, sre.WithMaxWindows(6))
	}

	const clients = 32
	stopScrape := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		// Scrape /metrics continuously while the load runs; every body
		// must parse as well-formed Prometheus text.
		defer close(scrapeDone)
		for {
			select {
			case <-stopScrape:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Errorf("mid-load /metrics: %v", err)
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if _, err := parsePromErr(b); err != nil {
				t.Errorf("mid-load /metrics: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mode := modes[i%len(modes)]
			status, body := postSimulate(t, ts.URL, fmt.Sprintf(
				`{"network":"MNIST","mode":%q,"config":{"max_windows":6}}`, mode))
			if status != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, status, body)
				return
			}
			resp := decodeSimulate(t, body)
			if len(resp.Results) != 1 {
				t.Errorf("client %d: %d results", i, len(resp.Results))
				return
			}
			if !reflect.DeepEqual(resp.Results[0], want[mode]) {
				t.Errorf("client %d mode %v: served result differs from direct RunContext", i, mode)
			}
		}(i)
	}
	wg.Wait()
	close(stopScrape)
	<-scrapeDone

	if got := srv.Registry().Builds(); got != 1 {
		t.Fatalf("Builds() = %d, want 1", got)
	}
	// The registry aggregated request-side counters under load.
	vals := parseProm(t, promBody(t, ts.URL))
	if vals["sre_serve_requests_total"] < clients {
		t.Errorf("sre_serve_requests_total = %v, want >= %d", vals["sre_serve_requests_total"], clients)
	}
}

func promBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDrainFinishesInflightThenRejects(t *testing.T) {
	srv := NewServer(Options{MaxQueue: 64, MaxSweeps: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	want := expect(t, sre.ORC, sre.WithMaxWindows(12))

	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := postSimulate(t, ts.URL,
				`{"network":"MNIST","mode":"orc","config":{"max_windows":12}}`)
			if status != http.StatusOK {
				t.Errorf("in-flight client %d: status %d: %s", i, status, body)
				return
			}
			resp := decodeSimulate(t, body)
			if len(resp.Results) != 1 || !reflect.DeepEqual(resp.Results[0], want) {
				t.Errorf("in-flight client %d: result differs from direct RunContext", i)
			}
		}(i)
	}

	// Wait until the burst is admitted (the cold build holds every
	// request in flight), then drain under it.
	deadline := time.Now().Add(5 * time.Second)
	for srv.gate.Inflight() < clients && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait() // every admitted request completed with a full 200 response

	// Post-drain requests bounce with 503, not a connection error.
	status, body := postSimulate(t, ts.URL, `{"network":"MNIST","mode":"orc"}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status %d (want 503): %s", status, body)
	}
	if !bytes.Contains(body, []byte("draining")) {
		t.Fatalf("post-drain body %s", body)
	}
}

func TestHealthz(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(b)) != "ok" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, b)
	}
}

// TestActSeedCoalescing is the serving half of the batched
// multi-activation tentpole: requests that differ only in act_seed
// must coalesce into ONE sweep (one batched RunBatchContext under the
// hood), and each requester's results must be bit-identical to the
// same request swept alone — including the act_seed 0 requester, whose
// solo path is the historical RunModesContext sweep.
func TestActSeedCoalescing(t *testing.T) {
	reqBody := func(seed uint64) string {
		return fmt.Sprintf(
			`{"network":"MNIST","modes":["dof","orc+dof","baseline"],"config":{"max_windows":6},"act_seed":%d}`,
			seed)
	}
	seeds := []uint64{0, 41, 42}

	// Solo references: coalescing disabled, every request sweeps alone.
	solo := NewServer(Options{BatchWindow: -1})
	tsSolo := httptest.NewServer(solo)
	defer tsSolo.Close()
	want := make([]SimulateResponse, len(seeds))
	for i, s := range seeds {
		status, body := postSimulate(t, tsSolo.URL, reqBody(s))
		if status != http.StatusOK {
			t.Fatalf("solo seed %d: status %d: %s", s, status, body)
		}
		want[i] = decodeSimulate(t, body)
	}
	if reflect.DeepEqual(want[0].Results, want[1].Results) {
		t.Fatal("act_seed had no effect on solo results")
	}

	// Concurrent requests inside one window, differing only in act_seed.
	srv := NewServer(Options{BatchWindow: 200 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	var wg sync.WaitGroup
	got := make([]SimulateResponse, len(seeds))
	for i, s := range seeds {
		wg.Add(1)
		go func(i int, s uint64) {
			defer wg.Done()
			status, body := postSimulate(t, ts.URL, reqBody(s))
			if status != http.StatusOK {
				t.Errorf("batched seed %d: status %d: %s", s, status, body)
				return
			}
			got[i] = decodeSimulate(t, body)
		}(i, s)
	}
	wg.Wait()
	for i, s := range seeds {
		if got[i].BatchSize != len(seeds) {
			t.Errorf("seed %d: batch_size = %d, want %d", s, got[i].BatchSize, len(seeds))
		}
		if !reflect.DeepEqual(got[i].Results, want[i].Results) {
			t.Errorf("seed %d: coalesced results differ from solo sweep", s)
		}
	}

	// The batcher agrees it ran exactly one sweep for the three.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	vals := parseProm(t, b)
	if vals["sre_serve_sweeps_total"] != 1 {
		t.Errorf("sre_serve_sweeps_total = %v, want 1", vals["sre_serve_sweeps_total"])
	}
	if vals["sre_serve_coalesced_requests_total"] != 2 {
		t.Errorf("sre_serve_coalesced_requests_total = %v, want 2",
			vals["sre_serve_coalesced_requests_total"])
	}
}
