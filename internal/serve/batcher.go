// Micro-batcher: coalesces requests that can share one sweep. Two
// requests agree on a BatchKey when they target the same resident
// network with the same result-affecting run options; the batcher
// holds the first such request for a short coalescing window, merges
// the mode sets — and the activation seeds — of every request that
// arrives meanwhile, runs the union as a single sweep (one pass over
// the shared window-code planes and plan caches instead of one per
// request), and fans the per-(seed, mode) results back out to each
// waiter. Requests that differ only in their activation seed still
// coalesce: the union runs as one batched multi-activation sweep
// (sre.RunBatchContext), which shares all activation-independent work
// across the seeds, so the sweep is sub-linear in the number of
// distinct seeds.
//
// Result cache: because runs are deterministic, a (BatchKey, mode,
// act_seed) cell that has been swept before needs no sweep at all. A
// request whose every cell is cached is answered straight from Do —
// no coalescing delay, no sweep slot; a claimed batch whose union is
// fully cached is delivered before acquiring a sweep slot. Either way
// the response is the bit-identical Result a sweep would have
// produced, flagged cached, and sre_serve_sweeps_total does not move.
//
// Deadlines: each waiter gives up individually when its own context
// ends — a 504 for that request only. The sweep itself is cancelled
// (through the sre.RunContext cancellation path) only when every
// waiter has abandoned it, so one impatient client cannot kill a
// result another client is still waiting for.
package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"sre"
	"sre/internal/metrics"
)

// BatchKey groups requests that may share one sweep: the resident
// network plus every run option that changes results. (Worker width
// and the code cache do not — results are bit-identical either way.
// The activation seed changes results but deliberately stays out of
// the key: differing seeds coalesce into one batched multi-activation
// sweep and fan back out per seed.)
type BatchKey struct {
	Key        Key
	MaxWindows int
	IndexBits  int
}

// Batcher coalesces and executes sweeps. Create one with NewBatcher.
type Batcher struct {
	registry *Registry
	budget   *Budget
	cache    *ResultCache // nil disables result caching
	window   time.Duration
	workers  int
	opts     []sre.Option // extra run options (e.g. WithMetrics)
	base     context.Context

	mu      sync.Mutex
	pending map[BatchKey]*batch

	sweeps    *metrics.Counter
	coalesced *metrics.Counter
	cancels   *metrics.Counter
}

type batch struct {
	modes   []sre.Mode // union, first-seen order
	acts    []uint64   // distinct activation seeds, first-seen order
	waiters []*waiter
}

type waiter struct {
	ctx     context.Context
	modes   []sre.Mode
	actSeed uint64
	ch      chan batchResult // buffered; delivery never blocks the sweep
}

type batchResult struct {
	byAct  map[uint64]map[sre.Mode]sre.Result
	size   int // how many requests shared the sweep
	cached bool
	err    error
}

// NewBatcher returns a batcher executing against registry under
// budget, consulting (and populating) cache when it is non-nil.
// window is the coalescing delay (<=0 disables coalescing: every
// request claims its batch synchronously and sweeps alone); workers is
// the per-sweep pool width (0 = GOMAXPROCS); base bounds every sweep's
// lifetime (the server's run context); shard receives the batcher's
// counters (nil-safe); runOpts are appended to every sweep (the server
// passes WithMetrics).
func NewBatcher(registry *Registry, budget *Budget, cache *ResultCache, window time.Duration,
	workers int, base context.Context, shard *metrics.Shard, runOpts ...sre.Option) *Batcher {
	return &Batcher{
		registry:  registry,
		budget:    budget,
		cache:     cache,
		window:    window,
		workers:   workers,
		opts:      runOpts,
		base:      base,
		pending:   map[BatchKey]*batch{},
		sweeps:    shard.Counter("sre_serve_sweeps_total"),
		coalesced: shard.Counter("sre_serve_coalesced_requests_total"),
		cancels:   shard.Counter("sre_serve_sweep_cancels_total"),
	}
}

// Do submits one request (key + the modes it wants + its activation
// seed, 0 = the network's own activations) and blocks until its
// results arrive or ctx ends. Returns the results in the order modes
// was given, how many requests shared the sweep, and whether the
// response came from the result cache without sweeping.
func (b *Batcher) Do(ctx context.Context, key BatchKey, modes []sre.Mode, actSeed uint64) ([]sre.Result, int, bool, error) {
	// Fast path: a fully cached request is answered immediately — it
	// never joins a batch, waits out a coalescing window, or takes a
	// sweep slot.
	if res, ok := b.cache.Lookup(key, modes, actSeed); ok {
		return res, 1, true, nil
	}

	w := &waiter{ctx: ctx, modes: modes, actSeed: actSeed, ch: make(chan batchResult, 1)}

	if b.window <= 0 {
		// Coalescing disabled: claim the batch synchronously so every
		// request really does sweep alone — a racing request can never
		// join it, because it is never published in pending.
		bt := &batch{acts: []uint64{actSeed}, waiters: []*waiter{w}}
		for _, m := range modes {
			if !containsMode(bt.modes, m) {
				bt.modes = append(bt.modes, m)
			}
		}
		go b.exec(key, bt)
	} else {
		b.mu.Lock()
		bt, ok := b.pending[key]
		if !ok {
			bt = &batch{}
			b.pending[key] = bt
			time.AfterFunc(b.window, func() { b.run(key) })
		} else {
			b.coalesced.Inc()
		}
		bt.waiters = append(bt.waiters, w)
		for _, m := range modes {
			if !containsMode(bt.modes, m) {
				bt.modes = append(bt.modes, m)
			}
		}
		if !containsSeed(bt.acts, actSeed) {
			bt.acts = append(bt.acts, actSeed)
		}
		b.mu.Unlock()
	}

	select {
	case res := <-w.ch:
		if res.err != nil {
			return nil, res.size, false, res.err
		}
		out := make([]sre.Result, len(modes))
		for i, m := range modes {
			out[i] = res.byAct[actSeed][m]
		}
		return out, res.size, res.cached, nil
	case <-ctx.Done():
		return nil, 0, false, ctx.Err()
	}
}

// run claims the pending batch for key and executes it.
func (b *Batcher) run(key BatchKey) {
	b.mu.Lock()
	bt := b.pending[key]
	delete(b.pending, key)
	b.mu.Unlock()
	if bt == nil {
		return
	}
	b.exec(key, bt)
}

// exec executes one claimed batch: from the result cache when every
// (seed, mode) cell is present, otherwise as a sweep that then
// populates the cache.
func (b *Batcher) exec(key BatchKey, bt *batch) {
	deliver := func(res batchResult) {
		res.size = len(bt.waiters)
		for _, w := range bt.waiters {
			w.ch <- res // cap 1, one send per waiter: never blocks
		}
	}

	// Serve the whole batch from cache if possible — before counting a
	// sweep and before taking a sweep slot, so cache hits neither move
	// sre_serve_sweeps_total nor queue behind running sweeps.
	if byAct, ok := b.cache.LookupBatch(key, bt.modes, bt.acts); ok {
		deliver(batchResult{byAct: byAct, cached: true})
		return
	}
	b.sweeps.Inc()

	// The sweep is cancelled only once every waiter has abandoned it.
	runCtx, cancel := context.WithCancel(b.base)
	defer cancel()
	done := make(chan struct{})
	defer close(done)
	var live atomic.Int64
	live.Store(int64(len(bt.waiters)))
	for _, w := range bt.waiters {
		go func(w *waiter) {
			select {
			case <-w.ctx.Done():
				if live.Add(-1) == 0 {
					b.cancels.Inc()
					cancel()
				}
			case <-done:
			}
		}(w)
	}

	if err := b.budget.Acquire(runCtx); err != nil {
		deliver(batchResult{err: err})
		return
	}
	defer b.budget.Release()

	net, release, err := b.registry.Get(runCtx, key.Key)
	if err != nil {
		deliver(batchResult{err: err})
		return
	}
	defer release() // unpin: the registry may evict once the sweep is done
	opts := append([]sre.Option{
		sre.WithMaxWindows(key.MaxWindows),
		sre.WithIndexBits(key.IndexBits),
		sre.WithWorkers(b.workers),
	}, b.opts...)
	byAct := make(map[uint64]map[sre.Mode]sre.Result, len(bt.acts))
	if len(bt.acts) == 1 && bt.acts[0] == 0 {
		// Every waiter wants the network's own activations: the plain
		// mode sweep (the historical path, byte-identical responses).
		results, err := net.RunModesContext(runCtx, bt.modes, opts...)
		if err != nil {
			deliver(batchResult{err: err})
			return
		}
		byMode := make(map[sre.Mode]sre.Result, len(results))
		for _, r := range results {
			// Strip the sweep-wide metrics snapshot: responses must be
			// bit-identical to a direct run, and /metrics serves the
			// aggregate view.
			r.Metrics = nil
			byMode[r.Mode] = r
		}
		byAct[0] = byMode
		b.populate(key, byAct)
		deliver(batchResult{byAct: byAct})
		return
	}
	// Waiters differ (only) in their activation seed: run the union as
	// one batched multi-activation sweep and fan out per (seed, mode).
	sets := make([]sre.ActivationSet, len(bt.acts))
	for i, seed := range bt.acts {
		sets[i] = sre.ActivationSet{ActSeed: seed}
	}
	grid, err := net.RunBatchContext(runCtx, bt.modes, sets, opts...)
	if err != nil {
		deliver(batchResult{err: err})
		return
	}
	for i, seed := range bt.acts {
		byMode := make(map[sre.Mode]sre.Result, len(grid[i]))
		for _, r := range grid[i] {
			r.Metrics = nil
			byMode[r.Mode] = r
		}
		byAct[seed] = byMode
	}
	b.populate(key, byAct)
	deliver(batchResult{byAct: byAct})
}

// populate feeds every (seed, mode) cell of a completed sweep into the
// result cache.
func (b *Batcher) populate(key BatchKey, byAct map[uint64]map[sre.Mode]sre.Result) {
	if b.cache == nil {
		return
	}
	for seed, byMode := range byAct {
		for m, r := range byMode {
			b.cache.Put(key, m, seed, r)
		}
	}
}

func containsMode(ms []sre.Mode, m sre.Mode) bool {
	for _, x := range ms {
		if x == m {
			return true
		}
	}
	return false
}

func containsSeed(ss []uint64, s uint64) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
