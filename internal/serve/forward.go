// Peer forwarding: the cluster half of sreserved. When replicas are
// configured (Options.Peers/Self), the registry key space is
// partitioned by a consistent-hash ring (internal/shard), and a
// replica that receives a request for a key it does not own proxies
// the request to the owner instead of building the network locally —
// so each network is resident on exactly one replica and the cluster's
// aggregate capacity is the sum of the replicas', not N copies of the
// same working set.
//
// The forwarding rule is strictly one hop: the forwarder stamps an
// X-Sre-Forwarded header, and a replica that receives a stamped
// request always answers locally, even if its own ring disagrees about
// ownership. Two replicas with momentarily different peer lists can
// therefore mis-place a key (it builds on both until config
// converges), but they can never loop a request.
//
// Failure behavior: a peer that cannot be reached yields 503 +
// Retry-After: 1 — the cluster-level analogue of the Gate's admission
// 503, retryable once the peer (or an updated peer list) is back. A
// per-request deadline that expires mid-forward is 504, exactly as it
// is locally. Responses that do arrive are relayed verbatim — status,
// Retry-After, and body bytes — so a forwarded result (and its
// "cached" flag, batch size, or error payload) is byte-identical to
// what the owner produced.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"sre/internal/metrics"
	"sre/internal/shard"
)

// ForwardHeader marks a request as already forwarded once; its value
// is the forwarding replica's address. A replica receiving it answers
// locally regardless of ring ownership, capping forwarding at one hop.
const ForwardHeader = "X-Sre-Forwarded"

// forwardLatencyBounds buckets the forward round-trip in milliseconds:
// loopback hops sit in the low buckets, cross-host hops and owner
// sweep time dominate the high ones.
var forwardLatencyBounds = []int64{1, 2, 5, 10, 25, 50, 100, 250, 1000, 2500, 10000}

// cluster holds one replica's view of the sharded deployment.
type cluster struct {
	ring   *shard.Ring
	self   string
	client *http.Client // shared pooled transport for peer hops

	forwarded   *metrics.Counter   // requests proxied to their owner
	forwardErrs *metrics.Counter   // proxied requests whose hop failed
	forwardHist *metrics.Histogram // forward round-trip, milliseconds
}

// newCluster validates the peer configuration and builds the replica's
// ring and shared forwarding client.
func newCluster(peers []string, self string, shardM *metrics.Shard) (*cluster, error) {
	ring, err := shard.New(peers, 0)
	if err != nil {
		return nil, err
	}
	if !ring.Contains(self) {
		return nil, fmt.Errorf("serve: self address %q is not in the peer list %v", self, ring.Nodes())
	}
	transport := &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
	}
	return &cluster{
		ring: ring,
		self: self,
		// No client-level timeout: each hop's deadline comes from the
		// request context (per-request timeout_ms clamped to MaxTimeout).
		client:      &http.Client{Transport: transport},
		forwarded:   shardM.Counter("sre_serve_forwarded_total"),
		forwardErrs: shardM.Counter("sre_serve_forward_errors_total"),
		forwardHist: shardM.Histogram("sre_serve_forward_latency_ms", forwardLatencyBounds),
	}, nil
}

// owner returns the replica owning key and whether that is this one.
func (c *cluster) owner(key Key) (string, bool) {
	o := c.ring.Owner(key.String())
	return o, o == c.self
}

// forward proxies req to owner with a per-hop deadline derived from
// the incoming request's context and timeout, and relays the owner's
// response verbatim. It is only ever called on un-stamped requests, so
// the stamped hop it issues terminates at the owner.
func (s *Server) forward(w http.ResponseWriter, r *http.Request, owner string, req SimulateRequest) {
	c := s.cluster
	c.forwarded.Inc()

	timeout := s.opts.DefaultTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	if timeout > s.opts.MaxTimeout {
		timeout = s.opts.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	body, err := json.Marshal(req)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "re-encode forwarded request: " + err.Error()})
		return
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+owner+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "build forwarded request: " + err.Error()})
		return
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(ForwardHeader, c.self)

	start := time.Now()
	resp, err := c.client.Do(hreq)
	if err != nil {
		c.forwardErrs.Inc()
		if ctx.Err() == context.DeadlineExceeded {
			s.timeouts.Inc()
			writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "deadline exceeded"})
			return
		}
		// Peer down (or unreachable): retryable against the cluster once
		// the owner — or an updated peer list — is back, so advertise
		// that exactly like every other 503 this server emits.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: fmt.Sprintf("peer %s unreachable: %v", owner, err)})
		return
	}
	defer resp.Body.Close()
	c.forwardHist.Observe(time.Since(start).Milliseconds())

	// Relay verbatim: status, the headers that carry semantics
	// (Retry-After on 503s must reach the client intact), and the body
	// bytes — a forwarded response is byte-identical to the owner's.
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
