// Network registry: the resident-model half of sreserved. Building a
// Table 2 network (workload synthesis + compression structures) costs
// orders of magnitude more than simulating one request against it, and
// the built Network is immutable and safe for unlimited concurrent
// runs (see sre.Network's thread-safety contract), so the server keeps
// one instance per (network, prune, build-config) key and builds it
// lazily under singleflight: however many requests race for a cold
// key, exactly one goroutine builds while the rest wait on the entry.
package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"sre"
	"sre/internal/metrics"
)

// Key identifies one resident network: the build-scoped part of a
// request. Run-scoped knobs (MaxWindows, IndexBits, workers, code
// cache) are per-run options on the shared instance and do not fork a
// new build.
type Key struct {
	Network        string
	Prune          sre.PruneStyle
	Crossbar       int
	OUHeight       int
	OUWidth        int
	WeightBits     int
	ActivationBits int
	CellBits       int
	DACBits        int
	Seed           uint64
}

// KeyFor extracts the build-scoped fields of cfg into a Key.
func KeyFor(network string, prune sre.PruneStyle, cfg sre.Config) Key {
	return Key{
		Network:        network,
		Prune:          prune,
		Crossbar:       cfg.CrossbarSize,
		OUHeight:       cfg.OUHeight,
		OUWidth:        cfg.OUWidth,
		WeightBits:     cfg.WeightBits,
		ActivationBits: cfg.ActivationBits,
		CellBits:       cfg.CellBits,
		DACBits:        cfg.DACBits,
		Seed:           cfg.Seed,
	}
}

// Config reconstitutes the build config the key stands for; run-scoped
// fields stay at their defaults (they are per-request).
func (k Key) Config() sre.Config {
	cfg := sre.DefaultConfig()
	cfg.CrossbarSize = k.Crossbar
	cfg.OUHeight, cfg.OUWidth = k.OUHeight, k.OUWidth
	cfg.WeightBits, cfg.ActivationBits = k.WeightBits, k.ActivationBits
	cfg.CellBits, cfg.DACBits = k.CellBits, k.DACBits
	cfg.Seed = k.Seed
	return cfg
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s/xbar%d/ou%dx%d/w%da%d/cell%d/dac%d/seed%d",
		k.Network, k.Prune, k.Crossbar, k.OUHeight, k.OUWidth,
		k.WeightBits, k.ActivationBits, k.CellBits, k.DACBits, k.Seed)
}

// Registry holds the resident networks. The zero value is not usable;
// create one with NewRegistry.
type Registry struct {
	mu      sync.Mutex
	entries map[Key]*regEntry
	builds  atomic.Int64

	snapshotDir    string
	snapshotHits   *metrics.Counter // cold keys satisfied from the snapshot dir
	snapshotMisses *metrics.Counter // cold keys that had to build (then persisted)
}

type regEntry struct {
	ready chan struct{} // closed once net/err are final
	net   *sre.Network
	err   error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[Key]*regEntry{}}
}

// Get returns the resident network for key, building it on first use.
// Concurrent callers with the same cold key trigger exactly one build;
// the rest block until it finishes or their context ends. A caller
// whose context expires mid-build gets ctx.Err() while the build runs
// to completion for the survivors — an abandoned wait never poisons
// the entry. Failed builds are not cached: the entry is dropped so a
// later request retries instead of replaying a stale error.
func (r *Registry) Get(ctx context.Context, key Key) (*sre.Network, error) {
	r.mu.Lock()
	e, ok := r.entries[key]
	if !ok {
		e = &regEntry{ready: make(chan struct{})}
		r.entries[key] = e
		r.mu.Unlock()
		r.builds.Add(1)
		opts := []sre.Option{sre.WithConfig(key.Config()), sre.WithPrune(key.Prune)}
		if r.snapshotDir != "" {
			opts = append(opts, sre.WithSnapshotDir(r.snapshotDir))
		}
		e.net, e.err = sre.Load(key.Network, opts...)
		if r.snapshotDir != "" && e.err == nil {
			if e.net.SnapshotLoaded() {
				r.snapshotHits.Inc()
			} else {
				r.snapshotMisses.Inc()
			}
		}
		if e.err != nil {
			r.mu.Lock()
			delete(r.entries, key)
			r.mu.Unlock()
		}
		close(e.ready)
		return e.net, e.err
	}
	r.mu.Unlock()
	select {
	case <-e.ready:
		return e.net, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// UseSnapshots makes cold keys consult (and populate) a snapshot
// directory instead of always building, still under the same
// singleflight — however many requests race for a cold key, the
// directory is consulted exactly once. hits counts cold keys loaded
// from dir, misses cold keys that built fresh; both are nil-safe.
// Call before serving begins (it is not synchronized against Get).
func (r *Registry) UseSnapshots(dir string, hits, misses *metrics.Counter) {
	r.snapshotDir = dir
	r.snapshotHits = hits
	r.snapshotMisses = misses
}

// Builds returns how many network builds the registry has started —
// the singleflight invariant under test: N concurrent same-key
// requests must move this by exactly 1.
func (r *Registry) Builds() int64 { return r.builds.Load() }

// Keys lists the resident (successfully built) keys, sorted by their
// String form for stable /v1/networks output.
func (r *Registry) Keys() []Key {
	r.mu.Lock()
	keys := make([]Key, 0, len(r.entries))
	for k, e := range r.entries {
		select {
		case <-e.ready:
			if e.err == nil {
				keys = append(keys, k)
			}
		default: // still building; not resident yet
		}
	}
	r.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}
