// Network registry: the resident-model half of sreserved. Building a
// Table 2 network (workload synthesis + compression structures) costs
// orders of magnitude more than simulating one request against it, and
// the built Network is immutable and safe for unlimited concurrent
// runs (see sre.Network's thread-safety contract), so the server keeps
// one instance per (network, prune, build-config) key and builds it
// lazily under singleflight: however many requests race for a cold
// key, exactly one goroutine builds while the rest wait on the entry.
//
// Residency is byte-bounded: each built network reports a SizeBytes
// estimate, and when a capacity is set (Bound) the registry evicts the
// least-recently-used unpinned networks once the accounted total
// exceeds it — so a long-lived daemon survives adversarial key churn
// instead of growing without bound. Entries in use by a sweep are
// pinned by refcount and never evicted; the most recently used entry
// is also kept, so the cap can overshoot by at most one network while
// traffic is in flight.
package serve

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"sre"
	"sre/internal/metrics"
)

// Key identifies one resident network: the build-scoped part of a
// request. Run-scoped knobs (MaxWindows, IndexBits, workers, code
// cache) are per-run options on the shared instance and do not fork a
// new build.
type Key struct {
	Network        string
	Prune          sre.PruneStyle
	Crossbar       int
	OUHeight       int
	OUWidth        int
	WeightBits     int
	ActivationBits int
	CellBits       int
	DACBits        int
	SliceCap       int
	Seed           uint64
}

// KeyFor extracts the build-scoped fields of cfg into a Key.
func KeyFor(network string, prune sre.PruneStyle, cfg sre.Config) Key {
	return Key{
		Network:        network,
		Prune:          prune,
		Crossbar:       cfg.CrossbarSize,
		OUHeight:       cfg.OUHeight,
		OUWidth:        cfg.OUWidth,
		WeightBits:     cfg.WeightBits,
		ActivationBits: cfg.ActivationBits,
		CellBits:       cfg.CellBits,
		DACBits:        cfg.DACBits,
		SliceCap:       cfg.SliceCap,
		Seed:           cfg.Seed,
	}
}

// Config reconstitutes the build config the key stands for; run-scoped
// fields stay at their defaults (they are per-request).
func (k Key) Config() sre.Config {
	cfg := sre.DefaultConfig()
	cfg.CrossbarSize = k.Crossbar
	cfg.OUHeight, cfg.OUWidth = k.OUHeight, k.OUWidth
	cfg.WeightBits, cfg.ActivationBits = k.WeightBits, k.ActivationBits
	cfg.CellBits, cfg.DACBits = k.CellBits, k.DACBits
	cfg.SliceCap = k.SliceCap
	cfg.Seed = k.Seed
	return cfg
}

func (k Key) String() string {
	s := fmt.Sprintf("%s/%s/xbar%d/ou%dx%d/w%da%d/cell%d/dac%d/seed%d",
		k.Network, k.Prune, k.Crossbar, k.OUHeight, k.OUWidth,
		k.WeightBits, k.ActivationBits, k.CellBits, k.DACBits, k.Seed)
	if k.SliceCap > 0 {
		s += fmt.Sprintf("/slicecap%d", k.SliceCap)
	}
	return s
}

// Registry holds the resident networks. The zero value is not usable;
// create one with NewRegistry.
type Registry struct {
	mu      sync.Mutex
	entries map[Key]*regEntry
	lru     list.List // ready entries, *regEntry values, front = most recent
	cap     int64     // <= 0: unbounded (no eviction)
	bytes   int64     // accounted SizeBytes of ready entries
	builds  atomic.Int64
	buildsC *metrics.Counter // mirrors builds into /metrics (nil-safe)

	evictions    *metrics.Counter // networks evicted under the byte cap
	evictedBytes *metrics.Counter // their summed size estimates
	bytesGauge   *metrics.Gauge   // high-water accounted resident bytes

	snapshotDir    string
	snapshotHits   *metrics.Counter // cold keys satisfied from the snapshot dir
	snapshotMisses *metrics.Counter // cold keys that had to build (then persisted)
}

type regEntry struct {
	key   Key
	ready chan struct{} // closed once net/err are final
	net   *sre.Network
	err   error
	size  int64         // accounted bytes; refreshed when pins drop
	refs  int           // pinned users; guarded by Registry.mu
	elem  *list.Element // position in lru; nil while building or after eviction
}

// NewRegistry returns an empty, unbounded registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[Key]*regEntry{}}
}

// Bound caps the registry's accounted resident bytes at capBytes
// (<= 0 leaves it unbounded). Past the cap, the least-recently-used
// networks that no caller has pinned are evicted; evictions counts
// them, evictedBytes their summed size estimates, and bytesGauge
// records the high-water accounted total (all nil-safe). Call before
// serving begins (it is not synchronized against Get).
func (r *Registry) Bound(capBytes int64, evictions, evictedBytes *metrics.Counter, bytesGauge *metrics.Gauge) {
	r.cap = capBytes
	r.evictions = evictions
	r.evictedBytes = evictedBytes
	r.bytesGauge = bytesGauge
}

// Get returns the resident network for key, building it on first use.
// Concurrent callers with the same cold key trigger exactly one build;
// everyone — the caller that found the key cold included — waits until
// the detached build goroutine finishes or their own context ends, so
// any caller whose context expires mid-build gets ctx.Err() while the
// build runs to completion for the survivors. An abandoned wait never
// poisons the entry; failed builds are not cached (the entry is
// dropped so a later request retries instead of replaying a stale
// error).
//
// On success the entry is pinned against eviction until the returned
// release func is called (it is idempotent; callers must call it
// exactly when they are done running against the network).
func (r *Registry) Get(ctx context.Context, key Key) (*sre.Network, func(), error) {
	r.mu.Lock()
	e, ok := r.entries[key]
	if !ok {
		e = &regEntry{key: key, ready: make(chan struct{})}
		r.entries[key] = e
		r.mu.Unlock()
		// Detached: the build survives this caller's context, so a
		// deadline that expires mid-build neither cancels the work nor
		// poisons the entry for the waiters that outlive it.
		go r.build(e)
	} else {
		r.mu.Unlock()
	}
	select {
	case <-e.ready:
		if e.err != nil {
			return nil, nil, e.err
		}
		return e.net, r.pin(e), nil
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}
}

// build runs the singleflight network build for e and publishes the
// outcome: success accounts the entry in the LRU (possibly evicting
// colder entries), failure drops it.
func (r *Registry) build(e *regEntry) {
	r.builds.Add(1)
	r.buildsC.Inc()
	opts := []sre.Option{sre.WithConfig(e.key.Config()), sre.WithPrune(e.key.Prune)}
	if r.snapshotDir != "" {
		opts = append(opts, sre.WithSnapshotDir(r.snapshotDir))
	}
	e.net, e.err = sre.Load(e.key.Network, opts...)
	if r.snapshotDir != "" && e.err == nil {
		if e.net.SnapshotLoaded() {
			r.snapshotHits.Inc()
		} else {
			r.snapshotMisses.Inc()
		}
	}
	r.mu.Lock()
	if e.err != nil {
		delete(r.entries, e.key)
	} else {
		e.size = e.net.SizeBytes()
		e.elem = r.lru.PushFront(e)
		r.bytes += e.size
		r.bytesGauge.Set(r.bytes)
		r.evictLocked()
	}
	r.mu.Unlock()
	close(e.ready)
}

// pin marks e in use (eviction skips pinned entries) and returns the
// idempotent release. Releasing refreshes the entry's size estimate —
// runs warm the network's lazy plane caches, so the accounted bytes
// grow with it — and re-checks the cap.
func (r *Registry) pin(e *regEntry) func() {
	r.mu.Lock()
	e.refs++
	if e.elem != nil {
		r.lru.MoveToFront(e.elem)
	}
	r.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			e.refs--
			if e.elem != nil {
				if sz := e.net.SizeBytes(); sz != e.size {
					r.bytes += sz - e.size
					e.size = sz
					r.bytesGauge.Set(r.bytes)
				}
				r.evictLocked()
			}
			r.mu.Unlock()
		})
	}
}

// evictLocked drops least-recently-used unpinned entries until the
// accounted bytes fit the cap. The front (most recently used) entry is
// never evicted — its waiters may not have pinned it yet, and a cap
// smaller than one network must still leave the current working
// network resident — so the cap can overshoot by one network. Called
// with r.mu held.
func (r *Registry) evictLocked() {
	if r.cap <= 0 {
		return
	}
	for r.bytes > r.cap {
		evicted := false
		for el := r.lru.Back(); el != nil && el != r.lru.Front(); el = el.Prev() {
			e := el.Value.(*regEntry)
			if e.refs > 0 {
				continue
			}
			r.lru.Remove(el)
			e.elem = nil
			delete(r.entries, e.key)
			r.bytes -= e.size
			r.evictions.Inc()
			r.evictedBytes.Add(e.size)
			evicted = true
			break
		}
		if !evicted {
			return // everything colder is pinned: overshoot until released
		}
	}
}

// UseSnapshots makes cold keys consult (and populate) a snapshot
// directory instead of always building, still under the same
// singleflight — however many requests race for a cold key, the
// directory is consulted exactly once. hits counts cold keys loaded
// from dir, misses cold keys that built fresh; both are nil-safe.
// Call before serving begins (it is not synchronized against Get).
func (r *Registry) UseSnapshots(dir string, hits, misses *metrics.Counter) {
	r.snapshotDir = dir
	r.snapshotHits = hits
	r.snapshotMisses = misses
}

// CountBuilds mirrors the build count into a metrics counter
// (nil-safe), so "exactly one build per key cluster-wide" is checkable
// from every replica's /metrics, not just its /v1/networks. Call
// before serving begins (it is not synchronized against Get).
func (r *Registry) CountBuilds(c *metrics.Counter) { r.buildsC = c }

// Builds returns how many network builds the registry has started —
// the singleflight invariant under test: N concurrent same-key
// requests must move this by exactly 1.
func (r *Registry) Builds() int64 { return r.builds.Load() }

// ResidentBytes returns the accounted size of the currently resident
// (ready) networks.
func (r *Registry) ResidentBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytes
}

// ResidentInfo is one resident network's observability row: its key,
// the accounted size estimate, and how many callers currently pin it
// (sweeps running against it — pinned entries are never evicted).
type ResidentInfo struct {
	Key       Key
	SizeBytes int64
	Pinned    int
}

// Resident lists the resident (successfully built) entries with their
// accounted sizes and pin counts, sorted by key String form for stable
// /v1/networks output.
func (r *Registry) Resident() []ResidentInfo {
	r.mu.Lock()
	out := make([]ResidentInfo, 0, len(r.entries))
	for _, e := range r.entries {
		select {
		case <-e.ready:
			if e.err == nil {
				out = append(out, ResidentInfo{Key: e.key, SizeBytes: e.size, Pinned: e.refs})
			}
		default: // still building; not resident yet
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// Keys lists the resident (successfully built) keys, sorted by their
// String form for stable /v1/networks output.
func (r *Registry) Keys() []Key {
	r.mu.Lock()
	keys := make([]Key, 0, len(r.entries))
	for k, e := range r.entries {
		select {
		case <-e.ready:
			if e.err == nil {
				keys = append(keys, k)
			}
		default: // still building; not resident yet
		}
	}
	r.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}
