// Result cache: the serve-path observation that makes repeated design
// -point queries free. SRE runs are fully deterministic — the same
// (network, prune, build-config, run-options, act_seed) tuple always
// yields a bit-identical Result (the invariant the golden tests and the
// served bit-identity tests pin) — so once a sweep has computed a
// (BatchKey, mode, act_seed) cell, every later request for it can be
// answered without simulating, or even without waiting for a sweep
// slot. The cache is a byte-accounted LRU: entries are charged their
// estimated wire size, and past the configured cap the least recently
// used results are dropped. Correctness is unaffected by eviction —
// a miss just re-simulates — so the cap is purely a memory bound.
package serve

import (
	"container/list"
	"sync"
	"unsafe"

	"sre"
	"sre/internal/metrics"
)

// resultCacheKey identifies one cached Result: the batch identity (the
// resident network plus every result-affecting run option) refined by
// the mode and the activation seed — exactly the tuple that determines
// a Result bit-for-bit.
type resultCacheKey struct {
	BatchKey BatchKey
	Mode     sre.Mode
	ActSeed  uint64
}

// ResultCache is a bounded, byte-accounted LRU of served Results. A
// nil *ResultCache is valid and disables caching (every method is a
// nil-safe no-op), which is how Options.ResultCacheBytes < 0 turns the
// feature off. Create one with NewResultCache.
type ResultCache struct {
	mu      sync.Mutex
	cap     int64
	bytes   int64
	entries map[resultCacheKey]*list.Element
	lru     list.List // *resultCacheEntry, front = most recent

	hits      *metrics.Counter // (mode, seed) cells served from cache
	misses    *metrics.Counter // cells that forced (or joined) a sweep
	evictions *metrics.Counter // entries dropped under the byte cap
	bytesG    *metrics.Gauge   // high-water accounted bytes
}

type resultCacheEntry struct {
	key  resultCacheKey
	res  sre.Result
	size int64
}

// NewResultCache returns a cache bounded at capBytes, feeding the
// given counters (all nil-safe). capBytes <= 0 returns nil — caching
// disabled.
func NewResultCache(capBytes int64, hits, misses, evictions *metrics.Counter, bytesG *metrics.Gauge) *ResultCache {
	if capBytes <= 0 {
		return nil
	}
	return &ResultCache{
		cap:       capBytes,
		entries:   map[resultCacheKey]*list.Element{},
		hits:      hits,
		misses:    misses,
		evictions: evictions,
		bytesG:    bytesG,
	}
}

// Lookup serves a whole request from cache: all-or-nothing over the
// requested modes at one activation seed, in request order. A full hit
// counts len(modes) cache hits and refreshes the entries' recency; a
// partial or empty hit counts nothing (the sweep path will account the
// batch's misses) and returns ok=false.
func (c *ResultCache) Lookup(key BatchKey, modes []sre.Mode, actSeed uint64) ([]sre.Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	out := make([]sre.Result, len(modes))
	for i, m := range modes {
		el, ok := c.entries[resultCacheKey{key, m, actSeed}]
		if !ok {
			c.mu.Unlock()
			return nil, false
		}
		out[i] = el.Value.(*resultCacheEntry).res
	}
	for _, m := range modes {
		c.lru.MoveToFront(c.entries[resultCacheKey{key, m, actSeed}])
	}
	c.mu.Unlock()
	c.hits.Add(int64(len(modes)))
	return out, true
}

// LookupBatch serves a whole coalesced batch from cache: every
// (seed, mode) cell of the batch's union must be present. A full hit
// counts one cache hit per cell and returns the fan-out map the
// batcher delivers from; any absent cell counts every cell as a miss
// (the batch is about to sweep them all) and returns ok=false.
func (c *ResultCache) LookupBatch(key BatchKey, modes []sre.Mode, acts []uint64) (map[uint64]map[sre.Mode]sre.Result, bool) {
	cells := int64(len(modes)) * int64(len(acts))
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	byAct := make(map[uint64]map[sre.Mode]sre.Result, len(acts))
	for _, seed := range acts {
		byMode := make(map[sre.Mode]sre.Result, len(modes))
		for _, m := range modes {
			el, ok := c.entries[resultCacheKey{key, m, seed}]
			if !ok {
				c.mu.Unlock()
				c.misses.Add(cells)
				return nil, false
			}
			byMode[m] = el.Value.(*resultCacheEntry).res
		}
		byAct[seed] = byMode
	}
	for _, seed := range acts {
		for _, m := range modes {
			c.lru.MoveToFront(c.entries[resultCacheKey{key, m, seed}])
		}
	}
	c.mu.Unlock()
	c.hits.Add(cells)
	return byAct, true
}

// Put caches one (mode, seed) cell of a completed sweep, evicting the
// least recently used entries if the accounted bytes now exceed the
// cap. A result bigger than the whole cap is not cached. Re-putting an
// existing key refreshes its recency (the value is necessarily
// identical — results are deterministic).
func (c *ResultCache) Put(key BatchKey, mode sre.Mode, actSeed uint64, res sre.Result) {
	if c == nil {
		return
	}
	k := resultCacheKey{key, mode, actSeed}
	size := resultSizeBytes(res)
	if size > c.cap {
		return
	}
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.entries[k] = c.lru.PushFront(&resultCacheEntry{key: k, res: res, size: size})
	c.bytes += size
	c.bytesG.Set(c.bytes)
	var evicted int64
	for c.bytes > c.cap {
		el := c.lru.Back()
		if el == nil {
			break
		}
		e := el.Value.(*resultCacheEntry)
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.bytes -= e.size
		evicted++
	}
	c.mu.Unlock()
	c.evictions.Add(evicted)
}

// Len returns the number of cached entries.
func (c *ResultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the accounted size of the cached entries.
func (c *ResultCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// resultSizeBytes estimates a Result's resident size: the struct, its
// layer slice, and the strings. Good to a few pointers' worth — enough
// for the LRU's byte accounting, which needs ordering, not exactness.
func resultSizeBytes(r sre.Result) int64 {
	size := int64(unsafe.Sizeof(r)) + int64(len(r.Network))
	for i := range r.Layers {
		size += int64(unsafe.Sizeof(r.Layers[i])) + int64(len(r.Layers[i].Name))
	}
	return size + 64 // map entry + list element bookkeeping
}
