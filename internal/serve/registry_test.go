package serve

import (
	"context"
	"sync"
	"testing"

	"sre"
	"sre/internal/metrics"
)

func TestRegistrySingleflight(t *testing.T) {
	r := NewRegistry()
	key := KeyFor("MNIST", sre.SSL, sre.DefaultConfig())

	const callers = 16
	nets := make([]*sre.Network, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, release, err := r.Get(context.Background(), key)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			} else {
				release()
			}
			nets[i] = n
		}(i)
	}
	wg.Wait()
	if got := r.Builds(); got != 1 {
		t.Fatalf("Builds() = %d after %d concurrent same-key Gets, want 1", got, callers)
	}
	for i := 1; i < callers; i++ {
		if nets[i] != nets[0] {
			t.Fatalf("caller %d got a distinct instance", i)
		}
	}
	keys := r.Keys()
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("Keys() = %v, want [%v]", keys, key)
	}
}

func TestRegistryFailedBuildNotCached(t *testing.T) {
	r := NewRegistry()
	key := KeyFor("no-such-network", sre.SSL, sre.DefaultConfig())

	if _, _, err := r.Get(context.Background(), key); err == nil {
		t.Fatal("Get(bogus) succeeded")
	}
	if got := r.Builds(); got != 1 {
		t.Fatalf("Builds() = %d, want 1", got)
	}
	// The failed entry must be dropped, so the next Get retries the
	// build rather than replaying a cached error.
	if _, _, err := r.Get(context.Background(), key); err == nil {
		t.Fatal("second Get(bogus) succeeded")
	}
	if got := r.Builds(); got != 2 {
		t.Fatalf("Builds() = %d after retry, want 2 (failed build was cached)", got)
	}
	if keys := r.Keys(); len(keys) != 0 {
		t.Fatalf("Keys() = %v, want empty", keys)
	}
}

func TestRegistryAbandonedWaiter(t *testing.T) {
	r := NewRegistry()
	key := KeyFor("MNIST", sre.SSL, sre.DefaultConfig())

	// A waiter whose context is already cancelled gets ctx.Err() even
	// while the build (driven by a healthy caller) completes.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, release, err := r.Get(context.Background(), key); err != nil {
			t.Errorf("builder: %v", err)
		} else {
			release()
		}
	}()
	// This Get either started the detached build or joined it; either
	// way its dead context means it sees context.Canceled — or, if the
	// build won the race, the built network.
	if _, release, err := r.Get(cancelled, key); err != nil && err != context.Canceled {
		t.Fatalf("abandoned Get: %v", err)
	} else if err == nil {
		release()
	}
	wg.Wait()
	// Whichever interleaving happened, the entry must be healthy now.
	if _, release, err := r.Get(context.Background(), key); err != nil {
		t.Fatalf("post-abandon Get: %v", err)
	} else {
		release()
	}
	if got := r.Builds(); got > 2 {
		t.Fatalf("Builds() = %d, want at most 2", got)
	}
}

// TestRegistrySnapshots proves the snapshot-dir path: a registry with
// UseSnapshots persists on the first cold key, a fresh registry
// sharing the directory loads instead of rebuilding, and the hit/miss
// counters record exactly that — all still under singleflight.
func TestRegistrySnapshots(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	shard := reg.Shard()
	hits := shard.Counter("hits")
	misses := shard.Counter("misses")
	key := KeyFor("MNIST", sre.SSL, sre.DefaultConfig())

	r1 := NewRegistry()
	r1.UseSnapshots(dir, hits, misses)
	n1, release1, err := r1.Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	release1()
	if n1.SnapshotLoaded() {
		t.Fatal("cold empty-dir Get reported a snapshot hit")
	}

	// A second process sharing the directory: must load, not build.
	r2 := NewRegistry()
	r2.UseSnapshots(dir, hits, misses)
	const callers = 8
	nets := make([]*sre.Network, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, release, err := r2.Get(context.Background(), key)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			} else {
				release()
			}
			nets[i] = n
		}(i)
	}
	wg.Wait()
	if !nets[0].SnapshotLoaded() {
		t.Fatal("warm-dir Get did not load from the snapshot")
	}
	if got := r2.Builds(); got != 1 {
		t.Fatalf("snapshot dir broke singleflight: %d loads", got)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["hits"]; got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	if got := snap.Counters["misses"]; got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
}
