package serve

import (
	"context"
	"sync"
	"testing"

	"sre"
)

func TestRegistrySingleflight(t *testing.T) {
	r := NewRegistry()
	key := KeyFor("MNIST", sre.SSL, sre.DefaultConfig())

	const callers = 16
	nets := make([]*sre.Network, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, err := r.Get(context.Background(), key)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			nets[i] = n
		}(i)
	}
	wg.Wait()
	if got := r.Builds(); got != 1 {
		t.Fatalf("Builds() = %d after %d concurrent same-key Gets, want 1", got, callers)
	}
	for i := 1; i < callers; i++ {
		if nets[i] != nets[0] {
			t.Fatalf("caller %d got a distinct instance", i)
		}
	}
	keys := r.Keys()
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("Keys() = %v, want [%v]", keys, key)
	}
}

func TestRegistryFailedBuildNotCached(t *testing.T) {
	r := NewRegistry()
	key := KeyFor("no-such-network", sre.SSL, sre.DefaultConfig())

	if _, err := r.Get(context.Background(), key); err == nil {
		t.Fatal("Get(bogus) succeeded")
	}
	if got := r.Builds(); got != 1 {
		t.Fatalf("Builds() = %d, want 1", got)
	}
	// The failed entry must be dropped, so the next Get retries the
	// build rather than replaying a cached error.
	if _, err := r.Get(context.Background(), key); err == nil {
		t.Fatal("second Get(bogus) succeeded")
	}
	if got := r.Builds(); got != 2 {
		t.Fatalf("Builds() = %d after retry, want 2 (failed build was cached)", got)
	}
	if keys := r.Keys(); len(keys) != 0 {
		t.Fatalf("Keys() = %v, want empty", keys)
	}
}

func TestRegistryAbandonedWaiter(t *testing.T) {
	r := NewRegistry()
	key := KeyFor("MNIST", sre.SSL, sre.DefaultConfig())

	// A waiter whose context is already cancelled gets ctx.Err() even
	// while the build (driven by a healthy caller) completes.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := r.Get(context.Background(), key); err != nil {
			t.Errorf("builder: %v", err)
		}
	}()
	// This Get either becomes the builder itself (and succeeds: the
	// builder never checks ctx) or waits and sees context.Canceled.
	if _, err := r.Get(cancelled, key); err != nil && err != context.Canceled {
		t.Fatalf("abandoned Get: %v", err)
	}
	wg.Wait()
	// Whichever interleaving happened, the entry must be healthy now.
	if _, err := r.Get(context.Background(), key); err != nil {
		t.Fatalf("post-abandon Get: %v", err)
	}
	if got := r.Builds(); got > 2 {
		t.Fatalf("Builds() = %d, want at most 2", got)
	}
}
