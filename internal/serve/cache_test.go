package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"sre"
	"sre/internal/metrics"
)

// TestCachedRepeatBitIdenticalNoSweep is the result cache's core
// contract, end to end: the identical request repeated is served from
// the cache (cached=true), bit-identical to both the first response
// and a direct library run, WITHOUT moving sre_serve_sweeps_total.
func TestCachedRepeatBitIdenticalNoSweep(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := `{"network":"MNIST","modes":["baseline","orc+dof"],"config":{"max_windows":6}}`
	status, body := postSimulate(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("first request: status %d: %s", status, body)
	}
	first := decodeSimulate(t, body)
	if first.Cached {
		t.Fatal("first request reported cached=true")
	}

	status, body = postSimulate(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("repeat request: status %d: %s", status, body)
	}
	second := decodeSimulate(t, body)
	if !second.Cached {
		t.Fatal("repeated identical request was not served from the cache")
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Fatalf("cached results differ from swept ones\n got %+v\nwant %+v",
			second.Results, first.Results)
	}
	wantModes := []sre.Mode{sre.Baseline, sre.ORCDOF}
	for i, m := range wantModes {
		want := expect(t, m, sre.WithMaxWindows(6))
		if !reflect.DeepEqual(second.Results[i], want) {
			t.Errorf("mode %v: cached result differs from direct RunContext", m)
		}
	}

	vals := parseProm(t, promBody(t, ts.URL))
	if got := vals["sre_serve_sweeps_total"]; got != 1 {
		t.Errorf("sweeps_total = %v after a cached repeat, want 1", got)
	}
	if got := vals["sre_serve_requests_total"]; got != 2 {
		t.Errorf("requests_total = %v, want 2", got)
	}
	if got := vals["sre_serve_result_cache_hits_total"]; got != float64(len(wantModes)) {
		t.Errorf("result_cache_hits_total = %v, want %d", got, len(wantModes))
	}
	if got := vals["sre_serve_result_cache_misses_total"]; got != float64(len(wantModes)) {
		t.Errorf("result_cache_misses_total = %v, want %d (the first request's cells)", got, len(wantModes))
	}
	if vals["sre_serve_result_cache_bytes"] <= 0 {
		t.Error("result_cache_bytes gauge never moved")
	}
}

// TestResultCacheDisabled proves ResultCacheBytes < 0 really disables
// caching: repeats sweep again and never claim cached=true.
func TestResultCacheDisabled(t *testing.T) {
	srv := NewServer(Options{ResultCacheBytes: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := `{"network":"MNIST","mode":"baseline","config":{"max_windows":6}}`
	for i := 0; i < 2; i++ {
		status, body := postSimulate(t, ts.URL, req)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, body)
		}
		if resp := decodeSimulate(t, body); resp.Cached {
			t.Fatalf("request %d: cached=true with the cache disabled", i)
		}
	}
	vals := parseProm(t, promBody(t, ts.URL))
	if got := vals["sre_serve_sweeps_total"]; got != 2 {
		t.Errorf("sweeps_total = %v with cache disabled, want 2", got)
	}
}

// TestResultCacheEviction drives the LRU under a byte cap sized for
// roughly two entries: accounted bytes stay bounded, the eviction
// counter moves, the oldest entry is gone, and the newest survive.
func TestResultCacheEviction(t *testing.T) {
	res := sre.Result{Network: "MNIST", Layers: make([]sre.LayerResult, 4)}
	one := resultSizeBytes(res)

	reg := metrics.NewRegistry()
	shard := reg.Shard()
	evictions := shard.Counter("evictions")
	c := NewResultCache(2*one+one/2, shard.Counter("hits"), shard.Counter("misses"), evictions, shard.Gauge("bytes"))

	key := func(i int) BatchKey { return BatchKey{MaxWindows: i} }
	for i := 0; i < 5; i++ {
		c.Put(key(i), sre.Baseline, 0, res)
		if c.Bytes() > 2*one+one/2 {
			t.Fatalf("after put %d: accounted bytes %d exceed the cap", i, c.Bytes())
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len() = %d under a two-entry cap, want 2", c.Len())
	}
	if got := reg.Snapshot().Counters["evictions"]; got != 3 {
		t.Fatalf("evictions = %d, want 3", got)
	}
	if _, ok := c.Lookup(key(0), []sre.Mode{sre.Baseline}, 0); ok {
		t.Fatal("evicted entry still served")
	}
	for i := 3; i < 5; i++ {
		if _, ok := c.Lookup(key(i), []sre.Mode{sre.Baseline}, 0); !ok {
			t.Fatalf("recent entry %d was evicted", i)
		}
	}

	// Recency: touching the older survivor makes the newer one the
	// eviction victim on the next insert.
	c.Lookup(key(3), []sre.Mode{sre.Baseline}, 0)
	c.Put(key(5), sre.Baseline, 0, res)
	if _, ok := c.Lookup(key(3), []sre.Mode{sre.Baseline}, 0); !ok {
		t.Fatal("recently-touched entry was evicted instead of the LRU one")
	}
	if _, ok := c.Lookup(key(4), []sre.Mode{sre.Baseline}, 0); ok {
		t.Fatal("LRU entry survived past the cap")
	}

	// An entry bigger than the whole cap is refused outright.
	big := sre.Result{Layers: make([]sre.LayerResult, 4096)}
	c.Put(key(6), sre.Baseline, 0, big)
	if _, ok := c.Lookup(key(6), []sre.Mode{sre.Baseline}, 0); ok {
		t.Fatal("cached an entry larger than the cap")
	}
}

// TestResultCacheNil proves the nil cache (caching disabled) is safe
// to call everywhere the batcher does.
func TestResultCacheNil(t *testing.T) {
	var c *ResultCache
	if c != NewResultCache(0, nil, nil, nil, nil) {
		t.Fatal("NewResultCache(0) != nil")
	}
	c.Put(BatchKey{}, sre.Baseline, 0, sre.Result{})
	if _, ok := c.Lookup(BatchKey{}, []sre.Mode{sre.Baseline}, 0); ok {
		t.Fatal("nil cache returned a hit")
	}
	if _, ok := c.LookupBatch(BatchKey{}, []sre.Mode{sre.Baseline}, []uint64{0}); ok {
		t.Fatal("nil cache returned a batch hit")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("nil cache reports contents")
	}
}

// registryKey returns a distinct MNIST design point per i (the build
// seed forks the key, so each i is a separate resident network).
func registryKey(i int) Key {
	cfg := sre.DefaultConfig()
	cfg.Seed = uint64(100 + i)
	return KeyFor("MNIST", sre.SSL, cfg)
}

// TestRegistryEvictionBounded is the bounded-memory claim under churn:
// with a byte cap of about two networks, touching six distinct keys
// keeps accounted resident bytes within cap + one network (the
// documented MRU overshoot) and evicts the cold majority.
func TestRegistryEvictionBounded(t *testing.T) {
	r := NewRegistry()
	_, release, err := r.Get(context.Background(), registryKey(0))
	if err != nil {
		t.Fatal(err)
	}
	release()
	one := r.ResidentBytes()
	if one <= 0 {
		t.Fatalf("ResidentBytes() = %d after a build, want > 0", one)
	}

	reg := metrics.NewRegistry()
	shard := reg.Shard()
	cap := 2 * one
	r.Bound(cap, shard.Counter("evictions"), shard.Counter("evicted_bytes"), shard.Gauge("bytes"))

	for i := 1; i < 6; i++ {
		_, release, err := r.Get(context.Background(), registryKey(i))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		release()
		// Size estimates differ per seed only marginally; allow the
		// documented one-network overshoot with headroom.
		if got := r.ResidentBytes(); got > cap+2*one {
			t.Fatalf("after key %d: resident bytes %d exceed cap %d + one network", i, got, cap)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["evictions"] == 0 {
		t.Fatal("six networks under a two-network cap evicted nothing")
	}
	if snap.Counters["evicted_bytes"] <= 0 {
		t.Fatal("evicted_bytes never moved")
	}
	if got := len(r.Keys()); got > 3 {
		t.Fatalf("%d networks resident under a two-network cap", got)
	}
}

// TestRegistryNeverEvictsPinned pins one network through heavy
// same-registry churn (concurrent, so `go test -race` checks the
// locking) and requires it to survive eviction pressure for as long as
// the pin is held — then become evictable once released.
func TestRegistryNeverEvictsPinned(t *testing.T) {
	r := NewRegistry()
	pinnedNet, release, err := r.Get(context.Background(), registryKey(0))
	if err != nil {
		t.Fatal(err)
	}
	one := r.ResidentBytes()
	// Cap below one network: everything unpinned and non-MRU is evicted
	// on sight, the hardest pressure the pin can face.
	reg := metrics.NewRegistry()
	shard := reg.Shard()
	r.Bound(one/2, shard.Counter("evictions"), shard.Counter("evicted_bytes"), shard.Gauge("bytes"))

	builds := r.Builds()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				_, rel, err := r.Get(context.Background(), registryKey(1+w%2))
				if err != nil {
					t.Errorf("churn %d: %v", w, err)
					return
				}
				rel()
			}
		}(w)
	}
	wg.Wait()

	// The pinned network must still be resident: a fresh Get returns
	// the same instance without building.
	got, rel2, err := r.Get(context.Background(), registryKey(0))
	if err != nil {
		t.Fatal(err)
	}
	if got != pinnedNet {
		t.Fatal("pinned network was evicted and rebuilt under churn")
	}
	rel2()
	churnBuilds := r.Builds() - builds

	// Released, it is ordinary LRU prey: more churn evicts it, and the
	// next Get builds anew.
	release()
	for i := 0; i < 2; i++ {
		_, rel, err := r.Get(context.Background(), registryKey(3+i))
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	before := r.Builds()
	got2, rel3, err := r.Get(context.Background(), registryKey(0))
	if err != nil {
		t.Fatal(err)
	}
	rel3()
	if r.Builds() != before+1 {
		t.Fatalf("released network under a sub-network cap was not evicted (builds %d -> %d, churn builds %d)",
			before, r.Builds(), churnBuilds)
	}
	if got2 == pinnedNet {
		t.Fatal("rebuilt network is the evicted instance")
	}
}

// TestGateLeaveUnderflow: an unpaired Leave must not drive the
// in-flight count negative — before the guard, it would both over-admit
// and make Close's drain latch fire while a real request was still in
// flight.
func TestGateLeaveUnderflow(t *testing.T) {
	reg := metrics.NewRegistry()
	gauge := reg.Shard().Gauge("inflight")
	g := NewGate(2)
	g.Track(gauge)

	g.Leave() // unpaired: must be ignored
	if got := g.Inflight(); got != 0 {
		t.Fatalf("Inflight() = %d after an unpaired Leave, want 0", got)
	}
	if err := g.Enter(); err != nil {
		t.Fatal(err)
	}
	if got := g.Inflight(); got != 1 {
		t.Fatalf("Inflight() = %d after Enter, want 1 (underflow absorbed it)", got)
	}

	done := g.Close()
	select {
	case <-done:
		t.Fatal("drain latch closed while a request was in flight")
	default:
	}
	g.Leave()
	// Close relays the drain signal through a goroutine; give it a beat.
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("drain latch did not close once the last request left")
	}
	if got := reg.Snapshot().Gauges["inflight"]; got != 1 {
		t.Fatalf("inflight gauge high-water = %v, want 1", got)
	}
}