// Admission control: the two valves between the HTTP edge and the
// simulator. The Gate is a bounded admission counter — requests beyond
// its depth are rejected immediately with a retryable error instead of
// queueing without bound — and it doubles as the drain latch: once
// closed, new requests bounce while the in-flight count runs down to
// zero, which is the signal graceful shutdown waits for. The Budget is
// a semaphore over concurrent sweeps, so N admitted requests cannot
// oversubscribe the internal/parallel pool: each sweep gets the
// configured worker width and excess batches wait their turn.
package serve

import (
	"context"
	"errors"
	"sync"

	"sre/internal/metrics"
)

// ErrSaturated reports a full admission queue (HTTP 503, retryable).
var ErrSaturated = errors.New("serve: admission queue full")

// ErrDraining reports a server that has stopped accepting work.
var ErrDraining = errors.New("serve: draining, not accepting requests")

// Gate is the bounded admission valve and drain latch.
type Gate struct {
	mu       sync.Mutex
	depth    int
	inflight int
	closed   bool
	drained  chan struct{}  // created by Close, closed at inflight==0
	gauge    *metrics.Gauge // high-water inflight; updated under mu
}

// NewGate returns a gate admitting at most depth concurrent requests
// (queued + running). depth <= 0 means 64.
func NewGate(depth int) *Gate {
	if depth <= 0 {
		depth = 64
	}
	return &Gate{depth: depth}
}

// Track publishes the gate's high-water in-flight count to g (nil-safe).
// The gauge moves inside the gate's own mutex, paired exactly with the
// Enter that admitted the request — a racing handler can no longer
// publish a stale read-back of Inflight. Call before serving begins.
func (g *Gate) Track(gauge *metrics.Gauge) { g.gauge = gauge }

// Enter admits one request, or reports ErrDraining/ErrSaturated.
// Every successful Enter must be paired with Leave.
func (g *Gate) Enter() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return ErrDraining
	}
	if g.inflight >= g.depth {
		return ErrSaturated
	}
	g.inflight++
	g.gauge.Set(int64(g.inflight))
	return nil
}

// Leave releases one admitted request. An unpaired Leave (a bug in the
// caller) is ignored rather than driving the count negative — an
// underflowed gate would both over-admit (depth + |underflow| requests)
// and close the drain latch while real requests are still in flight.
func (g *Gate) Leave() {
	g.mu.Lock()
	if g.inflight == 0 {
		g.mu.Unlock()
		return
	}
	g.inflight--
	if g.closed && g.inflight == 0 && g.drained != nil {
		close(g.drained)
		g.drained = nil // idempotent-safe: only close once
	}
	g.mu.Unlock()
}

// Inflight returns the number of admitted, not-yet-finished requests.
func (g *Gate) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight
}

// Close stops admitting (Enter returns ErrDraining from now on) and
// returns a channel that closes once every in-flight request has left.
// Safe to call more than once; later calls observe the same drain.
func (g *Gate) Close() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.closed = true
	done := make(chan struct{})
	if g.inflight == 0 {
		close(done)
		return done
	}
	if g.drained == nil {
		g.drained = make(chan struct{})
	}
	// Fan out: relay the single drained signal to this caller.
	go func(src <-chan struct{}) {
		<-src
		close(done)
	}(g.drained)
	return done
}

// Budget caps concurrent simulation sweeps.
type Budget struct {
	sem chan struct{}
}

// NewBudget returns a budget of n concurrent sweeps. n <= 0 means 2.
func NewBudget(n int) *Budget {
	if n <= 0 {
		n = 2
	}
	return &Budget{sem: make(chan struct{}, n)}
}

// Acquire takes one sweep slot, blocking until one frees or ctx ends.
func (b *Budget) Acquire(ctx context.Context) error {
	select {
	case b.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a sweep slot.
func (b *Budget) Release() { <-b.sem }
