package sre

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestSerialParallelBitIdentical is the tentpole's determinism
// guarantee: sharding the simulation over any worker-pool width must
// produce bit-identical cycles and energy in every mode.
func TestSerialParallelBitIdentical(t *testing.T) {
	net, err := Build("det", "conv3x8p1-pool-conv3x8p1-pool-32-5", []int{1, 16, 16},
		smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, mode := range Modes() {
		serial, err := net.RunContext(ctx, mode, WithWorkers(1))
		if err != nil {
			t.Fatalf("%s serial: %v", mode, err)
		}
		for _, w := range []int{2, 8} {
			par, err := net.RunContext(ctx, mode, WithWorkers(w))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", mode, w, err)
			}
			if par.Cycles != serial.Cycles {
				t.Errorf("%s workers=%d cycles %d != serial %d", mode, w, par.Cycles, serial.Cycles)
			}
			if par.Energy != serial.Energy {
				t.Errorf("%s workers=%d energy %+v != serial %+v", mode, w, par.Energy, serial.Energy)
			}
		}
	}
}

// smallOpts bundles the small-network options the parallel tests share.
func smallOpts() []Option {
	return []Option{WithPrune(SSL), WithSparsity(0.6, 0.4), WithMaxWindows(12)}
}

func TestRunContextCancelled(t *testing.T) {
	net, err := Load("MNIST", smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := net.RunContext(ctx, ORCDOF); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := net.RunAllContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAllContext err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	// All windows, no sampling cap: big enough that cancellation lands
	// mid-simulation, small enough to stay fast when it does.
	net, err := Load("CIFAR-10", WithPrune(SSL), WithMaxWindows(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = net.RunAllContext(ctx)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation not observed promptly (took %v)", elapsed)
	}
	// The run may legitimately finish before the cancel lands; only a
	// context error or success is acceptable.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunAllOrderAndResultsByMode(t *testing.T) {
	net, err := Load("MNIST", append(smallOpts(), WithWorkers(4))...)
	if err != nil {
		t.Fatal(err)
	}
	results, err := net.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	modes := Modes()
	if len(results) != len(modes) {
		t.Fatalf("got %d results for %d modes", len(results), len(modes))
	}
	for i, m := range modes {
		if results[i].Mode != m {
			t.Fatalf("results[%d].Mode = %v, want %v", i, results[i].Mode, m)
		}
	}
	byMode := ResultsByMode(results)
	for _, m := range modes {
		one, err := net.Run(m)
		if err != nil {
			t.Fatal(err)
		}
		if byMode[m].Cycles != one.Cycles || byMode[m].Energy != one.Energy {
			t.Fatalf("%v: RunAll result differs from Run", m)
		}
	}
}

func TestRunRejectsBuildScopedOptions(t *testing.T) {
	net, err := Load("MNIST", smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for name, opt := range map[string]Option{
		"WithOU":       WithOU(32),
		"WithCrossbar": WithCrossbar(256),
		"WithCellBits": WithCellBits(4),
		"WithSeed":     WithSeed(99),
		"WithPrune":    WithPrune(GSL),
	} {
		if _, err := net.RunContext(ctx, Baseline, opt); err == nil {
			t.Errorf("%s accepted at run time", name)
		}
	}
	// Run-scoped knobs must pass.
	for name, opt := range map[string]Option{
		"WithWorkers":    WithWorkers(2),
		"WithMaxWindows": WithMaxWindows(6),
		"WithIndexBits":  WithIndexBits(4),
	} {
		if _, err := net.RunContext(ctx, Baseline, opt); err != nil {
			t.Errorf("%s rejected at run time: %v", name, err)
		}
	}
}

// TestWithConfigMatchesOptions pins the options-API contract: adopting
// a whole Config via WithConfig builds the same network as spelling the
// same design point with granular options.
func TestWithConfigMatchesOptions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxWindows = 12
	whole, err := Load("CIFAR-10", WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	granular, err := Load("CIFAR-10", WithPrune(SSL), WithMaxWindows(12))
	if err != nil {
		t.Fatal(err)
	}
	ro, err := whole.Run(ORCDOF)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := granular.Run(ORCDOF)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Cycles != rn.Cycles || ro.Energy != rn.Energy {
		t.Fatalf("WithConfig diverged from granular options: %d/%v vs %d/%v",
			ro.Cycles, ro.Energy, rn.Cycles, rn.Energy)
	}
}

// TestRunModesContextSubset pins the batcher's primitive: a subset
// sweep returns results in the requested order, each bit-identical to
// the standalone run of that mode.
func TestRunModesContextSubset(t *testing.T) {
	net, err := Load("MNIST", smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	modes := []Mode{ORCDOF, Naive, DOF}
	results, err := net.RunModesContext(context.Background(), modes, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(modes) {
		t.Fatalf("got %d results for %d modes", len(results), len(modes))
	}
	for i, m := range modes {
		if results[i].Mode != m {
			t.Fatalf("results[%d].Mode = %v, want %v", i, results[i].Mode, m)
		}
		one, err := net.Run(m)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Cycles != one.Cycles || results[i].Energy != one.Energy {
			t.Fatalf("%v: RunModesContext result differs from Run", m)
		}
	}
	if _, err := net.RunModesContext(context.Background(), nil); err == nil {
		t.Fatal("accepted an empty mode set")
	}
}

func TestRunOCCUnknownStyle(t *testing.T) {
	net, err := Load("MNIST", smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	net.style = PruneStyle(99)
	if _, err := net.RunOCC(); err == nil {
		t.Fatal("RunOCC accepted unknown prune style")
	}
}

func TestProgressCallback(t *testing.T) {
	net, err := Load("MNIST", smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	var events []Progress
	_, err = net.RunContext(context.Background(), DOF, WithProgress(func(p Progress) {
		events = append(events, p)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != net.LayerCount() {
		t.Fatalf("got %d progress events for %d layers", len(events), net.LayerCount())
	}
	last := events[len(events)-1]
	if last.LayersDone != net.LayerCount() || last.LayerCount != net.LayerCount() {
		t.Fatalf("final event %+v", last)
	}
	for _, ev := range events {
		if ev.Mode != DOF || ev.Network != "MNIST" || ev.Layer.Cycles <= 0 {
			t.Fatalf("bad event %+v", ev)
		}
	}
}
