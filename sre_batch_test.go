package sre

import (
	"context"
	"testing"

	"sre/internal/core"
	"sre/internal/energy"
	"sre/internal/noc"
	"sre/internal/workload"
)

// separateSweep runs one mode over the network with the given
// activation seed substituted the long way — fresh layer copies, fresh
// code-plane caches, a plain SimulateNetworkContext — the semantics
// RunBatchContext promises to be bit-identical to.
func separateSweep(t *testing.T, net *Network, mode Mode, actSeed uint64, workers int) core.NetworkResult {
	t.Helper()
	layers := make([]core.Layer, len(net.built.Layers))
	copy(layers, net.built.Layers)
	if actSeed != 0 && actSeed != net.cfg.Seed {
		srcs := net.spec.VariantSources(net.built.Layers, actSeed)
		for i := range layers {
			layers[i].Acts = srcs[i]
			layers[i].Codes = core.NewCodePlanes()
		}
	}
	cm, err := mode.coreMode()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Geometry:   net.cfg.geometry(),
		Quant:      net.cfg.params(),
		Mode:       cm,
		IndexBits:  net.indexBits(),
		MaxWindows: net.cfg.MaxWindows,
		Workers:    workers,
		Energy:     energy.Default(),
		NoC:        noc.Default(),
	}
	res, err := core.SimulateNetworkContext(context.Background(), layers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunBatchMatchesSeparateSweeps is the batching tentpole's
// bit-identity guarantee: every cell of the [set][mode] result grid
// must equal the same mode simulated alone with that set's activations
// substituted — including the static modes the batch simulates once
// and replicates, and the DOF modes that share one flattened phase 1.
func TestRunBatchMatchesSeparateSweeps(t *testing.T) {
	net, err := Build("batch", "conv3x8p1-pool-conv3x8p1-pool-32-5", []int{1, 16, 16},
		smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	acts := []ActivationSet{{}, {ActSeed: 12345}, {ActSeed: 777}}
	modes := Modes()
	grid, err := net.RunBatchContext(context.Background(), modes, acts, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != len(acts) || len(grid[0]) != len(modes) {
		t.Fatalf("grid is %dx%d, want %dx%d", len(grid), len(grid[0]), len(acts), len(modes))
	}
	for j, a := range acts {
		for i, m := range modes {
			got := grid[j][i]
			if got.Mode != m {
				t.Fatalf("grid[%d][%d].Mode = %v, want %v", j, i, got.Mode, m)
			}
			want := separateSweep(t, net, m, a.ActSeed, 4)
			if got.Cycles != want.Cycles {
				t.Errorf("set %d (seed %d) mode %v: batched cycles %d != separate %d",
					j, a.ActSeed, m, got.Cycles, want.Cycles)
			}
			if got.Energy != Breakdown(want.Energy) {
				t.Errorf("set %d (seed %d) mode %v: batched energy %+v != separate %+v",
					j, a.ActSeed, m, got.Energy, want.Energy)
			}
		}
	}
	// Distinct seeds must actually change the activation-dependent
	// modes (a variant that silently equals the base would make the
	// identity checks above vacuous).
	di := -1
	for i, m := range modes {
		if m == DOF {
			di = i
		}
	}
	if grid[1][di].Cycles == grid[0][di].Cycles && grid[1][di].Energy == grid[0][di].Energy {
		t.Error("variant seed produced DOF results identical to the base activations")
	}
}

// TestVariantSourcesIdentity pins the seed-derivation contract the
// batch API builds on: re-deriving the activation sources from the
// build seed itself reproduces the built-in sources field-for-field —
// xrand.Split is a pure function of (parent state, label), so the
// per-layer stream depends only on (seed, spec name, layer path).
func TestVariantSourcesIdentity(t *testing.T) {
	net, err := Load("MNIST", append(smallOpts(), WithSeed(97))...)
	if err != nil {
		t.Fatal(err)
	}
	srcs := net.spec.VariantSources(net.built.Layers, 97)
	for i, l := range net.built.Layers {
		sa, ok := l.Acts.(*workload.SyntheticActs)
		if !ok {
			t.Fatalf("layer %d source is %T, want *workload.SyntheticActs", i, l.Acts)
		}
		va := srcs[i].(*workload.SyntheticActs)
		if *va != *sa {
			t.Errorf("layer %d: variant from build seed %+v != built-in %+v", i, *va, *sa)
		}
	}
	// And a different seed must change (only) the stream root.
	for i, src := range net.spec.VariantSources(net.built.Layers, 98) {
		sa := net.built.Layers[i].Acts.(*workload.SyntheticActs)
		va := src.(*workload.SyntheticActs)
		if va.Seed == sa.Seed {
			t.Errorf("layer %d: variant seed did not change the stream root", i)
		}
		va2 := *va
		va2.Seed = sa.Seed
		if va2 != *sa {
			t.Errorf("layer %d: variant changed more than the stream root: %+v vs %+v", i, *va, *sa)
		}
	}
}

// TestRunBatchWorkerInvariance extends the repo's determinism
// guarantee to the batched path: the whole [set][mode] grid must be
// bit-identical at every worker-pool width.
func TestRunBatchWorkerInvariance(t *testing.T) {
	net, err := Load("MNIST", smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	acts := []ActivationSet{{}, {ActSeed: 5}, {ActSeed: 6}}
	modes := []Mode{Baseline, DOF, ORCDOF}
	serial, err := net.RunBatchContext(context.Background(), modes, acts, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		par, err := net.RunBatchContext(context.Background(), modes, acts, WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		for j := range acts {
			for i := range modes {
				if par[j][i].Cycles != serial[j][i].Cycles || par[j][i].Energy != serial[j][i].Energy {
					t.Errorf("workers=%d set %d mode %v diverged from serial", w, j, modes[i])
				}
			}
		}
	}
}

// TestRunBatchValidation pins the argument contract.
func TestRunBatchValidation(t *testing.T) {
	net, err := Load("MNIST", smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.RunBatchContext(context.Background(), nil, []ActivationSet{{}}); err == nil {
		t.Error("accepted an empty mode set")
	}
	if _, err := net.RunBatchContext(context.Background(), []Mode{DOF}, nil); err == nil {
		t.Error("accepted an empty activation-set list")
	}
	if _, err := net.RunBatchContext(context.Background(), []Mode{DOF},
		[]ActivationSet{{}}, WithSeed(3)); err == nil {
		t.Error("accepted a build-scoped option at run time")
	}
}

// BenchmarkBatchedSweep measures the tentpole's sub-linearity claim
// over four coalesced activation sets (the resident network's own
// activations plus three variant seeds):
//
//   - Single: one sweep of the network's own activations — the
//     fully-cached steady-state floor.
//   - Separate4: the four sets swept independently, one batch call per
//     set — what serving four requests without coalescing costs.
//   - Batched4: the four sets as one batched sweep.
//
// Sub-linearity is Batched4 ns/op < Separate4 ns/op (the batch shares
// the plans, planes, arenas, and the entire static-mode simulation
// across sets), with Single as the all-shared lower bound.
func BenchmarkBatchedSweep(b *testing.B) {
	net, err := Load("MNIST", smallOpts()...)
	if err != nil {
		b.Fatal(err)
	}
	modes := []Mode{Baseline, ORC, DOF, ORCDOF}
	sets := []ActivationSet{{}, {ActSeed: 11}, {ActSeed: 12}, {ActSeed: 13}}
	ctx := context.Background()
	b.Run("Single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := net.RunModesContext(ctx, modes); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Separate4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, set := range sets {
				if _, err := net.RunBatchContext(ctx, modes, []ActivationSet{set}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("Batched4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := net.RunBatchContext(ctx, modes, sets); err != nil {
				b.Fatal(err)
			}
		}
	})
}
