package sre_test

import (
	"fmt"

	"sre"
)

// ExampleNetworks lists the paper's Table 2 models.
func ExampleNetworks() {
	for _, name := range sre.Networks() {
		fmt.Println(name)
	}
	// Output:
	// MNIST
	// CIFAR-10
	// CaffeNet
	// VGG-16
	// GoogLeNet
	// ResNet-50
}

// ExampleNetwork_Run compares the full Sparse ReRAM Engine against the
// no-sparsity baseline on MNIST.
func ExampleNetwork_Run() {
	// Sample windows (WithMaxWindows) for a fast example.
	net, err := sre.Load("MNIST", sre.WithMaxWindows(12))
	if err != nil {
		panic(err)
	}
	base, _ := net.Run(sre.Baseline)
	res, _ := net.Run(sre.ORCDOF)
	fmt.Printf("speedup %.1fx, energy %.0f%% of baseline\n",
		float64(base.Cycles)/float64(res.Cycles),
		100*res.Energy.Total()/base.Energy.Total())
	// Output:
	// speedup 5.1x, energy 21% of baseline
}

// ExampleCell_ReadErrorProbability shows the §3 sensing-margin mechanism
// that forces OU-based operation.
func ExampleCell_ReadErrorProbability() {
	cell := sre.BaselineCell()
	fmt.Printf("16 wordlines: %.3f\n", cell.ReadErrorProbability(16, 1.5))
	fmt.Printf("128 wordlines: %.3f\n", cell.ReadErrorProbability(128, 1.5))
	// Output:
	// 16 wordlines: 0.012
	// 128 wordlines: 0.374
}
