package sre

import (
	"context"
	"reflect"
	"testing"
)

// zeroMetrics strips the observability snapshots so metered and
// differently-metered results can be compared structurally.
func zeroMetrics(results []Result) []Result {
	out := append([]Result(nil), results...)
	for i := range out {
		out[i].Metrics = nil
	}
	return out
}

// TestRunAllCodeCacheAlgebra runs the full-mode sweep metered and pins
// the window-code plane cache's accounting: every mode looks the plane
// up once per layer, exactly one lookup per layer builds it (the cache
// is fresh — networks attach a CodePlanes per layer at build time), and
// the other seven hit. The hits == 7·layers identity is what makes the
// cache worth its memory: all but one of the eight modes read codes
// somebody else already materialized.
func TestRunAllCodeCacheAlgebra(t *testing.T) {
	net, err := Load("MNIST", smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetrics()
	if _, err := net.RunAllContext(context.Background(), WithMetrics(reg)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	layers := int64(net.LayerCount())
	hits := snap.Counters["sre_core_code_cache_hits_total"]
	misses := snap.Counters["sre_core_code_cache_misses_total"]
	builds := snap.Counters["sre_core_code_cache_builds_total"]
	if misses != layers || builds != layers {
		t.Fatalf("code cache misses=%d builds=%d, want both == layers (%d)", misses, builds, layers)
	}
	if hits != 7*layers {
		t.Fatalf("code cache hits = %d, want 7·layers (%d)", hits, 7*layers)
	}
	if bytes := snap.Counters["sre_core_code_cache_bytes_total"]; bytes <= 0 {
		t.Fatalf("code cache resident bytes = %d, want > 0", bytes)
	}
	// The arenas must have been exercised too: one layer-scratch
	// checkout per (mode, layer), phase-1 checkouts for the DOF modes.
	if gets := snap.Counters[`sre_core_arena_gets_total{arena="layer"}`]; gets != 8*layers {
		t.Fatalf("layer arena gets = %d, want 8·layers (%d)", gets, 8*layers)
	}
	if gets := snap.Counters[`sre_core_arena_gets_total{arena="phase1"}`]; gets < 1 {
		t.Fatalf("phase-1 arena saw no checkouts")
	}
}

// TestRunAllCodeCacheResultsIdentical proves the cache never changes
// what the sweep reports: RunAll with the cache (the default) must be
// deeply equal to RunAll opted out via WithCodeCache(false), across all
// six modes, at both a serial and the automatic pool width, with
// sampling on and off.
func TestRunAllCodeCacheResultsIdentical(t *testing.T) {
	net, err := Load("MNIST", smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, workers := range []int{1, 0} {
		for _, maxWin := range []int{0, 6} {
			cached, err := net.RunAllContext(ctx,
				WithWorkers(workers), WithMaxWindows(maxWin))
			if err != nil {
				t.Fatalf("workers=%d maxWin=%d cached: %v", workers, maxWin, err)
			}
			uncached, err := net.RunAllContext(ctx,
				WithWorkers(workers), WithMaxWindows(maxWin), WithCodeCache(false))
			if err != nil {
				t.Fatalf("workers=%d maxWin=%d uncached: %v", workers, maxWin, err)
			}
			if !reflect.DeepEqual(zeroMetrics(cached), zeroMetrics(uncached)) {
				t.Fatalf("workers=%d maxWin=%d: cached sweep diverges from WithCodeCache(false)",
					workers, maxWin)
			}
		}
	}
	// The opt-out also holds for the OCC extension path.
	occCached, err := net.RunOCC()
	if err != nil {
		t.Fatal(err)
	}
	occUncached, err := net.RunOCC(WithCodeCache(false))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(occCached, occUncached) {
		t.Fatal("RunOCC diverges under WithCodeCache(false)")
	}
}
