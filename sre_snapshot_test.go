package sre

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writeSnapshot serializes net to a file in dir and returns the path.
func writeSnapshot(t *testing.T, dir string, net *Network) string {
	t.Helper()
	path := filepath.Join(dir, "net.sresnap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// sameResult compares the simulation-visible surface of two results.
func sameResult(t *testing.T, label string, a, b Result) {
	t.Helper()
	if a.Cycles != b.Cycles || a.Seconds != b.Seconds || a.Energy != b.Energy ||
		a.CompressionRatio != b.CompressionRatio || a.IndexStorageBits != b.IndexStorageBits {
		t.Fatalf("%s: results diverged:\n fresh %+v\n snap  %+v", label, a, b)
	}
	if len(a.Layers) != len(b.Layers) {
		t.Fatalf("%s: layer counts diverged", label)
	}
	for i := range a.Layers {
		if a.Layers[i] != b.Layers[i] {
			t.Fatalf("%s: layer %d diverged:\n fresh %+v\n snap  %+v",
				label, i, a.Layers[i], b.Layers[i])
		}
	}
}

// TestSnapshotGoldenAllModes is the golden bit-identity test: a
// snapshot-loaded network must produce results identical to the fresh
// build it was written from, in every mode, under both prune styles.
func TestSnapshotGoldenAllModes(t *testing.T) {
	for _, style := range []PruneStyle{SSL, GSL} {
		fresh, err := Load("MNIST", WithConfig(testConfig()), WithPrune(style))
		if err != nil {
			t.Fatal(err)
		}
		path := writeSnapshot(t, t.TempDir(), fresh)
		// MaxWindows is run-scoped (the opener's choice, not part of the
		// snapshot's build point) — pin it to the fresh network's value
		// so the runs compare window for window.
		loaded, err := OpenSnapshot(path, WithMaxWindows(testConfig().MaxWindows))
		if err != nil {
			t.Fatal(err)
		}
		if !loaded.SnapshotLoaded() {
			t.Fatal("OpenSnapshot network does not report SnapshotLoaded")
		}
		if loaded.Name() != fresh.Name() || loaded.LayerCount() != fresh.LayerCount() {
			t.Fatalf("identity diverged: %s/%d vs %s/%d",
				loaded.Name(), loaded.LayerCount(), fresh.Name(), fresh.LayerCount())
		}
		for _, mode := range Modes() {
			want, err := fresh.Run(mode)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.Run(mode)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, style.String()+"/"+mode.String(), want, got)
		}
		// OCC rebuilds its structures from the persisted spec — it must
		// agree too.
		wantOCC, err := fresh.RunOCC()
		if err != nil {
			t.Fatal(err)
		}
		gotOCC, err := loaded.RunOCC()
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, style.String()+"/occ", wantOCC, gotOCC)
	}
}

// TestWithSnapshotDir proves Load's snapshot-dir protocol: first call
// builds and persists (a miss), second call loads (a hit), and both
// simulate identically.
func TestWithSnapshotDir(t *testing.T) {
	dir := t.TempDir()
	cold, err := Load("MNIST", WithConfig(testConfig()), WithSnapshotDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if cold.SnapshotLoaded() {
		t.Fatal("first load reported a snapshot hit in an empty dir")
	}
	warm, err := Load("MNIST", WithConfig(testConfig()), WithSnapshotDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.SnapshotLoaded() {
		t.Fatal("second load did not hit the snapshot")
	}
	a, err := cold.Run(ORCDOF)
	if err != nil {
		t.Fatal(err)
	}
	b, err := warm.Run(ORCDOF)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "dir hit", a, b)
	// A different build point must not collide with the cached file.
	other, err := Load("MNIST", WithConfig(testConfig()), WithSnapshotDir(dir), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if other.SnapshotLoaded() {
		t.Fatal("different seed hit the other seed's snapshot")
	}
}

// TestOpenSnapshotOptionBoundary proves run-scoped options are honored
// and build-scoped options rejected, mirroring the run-option contract.
func TestOpenSnapshotOptionBoundary(t *testing.T) {
	net, err := Load("MNIST", WithConfig(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	path := writeSnapshot(t, t.TempDir(), net)
	if _, err := OpenSnapshot(path, WithWorkers(2), WithMaxWindows(6)); err != nil {
		t.Fatalf("run-scoped options rejected: %v", err)
	}
	for name, opt := range map[string]Option{
		"seed":     WithSeed(99),
		"ou":       WithOU(32),
		"crossbar": WithCrossbar(64),
		"cellbits": WithCellBits(4),
		"prune":    WithPrune(GSL),
		"slicecap": WithSliceCap(2),
	} {
		if _, err := OpenSnapshot(path, opt); err == nil {
			t.Fatalf("build-scoped option %q accepted", name)
		}
	}
}

// TestOpenSnapshotNamedErrors proves decode failures surface as the
// package's named errors through the public entry point.
func TestOpenSnapshotNamedErrors(t *testing.T) {
	net, err := Load("MNIST", WithConfig(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	path := writeSnapshot(t, t.TempDir(), net)
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)-9] }, ErrSnapshotCorrupt},
		{"version", func(b []byte) []byte { b[8] = 42; return b }, ErrSnapshotVersion},
		{"hash", func(b []byte) []byte { b[41] ^= 0x10; return b }, ErrSnapshotHash},
	}
	for _, tc := range cases {
		bad := tc.mutate(append([]byte(nil), img...))
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSnapshot(path); !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want errors.Is(%v)", tc.name, err, tc.want)
		}
	}
}

// TestBuildInputShapeValidation is the API-boundary table test: every
// malformed [channels, height, width] shape must be rejected with
// ErrInvalidShape before it reaches the workload builder.
func TestBuildInputShapeValidation(t *testing.T) {
	cases := []struct {
		name  string
		shape []int
		ok    bool
	}{
		{"nil", nil, false},
		{"empty", []int{}, false},
		{"too few dims", []int{3, 5}, false},
		{"too many dims", []int{3, 5, 5, 1}, false},
		{"zero dim", []int{3, 0, 0}, false},
		{"negative dim", []int{3, -5, 5}, false},
		{"valid", []int{1, 8, 8}, true},
	}
	for _, tc := range cases {
		_, err := Build("t", "conv3x2-4", tc.shape, WithConfig(testConfig()))
		if tc.ok {
			if err != nil {
				t.Fatalf("%s: rejected valid shape: %v", tc.name, err)
			}
			continue
		}
		if !errors.Is(err, ErrInvalidShape) {
			t.Fatalf("%s (%v): got %v, want errors.Is(ErrInvalidShape)", tc.name, tc.shape, err)
		}
	}
}

// benchColdNet picks the paper's largest network for the cold-start
// contrast the snapshot format exists for.
const benchColdNet = "VGG-16"

// BenchmarkColdStartBuild measures Load's full build path — workload
// synthesis plus compression structures — for VGG-16.
func BenchmarkColdStartBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Load(benchColdNet); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdStartOpenSnapshot measures the same cold start through
// a snapshot file: one read plus zero-copy decoding.
func BenchmarkColdStartOpenSnapshot(b *testing.B) {
	net, err := Load(benchColdNet)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	path := filepath.Join(dir, "vgg16.sresnap")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := net.WriteTo(f); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OpenSnapshot(path); err != nil {
			b.Fatal(err)
		}
	}
}
