// Package sre is the public API of the Sparse ReRAM Engine reproduction
// (Yang et al., "Sparse ReRAM Engine: Joint Exploration of Activation and
// Weight Sparsity in Compressed Neural Networks", ISCA 2019).
//
// The library simulates DNN inference on a practical, OU-based
// ReRAM accelerator and reports cycles, time and energy under the
// paper's sparsity-exploitation modes:
//
//	net, _ := sre.LoadNetwork("VGG-16", sre.SSL, sre.DefaultConfig())
//	res, _ := net.Run(sre.ORCDOF)
//
// Networks come from the paper's Table 2 (LoadNetwork) or from custom
// topology strings (BuildNetwork). See DESIGN.md for the model and
// EXPERIMENTS.md for the paper-vs-measured record.
package sre

import (
	"fmt"

	"sre/internal/compress"
	"sre/internal/core"
	"sre/internal/energy"
	"sre/internal/isaac"
	"sre/internal/mapping"
	"sre/internal/noc"
	"sre/internal/quant"
	"sre/internal/reram"
	"sre/internal/workload"
)

// Mode is a sparsity-exploitation configuration (paper §6).
type Mode int

const (
	// Baseline exploits no sparsity: every OU of every mapped weight
	// executes for every input bit slice.
	Baseline Mode = iota
	// Naive removes crossbar rows whose cells are all zero.
	Naive
	// ReCom removes whole weight-matrix rows (ReCom [24]).
	ReCom
	// ORC is OU-based row compression: per-column-group zero rows are
	// removed, with delta-encoded input indexes.
	ORC
	// DOF is Dynamic OU Formation: only wordlines with non-zero input
	// bits are activated, gathered into virtual OUs at run time.
	DOF
	// ORCDOF combines ORC and DOF — the paper's full Sparse ReRAM Engine.
	ORCDOF
)

// Modes lists every mode in the paper's presentation order.
func Modes() []Mode { return []Mode{Baseline, Naive, ReCom, ORC, DOF, ORCDOF} }

func (m Mode) String() string {
	switch m {
	case Baseline:
		return "baseline"
	case Naive:
		return "naive"
	case ReCom:
		return "recom"
	case ORC:
		return "orc"
	case DOF:
		return "dof"
	case ORCDOF:
		return "orc+dof"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

func (m Mode) coreMode() (core.Mode, error) {
	switch m {
	case Baseline:
		return core.ModeBaseline, nil
	case Naive:
		return core.ModeNaive, nil
	case ReCom:
		return core.ModeReCom, nil
	case ORC:
		return core.ModeORC, nil
	case DOF:
		return core.ModeDOF, nil
	case ORCDOF:
		return core.ModeORCDOF, nil
	}
	return core.Mode{}, fmt.Errorf("sre: unknown mode %d", int(m))
}

// PruneStyle selects the synthetic pruning the weights imitate.
type PruneStyle int

const (
	// SSL imitates structured sparsity learning [45] — the paper's main
	// configuration.
	SSL PruneStyle = iota
	// GSL imitates SkimCaffe's unstructured guided sparsity learning
	// (the paper's Fig. 23 non-SSL study).
	GSL
	// Dense leaves the weights unpruned.
	Dense
)

// Config selects the simulated hardware point. The zero value is not
// valid; start from DefaultConfig.
type Config struct {
	CrossbarSize   int // square crossbar dimension (128)
	OUHeight       int // concurrently activated wordlines (16)
	OUWidth        int // concurrently sensed bitlines (16)
	WeightBits     int // weight precision (16)
	ActivationBits int // activation precision (16)
	CellBits       int // bits per ReRAM cell (2)
	DACBits        int // wordline driver resolution (1)
	IndexBits      int // input-index width; 0 = per-network Table 2 value
	MaxWindows     int // per-layer window sampling cap; 0 = all windows
	Seed           uint64
}

// DefaultConfig returns the paper's Table 1 design point.
func DefaultConfig() Config {
	return Config{
		CrossbarSize:   128,
		OUHeight:       16,
		OUWidth:        16,
		WeightBits:     16,
		ActivationBits: 16,
		CellBits:       2,
		DACBits:        1,
		IndexBits:      0,
		MaxWindows:     48,
		Seed:           1,
	}
}

// WithOU returns the config with a square OU size.
func (c Config) WithOU(s int) Config {
	c.OUHeight, c.OUWidth = s, s
	return c
}

func (c Config) geometry() mapping.Geometry {
	return mapping.Geometry{XbarRows: c.CrossbarSize, XbarCols: c.CrossbarSize,
		SWL: c.OUHeight, SBL: c.OUWidth}
}

func (c Config) params() quant.Params {
	return quant.Params{WBits: c.WeightBits, ABits: c.ActivationBits,
		CellBits: c.CellBits, DACBits: c.DACBits}
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if err := c.geometry().Validate(); err != nil {
		return err
	}
	return c.params().Validate()
}

// Breakdown splits energy by component class (joules).
type Breakdown struct {
	Compute      float64 // arrays, DACs, S&H, ADCs, IR/OR, shift-and-add
	EDRAM        float64 // buffer fetches
	Index        float64 // Index Decoder + Wordline Vector Generator
	Interconnect float64 // inter-layer feature-map transfers over the NoC
	Leakage      float64
}

// Total returns the summed energy in joules.
func (b Breakdown) Total() float64 {
	return b.Compute + b.EDRAM + b.Index + b.Interconnect + b.Leakage
}

// LayerResult reports one layer of a run.
type LayerResult struct {
	Name    string
	Cycles  int64
	Seconds float64
	Energy  Breakdown
}

// Result reports one network under one mode and config.
type Result struct {
	Network          string
	Mode             Mode
	Cycles           int64
	Seconds          float64
	Energy           Breakdown
	CompressionRatio float64 // weight compression of the mode's scheme
	IndexStorageBits int64   // input-index storage the scheme needs
	Layers           []LayerResult
}

// Network is a built, simulator-ready model.
type Network struct {
	name  string
	spec  workload.Spec
	built *workload.Built
	cfg   Config
	style PruneStyle
	occ   []*compress.OCCStructure // lazy, for RunOCC
}

// Networks lists the paper's Table 2 model names.
func Networks() []string {
	specs := workload.Specs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// LoadNetwork builds one of the paper's Table 2 networks with synthetic
// weights/activations matching its published sparsity, pruned in the
// given style, under the given hardware config.
func LoadNetwork(name string, style PruneStyle, cfg Config) (*Network, error) {
	spec, err := workload.SpecByName(name)
	if err != nil {
		return nil, err
	}
	return buildNetwork(spec, style, cfg)
}

// BuildNetwork builds a custom model from a topology string (see
// internal/nn.Parse grammar; e.g. "conv5x20-pool-conv5x50-pool-500-10")
// with the given overall weight/activation sparsity targets.
func BuildNetwork(name, topology string, inputShape []int,
	weightSparsity, activationSparsity float64, style PruneStyle, cfg Config) (*Network, error) {
	if len(inputShape) != 3 {
		return nil, fmt.Errorf("sre: input shape must be [channels, height, width]")
	}
	spec := workload.Spec{
		Name:           name,
		Topology:       topology,
		Input:          []int{inputShape[0], inputShape[1], inputShape[2]},
		WeightSparsity: weightSparsity,
		ActSparsity:    activationSparsity,
		ConvSparsity:   weightSparsity,
		FCSparsity:     weightSparsity,
		RowFrac:        weightSparsity * 0.15,
		SegFrac:        weightSparsity * 0.4,
		ActOctaves:     5,
		IndexBits:      5,
		GSLConv:        weightSparsity,
		GSLFC:          weightSparsity,
	}
	return buildNetwork(spec, style, cfg)
}

func buildNetwork(spec workload.Spec, style PruneStyle, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var mode workload.PruneMode
	switch style {
	case SSL:
		mode = workload.SSL
	case GSL:
		mode = workload.GSL
	case Dense:
		mode = workload.NoPrune
	default:
		return nil, fmt.Errorf("sre: unknown prune style %d", int(style))
	}
	built, err := spec.Build(mode, cfg.params(), cfg.geometry(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Network{name: spec.Name, spec: spec, built: built, cfg: cfg, style: style}, nil
}

// Name returns the network's name.
func (n *Network) Name() string { return n.name }

// LayerCount returns the number of matrix (crossbar-mapped) layers.
func (n *Network) LayerCount() int { return len(n.built.Layers) }

// indexBits resolves the effective index width.
func (n *Network) indexBits() int {
	if n.cfg.IndexBits > 0 {
		return n.cfg.IndexBits
	}
	return n.spec.IndexBits
}

// Run simulates the network under the given mode on this network's
// hardware config.
func (n *Network) Run(mode Mode) (Result, error) {
	cm, err := mode.coreMode()
	if err != nil {
		return Result{}, err
	}
	cfg := core.Config{
		Geometry:   n.cfg.geometry(),
		Quant:      n.cfg.params(),
		Mode:       cm,
		IndexBits:  n.indexBits(),
		MaxWindows: n.cfg.MaxWindows,
		Energy:     energy.Default(),
		NoC:        noc.Default(),
	}
	res := core.SimulateNetwork(n.built.Layers, cfg)
	out := Result{
		Network: n.name,
		Mode:    mode,
		Cycles:  res.Cycles,
		Seconds: res.Time,
		Energy:  Breakdown(res.Energy),
	}
	for _, lr := range res.Layers {
		out.Layers = append(out.Layers, LayerResult{
			Name: lr.Name, Cycles: lr.Cycles, Seconds: lr.Time,
			Energy: Breakdown(lr.Energy),
		})
	}
	// Compression ratio and index storage of the mode's weight scheme.
	var totalCells, compCells int64
	var storage int64
	for _, l := range n.built.Layers {
		totalCells += l.Struct.Layout.TotalCells()
		compCells += l.Struct.CompressedCells(cm.Scheme, n.indexBits())
		storage += l.Struct.IndexStorageBits(cm.Scheme, n.indexBits())
	}
	if compCells > 0 {
		out.CompressionRatio = float64(totalCells) / float64(compCells)
	}
	out.IndexStorageBits = storage
	return out, nil
}

// RunAll simulates every mode and returns results keyed by mode.
func (n *Network) RunAll() (map[Mode]Result, error) {
	out := make(map[Mode]Result, len(Modes()))
	for _, m := range Modes() {
		r, err := n.Run(m)
		if err != nil {
			return nil, err
		}
		out[m] = r
	}
	return out, nil
}

// RunOCC simulates the network under OU-column compression (§4.1,
// Fig. 8(c)) — the row-compression alternative the paper rejects because
// it needs output indexing and cannot combine with DOF (Fig. 10). The
// per-layer OCC structures are built lazily on first call.
func (n *Network) RunOCC() (Result, error) {
	if n.occ == nil {
		var mode workload.PruneMode
		switch n.style {
		case SSL:
			mode = workload.SSL
		case GSL:
			mode = workload.GSL
		default:
			mode = workload.NoPrune
		}
		occs, err := n.spec.BuildOCCStructures(mode, n.cfg.params(), n.cfg.geometry(), n.cfg.Seed)
		if err != nil {
			return Result{}, err
		}
		n.occ = occs
	}
	layers := make([]core.Layer, len(n.built.Layers))
	copy(layers, n.built.Layers)
	for i := range layers {
		layers[i].OCC = n.occ[i]
	}
	cfg := core.Config{
		Geometry:   n.cfg.geometry(),
		Quant:      n.cfg.params(),
		Mode:       core.ModeOCC,
		IndexBits:  n.indexBits(),
		MaxWindows: n.cfg.MaxWindows,
		Energy:     energy.Default(),
		NoC:        noc.Default(),
	}
	res := core.SimulateNetwork(layers, cfg)
	out := Result{
		Network: n.name,
		Cycles:  res.Cycles,
		Seconds: res.Time,
		Energy:  Breakdown(res.Energy),
	}
	var total, comp, outBits int64
	for i := range layers {
		total += layers[i].Struct.Layout.TotalCells()
		comp += n.occ[i].CompressedCells()
		outBits += n.occ[i].OutputIndexBits()
	}
	if comp > 0 {
		out.CompressionRatio = float64(total) / float64(comp)
	}
	out.IndexStorageBits = outBits
	return out, nil
}

// RunISAAC simulates the network on the over-idealized ISAAC-style
// accelerator (§7.5), optionally with ReCom weight compression.
func (n *Network) RunISAAC(withReCom bool) Result {
	cfg := isaac.DefaultConfig()
	cfg.Geometry = n.cfg.geometry()
	cfg.Quant = n.cfg.params()
	cfg.ReCom = withReCom
	res := isaac.SimulateNetwork(n.built.ISAACInputs(), cfg)
	out := Result{
		Network: n.name + "/isaac",
		Cycles:  res.Cycles,
		Seconds: res.Time,
		Energy:  Breakdown(res.Energy),
	}
	for _, lr := range res.Layers {
		out.Layers = append(out.Layers, LayerResult{
			Name: lr.Name, Cycles: lr.Cycles, Seconds: lr.Time,
			Energy: Breakdown(lr.Energy),
		})
	}
	return out
}

// CompressionRatio returns the network's weight compression ratio under
// a scheme without running a simulation.
func (n *Network) CompressionRatio(mode Mode) (float64, error) {
	cm, err := mode.coreMode()
	if err != nil {
		return 0, err
	}
	var total, comp int64
	for _, l := range n.built.Layers {
		total += l.Struct.Layout.TotalCells()
		comp += l.Struct.CompressedCells(cm.Scheme, n.indexBits())
	}
	if comp == 0 {
		comp = 1
	}
	return float64(total) / float64(comp), nil
}

// IdealCompressionRatio returns the Fig. 20 upper bound (every zero cell
// removed).
func (n *Network) IdealCompressionRatio() float64 {
	var total, comp int64
	for _, l := range n.built.Layers {
		total += l.Struct.Layout.TotalCells()
		comp += l.Struct.CompressedCells(compress.Ideal, 0)
	}
	if comp == 0 {
		comp = 1
	}
	return float64(total) / float64(comp)
}

// Cell is a ReRAM device technology for the accuracy model (Fig. 5).
type Cell struct {
	Bits   int
	RRatio float64
	Sigma  float64
}

// BaselineCell returns the paper's WOx (R_b, σ_b) device.
func BaselineCell() Cell {
	c := reram.WOxBaseline()
	return Cell{Bits: c.Bits, RRatio: c.RRatio, Sigma: c.Sigma}
}

// Improved returns the cell with k× larger R-ratio and k× smaller σ.
func (c Cell) Improved(k float64) Cell {
	return Cell{Bits: c.Bits, RRatio: c.RRatio * k, Sigma: c.Sigma / k}
}

// ReadErrorProbability returns the probability that a bitline read over
// m concurrently driven wordlines is mis-sensed — the §3 mechanism that
// forces OU-based operation.
func (c Cell) ReadErrorProbability(m int, meanState float64) float64 {
	rc := reram.Cell{Bits: c.Bits, RRatio: c.RRatio, Sigma: c.Sigma}
	return rc.ReadErrorProb(m, meanState)
}
