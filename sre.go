// Package sre is the public API of the Sparse ReRAM Engine reproduction
// (Yang et al., "Sparse ReRAM Engine: Joint Exploration of Activation and
// Weight Sparsity in Compressed Neural Networks", ISCA 2019).
//
// The library simulates DNN inference on a practical, OU-based
// ReRAM accelerator and reports cycles, time and energy under the
// paper's sparsity-exploitation modes:
//
//	net, _ := sre.Load("VGG-16", sre.WithOU(16))
//	res, _ := net.RunContext(ctx, sre.ORCDOF)
//
// Networks come from the paper's Table 2 (Load) or from custom
// topology strings (Build); both accept functional options. Runs are
// sharded over a worker pool (WithWorkers) with bit-identical results
// at any width, and RunContext makes long sweeps cancellable and
// observable (WithProgress). See DESIGN.md for the model and
// EXPERIMENTS.md for the paper-vs-measured record.
//
// Built networks persist: Network.WriteTo serializes everything a
// build produces into one versioned artifact, OpenSnapshot loads it
// back bit-identically, and WithSnapshotDir turns Load/Build into a
// content-addressed cache over a snapshot directory (DESIGN.md §6).
package sre

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"sre/internal/compress"
	"sre/internal/core"
	"sre/internal/energy"
	"sre/internal/isaac"
	"sre/internal/mapping"
	"sre/internal/metrics"
	"sre/internal/noc"
	"sre/internal/parallel"
	"sre/internal/quant"
	"sre/internal/reram"
	"sre/internal/snapshot"
	"sre/internal/workload"
)

// Mode is a sparsity-exploitation configuration (paper §6, plus the
// weight bit-slice extensions).
type Mode int

const (
	// Baseline exploits no sparsity: every OU of every mapped weight
	// executes for every input bit slice.
	Baseline Mode = iota
	// Naive removes crossbar rows whose cells are all zero.
	Naive
	// ReCom removes whole weight-matrix rows (ReCom [24]).
	ReCom
	// ORC is OU-based row compression: per-column-group zero rows are
	// removed, with delta-encoded input indexes.
	ORC
	// DOF is Dynamic OU Formation: only wordlines with non-zero input
	// bits are activated, gathered into virtual OUs at run time.
	DOF
	// ORCDOF combines ORC and DOF — the paper's full Sparse ReRAM Engine.
	ORCDOF
	// WSS adds weight bit-slice sparsity: weights map slice-major so
	// each OU column group holds same-significance bit slices of
	// neighbouring weights, per-group zero rows are removed exactly as
	// ORC does, and a group whose whole slice is zero is elided —
	// no OUs, no driven wordlines, no eDRAM fetch.
	WSS
	// ORCDOFWSS composes all three sparsity axes: per-group row
	// compression, weight-slice elision, and Dynamic OU Formation.
	ORCDOFWSS
)

// modeDesc is one row of the mode registry: the canonical wire spelling
// and the core simulator configuration a public Mode stands for.
type modeDesc struct {
	name string
	core core.Mode
}

// modeTable is the central mode registry, indexed by Mode. Everything
// mode-dispatched in this package — Modes, String, ParseMode,
// MarshalText, coreMode — derives from it, so adding a mode is exactly
// one Mode constant plus one descriptor row; there are no parallel
// switch chains to keep in sync. Existing rows must keep their position
// and spelling: both are wire-visible (served JSON, CLI flags) and
// pinned by TestModesRegistryPinned.
var modeTable = [...]modeDesc{
	Baseline:  {"baseline", core.ModeBaseline},
	Naive:     {"naive", core.ModeNaive},
	ReCom:     {"recom", core.ModeReCom},
	ORC:       {"orc", core.ModeORC},
	DOF:       {"dof", core.ModeDOF},
	ORCDOF:    {"orc+dof", core.ModeORCDOF},
	WSS:       {"wss", core.ModeWSS},
	ORCDOFWSS: {"orc+dof+wss", core.ModeORCDOFWSS},
}

// valid reports whether m is a registry entry.
func (m Mode) valid() bool { return m >= 0 && int(m) < len(modeTable) }

// Modes lists every mode in the paper's presentation order (the
// registry order; bit-slice extensions follow the paper's six).
func Modes() []Mode {
	out := make([]Mode, len(modeTable))
	for i := range out {
		out[i] = Mode(i)
	}
	return out
}

func (m Mode) String() string {
	if !m.valid() {
		return fmt.Sprintf("mode(%d)", int(m))
	}
	return modeTable[m].name
}

// modeNames returns every canonical spelling joined with "|", for error
// messages.
func modeNames() string {
	names := make([]string, len(modeTable))
	for i := range modeTable {
		names[i] = modeTable[i].name
	}
	return strings.Join(names, "|")
}

// ParseMode parses a Mode's canonical spelling ("baseline", "naive",
// "recom", "orc", "dof", "orc+dof", "wss", "orc+dof+wss"),
// case-insensitively. It is the inverse of Mode.String and the single
// spelling shared by the CLIs and the sreserved wire format.
func ParseMode(s string) (Mode, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	for i := range modeTable {
		if modeTable[i].name == name {
			return Mode(i), nil
		}
	}
	return 0, fmt.Errorf("sre: unknown mode %q (want %s)", s, modeNames())
}

// MarshalText implements encoding.TextMarshaler with the canonical
// spelling, so Mode fields JSON-encode as strings ("orc+dof") rather
// than bare ints.
func (m Mode) MarshalText() ([]byte, error) {
	if !m.valid() {
		return nil, fmt.Errorf("sre: cannot marshal unknown mode %d", int(m))
	}
	return []byte(modeTable[m].name), nil
}

// UnmarshalText implements encoding.TextUnmarshaler via ParseMode.
func (m *Mode) UnmarshalText(text []byte) error {
	v, err := ParseMode(string(text))
	if err != nil {
		return err
	}
	*m = v
	return nil
}

func (m Mode) coreMode() (core.Mode, error) {
	if !m.valid() {
		return core.Mode{}, fmt.Errorf("sre: unknown mode %d", int(m))
	}
	return modeTable[m].core, nil
}

// PruneStyle selects the synthetic pruning the weights imitate.
type PruneStyle int

const (
	// SSL imitates structured sparsity learning [45] — the paper's main
	// configuration.
	SSL PruneStyle = iota
	// GSL imitates SkimCaffe's unstructured guided sparsity learning
	// (the paper's Fig. 23 non-SSL study).
	GSL
	// Dense leaves the weights unpruned.
	Dense
)

// PruneStyles lists every pruning style.
func PruneStyles() []PruneStyle { return []PruneStyle{SSL, GSL, Dense} }

func (s PruneStyle) String() string {
	switch s {
	case SSL:
		return "ssl"
	case GSL:
		return "gsl"
	case Dense:
		return "dense"
	}
	return fmt.Sprintf("prune(%d)", int(s))
}

// ParsePruneStyle parses a PruneStyle's canonical spelling ("ssl",
// "gsl", "dense"), case-insensitively.
func ParsePruneStyle(s string) (PruneStyle, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	for _, st := range PruneStyles() {
		if st.String() == name {
			return st, nil
		}
	}
	return 0, fmt.Errorf("sre: unknown prune style %q (want ssl|gsl|dense)", s)
}

// MarshalText implements encoding.TextMarshaler with the canonical
// spelling.
func (s PruneStyle) MarshalText() ([]byte, error) {
	if s < SSL || s > Dense {
		return nil, fmt.Errorf("sre: cannot marshal unknown prune style %d", int(s))
	}
	return []byte(s.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler via ParsePruneStyle.
func (s *PruneStyle) UnmarshalText(text []byte) error {
	v, err := ParsePruneStyle(string(text))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// Config selects the simulated hardware point. The zero value is not
// valid; start from DefaultConfig. New code should prefer the
// functional options (WithOU, WithSeed, …) accepted by Load, Build,
// and RunContext; WithConfig adopts a whole Config at once.
type Config struct {
	CrossbarSize   int // square crossbar dimension (128)
	OUHeight       int // concurrently activated wordlines (16)
	OUWidth        int // concurrently sensed bitlines (16)
	WeightBits     int // weight precision (16)
	ActivationBits int // activation precision (16)
	CellBits       int // bits per ReRAM cell (2)
	DACBits        int // wordline driver resolution (1)
	IndexBits      int // input-index width; 0 = per-network Table 2 value
	MaxWindows     int // per-layer window sampling cap; 0 = all windows
	SliceCap       int // weight bit-slice cap at build time; 0 = off (see WithSliceCap)
	Seed           uint64
	Workers        int // simulation worker-pool width; 0 = GOMAXPROCS
}

// DefaultConfig returns the paper's Table 1 design point.
func DefaultConfig() Config {
	return Config{
		CrossbarSize:   128,
		OUHeight:       16,
		OUWidth:        16,
		WeightBits:     16,
		ActivationBits: 16,
		CellBits:       2,
		DACBits:        1,
		IndexBits:      0,
		MaxWindows:     48,
		Seed:           1,
		Workers:        0,
	}
}

// settings is the resolved option set a constructor or run starts from.
type settings struct {
	cfg         Config
	style       PruneStyle
	weightSp    float64 // Build: overall weight-sparsity target
	actSp       float64 // Build: overall activation-sparsity target
	progress    func(Progress)
	metrics     *metrics.Registry
	noCodeCache bool
	snapshotDir string
}

// Option adjusts network construction (Load, Build, OpenSnapshot) or a
// single run (RunContext, RunAllContext).
//
// Precedence is strictly positional: options are applied in order, and
// a later option wins over an earlier one for the fields it sets.
// Config values take part in the same ordering — WithConfig(cfg)
// adopts the whole Config at its position, so field options before it
// are overwritten and field options after it override its fields.
// Constructors start from DefaultConfig; there is no separate
// Config-vs-Option precedence beyond that ordering.
type Option func(*settings)

// WithConfig adopts an entire Config (a hardware design point) at
// once; later options override its fields.
func WithConfig(cfg Config) Option { return func(s *settings) { s.cfg = cfg } }

// WithPrune selects the synthetic pruning style (default SSL).
func WithPrune(style PruneStyle) Option { return func(s *settings) { s.style = style } }

// WithOU sets a square OU size (concurrently activated wordlines ×
// sensed bitlines).
func WithOU(size int) Option {
	return func(s *settings) { s.cfg.OUHeight, s.cfg.OUWidth = size, size }
}

// WithCrossbar sets the square crossbar dimension.
func WithCrossbar(size int) Option { return func(s *settings) { s.cfg.CrossbarSize = size } }

// WithCellBits sets the bits stored per ReRAM cell.
func WithCellBits(bits int) Option { return func(s *settings) { s.cfg.CellBits = bits } }

// WithDACBits sets the wordline driver resolution.
func WithDACBits(bits int) Option { return func(s *settings) { s.cfg.DACBits = bits } }

// WithIndexBits overrides the input-index width (0 = the per-network
// Table 2 value).
func WithIndexBits(bits int) Option { return func(s *settings) { s.cfg.IndexBits = bits } }

// WithSeed sets the synthetic-workload seed.
func WithSeed(seed uint64) Option { return func(s *settings) { s.cfg.Seed = seed } }

// WithMaxWindows caps per-layer window sampling (0 = all windows).
func WithMaxWindows(n int) Option { return func(s *settings) { s.cfg.MaxWindows = n } }

// WithWorkers sets the simulation worker-pool width (0 = GOMAXPROCS).
// Results are bit-identical at any width; WithWorkers(1) forces the
// serial path.
func WithWorkers(n int) Option { return func(s *settings) { s.cfg.Workers = n } }

// WithSparsity sets Build's overall weight and activation sparsity
// targets (ignored by Load, whose networks carry Table 2 sparsities).
func WithSparsity(weight, activation float64) Option {
	return func(s *settings) { s.weightSp, s.actSp = weight, activation }
}

// WithSliceCap caps quantized weight magnitudes at build time so every
// weight fits in its n least-significant bit slices — the structure
// the WSS and ORCDOFWSS modes elide. 0 (the default) leaves weights
// untouched and is bit-identical to builds that predate the knob. The
// cap is build-scoped: it reshapes the weights themselves (all modes
// see the capped network), participates in the snapshot content hash,
// and is rejected by OpenSnapshot like any other build-point change.
func WithSliceCap(n int) Option { return func(s *settings) { s.cfg.SliceCap = n } }

// WithProgress registers a callback invoked after each simulated layer
// completes. Calls are serialized but may arrive out of layer order
// when layers overlap on the worker pool.
func WithProgress(fn func(Progress)) Option { return func(s *settings) { s.progress = fn } }

// WithCodeCache enables or disables the per-layer window-code plane
// cache for a run (default enabled). With it on, RunAll's modes
// share one materialization of each layer's sampled activation codes;
// off, every mode re-reads the activation source per window. Results
// are bit-identical either way — disable it only to bound memory on
// very large unsampled runs or to benchmark the uncached path.
func WithCodeCache(enabled bool) Option {
	return func(s *settings) { s.noCodeCache = !enabled }
}

// Metrics is a run-observability registry (see WithMetrics). Create one
// with NewMetrics; a nil registry disables collection at zero cost.
type Metrics = metrics.Registry

// MetricsSnapshot is a merged point-in-time view of a Metrics registry.
type MetricsSnapshot = metrics.Snapshot

// NewMetrics returns an empty metrics registry ready to hand to
// WithMetrics. One registry may observe any number of concurrent runs;
// Snapshot merges all of them deterministically.
func NewMetrics() *Metrics { return metrics.NewRegistry() }

// WithSnapshotDir makes Load and Build consult dir before building:
// the build inputs are content-hashed, and if dir holds a snapshot for
// that hash it is loaded instead of built (SnapshotLoaded reports
// which happened). On a miss the network is built and persisted to dir
// atomically, so the next process — or a replica sharing the
// directory — starts warm. A snapshot that exists but is corrupt or
// version-skewed is a loud error, never a silent rebuild. The option
// is ignored by per-run methods.
func WithSnapshotDir(dir string) Option {
	return func(s *settings) { s.snapshotDir = dir }
}

// WithMetrics attaches a metrics registry to a run. The simulator
// records OU activations, wordline-occupancy histograms, window
// sampling, plan-cache traffic, crossbar reads, and worker-pool
// utilization into worker-private shards; Result.Metrics carries the
// merged snapshot. Collection never changes simulation results —
// Cycles and Energy stay bit-identical to an unmetered run.
func WithMetrics(reg *Metrics) Option { return func(s *settings) { s.metrics = reg } }

// Progress reports one completed layer of a running simulation.
type Progress struct {
	Network    string
	Mode       Mode
	LayerIndex int // index into the network's matrix layers
	LayerCount int
	LayersDone int // layers completed so far, including this one
	Layer      LayerResult
	OUEvents   int64 // the layer's OU activations (window-sampling scaled)
	Windows    int   // the layer's total sliding windows
	Sampled    int   // windows actually simulated (MaxWindows sampling)
}

func defaultSettings() settings {
	return settings{cfg: DefaultConfig(), style: SSL, weightSp: 0.5, actSp: 0.5}
}

func (s settings) apply(opts []Option) settings {
	for _, o := range opts {
		o(&s)
	}
	return s
}

func (c Config) geometry() mapping.Geometry {
	return mapping.Geometry{XbarRows: c.CrossbarSize, XbarCols: c.CrossbarSize,
		SWL: c.OUHeight, SBL: c.OUWidth}
}

func (c Config) params() quant.Params {
	return quant.Params{WBits: c.WeightBits, ABits: c.ActivationBits,
		CellBits: c.CellBits, DACBits: c.DACBits}
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if err := c.geometry().Validate(); err != nil {
		return err
	}
	if err := c.params().Validate(); err != nil {
		return err
	}
	if c.CellBits > 0 && (c.SliceCap < 0 || c.SliceCap > c.WeightBits/c.CellBits) {
		return fmt.Errorf("sre: slice cap %d outside [0, %d] (weight bits / cell bits)",
			c.SliceCap, c.WeightBits/c.CellBits)
	}
	return nil
}

// ResultVersion is the current Result wire-format version; see
// Result.Version. Version 2 added the WSS mode spellings ("wss",
// "orc+dof+wss") to the Mode text encoding and the ElidedGroups field.
const ResultVersion = 2

// Breakdown splits a run's energy by component class. Every field is
// in joules; Breakdown is part of the served JSON wire format, so
// field meanings and units are stable within a Result.Version.
type Breakdown struct {
	Compute      float64 // joules: arrays, DACs, S&H, ADCs, IR/OR, shift-and-add
	EDRAM        float64 // joules: buffer fetches
	Index        float64 // joules: Index Decoder + Wordline Vector Generator
	Interconnect float64 // joules: inter-layer feature-map transfers over the NoC
	Leakage      float64 // joules: leakage over the run's duration
}

// Total returns the summed energy in joules.
func (b Breakdown) Total() float64 {
	return b.Compute + b.EDRAM + b.Index + b.Interconnect + b.Leakage
}

// LayerResult reports one layer of a run. Like Result it is part of
// the served JSON wire format; units are fixed per field.
type LayerResult struct {
	Name    string
	Cycles  int64   // accelerator clock cycles the layer occupies
	Seconds float64 // wall-clock seconds at the modeled clock rate
	Energy  Breakdown
}

// Result reports one network under one mode and config.
type Result struct {
	// Version is the wire-format version of this struct (currently
	// ResultVersion). Served JSON carries it so clients can detect
	// field-semantics changes forward-compatibly; a zero Version marks
	// a result from a pre-versioning build.
	Version          int
	Network          string
	Mode             Mode
	Cycles           int64   // accelerator clock cycles, end to end
	Seconds          float64 // wall-clock seconds at the modeled clock rate
	Energy           Breakdown
	CompressionRatio float64 // weight compression of the mode's scheme (×, dimensionless)
	IndexStorageBits int64   // input-index storage the scheme needs (bits)
	// ElidedGroups counts OU column groups whose retained-row plans are
	// empty under the mode's weight scheme, summed over layers
	// (Version 2). Under WSS these are the all-zero weight bit slices:
	// an elided group maps no OUs, drives no wordlines, and issues no
	// eDRAM fetch. Always 0 for Baseline (every group keeps all rows).
	ElidedGroups int64
	Layers       []LayerResult
	// Metrics is the merged observability snapshot when the run carried
	// a WithMetrics registry (nil otherwise). RunAllContext snapshots
	// once after every mode finishes, so all the sweep's results share
	// the sweep-wide view.
	Metrics *MetricsSnapshot
}

// Network is a built, simulator-ready model.
//
// Thread safety: a Network is immutable after construction — the built
// layers, compression structures, and plan/code-plane caches are
// read-only or internally synchronized (sync.Once-per-key builds) — so
// all Run methods are safe for unlimited concurrent use from multiple
// goroutines, including overlapping RunContext/RunAllContext calls on
// the same instance. Lazy OCC structures are guarded by a mutex.
// Concurrent runs that share a WithMetrics registry fold into one
// deterministic snapshot. This is the contract sreserved relies on to
// serve one resident Network per (network, prune, config) key.
type Network struct {
	name     string
	spec     workload.Spec
	built    *workload.Built
	cfg      Config
	style    PruneStyle
	progress func(Progress)

	fromSnapshot bool // loaded from a snapshot rather than built

	occMu sync.Mutex
	occ   []*compress.OCCStructure // lazy, for RunOCC
}

// Networks lists the paper's Table 2 model names.
func Networks() []string {
	specs := workload.Specs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// Load builds one of the paper's Table 2 networks with synthetic
// weights/activations matching its published sparsity. Options select
// the pruning style (default SSL) and hardware point:
//
//	net, err := sre.Load("VGG-16", sre.WithOU(16), sre.WithSeed(7))
func Load(name string, opts ...Option) (*Network, error) {
	spec, err := workload.SpecByName(name)
	if err != nil {
		return nil, err
	}
	return buildNetwork(spec, defaultSettings().apply(opts))
}

// Build builds a custom model from a topology string (see
// internal/nn.Parse grammar; e.g. "conv5x20-pool-conv5x50-pool-500-10").
// WithSparsity sets the overall weight/activation sparsity targets
// (default 0.5 each).
func Build(name, topology string, inputShape []int, opts ...Option) (*Network, error) {
	if err := validateInputShape(inputShape); err != nil {
		return nil, err
	}
	s := defaultSettings().apply(opts)
	spec := workload.Spec{
		Name:           name,
		Topology:       topology,
		Input:          []int{inputShape[0], inputShape[1], inputShape[2]},
		WeightSparsity: s.weightSp,
		ActSparsity:    s.actSp,
		ConvSparsity:   s.weightSp,
		FCSparsity:     s.weightSp,
		RowFrac:        s.weightSp * 0.15,
		SegFrac:        s.weightSp * 0.4,
		ActOctaves:     5,
		IndexBits:      5,
		GSLConv:        s.weightSp,
		GSLFC:          s.weightSp,
	}
	return buildNetwork(spec, s)
}

// ErrInvalidShape marks an input shape rejected at the API boundary;
// match it with errors.Is.
var ErrInvalidShape = errors.New("sre: invalid input shape")

// validateInputShape rejects malformed [channels, height, width]
// shapes before they reach the workload builder, where a zero or
// negative dimension would quietly build a degenerate network.
func validateInputShape(shape []int) error {
	if len(shape) != 3 {
		return fmt.Errorf("%w: got %d dims %v, want [channels, height, width]",
			ErrInvalidShape, len(shape), shape)
	}
	for i, d := range shape {
		if d < 1 {
			return fmt.Errorf("%w: dim %d of %v is %d, every dimension must be >= 1",
				ErrInvalidShape, i, shape, d)
		}
	}
	return nil
}

func buildNetwork(spec workload.Spec, s settings) (*Network, error) {
	if err := s.cfg.Validate(); err != nil {
		return nil, err
	}
	mode, err := s.style.pruneMode()
	if err != nil {
		return nil, err
	}
	if s.cfg.SliceCap > 0 {
		spec.SliceCap = s.cfg.SliceCap
	}
	if s.snapshotDir != "" {
		key := snapshot.Key{Spec: spec, Prune: mode, Quant: s.cfg.params(),
			Geom: s.cfg.geometry(), Seed: s.cfg.Seed}
		wopts := snapshot.WriteOptions{MaxWindows: s.cfg.MaxWindows}
		if s.cfg.IndexBits > 0 {
			wopts.IndexBits = s.cfg.IndexBits
		} else {
			wopts.IndexBits = spec.IndexBits
		}
		built, hit, err := snapshot.LoadOrBuild(s.snapshotDir, key, wopts)
		if err != nil {
			return nil, err
		}
		return &Network{name: spec.Name, spec: spec, built: built, cfg: s.cfg,
			style: s.style, progress: s.progress, fromSnapshot: hit}, nil
	}
	built, err := spec.Build(mode, s.cfg.params(), s.cfg.geometry(), s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Network{name: spec.Name, spec: spec, built: built, cfg: s.cfg,
		style: s.style, progress: s.progress}, nil
}

// pruneMode maps the public style to the workload's, erroring on
// unknown values.
func (s PruneStyle) pruneMode() (workload.PruneMode, error) {
	switch s {
	case SSL:
		return workload.SSL, nil
	case GSL:
		return workload.GSL, nil
	case Dense:
		return workload.NoPrune, nil
	}
	return 0, fmt.Errorf("sre: unknown prune style %d", int(s))
}

// pruneStyleFor is pruneMode's inverse, mapping a snapshot's persisted
// workload mode back to the public style.
func pruneStyleFor(m workload.PruneMode) (PruneStyle, error) {
	switch m {
	case workload.SSL:
		return SSL, nil
	case workload.GSL:
		return GSL, nil
	case workload.NoPrune:
		return Dense, nil
	}
	return 0, fmt.Errorf("sre: snapshot has unknown prune mode %d", int(m))
}

// Named snapshot-decoding failures, re-exported so OpenSnapshot
// callers can match them with errors.Is without importing internals.
var (
	// ErrSnapshotCorrupt marks a snapshot whose lengths, checksums, or
	// structural invariants do not hold (including truncation).
	ErrSnapshotCorrupt = snapshot.ErrCorrupt
	// ErrSnapshotVersion marks a snapshot written by an incompatible
	// format version.
	ErrSnapshotVersion = snapshot.ErrVersion
	// ErrSnapshotHash marks a snapshot whose header content hash does
	// not match its recorded build inputs.
	ErrSnapshotHash = snapshot.ErrHashMismatch
)

// WriteTo serializes the built network — compression structures, ORC
// plan sets, window-code planes, activation parameters, and stats —
// as one versioned snapshot (DESIGN.md §6) and returns the bytes
// written. It implements io.WriterTo. The artifact is keyed by a
// content hash of the build inputs, so OpenSnapshot restores a network
// bit-identical to this one, and WithSnapshotDir can find it by
// hashing the same inputs. Persisted derived sections use this
// network's effective MaxWindows and index width; other run configs
// still load fine and re-derive lazily.
func (n *Network) WriteTo(w io.Writer) (int64, error) {
	mode, err := n.style.pruneMode()
	if err != nil {
		return 0, err
	}
	k := snapshot.Key{Spec: n.spec, Prune: mode, Quant: n.cfg.params(),
		Geom: n.cfg.geometry(), Seed: n.cfg.Seed}
	return snapshot.Write(w, k, n.built,
		snapshot.WriteOptions{MaxWindows: n.cfg.MaxWindows, IndexBits: n.indexBits()})
}

// OpenSnapshot loads a network from a snapshot file in one read,
// skipping the build entirely. The snapshot pins the build point
// (geometry, precision, seed, prune style); options may adjust
// run-scoped knobs (WithWorkers, WithMaxWindows, WithIndexBits,
// WithProgress, …), and any option that would change the build point
// is rejected, exactly as run options are. Decoding failures return
// the named errors ErrSnapshotCorrupt, ErrSnapshotVersion, and
// ErrSnapshotHash — a bad snapshot never silently falls back to a
// rebuild.
func OpenSnapshot(path string, opts ...Option) (*Network, error) {
	k, built, err := snapshot.ReadFile(path)
	if err != nil {
		return nil, err
	}
	style, err := pruneStyleFor(k.Prune)
	if err != nil {
		return nil, err
	}
	cfg := DefaultConfig()
	cfg.CrossbarSize = k.Geom.XbarRows
	cfg.OUHeight, cfg.OUWidth = k.Geom.SWL, k.Geom.SBL
	cfg.WeightBits, cfg.ActivationBits = k.Quant.WBits, k.Quant.ABits
	cfg.CellBits, cfg.DACBits = k.Quant.CellBits, k.Quant.DACBits
	cfg.Seed = k.Seed
	cfg.SliceCap = k.Spec.SliceCap
	if cfg.geometry() != k.Geom || cfg.params() != k.Quant {
		return nil, fmt.Errorf("sre: snapshot %s has a design point Config cannot represent (%+v)", path, k.Geom)
	}
	s := settings{cfg: cfg, style: style}.apply(opts)
	if s.cfg.geometry() != k.Geom || s.cfg.params() != k.Quant ||
		s.cfg.Seed != k.Seed || s.style != style || s.cfg.SliceCap != k.Spec.SliceCap {
		return nil, fmt.Errorf(
			"sre: option would change the snapshot's build point (geometry, precision, seed, or prune style); rebuild with Load/Build instead")
	}
	return &Network{name: k.Spec.Name, spec: k.Spec, built: built, cfg: s.cfg,
		style: style, progress: s.progress, fromSnapshot: true}, nil
}

// SnapshotLoaded reports whether this network came from a snapshot
// (OpenSnapshot, or a WithSnapshotDir cache hit) rather than a fresh
// build — the signal serve-layer hit/miss metrics count.
func (n *Network) SnapshotLoaded() bool { return n.fromSnapshot }

// Name returns the network's name.
func (n *Network) Name() string { return n.name }

// SizeBytes estimates the resident memory a built network pins: the
// per-layer compression structures' group masks (the bytes a snapshot
// would persist) plus whatever window-code and slice-mask planes runs
// have lazily cached so far, with a small fixed constant per layer for
// activation sources and bookkeeping. The estimate is cheap (no
// allocation, a few loads per layer) and monotone — plane caches only
// grow — so callers that account memory, like sreserved's byte-bounded
// registry, can re-read it as the network warms up.
func (n *Network) SizeBytes() int64 {
	total := int64(4096)
	for i := range n.built.Layers {
		l := &n.built.Layers[i]
		if l.Struct != nil {
			total += l.Struct.SizeBytes()
		}
		total += l.Codes.ResidentBytes()
		total += 1024
	}
	return total
}

// LayerCount returns the number of matrix (crossbar-mapped) layers.
func (n *Network) LayerCount() int { return len(n.built.Layers) }

// indexBits resolves the effective index width of the build config.
func (n *Network) indexBits() int { return n.indexBitsFor(n.cfg) }

func (n *Network) indexBitsFor(cfg Config) int {
	if cfg.IndexBits > 0 {
		return cfg.IndexBits
	}
	return n.spec.IndexBits
}

// Run simulates the network under the given mode on this network's
// hardware config. It is RunContext with a background context.
func (n *Network) Run(mode Mode) (Result, error) {
	return n.RunContext(context.Background(), mode)
}

// RunContext simulates the network under the given mode, sharding the
// simulation over the worker pool. Per-run options may adjust
// run-scoped knobs (WithWorkers, WithMaxWindows, WithProgress);
// options that would change the built network (geometry, precision,
// seed, prune style) are rejected. The simulation stops early and
// returns ctx.Err when the context is cancelled.
func (n *Network) RunContext(ctx context.Context, mode Mode, opts ...Option) (Result, error) {
	return n.runContext(ctx, mode, nil, opts)
}

// runSettings resolves per-run options against the build-time config,
// rejecting any change that would invalidate the built structures.
func (n *Network) runSettings(opts []Option) (settings, error) {
	s := settings{cfg: n.cfg, style: n.style, progress: n.progress}.apply(opts)
	if s.cfg.geometry() != n.cfg.geometry() || s.cfg.params() != n.cfg.params() ||
		s.cfg.Seed != n.cfg.Seed || s.style != n.style {
		return settings{}, fmt.Errorf(
			"sre: run option would change the built network (geometry, precision, seed, or prune style); pass it to Load/Build instead")
	}
	return s, nil
}

func (n *Network) runContext(ctx context.Context, mode Mode, pool *parallel.Pool, opts []Option) (Result, error) {
	cm, err := mode.coreMode()
	if err != nil {
		return Result{}, err
	}
	s, err := n.runSettings(opts)
	if err != nil {
		return Result{}, err
	}
	indexBits := n.indexBitsFor(s.cfg)
	cfg := core.Config{
		Geometry:    n.cfg.geometry(),
		Quant:       n.cfg.params(),
		Mode:        cm,
		IndexBits:   indexBits,
		MaxWindows:  s.cfg.MaxWindows,
		Workers:     s.cfg.Workers,
		Pool:        pool,
		Energy:      energy.Default(),
		NoC:         noc.Default(),
		Metrics:     s.metrics,
		NoCodeCache: s.noCodeCache,
	}
	if s.progress != nil {
		progress := s.progress
		cfg.Progress = func(ev core.ProgressEvent) {
			progress(Progress{
				Network: n.name, Mode: mode,
				LayerIndex: ev.Index, LayerCount: ev.Count, LayersDone: ev.Done,
				Layer: LayerResult{Name: ev.Layer.Name, Cycles: ev.Layer.Cycles,
					Seconds: ev.Layer.Time, Energy: Breakdown(ev.Layer.Energy)},
				OUEvents: ev.Layer.OUEvents,
				Windows:  ev.Layer.Windows,
				Sampled:  ev.Layer.Sampled,
			})
		}
	}
	res, err := core.SimulateNetworkContext(ctx, n.built.Layers, cfg)
	if err != nil {
		return Result{}, err
	}
	out := Result{
		Version: ResultVersion,
		Network: n.name,
		Mode:    mode,
		Cycles:  res.Cycles,
		Seconds: res.Time,
		Energy:  Breakdown(res.Energy),
	}
	for _, lr := range res.Layers {
		out.Layers = append(out.Layers, LayerResult{
			Name: lr.Name, Cycles: lr.Cycles, Seconds: lr.Time,
			Energy: Breakdown(lr.Energy),
		})
	}
	// Compression ratio, index storage, and elided groups of the mode's
	// weight scheme.
	var totalCells, compCells int64
	var storage, elided int64
	for _, l := range n.built.Layers {
		totalCells += l.Struct.Layout.TotalCells()
		compCells += l.Struct.CompressedCells(cm.Scheme, indexBits)
		storage += l.Struct.IndexStorageBits(cm.Scheme, indexBits)
		elided += l.Struct.EmptyGroups(cm.Scheme, indexBits)
	}
	if compCells > 0 {
		out.CompressionRatio = float64(totalCells) / float64(compCells)
	}
	out.IndexStorageBits = storage
	out.ElidedGroups = elided
	if s.metrics != nil {
		out.Metrics = s.metrics.Snapshot()
	}
	return out, nil
}

// RunAll simulates every mode concurrently and returns results in
// Modes() order. It is RunAllContext with a background context.
func (n *Network) RunAll() ([]Result, error) {
	return n.RunAllContext(context.Background())
}

// RunAllContext simulates every mode, running the modes concurrently
// through one shared worker pool so total concurrency stays bounded.
// Results come back in Modes() order regardless of completion order
// (use ResultsByMode to key them); per-run options apply to every mode.
func (n *Network) RunAllContext(ctx context.Context, opts ...Option) ([]Result, error) {
	return n.RunModesContext(ctx, Modes(), opts...)
}

// RunModesContext simulates the given modes — any non-empty subset of
// Modes(), in any order — concurrently through one shared worker pool,
// exactly as RunAllContext does for the full set. Results come back in
// the order modes was given. It is the primitive sreserved's
// micro-batcher uses to run the union of a batch's requested modes as
// one sweep.
func (n *Network) RunModesContext(ctx context.Context, modes []Mode, opts ...Option) ([]Result, error) {
	if len(modes) == 0 {
		return nil, fmt.Errorf("sre: RunModesContext needs at least one mode")
	}
	s, err := n.runSettings(opts)
	if err != nil {
		return nil, err
	}
	pool := parallel.New(s.cfg.Workers)
	out := make([]Result, len(modes))
	errs := make([]error, len(modes))
	poolErr := pool.For(ctx, len(modes), func(start, end int) {
		for i := start; i < end; i++ {
			out[i], errs[i] = n.runContext(ctx, modes[i], pool, opts)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if poolErr != nil {
		return nil, poolErr
	}
	if s.metrics != nil {
		// Per-mode snapshots taken while sibling modes were still
		// running are partial; re-snapshot once now that every mode is
		// done so all results agree on the sweep-wide totals.
		snap := s.metrics.Snapshot()
		for i := range out {
			out[i].Metrics = snap
		}
	}
	return out, nil
}

// ActivationSet selects one activation assignment of a batched run
// (RunBatchContext). The zero value selects the network's built-in
// activations.
type ActivationSet struct {
	// ActSeed, when non-zero and different from the network's build
	// seed, re-derives every layer's synthetic activations from this
	// seed: same statistics (sparsity, octaves, window counts), an
	// independent random stream — weights, pruning, and the compression
	// structures are untouched. Zero, or the build seed itself, selects
	// the network's own activations.
	ActSeed uint64
}

// RunBatch is RunBatchContext with a background context.
func (n *Network) RunBatch(modes []Mode, acts []ActivationSet, opts ...Option) ([][]Result, error) {
	return n.RunBatchContext(context.Background(), modes, acts, opts...)
}

// RunBatchContext simulates the given modes once per activation set as
// one batched multi-activation sweep and returns results indexed
// [set][mode]. Each Result is bit-identical to the same mode run alone
// over this network with that set's activations substituted; the batch
// shares everything activation-independent across sets — compression
// plans, window-code and slice-mask planes, scratch arenas, and (for
// the static modes, which never read activation values) the entire
// simulation — so a coalesced sweep is sub-linear in the number of
// sets. Modes run concurrently through one shared worker pool, exactly
// as RunModesContext. Per-run options follow RunContext's rules;
// WithProgress is not invoked on the batched path. It is the primitive
// sreserved's micro-batcher uses to serve coalesced requests that
// differ only in their activation seed.
func (n *Network) RunBatchContext(ctx context.Context, modes []Mode, acts []ActivationSet, opts ...Option) ([][]Result, error) {
	if len(modes) == 0 {
		return nil, fmt.Errorf("sre: RunBatchContext needs at least one mode")
	}
	if len(acts) == 0 {
		return nil, fmt.Errorf("sre: RunBatchContext needs at least one activation set")
	}
	s, err := n.runSettings(opts)
	if err != nil {
		return nil, err
	}
	batch := make([]core.BatchInput, len(acts))
	for j, a := range acts {
		if a.ActSeed != 0 && a.ActSeed != n.cfg.Seed {
			batch[j].Sources = n.spec.VariantSources(n.built.Layers, a.ActSeed)
		}
	}
	pool := parallel.New(s.cfg.Workers)
	out := make([][]Result, len(acts))
	for j := range out {
		out[j] = make([]Result, len(modes))
	}
	errs := make([]error, len(modes))
	poolErr := pool.For(ctx, len(modes), func(start, end int) {
		for i := start; i < end; i++ {
			errs[i] = n.runBatchMode(ctx, modes[i], pool, s, batch, out, i)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if poolErr != nil {
		return nil, poolErr
	}
	if s.metrics != nil {
		// As in RunModesContext: re-snapshot once every mode is done so
		// all results agree on the sweep-wide totals.
		snap := s.metrics.Snapshot()
		for j := range out {
			for i := range out[j] {
				out[j][i].Metrics = snap
			}
		}
	}
	return out, nil
}

// runBatchMode runs one mode of a batched sweep and fills column mi of
// the [set][mode] result grid.
func (n *Network) runBatchMode(ctx context.Context, mode Mode, pool *parallel.Pool,
	s settings, batch []core.BatchInput, out [][]Result, mi int) error {
	cm, err := mode.coreMode()
	if err != nil {
		return err
	}
	indexBits := n.indexBitsFor(s.cfg)
	cfg := core.Config{
		Geometry:    n.cfg.geometry(),
		Quant:       n.cfg.params(),
		Mode:        cm,
		IndexBits:   indexBits,
		MaxWindows:  s.cfg.MaxWindows,
		Workers:     s.cfg.Workers,
		Pool:        pool,
		Energy:      energy.Default(),
		NoC:         noc.Default(),
		Metrics:     s.metrics,
		NoCodeCache: s.noCodeCache,
	}
	ress, err := core.SimulateNetworkBatchContext(ctx, n.built.Layers, cfg, batch)
	if err != nil {
		return err
	}
	// The mode's compression ratio, index storage, and elided groups
	// depend only on the weight scheme: compute once, replicate across
	// sets.
	var totalCells, compCells, storage, elided int64
	for _, l := range n.built.Layers {
		totalCells += l.Struct.Layout.TotalCells()
		compCells += l.Struct.CompressedCells(cm.Scheme, indexBits)
		storage += l.Struct.IndexStorageBits(cm.Scheme, indexBits)
		elided += l.Struct.EmptyGroups(cm.Scheme, indexBits)
	}
	for j, res := range ress {
		r := Result{
			Version: ResultVersion,
			Network: n.name,
			Mode:    mode,
			Cycles:  res.Cycles,
			Seconds: res.Time,
			Energy:  Breakdown(res.Energy),
		}
		for _, lr := range res.Layers {
			r.Layers = append(r.Layers, LayerResult{
				Name: lr.Name, Cycles: lr.Cycles, Seconds: lr.Time,
				Energy: Breakdown(lr.Energy),
			})
		}
		if compCells > 0 {
			r.CompressionRatio = float64(totalCells) / float64(compCells)
		}
		r.IndexStorageBits = storage
		r.ElidedGroups = elided
		out[j][mi] = r
	}
	return nil
}

// ResultsByMode keys a RunAll result slice by mode.
func ResultsByMode(results []Result) map[Mode]Result {
	out := make(map[Mode]Result, len(results))
	for _, r := range results {
		out[r.Mode] = r
	}
	return out
}

// RunOCC simulates the network under OU-column compression (§4.1,
// Fig. 8(c)) — the row-compression alternative the paper rejects because
// it needs output indexing and cannot combine with DOF (Fig. 10). The
// per-layer OCC structures are built lazily on first call. Per-run
// options adjust the same run-scoped knobs as RunContext.
func (n *Network) RunOCC(opts ...Option) (Result, error) {
	s, err := n.runSettings(opts)
	if err != nil {
		return Result{}, err
	}
	n.occMu.Lock()
	if n.occ == nil {
		mode, err := n.style.pruneMode()
		if err != nil {
			n.occMu.Unlock()
			return Result{}, err
		}
		occs, err := n.spec.BuildOCCStructures(mode, n.cfg.params(), n.cfg.geometry(), n.cfg.Seed)
		if err != nil {
			n.occMu.Unlock()
			return Result{}, err
		}
		n.occ = occs
	}
	n.occMu.Unlock()
	layers := make([]core.Layer, len(n.built.Layers))
	copy(layers, n.built.Layers)
	for i := range layers {
		layers[i].OCC = n.occ[i]
	}
	cfg := core.Config{
		Geometry:    n.cfg.geometry(),
		Quant:       n.cfg.params(),
		Mode:        core.ModeOCC,
		IndexBits:   n.indexBits(),
		MaxWindows:  s.cfg.MaxWindows,
		Workers:     s.cfg.Workers,
		Energy:      energy.Default(),
		NoC:         noc.Default(),
		Metrics:     s.metrics,
		NoCodeCache: s.noCodeCache,
	}
	res := core.SimulateNetwork(layers, cfg)
	out := Result{
		Version: ResultVersion,
		Network: n.name,
		Cycles:  res.Cycles,
		Seconds: res.Time,
		Energy:  Breakdown(res.Energy),
	}
	if s.metrics != nil {
		out.Metrics = s.metrics.Snapshot()
	}
	var total, comp, outBits int64
	for i := range layers {
		total += layers[i].Struct.Layout.TotalCells()
		comp += n.occ[i].CompressedCells()
		outBits += n.occ[i].OutputIndexBits()
	}
	if comp > 0 {
		out.CompressionRatio = float64(total) / float64(comp)
	}
	out.IndexStorageBits = outBits
	return out, nil
}

// RunISAAC simulates the network on the over-idealized ISAAC-style
// accelerator (§7.5), optionally with ReCom weight compression.
func (n *Network) RunISAAC(withReCom bool) Result {
	cfg := isaac.DefaultConfig()
	cfg.Geometry = n.cfg.geometry()
	cfg.Quant = n.cfg.params()
	cfg.ReCom = withReCom
	res := isaac.SimulateNetwork(n.built.ISAACInputs(), cfg)
	out := Result{
		Version: ResultVersion,
		Network: n.name + "/isaac",
		Cycles:  res.Cycles,
		Seconds: res.Time,
		Energy:  Breakdown(res.Energy),
	}
	for _, lr := range res.Layers {
		out.Layers = append(out.Layers, LayerResult{
			Name: lr.Name, Cycles: lr.Cycles, Seconds: lr.Time,
			Energy: Breakdown(lr.Energy),
		})
	}
	return out
}

// CompressionRatio returns the network's weight compression ratio under
// a scheme without running a simulation.
func (n *Network) CompressionRatio(mode Mode) (float64, error) {
	cm, err := mode.coreMode()
	if err != nil {
		return 0, err
	}
	var total, comp int64
	for _, l := range n.built.Layers {
		total += l.Struct.Layout.TotalCells()
		comp += l.Struct.CompressedCells(cm.Scheme, n.indexBits())
	}
	if comp == 0 {
		comp = 1
	}
	return float64(total) / float64(comp), nil
}

// IdealCompressionRatio returns the Fig. 20 upper bound (every zero cell
// removed).
func (n *Network) IdealCompressionRatio() float64 {
	var total, comp int64
	for _, l := range n.built.Layers {
		total += l.Struct.Layout.TotalCells()
		comp += l.Struct.CompressedCells(compress.Ideal, 0)
	}
	if comp == 0 {
		comp = 1
	}
	return float64(total) / float64(comp)
}

// Cell is a ReRAM device technology for the accuracy model (Fig. 5).
type Cell struct {
	Bits   int
	RRatio float64
	Sigma  float64
}

// BaselineCell returns the paper's WOx (R_b, σ_b) device.
func BaselineCell() Cell {
	c := reram.WOxBaseline()
	return Cell{Bits: c.Bits, RRatio: c.RRatio, Sigma: c.Sigma}
}

// Improved returns the cell with k× larger R-ratio and k× smaller σ.
func (c Cell) Improved(k float64) Cell {
	return Cell{Bits: c.Bits, RRatio: c.RRatio * k, Sigma: c.Sigma / k}
}

// ReadErrorProbability returns the probability that a bitline read over
// m concurrently driven wordlines is mis-sensed — the §3 mechanism that
// forces OU-based operation.
func (c Cell) ReadErrorProbability(m int, meanState float64) float64 {
	rc := reram.Cell{Bits: c.Bits, RRatio: c.RRatio, Sigma: c.Sigma}
	return rc.ReadErrorProb(m, meanState)
}
