// VGG-16 speedup study (the paper's headline workload, Figs. 17–18):
// SSL-pruned VGG-16 across every mode, with the energy breakdown that
// explains why ORC+DOF pays extra eDRAM traffic but still wins.
//
//	go run ./examples/vggspeedup            # ~1 minute
//	go run ./examples/vggspeedup -windows 96  # tighter sampling
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sre"
)

func main() {
	windows := flag.Int("windows", 32, "per-layer window sampling cap (0 = all)")
	flag.Parse()

	start := time.Now()
	net, err := sre.Load("VGG-16", sre.WithPrune(sre.SSL), sre.WithMaxWindows(*windows))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built VGG-16 (%d matrix layers) in %s\n\n",
		net.LayerCount(), time.Since(start).Round(time.Millisecond))

	base, err := net.Run(sre.Baseline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %9s %14s %8s %8s %8s\n",
		"mode", "speedup", "energy vs base", "eDRAM%", "compute%", "index%")
	for _, mode := range sre.Modes() {
		r, err := net.Run(mode)
		if err != nil {
			log.Fatal(err)
		}
		tot := r.Energy.Total()
		fmt.Printf("%-10s %8.2fx %13.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			mode,
			float64(base.Cycles)/float64(r.Cycles),
			100*tot/base.Energy.Total(),
			100*r.Energy.EDRAM/tot, 100*r.Energy.Compute/tot, 100*r.Energy.Index/tot)
	}

	fmt.Println("\npaper's shape: ORC ≈ 6.8x (SSL-tuned weights), DOF ≈ 7.5x,")
	fmt.Println("combined the largest gain of all six networks, with eDRAM the")
	fmt.Println("dominant residual energy once compute is compressed away.")
}
