// Accuracy motivation study (the paper's §3 + Fig. 5): why a practical
// ReRAM accelerator cannot activate a whole 128×128 crossbar at once.
// Prints the per-read mis-sense probability of the bitline ADC as the
// number of concurrently activated wordlines grows, for the baseline WOx
// cell and its 2×/3× improved variants, plus the resulting expected
// errors per million reads.
//
// (The full Fig. 5 experiment — really trained networks with Monte-Carlo
// error injection — runs via `go run ./cmd/srebench -experiment fig5`.)
//
//	go run ./examples/accuracy
package main

import (
	"fmt"

	"sre"
)

func main() {
	const meanState = 1.5 // average programmed 2-bit cell state

	cells := []struct {
		name string
		cell sre.Cell
	}{
		{"(Rb,  sb)  ", sre.BaselineCell()},
		{"(2Rb, sb/2)", sre.BaselineCell().Improved(2)},
		{"(3Rb, sb/3)", sre.BaselineCell().Improved(3)},
	}

	fmt.Println("per-read mis-sense probability vs concurrently active wordlines")
	fmt.Printf("%-12s", "cell")
	wordlines := []int{2, 4, 8, 16, 32, 64, 128}
	for _, n := range wordlines {
		fmt.Printf("%10d", n)
	}
	fmt.Println()
	for _, c := range cells {
		fmt.Printf("%-12s", c.name)
		for _, n := range wordlines {
			fmt.Printf("%10.2e", c.cell.ReadErrorProbability(n, meanState))
		}
		fmt.Println()
	}

	fmt.Println("\nerrors per million reads (an ImageNet inference issues ~10^9 reads):")
	for _, c := range cells {
		fmt.Printf("%-12s", c.name)
		for _, n := range wordlines {
			fmt.Printf("%10.0f", 1e6*c.cell.ReadErrorProbability(n, meanState))
		}
		fmt.Println()
	}

	fmt.Println("\npaper's conclusion: with realistic cells, only ~16 wordlines can be")
	fmt.Println("activated per cycle — the Operation Unit. That constraint is what")
	fmt.Println("opens the OU-granularity sparsity opportunities SRE exploits.")
}
