// Custom-network example: bring your own topology and sparsity levels.
// Uses the same topology grammar as the paper's Table 2 strings and
// sweeps how SRE's gains scale with weight sparsity.
//
//	go run ./examples/customnet
package main

import (
	"fmt"
	"log"

	"sre"
)

func main() {
	const topology = "conv3x16p1-conv3x16p1-pool-conv3x32p1-pool-128-10"

	fmt.Println("topology:", topology)
	fmt.Printf("\n%-16s %10s %10s %12s\n", "weight sparsity", "orc", "orc+dof", "energy left")
	for _, ws := range []float64{0.2, 0.5, 0.8, 0.95} {
		net, err := sre.Build("custom", topology, []int{3, 32, 32},
			sre.WithSparsity(ws, 0.4), sre.WithMaxWindows(24))
		if err != nil {
			log.Fatal(err)
		}
		base, err := net.Run(sre.Baseline)
		if err != nil {
			log.Fatal(err)
		}
		orc, err := net.Run(sre.ORC)
		if err != nil {
			log.Fatal(err)
		}
		both, err := net.Run(sre.ORCDOF)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%15.0f%% %9.2fx %9.2fx %11.1f%%\n",
			ws*100,
			float64(base.Cycles)/float64(orc.Cycles),
			float64(base.Cycles)/float64(both.Cycles),
			100*both.Energy.Total()/base.Energy.Total())
	}
	fmt.Println("\nactivation sparsity is held at 40%; DOF supplies a floor of gains")
	fmt.Println("even for dense weights, and ORC scales with the pruning level.")
}
