// Quickstart: load one of the paper's Table 2 networks and compare every
// sparsity-exploitation mode against the no-sparsity OU baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sre"
)

func main() {
	// Table 1 defaults: 128×128 crossbars, 16×16 OUs, 2-bit cells.
	// Options override individual knobs; WithWorkers(0) shards the
	// simulation over all cores (results are identical at any width).
	net, err := sre.Load("MNIST", sre.WithPrune(sre.SSL), sre.WithWorkers(0))
	if err != nil {
		log.Fatal(err)
	}

	results, err := net.RunAll() // every mode, in sre.Modes() order
	if err != nil {
		log.Fatal(err)
	}
	byMode := sre.ResultsByMode(results)
	base := byMode[sre.Baseline]

	fmt.Printf("%s on a practical OU-based ReRAM accelerator (%d matrix layers)\n\n",
		net.Name(), net.LayerCount())
	fmt.Printf("%-10s %12s %10s %12s %10s\n", "mode", "cycles", "speedup", "energy (J)", "vs base")
	for _, mode := range sre.Modes() {
		r := byMode[mode]
		fmt.Printf("%-10s %12d %9.2fx %12.3e %9.1f%%\n",
			mode, r.Cycles,
			float64(base.Cycles)/float64(r.Cycles),
			r.Energy.Total(),
			100*r.Energy.Total()/base.Energy.Total())
	}

	orc := byMode[sre.ORC]
	fmt.Printf("\nORC weight compression: %.2fx (input indexes: %.1f KB)\n",
		orc.CompressionRatio, float64(orc.IndexStorageBits)/8/1024)
	fmt.Println("\nThe combined orc+dof row is the paper's Sparse ReRAM Engine.")
}
