// OU-size sweep (the paper's Figs. 20–21 sensitivity study): how the OU
// granularity trades weight-compression ratio against baseline energy,
// and why 16×16 is the accuracy-constrained sweet spot.
//
//	go run ./examples/ousweep
//	go run ./examples/ousweep -network CaffeNet
package main

import (
	"flag"
	"fmt"
	"log"

	"sre"
)

func main() {
	name := flag.String("network", "CIFAR-10", "Table 2 network name")
	flag.Parse()

	fmt.Printf("%-8s %10s %10s %14s %14s\n",
		"OU", "ORC ratio", "ideal", "base energy", "sre energy")

	var baseE0, sreE0 float64
	for _, ou := range []int{128, 64, 32, 16, 8} {
		net, err := sre.Load(*name, sre.WithOU(ou), sre.WithMaxWindows(24))
		if err != nil {
			log.Fatal(err)
		}
		orcRatio, err := net.CompressionRatio(sre.ORC)
		if err != nil {
			log.Fatal(err)
		}
		base, err := net.Run(sre.Baseline)
		if err != nil {
			log.Fatal(err)
		}
		sreRes, err := net.Run(sre.ORCDOF)
		if err != nil {
			log.Fatal(err)
		}
		if baseE0 == 0 {
			baseE0, sreE0 = base.Energy.Total(), sreRes.Energy.Total()
		}
		fmt.Printf("%-8s %9.2fx %9.2fx %13.2fx %13.2fx\n",
			fmt.Sprintf("%dx%d", ou, ou),
			orcRatio, net.IdealCompressionRatio(),
			base.Energy.Total()/baseE0, sreRes.Energy.Total()/sreE0)
	}

	fmt.Println("\npaper's shape: smaller OUs compress better (Fig. 20) but the")
	fmt.Println("no-sparsity baseline's energy explodes with OU count (Fig. 21a);")
	fmt.Println("with ORC+DOF the extra events are skipped, so small OUs stay cheap")
	fmt.Println("(Fig. 21b). Accuracy (Fig. 5) caps the OU at 16 wordlines.")
}
