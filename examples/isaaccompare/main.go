// SRE vs over-idealized ISAAC (the paper's §7.5, Fig. 24): a practical
// OU-based design is 9.6x slower per crossbar pass, but joint weight +
// activation sparsity plus the faster 6-bit-ADC cycle make it competitive
// in time and better in energy — while actually sensing correctly.
//
//	go run ./examples/isaaccompare
//	go run ./examples/isaaccompare -network VGG-16 (slower, larger gains)
package main

import (
	"flag"
	"fmt"
	"log"

	"sre"
)

func main() {
	name := flag.String("network", "CIFAR-10", "Table 2 network name")
	flag.Parse()

	net, err := sre.Load(*name, sre.WithMaxWindows(24))
	if err != nil {
		log.Fatal(err)
	}

	sreRes, err := net.Run(sre.ORCDOF)
	if err != nil {
		log.Fatal(err)
	}
	baseRes, err := net.Run(sre.Baseline)
	if err != nil {
		log.Fatal(err)
	}
	isaacRes := net.RunISAAC(true) // paper applies ReCom to ISAAC for fairness

	fmt.Printf("%s\n\n", net.Name())
	fmt.Printf("%-28s %14s %14s\n", "design", "time (s)", "energy (J)")
	fmt.Printf("%-28s %14.4g %14.4g\n", "ISAAC (over-idealized,+ReCom)", isaacRes.Seconds, isaacRes.Energy.Total())
	fmt.Printf("%-28s %14.4g %14.4g\n", "OU baseline (no sparsity)", baseRes.Seconds, baseRes.Energy.Total())
	fmt.Printf("%-28s %14.4g %14.4g\n", "SRE (ORC+DOF)", sreRes.Seconds, sreRes.Energy.Total())

	fmt.Printf("\nSRE/ISAAC time   = %.2f (paper: ~0.85 on average, wins on 3/6 nets)\n",
		sreRes.Seconds/isaacRes.Seconds)
	fmt.Printf("SRE/ISAAC energy = %.2f (paper: ~0.33, i.e. 67%% savings)\n",
		sreRes.Energy.Total()/isaacRes.Energy.Total())
	fmt.Printf("OU-baseline/ISAAC energy = %.2f (paper: ~2.5 without sparsity)\n",
		baseRes.Energy.Total()/isaacRes.Energy.Total())
	fmt.Println("\nand unlike ISAAC, the OU design reads within the device's sensing")
	fmt.Println("margin (see ./examples/accuracy), so its results are trustworthy.")
}
