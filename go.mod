module sre

go 1.22
