// Benchmarks regenerating every table and figure of the paper's
// evaluation (DESIGN.md §6 maps each benchmark to its experiment).
//
// Each iteration performs a complete quick-scope regeneration of the
// experiment (small networks, trimmed sweeps, capped window sampling) so
// `go test -bench=.` finishes in minutes; `cmd/srebench -all` runs the
// full-scope versions. Reported custom metrics carry the headline result
// of each figure so bench output doubles as a regression record.
package sre_test

import (
	"strconv"
	"strings"
	"testing"

	"sre"
	"sre/internal/experiments"
)

func benchOptions() experiments.Options {
	return experiments.Options{Seed: 1, MaxWindows: 12, Quick: true}
}

// runExperiment is the shared bench body.
func runExperiment(b *testing.B, id string) *experiments.Table {
	b.Helper()
	var table *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		table, err = experiments.Run(id, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	return table
}

func BenchmarkTable1HardwareConfig(b *testing.B) {
	t := runExperiment(b, "table1")
	b.ReportMetric(float64(len(t.Rows)), "rows")
}

func BenchmarkTable2Workloads(b *testing.B) {
	t := runExperiment(b, "table2")
	b.ReportMetric(float64(len(t.Rows)), "networks")
}

func BenchmarkFig4DecompositionDensity(b *testing.B) {
	t := runExperiment(b, "fig4")
	b.ReportMetric(cellMetric(b, t.Rows[0][2]), "density@1b")
}

func BenchmarkFig5AccuracyVsWordlines(b *testing.B) {
	t := runExperiment(b, "fig5")
	// First data row is the clean accuracy of the first benchmark.
	b.ReportMetric(cellMetric(b, strings.TrimSuffix(t.Rows[0][3], "%")), "clean_acc_pct")
}

func BenchmarkFig17SpeedupSSL(b *testing.B) {
	t := runExperiment(b, "fig17")
	b.ReportMetric(cellMetric(b, t.Rows[0][5]), "orcdof_speedup_row0")
}

func BenchmarkFig18EnergySSL(b *testing.B) {
	t := runExperiment(b, "fig18")
	// Last row is orc+dof of the last network; column 2 is total energy.
	last := t.Rows[len(t.Rows)-1]
	b.ReportMetric(cellMetric(b, last[2]), "orcdof_energy_norm")
}

func BenchmarkFig19IndexStorage(b *testing.B) {
	t := runExperiment(b, "fig19")
	b.ReportMetric(cellMetric(b, t.Rows[0][2]), "kb_row0")
}

func BenchmarkFig20CompressionRatio(b *testing.B) {
	t := runExperiment(b, "fig20")
	b.ReportMetric(cellMetric(b, t.Rows[0][2]), "orc_ratio_row0")
}

func BenchmarkFig21EnergyVsOUSize(b *testing.B) {
	t := runExperiment(b, "fig21")
	last := t.Rows[len(t.Rows)-1]
	b.ReportMetric(cellMetric(b, last[2]), "baseline_norm_last")
}

func BenchmarkFig22BitsPerCell(b *testing.B) {
	t := runExperiment(b, "fig22")
	b.ReportMetric(cellMetric(b, t.Rows[0][2]), "speedup_row0")
}

func BenchmarkFig23NonSSL(b *testing.B) {
	t := runExperiment(b, "fig23")
	b.ReportMetric(cellMetric(b, t.Rows[0][3]), "orcdof_speedup_row0")
}

func BenchmarkFig24VsISAAC(b *testing.B) {
	t := runExperiment(b, "fig24")
	b.ReportMetric(cellMetric(b, t.Rows[0][1]), "time_vs_isaac_row0")
}

func BenchmarkSec72IndexingOverhead(b *testing.B) {
	t := runExperiment(b, "overhead")
	b.ReportMetric(float64(len(t.Rows)), "rows")
}

func cellMetric(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		b.Fatalf("metric cell %q: %v", s, err)
	}
	return v
}

// ---- micro-benchmarks of the simulator itself ----

// BenchmarkSimulateLayerORCDOF measures the core simulator's throughput
// on one mid-size layer in the full SRE mode.
func BenchmarkSimulateLayerORCDOF(b *testing.B) {
	net, err := sre.Load("CIFAR-10", sre.WithMaxWindows(12))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Run(sre.ORCDOF); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- worker-pool scaling (the tentpole's acceptance benchmark) ----
//
// BenchmarkVGG16Sweep* run the full six-mode VGG-16 sweep — the hot
// path the parallel engine exists for — at explicit worker widths.
// With GOMAXPROCS≥4 the parallel variant should be ≥3× the serial one
// (dynamic window sharding over the shared code planes rebalances the
// skewed per-window DOF costs); both produce bit-identical results
// (see TestSerialParallelBitIdentical).

func benchVGG16Sweep(b *testing.B, workers int) {
	b.Helper()
	net, err := sre.Load("VGG-16", sre.WithPrune(sre.SSL),
		sre.WithMaxWindows(12), sre.WithWorkers(workers))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := net.RunAll()
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(sre.Modes()) {
			b.Fatal("missing mode results")
		}
	}
}

func BenchmarkVGG16SweepSerial(b *testing.B)   { benchVGG16Sweep(b, 1) }
func BenchmarkVGG16SweepParallel(b *testing.B) { benchVGG16Sweep(b, 0) }

// BenchmarkLoadNetwork measures workload synthesis + structure building.
func BenchmarkLoadNetwork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sre.Load("MNIST"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationIndexBits exercises the §6 index-width design-choice
// ablation (zero-padding loss vs storage).
func BenchmarkAblationIndexBits(b *testing.B) {
	t := runExperiment(b, "ablation-indexbits")
	b.ReportMetric(float64(len(t.Rows)), "rows")
}

// BenchmarkAblationOCC exercises the §4.1 ORC-vs-OCC design-choice
// ablation (row vs column compression, Fig. 10 exclusivity).
func BenchmarkAblationOCC(b *testing.B) {
	t := runExperiment(b, "ablation-occ")
	b.ReportMetric(float64(len(t.Rows)), "rows")
}

// BenchmarkAblationBuffer exercises the §5.3 buffer-sizing ablation.
func BenchmarkAblationBuffer(b *testing.B) {
	t := runExperiment(b, "ablation-buffer")
	b.ReportMetric(float64(len(t.Rows)), "rows")
}

// BenchmarkAblationReplication exercises the ISAAC-style replication
// re-weighting of the Fig. 17 headline.
func BenchmarkAblationReplication(b *testing.B) {
	t := runExperiment(b, "ablation-replication")
	b.ReportMetric(float64(len(t.Rows)), "rows")
}
