# Build/verify entry points. `make verify` is the tier-1 loop with the
# race detector wired in, so the worker-pool concurrency is race-checked
# on every change.

GO ?= go

# Where `make bench` records its machine-readable results. Each PR's
# bench run gets its own file (BENCH_PR2.json, BENCH_PR3.json, …) so the
# history stays comparable; override on the command line:
#   make bench BENCH_OUT=BENCH_PR5.json
BENCH_OUT ?= BENCH_PR7.json

# Baseline for `make bench-compare` (recorded by `make bench-rebaseline`
# from the pre-PR tree — see that rule's comment):
#   make bench-compare BENCH_OLD=BENCH_PR2.json BENCH_OUT=BENCH_PR3.json
BENCH_OLD ?= BENCH_PR7_BASE.json

# Repeats per benchmark for `make bench` / `make bench-rebaseline`.
# With BENCH_COUNT > 1, go test reruns each benchmark that many times
# and benchjson folds the repeats into per-unit median (Metrics) and
# minimum (Min) — use ≥5 on shared or single-core boxes where one
# noisy repeat would otherwise be the whole record.
BENCH_COUNT ?= 1

# The benchmark set `make bench` records: the per-mode simulator
# kernels and the six-mode VGG-16 sweep in the root package, plus the
# popcount-kernel and plane-construction microbenches in
# internal/bitset so kernel-dispatch regressions show up in the same
# trajectory record.
BENCH_PATTERN = BenchmarkSimulateLayer|BenchmarkVGG16Sweep|BenchmarkBatchedSweep
BENCH_PATTERN_BITSET = BenchmarkCountWords|BenchmarkCountAndPlanes|BenchmarkBuildSliceMasks

.PHONY: all build vet test race bench-smoke smoke verify bench bench-rebaseline bench-quick bench-sweep bench-compare bench-coldstart bench-load bench-cluster experiments snapshot-roundtrip results profile clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke compiles and runs every benchmark exactly once so a broken
# benchmark can't hide until the next full `make bench`.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# verify = tier-1 (build + test) plus vet, the race detector, and the
# benchmark smoke run.
verify: vet build race bench-smoke

# smoke boots the sreserved daemon for real: health check, a simulate
# round-trip plus its cached repeat (bit-identical, no second sweep), a
# /metrics scrape, a small sreload run, then SIGTERM and a clean-drain
# exit — then repeats the exercise as a two-replica cluster
# (consistent-hash ownership, one-hop forwarding, exactly one build per
# key cluster-wide, clean drain of both replicas).
smoke:
	$(GO) build -o bin/sreserved ./cmd/sreserved
	$(GO) build -o bin/sreload ./cmd/sreload
	./scripts/smoke_sreserved.sh ./bin/sreserved ./bin/sreload
	./scripts/smoke_cluster.sh ./bin/sreserved

# bench runs the simulator hot-path benchmarks (per-mode kernel vs
# scalar reference, the six-mode VGG-16 sweep, the batched
# multi-activation sweep, and the bitset popcount/plane kernels) with
# -benchmem and records ns/op, B/op, and allocs/op in $(BENCH_OUT).
# BENCH_COUNT > 1 repeats each benchmark and records min/median.
bench:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	($(GO) test -run=NONE -bench '$(BENCH_PATTERN)' \
		-benchmem -benchtime 0.5s -count $(BENCH_COUNT) . && \
	 $(GO) test -run=NONE -bench '$(BENCH_PATTERN_BITSET)' \
		-benchmem -benchtime 0.5s -count $(BENCH_COUNT) ./internal/bitset) \
		| ./bin/benchjson -count $(BENCH_COUNT) -out $(BENCH_OUT)

# bench-rebaseline re-records the benchmark baseline on THIS machine
# into $(BENCH_BASE). Benchmark records made on different hosts (or
# even hours apart on a busy shared box) are not comparable — the PR4
# numbers in BENCH_PR4.json came from a different core count than the
# box that judges this PR. So before trusting `make bench-compare`:
#
#   1. check out the pre-PR tree (e.g. `git worktree add /tmp/sre-base
#      <base-commit>`), copy bin/benchjson there or use this tree's,
#   2. run `make bench-rebaseline` in that tree (writes BENCH_PR7_BASE.json),
#   3. copy the file here, then run `make bench && make bench-compare`
#      back-to-back so both records see the same machine state.
#
# Use BENCH_COUNT=5 (or more) on noisy boxes; the compare then shows
# median and min rows instead of a single unlucky sample.
BENCH_BASE ?= BENCH_PR7_BASE.json
bench-rebaseline:
	$(MAKE) bench BENCH_OUT=$(BENCH_BASE)

# bench-quick: every figure/table regeneration benchmark, one iteration.
bench-quick:
	$(GO) test -bench . -benchtime 1x -run=NONE .

# The parallel engine's acceptance benchmark: six-mode VGG-16 sweep,
# serial vs worker-pool (expect ≥3x at GOMAXPROCS≥4; identical results
# either way).
bench-sweep:
	$(GO) test -bench 'BenchmarkVGG16Sweep' -benchtime 2x -run=NONE .

# bench-compare prints the per-benchmark ns/op, B/op, and allocs/op
# deltas between the previous PR's record and the current one.
bench-compare:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	./bin/benchjson -compare $(BENCH_OLD) $(BENCH_OUT)

# bench-coldstart records the snapshot format's acceptance numbers:
# VGG-16 cold start through a full build vs through OpenSnapshot
# (expect OpenSnapshot ≥10x faster).
bench-coldstart:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -run=NONE -bench 'BenchmarkColdStart' \
		-benchmem -benchtime 2x . | ./bin/benchjson -out BENCH_PR6.json

# bench-load records the serving SLO numbers: sreload replays a skewed
# repeated-key workload against sreserved with the result cache off,
# then on, into $(BENCH_LOAD_OUT) — p50/p99/throughput/hit-rate per
# run, with the >=10x p99 acceptance ratio printed at the end. Knobs
# (REQUESTS, CLIENTS, KEYS, SEEDS, HOT, MAXWIN, MODES, SWEEPS) pass
# through the environment.
BENCH_LOAD_OUT ?= BENCH_PR8.json
bench-load:
	$(GO) build -o bin/sreserved ./cmd/sreserved
	$(GO) build -o bin/sreload ./cmd/sreload
	./scripts/bench_load.sh ./bin/sreserved ./bin/sreload $(BENCH_LOAD_OUT)

# bench-cluster records the sharding acceptance numbers: the PR 8
# skewed workload (keys spread over build-scoped seeds so the ring
# partitions them) against one replica, then against a REPLICAS-wide
# loopback cluster, into $(BENCH_CLUSTER_OUT) — per-run
# p50/p99/throughput/hit-rate, per-replica breakdown, forward rate, and
# the aggregate-throughput ratio printed at the end. The >=1.5x
# 2-replica target presumes a multi-core box: replicas are separate
# processes, so on one hardware thread the cluster run measures
# context-switching plus a forwarding hop, not scale-out (same caveat
# as BENCH_PR4's parallel ratios — record nproc next to the number).
# Knobs (NETWORK, REQUESTS, CLIENTS, KEYS, SEEDS, HOT, MAXWIN, MODES,
# SWEEPS, REPLICAS) pass through the environment.
BENCH_CLUSTER_OUT ?= BENCH_PR9.json
bench-cluster:
	$(GO) build -o bin/sreserved ./cmd/sreserved
	$(GO) build -o bin/sreload ./cmd/sreload
	./scripts/bench_cluster.sh ./bin/sreserved ./bin/sreload $(BENCH_CLUSTER_OUT)

# experiments records the PR 10 WSS composability table: every Table 2
# network rebuilt with a 2-slice weight cap and run under orc+dof, wss,
# and orc+dof+wss, into $(BENCH_EXP_OUT) — the orc+dof+wss rows must
# show a cycles reduction over plain orc+dof on the same capped
# weights. EXP_FLAGS=-quick trims to MNIST+CIFAR-10 (the CI leg).
BENCH_EXP_OUT ?= BENCH_PR10.json
EXP_FLAGS ?=
experiments:
	$(GO) build -o bin/srebench ./cmd/srebench
	./bin/srebench -experiment pr10-wss -json $(EXP_FLAGS) > $(BENCH_EXP_OUT)
	@echo "wrote $(BENCH_EXP_OUT)"

# snapshot-roundtrip drives the artifact format end to end through the
# CLI: build + persist, reload from the snapshot dir, diff the outputs.
snapshot-roundtrip:
	$(GO) build -o bin/sresim ./cmd/sresim
	./scripts/snapshot_roundtrip.sh ./bin/sresim

# results regenerates the full experiment record (every table/figure,
# paper order) from the current code. The output is not tracked — run
# this when EXPERIMENTS.md needs fresh numbers (~12 min on 1 CPU).
results:
	$(GO) build -o bin/srebench ./cmd/srebench
	./bin/srebench -all > results_full.txt
	@echo "wrote results_full.txt"

# profile captures CPU and heap profiles of a full-scope srebench run;
# inspect with `go tool pprof cpu.pprof` / `go tool pprof mem.pprof`.
profile:
	$(GO) build -o bin/srebench ./cmd/srebench
	./bin/srebench -experiment fig17 -cpuprofile cpu.pprof -memprofile mem.pprof >/dev/null
	@echo "wrote cpu.pprof and mem.pprof (go tool pprof <file>)"

clean:
	$(GO) clean ./...
	rm -f bin/benchjson bin/srebench bin/sreserved bin/sreload bin/sresim cpu.pprof mem.pprof
