# Build/verify entry points. `make verify` is the tier-1 loop with the
# race detector wired in, so the worker-pool concurrency is race-checked
# on every change.

GO ?= go

.PHONY: all build vet test race verify bench bench-sweep clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify = tier-1 (build + test) plus vet and the race detector.
verify: vet build race

bench:
	$(GO) test -bench . -benchtime 1x -run XXX .

# The tentpole's acceptance benchmark: six-mode VGG-16 sweep, serial vs
# worker-pool (expect ≥2x at GOMAXPROCS≥4; identical results either way).
bench-sweep:
	$(GO) test -bench 'BenchmarkVGG16Sweep' -benchtime 2x -run XXX .

clean:
	$(GO) clean ./...
